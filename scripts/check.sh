#!/usr/bin/env bash
# Tier-1+ gate: everything must build, vet clean, and pass the full
# test suite UNDER THE RACE DETECTOR. The serve subsystem is
# goroutine-heavy (batcher, executor pool, per-connection goroutines),
# so -race is routine here, not an occasional extra.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos soak (short, -race)"
go test -race -short -count=1 -run '^TestChaosSoak$' ./internal/serve/

echo "== cluster chaos soak (short, -race)"
# Fails on any lost/corrupted scan or a coordinator ledger imbalance
# (requests != served + shard_failed + deadline) — the test asserts
# both after the drain.
go test -race -short -count=1 -run '^TestClusterChaosSoak$' ./internal/cluster/

echo "== alloc-regression gate (no -race: its sync.Pool drops Puts by design)"
# Pins steady-state allocations on the zero-copy serving path and the
# arena's recycled checkouts; fails if a copy or per-request allocation
# creeps back in.
go test -count=1 -run '^TestAllocsSteadyStateScan$' ./internal/serve/
go test -count=1 -run '^TestSteadyStateAllocFree$' ./internal/arena/

echo "== fuzz burst: FuzzSegmentedAgainstDirect (10s)"
go test -fuzz='^FuzzSegmentedAgainstDirect$' -fuzztime=10s -run '^$' ./internal/scan/

echo "== fuzz burst: FuzzViewKernelsMatchFlattened (10s)"
go test -fuzz='^FuzzViewKernelsMatchFlattened$' -fuzztime=10s -run '^$' ./internal/scan/

echo "== fuzz burst: FuzzStreamedScanMatchesOneShot (10s)"
go test -fuzz='^FuzzStreamedScanMatchesOneShot$' -fuzztime=10s -run '^$' ./internal/serve/

echo "== fuzz burst: FuzzShardedScanMatchesSingleNode (10s)"
go test -fuzz='^FuzzShardedScanMatchesSingleNode$' -fuzztime=10s -run '^$' ./internal/cluster/

echo "check.sh: all green"
