#!/usr/bin/env bash
# Tier-1+ gate: everything must build, vet clean, and pass the full
# test suite UNDER THE RACE DETECTOR. The serve subsystem is
# goroutine-heavy (batcher, executor pool, per-connection goroutines),
# so -race is routine here, not an occasional extra.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all green"
