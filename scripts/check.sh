#!/usr/bin/env bash
# Tier-1+ gate: everything must build, vet clean, and pass the full
# test suite UNDER THE RACE DETECTOR. The serve subsystem is
# goroutine-heavy (batcher, executor pool, per-connection goroutines),
# so -race is routine here, not an occasional extra.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos soak (short, -race)"
go test -race -short -count=1 -run '^TestChaosSoak$' ./internal/serve/

echo "== cluster chaos soak (short, -race)"
# Fails on any lost/corrupted scan or a coordinator ledger imbalance
# (requests != served + shard_failed + deadline) — the test asserts
# both after the drain.
go test -race -short -count=1 -run '^TestClusterChaosSoak$' ./internal/cluster/

echo "== coordinator failover soak (short, -race)"
# Murders the primary coordinator mid-soak (half the traffic streamed)
# and fails on any lost or corrupted request, any stream that did not
# resume bit-identically on the standby, or a stream/arena ledger that
# does not close on either coordinator.
go test -race -short -count=1 -run '^TestCoordinatorFailoverSoak$' ./internal/cluster/

echo "== registry heartbeat-liveness gate (-race)"
# Walks a worker through announce → shards within one heartbeat
# interval → silent death → beat ejection (scans retried elsewhere
# throughout) → rebirth → heartbeat readmission.
go test -race -count=1 -run '^TestAnnounceJoinAndBeatEjection$' ./internal/cluster/

echo "== alloc-regression gate (no -race: its sync.Pool drops Puts by design)"
# Pins steady-state allocations on the zero-copy serving path and the
# arena's recycled checkouts; fails if a copy or per-request allocation
# creeps back in.
go test -count=1 -run '^TestAllocsSteadyStateScan$' ./internal/serve/
go test -count=1 -run '^TestSteadyStateAllocFree$' ./internal/arena/

echo "== user-op VM alloc gate (no -race)"
# The combine VM must serve a registered monoid within a fixed
# allocs/request budget: no per-call frame or buffer allocation beyond
# the per-executor scratch the design promises.
go test -count=1 -run '^TestAllocsSteadyStateUserOpScan$' ./internal/serve/

echo "== fuzz burst: FuzzSegmentedAgainstDirect (10s)"
go test -fuzz='^FuzzSegmentedAgainstDirect$' -fuzztime=10s -run '^$' ./internal/scan/

echo "== fuzz burst: FuzzViewKernelsMatchFlattened (10s)"
go test -fuzz='^FuzzViewKernelsMatchFlattened$' -fuzztime=10s -run '^$' ./internal/scan/

echo "== fuzz burst: FuzzStreamedScanMatchesOneShot (10s)"
go test -fuzz='^FuzzStreamedScanMatchesOneShot$' -fuzztime=10s -run '^$' ./internal/serve/

echo "== fuzz burst: FuzzVMMatchesNative (10s, -race)"
# User-monoid parity: +/max/min expressed as combine-VM bytecode must
# answer bit-identically to the native kernels on the same fuzzed
# traffic, across every kind × dir combination.
go test -race -fuzz='^FuzzVMMatchesNative$' -fuzztime=10s -run '^$' ./internal/serve/

echo "== fuzz burst: FuzzVectorizedMatchesScalar (10s, -race)"
# Differential fuzz of the lane-blocked vector engine against the scalar
# interpreter: random programs (branchy, budget-blowing, widths 1–4,
# MinInt64/÷0 edge values) plus every example monoid must either refuse
# to compile or answer bit-identically in every lane.
go test -race -fuzz='^FuzzVectorizedMatchesScalar$' -fuzztime=10s -run '^$' ./internal/combine/

echo "== fuzz burst: FuzzBinwireMatchesJSON (10s, -race)"
# Codec parity under the race detector: the same fuzzed traffic through
# the binary and JSON codecs must produce identical results and error
# codes, and raw hostile frames must never wedge or crash the server.
go test -race -fuzz='^FuzzBinwireMatchesJSON$' -fuzztime=10s -run '^$' ./internal/serve/

echo "== fuzz burst: FuzzShardedScanMatchesSingleNode (10s)"
go test -fuzz='^FuzzShardedScanMatchesSingleNode$' -fuzztime=10s -run '^$' ./internal/cluster/

echo "== fuzz burst: FuzzExchangeMatchesStar (10s, -race)"
# Data-plane parity: the same fuzzed scan through the exchange plane
# (workers trade block sums among themselves) and the star plane
# (coordinator pre-seeds) must be bit-identical — including iterations
# where fault injection sabotages peer rounds and forces the fallback.
go test -race -fuzz='^FuzzExchangeMatchesStar$' -fuzztime=10s -run '^$' ./internal/cluster/

echo "== exchange peer-murder soak (-race)"
# Kills a worker mid-exchange under drop-injected peer rounds and
# requires every request to land (exchange success or star fallback)
# with zero lost/corrupted results and a closed ledger.
go test -race -count=1 -run '^TestExchangePeerMurderSoak$' ./internal/cluster/

echo "== wire alloc-parity gate (no -race)"
# The binary protocol's reason to exist is zero-parse payloads: if bin
# ever allocates more per request than JSON, the decode path has grown
# a copy. Run the same load through both protocols and compare.
alloc_tmp="$(mktemp -d)"
trap 'rm -rf "$alloc_tmp"' EXIT
go run ./cmd/scanload -requests 3000 -n 4096 -clients 8 -workers 1 \
	-proto json -bench-json "$alloc_tmp/json.json" >/dev/null
go run ./cmd/scanload -requests 3000 -n 4096 -clients 8 -workers 1 \
	-proto bin -bench-json "$alloc_tmp/bin.json" >/dev/null
awk_alloc() { grep -o '"allocs_per_request": [0-9.]*' "$1" | head -1 | awk '{print $2}'; }
awk_bytes() { grep -o '"alloc_bytes_per_request": [0-9.]*' "$1" | head -1 | awk '{print $2}'; }
ja="$(awk_alloc "$alloc_tmp/json.json")" ba="$(awk_alloc "$alloc_tmp/bin.json")"
jb="$(awk_bytes "$alloc_tmp/json.json")" bb="$(awk_bytes "$alloc_tmp/bin.json")"
echo "   json: $ja allocs/req, $jb B/req   bin: $ba allocs/req, $bb B/req"
awk -v ja="$ja" -v ba="$ba" -v jb="$jb" -v bb="$bb" 'BEGIN {
	if (ba > ja) { print "FAIL: bin allocates more per request than JSON (" ba " > " ja ")"; exit 1 }
	if (bb > jb) { print "FAIL: bin allocates more bytes per request than JSON (" bb " > " jb ")"; exit 1 }
}'

echo "== failover gap gate"
# Kills the primary coordinator under streamed load and requires (a) a
# zero-loss run and (b) a recorded failover_gap_ms in the bench report —
# the metric BENCH_serve.json tracks for the control-plane failure model.
go run ./cmd/scanload -workers 2 -clients 8 -requests 400 -n 100000 \
	-stream -chunk 8192 -proto bin -kill-coordinator-after 200ms -timeout 30s \
	-bench-json "$alloc_tmp/failover.json" | tee "$alloc_tmp/failover.out"
grep -q 'success=400' "$alloc_tmp/failover.out" || { echo "FAIL: failover run lost requests"; exit 1; }
grep -q '"failover_gap_ms":' "$alloc_tmp/failover.json" || { echo "FAIL: bench report missing failover_gap_ms"; exit 1; }

echo "== exchange data-plane O(#workers) gate"
# In exchange mode the coordinator must not fold carries element-by-
# element: carry_prescan counts exactly the elements the coordinator
# touched pre-seeding on the star plane, so a clean exchange run must
# report 0 (and no fallbacks, which would re-run scans on star).
# n=16384 across 2 workers forces real multi-rank exchanges
# (MinShardElems defaults to 4096, so each scan spans both workers).
go run ./cmd/scanload -workers 2 -clients 8 -requests 400 -n 16384 \
	-proto bin -data-plane exchange | tee "$alloc_tmp/xchg.out"
grep -q 'success=400' "$alloc_tmp/xchg.out" || { echo "FAIL: exchange run lost requests"; exit 1; }
grep -q 'xchg_fallbacks=0 carry_prescan=0' "$alloc_tmp/xchg.out" || {
	echo "FAIL: coordinator did O(n) carry pre-scan work in exchange mode"; exit 1; }

echo "== native-vs-VM throughput gate (≤2x tax, ≥36k req/s)"
# The same scan load once through the native sum kernel and once
# through its combine-VM twin (user:add). With vectorized dispatch the
# twin is detected as structurally canonical to the builtin and
# promoted onto the native segmented kernels, so the old ~5.5x
# interpreter tax is gone: the gate requires the VM arm within 2x of
# native AND above an absolute 36k req/s floor (3x the scalar-dispatch
# baseline this PR replaced), plus the zero-loss/zero-bad_op checks.
# The two -bench-append phases land as a native-vs-VM row pair (op +
# vm_dispatch fields) in the bench report BENCH_serve.json tracks.
go run ./cmd/scanload -requests 2000 -n 4096 -clients 8 \
	-op sum -bench-json "$alloc_tmp/vmnative.json" | tee "$alloc_tmp/native.out"
go run ./cmd/scanload -requests 2000 -n 4096 -clients 8 \
	-op user:add -register example:add \
	-bench-json "$alloc_tmp/vmnative.json" -bench-append | tee "$alloc_tmp/vm.out"
grep -q 'success=2000' "$alloc_tmp/native.out" || { echo "FAIL: native arm lost requests"; exit 1; }
grep -q 'success=2000' "$alloc_tmp/vm.out" || { echo "FAIL: VM arm lost requests"; exit 1; }
grep -q 'bad_op=0' "$alloc_tmp/vm.out" || { echo "FAIL: VM arm hit bad_op"; exit 1; }
grep -q '"op": "user:add"' "$alloc_tmp/vmnative.json" || { echo "FAIL: bench report missing the VM row's op field"; exit 1; }
rps() { grep '^fused' "$1" | awk '{print $7}'; }
native_rps="$(rps "$alloc_tmp/native.out")" vm_rps="$(rps "$alloc_tmp/vm.out")"
echo "   native: $native_rps req/s   user:add (promoted): $vm_rps req/s"
awk -v n="$native_rps" -v v="$vm_rps" 'BEGIN {
	if (v * 2 < n) { print "FAIL: VM arm pays more than a 2x tax over native (" v " vs " n " req/s)"; exit 1 }
	if (v < 36000) { print "FAIL: VM arm below the 36k req/s floor (" v " req/s)"; exit 1 }
}'

echo "== vector-dispatch gate (lane-blocked engine vs forced scalar)"
# satadd vectorizes (its saturation diamond lowers to selects) but is
# not promotable, so this arm times the lane-blocked engine itself: the
# default dispatch must beat the same op forced through the scalar
# interpreter by >=1.3x, every request must take the vector class, and
# a mixed native+VM round-robin workload must survive zero-loss.
go run ./cmd/scanload -requests 2000 -n 4096 -clients 8 \
	-op user:satadd -bench-json "$alloc_tmp/vec.json" -bench-append | tee "$alloc_tmp/vec.out"
go run ./cmd/scanload -requests 2000 -n 4096 -clients 8 \
	-op user:satadd -vm-dispatch scalar \
	-bench-json "$alloc_tmp/vec.json" -bench-append | tee "$alloc_tmp/vecscal.out"
grep -q 'success=2000' "$alloc_tmp/vec.out" || { echo "FAIL: vector arm lost requests"; exit 1; }
grep -q 'vm_dispatch{promoted=0 vector=2000 scalar=0}' "$alloc_tmp/vec.out" || {
	echo "FAIL: satadd requests did not all take the vector dispatch class"; exit 1; }
vec_rps="$(rps "$alloc_tmp/vec.out")" scal_rps="$(rps "$alloc_tmp/vecscal.out")"
echo "   vector: $vec_rps req/s   forced scalar: $scal_rps req/s"
awk -v v="$vec_rps" -v s="$scal_rps" 'BEGIN {
	if (v < s * 1.3) { print "FAIL: lane-blocked engine under 1.3x the scalar interpreter (" v " vs " s " req/s)"; exit 1 }
}'
go run ./cmd/scanload -requests 1200 -n 4096 -clients 8 \
	-op sum,user:add,user:gcd | tee "$alloc_tmp/mixed.out"
grep -q 'success=1200' "$alloc_tmp/mixed.out" || { echo "FAIL: mixed-op run lost requests"; exit 1; }

echo "check.sh: all green"
