package scans_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"scans"
)

func TestQuickstartPlusScan(t *testing.T) {
	m := scans.NewMachine()
	data := []int{2, 1, 2, 3, 5, 8, 13, 21}
	out := make([]int, len(data))
	total := m.PlusScan(out, data)
	if want := []int{0, 2, 3, 5, 8, 13, 21, 34}; !reflect.DeepEqual(out, want) {
		t.Errorf("PlusScan = %v, want %v", out, want)
	}
	if total != 55 {
		t.Errorf("total = %d, want 55", total)
	}
	if m.Steps() != 1 {
		t.Errorf("one scan cost %d steps, want 1 on the scan model", m.Steps())
	}
}

func TestModelsDiffer(t *testing.T) {
	n := 1 << 12
	data := make([]int, n)
	run := func(model scans.Model) int64 {
		m := scans.NewMachine(scans.WithModel(model))
		m.PlusScan(make([]int, n), data)
		return m.Steps()
	}
	sScan, sEREW := run(scans.ModelScan), run(scans.ModelEREW)
	if sScan != 1 {
		t.Errorf("scan model steps = %d, want 1", sScan)
	}
	if sEREW != 24 { // 2 * lg 4096
		t.Errorf("EREW steps = %d, want 24", sEREW)
	}
}

func TestSegmentedScansAndOps(t *testing.T) {
	m := scans.NewMachine()
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	out := make([]int, 8)
	m.SegPlusScan(out, a, flags)
	if want := []int{0, 5, 0, 3, 7, 10, 0, 2}; !reflect.DeepEqual(out, want) {
		t.Errorf("SegPlusScan = %v, want %v", out, want)
	}
	cnt := m.Enumerate(out, flags)
	if cnt != 3 {
		t.Errorf("Enumerate count = %d, want 3", cnt)
	}
	if got := m.PlusDistribute(out, a); got != 33 {
		t.Errorf("PlusDistribute = %d, want 33", got)
	}
	if got := m.MaxDistribute(out, a); got != 9 {
		t.Errorf("MaxDistribute = %d, want 9", got)
	}
	if got := m.MinDistribute(out, a); got != 1 {
		t.Errorf("MinDistribute = %d, want 1", got)
	}
}

func TestGenericMovement(t *testing.T) {
	m := scans.NewMachine()
	src := []string{"a", "b", "c"}
	dst := make([]string, 3)
	scans.Permute(m, dst, src, []int{2, 0, 1})
	if want := []string{"b", "c", "a"}; !reflect.DeepEqual(dst, want) {
		t.Errorf("Permute = %v", dst)
	}
	scans.Gather(m, dst, src, []int{2, 1, 0})
	if want := []string{"c", "b", "a"}; !reflect.DeepEqual(dst, want) {
		t.Errorf("Gather = %v", dst)
	}
	packed := make([]string, 3)
	n := scans.Pack(m, packed, src, []bool{true, false, true})
	if n != 2 || packed[0] != "a" || packed[1] != "c" {
		t.Errorf("Pack = %v (%d)", packed[:n], n)
	}
	boundary := scans.Split(m, dst, src, []bool{true, false, false})
	if boundary != 2 || !reflect.DeepEqual(dst, []string{"b", "c", "a"}) {
		t.Errorf("Split = %v (%d)", dst, boundary)
	}
	alloc := m.Allocate([]int{2, 1})
	out := make([]string, 3)
	scans.Distribute(m, alloc, out, []string{"x", "y"}, []int{2, 1})
	if want := []string{"x", "x", "y"}; !reflect.DeepEqual(out, want) {
		t.Errorf("Distribute = %v", out)
	}
}

func TestSortsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 500)
	for i := range keys {
		keys[i] = rng.Intn(10000)
	}
	want := append([]int(nil), keys...)
	sort.Ints(want)
	m := scans.NewMachine()
	if got := m.RadixSort(keys); !reflect.DeepEqual(got, want) {
		t.Error("RadixSort wrong")
	}
	if got := m.BitonicSort(keys); !reflect.DeepEqual(got, want) {
		t.Error("BitonicSort wrong")
	}
	fkeys := make([]float64, len(keys))
	for i, k := range keys {
		fkeys[i] = float64(k)
	}
	got := m.Quicksort(fkeys, 3)
	for i := range got {
		if got[i] != float64(want[i]) {
			t.Fatal("Quicksort wrong")
		}
	}
	neg := []int{5, -2, 0, -9}
	if got := m.RadixSortInts(neg); !reflect.DeepEqual(got, []int{-9, -2, 0, 5}) {
		t.Errorf("RadixSortInts = %v", got)
	}
}

func TestMergePublic(t *testing.T) {
	m := scans.NewMachine()
	got := m.Merge([]int{1, 7, 10, 13, 15, 20}, []int{3, 4, 9, 22, 23, 26})
	want := []int{1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %v", got)
	}
}

func TestGraphAlgorithmsPublic(t *testing.T) {
	m := scans.NewMachine()
	edges := []scans.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 0, W: 10}, {U: 0, V: 2, W: 9},
	}
	r := m.MinimumSpanningTree(4, edges, 1)
	if r.Weight != 6 || len(r.EdgeIDs) != 3 {
		t.Errorf("MST = %+v", r)
	}
	labels := m.ConnectedComponents(5, edges, 1)
	if labels[0] != labels[3] || labels[4] == labels[0] {
		t.Errorf("CC labels = %v", labels)
	}
	set := m.MaximalIndependentSet(4, edges, 1)
	if len(set) != 4 {
		t.Errorf("MIS = %v", set)
	}
	// Biconnected components of the same graph: 0-1-2-3-0 with chord
	// 0-2 is one block.
	blocks := m.BiconnectedComponents(4, edges, 1)
	for _, b := range blocks {
		if b != blocks[0] {
			t.Errorf("blocks = %v, want one block", blocks)
		}
	}
}

func TestMaxFlowPublic(t *testing.T) {
	m := scans.NewMachine()
	n := 4
	capm := make([]int, n*n)
	capm[0*n+1] = 3
	capm[0*n+2] = 2
	capm[1*n+3] = 2
	capm[2*n+3] = 4
	if got := m.MaxFlow(capm, n, 0, 3); got != 4 {
		t.Errorf("MaxFlow = %d, want 4", got)
	}
}

func TestGeometryPublic(t *testing.T) {
	m := scans.NewMachine()
	hull := m.ConvexHull([]scans.HullPoint{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}})
	if len(hull) != 4 {
		t.Errorf("hull = %v", hull)
	}
	pts := []scans.GridPoint{{0, 0}, {10, 10}, {3, 4}, {4, 4}}
	if d := m.ClosestPair(pts); d != 1 {
		t.Errorf("ClosestPair = %d, want 1", d)
	}
	kt := m.BuildKDTree(pts, 1)
	if got := kt.NearestNeighbor(scans.GridPoint{X: 9, Y: 9}); got != 1 {
		t.Errorf("NearestNeighbor = %d, want 1", got)
	}
	vis := m.LineOfSight([]float64{10, 5, 20, 5})
	if !vis[0] || !vis[2] || vis[3] {
		t.Errorf("LineOfSight = %v", vis)
	}
	pixels, starts := m.DrawLines([]scans.Line{{X1: 0, Y1: 0, X2: 3, Y2: 0}})
	if len(pixels) != 4 || starts[0] != 0 {
		t.Errorf("DrawLines = %v %v", pixels, starts)
	}
}

func TestListAndTreePublic(t *testing.T) {
	m := scans.NewMachine()
	next := []int{1, 3, 0, 3}
	want := []int{2, 1, 3, 0}
	if got := m.ListRank(next, 1); !reflect.DeepEqual(got, want) {
		t.Errorf("ListRank = %v", got)
	}
	if got := m.ListRankPointerJump(next); !reflect.DeepEqual(got, want) {
		t.Errorf("ListRankPointerJump = %v", got)
	}
	tree := &scans.ExprTree{
		Parent: []int{-1, 0, 0, 1, 1},
		Left:   []int{1, 3, -1, -1, -1},
		Right:  []int{2, 4, -1, -1, -1},
		Ops:    []scans.ExprOp{scans.OpMul, scans.OpAdd, scans.OpAdd, scans.OpAdd, scans.OpAdd},
		Value:  []float64{0, 0, 4, 2, 3},
		Root:   0,
	}
	if got := m.EvalExpression(tree); got != 20 {
		t.Errorf("EvalExpression = %g, want 20", got)
	}
}

func TestSpMVPublic(t *testing.T) {
	m := scans.NewMachine()
	a := scans.SparseMatrix{
		Rows: 2, Cols: 3,
		RowStart: []int{0, 2, 3},
		Col:      []int{0, 2, 1},
		Val:      []float64{1, 2, 3},
	}
	y := m.SpMV(a, []float64{1, 2, 3})
	if !reflect.DeepEqual(y, []float64{7, 6}) {
		t.Errorf("SpMV = %v, want [7 6]", y)
	}
}

func TestMatrixPublic(t *testing.T) {
	m := scans.NewMachine()
	y := m.VecMat([]float64{1, 2}, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if !reflect.DeepEqual(y, []float64{9, 12, 15}) {
		t.Errorf("VecMat = %v", y)
	}
	c := m.MatMat([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}, 2)
	if !reflect.DeepEqual(c, []float64{19, 22, 43, 50}) {
		t.Errorf("MatMat = %v", c)
	}
	x, err := m.SolveLinearSystem([]float64{2, 1, 1, -1}, []float64{5, 1}, 2)
	if err != nil || !reflect.DeepEqual(x, []float64{2, 1}) {
		t.Errorf("Solve = %v, %v", x, err)
	}
}

func TestUsageCountersPublic(t *testing.T) {
	m := scans.NewMachine()
	m.RadixSort([]int{3, 1, 2})
	c := m.Counters()
	if c.UsageCounts[scans.UseSplit] == 0 || c.UsageCounts[scans.UseEnumerate] == 0 {
		t.Error("usage counters not populated")
	}
	m.ResetCounters()
	if m.Steps() != 0 {
		t.Error("reset failed")
	}
	if m.Model() != scans.ModelScan {
		t.Error("default model should be ModelScan")
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	serial := scans.NewMachine(scans.WithWorkers(1))
	parallel := scans.NewMachine(scans.WithWorkers(0))
	a := make([]int, len(data))
	b := make([]int, len(data))
	serial.PlusScan(a, data)
	parallel.PlusScan(b, data)
	if !reflect.DeepEqual(a, b) {
		t.Error("worker count changed scan results")
	}
	if serial.Steps() != parallel.Steps() {
		t.Error("worker count changed step accounting")
	}
}

func TestParHelper(t *testing.T) {
	m := scans.NewMachine()
	out := make([]int, 100)
	scans.Par(m, 100, func(i int) { out[i] = i * i })
	if out[7] != 49 {
		t.Error("Par did not apply f")
	}
	if m.Steps() != 1 {
		t.Errorf("Par cost %d steps, want 1", m.Steps())
	}
}
