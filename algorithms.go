package scans

import (
	"scans/internal/algo/bfs"
	"scans/internal/algo/bicc"
	"scans/internal/algo/bitonic"
	"scans/internal/algo/cc"
	"scans/internal/algo/closest"
	"scans/internal/algo/graph"
	"scans/internal/algo/hull"
	"scans/internal/algo/kdtree"
	"scans/internal/algo/lines"
	"scans/internal/algo/listrank"
	"scans/internal/algo/los"
	"scans/internal/algo/matrix"
	"scans/internal/algo/maxflow"
	"scans/internal/algo/merge"
	"scans/internal/algo/mis"
	"scans/internal/algo/mst"
	"scans/internal/algo/qsort"
	"scans/internal/algo/radix"
	"scans/internal/algo/rle"
	"scans/internal/algo/spmv"
	"scans/internal/algo/treecontract"
)

// This file is the algorithm façade: every algorithm of the paper (and
// every Table 1 row this repository implements), exposed on the public
// Machine.

// RadixSort sorts non-negative integers with the paper's split radix
// sort (§2.2.1): O(1) steps per key bit.
func (m *Machine) RadixSort(keys []int) []int {
	return radix.Sort(m.core, keys, radix.BitsFor(keys))
}

// RadixSortInts sorts arbitrary integers (negatives included) by
// range-shifting around the split radix sort.
func (m *Machine) RadixSortInts(keys []int) []int {
	return radix.SortInts(m.core, keys)
}

// BitonicSort sorts integers with Batcher's bitonic network executed on
// the machine: the Table 4 baseline, O(lg² n) steps.
func (m *Machine) BitonicSort(keys []int) []int {
	return bitonic.Sort(m.core, keys)
}

// Quicksort sorts float64 keys with the segmented parallel quicksort
// (§2.3.1): expected O(lg n) steps with random pivots. seed drives the
// pivot choice.
func (m *Machine) Quicksort(keys []float64, seed int64) []float64 {
	return qsort.Sort(m.core, keys, qsort.Options{Seed: seed})
}

// Merge merges two sorted int vectors with the halving merge (§2.5.1):
// O(n/p + lg n) steps. Values must fit in 62 bits.
func (m *Machine) Merge(a, b []int) []int {
	return merge.Merge(m.core, a, b)
}

// Edge is an undirected weighted graph edge.
type Edge struct {
	U, V int
	W    int
}

func toGraphEdges(edges []Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// MSTResult reports a minimum spanning forest.
type MSTResult struct {
	// EdgeIDs indexes the edge list passed to MinimumSpanningTree.
	EdgeIDs []int
	// Weight is the total forest weight.
	Weight int
	// Rounds is the number of star-merge rounds (expected O(lg n)).
	Rounds int
}

// MinimumSpanningTree computes a minimum spanning forest with the
// paper's random-mate star-merge algorithm (§2.3.3): expected O(lg n)
// steps.
func (m *Machine) MinimumSpanningTree(numVertices int, edges []Edge, seed int64) MSTResult {
	r := mst.Run(m.core, numVertices, toGraphEdges(edges), seed)
	return MSTResult{EdgeIDs: r.EdgeIDs, Weight: r.Weight, Rounds: r.Rounds}
}

// ConnectedComponents labels each vertex with its component (equal
// labels ⇔ connected), by random-mate contraction: expected O(lg n)
// steps.
func (m *Machine) ConnectedComponents(numVertices int, edges []Edge, seed int64) []int {
	return cc.Labels(m.core, numVertices, toGraphEdges(edges), seed)
}

// MaximalIndependentSet returns a maximal independent set as per-vertex
// flags, by Luby's algorithm on the segmented graph representation:
// expected O(lg n) steps.
func (m *Machine) MaximalIndependentSet(numVertices int, edges []Edge, seed int64) []bool {
	return mis.Run(m.core, numVertices, toGraphEdges(edges), seed)
}

// BiconnectedComponents labels every edge of a connected graph with its
// biconnected component (equal labels ⇔ a common simple cycle), by the
// Tarjan–Vishkin algorithm built on the Euler tour, list ranking and
// connected components substrates: expected O(lg n) steps.
func (m *Machine) BiconnectedComponents(numVertices int, edges []Edge, seed int64) []int {
	return bicc.Run(m.core, numVertices, toGraphEdges(edges), seed)
}

// MaxFlow computes the maximum s→t flow of a dense capacity matrix
// (capacity[u*n+v], zero for absent edges) by synchronous parallel
// push–relabel: O(1) steps per pulse with n² virtual processors.
func (m *Machine) MaxFlow(capacity []int, n, s, t int) int {
	return maxflow.Run(m.core, capacity, n, s, t)
}

// Pixel is an integer grid position produced by DrawLines.
type Pixel struct{ X, Y int }

// Line is a pair of inclusive endpoints.
type Line struct{ X1, Y1, X2, Y2 int }

// DrawLines renders all lines at once with the paper's allocation-based
// routine (§2.4.1): O(1) steps. The result concatenates each line's
// pixels; starts[i] is where line i's pixels begin.
func (m *Machine) DrawLines(ls []Line) (pixels []Pixel, starts []int) {
	in := make([]lines.Line, len(ls))
	for i, l := range ls {
		in[i] = lines.Line{From: lines.Point{X: l.X1, Y: l.Y1}, To: lines.Point{X: l.X2, Y: l.Y2}}
	}
	r := lines.Draw(m.core, in)
	pixels = make([]Pixel, len(r.Pixels))
	for i, p := range r.Pixels {
		pixels[i] = Pixel{X: p.X, Y: p.Y}
	}
	return pixels, r.Starts
}

// LineOfSight reports which terrain points along a ray are visible from
// the observer at index 0 (Table 1's O(1) row).
func (m *Machine) LineOfSight(altitudes []float64) []bool {
	return los.Visible(m.core, altitudes)
}

// HullPoint is a planar point for ConvexHull.
type HullPoint struct{ X, Y float64 }

// ConvexHull returns the convex hull in counterclockwise order via
// segmented quickhull: expected O(lg n) steps.
func (m *Machine) ConvexHull(pts []HullPoint) []HullPoint {
	in := make([]hull.Point, len(pts))
	for i, p := range pts {
		in[i] = hull.Point{X: p.X, Y: p.Y}
	}
	out := hull.QuickHull(m.core, in)
	res := make([]HullPoint, len(out))
	for i, p := range out {
		res[i] = HullPoint{X: p.X, Y: p.Y}
	}
	return res
}

// GridPoint is an integer planar point for the k-d tree and closest
// pair.
type GridPoint struct{ X, Y int }

// KDTree is a built 2-d tree; see NearestNeighbor.
type KDTree struct{ t *kdtree.Tree }

// BuildKDTree builds a 2-d tree over non-negative integer points by
// repeated median splits: O(lg n) steps after the orderings (Table 1).
func (m *Machine) BuildKDTree(pts []GridPoint, leafSize int) *KDTree {
	in := make([]kdtree.Point, len(pts))
	for i, p := range pts {
		in[i] = kdtree.Point{X: p.X, Y: p.Y}
	}
	return &KDTree{t: kdtree.Build(m.core, in, leafSize)}
}

// NearestNeighbor returns the index of the point nearest to q.
func (k *KDTree) NearestNeighbor(q GridPoint) int {
	return k.t.Nearest(kdtree.Point{X: q.X, Y: q.Y})
}

// ClosestPair returns the squared euclidean distance of the closest pair
// of non-negative integer points: O(lg n) steps (Table 1).
func (m *Machine) ClosestPair(pts []GridPoint) int {
	in := make([]closest.Point, len(pts))
	for i, p := range pts {
		in[i] = closest.Point{X: p.X, Y: p.Y}
	}
	return closest.Run(m.core, in).SqDist
}

// ListRank returns each node's distance to the end of its linked list
// (next[i] = successor; tails point to themselves), by work-efficient
// random-mate contraction (Table 5).
func (m *Machine) ListRank(next []int, seed int64) []int {
	return listrank.Contract(m.core, next, seed)
}

// ListRankPointerJump is Wyllie's pointer jumping: O(lg n) steps,
// O(n lg n) work (the p = n row of Table 5).
func (m *Machine) ListRankPointerJump(next []int) []int {
	return listrank.PointerJump(m.core, next)
}

// ExprOp is an expression-tree operator.
type ExprOp = treecontract.Op

// Expression operators.
const (
	OpAdd = treecontract.OpAdd
	OpMul = treecontract.OpMul
)

// ExprTree is a full binary arithmetic expression tree.
type ExprTree = treecontract.Tree

// EvalExpression evaluates an expression tree by parallel tree
// contraction: O(lg n) rounds (Table 5).
func (m *Machine) EvalExpression(t *ExprTree) float64 {
	return treecontract.Eval(m.core, t)
}

// BFS returns each vertex's breadth-first distance from source (-1 if
// unreachable), expanding whole frontiers with the allocation primitive:
// O(1) steps per level, O(diameter) steps total.
func (m *Machine) BFS(numVertices int, edges []Edge, source int) []int {
	return bfs.Levels(m.core, numVertices, toGraphEdges(edges), source)
}

// RLERun is one run of RLEEncode's output.
type RLERun struct {
	Value, Count int
}

// RLEEncode run-length encodes v in O(1) steps.
func (m *Machine) RLEEncode(v []int) []RLERun {
	rs := rle.Encode(m.core, v)
	out := make([]RLERun, len(rs))
	for i, r := range rs {
		out[i] = RLERun{Value: r.Value, Count: r.Count}
	}
	return out
}

// RLEDecode expands runs in O(1) steps via processor allocation.
func (m *Machine) RLEDecode(runs []RLERun) []int {
	rs := make([]rle.Run, len(runs))
	for i, r := range runs {
		rs[i] = rle.Run{Value: r.Value, Count: r.Count}
	}
	return rle.Decode(m.core, rs)
}

// SparseMatrix is a CSR sparse matrix for SpMV.
type SparseMatrix struct {
	Rows, Cols int
	RowStart   []int // len Rows+1; row r's nonzeros at [RowStart[r], RowStart[r+1])
	Col        []int
	Val        []float64
}

// SpMV multiplies a CSR sparse matrix by x with segmented scans: O(1)
// steps with one virtual processor per nonzero, immune to row-length
// skew (the canonical segmented-scan application).
func (m *Machine) SpMV(a SparseMatrix, x []float64) []float64 {
	return spmv.NewMatrix(a.Rows, a.Cols, a.RowStart, a.Col, a.Val).MulVec(m.core, x)
}

// VecMat multiplies the length-n vector v by the n×w row-major matrix a:
// O(1) steps with n·w virtual processors (Table 1).
func (m *Machine) VecMat(v, a []float64, n, w int) []float64 {
	return matrix.VecMat(m.core, v, a, n, w)
}

// MatMat multiplies two n×n row-major matrices: O(n) steps (Table 1).
func (m *Machine) MatMat(a, b []float64, n int) []float64 {
	return matrix.MatMat(m.core, a, b, n)
}

// SolveLinearSystem solves ax = rhs by Gauss–Jordan elimination with
// partial pivoting: O(n) steps (Table 1's "with pivoting" row).
func (m *Machine) SolveLinearSystem(a, rhs []float64, n int) ([]float64, error) {
	return matrix.Solve(m.core, a, rhs, n)
}
