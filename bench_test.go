package scans_test

// One benchmark family per table and figure of the paper's evaluation;
// EXPERIMENTS.md records paper-vs-measured. Each benchmark reports the
// simulated quantity the paper tabulates (program steps, bit cycles,
// processor-steps) via ReportMetric alongside wall-clock time, so
// `go test -bench` regenerates the numbers.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"scans"
	"scans/internal/algo/bitonic"
	"scans/internal/algo/cc"
	"scans/internal/algo/graph"
	"scans/internal/algo/qsort"
	"scans/internal/algo/radix"
	"scans/internal/algo/svcc"
	"scans/internal/circuit"
	"scans/internal/core"
	"scans/internal/figures"
	"scans/internal/network"
	"scans/internal/scan"
	"scans/internal/serve"
	"scans/internal/tables"
)

// BenchmarkTable1 runs every implemented Table 1 algorithm at several
// sizes under the scan and EREW cost models, reporting program steps.
func BenchmarkTable1(b *testing.B) {
	for _, alg := range tables.Algorithms() {
		for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
			for _, model := range []core.Model{core.ModelScan, core.ModelEREW} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", alg.Name, n, model), func(b *testing.B) {
					var steps int64
					for i := 0; i < b.N; i++ {
						m := core.New(core.WithModel(model))
						alg.Run(m, n, 42)
						steps = m.Steps()
					}
					b.ReportMetric(float64(steps), "steps")
				})
			}
		}
	}
}

// BenchmarkTable2Scan simulates the bit-pipelined tree scan at hardware
// scale; cycles are exact from the gate-level model.
func BenchmarkTable2Scan(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("tree-scan/n=%d", n), func(b *testing.B) {
			values := make([]uint64, n)
			rng := rand.New(rand.NewSource(2))
			for i := range values {
				values[i] = rng.Uint64() & 0xffff
			}
			var cycles int
			for i := 0; i < b.N; i++ {
				cycles = circuit.PlusScan(values, 16).Cycles
			}
			b.ReportMetric(float64(cycles), "bit-cycles")
		})
	}
	b.Run("formula/n=65536/m=32", func(b *testing.B) {
		var c int
		for i := 0; i < b.N; i++ {
			c = circuit.Cycles(circuit.OpPlus, 1<<16, 32)
		}
		b.ReportMetric(float64(c), "bit-cycles")
	})
}

// BenchmarkTable2Route simulates the omega-network memory reference that
// Table 2 compares the scan against.
func BenchmarkTable2Route(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("omega/n=%d", n), func(b *testing.B) {
			o := network.NewOmega(n)
			rng := rand.New(rand.NewSource(3))
			perm := rng.Perm(n)
			var cycles int
			for i := 0; i < b.N; i++ {
				cycles = o.Route(perm, 32).Cycles
			}
			b.ReportMetric(float64(cycles), "bit-cycles")
		})
	}
}

// BenchmarkTable3 regenerates the usage cross-reference.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables.Table3(1024, 7)
	}
}

// BenchmarkTable4 compares the split radix sort and the bitonic sort,
// reporting machine steps (the wall-clock columns come from the
// SortWallClock benchmarks below).
func BenchmarkTable4(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		for _, d := range []int{8, 16, 32} {
			keys := make([]int, n)
			rng := rand.New(rand.NewSource(4))
			for i := range keys {
				keys[i] = rng.Intn(1<<uint(d) - 1)
			}
			b.Run(fmt.Sprintf("radix/n=%d/d=%d", n, d), func(b *testing.B) {
				var steps int64
				var out []int
				for i := 0; i < b.N; i++ {
					m := scans.NewMachine()
					out = m.RadixSort(keys)
					steps = m.Steps()
				}
				if !sort.IntsAreSorted(out) {
					b.Fatal("radix unsorted")
				}
				b.ReportMetric(float64(steps), "steps")
			})
			b.Run(fmt.Sprintf("bitonic/n=%d/d=%d", n, d), func(b *testing.B) {
				var steps int64
				var out []int
				for i := 0; i < b.N; i++ {
					m := scans.NewMachine()
					out = m.BitonicSort(keys)
					steps = m.Steps()
				}
				if !sort.IntsAreSorted(out) {
					b.Fatal("bitonic unsorted")
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkTable4BitCycles reports the simulated bit-serial cycle counts
// at the paper's 64K-processor scale (the "Actual (64K processor CM-1)"
// row).
func BenchmarkTable4BitCycles(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var r tables.Table4Result
			for i := 0; i < b.N; i++ {
				r = tables.Table4(1<<16, d, 4)
			}
			b.ReportMetric(float64(r.RadixMachine), "radix-bit-cycles")
			b.ReportMetric(float64(r.BitonicMachine), "bitonic-bit-cycles")
		})
	}
}

// BenchmarkTable5 measures processor-step products with p = n and
// p = n / lg n for the three Table 5 algorithms.
func BenchmarkTable5(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rows []tables.Table5Row
			for i := 0; i < b.N; i++ {
				rows = tables.Table5(n, 5)
			}
			for _, r := range rows {
				name := strings.ReplaceAll(strings.ToLower(r.Name), " ", "-")
				b.ReportMetric(float64(r.PSFull), name+"-ps-full")
				b.ReportMetric(float64(r.PSFrac), name+"-ps-frac")
			}
		})
	}
}

// BenchmarkFigures regenerates all worked-example figures (the exactness
// assertions live in internal/figures' tests).
func BenchmarkFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(figures.All()) == 0 {
			b.Fatal("no figures")
		}
	}
}

// BenchmarkSortWallClock compares real wall-clock sorting throughput:
// the machine-model radix sort, the plain goroutine-parallel bitonic
// sort, and the standard library, over the same keys.
func BenchmarkSortWallClock(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(6))
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(1 << 16)
	}
	b.Run("machine-radix", func(b *testing.B) {
		m := scans.NewMachine(scans.WithWorkers(0), scans.WithExclusiveCheck(false))
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			m.RadixSort(keys)
		}
	})
	b.Run("bitonic-parallel", func(b *testing.B) {
		buf := make([]int, n)
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			copy(buf, keys)
			bitonic.SortParallel(buf, 0)
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		buf := make([]int, n)
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			copy(buf, keys)
			sort.Ints(buf)
		}
	})
}

// BenchmarkCRCWConnectedComponents measures Table 1's CRCW column for
// connected components: Shiloach–Vishkin hooking with min-combining
// concurrent writes, against the scan-model random-mate contraction.
func BenchmarkCRCWConnectedComponents(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10} {
		rng := rand.New(rand.NewSource(int64(n)))
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		b.Run(fmt.Sprintf("crcw-hooking/n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New(core.WithModel(core.ModelCRCW))
				svcc.Labels(m, n, edges)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
		b.Run(fmt.Sprintf("scan-contraction/n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				cc.Labels(m, n, edges, 5)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationRadixBits sweeps the bits-per-pass of the multi-bit
// radix extension against the paper's 1-bit split sort (DESIGN.md
// ablation): fewer passes, more scans per pass.
func BenchmarkAblationRadixBits(b *testing.B) {
	n, d := 1<<13, 16
	rng := rand.New(rand.NewSource(10))
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(1 << uint(d))
	}
	for _, r := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				radix.SortMultiBit(m, keys, d, r)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationPivot compares the quicksort pivot strategies: random
// (the expected-O(lg n) guarantee) vs first-element (the paper's
// walk-through choice, adversarial on sorted input).
func BenchmarkAblationPivot(b *testing.B) {
	n := 1 << 12
	rng := rand.New(rand.NewSource(11))
	random := make([]float64, n)
	for i := range random {
		random[i] = rng.Float64()
	}
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	for _, tc := range []struct {
		name  string
		keys  []float64
		pivot qsort.Pivot
	}{
		{"random-keys/random-pivot", random, qsort.PivotRandom},
		{"random-keys/first-pivot", random, qsort.PivotFirst},
		{"reversed-keys/random-pivot", reverse(sorted), qsort.PivotRandom},
		{"reversed-keys/first-pivot", reverse(sorted), qsort.PivotFirst},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				qsort.Sort(m, tc.keys, qsort.Options{Pivot: tc.pivot, Seed: 5})
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

func reverse(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[len(v)-1-i]
	}
	return out
}

// BenchmarkAblationExclusiveCheck prices the machine's EREW verification
// (DESIGN.md ablation): permutes with and without the checker.
func BenchmarkAblationExclusiveCheck(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(n)
	src := make([]int, n)
	dst := make([]int, n)
	for _, check := range []bool{true, false} {
		b.Run(fmt.Sprintf("check=%v", check), func(b *testing.B) {
			m := scans.NewMachine(scans.WithExclusiveCheck(check))
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				scans.Permute(m, dst, src, perm)
			}
		})
	}
}

// BenchmarkServeFusedVsSequential measures the serve subsystem's fusion
// claim on its acceptance workload: K=1000 requests of n=256 elements
// each. "sequential" serves them one at a time (a single closed-loop
// client, so every request is its own dispatch and kernel pass);
// "fused" submits them all asynchronously so the batcher coalesces them
// into a handful of segmented kernel passes. "direct" is the bare
// serial kernel loop with no service at all — the floor that any
// serving layer's overhead is measured against. EXPERIMENTS.md records
// the numbers.
func BenchmarkServeFusedVsSequential(b *testing.B) {
	const K, n = 1000, 256
	rng := rand.New(rand.NewSource(11))
	data := make([][]int64, K)
	for i := range data {
		data[i] = make([]int64, n)
		for j := range data[i] {
			data[i][j] = int64(rng.Intn(100))
		}
	}
	spec := serve.Spec{Op: serve.OpSum}

	b.Run("direct", func(b *testing.B) {
		b.SetBytes(int64(K * n * 8))
		for i := 0; i < b.N; i++ {
			for k := 0; k < K; k++ {
				dst := make([]int64, n)
				scan.Exclusive(scan.Add[int64]{}, dst, data[k])
			}
		}
	})

	b.Run("sequential", func(b *testing.B) {
		s := serve.New(serve.Config{QueueLimit: 2 * K})
		defer s.Close()
		b.SetBytes(int64(K * n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < K; k++ {
				if _, err := s.Submit(spec, data[k]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("fused", func(b *testing.B) {
		s := serve.New(serve.Config{QueueLimit: 2 * K})
		defer s.Close()
		futures := make([]*serve.Future, K)
		b.SetBytes(int64(K * n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < K; k++ {
				f, err := s.SubmitAsync(spec, data[k])
				if err != nil {
					b.Fatal(err)
				}
				futures[k] = f
			}
			for _, f := range futures {
				if _, err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		st := s.Stats()
		b.ReportMetric(float64(st.Requests)/float64(st.Batches), "req/batch")
	})
}
