// Quickstart: the scan primitives and the vector operations built on
// them, on the step-counted scan-model machine.
package main

import (
	"fmt"

	"scans"
)

func main() {
	m := scans.NewMachine()

	// The two primitive scans (§2.1). Scans are exclusive: element i
	// receives the combination of elements 0..i-1.
	data := []int{2, 1, 2, 3, 5, 8, 13, 21}
	prefix := make([]int, len(data))
	total := m.PlusScan(prefix, data)
	fmt.Printf("data       %v\n", data)
	fmt.Printf("+-scan     %v (total %d)\n", prefix, total)
	runningMax := make([]int, len(data))
	m.MaxScan(runningMax, data)
	fmt.Printf("max-scan   %v (identity at [0])\n", runningMax)

	// Segmented scans (§2.3) restart at each segment.
	flags := []bool{true, false, true, false, false, false, true, false}
	seg := make([]int, len(data))
	m.SegPlusScan(seg, data, flags)
	fmt.Printf("seg-+-scan %v with segments at 0, 2, 6\n", seg)

	// Compound O(1)-step operations: enumerate flagged elements, pack
	// them densely, split by a flag.
	marked := []bool{false, true, true, false, true, false, false, true}
	idx := make([]int, len(data))
	count := m.Enumerate(idx, marked)
	packed := make([]int, count)
	scans.Pack(m, packed, data, marked)
	fmt.Printf("packed     %v (%d marked elements)\n", packed, count)

	// Processor allocation (§2.4): give position i counts[i] new
	// elements and distribute a value across each segment.
	counts := []int{3, 0, 2}
	alloc := m.Allocate(counts)
	out := make([]string, alloc.Total)
	scans.Distribute(m, alloc, out, []string{"a", "b", "c"}, counts)
	fmt.Printf("allocate   %v from counts %v\n", out, counts)

	// Everything above was a handful of program steps.
	fmt.Printf("\ntotal program steps: %d\n", m.Steps())

	// The same scan charged under a plain EREW P-RAM costs 2 lg n steps;
	// that gap is the paper's whole argument.
	erew := scans.NewMachine(scans.WithModel(scans.ModelEREW))
	big := make([]int, 1<<20)
	erew.PlusScan(make([]int, len(big)), big)
	fmt.Printf("one +-scan over 2^20 elements: scan model 1 step, EREW model %d steps\n", erew.Steps())
}
