// Spanningtree builds a minimum spanning tree of a random weighted grid
// graph with the paper's §2.3.3 random-mate star-merge algorithm and
// reports the expected-O(lg n) round count, then cross-checks against
// connected components on a thinned copy of the graph.
package main

import (
	"fmt"
	"math/rand"

	"scans"
)

func main() {
	const side = 24 // a side x side grid: 576 vertices
	n := side * side
	rng := rand.New(rand.NewSource(7))

	var edges []scans.Edge
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				edges = append(edges, scans.Edge{U: id(x, y), V: id(x+1, y), W: rng.Intn(1000)})
			}
			if y+1 < side {
				edges = append(edges, scans.Edge{U: id(x, y), V: id(x, y+1), W: rng.Intn(1000)})
			}
		}
	}

	m := scans.NewMachine()
	r := m.MinimumSpanningTree(n, edges, 7)
	fmt.Printf("grid graph: %d vertices, %d edges\n", n, len(edges))
	fmt.Printf("MST: %d edges, total weight %d, %d star-merge rounds (lg n = 10)\n",
		len(r.EdgeIDs), r.Weight, r.Rounds)
	fmt.Printf("program steps: %d\n", m.Steps())

	// Keep only the cheap edges and count the resulting components.
	var thinned []scans.Edge
	for _, e := range edges {
		if e.W < 300 {
			thinned = append(thinned, e)
		}
	}
	labels := m.ConnectedComponents(n, thinned, 7)
	comps := map[int]bool{}
	for _, l := range labels {
		comps[l] = true
	}
	fmt.Printf("keeping edges with weight < 300 (%d edges) leaves %d components\n",
		len(thinned), len(comps))

	// A maximal independent set of the full grid.
	set := m.MaximalIndependentSet(n, edges, 7)
	count := 0
	for _, s := range set {
		if s {
			count++
		}
	}
	fmt.Printf("maximal independent set: %d of %d vertices\n", count, n)
}
