// Minimax plays the subtraction game (Nim with a single pile, take 1-3
// stones, last mover wins) by brute-force game-tree search — the
// branch-and-bound motivation of the paper's §2.4: "since the algorithm
// dynamically decides how many next moves to generate ... we need to
// dynamically allocate new elements."
//
// Each ply expands the whole frontier at once: every position counts its
// legal moves, one Allocate call creates a processor per child, and the
// level's segment flags are kept so the backward pass can fold the
// minimax values with one segmented distribute per ply.
package main

import (
	"fmt"

	"scans"
)

// position is a game state: stones left, and whether the maximizing
// player moves.
type position struct {
	stones  int
	maxTurn bool
}

// moves returns how many legal moves a position has (0 when the game is
// over: the player to move has lost).
func (p position) moves() int {
	if p.stones <= 0 {
		return 0
	}
	if p.stones > 3 {
		return 3
	}
	return p.stones
}

func main() {
	const startStones = 11
	m := scans.NewMachine()

	// Forward pass: expand ply by ply, remembering each level's frontier
	// and allocation so the backward pass can fold values up.
	type level struct {
		positions []position
		alloc     scans.Allocation
		counts    []int
	}
	var levels []level
	frontier := []position{{stones: startStones, maxTurn: true}}
	for ply := 0; ; ply++ {
		counts := make([]int, len(frontier))
		scans.Par(m, len(frontier), func(i int) { counts[i] = frontier[i].moves() })
		alloc := m.Allocate(counts)
		if alloc.Total == 0 {
			levels = append(levels, level{positions: frontier})
			break
		}
		// Every child processor works out which move it is (its rank in
		// its segment) and derives its position.
		parents := make([]position, alloc.Total)
		scans.Distribute(m, alloc, parents, frontier, counts)
		rank := make([]int, alloc.Total)
		scans.Par(m, alloc.Total, func(i int) { rank[i] = i })
		head := make([]int, alloc.Total)
		scans.SegCopy(m, head, rank, alloc.Flags)
		children := make([]position, alloc.Total)
		scans.Par(m, alloc.Total, func(i int) {
			take := rank[i] - head[i] + 1
			children[i] = position{stones: parents[i].stones - take, maxTurn: !parents[i].maxTurn}
		})
		levels = append(levels, level{positions: frontier, alloc: alloc, counts: counts})
		frontier = children
	}

	// Backward pass: leaves score -1 for the player who cannot move
	// (from the maximizer's viewpoint), then each ply folds its
	// children's values with a segmented min- or max-distribute.
	values := make([]int, len(frontier))
	scans.Par(m, len(frontier), func(i int) {
		if frontier[i].maxTurn {
			values[i] = -1 // maximizer to move with no moves: loss
		} else {
			values[i] = 1
		}
	})
	for ply := len(levels) - 2; ply >= 0; ply-- {
		lv := levels[ply]
		// Terminal positions at this ply (no children) keep their own
		// value; expanded ones take min or max over their segment.
		maxSeg := make([]int, len(values))
		minSeg := make([]int, len(values))
		segMaxDistribute(m, maxSeg, values, lv.alloc.Flags)
		segMinDistribute(m, minSeg, values, lv.alloc.Flags)
		parentVals := make([]int, len(lv.positions))
		scans.Par(m, len(lv.positions), func(i int) {
			if lv.counts[i] == 0 {
				if lv.positions[i].maxTurn {
					parentVals[i] = -1
				} else {
					parentVals[i] = 1
				}
				return
			}
			at := lv.alloc.HPointers[i]
			if lv.positions[i].maxTurn {
				parentVals[i] = maxSeg[at]
			} else {
				parentVals[i] = minSeg[at]
			}
		})
		values = parentVals
	}

	verdict := "second player wins"
	if values[0] > 0 {
		verdict = "first player wins"
	}
	fmt.Printf("subtraction game, %d stones, take 1-3: %s (value %+d)\n",
		startStones, verdict, values[0])
	fmt.Printf("game tree searched in %d plies, %d program steps\n", len(levels), m.Steps())
	// Theory: the first player loses iff stones ≡ 0 (mod 4).
	if want := startStones%4 != 0; (values[0] > 0) != want {
		panic("minimax disagrees with the known theory of the subtraction game")
	}
	fmt.Println("matches the known theory: first player loses iff stones % 4 == 0")
}

// segMaxDistribute / segMinDistribute fold each segment's extreme to all
// its members using the public scan API.
func segMaxDistribute(m *scans.Machine, dst, src []int, flags []bool) {
	tmp := make([]int, len(src))
	m.SegMaxScan(tmp, src, flags)
	scans.Par(m, len(src), func(i int) {
		if src[i] > tmp[i] {
			tmp[i] = src[i]
		}
	})
	backCopySeg(m, dst, tmp, flags)
}

func segMinDistribute(m *scans.Machine, dst, src []int, flags []bool) {
	tmp := make([]int, len(src))
	m.SegMinScan(tmp, src, flags)
	scans.Par(m, len(src), func(i int) {
		if src[i] < tmp[i] {
			tmp[i] = src[i]
		}
	})
	backCopySeg(m, dst, tmp, flags)
}

// backCopySeg copies each segment's last element across the segment.
func backCopySeg(m *scans.Machine, dst, src []int, flags []bool) {
	n := len(src)
	var cur int
	for i := n - 1; i >= 0; i-- {
		if i == n-1 || flags[i+1] {
			cur = src[i]
		}
		dst[i] = cur
	}
}
