// Sorting compares the paper's three sorting stories on the same keys:
// the split radix sort (O(d) steps), the segmented quicksort (expected
// O(lg n) steps), and the bitonic sort (O(lg² n) steps), then shows the
// halving merge combining two sorted runs in O(lg n) steps.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"scans"
)

func main() {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(1987))
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(1 << 16)
	}

	type result struct {
		name  string
		steps int64
	}
	var results []result
	check := func(name string, got []int) {
		if !sort.IntsAreSorted(got) {
			panic(name + " failed to sort")
		}
	}

	m := scans.NewMachine()
	check("radix", m.RadixSort(keys))
	results = append(results, result{"split radix sort (16-bit keys)", m.Steps()})

	m = scans.NewMachine()
	fkeys := make([]float64, n)
	for i, k := range keys {
		fkeys[i] = float64(k)
	}
	m.Quicksort(fkeys, 3)
	results = append(results, result{"segmented quicksort", m.Steps()})

	m = scans.NewMachine()
	check("bitonic", m.BitonicSort(keys))
	results = append(results, result{"bitonic sort", m.Steps()})

	fmt.Printf("sorting %d keys on the scan-model machine:\n", n)
	for _, r := range results {
		fmt.Printf("  %-32s %6d program steps\n", r.name, r.steps)
	}

	// Merge two sorted halves with the halving merge.
	a := append([]int(nil), keys[:n/2]...)
	b := append([]int(nil), keys[n/2:]...)
	sort.Ints(a)
	sort.Ints(b)
	m = scans.NewMachine()
	merged := m.Merge(a, b)
	check("merge", merged)
	fmt.Printf("  %-32s %6d program steps\n", "halving merge of two halves", m.Steps())
	fmt.Println("\nthe radix sort is why the Connection Machine shipped it as its sort:")
	fmt.Println("O(1) steps per key bit beats lg^2 n comparator stages at practical sizes")
}
