// Pagerank runs power iteration on a small link graph with the
// segmented-scan sparse matrix-vector product — the kind of irregular
// data-parallel workload (wildly varying row lengths) that the paper's
// segmented operations exist for: every iteration is O(1) program steps
// regardless of how skewed the link structure is.
package main

import (
	"fmt"
	"math"
	"sort"

	"scans"
)

func main() {
	// A miniature web: page -> pages it links to.
	links := map[string][]string{
		"home":     {"docs", "blog", "about"},
		"docs":     {"home", "api", "guide"},
		"api":      {"docs"},
		"guide":    {"docs", "api"},
		"blog":     {"home", "docs", "guide", "about"},
		"about":    {"home"},
		"orphan":   {"home"},
		"sink":     {},
		"linkfarm": {"home", "docs", "api", "guide", "blog", "about", "orphan", "sink"},
	}
	var names []string
	for name := range links {
		names = append(names, name)
	}
	sort.Strings(names)
	id := map[string]int{}
	for i, name := range names {
		id[name] = i
	}
	n := len(names)

	// Column-stochastic transition matrix in CSR form, built by rows of
	// the *transpose*: rank flows along in-links, so row r collects the
	// pages linking to r, weighted by 1/outdegree.
	in := make([][]int, n)
	outdeg := make([]int, n)
	for from, tos := range links {
		outdeg[id[from]] = len(tos)
		for _, to := range tos {
			in[id[to]] = append(in[id[to]], id[from])
		}
	}
	rowStart := make([]int, n+1)
	var col []int
	var val []float64
	for r := 0; r < n; r++ {
		rowStart[r] = len(col)
		sort.Ints(in[r])
		for _, from := range in[r] {
			col = append(col, from)
			val = append(val, 1/float64(outdeg[from]))
		}
	}
	rowStart[n] = len(col)
	matrix := scans.SparseMatrix{Rows: n, Cols: n, RowStart: rowStart, Col: col, Val: val}

	const damping = 0.85
	m := scans.NewMachine()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	iters := 0
	for ; iters < 200; iters++ {
		next := m.SpMV(matrix, rank)
		// Dangling pages (no out-links) spread their rank uniformly;
		// fold that and the damping in elementwise.
		var dangling float64
		for i := range rank {
			if outdeg[i] == 0 {
				dangling += rank[i]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		scans.Par(m, n, func(i int) { next[i] = base + damping*next[i] })
		delta := 0.0
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank = next
		if delta < 1e-10 {
			break
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rank[order[a]] > rank[order[b]] })
	fmt.Printf("pagerank over %d pages, converged after %d iterations (%d program steps):\n",
		n, iters+1, m.Steps())
	for _, i := range order {
		fmt.Printf("  %-9s %.4f\n", names[i], rank[i])
	}
	var total float64
	for _, r := range rank {
		total += r
	}
	if math.Abs(total-1) > 1e-6 {
		panic(fmt.Sprintf("ranks do not sum to 1: %g", total))
	}
	fmt.Println("each iteration is O(1) program steps however skewed the link graph")
}
