// Linedraw renders a spinning star of lines with the paper's §2.4.1
// line-drawing routine: every line allocates one processor per pixel
// with a +-scan, and every pixel computes its own position — O(1)
// program steps no matter how many lines or pixels.
package main

import (
	"fmt"
	"math"
	"strings"

	"scans"
)

func main() {
	const size = 41
	c := size / 2
	m := scans.NewMachine()

	var ls []scans.Line
	for k := 0; k < 12; k++ {
		th := 2 * math.Pi * float64(k) / 12
		ls = append(ls, scans.Line{
			X1: c, Y1: c,
			X2: c + int(float64(c-1)*math.Cos(th)),
			Y2: c + int(float64(c-1)*math.Sin(th)),
		})
	}
	pixels, starts := m.DrawLines(ls)

	grid := make([]bool, size*size)
	for _, p := range pixels {
		grid[p.Y*size+p.X] = true
	}
	var b strings.Builder
	for y := size - 1; y >= 0; y-- {
		for x := 0; x < size; x++ {
			if grid[y*size+x] {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	fmt.Printf("%d lines -> %d pixels (line 3 starts at pixel %d) in %d program steps\n",
		len(ls), len(pixels), starts[3], m.Steps())
	fmt.Println("drawing 10x more lines would take exactly the same number of steps")
}
