// Package rle implements run-length encoding and decoding with the
// paper's vector operations — a staple example of the scan-vector style:
// encoding is a head-flag pass, an enumerate and a pack; decoding is one
// processor allocation plus a distribute. Both directions are O(1)
// program steps for any input, however the run lengths are distributed.
package rle

import (
	"fmt"

	"scans/internal/core"
)

// Run is one (value, count) pair.
type Run struct {
	Value int
	Count int
}

// Encode compresses v into runs in O(1) program steps.
func Encode(m *core.Machine, v []int) []Run {
	n := len(v)
	if n == 0 {
		return nil
	}
	heads := make([]bool, n)
	core.Par(m, n, func(i int) { heads[i] = i == 0 || v[i] != v[i-1] })
	// Each head's run length = next head's index - its own.
	idx := make([]int, n)
	runs := core.Enumerate(m, idx, heads) // run number per position
	starts := make([]int, runs)
	core.PackIndex(m, starts, heads)
	values := make([]int, runs)
	core.Pack(m, values, v, heads)
	out := make([]Run, runs)
	core.Par(m, runs, func(r int) {
		end := n
		if r+1 < runs {
			end = starts[r+1]
		}
		out[r] = Run{Value: values[r], Count: end - starts[r]}
	})
	return out
}

// Decode expands runs back into a flat vector in O(1) program steps:
// allocate Count processors per run and distribute the value.
func Decode(m *core.Machine, runs []Run) []int {
	k := len(runs)
	counts := make([]int, k)
	values := make([]int, k)
	core.Par(m, k, func(r int) {
		if runs[r].Count < 0 {
			panic(fmt.Sprintf("rle: run %d has negative count %d", r, runs[r].Count))
		}
		counts[r] = runs[r].Count
		values[r] = runs[r].Value
	})
	alloc := core.Allocate(m, counts)
	out := make([]int, alloc.Total)
	core.Distribute(m, alloc, out, values, counts)
	return out
}
