package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func TestEncodeDecodeBasic(t *testing.T) {
	m := core.New()
	v := []int{7, 7, 7, 2, 9, 9, 9, 9, 1}
	runs := Encode(m, v)
	want := []Run{{7, 3}, {2, 1}, {9, 4}, {1, 1}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("Encode = %v, want %v", runs, want)
	}
	back := Decode(m, runs)
	if !reflect.DeepEqual(back, v) {
		t.Errorf("Decode = %v, want %v", back, v)
	}
}

func TestEdgeCases(t *testing.T) {
	m := core.New()
	if got := Encode(m, nil); got != nil {
		t.Errorf("Encode(nil) = %v", got)
	}
	if got := Decode(m, nil); len(got) != 0 {
		t.Errorf("Decode(nil) = %v", got)
	}
	if got := Encode(m, []int{5}); !reflect.DeepEqual(got, []Run{{5, 1}}) {
		t.Errorf("single = %v", got)
	}
	// Zero-count runs vanish on decode.
	if got := Decode(m, []Run{{1, 0}, {2, 3}, {3, 0}}); !reflect.DeepEqual(got, []int{2, 2, 2}) {
		t.Errorf("zero-count = %v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		m := core.New()
		v := make([]int, len(raw))
		for i, x := range raw {
			v[i] = int(x % 4) // long runs
		}
		back := Decode(m, Encode(m, v))
		if len(v) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestConstantSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	steps := func(n int) int64 {
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(3)
		}
		m := core.New()
		Decode(m, Encode(m, v))
		return m.Steps()
	}
	if s1, s2 := steps(64), steps(8192); s1 != s2 {
		t.Errorf("steps grew with n: %d vs %d", s1, s2)
	}
}

func TestNegativeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Decode(core.New(), []Run{{1, -2}})
}
