// Package hull computes planar convex hulls with a segmented quickhull,
// the style of algorithm the paper's Table 1 prices at O(lg n) expected
// program steps in the scan model: every round, all open hull edges
// simultaneously find their farthest outside point with a segmented
// max-distribute, settle it, and split their candidate sets with
// segmented splits — O(1) steps per round regardless of how many edges
// are open.
package hull

import (
	"math"
	"sort"

	"scans/internal/core"
)

// Point is a planar point.
type Point struct{ X, Y float64 }

// cross returns the z-component of (b-a) × (c-a): positive when c lies
// strictly left of the directed line a→b.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// QuickHull returns the convex hull of pts in counterclockwise order,
// starting from the leftmost-lowest point, with collinear boundary
// points omitted. Degenerate inputs (all collinear, duplicates) yield
// the two extreme points, or one for a single distinct point.
func QuickHull(m *core.Machine, pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	lo, hi := extremes(m, pts)
	if lo == hi {
		return []Point{pts[lo]}
	}
	a, b := pts[lo], pts[hi]
	// Initial working vector: [a, points right of b->a ... , b, points
	// right of a->b ...] — i.e. below the a-b line first, giving
	// counterclockwise order. Segment heads are the settled hull points.
	d := make([]float64, n)
	core.Par(m, n, func(i int) { d[i] = cross(a, b, pts[i]) })
	var xs, ys []float64
	var flags []bool
	push := func(p Point, head bool) {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
		flags = append(flags, head)
	}
	push(a, true)
	for i, p := range pts {
		if d[i] < 0 {
			push(p, false)
		}
	}
	push(b, true)
	for i, p := range pts {
		if d[i] > 0 {
			push(p, false)
		}
	}
	m.Use(core.UseSegmented)
	xs, ys, flags = refine(m, xs, ys, flags)
	out := make([]Point, len(xs))
	for i := range out {
		out[i] = Point{xs[i], ys[i]}
	}
	return out
}

// extremes returns the indices of the leftmost-lowest and
// rightmost-highest points: two distributes per coordinate and a
// min-distribute over the qualifying indices, O(1) steps.
func extremes(m *core.Machine, pts []Point) (lo, hi int) {
	n := len(pts)
	xs := make([]float64, n)
	ys := make([]float64, n)
	core.Par(m, n, func(i int) { xs[i], ys[i] = pts[i].X, pts[i].Y })
	one := make([]bool, n) // a single segment
	pick := func(wantMaxX bool) int {
		bestX := make([]float64, n)
		if wantMaxX {
			core.SegFMaxDistribute(m, bestX, xs, one)
		} else {
			core.SegFMinDistribute(m, bestX, xs, one)
		}
		maskedY := maskWhere(m, ys, xs, bestX, !wantMaxX)
		bestY := make([]float64, n)
		if wantMaxX {
			core.SegFMaxDistribute(m, bestY, maskedY, one)
		} else {
			core.SegFMinDistribute(m, bestY, maskedY, one)
		}
		idx := make([]int, n)
		core.Par(m, n, func(i int) {
			if xs[i] == bestX[i] && ys[i] == bestY[i] {
				idx[i] = i
			} else {
				idx[i] = core.MaxIdentity
			}
		})
		out := make([]int, n)
		best := core.MinDistribute(m, out, idx)
		return best
	}
	return pick(false), pick(true)
}

// maskWhere returns vals where key == bound, else ±Inf (the losing
// direction for the following distribute).
func maskWhere(m *core.Machine, vals, key, bound []float64, minSide bool) []float64 {
	n := len(vals)
	out := make([]float64, n)
	fill := math.Inf(1)
	if !minSide {
		fill = math.Inf(-1)
	}
	core.Par(m, n, func(i int) {
		if key[i] == bound[i] {
			out[i] = vals[i]
		} else {
			out[i] = fill
		}
	})
	return out
}

// refine runs quickhull rounds until no candidates remain. The working
// vector's segment heads are settled hull points in hull order; each
// segment's candidates lie strictly right of the directed edge from its
// head to the next segment's head (cyclically).
func refine(m *core.Machine, xs, ys []float64, flags []bool) ([]float64, []float64, []bool) {
	for round := 0; ; round++ {
		n := len(xs)
		heads := 0
		for _, f := range flags {
			if f {
				heads++
			}
		}
		if n == heads {
			return xs, ys, flags
		}
		if round > n+10 {
			panic("hull: refine did not converge")
		}
		// A = own segment head, B = next segment head (cyclic).
		ax := make([]float64, n)
		core.SegCopy(m, ax, xs, flags)
		ay := make([]float64, n)
		core.SegCopy(m, ay, ys, flags)
		bx := nextHeadValues(m, xs, flags, heads)
		by := nextHeadValues(m, ys, flags, heads)
		// Signed distance of each candidate from edge A->B (right of the
		// edge = positive, our outside direction given the CCW layout).
		dist := make([]float64, n)
		core.Par(m, n, func(i int) {
			if flags[i] {
				dist[i] = math.Inf(-1)
				return
			}
			dist[i] = -crossXY(ax[i], ay[i], bx[i], by[i], xs[i], ys[i])
		})
		masked := make([]float64, n)
		core.Par(m, n, func(i int) {
			if !flags[i] && dist[i] > 0 {
				masked[i] = dist[i]
			} else {
				masked[i] = math.Inf(-1)
			}
		})
		maxd := make([]float64, n)
		core.SegFMaxDistribute(m, maxd, masked, flags)
		isMax := make([]bool, n)
		core.Par(m, n, func(i int) { isMax[i] = masked[i] == maxd[i] && !math.IsInf(maxd[i], -1) })
		// Distance ties (a run of candidates collinear parallel to the
		// base) must resolve to the run's far end, or interior collinear
		// points would later settle as hull vertices: tie-break on the
		// projection along A->B.
		proj := make([]float64, n)
		core.Par(m, n, func(i int) {
			if isMax[i] {
				proj[i] = (xs[i]-ax[i])*(bx[i]-ax[i]) + (ys[i]-ay[i])*(by[i]-ay[i])
			} else {
				proj[i] = math.Inf(-1)
			}
		})
		maxProj := make([]float64, n)
		core.SegFMaxDistribute(m, maxProj, proj, flags)
		isBest := make([]bool, n)
		core.Par(m, n, func(i int) { isBest[i] = isMax[i] && proj[i] == maxProj[i] })
		rank := make([]int, n)
		core.SegEnumerate(m, rank, isBest, flags)
		isC := make([]bool, n)
		core.Par(m, n, func(i int) { isC[i] = isBest[i] && rank[i] == 0 })
		cx := make([]float64, n)
		core.SegFMaxDistribute(m, cx, maskVal(m, xs, isC), flags)
		cy := make([]float64, n)
		core.SegFMaxDistribute(m, cy, maskVal(m, ys, isC), flags)
		// Children: right of A->C goes to the A segment, right of C->B
		// to the C segment; everything else (inside the triangle, or on
		// an edge) is dropped.
		inAC := make([]bool, n)
		inCB := make([]bool, n)
		core.Par(m, n, func(i int) {
			if flags[i] || isC[i] || dist[i] <= 0 || math.IsInf(maxd[i], -1) {
				return
			}
			switch {
			case -crossXY(ax[i], ay[i], cx[i], cy[i], xs[i], ys[i]) > 0:
				inAC[i] = true
			case -crossXY(cx[i], cy[i], bx[i], by[i], xs[i], ys[i]) > 0:
				inCB[i] = true
			}
		})
		// New within-segment layout: [A, AC..., C, CB...].
		hasC := make([]bool, n)
		core.SegOrDistribute(m, hasC, isC, flags)
		rankAC := make([]int, n)
		core.SegEnumerate(m, rankAC, inAC, flags)
		rankCB := make([]int, n)
		core.SegEnumerate(m, rankCB, inCB, flags)
		nAC := segCount(m, inAC, flags)
		nCB := segCount(m, inCB, flags)
		segLen := make([]int, n)
		core.Par(m, n, func(i int) {
			segLen[i] = 1 + nAC[i] + nCB[i]
			if hasC[i] {
				segLen[i]++
			}
		})
		headLen := make([]int, n)
		core.Par(m, n, func(i int) {
			if flags[i] {
				headLen[i] = segLen[i]
			}
		})
		startScan := make([]int, n)
		total := core.PlusScan(m, startScan, headLen)
		segStart := make([]int, n)
		core.SegCopy(m, segStart, startScan, flags)
		keep := make([]bool, n)
		pos := make([]int, n)
		core.Par(m, n, func(i int) {
			switch {
			case flags[i]:
				keep[i] = true
				pos[i] = segStart[i]
			case inAC[i]:
				keep[i] = true
				pos[i] = segStart[i] + 1 + rankAC[i]
			case isC[i]:
				keep[i] = true
				pos[i] = segStart[i] + 1 + nAC[i]
			case inCB[i]:
				keep[i] = true
				pos[i] = segStart[i] + 2 + nAC[i] + rankCB[i]
			}
		})
		nxs := make([]float64, total)
		nys := make([]float64, total)
		nflags := make([]bool, total)
		core.PermuteIf(m, nxs, xs, pos, keep)
		core.PermuteIf(m, nys, ys, pos, keep)
		isHead := make([]bool, n)
		core.Par(m, n, func(i int) { isHead[i] = flags[i] || isC[i] })
		core.PermuteIf(m, nflags, isHead, pos, keep)
		xs, ys, flags = nxs, nys, nflags
	}
}

func crossXY(ax, ay, bx, by, px, py float64) float64 {
	return (bx-ax)*(py-ay) - (by-ay)*(px-ax)
}

// maskVal returns src where sel, else -Inf (for max-distributes that
// pick out one value per segment).
func maskVal(m *core.Machine, src []float64, sel []bool) []float64 {
	n := len(src)
	out := make([]float64, n)
	core.Par(m, n, func(i int) {
		if sel[i] {
			out[i] = src[i]
		} else {
			out[i] = math.Inf(-1)
		}
	})
	return out
}

// segCount distributes the per-segment count of flagged elements.
func segCount(m *core.Machine, sel []bool, flags []bool) []int {
	n := len(sel)
	ones := make([]int, n)
	core.Par(m, n, func(i int) {
		if sel[i] {
			ones[i] = 1
		}
	})
	out := make([]int, n)
	core.SegPlusDistribute(m, out, ones, flags)
	return out
}

// nextHeadValues gives every slot the value at the NEXT segment's head,
// cyclically: pack the head values, rotate by one, scatter back, and
// distribute.
func nextHeadValues(m *core.Machine, vals []float64, flags []bool, heads int) []float64 {
	n := len(vals)
	packed := make([]float64, heads)
	core.Pack(m, packed, vals, flags)
	rot := make([]int, heads)
	core.Par(m, heads, func(i int) { rot[i] = (i + heads - 1) % heads })
	rotated := make([]float64, heads)
	core.Permute(m, rotated, packed, rot)
	headPos := make([]int, heads)
	core.PackIndex(m, headPos, flags)
	atHeads := make([]float64, n)
	core.Permute(m, atHeads, rotated, headPos)
	out := make([]float64, n)
	core.SegCopy(m, out, atHeads, flags)
	return out
}

// MonotoneChain is the serial reference: Andrew's monotone chain,
// returning the hull counterclockwise from the leftmost-lowest point,
// collinear points omitted.
func MonotoneChain(pts []Point) []Point {
	uniq := map[Point]bool{}
	var ps []Point
	for _, p := range pts {
		if !uniq[p] {
			uniq[p] = true
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	if len(ps) == 1 {
		return ps
	}
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}
