package hull

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/core"
)

// canonicalCycle rotates a polygon so it starts at its lexicographically
// smallest vertex, for order-insensitive-up-to-rotation comparison.
func canonicalCycle(ps []Point) []Point {
	if len(ps) == 0 {
		return ps
	}
	best := 0
	for i, p := range ps {
		b := ps[best]
		if p.X < b.X || (p.X == b.X && p.Y < b.Y) {
			best = i
		}
	}
	out := make([]Point, 0, len(ps))
	out = append(out, ps[best:]...)
	return append(out, ps[:best]...)
}

func TestQuickHullSquare(t *testing.T) {
	m := core.New()
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {3, 1}}
	got := QuickHull(m, pts)
	want := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if !reflect.DeepEqual(canonicalCycle(got), want) {
		t.Errorf("hull = %v, want %v", got, want)
	}
}

func TestQuickHullMatchesMonotoneChain(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		m := core.New()
		got := canonicalCycle(QuickHull(m, pts))
		want := canonicalCycle(MonotoneChain(pts))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: quickhull %v != monotone chain %v", trial, got, want)
		}
	}
}

func TestQuickHullIntegerGrid(t *testing.T) {
	// Integer coordinates produce many collinear points, the hard case
	// for strict-left tests.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(150)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{float64(rng.Intn(10)), float64(rng.Intn(10))}
		}
		m := core.New()
		got := canonicalCycle(QuickHull(m, pts))
		want := canonicalCycle(MonotoneChain(pts))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: %v != %v (points %v)", trial, got, want, pts)
		}
	}
}

func TestQuickHullDegenerate(t *testing.T) {
	m := core.New()
	if got := QuickHull(m, nil); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := QuickHull(m, []Point{{1, 1}}); !reflect.DeepEqual(got, []Point{{1, 1}}) {
		t.Errorf("single = %v", got)
	}
	// All identical.
	if got := QuickHull(m, []Point{{2, 2}, {2, 2}, {2, 2}}); !reflect.DeepEqual(got, []Point{{2, 2}}) {
		t.Errorf("identical = %v", got)
	}
	// Collinear: the two extremes.
	got := QuickHull(m, []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if !reflect.DeepEqual(canonicalCycle(got), []Point{{0, 0}, {3, 3}}) {
		t.Errorf("collinear = %v", got)
	}
	// Two points.
	got = QuickHull(m, []Point{{5, 1}, {0, 0}})
	if !reflect.DeepEqual(canonicalCycle(got), []Point{{0, 0}, {5, 1}}) {
		t.Errorf("two points = %v", got)
	}
}

func TestQuickHullCircle(t *testing.T) {
	// All points on a circle: everything is on the hull.
	m := core.New()
	n := 64
	pts := make([]Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{math.Cos(th), math.Sin(th)}
	}
	got := QuickHull(m, pts)
	if len(got) != n {
		t.Errorf("circle hull has %d points, want %d", len(got), n)
	}
}

func TestQuickHullIsCounterclockwise(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	m := core.New()
	h := QuickHull(m, pts)
	if len(h) < 3 {
		t.Fatal("hull too small")
	}
	for i := range h {
		a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
		if cross(a, b, c) <= 0 {
			t.Fatalf("hull not strictly counterclockwise at %d: %v %v %v", i, a, b, c)
		}
	}
}

func TestQuickHullExpectedStepScaling(t *testing.T) {
	// Table 1: O(lg n) expected steps for random points. Steps should
	// grow far slower than n.
	steps := func(n int) int64 {
		rng := rand.New(rand.NewSource(int64(n)))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		m := core.New()
		QuickHull(m, pts)
		return m.Steps()
	}
	s256, s4096 := steps(256), steps(4096)
	if ratio := float64(s4096) / float64(s256); ratio > 4 {
		t.Errorf("hull steps grew %.1fx for 16x points; want lg-like", ratio)
	}
}
