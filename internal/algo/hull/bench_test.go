package hull

import (
	"fmt"
	"math/rand"
	"testing"

	"scans/internal/core"
)

// BenchmarkQuickHull measures the segmented quickhull against the serial
// monotone chain.
func BenchmarkQuickHull(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		rng := rand.New(rand.NewSource(int64(n)))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
		}
		b.Run(fmt.Sprintf("segmented/n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				QuickHull(m, pts)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
		b.Run(fmt.Sprintf("monotone-chain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MonotoneChain(pts)
			}
		})
	}
}
