// Package merge implements the paper's halving merge (§2.5.1,
// Figure 12), the one algorithm in the paper that is original rather
// than a translation: extract the odd-indexed elements of both sorted
// vectors, recursively merge them, expand the result by placing each
// even-indexed element directly after its original predecessor (the
// "near-merge" vector), and repair the single non-overlapping rotations
// with two scans (x-near-merge). With p processors the step complexity
// is O(n/p + lg n), optimal for p ≤ n / lg n.
package merge

import (
	"math"

	"scans/internal/core"
)

// Merge merges two ascending sorted int vectors on machine m and returns
// the merged vector. The merge is stable: ties come from a before b.
//
// Keys are carried through the recursion with a provenance bit packed
// below the value (a-keys even, b-keys odd), which both implements the
// paper's merge-flag bookkeeping and makes the merge stable; values must
// therefore fit in 62 bits.
func Merge(m *core.Machine, a, b []int) []int {
	ka := make([]int, len(a))
	core.Par(m, len(a), func(i int) { ka[i] = a[i] << 1 })
	kb := make([]int, len(b))
	core.Par(m, len(b), func(i int) { kb[i] = b[i]<<1 | 1 })
	keys := mergeKeys(m, ka, kb)
	out := make([]int, len(keys))
	core.Par(m, len(keys), func(i int) { out[i] = keys[i] >> 1 })
	return out
}

// Flags merges a and b and returns the paper's merge-flag vector: false
// for an element of a, true for an element of b, in merged order
// ("each F flag represents an element of A and each T flag represents an
// element of B").
func Flags(m *core.Machine, a, b []int) []bool {
	ka := make([]int, len(a))
	core.Par(m, len(a), func(i int) { ka[i] = a[i] << 1 })
	kb := make([]int, len(b))
	core.Par(m, len(b), func(i int) { kb[i] = b[i]<<1 | 1 })
	keys := mergeKeys(m, ka, kb)
	flags := make([]bool, len(keys))
	core.Par(m, len(keys), func(i int) { flags[i] = keys[i]&1 == 1 })
	return flags
}

// mergeKeys is the recursive halving merge on provenance-tagged keys.
func mergeKeys(m *core.Machine, a, b []int) []int {
	na, nb := len(a), len(b)
	switch {
	case na == 0:
		out := make([]int, nb)
		core.Par(m, nb, func(i int) { out[i] = b[i] })
		return out
	case nb == 0:
		out := make([]int, na)
		core.Par(m, na, func(i int) { out[i] = a[i] })
		return out
	case na == 1:
		return insertOne(m, a[0], b)
	case nb == 1:
		return insertOne(m, b[0], a)
	}
	// Extract the odd-indexed elements (1-origin; slice indices 0, 2,
	// 4, ...) of each vector by packing, the paper's subselection plus
	// load balancing.
	oddA := packEvens(m, a)
	oddB := packEvens(m, b)
	merged0 := mergeKeys(m, oddA, oddB)
	near := evenInsert(m, merged0, a, b)
	return xNearMerge(m, near)
}

// packEvens packs the elements at even slice indices.
func packEvens(m *core.Machine, v []int) []int {
	n := len(v)
	flags := make([]bool, n)
	core.Par(m, n, func(i int) { flags[i] = i%2 == 0 })
	out := make([]int, (n+1)/2)
	core.Pack(m, out, v, flags)
	return out
}

// insertOne inserts key k into the sorted vector v: the recursion's base
// case, O(1) steps. Each element of v counts whether it precedes k; the
// count is k's insertion rank.
func insertOne(m *core.Machine, k int, v []int) []int {
	n := len(v)
	leq := make([]int, n)
	core.Par(m, n, func(i int) {
		if v[i] <= k {
			leq[i] = 1
		}
	})
	tmp := make([]int, n)
	rank := core.PlusDistribute(m, tmp, leq)
	out := make([]int, n+1)
	idx := make([]int, n)
	core.Par(m, n, func(i int) {
		if v[i] <= k {
			idx[i] = i
		} else {
			idx[i] = i + 1
		}
	})
	core.Permute(m, out, v, idx)
	out[rank] = k // the inserting processor's single write
	m.Use(core.UseEnumerate)
	return out
}

// evenInsert builds the near-merge vector: each merged odd-indexed
// element followed by the even-indexed element that trailed it in its
// source vector, placed by processor allocation (Figure 12).
func evenInsert(m *core.Machine, merged0, a, b []int) []int {
	k := len(merged0)
	// Which source each merged element came from is its low bit; its
	// index within the packed odd vector is its rank among same-source
	// elements.
	fromB := make([]bool, k)
	core.Par(m, k, func(i int) { fromB[i] = merged0[i]&1 == 1 })
	rankB := make([]int, k)
	core.Enumerate(m, rankB, fromB)
	fromA := make([]bool, k)
	core.Par(m, k, func(i int) { fromA[i] = !fromB[i] })
	rankA := make([]int, k)
	core.Enumerate(m, rankA, fromA)
	// The element's original slice index is 2*rank; its successor is at
	// 2*rank + 1 when that exists.
	counts := make([]int, k)
	succ := make([]int, k)
	hasSucc := make([]bool, k)
	core.Par(m, k, func(i int) {
		var src []int
		var j int
		if fromB[i] {
			src, j = b, rankB[i]
		} else {
			src, j = a, rankA[i]
		}
		counts[i] = 1
		if 2*j+1 < len(src) {
			counts[i] = 2
			succ[i] = src[2*j+1] // an exclusive read: distinct per element
			hasSucc[i] = true
		}
	})
	m.Use(core.UseAllocate)
	alloc := core.Allocate(m, counts)
	near := make([]int, alloc.Total)
	core.Permute(m, near, merged0, alloc.HPointers)
	succPos := make([]int, k)
	core.Par(m, k, func(i int) { succPos[i] = alloc.HPointers[i] + 1 })
	core.PermuteIf(m, near, succ, succPos, hasSucc)
	return near
}

// xNearMerge converts a near-merge vector into a fully merged vector by
// rotating each out-of-order block one position, with exactly the two
// scans of the paper's definition:
//
//	head-copy <- max(max-scan(near-merge), near-merge)
//	result    <- min(min-backscan(near-merge), head-copy)
func xNearMerge(m *core.Machine, near []int) []int {
	n := len(near)
	headCopy := make([]int, n)
	core.MaxScan(m, headCopy, near)
	core.Par(m, n, func(i int) {
		if near[i] > headCopy[i] {
			headCopy[i] = near[i]
		}
	})
	back := make([]int, n)
	core.BackMinScan(m, back, near)
	out := make([]int, n)
	core.Par(m, n, func(i int) {
		if back[i] < headCopy[i] {
			out[i] = back[i]
		} else {
			out[i] = headCopy[i]
		}
	})
	return out
}

// Simple is a step-counted cross-ranking merge for reference: every
// element finds its rank in the other vector by a binary search executed
// as O(lg n) rounds of one elementwise step each (the standard
// concurrent-read merge), then one permute places everything. O(lg n)
// steps, O(n lg n) work, and — unlike the halving merge — concurrent
// reads of b, so it runs with the exclusivity check relaxed. It verifies
// the halving merge and prices the non-scan alternative.
func Simple(m *core.Machine, a, b []int) []int {
	na, nb := len(a), len(b)
	out := make([]int, na+nb)
	// rank of a[i] in b: |{j : b[j] < a[i]}| (stable: a precedes b).
	rankA := searchRounds(m, a, b, func(bv, av int) bool { return bv < av })
	// rank of b[j] in a: |{i : a[i] <= b[j]}|.
	rankB := searchRounds(m, b, a, func(av, bv int) bool { return av <= bv })
	idxA := make([]int, na)
	core.Par(m, na, func(i int) { idxA[i] = i + rankA[i] })
	idxB := make([]int, nb)
	core.Par(m, nb, func(j int) { idxB[j] = j + rankB[j] })
	core.Permute(m, out, a, idxA)
	core.Permute(m, out, b, idxB) // targets disjoint from idxA by construction
	return out
}

// searchRounds runs the data-parallel binary search: for each x[i], the
// number of elements of sorted v for which goesBefore(v[j], x[i]) holds.
func searchRounds(m *core.Machine, x, v []int, goesBefore func(vj, xi int) bool) []int {
	n := len(x)
	lo := make([]int, n)
	hi := make([]int, n)
	core.Par(m, n, func(i int) { hi[i] = len(v) })
	rounds := int(math.Ceil(math.Log2(float64(len(v)+1)))) + 1
	for r := 0; r < rounds; r++ {
		core.Par(m, n, func(i int) {
			if lo[i] < hi[i] {
				mid := (lo[i] + hi[i]) / 2
				if goesBefore(v[mid], x[i]) {
					lo[i] = mid + 1
				} else {
					hi[i] = mid
				}
			}
		})
	}
	return lo
}
