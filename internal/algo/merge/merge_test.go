package merge

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func refMerge(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func sortedRandom(rng *rand.Rand, n, span int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = rng.Intn(span)
	}
	sort.Ints(v)
	return v
}

func TestMergeFig12(t *testing.T) {
	// Figure 12: A = [1 7 10 13 15 20], B = [3 4 9 22 23 26],
	// result = [1 3 4 7 9 10 13 15 20 22 23 26].
	m := core.New()
	a := []int{1, 7, 10, 13, 15, 20}
	b := []int{3, 4, 9, 22, 23, 26}
	got := Merge(m, a, b)
	want := []int{1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("halving merge = %v, want %v", got, want)
	}
}

func TestMergeFlagsFig12Halves(t *testing.T) {
	// The paper's merge-flag example: halving-merge(A', B') with
	// A' = [1 10 15], B' = [3 9 23] gives flags [F T T F F T].
	m := core.New()
	got := Flags(m, []int{1, 10, 15}, []int{3, 9, 23})
	want := []bool{false, true, true, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge flags = %v, want %v", got, want)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	m := core.New()
	if got := Merge(m, nil, nil); len(got) != 0 {
		t.Errorf("empty merge = %v", got)
	}
	if got := Merge(m, []int{5}, nil); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("a-only = %v", got)
	}
	if got := Merge(m, nil, []int{5}); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("b-only = %v", got)
	}
	if got := Merge(m, []int{9}, []int{4}); !reflect.DeepEqual(got, []int{4, 9}) {
		t.Errorf("singletons = %v", got)
	}
	if got := Merge(m, []int{2}, []int{1, 3, 5, 7}); !reflect.DeepEqual(got, []int{1, 2, 3, 5, 7}) {
		t.Errorf("insert-one = %v", got)
	}
	if got := Merge(m, []int{1, 3, 5, 7}, []int{2}); !reflect.DeepEqual(got, []int{1, 2, 3, 5, 7}) {
		t.Errorf("insert-one-b = %v", got)
	}
}

func TestMergeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		a := sortedRandom(rng, na, 100) // duplicates across and within
		b := sortedRandom(rng, nb, 100)
		m := core.New()
		got := Merge(m, a, b)
		want := refMerge(a, b)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge(%v, %v) = %v, want %v", trial, a, b, got, want)
		}
	}
}

func TestMergeUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := core.New()
	a := sortedRandom(rng, 1000, 10000)
	b := sortedRandom(rng, 3, 10000)
	if got, want := Merge(m, a, b), refMerge(a, b); !reflect.DeepEqual(got, want) {
		t.Error("very unequal merge wrong")
	}
}

func TestMergeNegativeValues(t *testing.T) {
	m := core.New()
	a := []int{-50, -3, 0, 7}
	b := []int{-10, -4, 2}
	if got, want := Merge(m, a, b), refMerge(a, b); !reflect.DeepEqual(got, want) {
		t.Errorf("negative merge = %v, want %v", got, want)
	}
}

func TestMergeStability(t *testing.T) {
	// Equal keys: all of a's copies precede b's. Flags encode provenance.
	m := core.New()
	a := []int{5, 5, 5}
	b := []int{5, 5}
	flags := Flags(m, a, b)
	want := []bool{false, false, false, true, true}
	if !reflect.DeepEqual(flags, want) {
		t.Errorf("stability flags = %v, want %v", flags, want)
	}
}

func TestMergeStepsLogarithmic(t *testing.T) {
	// O(lg n) steps with unbounded processors: doubling n adds a
	// constant number of steps (one more recursion level).
	steps := func(n int) int64 {
		rng := rand.New(rand.NewSource(int64(n)))
		a := sortedRandom(rng, n, 1<<20)
		b := sortedRandom(rng, n, 1<<20)
		m := core.New()
		Merge(m, a, b)
		return m.Steps()
	}
	s1, s2, s4 := steps(1<<10), steps(1<<11), steps(1<<12)
	d1, d2 := s2-s1, s4-s2
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("steps not increasing: %d %d %d", s1, s2, s4)
	}
	// Per-level cost is constant, so the increments should be equal (up
	// to base-case noise).
	if d2 > 2*d1 || d1 > 2*d2 {
		t.Errorf("per-doubling step increments differ wildly: %d vs %d", d1, d2)
	}
}

func TestMergePropertyQuick(t *testing.T) {
	prop := func(ra, rb []uint16) bool {
		a := make([]int, len(ra))
		for i, v := range ra {
			a[i] = int(v)
		}
		b := make([]int, len(rb))
		for i, v := range rb {
			b[i] = int(v)
		}
		sort.Ints(a)
		sort.Ints(b)
		m := core.New()
		got := Merge(m, a, b)
		return reflect.DeepEqual(got, refMerge(a, b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSimpleMergeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		a := sortedRandom(rng, rng.Intn(100), 50)
		b := sortedRandom(rng, rng.Intn(100), 50)
		m := core.New(core.WithExclusiveCheck(true))
		got := Simple(m, a, b)
		if want := refMerge(a, b); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Simple(%v, %v) = %v, want %v", trial, a, b, got, want)
		}
	}
}

func TestUsageTable3(t *testing.T) {
	// Table 3: the halving merge uses allocating and load balancing.
	m := core.New()
	rng := rand.New(rand.NewSource(15))
	Merge(m, sortedRandom(rng, 50, 100), sortedRandom(rng, 50, 100))
	c := m.Counters()
	if c.UsageCounts[core.UseAllocate] == 0 {
		t.Error("allocate usage not recorded")
	}
	if c.UsageCounts[core.UseLoadBalance] == 0 {
		t.Error("load-balance usage not recorded")
	}
}
