package merge

import (
	"fmt"
	"math/rand"
	"testing"

	"scans/internal/core"
)

// BenchmarkHalvingMerge measures the halving merge across sizes,
// reporting program steps alongside wall-clock.
func BenchmarkHalvingMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1 << 10, 1 << 14} {
		a := sortedRandom(rng, n, 1<<20)
		bb := sortedRandom(rng, n, 1<<20)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				Merge(m, a, bb)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkMergeVsSimple is the DESIGN.md merge-crossover ablation: the
// halving merge against the cross-ranking binary-search merge, on steps
// and wall-clock.
func BenchmarkMergeVsSimple(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 12
	a := sortedRandom(rng, n, 1<<20)
	bb := sortedRandom(rng, n, 1<<20)
	b.Run("halving", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			m := core.New()
			Merge(m, a, bb)
			steps = m.Steps()
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("cross-rank", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			m := core.New()
			Simple(m, a, bb)
			steps = m.Steps()
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("serial-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refMerge(a, bb)
		}
	})
}
