package mis

import (
	"math/rand"
	"testing"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

func TestMISTriangle(t *testing.T) {
	m := core.New()
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	set := Run(m, 3, edges, 1)
	if err := Verify(3, edges, set); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, s := range set {
		if s {
			count++
		}
	}
	if count != 1 {
		t.Errorf("triangle MIS size = %d, want 1", count)
	}
}

func TestMISIsolatedVertices(t *testing.T) {
	m := core.New()
	edges := []graph.Edge{{U: 1, V: 2}}
	set := Run(m, 4, edges, 2)
	if err := Verify(4, edges, set); err != nil {
		t.Fatal(err)
	}
	if !set[0] || !set[3] {
		t.Error("isolated vertices must be in the set")
	}
}

func TestMISStar(t *testing.T) {
	// Star graph: either the hub alone or all the leaves.
	m := core.New()
	n := 20
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: i + 1}
	}
	set := Run(m, n, edges, 3)
	if err := Verify(n, edges, set); err != nil {
		t.Fatal(err)
	}
}

func TestMISRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		m := core.New()
		set := Run(m, n, edges, int64(trial))
		if err := Verify(n, edges, set); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
	}
}

func TestMISPathGraph(t *testing.T) {
	n := 300
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	m := core.New()
	set := Run(m, n, edges, 8)
	if err := Verify(n, edges, set); err != nil {
		t.Fatal(err)
	}
}

func TestMISEmptyGraph(t *testing.T) {
	m := core.New()
	set := Run(m, 5, nil, 0)
	for v, s := range set {
		if !s {
			t.Errorf("vertex %d of edgeless graph not in set", v)
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}}
	if Verify(2, edges, []bool{true, true}) == nil {
		t.Error("dependent set accepted")
	}
	if Verify(2, edges, []bool{false, false}) == nil {
		t.Error("non-maximal set accepted")
	}
	if Verify(2, edges, []bool{true}) == nil {
		t.Error("wrong-length set accepted")
	}
	if err := Verify(2, edges, []bool{true, false}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}
