// Package mis computes a maximal independent set with Luby's algorithm
// on the segmented graph representation: each round every vertex draws a
// random priority, the priorities cross the edges with one permute, each
// vertex compares itself to the minimum over its neighbors with a
// segmented min-distribute, local minima join the set, and the set and
// its neighborhood leave the graph. Expected O(lg n) rounds of O(1)
// program steps each — the paper's Table 1 lists Maximal Independent Set
// at O(lg n) in the scan model versus O(lg² n) on both P-RAM variants.
package mis

import (
	"fmt"
	"math/rand"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// Run returns a maximal independent set as a flag per vertex: no two
// flagged vertices are adjacent, and every unflagged vertex has a
// flagged neighbor.
func Run(m *core.Machine, numVertices int, edges []graph.Edge, seed int64) []bool {
	g := graph.Build(m, numVertices, edges)
	rng := rand.New(rand.NewSource(seed))
	inMIS := make([]bool, numVertices)
	hasEdge := make([]bool, numVertices)
	for _, e := range edges {
		hasEdge[e.U], hasEdge[e.V] = true, true
	}
	// Vertices with no edges at all are trivially in the set.
	for v := range inMIS {
		inMIS[v] = !hasEdge[v]
	}
	maxRounds := 64 * (lg(numVertices) + 2)
	for round := 0; g.Slots() > 0; round++ {
		if round >= maxRounds {
			panic(fmt.Sprintf("mis: no convergence after %d rounds", round))
		}
		n := g.Slots()
		nv := g.Vertices()
		// Unique priorities: a random draw with the representative id in
		// the low bits as a tiebreak.
		reps := graph.HeadValues(m, g, g.Rep)
		prio := make([]int, nv)
		core.Par(m, nv, func(i int) {
			prio[i] = rng.Intn(1<<31)*numVertices + reps[i]
		})
		headPos := make([]int, nv)
		core.PackIndex(m, headPos, g.Flags)
		prioAtHeads := make([]int, n)
		core.Permute(m, prioAtHeads, prio, headPos)
		mine := make([]int, n)
		core.SegCopy(m, mine, prioAtHeads, g.Flags)
		theirs := make([]int, n)
		core.Permute(m, theirs, mine, g.Cross)
		nbrMin := make([]int, n)
		core.SegMinDistribute(m, nbrMin, theirs, g.Flags)
		winnerSlot := make([]bool, n)
		core.Par(m, n, func(i int) { winnerSlot[i] = mine[i] < nbrMin[i] })
		// Winners join the set; winners and their neighbors leave the
		// graph.
		otherWinner := make([]bool, n)
		core.Permute(m, otherWinner, winnerSlot, g.Cross)
		nbrHasWinner := make([]bool, n)
		core.SegOrDistribute(m, nbrHasWinner, otherWinner, g.Flags)
		removed := make([]bool, n)
		core.Par(m, n, func(i int) { removed[i] = winnerSlot[i] || nbrHasWinner[i] })
		otherRemoved := make([]bool, n)
		core.Permute(m, otherRemoved, removed, g.Cross)
		keep := make([]bool, n)
		core.Par(m, n, func(i int) { keep[i] = !removed[i] && !otherRemoved[i] })
		// Surviving vertices that lose all their edges become isolated:
		// every living neighbor is gone, and none of the removed ones is
		// a winner (a winner's neighbors are removed too), so they join
		// the set.
		anyKept := make([]bool, n)
		core.SegOrDistribute(m, anyKept, keep, g.Flags)
		repSlot := make([]int, n)
		core.SegCopy(m, repSlot, g.Rep, g.Flags)
		for i := 0; i < n; i++ {
			if g.Flags[i] {
				if winnerSlot[i] {
					inMIS[repSlot[i]] = true
				} else if !removed[i] && !anyKept[i] {
					inMIS[repSlot[i]] = true
				}
			}
		}
		g = graph.Filter(m, g, keep)
	}
	return inMIS
}

func lg(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// Verify checks that set is an independent set and maximal in the graph;
// it returns a descriptive error otherwise. Exported so examples and
// benchmarks can assert correctness on large random graphs.
func Verify(numVertices int, edges []graph.Edge, set []bool) error {
	if len(set) != numVertices {
		return fmt.Errorf("mis: set has %d flags for %d vertices", len(set), numVertices)
	}
	adj := make([][]int, numVertices)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for u := 0; u < numVertices; u++ {
		if set[u] {
			for _, v := range adj[u] {
				if set[v] {
					return fmt.Errorf("mis: adjacent vertices %d and %d both in set", u, v)
				}
			}
			continue
		}
		covered := false
		for _, v := range adj[u] {
			if set[v] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("mis: vertex %d has no neighbor in set (not maximal)", u)
		}
	}
	return nil
}
