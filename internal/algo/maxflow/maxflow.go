// Package maxflow computes maximum s-t flow, the last row of the
// paper's Table 1 graph-algorithm block (O(n² lg n) on the P-RAMs,
// O(n²) in the scan model). The paper defers the algorithm to its
// companion references; this implementation is a synchronous parallel
// push–relabel on a dense n×n residual matrix: every pulse — all active
// vertices pushing along one admissible edge or relabeling, with the
// excess updates gathered by segmented +-distributes over rows and
// columns — is a constant number of primitives over n² virtual
// processors. The pulse count is the push–relabel phase bound
// (polynomial in n; see DESIGN.md for the substitution note against the
// paper's specific O(n²) algorithm).
package maxflow

import (
	"fmt"

	"scans/internal/core"
)

// Run computes the maximum flow from s to t in a directed graph given as
// a dense capacity matrix (cap[u*n+v] = capacity of the edge u→v,
// 0 for no edge). Capacities must be non-negative.
func Run(m *core.Machine, capacity []int, n, s, t int) int {
	if len(capacity) != n*n {
		panic(fmt.Sprintf("maxflow: capacity has %d entries for n = %d", len(capacity), n))
	}
	if s < 0 || s >= n || t < 0 || t >= n || s == t {
		panic(fmt.Sprintf("maxflow: bad terminals s=%d t=%d for n=%d", s, t, n))
	}
	for i, c := range capacity {
		if c < 0 {
			panic(fmt.Sprintf("maxflow: negative capacity at %d", i))
		}
	}
	r := make([]int, n*n) // residual matrix
	core.Par(m, n*n, func(i int) { r[i] = capacity[i] })
	height := make([]int, n)
	excess := make([]int, n)
	core.Par(m, n, func(v int) {
		if v == s {
			height[v] = n
		}
	})
	// Saturate the source's out-edges.
	core.Par(m, n, func(v int) {
		c := r[s*n+v]
		if c > 0 && v != s {
			excess[v] += c
			r[s*n+v] = 0
			r[v*n+s] += c
		}
	})

	rowFlags := make([]bool, n*n)
	core.Par(m, n*n, func(i int) { rowFlags[i] = i%n == 0 })
	t2 := make([]int, n*n) // transpose permutation
	core.Par(m, n*n, func(p int) {
		i, j := p/n, p%n
		t2[p] = j*n + i
	})

	// Reusable pulse vectors.
	active := make([]bool, n)
	admKey := make([]int, n*n)
	rowMin := make([]int, n*n)
	neighKey := make([]int, n*n)
	neighMin := make([]int, n*n)
	push := make([]int, n*n)
	pushT := make([]int, n*n)
	incoming := make([]int, n*n)
	outgoing := make([]int, n*n)
	admRes := make([]int, n*n)
	admPrefix := make([]int, n*n)

	// admissibleMins fills rowMin with each active row's first admissible
	// column (or MaxIdentity), under the current heights and residuals.
	admissibleMins := func() {
		core.Par(m, n*n, func(p int) {
			v, w := p/n, p%n
			if active[v] && r[p] > 0 && height[v] == height[w]+1 {
				admKey[p] = w
			} else {
				admKey[p] = core.MaxIdentity
			}
		})
		core.SegMinDistribute(m, rowMin, admKey, rowFlags)
	}

	// The pulses alternate pure push phases and pure relabel phases:
	// each preserves the height-function validity on its own (mixing
	// them can relabel a vertex past a residual edge created by a
	// concurrent push).
	maxPulses := 16*n*n*n + 64
	for pulse := 0; ; pulse++ {
		if pulse > maxPulses {
			panic("maxflow: pulse budget exhausted; push-relabel bookkeeping bug")
		}
		anyActive := false
		core.Par(m, n, func(v int) {
			active[v] = v != s && v != t && excess[v] > 0
		})
		for _, a := range active {
			if a {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
		// Push phase: every active row discharges across ALL its
		// admissible edges at once — a row +-scan of the admissible
		// residuals allocates the excess left to right. All pushes read
		// the same pre-phase heights, so every new reverse residual edge
		// (w, v) has h(w) = h(v) − 1, keeping the labeling valid.
		core.Par(m, n*n, func(p int) {
			v, w := p/n, p%n
			if active[v] && r[p] > 0 && height[v] == height[w]+1 {
				admRes[p] = r[p]
			} else {
				admRes[p] = 0
			}
		})
		core.SegPlusScan(m, admPrefix, admRes, rowFlags)
		core.Par(m, n*n, func(p int) {
			v := p / n
			push[p] = 0
			if admRes[p] == 0 {
				return
			}
			amt := excess[v] - admPrefix[p]
			if amt <= 0 {
				return
			}
			if amt > admRes[p] {
				amt = admRes[p]
			}
			push[p] = amt
		})
		core.Permute(m, pushT, push, t2)
		core.Par(m, n*n, func(p int) { r[p] += pushT[p] - push[p] })
		core.SegPlusDistribute(m, incoming, pushT, rowFlags)
		core.SegPlusDistribute(m, outgoing, push, rowFlags)
		core.Par(m, n, func(v int) {
			excess[v] += incoming[v*n] - outgoing[v*n]
		})
		// Relabel phase: rows still active with no admissible edge rise
		// to one above their lowest residual neighbor. Simultaneous
		// relabels stay valid because every height only increases.
		core.Par(m, n, func(v int) {
			active[v] = v != s && v != t && excess[v] > 0
		})
		admissibleMins()
		core.Par(m, n*n, func(p int) {
			v, w := p/n, p%n
			if active[v] && rowMin[v*n] == core.MaxIdentity && r[p] > 0 {
				neighKey[p] = height[w]
			} else {
				neighKey[p] = core.MaxIdentity
			}
		})
		core.SegMinDistribute(m, neighMin, neighKey, rowFlags)
		core.Par(m, n, func(v int) {
			if active[v] && rowMin[v*n] == core.MaxIdentity && neighMin[v*n] != core.MaxIdentity {
				height[v] = neighMin[v*n] + 1
			}
		})
	}
	return excess[t]
}

// Serial is the Edmonds–Karp reference implementation (BFS augmenting
// paths on the dense residual matrix).
func Serial(capacity []int, n, s, t int) int {
	r := append([]int(nil), capacity...)
	flow := 0
	parent := make([]int, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] == -1 && r[u*n+v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			return flow
		}
		aug := int(^uint(0) >> 1)
		for v := t; v != s; v = parent[v] {
			if c := r[parent[v]*n+v]; c < aug {
				aug = c
			}
		}
		for v := t; v != s; v = parent[v] {
			r[parent[v]*n+v] -= aug
			r[v*n+parent[v]] += aug
		}
		flow += aug
	}
}
