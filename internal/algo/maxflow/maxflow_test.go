package maxflow

import (
	"math/rand"
	"testing"

	"scans/internal/core"
)

// capMatrix builds a dense capacity matrix from an arc list.
func capMatrix(n int, arcs [][3]int) []int {
	c := make([]int, n*n)
	for _, a := range arcs {
		c[a[0]*n+a[1]] += a[2]
	}
	return c
}

func TestMaxflowClassic(t *testing.T) {
	// The CLRS example network: max flow 23.
	c := capMatrix(6, [][3]int{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4}, {1, 3, 12},
		{3, 2, 9}, {2, 4, 14}, {4, 3, 7}, {3, 5, 20}, {4, 5, 4},
	})
	if got := Serial(c, 6, 0, 5); got != 23 {
		t.Fatalf("serial reference = %d, want 23", got)
	}
	m := core.New()
	if got := Run(m, c, 6, 0, 5); got != 23 {
		t.Errorf("Run = %d, want 23", got)
	}
}

func TestMaxflowNoPath(t *testing.T) {
	m := core.New()
	c := capMatrix(4, [][3]int{{0, 1, 5}, {2, 3, 7}})
	if got := Run(m, c, 4, 0, 3); got != 0 {
		t.Errorf("disconnected flow = %d, want 0", got)
	}
}

func TestMaxflowDirectEdge(t *testing.T) {
	m := core.New()
	c := capMatrix(2, [][3]int{{0, 1, 9}})
	if got := Run(m, c, 2, 0, 1); got != 9 {
		t.Errorf("direct edge flow = %d, want 9", got)
	}
}

func TestMaxflowParallelPaths(t *testing.T) {
	// Two disjoint unit paths plus a shared bottleneck.
	m := core.New()
	c := capMatrix(6, [][3]int{
		{0, 1, 3}, {1, 5, 3},
		{0, 2, 4}, {2, 5, 2},
		{0, 3, 1}, {3, 4, 1}, {4, 5, 1},
	})
	want := Serial(c, 6, 0, 5)
	if got := Run(m, c, 6, 0, 5); got != want {
		t.Errorf("Run = %d, want %d", got, want)
	}
}

func TestMaxflowRandomDense(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		c := make([]int, n*n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Intn(3) == 0 {
					c[u*n+v] = rng.Intn(20)
				}
			}
		}
		s, tt := 0, n-1
		want := Serial(c, n, s, tt)
		m := core.New()
		got := Run(m, c, n, s, tt)
		if got != want {
			t.Fatalf("trial %d (n=%d): Run = %d, Serial = %d", trial, n, got, want)
		}
	}
}

func TestMaxflowRandomSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(20)
		c := make([]int, n*n)
		// A random s-t path guarantees nonzero flow sometimes.
		prev := 0
		for v := 1; v < n; v++ {
			c[prev*n+v] = 1 + rng.Intn(9)
			prev = v
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				c[u*n+v] += rng.Intn(10)
			}
		}
		want := Serial(c, n, 0, n-1)
		m := core.New()
		got := Run(m, c, n, 0, n-1)
		if got != want {
			t.Fatalf("trial %d (n=%d): Run = %d, Serial = %d", trial, n, got, want)
		}
	}
}

func TestMaxflowAntiparallelEdges(t *testing.T) {
	m := core.New()
	c := capMatrix(3, [][3]int{{0, 1, 5}, {1, 0, 5}, {1, 2, 3}, {2, 1, 3}})
	want := Serial(c, 3, 0, 2)
	if got := Run(m, c, 3, 0, 2); got != want {
		t.Errorf("antiparallel: Run = %d, want %d", got, want)
	}
}

func TestMaxflowBadInputsPanic(t *testing.T) {
	m := core.New()
	for name, f := range map[string]func(){
		"wrong-size":   func() { Run(m, make([]int, 3), 2, 0, 1) },
		"s==t":         func() { Run(m, make([]int, 4), 2, 1, 1) },
		"negative-cap": func() { Run(m, []int{0, -1, 0, 0}, 2, 0, 1) },
		"bad-terminal": func() { Run(m, make([]int, 4), 2, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxflowStepsWithinPulseBound(t *testing.T) {
	// Each pulse is O(1) primitives over n² processors, and push–relabel
	// needs O(n²) pulses, so total steps must stay within C·n² — the
	// scan-model O(n²) row of Table 1. Individual graphs vary wildly
	// (trapped excess ladders heights one relabel pulse at a time), so
	// average over several seeds.
	avgSteps := func(n int) float64 {
		var total int64
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(152 + int64(trial)))
			c := make([]int, n*n)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v && rng.Intn(2) == 0 {
						c[u*n+v] = 1 + rng.Intn(5)
					}
				}
			}
			m := core.New()
			Run(m, c, n, 0, n-1)
			total += m.Steps()
		}
		return float64(total) / trials
	}
	for _, n := range []int{8, 16, 32} {
		if got, bound := avgSteps(n), 48*float64(n*n); got > bound {
			t.Errorf("n=%d: avg steps %.0f exceed the O(n²) pulse bound proxy %.0f", n, got, bound)
		}
	}
}
