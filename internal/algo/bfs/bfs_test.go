package bfs

import (
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

func TestLevelsSmall(t *testing.T) {
	m := core.New()
	// 0-1-2-3 path plus shortcut 0-2.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 2}}
	got := Levels(m, 5, edges, 0)
	want := []int{0, 1, 1, 2, -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Levels = %v, want %v", got, want)
	}
}

func TestLevelsMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(80)
		var edges []graph.Edge
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		src := rng.Intn(n)
		m := core.New()
		got := Levels(m, n, edges, src)
		if want := SerialLevels(n, edges, src); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d src=%d): %v != %v", trial, n, src, got, want)
		}
	}
}

func TestLevelsLongPath(t *testing.T) {
	n := 600
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	m := core.New()
	got := Levels(m, n, edges, 0)
	for v := 0; v < n; v++ {
		if got[v] != v {
			t.Fatalf("dist[%d] = %d", v, got[v])
		}
	}
}

func TestLevelsIsolatedSourceAndEmpty(t *testing.T) {
	m := core.New()
	got := Levels(m, 3, nil, 1)
	if want := []int{-1, 0, -1}; !reflect.DeepEqual(got, want) {
		t.Errorf("edgeless = %v", got)
	}
	edges := []graph.Edge{{U: 0, V: 2}}
	got = Levels(m, 3, edges, 1)
	if want := []int{-1, 0, -1}; !reflect.DeepEqual(got, want) {
		t.Errorf("isolated source = %v", got)
	}
}

func TestLevelsStepsPerLevelConstant(t *testing.T) {
	// O(1) steps per BFS level: steps scale with diameter, not edges.
	// A star graph has diameter 2 regardless of size.
	steps := func(n int) int64 {
		edges := make([]graph.Edge, n-1)
		for i := range edges {
			edges[i] = graph.Edge{U: 0, V: i + 1}
		}
		m := core.New()
		Levels(m, n, edges, 1)
		return m.Steps()
	}
	s1, s2 := steps(64), steps(1024)
	// The graph build costs O(lg n) (radix sort); allow that growth but
	// nothing edge-proportional.
	if float64(s2) > 1.5*float64(s1) {
		t.Errorf("star BFS steps grew %d -> %d; want near-flat", s1, s2)
	}
}

func TestLevelsBadSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Levels(core.New(), 3, nil, 7)
}
