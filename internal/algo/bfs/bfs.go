// Package bfs implements breadth-first search on the segmented graph
// representation with the paper's allocation primitive: each level, the
// frontier's vertices count their edges, one Allocate call creates a
// processor per candidate neighbor, and the unvisited ones become the
// next frontier — O(1) program steps per BFS level, so O(diameter)
// steps overall, independent of how many vertices or edges a level
// touches.
package bfs

import (
	"fmt"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// Levels returns each vertex's BFS distance from source, or -1 when
// unreachable.
func Levels(m *core.Machine, numVertices int, edges []graph.Edge, source int) []int {
	if source < 0 || source >= numVertices {
		panic(fmt.Sprintf("bfs: source %d out of range [0,%d)", source, numVertices))
	}
	dist := make([]int, numVertices)
	core.Par(m, numVertices, func(v int) { dist[v] = -1 })
	dist[source] = 0
	if len(edges) == 0 {
		return dist
	}
	g := graph.Build(m, numVertices, edges)
	s := g.Slots()
	// Per-slot helpers: owning vertex and the neighbor across the edge.
	repSlot := make([]int, s)
	core.SegCopy(m, repSlot, g.Rep, g.Flags)
	nbr := make([]int, s)
	core.Permute(m, nbr, repSlot, g.Cross)
	// Per-vertex segment start and degree, in vertex-id space.
	segStart := make([]int, numVertices)
	core.Par(m, numVertices, func(v int) { segStart[v] = -1 })
	deg := make([]int, numVertices)
	headIdx := make([]int, s)
	core.SegHeadIndex(m, headIdx, g.Flags)
	ones := make([]int, s)
	core.Par(m, s, func(i int) { ones[i] = 1 })
	segLen := make([]int, s)
	core.SegPlusDistribute(m, segLen, ones, g.Flags)
	core.Par(m, s, func(i int) {
		if g.Flags[i] {
			segStart[repSlot[i]] = i
			deg[repSlot[i]] = segLen[i]
		}
	})

	frontier := []int{source}
	for level := 1; len(frontier) > 0; level++ {
		if level > numVertices+1 {
			panic("bfs: level exceeded vertex count; cycle in bookkeeping")
		}
		nf := len(frontier)
		counts := make([]int, nf)
		core.Par(m, nf, func(i int) { counts[i] = deg[frontier[i]] })
		alloc := core.Allocate(m, counts)
		if alloc.Total == 0 {
			break
		}
		// Each allocated processor inspects one edge of one frontier
		// vertex.
		base := make([]int, alloc.Total)
		starts := make([]int, nf)
		core.Par(m, nf, func(i int) { starts[i] = segStart[frontier[i]] })
		core.Distribute(m, alloc, base, starts, counts)
		rank := make([]int, alloc.Total)
		core.SegRank(m, rank, alloc.Flags)
		cand := make([]int, alloc.Total)
		core.Par(m, alloc.Total, func(i int) { cand[i] = nbr[base[i]+rank[i]] })
		// Claim unvisited candidates; duplicates within a level resolve
		// by the concurrent write the grid placement of §2.4.1 also
		// needs (any winner is correct: all get the same level).
		fresh := make([]bool, alloc.Total)
		core.Par(m, alloc.Total, func(i int) { fresh[i] = dist[cand[i]] == -1 })
		marks := make([]int, numVertices)
		core.Par(m, numVertices, func(v int) { marks[v] = -1 })
		ids := make([]int, alloc.Total)
		core.Par(m, alloc.Total, func(i int) { ids[i] = i })
		core.PermuteWrite(m, marks, ids, cand) // last writer wins; any is fine
		isWinner := make([]bool, alloc.Total)
		core.Par(m, alloc.Total, func(i int) {
			isWinner[i] = fresh[i] && marks[cand[i]] == i
		})
		next := make([]int, alloc.Total)
		cnt := core.Pack(m, next, cand, isWinner)
		lvl := level
		core.Par(m, cnt, func(i int) { dist[next[i]] = lvl })
		frontier = next[:cnt]
	}
	return dist
}

// SerialLevels is the queue-based reference implementation.
func SerialLevels(numVertices int, edges []graph.Edge, source int) []int {
	adj := make([][]int, numVertices)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	dist := make([]int, numVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
