package matrix

import (
	"math"
	"math/rand"
	"testing"

	"scans/internal/core"
)

func refVecMat(v, a []float64, n, w int) []float64 {
	out := make([]float64, w)
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			out[j] += v[i] * a[i*w+j]
		}
	}
	return out
}

func refMatMat(a, b []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				out[i*n+j] += a[i*n+k] * b[k*n+j]
			}
		}
	}
	return out
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestVecMatSmall(t *testing.T) {
	m := core.New()
	// v = [1 2], A = [[1 2 3],[4 5 6]]: v*A = [9 12 15].
	got := VecMat(m, []float64{1, 2}, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if !almostEqual(got, []float64{9, 12, 15}, 1e-12) {
		t.Errorf("VecMat = %v, want [9 12 15]", got)
	}
}

func TestVecMatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {16, 4}} {
		n, w := dims[0], dims[1]
		v := make([]float64, n)
		a := make([]float64, n*w)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		m := core.New()
		got := VecMat(m, v, a, n, w)
		if !almostEqual(got, refVecMat(v, a, n, w), 1e-9) {
			t.Fatalf("n=%d w=%d: VecMat wrong", n, w)
		}
	}
}

func TestVecMatConstantSteps(t *testing.T) {
	// Table 1: Vector x Matrix is O(1) in the scan model.
	steps := func(n int) int64 {
		m := core.New()
		VecMat(m, make([]float64, n), make([]float64, n*n), n, n)
		return m.Steps()
	}
	if s8, s64 := steps(8), steps(64); s8 != s64 {
		t.Errorf("VecMat steps grew with n: %d vs %d", s8, s64)
	}
}

func TestMatMatSmall(t *testing.T) {
	m := core.New()
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	got := MatMat(m, a, b, 2)
	if !almostEqual(got, []float64{19, 22, 43, 50}, 1e-12) {
		t.Errorf("MatMat = %v, want [19 22 43 50]", got)
	}
}

func TestMatMatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{1, 2, 5, 12} {
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		m := core.New()
		got := MatMat(m, a, b, n)
		if !almostEqual(got, refMatMat(a, b, n), 1e-9) {
			t.Fatalf("n=%d: MatMat wrong", n)
		}
	}
}

func TestMatMatStepsLinear(t *testing.T) {
	// Table 1: Matrix x Matrix is O(n) steps.
	steps := func(n int) int64 {
		m := core.New()
		MatMat(m, make([]float64, n*n), make([]float64, n*n), n)
		return m.Steps()
	}
	s8, s16 := steps(8), steps(16)
	ratio := float64(s16-1) / float64(s8-1) // minus the shared setup
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("MatMat step ratio for 2x n = %.2f, want ~2 (O(n))", ratio)
	}
}

func TestSolveSmall(t *testing.T) {
	m := core.New()
	// 2x + y = 5; x - y = 1 -> x = 2, y = 1.
	a := []float64{2, 1, 1, -1}
	x, err := Solve(m, a, []float64{5, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, []float64{2, 1}, 1e-12) {
		t.Errorf("Solve = %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	m := core.New()
	// Zero in the leading position forces a row swap.
	a := []float64{0, 1, 1, 0}
	x, err := Solve(m, a, []float64{3, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, []float64{7, 3}, 1e-12) {
		t.Errorf("Solve = %v, want [7 3]", x)
	}
}

func TestSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, n := range []int{1, 2, 4, 10, 20} {
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		// rhs = A * want, so Solve must recover want.
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rhs[i] += a[i*n+j] * want[j]
			}
		}
		m := core.New()
		x, err := Solve(m, a, rhs, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !almostEqual(x, want, 1e-6) {
			t.Fatalf("n=%d: Solve = %v, want %v", n, x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	m := core.New()
	a := []float64{1, 2, 2, 4} // rank 1
	if _, err := Solve(m, a, []float64{1, 2}, 2); err == nil {
		t.Error("singular system did not error")
	}
}

func TestSolveStepsLinear(t *testing.T) {
	// Table 1: Linear Systems Solver is O(n) steps.
	steps := func(n int) int64 {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			a[i*n+i] = 1
		}
		m := core.New()
		if _, err := Solve(m, a, make([]float64, n), n); err != nil {
			t.Fatal(err)
		}
		return m.Steps()
	}
	s8, s16 := steps(8), steps(16)
	ratio := float64(s16) / float64(s8)
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("Solve step ratio for 2x n = %.2f, want ~2", ratio)
	}
}

func TestDimensionPanics(t *testing.T) {
	m := core.New()
	for name, f := range map[string]func(){
		"vecmat": func() { VecMat(m, []float64{1}, []float64{1}, 2, 3) },
		"matmat": func() { MatMat(m, []float64{1}, []float64{1}, 2) },
		"solve":  func() { Solve(m, []float64{1}, []float64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
