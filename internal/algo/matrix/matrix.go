// Package matrix implements the paper's Table 1 matrix manipulations on
// the scan-model machine with n² (or n·(n+1)) virtual processors:
//
//   - vector × matrix in O(1) program steps (copy the vector across the
//     rows, multiply, sum the columns with a segmented +-distribute),
//   - matrix × matrix in O(n) steps (n rank-1 updates, each O(1)),
//   - a linear-system solver with partial pivoting in O(n) steps
//     (max-scan pivot selection per iteration).
//
// Matrices are flat row-major []float64 vectors; the column operations
// run through one fixed transpose permutation.
package matrix

import (
	"fmt"
	"math"

	"scans/internal/core"
)

// rowHeads returns segment flags marking the start of each length-w row
// in an n-row matrix.
func rowHeads(m *core.Machine, n, w int) []bool {
	flags := make([]bool, n*w)
	core.Par(m, n*w, func(i int) { flags[i] = i%w == 0 })
	return flags
}

// transposeIdx returns the permutation sending row-major (n rows × w
// cols) position i*w+j to column-major position j*n+i.
func transposeIdx(m *core.Machine, n, w int) []int {
	idx := make([]int, n*w)
	core.Par(m, n*w, func(p int) {
		i, j := p/w, p%w
		idx[p] = j*n + i
	})
	return idx
}

// spreadRowValue distributes, for each row i, the value at column col of
// that row across the whole row: one permute to the row heads plus one
// segmented copy. a is row-major n×w.
func spreadRowValue(m *core.Machine, a []float64, n, w, col int, flags []bool) []float64 {
	sel := make([]bool, n*w)
	idx := make([]int, n*w)
	core.Par(m, n*w, func(p int) {
		if p%w == col {
			sel[p] = true
			idx[p] = (p / w) * w
		}
	})
	heads := make([]float64, n*w)
	core.PermuteIf(m, heads, a, idx, sel)
	out := make([]float64, n*w)
	core.SegCopy(m, out, heads, flags)
	return out
}

// VecMat multiplies the length-n vector v by the n×w matrix a (row
// major), returning the length-w result, in O(1) program steps.
func VecMat(m *core.Machine, v []float64, a []float64, n, w int) []float64 {
	if len(v) != n || len(a) != n*w {
		panic(fmt.Sprintf("matrix: VecMat: v %d, a %d, want %d and %d", len(v), len(a), n, n*w))
	}
	if n == 0 || w == 0 {
		return make([]float64, w)
	}
	flags := rowHeads(m, n, w)
	// v_i across row i.
	headPos := make([]int, n)
	core.Par(m, n, func(i int) { headPos[i] = i * w })
	atHeads := make([]float64, n*w)
	core.Permute(m, atHeads, v, headPos)
	vv := make([]float64, n*w)
	core.SegCopy(m, vv, atHeads, flags)
	prod := make([]float64, n*w)
	core.Par(m, n*w, func(p int) { prod[p] = vv[p] * a[p] })
	// Column sums: transpose, segmented +-distribute, read the heads.
	t := transposeIdx(m, n, w)
	colMajor := make([]float64, n*w)
	core.Permute(m, colMajor, prod, t)
	colFlags := rowHeads(m, w, n)
	sums := make([]float64, n*w)
	core.SegFPlusScan(m, sums, colMajor, colFlags)
	core.Par(m, n*w, func(p int) { sums[p] += colMajor[p] })
	out := make([]float64, w)
	core.Par(m, w, func(j int) { out[j] = sums[j*n+n-1] })
	return out
}

// MatMat multiplies two n×n row-major matrices in O(n) program steps:
// n rank-1 updates C += A[:,k] ⊗ B[k,:], each a constant number of
// primitives.
func MatMat(m *core.Machine, a, b []float64, n int) []float64 {
	if len(a) != n*n || len(b) != n*n {
		panic(fmt.Sprintf("matrix: MatMat: a %d, b %d, want %d", len(a), len(b), n*n))
	}
	c := make([]float64, n*n)
	if n == 0 {
		return c
	}
	flags := rowHeads(m, n, n)
	t := transposeIdx(m, n, n)
	bt := make([]float64, n*n)
	core.Permute(m, bt, b, t) // bt[j*n+k] = b[k*n+j]
	for k := 0; k < n; k++ {
		acol := spreadRowValue(m, a, n, n, k, flags) // acol[i*n+j] = a[i][k]
		// brow in transposed space: brow_t[j*n+i] = b[k][j], then back.
		browT := spreadRowValue(m, bt, n, n, k, flags)
		brow := make([]float64, n*n)
		core.Permute(m, brow, browT, t)
		core.Par(m, n*n, func(p int) { c[p] += acol[p] * brow[p] })
	}
	return c
}

// Solve solves the n×n system ax = rhs by Gauss–Jordan elimination with
// partial pivoting on an n×(n+1) augmented matrix: n iterations, each a
// constant number of primitives (the pivot search is one max-distribute,
// the paper's "with pivoting ... O(n)" row of Table 1). It returns an
// error for a singular (or numerically singular) system.
func Solve(m *core.Machine, a []float64, rhs []float64, n int) ([]float64, error) {
	if len(a) != n*n || len(rhs) != n {
		panic(fmt.Sprintf("matrix: Solve: a %d, rhs %d, want %d and %d", len(a), len(rhs), n*n, n))
	}
	if n == 0 {
		return nil, nil
	}
	w := n + 1
	aug := make([]float64, n*w)
	core.Par(m, n*w, func(p int) {
		i, j := p/w, p%w
		if j < n {
			aug[p] = a[i*n+j]
		} else {
			aug[p] = rhs[i]
		}
	})
	flags := rowHeads(m, n, w)
	t := transposeIdx(m, n, w)
	tBack := transposeIdx(m, w, n)
	one := make([]bool, n*w) // single segment for global distributes
	colFlags := rowHeads(m, w, n)
	for k := 0; k < n; k++ {
		// Partial pivoting: the row i >= k maximizing |aug[i][k]|.
		key := make([]float64, n*w)
		core.Par(m, n*w, func(p int) {
			i, j := p/w, p%w
			if j == k && i >= k {
				key[p] = math.Abs(aug[p])
			} else {
				key[p] = math.Inf(-1)
			}
		})
		best := make([]float64, n*w)
		core.SegFMaxDistribute(m, best, key, one)
		if best[0] == 0 || math.IsInf(best[0], -1) {
			return nil, fmt.Errorf("matrix: Solve: singular system at elimination step %d", k)
		}
		cand := make([]int, n*w)
		core.Par(m, n*w, func(p int) {
			if key[p] == best[p] {
				cand[p] = p / w
			} else {
				cand[p] = core.MaxIdentity
			}
		})
		tmp := make([]int, n*w)
		r := core.MinDistribute(m, tmp, cand)
		if r != k {
			// Swap rows k and r with one permute.
			swp := make([]int, n*w)
			core.Par(m, n*w, func(p int) {
				switch i, j := p/w, p%w; i {
				case k:
					swp[p] = r*w + j
				case r:
					swp[p] = k*w + j
				default:
					swp[p] = p
				}
			})
			swapped := make([]float64, n*w)
			core.Permute(m, swapped, aug, swp)
			aug = swapped
		}
		// Distribute pivot row k down every column (in transposed
		// space) and the per-row factor aug[i][k] across every row.
		colMajor := make([]float64, n*w)
		core.Permute(m, colMajor, aug, t)
		pivRowT := spreadRowValue(m, colMajor, w, n, k, colFlags)
		pivRow := make([]float64, n*w)
		core.Permute(m, pivRow, pivRowT, tBack)
		factor := spreadRowValue(m, aug, n, w, k, flags)
		piv := pivRow[k*w+k] // == aug[k][k], already distributed everywhere in row k... use scalar read
		core.Par(m, n*w, func(p int) {
			i := p / w
			if i == k {
				aug[p] /= piv
			} else {
				aug[p] -= factor[i*w] * pivRow[p] / piv
			}
		})
	}
	x := make([]float64, n)
	core.Par(m, n, func(i int) { x[i] = aug[i*w+n] })
	return x, nil
}
