package listrank

import (
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/core"
)

// randomList returns next pointers for one list over n nodes in random
// order.
func randomList(rng *rand.Rand, n int) []int {
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[n-1]] = order[n-1]
	return next
}

func TestPointerJumpSmall(t *testing.T) {
	m := core.New()
	// 2 -> 0 -> 1 -> 3 -> 3 (tail).
	next := []int{1, 3, 0, 3}
	got := PointerJump(m, next)
	want := []int{2, 1, 3, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PointerJump = %v, want %v", got, want)
	}
}

func TestPointerJumpMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{1, 2, 3, 17, 256, 1000} {
		next := randomList(rng, n)
		m := core.New()
		got := PointerJump(m, next)
		if want := SerialRank(next); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: pointer jumping wrong", n)
		}
	}
}

func TestContractMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{1, 2, 3, 4, 17, 256, 1000} {
		next := randomList(rng, n)
		m := core.New()
		got := Contract(m, next, int64(n))
		if want := SerialRank(next); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: contraction ranking wrong", n)
		}
	}
}

func TestMultipleLists(t *testing.T) {
	// Two disjoint lists: 0->1->1 and 3->2->4->4.
	next := []int{1, 1, 4, 2, 4}
	want := []int{1, 0, 1, 2, 0}
	m := core.New()
	if got := PointerJump(m, next); !reflect.DeepEqual(got, want) {
		t.Errorf("PointerJump forest = %v, want %v", got, want)
	}
	if got := Contract(m, next, 7); !reflect.DeepEqual(got, want) {
		t.Errorf("Contract forest = %v, want %v", got, want)
	}
}

func TestChecksRejectBadInputs(t *testing.T) {
	m := core.New()
	for name, next := range map[string][]int{
		"cycle":        {1, 2, 0},
		"two-preds":    {2, 2, 2},
		"out-of-range": {5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			PointerJump(m, next)
		}()
	}
}

// TestTable5ProcessorStepGrowth verifies the shape of the paper's
// Table 5 row: pointer jumping with p = n does Θ(n lg n) processor-steps
// while contraction with p = n/lg n does Θ(n). Constant factors differ
// (contraction runs ~10x more primitives per round), so the measurable
// claim is the growth rate: over a 64x size increase, pointer jumping's
// product must grow by an extra lg factor (~64·16/10) while
// contraction's stays ~linear.
func TestTable5ProcessorStepGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	product := func(n, lgn int, contract bool) float64 {
		next := randomList(rng, n)
		if contract {
			m := core.New(core.WithProcessors(n / lgn))
			Contract(m, next, 5)
			return float64(m.Steps()) * float64(n/lgn)
		}
		m := core.New(core.WithProcessors(n))
		PointerJump(m, next)
		return float64(m.Steps()) * float64(n)
	}
	jumpRatio := product(1<<16, 16, false) / product(1<<10, 10, false)
	contractRatio := product(1<<16, 16, true) / product(1<<10, 10, true)
	// 64x input: linear work grows ~64x, n lg n work ~64*1.6x.
	if contractRatio > 85 {
		t.Errorf("contraction processor-steps grew %.1fx for 64x input; want ~linear", contractRatio)
	}
	if jumpRatio < 90 {
		t.Errorf("pointer jumping processor-steps grew only %.1fx for 64x input; want an extra lg factor", jumpRatio)
	}
	if contractRatio >= jumpRatio {
		t.Errorf("contraction growth (%.1fx) not below pointer jumping growth (%.1fx)", contractRatio, jumpRatio)
	}
}

func TestContractStepsLogWithUnboundedProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	steps := func(n int) int64 {
		m := core.New()
		Contract(m, randomList(rng, n), 3)
		return m.Steps()
	}
	s1, s4 := steps(1<<10), steps(1<<12)
	if ratio := float64(s4) / float64(s1); ratio > 2 {
		t.Errorf("contraction steps grew %.2fx for 4x nodes; want lg-like", ratio)
	}
}
