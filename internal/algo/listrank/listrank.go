// Package listrank implements the list-ranking row of the paper's
// Table 5: computing every node's distance to the end of a linked list.
//
// Two algorithms are provided. PointerJump is Wyllie's pointer jumping:
// O(lg n) steps with n processors but O(n lg n) work. Contract is the
// work-efficient random-mate contraction: spliced-out nodes accumulate
// their weight on their predecessor's link and are packed away (the
// paper's load balancing), so the active vector shrinks geometrically
// and the processor-step product is O(n) with p = n / lg n processors —
// exactly the trade Table 5 tabulates.
package listrank

import (
	"fmt"
	"math/rand"

	"scans/internal/core"
)

// PointerJump returns, for each node, the number of links from it to the
// tail. next[i] is node i's successor; the tail points to itself. Every
// node must reach the tail (one list, or a forest of lists each ending
// in a self-loop).
func PointerJump(m *core.Machine, next []int) []int {
	n := len(next)
	checkList(next)
	rank := make([]int, n)
	nxt := make([]int, n)
	core.Par(m, n, func(i int) {
		nxt[i] = next[i]
		if next[i] != i {
			rank[i] = 1
		}
	})
	rankNext := make([]int, n)
	nextNext := make([]int, n)
	for span := 1; span < n; span *= 2 {
		core.GatherShared(m, rankNext, rank, nxt)
		core.GatherShared(m, nextNext, nxt, nxt)
		core.Par(m, n, func(i int) {
			rank[i] += rankNext[i]
			nxt[i] = nextNext[i]
		})
	}
	return rank
}

// spliceRecord remembers one removed node for the expansion sweep.
type spliceRecord struct {
	id, succ, d int
}

// Contract returns the same ranks as PointerJump via work-efficient
// random-mate contraction. seed drives the coin flips.
func Contract(m *core.Machine, next []int, seed int64) []int {
	n := len(next)
	checkList(next)
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Active arrays, indexed by position; ids map positions back to the
	// original nodes. d is the weight of the link leaving each node.
	ids := make([]int, n)
	nxt := make([]int, n) // successor as original id
	d := make([]int, n)
	core.Par(m, n, func(i int) {
		ids[i] = i
		nxt[i] = next[i]
		if next[i] != i {
			d[i] = 1
		}
	})
	posOf := make([]int, n) // original id -> active position
	var rounds [][]spliceRecord
	na := n
	for round := 0; ; round++ {
		if round > 64*(lgCeil(n)+2) {
			panic("listrank: Contract did not converge; splice bookkeeping bug")
		}
		anyNonTail := false
		for i := 0; i < na; i++ {
			if nxt[i] != ids[i] {
				anyNonTail = true
				break
			}
		}
		if !anyNonTail {
			break
		}
		ids, nxt, d, na = spliceRound(m, rng, ids, nxt, d, posOf, &rounds, na)
	}
	// Only tails remain; their rank is zero.
	rank := make([]int, n)
	core.Par(m, na, func(i int) { rank[ids[i]] = d[i] })
	// Expansion: replay the splices newest-first; each removed node's
	// rank is its link weight plus its then-successor's rank.
	for r := len(rounds) - 1; r >= 0; r-- {
		recs := rounds[r]
		core.Par(m, len(recs), func(i int) {
			rec := recs[i]
			rank[rec.id] = rec.d + rank[rec.succ]
		})
	}
	return rank
}

// spliceRound removes an independent set of picked nodes and returns the
// packed arrays.
func spliceRound(m *core.Machine, rng *rand.Rand, ids, nxt, d, posOf []int, rounds *[][]spliceRecord, na int) ([]int, []int, []int, int) {
	ids, nxt, d = ids[:na], nxt[:na], d[:na]
	// Refresh id -> position (only the na active writes are charged).
	core.Permute(m, posOf, iota(m, na), ids)
	nxtPos := make([]int, na)
	core.GatherShared(m, nxtPos, posOf, nxt) // tail reads itself twice
	isTail := make([]bool, na)
	coin := make([]bool, na)
	core.Par(m, na, func(i int) {
		isTail[i] = nxt[i] == ids[i]
		coin[i] = rng.Intn(2) == 0
	})
	// predCoin / predPos via a scatter from each non-tail to its
	// successor's slot: exclusive, since successors are unique.
	notTail := make([]bool, na)
	core.Par(m, na, func(i int) { notTail[i] = !isTail[i] })
	predCoin := make([]bool, na)
	core.PermuteIf(m, predCoin, coin, nxtPos, notTail)
	predPos := make([]int, na)
	core.Par(m, na, func(i int) { predPos[i] = -1 })
	core.PermuteIf(m, predPos, iota(m, na), nxtPos, notTail)
	// A picked non-tail splices unless its predecessor was also picked
	// (which keeps the spliced set independent). Heads — nodes with no
	// predecessor — always qualify when picked; there is simply no link
	// to repair for them.
	spliced := make([]bool, na)
	hasPred := make([]bool, na)
	core.Par(m, na, func(i int) {
		hasPred[i] = predPos[i] >= 0
		spliced[i] = coin[i] && !isTail[i] && (!hasPred[i] || !predCoin[i])
	})
	// Record the removals.
	count := 0
	for _, s := range spliced {
		if s {
			count++
		}
	}
	if count > 0 {
		recID := make([]int, count)
		recSucc := make([]int, count)
		recD := make([]int, count)
		core.Pack(m, recID, ids, spliced)
		core.Pack(m, recSucc, nxt, spliced)
		core.Pack(m, recD, d, spliced)
		recs := make([]spliceRecord, count)
		for i := range recs {
			recs[i] = spliceRecord{id: recID[i], succ: recSucc[i], d: recD[i]}
		}
		*rounds = append(*rounds, recs)
		// Splice: the predecessor (if any) inherits the removed node's
		// link; spliced heads just drop.
		withPred := make([]bool, na)
		core.Par(m, na, func(i int) { withPred[i] = spliced[i] && hasPred[i] })
		core.PermuteIf(m, nxt, nxt, predPos, withPred)
		dAdd := make([]int, na)
		core.PermuteIf(m, dAdd, d, predPos, withPred)
		core.Par(m, na, func(i int) {
			if !spliced[i] {
				d[i] += dAdd[i]
			}
		})
		// Pack the survivors.
		keep := make([]bool, na)
		core.Par(m, na, func(i int) { keep[i] = !spliced[i] })
		newIds := make([]int, na-count)
		newNxt := make([]int, na-count)
		newD := make([]int, na-count)
		core.Pack(m, newIds, ids, keep)
		core.Pack(m, newNxt, nxt, keep)
		core.Pack(m, newD, d, keep)
		return newIds, newNxt, newD, na - count
	}
	return ids, nxt, d, na
}

func lgCeil(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// iota returns [0, 1, ..., n-1], charged as one elementwise step.
func iota(m *core.Machine, n int) []int {
	v := make([]int, n)
	core.Par(m, n, func(i int) { v[i] = i })
	return v
}

// checkList panics unless next describes lists: every pointer in range,
// and following pointers terminates (no cycle other than tail
// self-loops). O(n) host-side validation.
func checkList(next []int) {
	n := len(next)
	indeg := make([]int, n)
	for i, nx := range next {
		if nx < 0 || nx >= n {
			panic(fmt.Sprintf("listrank: next[%d] = %d out of range", i, nx))
		}
		if nx != i {
			indeg[nx]++
		}
	}
	for i, deg := range indeg {
		if deg > 1 {
			panic(fmt.Sprintf("listrank: node %d has %d predecessors; not a list", i, deg))
		}
	}
	// Cycle detection: total rank must be finite; walk from each head.
	visited := make([]bool, n)
	for i := 0; i < n; i++ {
		if indeg[i] != 0 {
			continue
		}
		steps := 0
		for x := i; !visited[x]; x = next[x] {
			visited[x] = true
			if next[x] == x {
				break
			}
			if steps++; steps > n {
				panic("listrank: cycle detected")
			}
		}
	}
	for i, v := range visited {
		if !v {
			panic(fmt.Sprintf("listrank: node %d is on a cycle with no tail", i))
		}
	}
}

// SerialRank is the obvious reference implementation.
func SerialRank(next []int) []int {
	n := len(next)
	rank := make([]int, n)
	var solve func(i int) int
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	solve = func(i int) int {
		if next[i] == i {
			return 0
		}
		if memo[i] >= 0 {
			return memo[i]
		}
		// Iterative to avoid deep recursion on long lists.
		var path []int
		x := i
		for memo[x] < 0 && next[x] != x {
			path = append(path, x)
			x = next[x]
		}
		base := 0
		if memo[x] >= 0 {
			base = memo[x]
		}
		for j := len(path) - 1; j >= 0; j-- {
			base++
			memo[path[j]] = base
		}
		return memo[i]
	}
	for i := range rank {
		rank[i] = solve(i)
	}
	return rank
}
