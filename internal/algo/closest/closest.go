// Package closest solves the planar closest-pair problem (the paper's
// Table 1 row: O(lg n) program steps in the scan model) with a
// level-synchronous divide and conquer. The top-down pass splits every
// segment at its x-median simultaneously, maintaining a y-sorted vector
// by stable segmented splits (so no merging is ever needed); the
// bottom-up pass combines children level by level, each level checking
// its median strips with a constant number of segmented operations — the
// classical "each strip point looks at the next 7 points in y order"
// argument, executed for all strips at a level at once.
//
// Coordinates are non-negative integers (the initial y ordering comes
// from the split radix sort) and the result is the squared euclidean
// distance of the closest pair.
package closest

import (
	"fmt"
	"math"

	"scans/internal/algo/radix"
	"scans/internal/core"
)

// Point is an integer-grid planar point.
type Point struct{ X, Y int }

// stripNeighbors is how many following strip points each strip point
// inspects: 7 suffices by the classical packing argument; 8 adds margin
// for duplicate points.
const stripNeighbors = 8

// level is the per-level snapshot of the top-down pass.
type level struct {
	xs, ys   []int  // coordinates, y-sorted within parent segments
	flags    []bool // parent segment heads
	midX     []int  // splitter x, distributed over parent segments
	midID    []int  // splitter id (x-ties break by id)
	split    []bool // whether the segment split at this level
	newFlags []bool // segment heads after the split
}

// Pair reports the result of Run.
type Pair struct {
	// SqDist is the squared distance of the closest pair, or
	// math.MaxInt if fewer than two points were given.
	SqDist int
}

// Run computes the closest-pair distance of pts on machine m.
func Run(m *core.Machine, pts []Point) Pair {
	n := len(pts)
	if n < 2 {
		return Pair{SqDist: math.MaxInt}
	}
	for _, p := range pts {
		if p.X < 0 || p.Y < 0 {
			panic("closest: coordinates must be non-negative for the radix ordering")
		}
		if p.X > 1<<24 || p.Y > 1<<24 {
			panic(fmt.Sprintf("closest: coordinate %v too large for exact squared distances", p))
		}
	}
	// Dual orderings: ids by x and ids by y, same segment structure.
	xsAll := make([]int, n)
	ysAll := make([]int, n)
	core.Par(m, n, func(i int) { xsAll[i], ysAll[i] = pts[i].X, pts[i].Y })
	_, byX := radix.SortWithIndex(m, xsAll, radix.BitsFor(xsAll))
	_, byY := radix.SortWithIndex(m, ysAll, radix.BitsFor(ysAll))
	flags := make([]bool, n)
	flags[0] = true

	// Top-down: split every splittable segment at its x-median.
	var levels []*level
	for {
		segLen := distributeSegLen(m, flags)
		anyBig := false
		for i := 0; i < n; i++ {
			if flags[i] && segLen[i] > 1 {
				anyBig = true
				break
			}
		}
		if !anyBig {
			break
		}
		lv := &level{flags: append([]bool(nil), flags...)}
		lv.xs = make([]int, n)
		lv.ys = make([]int, n)
		core.Par(m, n, func(i int) {
			lv.xs[i], lv.ys[i] = pts[byY[i]].X, pts[byY[i]].Y
		})
		rank := make([]int, n)
		core.SegRank(m, rank, flags)
		split := make([]bool, n)
		isSplitter := make([]bool, n)
		core.Par(m, n, func(i int) {
			split[i] = segLen[i] > 1
			isSplitter[i] = split[i] && rank[i] == (segLen[i]-1)/2
		})
		lv.split = split
		lv.midX = pickPerSegment(m, flags, isSplitter, func(i int) int { return pts[byX[i]].X })
		lv.midID = pickPerSegment(m, flags, isSplitter, func(i int) int { return byX[i] })
		goesRight := func(v []int) []bool {
			gr := make([]bool, n)
			core.Par(m, n, func(i int) {
				if !split[i] {
					return
				}
				x := pts[v[i]].X
				gr[i] = x > lv.midX[i] || (x == lv.midX[i] && v[i] > lv.midID[i])
			})
			return gr
		}
		idx := make([]int, n)
		tmp := make([]int, n)
		for _, v := range [][]int{byX, byY} {
			core.SegSplitIndex(m, idx, goesRight(v), flags)
			core.Permute(m, tmp, v, idx)
			copy(v, tmp)
		}
		leftCount := make([]int, n)
		core.Par(m, n, func(i int) { leftCount[i] = (segLen[i]-1)/2 + 1 })
		core.Par(m, n, func(i int) {
			if split[i] && rank[i] == leftCount[i] {
				flags[i] = true
			}
		})
		lv.newFlags = append([]bool(nil), flags...)
		levels = append(levels, lv)
	}

	// Bottom-up: delta starts at infinity (all segments are singletons)
	// and each level combines children with a strip check over the
	// parent's y-sorted points.
	delta := make([]int, n)
	core.Par(m, n, func(i int) { delta[i] = math.MaxInt })
	for l := len(levels) - 1; l >= 0; l-- {
		lv := levels[l]
		// Child minimum per parent segment. delta is positionally in the
		// post-split layout, whose parent segments occupy the same
		// ranges.
		childMin := make([]int, n)
		core.SegMinDistribute(m, childMin, delta, lv.flags)
		stripMin := stripCheck(m, lv, childMin)
		core.Par(m, n, func(i int) {
			d := childMin[i]
			if stripMin[i] < d {
				d = stripMin[i]
			}
			delta[i] = d
		})
		// Distribute the combined value across the parent segment (it
		// already is uniform per segment from the distributes).
	}
	return Pair{SqDist: delta[0]}
}

// stripCheck computes, per parent segment, the minimum squared distance
// among pairs that straddle the median strip: points with
// (x - midX)² < childMin, kept in y order, each compared with the next
// stripNeighbors strip points.
func stripCheck(m *core.Machine, lv *level, childMin []int) []int {
	n := len(lv.flags)
	inStrip := make([]bool, n)
	core.Par(m, n, func(i int) {
		if !lv.split[i] {
			return
		}
		dx := lv.xs[i] - lv.midX[i]
		if childMin[i] == math.MaxInt || dx*dx < childMin[i] {
			inStrip[i] = true
		}
	})
	// Stable-split the strip points to the front of each segment,
	// preserving y order.
	notStrip := make([]bool, n)
	core.Par(m, n, func(i int) { notStrip[i] = !inStrip[i] })
	idx := make([]int, n)
	core.SegSplitIndex(m, idx, notStrip, lv.flags)
	sx := make([]int, n)
	sy := make([]int, n)
	sIn := make([]bool, n)
	core.Permute(m, sx, lv.xs, idx)
	core.Permute(m, sy, lv.ys, idx)
	core.Permute(m, sIn, inStrip, idx)
	nStrip := make([]int, n)
	ones := make([]int, n)
	core.Par(m, n, func(i int) {
		if sIn[i] {
			ones[i] = 1
		}
	})
	core.SegPlusDistribute(m, nStrip, ones, lv.flags)
	rank := make([]int, n)
	core.SegRank(m, rank, lv.flags)
	best := make([]int, n)
	core.Par(m, n, func(i int) { best[i] = math.MaxInt })
	// t global shifts: neighbor t positions ahead, valid while both are
	// strip points of the same segment.
	for t := 1; t <= stripNeighbors; t++ {
		tt := t
		core.Par(m, n, func(i int) {
			if !sIn[i] || rank[i]+tt >= nStrip[i] || i+tt >= n {
				return
			}
			dx := sx[i] - sx[i+tt]
			dy := sy[i] - sy[i+tt]
			d := dx*dx + dy*dy
			if d < best[i] {
				best[i] = d
			}
		})
	}
	out := make([]int, n)
	core.SegMinDistribute(m, out, best, lv.flags)
	return out
}

// distributeSegLen gives every slot its segment's length.
func distributeSegLen(m *core.Machine, flags []bool) []int {
	n := len(flags)
	ones := make([]int, n)
	core.Par(m, n, func(i int) { ones[i] = 1 })
	out := make([]int, n)
	core.SegPlusDistribute(m, out, ones, flags)
	return out
}

// pickPerSegment distributes f(i) of each segment's selected slot.
func pickPerSegment(m *core.Machine, flags, sel []bool, f func(i int) int) []int {
	n := len(flags)
	masked := make([]int, n)
	core.Par(m, n, func(i int) {
		if sel[i] {
			masked[i] = f(i)
		} else {
			masked[i] = core.MinIdentity
		}
	})
	out := make([]int, n)
	core.SegMaxDistribute(m, out, masked, flags)
	return out
}

// Brute is the O(n²) reference.
func Brute(pts []Point) int {
	best := math.MaxInt
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dx, dy := pts[i].X-pts[j].X, pts[i].Y-pts[j].Y
			if d := dx*dx + dy*dy; d < best {
				best = d
			}
		}
	}
	return best
}
