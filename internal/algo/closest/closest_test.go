package closest

import (
	"math"
	"math/rand"
	"testing"

	"scans/internal/core"
)

func TestRunSmall(t *testing.T) {
	m := core.New()
	pts := []Point{{0, 0}, {10, 10}, {3, 4}, {4, 4}, {20, 0}}
	got := Run(m, pts)
	if got.SqDist != 1 {
		t.Errorf("SqDist = %d, want 1", got.SqDist)
	}
}

func TestRunMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(300)
		span := 1 << uint(3+rng.Intn(10))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(span), rng.Intn(span)}
		}
		m := core.New()
		got := Run(m, pts)
		if want := Brute(pts); got.SqDist != want {
			t.Fatalf("trial %d (n=%d span=%d): Run = %d, brute = %d", trial, n, span, got.SqDist, want)
		}
	}
}

func TestRunDuplicates(t *testing.T) {
	m := core.New()
	pts := []Point{{5, 5}, {9, 2}, {5, 5}, {0, 0}}
	if got := Run(m, pts); got.SqDist != 0 {
		t.Errorf("duplicate points: SqDist = %d, want 0", got.SqDist)
	}
}

func TestRunCollinear(t *testing.T) {
	m := core.New()
	// Vertical line: all splits degenerate into x-ties broken by id.
	pts := []Point{{7, 0}, {7, 100}, {7, 41}, {7, 44}, {7, 70}}
	if got, want := Run(m, pts).SqDist, Brute(pts); got != want {
		t.Errorf("vertical line: %d, want %d", got, want)
	}
	// Horizontal line.
	pts = []Point{{0, 7}, {100, 7}, {41, 7}, {44, 7}, {70, 7}}
	if got, want := Run(m, pts).SqDist, Brute(pts); got != want {
		t.Errorf("horizontal line: %d, want %d", got, want)
	}
}

func TestRunTinyInputs(t *testing.T) {
	m := core.New()
	if got := Run(m, nil); got.SqDist != math.MaxInt {
		t.Error("empty input should report MaxInt")
	}
	if got := Run(m, []Point{{1, 1}}); got.SqDist != math.MaxInt {
		t.Error("single point should report MaxInt")
	}
	if got := Run(m, []Point{{1, 1}, {4, 5}}); got.SqDist != 25 {
		t.Errorf("two points: %d, want 25", got.SqDist)
	}
}

func TestRunGridPoints(t *testing.T) {
	// A dense grid: min distance is exactly 1, with huge tie counts.
	m := core.New()
	var pts []Point
	for x := 0; x < 12; x++ {
		for y := 0; y < 12; y++ {
			pts = append(pts, Point{x * 3, y * 3})
		}
	}
	if got := Run(m, pts); got.SqDist != 9 {
		t.Errorf("grid: SqDist = %d, want 9", got.SqDist)
	}
}

func TestStepsLogarithmic(t *testing.T) {
	// Table 1: O(lg n) steps after the sorts. Per-doubling step growth
	// should be roughly additive, not multiplicative.
	rng := rand.New(rand.NewSource(131))
	steps := func(n int) int64 {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(1 << 16), rng.Intn(1 << 16)}
		}
		m := core.New()
		Run(m, pts)
		return m.Steps()
	}
	s1, s2, s4 := steps(1<<8), steps(1<<9), steps(1<<10)
	d1, d2 := s2-s1, s4-s2
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("steps not increasing: %d %d %d", s1, s2, s4)
	}
	if float64(d2) > 1.8*float64(d1) {
		t.Errorf("per-doubling growth accelerating: %d then %d", d1, d2)
	}
}

func TestRejectsBadCoordinates(t *testing.T) {
	m := core.New()
	for name, pts := range map[string][]Point{
		"negative": {{-1, 0}, {1, 1}},
		"huge":     {{1 << 30, 0}, {1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Run(m, pts)
		}()
	}
}
