// Package kdtree builds a 2-d tree (the paper's Table 1 "Building a
// K-D Tree" row: O(lg n) program steps in the scan model, O(lg² n) on
// the P-RAMs). The scan-model trick is to keep two id vectors — one
// sorted by x and one by y — over an identical segment structure, one
// segment per tree node under construction. Each level then needs no
// sorting at all: the splitting coordinate's median is the middle
// element of the sorted segment, and one stable segmented split
// partitions both vectors while preserving their sort orders, O(1)
// program steps per level.
//
// Coordinates are integers so the initial orderings come from the
// paper's own split radix sort.
package kdtree

import (
	"fmt"

	"scans/internal/algo/radix"
	"scans/internal/core"
)

// Point is an integer-grid planar point.
type Point struct{ X, Y int }

// Node is one k-d tree node. Leaves have Left == Right == -1 and hold
// Points[Start:Start+Count] of the tree's point ordering.
type Node struct {
	Axis         int // 0 = x, 1 = y; -1 for leaves
	Split        int // splitting coordinate value (max of the left side)
	SplitID      int // id of the splitting point (ties break by id)
	Start, Count int // range in Tree.Order
	Left, Right  int // child node indices, -1 for leaves
}

// Tree is a built k-d tree.
type Tree struct {
	Nodes  []Node
	Order  []int // point ids, the final in-tree left-to-right order
	Points []Point
	Root   int
}

// levelSplit records one segment's split at one level, keyed by the
// segment's start offset.
type levelSplit struct {
	start, length     int
	splitVal, splitID int
	leftCount         int
}

// Build constructs a k-d tree over pts, splitting segments recursively
// at the median (alternating axes) until segments have at most leafSize
// points. O(lg n) program steps total: O(d) for the two radix sorts and
// O(1) per level.
func Build(m *core.Machine, pts []Point, leafSize int) *Tree {
	if leafSize < 1 {
		panic(fmt.Sprintf("kdtree: Build: leafSize %d < 1", leafSize))
	}
	n := len(pts)
	t := &Tree{Points: pts, Root: -1}
	if n == 0 {
		return t
	}
	xs := make([]int, n)
	ys := make([]int, n)
	core.Par(m, n, func(i int) { xs[i], ys[i] = pts[i].X, pts[i].Y })
	for i := 0; i < n; i++ {
		if xs[i] < 0 || ys[i] < 0 {
			panic("kdtree: Build: coordinates must be non-negative for the radix ordering")
		}
	}
	_, byX := radix.SortWithIndex(m, xs, radix.BitsFor(xs))
	_, byY := radix.SortWithIndex(m, ys, radix.BitsFor(ys))
	flags := make([]bool, n)
	flags[0] = true
	var levels [][]levelSplit

	for level := 0; ; level++ {
		axis := level % 2
		primary, other := byX, byY
		if axis == 1 {
			primary, other = byY, byX
		}
		segLen := distributeSegLen(m, flags)
		anyBig := false
		for i := 0; i < n; i++ {
			if flags[i] && segLen[i] > leafSize {
				anyBig = true
				break
			}
		}
		if !anyBig {
			break
		}
		rank := make([]int, n)
		core.SegRank(m, rank, flags)
		// The splitter is the median element of the primary (sorted)
		// vector; the left side keeps ranks [0, (len-1)/2].
		split := make([]bool, n) // per-segment: this level splits it
		isSplitter := make([]bool, n)
		core.Par(m, n, func(i int) {
			split[i] = segLen[i] > leafSize
			isSplitter[i] = split[i] && rank[i] == (segLen[i]-1)/2
		})
		// Distribute the splitter's (coordinate, id) across the segment,
		// usable by both vectors because their segment structures agree.
		coordOf := func(id int) int {
			if axis == 0 {
				return pts[id].X
			}
			return pts[id].Y
		}
		splitVal := pickPerSegment(m, flags, isSplitter, func(i int) int { return coordOf(primary[i]) })
		splitID := pickPerSegment(m, flags, isSplitter, func(i int) int { return primary[i] })
		// Partition both vectors: an element goes right when its
		// (coordinate, id) exceeds the splitter's — stable, so each
		// vector stays sorted.
		goesRight := func(v []int) []bool {
			gr := make([]bool, n)
			core.Par(m, n, func(i int) {
				if !split[i] {
					return
				}
				c := coordOf(v[i])
				gr[i] = c > splitVal[i] || (c == splitVal[i] && v[i] > splitID[i])
			})
			return gr
		}
		idx := make([]int, n)
		tmp := make([]int, n)
		for _, v := range []*[]int{&primary, &other} {
			core.SegSplitIndex(m, idx, goesRight(*v), flags)
			core.Permute(m, tmp, *v, idx)
			copy(*v, tmp)
		}
		if axis == 0 {
			byX, byY = primary, other
		} else {
			byY, byX = primary, other
		}
		// Record this level's splits and insert the new segment flags.
		var recs []levelSplit
		leftCount := make([]int, n)
		core.Par(m, n, func(i int) { leftCount[i] = (segLen[i]-1)/2 + 1 })
		for i := 0; i < n; i++ {
			if flags[i] && split[i] {
				recs = append(recs, levelSplit{
					start: i, length: segLen[i],
					splitVal: splitVal[i], splitID: splitID[i],
					leftCount: leftCount[i],
				})
			}
		}
		levels = append(levels, recs)
		core.Par(m, n, func(i int) {
			if split[i] && rank[i] == leftCount[i] {
				flags[i] = true
			}
		})
	}
	t.Order = byX
	t.Root = buildNodes(t, levels, 0, n, 0)
	return t
}

// distributeSegLen gives every slot its segment's length.
func distributeSegLen(m *core.Machine, flags []bool) []int {
	n := len(flags)
	ones := make([]int, n)
	core.Par(m, n, func(i int) { ones[i] = 1 })
	out := make([]int, n)
	core.SegPlusDistribute(m, out, ones, flags)
	return out
}

// pickPerSegment distributes f(i) of each segment's selected slot across
// the segment (exactly one selected slot per splitting segment).
func pickPerSegment(m *core.Machine, flags, sel []bool, f func(i int) int) []int {
	n := len(flags)
	masked := make([]int, n)
	core.Par(m, n, func(i int) {
		if sel[i] {
			masked[i] = f(i)
		} else {
			masked[i] = core.MinIdentity
		}
	})
	out := make([]int, n)
	core.SegMaxDistribute(m, out, masked, flags)
	return out
}

// buildNodes reconstructs the node tree from the recorded level splits.
func buildNodes(t *Tree, levels [][]levelSplit, start, count, level int) int {
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Axis: -1, Start: start, Count: count, Left: -1, Right: -1})
	if level < len(levels) {
		for _, rec := range levels[level] {
			if rec.start == start && rec.length == count {
				l := buildNodes(t, levels, start, rec.leftCount, level+1)
				r := buildNodes(t, levels, start+rec.leftCount, count-rec.leftCount, level+1)
				t.Nodes[id].Axis = level % 2
				t.Nodes[id].Split = rec.splitVal
				t.Nodes[id].SplitID = rec.splitID
				t.Nodes[id].Left = l
				t.Nodes[id].Right = r
				return id
			}
		}
		// Not split at this level; it may still split deeper (segments
		// stop splitting only when small enough, so no deeper record
		// exists either — but check to be safe).
		return buildNodes2(t, levels, id, start, count, level+1)
	}
	return id
}

// buildNodes2 looks for a split of this exact range at deeper levels
// (cannot happen with the current splitting rule, kept for safety).
func buildNodes2(t *Tree, levels [][]levelSplit, id, start, count, level int) int {
	for l := level; l < len(levels); l++ {
		for _, rec := range levels[l] {
			if rec.start == start && rec.length == count {
				left := buildNodes(t, levels, start, rec.leftCount, l+1)
				right := buildNodes(t, levels, start+rec.leftCount, count-rec.leftCount, l+1)
				t.Nodes[id].Axis = l % 2
				t.Nodes[id].Split = rec.splitVal
				t.Nodes[id].SplitID = rec.splitID
				t.Nodes[id].Left = left
				t.Nodes[id].Right = right
				return id
			}
		}
	}
	return id
}

// Validate panics if the tree violates a k-d invariant: every point in a
// node's left subtree must be ≤ the split (with id tiebreak) on the
// node's axis, every right-subtree point greater; ranges must partition.
func (t *Tree) Validate() {
	if t.Root == -1 {
		return
	}
	seen := make([]bool, len(t.Points))
	for _, id := range t.Order {
		if seen[id] {
			panic("kdtree: point appears twice in order")
		}
		seen[id] = true
	}
	var check func(ni int)
	check = func(ni int) {
		nd := t.Nodes[ni]
		if nd.Left == -1 {
			return
		}
		l, r := t.Nodes[nd.Left], t.Nodes[nd.Right]
		if l.Start != nd.Start || l.Count+r.Count != nd.Count || r.Start != nd.Start+l.Count {
			panic(fmt.Sprintf("kdtree: node %d children do not partition its range", ni))
		}
		for i := l.Start; i < l.Start+l.Count; i++ {
			id := t.Order[i]
			c := t.coord(id, nd.Axis)
			if c > nd.Split || (c == nd.Split && id > nd.SplitID) {
				panic(fmt.Sprintf("kdtree: left point %d violates split at node %d", id, ni))
			}
		}
		for i := r.Start; i < r.Start+r.Count; i++ {
			id := t.Order[i]
			c := t.coord(id, nd.Axis)
			if c < nd.Split || (c == nd.Split && id < nd.SplitID) {
				panic(fmt.Sprintf("kdtree: right point %d violates split at node %d", id, ni))
			}
		}
		check(nd.Left)
		check(nd.Right)
	}
	check(t.Root)
}

func (t *Tree) coord(id, axis int) int {
	if axis == 0 {
		return t.Points[id].X
	}
	return t.Points[id].Y
}

// Nearest returns the id of the point nearest to q (squared euclidean
// distance, ties to the smaller id), using standard branch-and-bound
// descent. Serial: queries are not part of the paper's claim; they
// exercise the built structure.
func (t *Tree) Nearest(q Point) int {
	if t.Root == -1 {
		return -1
	}
	bestID, bestD := -1, int(^uint(0)>>1)
	var visit func(ni int)
	visit = func(ni int) {
		nd := t.Nodes[ni]
		if nd.Left == -1 {
			for i := nd.Start; i < nd.Start+nd.Count; i++ {
				id := t.Order[i]
				d := sqDist(t.Points[id], q)
				if d < bestD || (d == bestD && id < bestID) {
					bestD, bestID = d, id
				}
			}
			return
		}
		qc := t.coord2(q, nd.Axis)
		first, second := nd.Left, nd.Right
		if qc > nd.Split {
			first, second = nd.Right, nd.Left
		}
		visit(first)
		gap := qc - nd.Split
		if gap*gap <= bestD {
			visit(second)
		}
	}
	visit(t.Root)
	return bestID
}

func (t *Tree) coord2(p Point, axis int) int {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

func sqDist(a, b Point) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
