package kdtree

import (
	"math/rand"
	"testing"

	"scans/internal/core"
)

func randomPoints(rng *rand.Rand, n, span int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Intn(span), rng.Intn(span)}
	}
	return pts
}

func bruteNearest(pts []Point, q Point) int {
	best, bestD := -1, int(^uint(0)>>1)
	for id, p := range pts {
		d := sqDist(p, q)
		if d < bestD || (d == bestD && id < best) {
			bestD, best = d, id
		}
	}
	return best
}

func TestBuildSmall(t *testing.T) {
	m := core.New()
	pts := []Point{{5, 5}, {1, 9}, {9, 1}, {3, 3}, {7, 7}}
	tr := Build(m, pts, 1)
	tr.Validate()
	if len(tr.Order) != 5 {
		t.Fatalf("order length %d", len(tr.Order))
	}
}

func TestBuildValidatesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(300)
		pts := randomPoints(rng, n, 64) // duplicates likely
		m := core.New()
		tr := Build(m, pts, 1+rng.Intn(4))
		tr.Validate()
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	pts := randomPoints(rng, 500, 1000)
	m := core.New()
	tr := Build(m, pts, 2)
	tr.Validate()
	for q := 0; q < 200; q++ {
		query := Point{rng.Intn(1200) - 100, rng.Intn(1200) - 100}
		got := tr.Nearest(query)
		want := bruteNearest(pts, query)
		if sqDist(pts[got], query) != sqDist(pts[want], query) {
			t.Fatalf("query %v: tree found %v (d=%d), brute %v (d=%d)",
				query, pts[got], sqDist(pts[got], query), pts[want], sqDist(pts[want], query))
		}
	}
}

func TestBuildAllDuplicates(t *testing.T) {
	m := core.New()
	pts := make([]Point, 16)
	for i := range pts {
		pts[i] = Point{3, 3}
	}
	tr := Build(m, pts, 2)
	tr.Validate()
	if got := tr.Nearest(Point{0, 0}); got == -1 {
		t.Error("nearest on duplicates failed")
	}
}

func TestBuildEmpty(t *testing.T) {
	m := core.New()
	tr := Build(m, nil, 1)
	if tr.Root != -1 || tr.Nearest(Point{1, 2}) != -1 {
		t.Error("empty tree misbehaves")
	}
}

func TestBuildRejectsNegative(t *testing.T) {
	m := core.New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative coordinates")
		}
	}()
	Build(m, []Point{{-1, 2}}, 1)
}

func TestDepthLogarithmic(t *testing.T) {
	// Median splits must give depth ~lg n.
	rng := rand.New(rand.NewSource(122))
	pts := randomPoints(rng, 1024, 1<<20)
	m := core.New()
	tr := Build(m, pts, 1)
	var depth func(ni, d int) int
	depth = func(ni, d int) int {
		nd := tr.Nodes[ni]
		if nd.Left == -1 {
			return d
		}
		l, r := depth(nd.Left, d+1), depth(nd.Right, d+1)
		if r > l {
			return r
		}
		return l
	}
	if got := depth(tr.Root, 0); got > 12 {
		t.Errorf("depth = %d for n=1024 median splits, want <= 12", got)
	}
}

func TestStepsLogarithmic(t *testing.T) {
	// Table 1: O(lg n) steps (after the O(d) radix sorts). Fix the
	// coordinate span so the sort cost is constant, then check the step
	// growth per doubling is roughly additive.
	rng := rand.New(rand.NewSource(123))
	steps := func(n int) int64 {
		pts := randomPoints(rng, n, 1<<16)
		m := core.New()
		Build(m, pts, 1)
		return m.Steps()
	}
	s1, s2, s4 := steps(1<<8), steps(1<<9), steps(1<<10)
	d1, d2 := s2-s1, s4-s2
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("steps not increasing: %d %d %d", s1, s2, s4)
	}
	if float64(d2) > 1.8*float64(d1) {
		t.Errorf("per-doubling step growth accelerating (%d then %d); want ~constant per level", d1, d2)
	}
}
