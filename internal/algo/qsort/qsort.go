// Package qsort implements the paper's parallel quicksort (§2.3.1,
// Figure 5): every segment independently distributes a pivot, compares,
// splits three ways (less / equal / greater), and inserts new segment
// flags — a constant number of primitives per iteration, and expected
// O(lg n) iterations with random pivots, so expected O(lg n) program
// steps. It is the paper's flagship demonstration of segmented scans.
package qsort

import (
	"math"
	"math/rand"

	"scans/internal/core"
)

// Pivot selects the pivot strategy.
type Pivot int

const (
	// PivotRandom picks a uniformly random element of each segment: the
	// strategy the expected-O(lg n) bound needs.
	PivotRandom Pivot = iota
	// PivotFirst picks each segment's first element, as the paper's
	// Figure 5 walk-through does.
	PivotFirst
)

// Options configures the sort. The zero value is PivotRandom with seed 0.
type Options struct {
	Pivot Pivot
	Seed  int64
}

// Round is one iteration's state, recorded by SortTrace to reproduce
// Figure 5.
type Round struct {
	// Pivots is the pivot distributed across each segment.
	Pivots []float64
	// Cmp is the per-element comparison against the pivot.
	Cmp []core.Cmp3
	// Keys is the key vector after the segmented three-way split.
	Keys []float64
	// Flags is the segment-flag vector after new flags are inserted.
	Flags []bool
}

// Sort sorts keys ascending on machine m and returns the sorted vector.
func Sort(m *core.Machine, keys []float64, opt Options) []float64 {
	sorted, _, _ := run(m, keys, opt, false)
	return sorted
}

// SortWithIndex sorts keys and also returns the permutation applied:
// perm[i] is the original index of the i-th smallest key, letting
// callers reorder payload vectors alongside the keys.
func SortWithIndex(m *core.Machine, keys []float64, opt Options) ([]float64, []int) {
	sorted, perm, _ := run(m, keys, opt, false)
	return sorted, perm
}

// SortTrace sorts keys and records every iteration, for the Figure 5
// reproduction.
func SortTrace(m *core.Machine, keys []float64, opt Options) ([]float64, []Round) {
	sorted, _, rounds := run(m, keys, opt, true)
	return sorted, rounds
}

// Rounds sorts keys and returns only the iteration count, the quantity
// the expected-O(lg n) analysis bounds.
func Rounds(m *core.Machine, keys []float64, opt Options) int {
	_, _, rounds := run(m, keys, opt, true)
	return len(rounds)
}

func run(m *core.Machine, keys []float64, opt Options, trace bool) ([]float64, []int, []Round) {
	n := len(keys)
	if n == 0 {
		return nil, nil, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	a := make([]float64, n)
	copy(a, keys)
	idx := make([]int, n)
	core.Par(m, n, func(i int) { idx[i] = i })
	idxOut := make([]int, n)
	segFlags := make([]bool, n)
	segFlags[0] = true

	rot := make([]int, n) // rotate-by-one permutation for neighbor reads
	core.Par(m, n, func(i int) { rot[i] = (i + 1) % n })

	prev := make([]float64, n)
	ok := make([]bool, n)
	dist := make([]bool, n)
	pivots := make([]float64, n)
	cmp := make([]core.Cmp3, n)
	cmpOut := make([]core.Cmp3, n)
	prevCmp := make([]core.Cmp3, n)
	splitIdx := make([]int, n)
	aOut := make([]float64, n)
	var rounds []Round

	for iter := 0; ; iter++ {
		if iter > 64*64 {
			panic("qsort: did not converge; segment bookkeeping bug")
		}
		// Step 1: exit if sorted. Each processor checks its predecessor.
		core.Permute(m, prev, a, rot)
		core.Par(m, n, func(i int) { ok[i] = i == 0 || prev[i] <= a[i] })
		if core.AndDistribute(m, dist, ok) {
			break
		}
		// Step 2: pick a pivot within each segment and distribute it.
		pickPivots(m, rng, a, segFlags, pivots, opt.Pivot)
		// Step 3: compare with the pivot and split three ways.
		core.Par(m, n, func(i int) {
			switch {
			case a[i] < pivots[i]:
				cmp[i] = core.Less
			case a[i] > pivots[i]:
				cmp[i] = core.Greater
			default:
				cmp[i] = core.Equal
			}
		})
		core.SegSplit3Index(m, splitIdx, cmp, segFlags)
		core.Permute(m, aOut, a, splitIdx)
		core.Permute(m, cmpOut, cmp, splitIdx)
		core.Permute(m, idxOut, idx, splitIdx)
		a, aOut = aOut, a
		idx, idxOut = idxOut, idx
		// Step 4: insert segment flags between the three groups. Each
		// element looks at its predecessor's group.
		core.Permute(m, prevCmp, cmpOut, rot)
		core.Par(m, n, func(i int) {
			if i > 0 && cmpOut[i] != prevCmp[i] {
				segFlags[i] = true
			}
		})
		if trace {
			rounds = append(rounds, Round{
				Pivots: append([]float64(nil), pivots...),
				Cmp:    append([]core.Cmp3(nil), cmp...),
				Keys:   append([]float64(nil), a...),
				Flags:  append([]bool(nil), segFlags...),
			})
		}
	}
	return a, idx, rounds
}

// pickPivots fills pivots with each segment's pivot value distributed
// across the segment, in O(1) steps.
func pickPivots(m *core.Machine, rng *rand.Rand, a []float64, segFlags []bool, pivots []float64, strategy Pivot) {
	n := len(a)
	if strategy == PivotFirst {
		core.SegCopy(m, pivots, a, segFlags)
		return
	}
	// Random: every processor draws a random number (one elementwise
	// step); the head's draw, modulo the segment length, selects the
	// pivot rank.
	draws := make([]int, n)
	core.Par(m, n, func(i int) { draws[i] = rng.Intn(1 << 30) })
	headDraw := make([]int, n)
	core.SegCopy(m, headDraw, draws, segFlags)
	ones := make([]int, n)
	core.Par(m, n, func(i int) { ones[i] = 1 })
	segLen := make([]int, n)
	core.SegPlusDistribute(m, segLen, ones, segFlags)
	rank := make([]int, n)
	core.SegRank(m, rank, segFlags)
	// Mask everything but the selected element to +Inf and distribute
	// the segment minimum: "picking out the element with a few scans".
	masked := make([]float64, n)
	core.Par(m, n, func(i int) {
		if rank[i] == headDraw[i]%segLen[i] {
			masked[i] = a[i]
		} else {
			masked[i] = math.Inf(1)
		}
	})
	core.SegFMinDistribute(m, pivots, masked, segFlags)
}
