package qsort

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func TestSortFig5Trace(t *testing.T) {
	// Figure 5's walk-through with first-element pivots.
	m := core.New()
	keys := []float64{6.4, 9.2, 3.4, 1.6, 8.7, 4.1, 9.2, 3.4}
	sorted, rounds := SortTrace(m, keys, Options{Pivot: PivotFirst})
	if want := []float64{1.6, 3.4, 3.4, 4.1, 6.4, 8.7, 9.2, 9.2}; !reflect.DeepEqual(sorted, want) {
		t.Fatalf("sorted = %v, want %v", sorted, want)
	}
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	r0 := rounds[0]
	for _, p := range r0.Pivots {
		if p != 6.4 {
			t.Fatalf("round 0 pivots = %v, want all 6.4", r0.Pivots)
		}
	}
	if want := []float64{3.4, 1.6, 4.1, 3.4, 6.4, 9.2, 8.7, 9.2}; !reflect.DeepEqual(r0.Keys, want) {
		t.Errorf("round 0 keys = %v, want %v", r0.Keys, want)
	}
	if want := []bool{true, false, false, false, true, true, false, false}; !reflect.DeepEqual(r0.Flags, want) {
		t.Errorf("round 0 flags = %v, want %v", r0.Flags, want)
	}
	r1 := rounds[1]
	if want := []float64{3.4, 3.4, 3.4, 3.4, 6.4, 9.2, 9.2, 9.2}; !reflect.DeepEqual(r1.Pivots, want) {
		t.Errorf("round 1 pivots = %v, want %v", r1.Pivots, want)
	}
	if want := []float64{1.6, 3.4, 3.4, 4.1, 6.4, 8.7, 9.2, 9.2}; !reflect.DeepEqual(r1.Keys, want) {
		t.Errorf("round 1 keys = %v, want %v", r1.Keys, want)
	}
	if want := []bool{true, true, false, true, true, true, true, false}; !reflect.DeepEqual(r1.Flags, want) {
		t.Errorf("round 1 flags = %v, want %v", r1.Flags, want)
	}
}

func TestSortRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 2, 3, 10, 100, 1000} {
		for _, p := range []Pivot{PivotRandom, PivotFirst} {
			m := core.New()
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = math.Floor(rng.Float64() * 50) // duplicates likely
			}
			got := Sort(m, keys, Options{Pivot: p, Seed: int64(n)})
			want := make([]float64, n)
			copy(want, keys)
			sort.Float64s(want)
			if n > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d pivot=%d: quicksort wrong", n, p)
			}
		}
	}
}

func TestSortAllEqual(t *testing.T) {
	m := core.New()
	keys := []float64{3, 3, 3, 3, 3}
	got := Sort(m, keys, Options{})
	if want := []float64{3, 3, 3, 3, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("all-equal sort = %v", got)
	}
}

func TestSortDescending(t *testing.T) {
	m := core.New()
	n := 64
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(n - i)
	}
	got := Sort(m, keys, Options{Seed: 1})
	if !sort.Float64sAreSorted(got) {
		t.Error("descending input not sorted")
	}
}

func TestSortAlreadySortedExitsImmediately(t *testing.T) {
	m := core.New()
	keys := []float64{1, 2, 3, 4, 5}
	if r := Rounds(m, keys, Options{}); r != 0 {
		t.Errorf("sorted input took %d rounds, want 0", r)
	}
}

func TestExpectedLogRounds(t *testing.T) {
	// Expected O(lg n) iterations with random pivots: for n = 4096
	// (lg n = 12) anything wildly above ~4 lg n indicates the recursion
	// is not halving.
	rng := rand.New(rand.NewSource(7))
	n := 4096
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	m := core.New()
	r := Rounds(m, keys, Options{Seed: 42})
	if r > 48 {
		t.Errorf("random input took %d rounds; expected O(lg n) ~ 12-40", r)
	}
	if r < 8 {
		t.Errorf("suspiciously few rounds (%d) for n=%d", r, n)
	}
}

func TestStepsPerRoundConstant(t *testing.T) {
	// The step charge per iteration must not depend on n.
	stepsPerRound := func(n int) float64 {
		rng := rand.New(rand.NewSource(9))
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64()
		}
		m := core.New()
		r := Rounds(m, keys, Options{Seed: 3})
		return float64(m.Steps()) / float64(r)
	}
	a, b := stepsPerRound(256), stepsPerRound(4096)
	if b > a*1.5 {
		t.Errorf("steps per round grew with n: %.1f -> %.1f", a, b)
	}
}

func TestSortPropertyQuick(t *testing.T) {
	prop := func(raw []float32, seed int64) bool {
		keys := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) {
				v = 0
			}
			keys[i] = float64(v)
		}
		m := core.New()
		got := Sort(m, keys, Options{Seed: seed})
		return len(got) == len(keys) && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSortWithIndexPermutation(t *testing.T) {
	m := core.New()
	rng := rand.New(rand.NewSource(20))
	n := 400
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Floor(rng.Float64() * 30)
	}
	sorted, perm := SortWithIndex(m, keys, Options{Seed: 4})
	seen := make([]bool, n)
	for i := range sorted {
		if keys[perm[i]] != sorted[i] {
			t.Fatalf("perm inconsistent at %d", i)
		}
		if seen[perm[i]] {
			t.Fatal("perm not a permutation")
		}
		seen[perm[i]] = true
	}
	if !sort.Float64sAreSorted(sorted) {
		t.Fatal("SortWithIndex output not sorted")
	}
	// Already-sorted input: identity permutation (zero rounds).
	sortedIn := []float64{1, 2, 3}
	_, p2 := SortWithIndex(m, sortedIn, Options{})
	if !reflect.DeepEqual(p2, []int{0, 1, 2}) {
		t.Errorf("identity perm = %v", p2)
	}
}

func TestUsageTable3(t *testing.T) {
	// Table 3: quicksort uses splitting, distributing sums, copying, and
	// segmented primitives.
	m := core.New()
	keys := []float64{5, 2, 8, 1, 9, 3}
	Sort(m, keys, Options{})
	c := m.Counters()
	for _, u := range []core.Usage{core.UseSplit, core.UseDistribute, core.UseCopy, core.UseSegmented} {
		if c.UsageCounts[u] == 0 {
			t.Errorf("usage %v not recorded", u)
		}
	}
}
