package treecontract

import (
	"math"
	"math/rand"
	"testing"

	"scans/internal/core"
)

// leafTree returns a single-leaf tree with the given value.
func leafTree(v float64) *Tree {
	return &Tree{
		Parent: []int{-1}, Left: []int{-1}, Right: []int{-1},
		Ops: []Op{OpAdd}, Value: []float64{v}, Root: 0,
	}
}

// buildRandomTree builds a random full binary expression tree with
// nLeaves leaves, biased by chaininess toward unbalanced shapes.
func buildRandomTree(rng *rand.Rand, nLeaves int, chainy bool) *Tree {
	total := 2*nLeaves - 1
	t := &Tree{
		Parent: make([]int, total), Left: make([]int, total),
		Right: make([]int, total), Ops: make([]Op, total),
		Value: make([]float64, total),
	}
	for i := range t.Parent {
		t.Parent[i], t.Left[i], t.Right[i] = -1, -1, -1
	}
	next := 0
	alloc := func() int { n := next; next++; return n }
	// Build top-down: grow(k) returns the root of a subtree with k
	// leaves.
	var grow func(k int) int
	grow = func(k int) int {
		v := alloc()
		if k == 1 {
			t.Value[v] = float64(rng.Intn(5)) - 2
			return v
		}
		var lk int
		if chainy {
			lk = 1 + rng.Intn(2)
			if lk >= k {
				lk = k - 1
			}
		} else {
			lk = 1 + rng.Intn(k-1)
		}
		if rng.Intn(4) == 0 {
			t.Ops[v] = OpMul
		} else {
			t.Ops[v] = OpAdd
		}
		l := grow(lk)
		r := grow(k - lk)
		t.Left[v], t.Right[v] = l, r
		t.Parent[l], t.Parent[r] = v, v
		return v
	}
	t.Root = grow(nLeaves)
	return t
}

func TestEvalLeaf(t *testing.T) {
	m := core.New()
	if got := Eval(m, leafTree(42)); got != 42 {
		t.Errorf("leaf eval = %g, want 42", got)
	}
}

func TestEvalSmall(t *testing.T) {
	// (2 + 3) * 4 = 20.
	tr := &Tree{
		Parent: []int{-1, 0, 0, 1, 1},
		Left:   []int{1, 3, -1, -1, -1},
		Right:  []int{2, 4, -1, -1, -1},
		Ops:    []Op{OpMul, OpAdd, OpAdd, OpAdd, OpAdd},
		Value:  []float64{0, 0, 4, 2, 3},
		Root:   0,
	}
	if got := EvalSerial(tr); got != 20 {
		t.Fatalf("serial = %g, want 20", got)
	}
	m := core.New()
	if got := Eval(m, tr); got != 20 {
		t.Errorf("parallel = %g, want 20", got)
	}
}

func TestEvalMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 30; trial++ {
		nLeaves := 1 + rng.Intn(200)
		tr := buildRandomTree(rng, nLeaves, trial%2 == 0)
		want := EvalSerial(tr)
		m := core.New()
		got := Eval(m, tr)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d (%d leaves): Eval = %g, want %g", trial, nLeaves, got, want)
		}
	}
}

func TestEvalDeepChain(t *testing.T) {
	// Left-spine caterpillar: (((v + v) + v) + v)...: the worst case
	// for naive recursion, routine for contraction.
	rng := rand.New(rand.NewSource(111))
	tr := buildRandomTree(rng, 2000, true)
	want := EvalSerial(tr)
	m := core.New()
	got := Eval(m, tr)
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("deep chain: Eval = %g, want %g", got, want)
	}
}

func TestEvalRoundsLogarithmic(t *testing.T) {
	// O(lg n) rounds -> steps grow additively per doubling, not
	// multiplicatively.
	rng := rand.New(rand.NewSource(112))
	steps := func(nLeaves int) int64 {
		tr := buildRandomTree(rng, nLeaves, false)
		m := core.New()
		Eval(m, tr)
		return m.Steps()
	}
	s1, s2 := steps(1<<9), steps(1<<11)
	if ratio := float64(s2) / float64(s1); ratio > 2 {
		t.Errorf("contraction steps grew %.2fx for 4x leaves; want lg-like", ratio)
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	for name, tr := range map[string]*Tree{
		"one-child": {
			Parent: []int{-1, 0}, Left: []int{1, -1}, Right: []int{-1, -1},
			Ops: make([]Op, 2), Value: make([]float64, 2), Root: 0,
		},
		"bad-root": {
			Parent: []int{0}, Left: []int{-1}, Right: []int{-1},
			Ops: make([]Op, 1), Value: make([]float64, 1), Root: 0,
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			tr.Validate()
		}()
	}
}

// TestTable5WorkShape: contraction processor-step product grows
// ~linearly in n when p = n/lg n (Table 5's second row for tree
// contraction).
func TestTable5WorkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	product := func(nLeaves, lgn int) float64 {
		tr := buildRandomTree(rng, nLeaves, false)
		n := 2*nLeaves - 1
		m := core.New(core.WithProcessors(n / lgn))
		Eval(m, tr)
		return float64(m.Steps()) * float64(n/lgn)
	}
	r := product(1<<13, 14) / product(1<<9, 10)
	// 16x the leaves: linear work grows ~16x (some slack for the lg n
	// rounds term).
	if r > 24 {
		t.Errorf("contraction processor-steps grew %.1fx for 16x input; want ~linear", r)
	}
}
