// Package treecontract implements parallel tree contraction — the third
// row of the paper's Table 5 — specialized to evaluating arithmetic
// expression trees (full binary trees whose internal nodes are + or ×).
//
// The algorithm is the classic rake-based contraction: leaves are
// numbered left to right; each round rakes all odd-numbered leaves (the
// left children, then the right children — two sub-steps that make the
// simultaneous rakes provably non-interfering), composing the removed
// subexpression into a pending linear function a·x + b on the raked
// leaf's sibling. Odd leaves vanish each round, so a tree of n nodes
// contracts in O(lg n) rounds, each a constant number of primitives over
// the surviving nodes; with packed (load-balanced) vectors the work is
// O(n), giving Table 5's O(n/p + lg n) with p = n/lg n processors.
package treecontract

import (
	"fmt"

	"scans/internal/core"
)

// Op is an internal node's operator.
type Op int8

const (
	// OpAdd is addition.
	OpAdd Op = iota
	// OpMul is multiplication.
	OpMul
)

// Tree is a full binary expression tree: every node has zero or two
// children. Leaves carry Value; internal nodes carry Op. Children and
// parents are node indices, -1 for none.
type Tree struct {
	Parent []int
	Left   []int
	Right  []int
	Ops    []Op
	Value  []float64
	Root   int
}

// Validate panics with a description if t is not a rooted full binary
// tree with consistent pointers.
func (t *Tree) Validate() {
	n := len(t.Parent)
	if len(t.Left) != n || len(t.Right) != n || len(t.Ops) != n || len(t.Value) != n {
		panic("treecontract: tree vectors have differing lengths")
	}
	if t.Root < 0 || t.Root >= n || t.Parent[t.Root] != -1 {
		panic(fmt.Sprintf("treecontract: bad root %d", t.Root))
	}
	for v := 0; v < n; v++ {
		l, r := t.Left[v], t.Right[v]
		if (l == -1) != (r == -1) {
			panic(fmt.Sprintf("treecontract: node %d has exactly one child; tree must be full", v))
		}
		if l != -1 {
			if t.Parent[l] != v || t.Parent[r] != v {
				panic(fmt.Sprintf("treecontract: child links of %d are inconsistent", v))
			}
		}
		if v != t.Root && t.Parent[v] == -1 {
			panic(fmt.Sprintf("treecontract: node %d is disconnected", v))
		}
	}
}

// EvalSerial evaluates the tree by a straightforward iterative
// post-order walk: the reference implementation.
func EvalSerial(t *Tree) float64 {
	type frame struct {
		node  int
		stage int8
	}
	val := make([]float64, len(t.Parent))
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.node
		if t.Left[v] == -1 {
			val[v] = t.Value[v]
			stack = stack[:len(stack)-1]
			continue
		}
		switch f.stage {
		case 0:
			f.stage = 1
			stack = append(stack, frame{t.Left[v], 0})
		case 1:
			f.stage = 2
			stack = append(stack, frame{t.Right[v], 0})
		default:
			if t.Ops[v] == OpAdd {
				val[v] = val[t.Left[v]] + val[t.Right[v]]
			} else {
				val[v] = val[t.Left[v]] * val[t.Right[v]]
			}
			stack = stack[:len(stack)-1]
		}
	}
	return val[t.Root]
}

// Eval evaluates the expression tree by parallel contraction on machine
// m and returns the root value.
func Eval(m *core.Machine, t *Tree) float64 {
	t.Validate()
	n := len(t.Parent)
	if n == 1 {
		return t.Value[t.Root]
	}
	s := newState(m, t)
	for round := 0; s.na > 1; round++ {
		if round > 4*lgCeil(n)+16 {
			panic("treecontract: contraction did not converge")
		}
		s.subStep(m, sideLeft)
		s.subStep(m, sideRight)
		s.packAndRenumber(m)
	}
	// One node left: a leaf with a pending linear function.
	return s.a[0]*s.value[0] + s.b[0]
}

type side int8

const (
	sideLeft side = iota
	sideRight
	sideNone
)

// state holds the packed per-node vectors of the live contraction.
type state struct {
	na        int
	ids       []int // original node id per position
	parent    []int // parent id, -1 for root
	childSide []side
	left      []int // child ids, -1 for leaves
	right     []int
	op        []Op
	value     []float64
	a, b      []float64 // pending linear function
	leafRank  []int     // left-to-right leaf number, -1 for internal
	posOf     []int     // original id -> position
	removed   []bool
}

func newState(m *core.Machine, t *Tree) *state {
	n := len(t.Parent)
	s := &state{
		na: n, ids: make([]int, n), parent: make([]int, n),
		childSide: make([]side, n), left: make([]int, n), right: make([]int, n),
		op: make([]Op, n), value: make([]float64, n),
		a: make([]float64, n), b: make([]float64, n),
		leafRank: make([]int, n), posOf: make([]int, n),
		removed: make([]bool, n),
	}
	core.Par(m, n, func(i int) {
		s.ids[i] = i
		s.posOf[i] = i
		s.parent[i] = t.Parent[i]
		s.left[i], s.right[i] = t.Left[i], t.Right[i]
		s.op[i] = t.Ops[i]
		s.value[i] = t.Value[i]
		s.a[i] = 1
		s.leafRank[i] = -1
		switch p := t.Parent[i]; {
		case p == -1:
			s.childSide[i] = sideNone
		case t.Left[p] == i:
			s.childSide[i] = sideLeft
		default:
			s.childSide[i] = sideRight
		}
	})
	// Initial left-to-right leaf numbering by an in-order walk. (A
	// one-time setup; the paper's tree algorithms assume trees arrive in
	// a canonical form [7]. The contraction itself maintains the
	// numbering with one elementwise halving per round.)
	rank := 0
	walkIterative(t, &rank, s.leafRank)
	return s
}

// walkIterative numbers the leaves in order without recursion (trees can
// be deep chains).
func walkIterative(t *Tree, rank *int, leafRank []int) {
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Left[v] == -1 {
			leafRank[v] = *rank
			*rank++
			continue
		}
		// Push right first so left pops first.
		stack = append(stack, t.Right[v], t.Left[v])
	}
}

// subStep rakes every odd-numbered leaf that hangs on the given side.
func (s *state) subStep(m *core.Machine, sd side) {
	na := s.na
	rake := make([]bool, na)
	core.Par(m, na, func(i int) {
		rake[i] = !s.removed[i] && s.left[i] == -1 && s.leafRank[i] >= 0 &&
			s.leafRank[i]%2 == 1 && s.childSide[i] == sd && s.parent[i] != -1
	})
	// Each raked leaf computes its parent's and sibling's positions and
	// the composed linear function for the sibling.
	sibPos := make([]int, na)
	parPos := make([]int, na)
	gpPos := make([]int, na)
	newA := make([]float64, na)
	newB := make([]float64, na)
	newParent := make([]int, na)
	newSide := make([]side, na)
	sibID := make([]int, na)
	hasGP := make([]bool, na)
	core.Par(m, na, func(i int) {
		if !rake[i] {
			return
		}
		p := s.posOf[s.parent[i]]
		parPos[i] = p
		var sid int
		if sd == sideLeft {
			sid = s.right[p]
		} else {
			sid = s.left[p]
		}
		sibID[i] = sid
		sp := s.posOf[sid]
		sibPos[i] = sp
		c := s.a[i]*s.value[i] + s.b[i]
		ap, bp := s.a[p], s.b[p]
		as, bs := s.a[sp], s.b[sp]
		if s.op[p] == OpAdd {
			// x -> ap*(c + as*x + bs) + bp
			newA[i] = ap * as
			newB[i] = ap*(c+bs) + bp
		} else {
			// x -> ap*(c * (as*x + bs)) + bp
			newA[i] = ap * c * as
			newB[i] = ap*c*bs + bp
		}
		newParent[i] = s.parent[p]
		newSide[i] = s.childSide[p]
		if s.parent[p] != -1 {
			hasGP[i] = true
			gpPos[i] = s.posOf[s.parent[p]]
		}
	})
	// Scatter the sibling updates (distinct siblings per rake).
	core.PermuteIf(m, s.a, newA, sibPos, rake)
	core.PermuteIf(m, s.b, newB, sibPos, rake)
	core.PermuteIf(m, s.parent, newParent, sibPos, rake)
	core.PermuteIf(m, s.childSide, newSide, sibPos, rake)
	// Repair the grandparent's child pointer on the parent's old side.
	gpLeft := make([]bool, na)
	gpRight := make([]bool, na)
	core.Par(m, na, func(i int) {
		if rake[i] && hasGP[i] {
			if newSide[i] == sideLeft {
				gpLeft[i] = true
			} else {
				gpRight[i] = true
			}
		}
	})
	core.PermuteIf(m, s.left, sibID, gpPos, gpLeft)
	core.PermuteIf(m, s.right, sibID, gpPos, gpRight)
	// Remove the raked leaf and its parent.
	trues := make([]bool, na)
	core.Par(m, na, func(i int) { trues[i] = true })
	core.PermuteIf(m, s.removed, trues, parPos, rake)
	core.Par(m, na, func(i int) {
		if rake[i] {
			s.removed[i] = true
		}
	})
}

// packAndRenumber drops removed nodes, rebuilds the id->position map,
// and halves the leaf numbers (all odd leaves are gone).
func (s *state) packAndRenumber(m *core.Machine) {
	na := s.na
	keep := make([]bool, na)
	core.Par(m, na, func(i int) { keep[i] = !s.removed[i] })
	idx := make([]int, na)
	kept := core.Enumerate(m, idx, keep)
	packInts := func(v []int) []int {
		out := make([]int, kept)
		core.PermuteIf(m, out, v, idx, keep)
		return out
	}
	packF := func(v []float64) []float64 {
		out := make([]float64, kept)
		core.PermuteIf(m, out, v, idx, keep)
		return out
	}
	s.ids = packInts(s.ids)
	s.parent = packInts(s.parent)
	s.left = packInts(s.left)
	s.right = packInts(s.right)
	s.leafRank = packInts(s.leafRank)
	s.value = packF(s.value)
	s.a = packF(s.a)
	s.b = packF(s.b)
	newSide := make([]side, kept)
	core.PermuteIf(m, newSide, s.childSide, idx, keep)
	s.childSide = newSide
	newOp := make([]Op, kept)
	core.PermuteIf(m, newOp, s.op, idx, keep)
	s.op = newOp
	s.removed = make([]bool, kept)
	s.na = kept
	core.PermuteIf(m, s.posOf, iotaVec(m, kept), s.ids, trueVec(m, kept))
	core.Par(m, kept, func(i int) {
		if s.leafRank[i] >= 0 {
			s.leafRank[i] /= 2
		}
	})
}

func iotaVec(m *core.Machine, n int) []int {
	v := make([]int, n)
	core.Par(m, n, func(i int) { v[i] = i })
	return v
}

func trueVec(m *core.Machine, n int) []bool {
	v := make([]bool, n)
	core.Par(m, n, func(i int) { v[i] = true })
	return v
}

func lgCeil(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
