package radix

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func TestSortFloatsBasic(t *testing.T) {
	m := core.New()
	keys := []float64{3.5, -1.25, 0, 2, -100, 7e30, -7e-30}
	got := SortFloats(m, keys)
	want := append([]float64(nil), keys...)
	sort.Float64s(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortFloats = %v, want %v", got, want)
	}
}

func TestSortFloatsTrickyValues(t *testing.T) {
	m := core.New()
	keys := []float64{
		math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		1, -1,
	}
	got := SortFloats(m, keys)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
	if !math.IsInf(got[0], -1) || !math.IsInf(got[len(got)-1], 1) {
		t.Errorf("infinities misplaced: %v", got)
	}
	// -0 must sort before +0 (bit order), both compare equal.
	if math.Signbit(got[4]) != true || math.Signbit(got[5]) != false {
		t.Errorf("signed zeros misplaced: %v", got[3:7])
	}
}

func TestSortFloatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 100, 500} {
		m := core.New()
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		got := SortFloats(m, keys)
		want := make([]float64, n)
		copy(want, keys)
		sort.Float64s(want)
		if n > 0 && !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: SortFloats wrong", n)
		}
	}
}

func TestSortFloatsPropertyQuick(t *testing.T) {
	prop := func(raw []float64) bool {
		keys := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				keys = append(keys, v)
			}
		}
		m := core.New()
		got := SortFloats(m, keys)
		if len(got) != len(keys) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSortFloatsWithIndex(t *testing.T) {
	m := core.New()
	rng := rand.New(rand.NewSource(6))
	n := 300
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Floor(rng.Float64() * 20) // duplicates for stability
	}
	sorted, perm := SortFloatsWithIndex(m, keys)
	seen := make([]bool, n)
	for i := range sorted {
		if keys[perm[i]] != sorted[i] {
			t.Fatalf("perm inconsistent at %d", i)
		}
		if i > 0 && sorted[i] == sorted[i-1] && perm[i] < perm[i-1] {
			t.Fatalf("not stable at %d", i)
		}
		if seen[perm[i]] {
			t.Fatal("perm not a permutation")
		}
		seen[perm[i]] = true
	}
}

func TestSortFloatsRejectsNaN(t *testing.T) {
	m := core.New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NaN")
		}
	}()
	SortFloats(m, []float64{1, math.NaN()})
}

func TestSortFloatsConstantStepsInN(t *testing.T) {
	// 64 fixed passes: the step count is independent of n.
	m1 := core.New()
	SortFloats(m1, make([]float64, 64))
	m2 := core.New()
	SortFloats(m2, make([]float64, 4096))
	if m1.Steps() != m2.Steps() {
		t.Errorf("steps grew with n: %d vs %d", m1.Steps(), m2.Steps())
	}
}
