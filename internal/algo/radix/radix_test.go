package radix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func TestSortFig2(t *testing.T) {
	// Figure 2: sorting [5 7 3 1 4 2 7 2] on 3 bits, pass by pass.
	m := core.New()
	keys := []int{5, 7, 3, 1, 4, 2, 7, 2}
	sorted, passes := SortTrace(m, keys, 3)
	if want := []int{1, 2, 2, 3, 4, 5, 7, 7}; !reflect.DeepEqual(sorted, want) {
		t.Fatalf("sorted = %v, want %v", sorted, want)
	}
	wantPasses := [][]int{
		{4, 2, 2, 5, 7, 3, 1, 7},
		{4, 5, 1, 2, 2, 7, 3, 7},
		{1, 2, 2, 3, 4, 5, 7, 7},
	}
	wantFlags := [][]bool{
		{true, true, true, true, false, false, true, false},
		{false, true, true, false, true, true, false, true},
		{true, true, false, false, false, true, false, true},
	}
	for i, p := range passes {
		if !reflect.DeepEqual(p.After, wantPasses[i]) {
			t.Errorf("pass %d after = %v, want %v", i, p.After, wantPasses[i])
		}
		if !reflect.DeepEqual(p.Flags, wantFlags[i]) {
			t.Errorf("pass %d flags = %v, want %v", i, p.Flags, wantFlags[i])
		}
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 100, 1000} {
		m := core.New()
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(1 << 16)
		}
		got := Sort(m, keys, 16)
		want := make([]int, len(keys))
		copy(want, keys)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: radix sort wrong", n)
		}
	}
}

func TestSortWithIndexIsStablePermutation(t *testing.T) {
	m := core.New()
	rng := rand.New(rand.NewSource(3))
	n := 500
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(8) // many duplicates to exercise stability
	}
	sorted, perm := SortWithIndex(m, keys, 3)
	for i := range sorted {
		if keys[perm[i]] != sorted[i] {
			t.Fatalf("perm[%d] inconsistent", i)
		}
		if i > 0 && sorted[i] == sorted[i-1] && perm[i] < perm[i-1] {
			t.Fatalf("not stable at %d", i)
		}
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("perm is not a permutation")
		}
		seen[p] = true
	}
}

func TestSortInts(t *testing.T) {
	m := core.New()
	keys := []int{5, -3, 0, 99, -120, 7, -3}
	got := SortInts(m, keys)
	want := make([]int, len(keys))
	copy(want, keys)
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortInts = %v, want %v", got, want)
	}
}

func TestBitsFor(t *testing.T) {
	for _, c := range []struct {
		keys []int
		want int
	}{{nil, 1}, {[]int{0}, 1}, {[]int{1}, 1}, {[]int{7}, 3}, {[]int{8}, 4}, {[]int{1000}, 10}} {
		if got := BitsFor(c.keys); got != c.want {
			t.Errorf("BitsFor(%v) = %d, want %d", c.keys, got, c.want)
		}
	}
}

func TestStepsLinearInBits(t *testing.T) {
	// O(d) steps: steps for 2d bits = 2x steps for d bits, independent
	// of n.
	keys := make([]int, 4096)
	m8 := core.New()
	Sort(m8, keys, 8)
	m16 := core.New()
	Sort(m16, keys, 16)
	// Subtract the shared setup pass (the iota elementwise op).
	if got, want := m16.Steps()-1, 2*(m8.Steps()-1); got != want {
		t.Errorf("steps(16 bits) - setup = %d, want 2*steps(8 bits) = %d", got, want)
	}
	mBig := core.New()
	Sort(mBig, make([]int, 8192), 8)
	if mBig.Steps() != m8.Steps() {
		t.Errorf("steps grew with n: %d vs %d", mBig.Steps(), m8.Steps())
	}
}

func TestSortPropertyQuick(t *testing.T) {
	prop := func(raw []uint16) bool {
		m := core.New()
		keys := make([]int, len(raw))
		for i, v := range raw {
			keys[i] = int(v)
		}
		got := Sort(m, keys, 16)
		want := make([]int, len(keys))
		copy(want, keys)
		sort.Ints(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSortMultiBit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, r := range []int{1, 2, 4, 5} {
		m := core.New()
		keys := make([]int, 300)
		for i := range keys {
			keys[i] = rng.Intn(1 << 12)
		}
		got := SortMultiBit(m, keys, 12, r)
		want := make([]int, len(keys))
		copy(want, keys)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("r=%d: multi-bit radix sort wrong", r)
		}
	}
}

func TestSortMultiBitRejectsBadR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for r=0")
		}
	}()
	SortMultiBit(core.New(), []int{1}, 4, 0)
}

func TestUsageRecorded(t *testing.T) {
	// Table 3: the split radix sort uses splitting (and via split,
	// enumerating).
	m := core.New()
	Sort(m, []int{3, 1, 2}, 2)
	c := m.Counters()
	if c.UsageCounts[core.UseSplit] == 0 {
		t.Error("split usage not recorded")
	}
	if c.UsageCounts[core.UseEnumerate] == 0 {
		t.Error("enumerate usage not recorded")
	}
}
