package radix

import (
	"fmt"

	"scans/internal/core"
)

// SortMultiBit is the multi-bit-per-pass extension of the split radix
// sort: each pass sorts r bits at once by generalizing split to 2^r
// buckets (one enumerate per bucket, still O(1) scans per bucket). The
// pass count drops from nbits to ⌈nbits/r⌉ at the price of 2^r scans per
// pass, the classic radix trade-off; DESIGN.md lists it as an ablation.
// keys must fit in nbits unsigned bits; r must be in [1, 16].
func SortMultiBit(m *core.Machine, keys []int, nbits, r int) []int {
	if r < 1 || r > 16 {
		panic(fmt.Sprintf("radix: SortMultiBit: r = %d out of range [1,16]", r))
	}
	n := len(keys)
	a := make([]int, n)
	copy(a, keys)
	next := make([]int, n)
	digit := make([]int, n)
	index := make([]int, n)
	rank := make([]int, n)
	isBucket := make([]bool, n)
	buckets := 1 << uint(r)
	for lo := 0; lo < nbits; lo += r {
		shift := uint(lo)
		mask := buckets - 1
		core.Par(m, n, func(i int) { digit[i] = a[i] >> shift & mask })
		// For each bucket in order: its elements go after all smaller
		// buckets' elements, in stable order.
		base := 0
		for b := 0; b < buckets; b++ {
			bb := b
			core.Par(m, n, func(i int) { isBucket[i] = digit[i] == bb })
			count := core.Enumerate(m, rank, isBucket)
			thisBase := base
			core.Par(m, n, func(i int) {
				if isBucket[i] {
					index[i] = thisBase + rank[i]
				}
			})
			base += count
		}
		core.Permute(m, next, a, index)
		a, next = next, a
	}
	return a
}
