// Package radix implements the paper's split radix sort (§2.2.1,
// Figure 2): loop over the key bits from least significant to most,
// each pass packing the 0-bit keys to the bottom and the 1-bit keys to
// the top with the split operation. Each pass costs O(1) program steps,
// so d-bit keys sort in O(d) steps — O(lg n) under the standard
// assumption that keys are O(lg n) bits. It is the sort the Connection
// Machine's instruction set shipped with.
package radix

import (
	"math/bits"

	"scans/internal/core"
)

// BitsFor returns the number of bits needed to represent every key;
// keys must be non-negative. A nil or all-zero input needs 1 bit.
func BitsFor(keys []int) int {
	maxV := 0
	for _, k := range keys {
		if k > maxV {
			maxV = k
		}
	}
	b := bits.Len(uint(maxV))
	if b == 0 {
		b = 1
	}
	return b
}

// Sort sorts keys (which must fit in nbits unsigned bits) on machine m
// and returns the sorted vector. O(nbits) program steps.
func Sort(m *core.Machine, keys []int, nbits int) []int {
	sorted, _ := SortWithIndex(m, keys, nbits)
	return sorted
}

// SortWithIndex sorts keys and also returns the permutation applied:
// perm[i] is the original index of the i-th smallest key. The
// permutation is what lets callers sort payload vectors alongside the
// keys (the graph-building path of §2.3.2 needs it). The sort is stable.
func SortWithIndex(m *core.Machine, keys []int, nbits int) (sorted, perm []int) {
	n := len(keys)
	a := make([]int, n)
	copy(a, keys)
	idx := make([]int, n)
	core.Par(m, n, func(i int) { idx[i] = i })
	flags := make([]bool, n)
	splitIdx := make([]int, n)
	nextA := make([]int, n)
	nextIdx := make([]int, n)
	for b := 0; b < nbits; b++ {
		bit := uint(b)
		core.Par(m, n, func(i int) { flags[i] = a[i]>>bit&1 == 1 })
		core.SplitIndex(m, splitIdx, flags)
		core.Permute(m, nextA, a, splitIdx)
		core.Permute(m, nextIdx, idx, splitIdx)
		a, nextA = nextA, a
		idx, nextIdx = nextIdx, idx
	}
	return a, idx
}

// SortInts sorts arbitrary ints (negatives included) by shifting the
// range to be non-negative, sorting with the bit count of the shifted
// range, and shifting back.
func SortInts(m *core.Machine, keys []int) []int {
	n := len(keys)
	if n == 0 {
		return nil
	}
	minv := make([]int, n)
	lo := core.MinDistribute(m, minv, keys)
	shifted := make([]int, n)
	core.Par(m, n, func(i int) { shifted[i] = keys[i] - lo })
	sorted := Sort(m, shifted, BitsFor(shifted))
	core.Par(m, n, func(i int) { sorted[i] += lo })
	return sorted
}

// Trace records one pass of the sort for the Figure 2 reproduction.
type Trace struct {
	Bit   int    // which bit this pass split on
	Flags []bool // A<bit>: the extracted bit of each key
	After []int  // the vector after the split
}

// SortTrace runs the sort and records the per-pass state, reproducing
// Figure 2.
func SortTrace(m *core.Machine, keys []int, nbits int) (sorted []int, passes []Trace) {
	n := len(keys)
	a := make([]int, n)
	copy(a, keys)
	for b := 0; b < nbits; b++ {
		bit := uint(b)
		flags := make([]bool, n)
		core.Par(m, n, func(i int) { flags[i] = a[i]>>bit&1 == 1 })
		next := make([]int, n)
		core.Split(m, next, a, flags)
		passes = append(passes, Trace{Bit: b, Flags: flags, After: next})
		a = next
	}
	return a, passes
}
