package radix

import (
	"fmt"

	"scans/internal/core"
	"scans/internal/scan"
)

// SortFloats sorts float64 keys with the split radix sort via the §3.4
// order-preserving bit mapping ("flipping the exponent and significand
// if the sign bit is set"): each key becomes a 64-bit ordered word,
// sorted in two stable 32-bit passes. O(1) steps per key bit, 64 bits
// total, independent of n — the practical point of "a radix sort
// suffices for almost all sorting of fixed-length keys". NaNs panic.
func SortFloats(m *core.Machine, keys []float64) []float64 {
	n := len(keys)
	if n == 0 {
		return nil
	}
	// Map to ordered uint64 words (the int64 key with the sign bit
	// flipped sorts correctly as unsigned).
	words := make([]uint64, n)
	core.Par(m, n, func(i int) {
		words[i] = uint64(scan.FloatOrderKey(keys[i])) ^ 1<<63
	})
	lo := make([]int, n)
	core.Par(m, n, func(i int) { lo[i] = int(words[i] & 0xffffffff) })
	_, perm1 := SortWithIndex(m, lo, 32)
	sortedWords := make([]uint64, n)
	core.Gather(m, sortedWords, words, perm1)
	hi := make([]int, n)
	core.Par(m, n, func(i int) { hi[i] = int(sortedWords[i] >> 32) })
	_, perm2 := SortWithIndex(m, hi, 32)
	out := make([]float64, n)
	final := make([]uint64, n)
	core.Gather(m, final, sortedWords, perm2)
	core.Par(m, n, func(i int) {
		out[i] = scan.FloatFromOrderKey(int64(final[i] ^ 1<<63))
	})
	return out
}

// SortFloatsWithIndex additionally returns the permutation applied:
// perm[i] is the original index of the i-th smallest key. Stable.
func SortFloatsWithIndex(m *core.Machine, keys []float64) ([]float64, []int) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	words := make([]uint64, n)
	core.Par(m, n, func(i int) {
		words[i] = uint64(scan.FloatOrderKey(keys[i])) ^ 1<<63
	})
	lo := make([]int, n)
	core.Par(m, n, func(i int) { lo[i] = int(words[i] & 0xffffffff) })
	_, perm1 := SortWithIndex(m, lo, 32)
	sortedWords := make([]uint64, n)
	core.Gather(m, sortedWords, words, perm1)
	hi := make([]int, n)
	core.Par(m, n, func(i int) { hi[i] = int(sortedWords[i] >> 32) })
	_, perm2 := SortWithIndex(m, hi, 32)
	out := make([]float64, n)
	perm := make([]int, n)
	final := make([]uint64, n)
	core.Gather(m, final, sortedWords, perm2)
	core.Gather(m, perm, perm1, perm2)
	core.Par(m, n, func(i int) {
		out[i] = scan.FloatFromOrderKey(int64(final[i] ^ 1<<63))
	})
	return out, perm
}

func init() {
	// The two-pass 32-bit construction assumes 64-bit ints.
	if fmt.Sprintf("%d", int(^uint(0)>>1)) != fmt.Sprintf("%d", int64(^uint64(0)>>1)) {
		panic("radix: SortFloats requires 64-bit int")
	}
}
