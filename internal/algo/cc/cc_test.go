package cc

import (
	"math/rand"
	"testing"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

func TestLabelsSmall(t *testing.T) {
	m := core.New()
	// Components {0,1,2}, {3,4}, {5}.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}
	got := Labels(m, 6, edges, 1)
	want := Serial(6, edges)
	if !SameComponents(got, want) {
		t.Errorf("labels %v do not partition like %v", got, want)
	}
	if got[5] != 5 {
		t.Errorf("isolated vertex labeled %d, want 5", got[5])
	}
}

func TestLabelsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		var edges []graph.Edge
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		m := core.New()
		got := Labels(m, n, edges, int64(trial))
		if !SameComponents(got, Serial(n, edges)) {
			t.Fatalf("trial %d: wrong components", trial)
		}
	}
}

func TestLabelsPathGraph(t *testing.T) {
	// A long path is the adversarial case for contraction depth.
	n := 512
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	m := core.New()
	got := Labels(m, n, edges, 9)
	for v := 1; v < n; v++ {
		if got[v] != got[0] {
			t.Fatalf("path vertex %d in different component", v)
		}
	}
}

func TestLabelsEmpty(t *testing.T) {
	m := core.New()
	got := Labels(m, 4, nil, 0)
	for v, l := range got {
		if l != v {
			t.Errorf("edgeless vertex %d labeled %d", v, l)
		}
	}
}

func TestSameComponents(t *testing.T) {
	if !SameComponents([]int{1, 1, 3}, []int{7, 7, 9}) {
		t.Error("isomorphic labelings rejected")
	}
	if SameComponents([]int{1, 1, 3}, []int{7, 8, 9}) {
		t.Error("different partitions accepted")
	}
	if SameComponents([]int{1, 2, 2}, []int{7, 7, 7}) {
		t.Error("coarser partition accepted")
	}
	if SameComponents([]int{1}, []int{1, 2}) {
		t.Error("length mismatch accepted")
	}
}
