// Package cc computes connected components by random-mate contraction on
// the segmented graph representation: the same star-merge engine as the
// minimum-spanning-tree algorithm with the edge choice "any edge to a
// parent". Expected O(lg n) rounds of O(1) program steps (the paper's
// Table 1 lists Connected Components at O(lg n) in the scan model).
package cc

import (
	"fmt"
	"math/rand"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// Labels computes a component label for every vertex: two vertices get
// equal labels iff they are connected. Labels are vertex ids (each
// component is named after one of its members).
func Labels(m *core.Machine, numVertices int, edges []graph.Edge, seed int64) []int {
	g := graph.Build(m, numVertices, edges)
	rng := rand.New(rand.NewSource(seed))
	parentOf := make([]int, numVertices)
	for i := range parentOf {
		parentOf[i] = i
	}
	maxRounds := 64 * (lg(numVertices) + 2)
	for round := 0; g.Slots() > 0; round++ {
		if round >= maxRounds {
			panic(fmt.Sprintf("cc: no convergence after %d rounds", round))
		}
		nv := g.Vertices()
		coins := make([]bool, nv)
		core.Par(m, nv, func(i int) { coins[i] = rng.Intn(2) == 0 })
		parentSlot := graph.DistributeVertexFlag(m, g, coins)
		// Prefer any edge whose other end is a parent, so every child
		// with a parent neighbor merges this round.
		n := g.Slots()
		otherParent := make([]bool, n)
		core.Permute(m, otherParent, parentSlot, g.Cross)
		key := make([]int, n)
		core.Par(m, n, func(i int) {
			if !otherParent[i] {
				key[i] = 1
			}
		})
		star := graph.ChooseStarEdges(m, g, parentSlot, key)
		any := make([]bool, n)
		if !core.OrDistribute(m, any, star) {
			continue
		}
		var rec graph.MergeRecord
		g, rec = graph.StarMerge(m, g, parentSlot, star)
		for i, c := range rec.ChildRep {
			parentOf[c] = rec.ParentRep[i]
		}
	}
	// The merge records form a forest over original vertex ids; resolve
	// each vertex to its root.
	labels := make([]int, numVertices)
	for v := range labels {
		r := v
		for parentOf[r] != r {
			r = parentOf[r]
		}
		// Path-compress for the next lookups.
		for x := v; x != r; {
			x, parentOf[x] = parentOf[x], r
		}
		labels[v] = r
	}
	return labels
}

func lg(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// Serial is the union-find reference used to verify Labels.
func Serial(numVertices int, edges []graph.Edge) []int {
	parent := make([]int, numVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	labels := make([]int, numVertices)
	for v := range labels {
		labels[v] = find(v)
	}
	return labels
}

// SameComponents reports whether two labelings induce the same partition.
func SameComponents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fw := map[int]int{}
	bw := map[int]int{}
	for i := range a {
		if x, ok := fw[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bw[b[i]]; ok && y != a[i] {
			return false
		}
		fw[a[i]] = b[i]
		bw[b[i]] = a[i]
	}
	return true
}
