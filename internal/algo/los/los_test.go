package los

import (
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/core"
)

// refVisible is the obvious O(n²) reference.
func refVisible(alt []float64) []bool {
	n := len(alt)
	vis := make([]bool, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			vis[0] = true
			continue
		}
		s := (alt[i] - alt[0]) / float64(i)
		vis[i] = true
		for j := 1; j < i; j++ {
			if (alt[j]-alt[0])/float64(j) >= s {
				vis[i] = false
				break
			}
		}
	}
	return vis
}

func TestVisibleBasic(t *testing.T) {
	m := core.New()
	// Observer at height 10; a hill at distance 2 hides the valley
	// behind it until the terrain rises above the sight line.
	// The hill's sight line has slope (20-10)/2 = 5, so the peak at
	// distance 5 needs altitude above 10 + 5*5 = 35 to clear it.
	alt := []float64{10, 5, 20, 5, 5, 40}
	got := Visible(m, alt)
	want := []bool{true, true, true, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Visible = %v, want %v", got, want)
	}
}

func TestVisibleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		alt := make([]float64, n)
		for i := range alt {
			alt[i] = rng.Float64() * 100
		}
		m := core.New()
		got := Visible(m, alt)
		if want := refVisible(alt); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestVisibleEdges(t *testing.T) {
	m := core.New()
	if got := Visible(m, nil); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := Visible(m, []float64{7}); !reflect.DeepEqual(got, []bool{true}) {
		t.Errorf("single = %v", got)
	}
	// Flat terrain: only the first point ahead is visible.
	got := Visible(m, []float64{0, 0, 0, 0})
	if want := []bool{true, true, false, false}; !reflect.DeepEqual(got, want) {
		t.Errorf("flat = %v, want %v", got, want)
	}
}

func TestVisibleConstantSteps(t *testing.T) {
	// Table 1: Line of Sight is O(1) in the scan model.
	m1 := core.New()
	Visible(m1, make([]float64, 64))
	m2 := core.New()
	Visible(m2, make([]float64, 65536))
	if m1.Steps() != m2.Steps() {
		t.Errorf("steps grew with n: %d vs %d", m1.Steps(), m2.Steps())
	}
}

func TestVisibleSegmented(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Three rays of different lengths; results must equal per-ray runs.
	rays := [][]float64{}
	var all []float64
	var flags []bool
	for r := 0; r < 3; r++ {
		n := 1 + rng.Intn(50)
		ray := make([]float64, n)
		for i := range ray {
			ray[i] = rng.Float64() * 50
		}
		rays = append(rays, ray)
		for i := range ray {
			flags = append(flags, i == 0)
			all = append(all, ray[i])
		}
	}
	m := core.New()
	got := VisibleSegmented(m, all, flags)
	pos := 0
	for r, ray := range rays {
		want := refVisible(ray)
		for i := range want {
			if got[pos+i] != want[i] {
				t.Fatalf("ray %d index %d: got %v, want %v", r, i, got[pos+i], want[i])
			}
		}
		pos += len(ray)
	}
	if gotEmpty := VisibleSegmented(m, nil, nil); gotEmpty != nil {
		t.Errorf("empty segmented = %v", gotEmpty)
	}
}
