// Package los implements the line-of-sight computation of the paper's
// Table 1: given terrain altitudes along a ray from an observation
// point, a point is visible exactly when its vertical angle from the
// observer exceeds the angle of every point in front of it — one
// elementwise pass to form the angles and one max-scan, O(1) program
// steps (the paper lists Line of Sight as O(1) in the scan model versus
// O(lg n) on both P-RAM variants).
package los

import (
	"math"

	"scans/internal/core"
)

// Visible reports which points along a ray can be seen from the
// observer. alt[0] is the observer's altitude (plus any eye height);
// alt[i] is the terrain altitude at distance i along the ray. The
// observer itself is reported visible.
func Visible(m *core.Machine, alt []float64) []bool {
	n := len(alt)
	if n == 0 {
		return nil
	}
	// The slope (tangent of the vertical angle) is monotone in the
	// angle, so compare slopes and skip the trigonometry.
	slope := make([]float64, n)
	core.Par(m, n, func(i int) {
		if i == 0 {
			slope[i] = math.Inf(-1)
		} else {
			slope[i] = (alt[i] - alt[0]) / float64(i)
		}
	})
	best := make([]float64, n)
	core.FMaxScan(m, best, slope)
	vis := make([]bool, n)
	core.Par(m, n, func(i int) { vis[i] = i == 0 || slope[i] > best[i] })
	return vis
}

// VisibleSegmented runs the computation independently for many rays laid
// out in one segmented vector (flags mark each ray's first element, the
// observer sample): the form a grid line-of-sight uses, one ray per
// compass direction, still O(1) steps.
func VisibleSegmented(m *core.Machine, alt []float64, flags []bool) []bool {
	n := len(alt)
	if n == 0 {
		return nil
	}
	origin := make([]float64, n)
	core.SegCopy(m, origin, alt, flags)
	rank := make([]int, n)
	core.SegRank(m, rank, flags)
	slope := make([]float64, n)
	core.Par(m, n, func(i int) {
		if rank[i] == 0 {
			slope[i] = math.Inf(-1)
		} else {
			slope[i] = (alt[i] - origin[i]) / float64(rank[i])
		}
	})
	best := make([]float64, n)
	core.SegFMaxScan(m, best, slope, flags)
	vis := make([]bool, n)
	core.Par(m, n, func(i int) { vis[i] = rank[i] == 0 || slope[i] > best[i] })
	return vis
}
