package svcc

import (
	"math/rand"
	"testing"

	"scans/internal/algo/cc"
	"scans/internal/algo/graph"
	"scans/internal/core"
)

func crcw() *core.Machine { return core.New(core.WithModel(core.ModelCRCW)) }

func TestLabelsSmall(t *testing.T) {
	m := crcw()
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}
	got := Labels(m, 6, edges)
	want := cc.Serial(6, edges)
	if !cc.SameComponents(got, want) {
		t.Errorf("labels %v do not partition like %v", got, want)
	}
}

func TestLabelsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(80)
		var edges []graph.Edge
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		m := crcw()
		got := Labels(m, n, edges)
		if !cc.SameComponents(got, cc.Serial(n, edges)) {
			t.Fatalf("trial %d (n=%d): wrong components", trial, n)
		}
	}
}

func TestLabelsPathAndCycle(t *testing.T) {
	n := 256
	var path []graph.Edge
	for i := 0; i < n-1; i++ {
		path = append(path, graph.Edge{U: i, V: i + 1})
	}
	m := crcw()
	got := Labels(m, n, path)
	for v := 1; v < n; v++ {
		if got[v] != got[0] {
			t.Fatalf("path vertex %d disconnected", v)
		}
	}
	cycle := append(path, graph.Edge{U: n - 1, V: 0})
	got = Labels(m, n, cycle)
	for v := 1; v < n; v++ {
		if got[v] != got[0] {
			t.Fatalf("cycle vertex %d disconnected", v)
		}
	}
}

func TestLabelsRoundsLogarithmic(t *testing.T) {
	// O(lg n) rounds: steps grow additively per doubling.
	steps := func(n int) int64 {
		rng := rand.New(rand.NewSource(int64(n)))
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		m := crcw()
		Labels(m, n, edges)
		return m.Steps()
	}
	s1, s4 := steps(1<<8), steps(1<<10)
	if ratio := float64(s4) / float64(s1); ratio > 2.5 {
		t.Errorf("steps grew %.1fx for 4x vertices; want lg-like", ratio)
	}
}

func TestLabelsRequiresCRCW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on a non-CRCW machine")
		}
	}()
	Labels(core.New(), 2, []graph.Edge{{U: 0, V: 1}})
}

func TestMinWriteRequiresCRCW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	core.PermuteMinWrite(core.New(), []int{5}, []int{1}, []int{0})
}

func TestMinWriteSemantics(t *testing.T) {
	m := crcw()
	dst := []int{9, 9}
	core.PermuteMinWrite(m, dst, []int{4, 2, 7}, []int{0, 0, 1})
	if dst[0] != 2 || dst[1] != 7 {
		t.Errorf("min-write = %v, want [2 7]", dst)
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	m := crcw()
	if got := Labels(m, 0, nil); len(got) != 0 {
		t.Errorf("empty = %v", got)
	}
	got := Labels(m, 3, nil)
	for v, l := range got {
		if l != v {
			t.Errorf("edgeless vertex %d labeled %d", v, l)
		}
	}
}
