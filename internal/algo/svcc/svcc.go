// Package svcc implements Shiloach–Vishkin style connected components,
// the algorithm behind Table 1's CRCW column (O(lg n) on a CRCW P-RAM
// whose concurrent writes resolve to the minimum — the extension the
// paper's §2.3.3 explicitly describes). It exists as the measured
// counterpart to the scan-model contraction in package cc: same answer,
// different machine model.
//
// The variant here is Awerbuch–Shiloach hooking: repeat {conditional
// star hooking toward smaller labels, unconditional star hooking for
// stagnant stars, pointer-jump shortcutting} until stable. Each phase is
// a constant number of elementwise steps, concurrent-read gathers, and
// min-combining concurrent writes, giving O(lg n) rounds.
package svcc

import (
	"fmt"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// Labels returns a component label per vertex; equal labels ⇔ connected.
// The machine must be ModelCRCW (the algorithm hooks with min-combining
// concurrent writes).
func Labels(m *core.Machine, numVertices int, edges []graph.Edge) []int {
	if m.Model() != core.ModelCRCW {
		panic("svcc: Labels requires a ModelCRCW machine")
	}
	n := numVertices
	parent := make([]int, n)
	core.Par(m, n, func(v int) { parent[v] = v })
	if n == 0 {
		return parent
	}
	ne := len(edges)
	us := make([]int, ne)
	vs := make([]int, ne)
	core.Par(m, ne, func(i int) { us[i], vs[i] = edges[i].U, edges[i].V })

	maxRounds := 8*lg(n) + 16
	for round := 0; ; round++ {
		if round > maxRounds {
			panic(fmt.Sprintf("svcc: no convergence after %d rounds", round))
		}
		before := append([]int(nil), parent...)

		// Conditional hooking: roots of stars hook onto strictly
		// smaller neighboring labels (min-combined on collisions).
		star := starVector(m, parent)
		hookIf(m, parent, star, us, vs, true)
		hookIf(m, parent, star, vs, us, true)

		// Unconditional hooking: stars left stagnant hook onto any
		// differing neighbor label, guaranteeing progress.
		star = starVector(m, parent)
		hookIf(m, parent, star, us, vs, false)
		hookIf(m, parent, star, vs, us, false)

		// Shortcut: pointer jumping halves every tree's depth.
		next := make([]int, n)
		core.GatherShared(m, next, parent, parent)
		core.Par(m, n, func(v int) { parent[v] = next[v] })

		stable := true
		for v := range parent {
			if parent[v] != before[v] {
				stable = false
				break
			}
		}
		if stable {
			break
		}
	}
	return parent
}

// starVector computes, per vertex, whether its tree is a star (depth ≤
// 1), with the standard three-step routine: a vertex two levels deep
// disqualifies itself, its grandparent's tree, and — through the final
// "inherit from parent" step — everything else in that tree.
func starVector(m *core.Machine, parent []int) []bool {
	n := len(parent)
	gp := make([]int, n)
	core.GatherShared(m, gp, parent, parent)
	// ok[v] = 1 while v's tree still looks like a star.
	ok := make([]int, n)
	core.Par(m, n, func(v int) { ok[v] = 1 })
	deep := make([]bool, n)
	core.Par(m, n, func(v int) { deep[v] = gp[v] != parent[v] })
	zero := make([]int, n)
	// A depth-2 vertex zeroes itself and its grandparent (concurrent
	// min-writes).
	self := make([]int, n)
	core.Par(m, n, func(v int) { self[v] = v })
	core.PermuteMinWriteIf(m, ok, zero, self, deep)
	core.PermuteMinWriteIf(m, ok, zero, gp, deep)
	// Everyone inherits their parent's verdict (the parent of a depth-1
	// vertex is the root, already zeroed if anything hangs below).
	okParent := make([]int, n)
	core.GatherShared(m, okParent, ok, parent)
	star := make([]bool, n)
	core.Par(m, n, func(v int) { star[v] = ok[v] == 1 && okParent[v] == 1 })
	return star
}

// hookIf hooks, for every edge (from[i], to[i]) whose from-endpoint lies
// in a star, the from-side root onto the to-side label — only onto
// strictly smaller labels when conditional, onto any differing label
// otherwise. Collisions resolve to the minimum.
func hookIf(m *core.Machine, parent []int, star []bool, from, to []int, conditional bool) {
	ne := len(from)
	pFrom := make([]int, ne)
	pTo := make([]int, ne)
	core.GatherShared(m, pFrom, parent, from)
	core.GatherShared(m, pTo, parent, to)
	cand := make([]bool, ne)
	core.Par(m, ne, func(i int) {
		if !star[from[i]] {
			return
		}
		if conditional {
			cand[i] = pTo[i] < pFrom[i]
		} else {
			cand[i] = pTo[i] != pFrom[i]
		}
	})
	core.PermuteMinWriteIf(m, parent, pTo, pFrom, cand)
}

func lg(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
