package svcc

import (
	"math/rand"
	"testing"

	"scans/internal/algo/cc"
	"scans/internal/algo/graph"
	"scans/internal/core"
)

// TestCrossModelAgreement runs the same graphs through the CRCW hooking
// algorithm and the scan-model random-mate contraction: two completely
// different machines and algorithms must induce identical partitions —
// the strongest internal consistency check the repository has for
// connectivity.
func TestCrossModelAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(100)
		var edges []graph.Edge
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		crcwM := core.New(core.WithModel(core.ModelCRCW))
		viaHooking := Labels(crcwM, n, edges)
		scanM := core.New()
		viaContraction := cc.Labels(scanM, n, edges, int64(trial))
		if !cc.SameComponents(viaHooking, viaContraction) {
			t.Fatalf("trial %d (n=%d): CRCW hooking and scan contraction disagree", trial, n)
		}
	}
}
