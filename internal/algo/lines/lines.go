// Package lines implements the paper's parallel line-drawing routine
// (§2.4.1, Figure 9): every line computes its pixel count, allocates a
// processor per pixel with the allocation primitive, distributes its
// endpoints across the allocated segment, and each pixel processor
// computes its own grid position with simple DDA arithmetic — O(1)
// program steps however many lines and pixels there are. The output is
// identical to the serial digital differential analyzer (DDA).
package lines

import (
	"fmt"

	"scans/internal/core"
)

// Point is an integer grid position.
type Point struct{ X, Y int }

// Line is a pair of endpoints, inclusive.
type Line struct{ From, To Point }

// PixelCount returns how many pixels the DDA produces for l:
// max(|dx|, |dy|) + 1, both endpoints included.
func (l Line) PixelCount() int {
	dx, dy := abs(l.To.X-l.From.X), abs(l.To.Y-l.From.Y)
	if dy > dx {
		dx = dy
	}
	return dx + 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Result is the output of Draw: all pixels of all lines in one vector,
// segmented by line.
type Result struct {
	// Pixels holds every line's pixels, the paper's "(x, y) pairs that
	// specify the position of each pixel".
	Pixels []Point
	// SegFlags marks the first pixel of each line's segment.
	SegFlags []bool
	// Starts[i] is the offset of line i's pixels within Pixels.
	Starts []int
}

// Draw renders all lines on machine m in O(1) program steps.
func Draw(m *core.Machine, ls []Line) Result {
	n := len(ls)
	counts := make([]int, n)
	core.Par(m, n, func(i int) { counts[i] = ls[i].PixelCount() })
	alloc := core.Allocate(m, counts)
	// Distribute each line's descriptor across its segment.
	descs := make([]Line, alloc.Total)
	core.Distribute(m, alloc, descs, ls, counts)
	lens := make([]int, alloc.Total)
	core.Distribute(m, alloc, lens, counts, counts)
	// Every pixel processor finds its index within the line and its
	// final grid location.
	rank := make([]int, alloc.Total)
	core.SegRank(m, rank, alloc.Flags)
	pixels := make([]Point, alloc.Total)
	core.Par(m, alloc.Total, func(i int) {
		l := descs[i]
		steps := lens[i] - 1
		if steps == 0 {
			pixels[i] = l.From
			return
		}
		pixels[i] = Point{
			X: l.From.X + roundDiv((l.To.X-l.From.X)*rank[i], steps),
			Y: l.From.Y + roundDiv((l.To.Y-l.From.Y)*rank[i], steps),
		}
	})
	return Result{Pixels: pixels, SegFlags: alloc.Flags, Starts: alloc.HPointers}
}

// roundDiv divides a by b rounding half away from zero, the DDA's
// nearest-pixel rule.
func roundDiv(a, b int) int {
	if b < 0 {
		a, b = -a, -b
	}
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

// SerialDDA is the reference implementation: the "simple digital
// differential analyzer serial technique" the paper cites. It renders
// one line at a time.
func SerialDDA(l Line) []Point {
	n := l.PixelCount()
	out := make([]Point, n)
	if n == 1 {
		out[0] = l.From
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = Point{
			X: l.From.X + roundDiv((l.To.X-l.From.X)*i, n-1),
			Y: l.From.Y + roundDiv((l.To.Y-l.From.Y)*i, n-1),
		}
	}
	return out
}

// Raster scatters the pixels of r onto a width×height grid and returns
// it as a row-major boolean matrix. Because a pixel can appear in more
// than one line, this is the one place the paper needs "the simplest
// form of concurrent-write (one of the values gets written)"; the
// machine's PermuteWrite provides exactly that. Pixels outside the grid
// panic: the caller chose the grid.
func Raster(m *core.Machine, r Result, width, height int) []bool {
	grid := make([]bool, width*height)
	n := len(r.Pixels)
	idx := make([]int, n)
	core.Par(m, n, func(i int) {
		p := r.Pixels[i]
		if p.X < 0 || p.X >= width || p.Y < 0 || p.Y >= height {
			panic(fmt.Sprintf("lines: Raster: pixel %d at (%d,%d) outside %dx%d grid", i, p.X, p.Y, width, height))
		}
		idx[i] = p.Y*width + p.X
	})
	trues := make([]bool, n)
	core.Par(m, n, func(i int) { trues[i] = true })
	core.PermuteWrite(m, grid, trues, idx)
	return grid
}
