package lines

import (
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/core"
)

// fig9Lines are the three lines of Figure 9.
var fig9Lines = []Line{
	{Point{11, 2}, Point{23, 14}},
	{Point{2, 13}, Point{13, 8}},
	{Point{16, 4}, Point{31, 4}},
}

func TestDrawFig9(t *testing.T) {
	m := core.New()
	r := Draw(m, fig9Lines)
	// Inclusive DDA: max(|dx|,|dy|)+1 pixels per line. (The paper's
	// caption says 12/11/16, which is not consistent with any single
	// endpoint convention; see EXPERIMENTS.md.)
	wantCounts := []int{13, 12, 16}
	if want := []int{0, 13, 25}; !reflect.DeepEqual(r.Starts, want) {
		t.Errorf("Starts = %v, want %v", r.Starts, want)
	}
	if len(r.Pixels) != 13+12+16 {
		t.Fatalf("total pixels = %d, want 41", len(r.Pixels))
	}
	for i, l := range fig9Lines {
		start := r.Starts[i]
		end := start + wantCounts[i]
		got := r.Pixels[start:end]
		want := SerialDDA(l)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("line %d pixels = %v, want serial DDA %v", i, got, want)
		}
	}
}

func TestDrawMatchesSerialDDARandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(20)
		ls := make([]Line, n)
		for i := range ls {
			ls[i] = Line{
				Point{rng.Intn(100), rng.Intn(100)},
				Point{rng.Intn(100), rng.Intn(100)},
			}
		}
		m := core.New()
		r := Draw(m, ls)
		pos := 0
		for i, l := range ls {
			want := SerialDDA(l)
			got := r.Pixels[pos : pos+len(want)]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d line %d: %v vs %v", trial, i, got, want)
			}
			if !r.SegFlags[pos] {
				t.Fatalf("trial %d line %d: missing segment flag", trial, i)
			}
			pos += len(want)
		}
	}
}

func TestDrawDegenerateLines(t *testing.T) {
	m := core.New()
	r := Draw(m, []Line{{Point{5, 5}, Point{5, 5}}})
	if len(r.Pixels) != 1 || r.Pixels[0] != (Point{5, 5}) {
		t.Errorf("point line = %v", r.Pixels)
	}
	// Vertical and horizontal.
	r = Draw(m, []Line{{Point{0, 0}, Point{0, 4}}, {Point{3, 2}, Point{0, 2}}})
	if len(r.Pixels) != 5+4 {
		t.Fatalf("pixels = %d, want 9", len(r.Pixels))
	}
	for i := 0; i < 5; i++ {
		if r.Pixels[i] != (Point{0, i}) {
			t.Errorf("vertical pixel %d = %v", i, r.Pixels[i])
		}
	}
	for i := 0; i < 4; i++ {
		if r.Pixels[5+i] != (Point{3 - i, 2}) {
			t.Errorf("reversed horizontal pixel %d = %v", i, r.Pixels[5+i])
		}
	}
}

func TestDrawConstantSteps(t *testing.T) {
	// O(1) program steps regardless of line count and length.
	mkLines := func(n, length int) []Line {
		ls := make([]Line, n)
		for i := range ls {
			ls[i] = Line{Point{0, i}, Point{length, i}}
		}
		return ls
	}
	m1 := core.New()
	Draw(m1, mkLines(4, 10))
	m2 := core.New()
	Draw(m2, mkLines(400, 1000))
	if m1.Steps() != m2.Steps() {
		t.Errorf("steps grew: %d vs %d", m1.Steps(), m2.Steps())
	}
}

func TestRaster(t *testing.T) {
	m := core.New()
	r := Draw(m, []Line{{Point{0, 0}, Point{2, 0}}, {Point{2, 0}, Point{2, 1}}})
	grid := Raster(m, r, 3, 2)
	want := []bool{
		true, true, true,
		false, false, true,
	}
	if !reflect.DeepEqual(grid, want) {
		t.Errorf("grid = %v, want %v", grid, want)
	}
}

func TestRasterOutOfRangePanics(t *testing.T) {
	m := core.New()
	r := Draw(m, []Line{{Point{0, 0}, Point{5, 0}}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-grid pixel")
		}
	}()
	Raster(m, r, 3, 1)
}

func TestUsageTable3(t *testing.T) {
	// Table 3: line drawing uses allocating, copying, segmented
	// primitives.
	m := core.New()
	Draw(m, fig9Lines)
	c := m.Counters()
	for _, u := range []core.Usage{core.UseAllocate, core.UseCopy, core.UseSegmented} {
		if c.UsageCounts[u] == 0 {
			t.Errorf("usage %v not recorded", u)
		}
	}
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 5, 0}, {5, 2, 3}, {4, 2, 2}, {-5, 2, -3}, {7, 3, 2}, {8, 3, 3},
		{5, -2, -3}, {-5, -2, 3},
	}
	for _, c := range cases {
		if got := roundDiv(c.a, c.b); got != c.want {
			t.Errorf("roundDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
