// Package graph implements the paper's segmented graph representation
// (§2.3.2, Figure 6) and the star-merge operation (§2.3.3, Figure 7)
// that contracts disjoint stars in O(1) program steps. The minimum
// spanning tree, connected components, and maximal independent set
// algorithms are all built on this package.
//
// An undirected graph is one segment per vertex and one element per edge
// end: each edge appears in the segments of both its endpoints, and the
// cross-pointers vector holds, for each edge end, the index of the other
// end. The representation is built from an arbitrary edge list with the
// split radix sort.
package graph

import (
	"fmt"

	"scans/internal/algo/radix"
	"scans/internal/core"
)

// Edge is an undirected edge between vertices U and V with weight W.
type Edge struct {
	U, V int
	W    int
}

// SegGraph is the segmented graph representation. All per-slot vectors
// have one entry per edge end ("slot"); there are two slots per edge.
// Vertices that currently have no edges own no segment.
type SegGraph struct {
	// Flags marks the first slot of each vertex's segment.
	Flags []bool
	// Cross holds, for each slot, the index of the edge's other end.
	Cross []int
	// Weight is the edge weight, replicated at both ends.
	Weight []int
	// EdgeID is the index of the edge in the original edge list,
	// replicated at both ends.
	EdgeID []int
	// Rep is, per slot, the representative original vertex of the
	// segment the slot belongs to; it starts as the vertex id and is
	// carried through merges.
	Rep []int
}

// Slots returns the number of edge ends (twice the live edge count).
func (g *SegGraph) Slots() int { return len(g.Flags) }

// Vertices returns the number of live vertex segments.
func (g *SegGraph) Vertices() int {
	n := 0
	for _, f := range g.Flags {
		if f {
			n++
		}
	}
	return n
}

// Build constructs the segmented representation of a graph with
// numVertices vertices from an edge list, per §2.3.2: create two slots
// per edge and sort them by endpoint with the split radix sort, which
// places all of a vertex's slots in one contiguous segment. Self-loops
// are rejected (they would merge a vertex with itself); parallel edges
// are fine. O(lg numVertices) program steps, all in the sort.
func Build(m *core.Machine, numVertices int, edges []Edge) *SegGraph {
	for i, e := range edges {
		if e.U == e.V {
			panic(fmt.Sprintf("graph: Build: edge %d is a self-loop at vertex %d", i, e.U))
		}
		if e.U < 0 || e.U >= numVertices || e.V < 0 || e.V >= numVertices {
			panic(fmt.Sprintf("graph: Build: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.U, e.V, numVertices))
		}
	}
	n := 2 * len(edges)
	vertex := make([]int, n)
	weight := make([]int, n)
	edgeID := make([]int, n)
	core.Par(m, n, func(i int) {
		e := edges[i/2]
		if i%2 == 0 {
			vertex[i] = e.U
		} else {
			vertex[i] = e.V
		}
		weight[i] = e.W
		edgeID[i] = i / 2
	})
	sortedVertex, perm := radix.SortWithIndex(m, vertex, radix.BitsFor([]int{numVertices - 1}))
	// perm[i] is the original slot at sorted position i; the partner of
	// original slot s is s^1. posOf maps original slot -> sorted
	// position.
	posOf := make([]int, n)
	iota := make([]int, n)
	core.Par(m, n, func(i int) { iota[i] = i })
	core.Permute(m, posOf, iota, perm)
	g := &SegGraph{
		Flags:  make([]bool, n),
		Cross:  make([]int, n),
		Weight: make([]int, n),
		EdgeID: make([]int, n),
		Rep:    make([]int, n),
	}
	core.Gather(m, g.Weight, weight, perm)
	core.Gather(m, g.EdgeID, edgeID, perm)
	core.Par(m, n, func(i int) {
		g.Rep[i] = sortedVertex[i]
		g.Flags[i] = i == 0 || sortedVertex[i] != sortedVertex[i-1]
	})
	partner := make([]int, n)
	core.Par(m, n, func(i int) { partner[i] = perm[i] ^ 1 })
	core.Gather(m, g.Cross, posOf, partner)
	return g
}

// Validate checks the structural invariants of the representation and
// returns a descriptive error for the first violation: Cross must be an
// involution with no fixed points that crosses segment boundaries, and
// Weight/EdgeID/Rep must agree appropriately across it. Used by tests
// and available to callers handling untrusted graphs.
func (g *SegGraph) Validate() error {
	n := g.Slots()
	if len(g.Cross) != n || len(g.Weight) != n || len(g.EdgeID) != n || len(g.Rep) != n {
		return fmt.Errorf("graph: vector lengths differ: flags %d cross %d weight %d edgeid %d rep %d",
			n, len(g.Cross), len(g.Weight), len(g.EdgeID), len(g.Rep))
	}
	if n == 0 {
		return nil
	}
	if !g.Flags[0] {
		return fmt.Errorf("graph: slot 0 is not a segment head")
	}
	seg := segNumbers(g.Flags)
	for i := 0; i < n; i++ {
		c := g.Cross[i]
		if c < 0 || c >= n {
			return fmt.Errorf("graph: cross[%d] = %d out of range", i, c)
		}
		if c == i {
			return fmt.Errorf("graph: cross[%d] is a fixed point", i)
		}
		if g.Cross[c] != i {
			return fmt.Errorf("graph: cross is not an involution at %d", i)
		}
		if seg[c] == seg[i] {
			return fmt.Errorf("graph: slot %d's edge stays within segment %d (self-loop)", i, seg[i])
		}
		if g.Weight[c] != g.Weight[i] {
			return fmt.Errorf("graph: weight disagrees across edge at slot %d", i)
		}
		if g.EdgeID[c] != g.EdgeID[i] {
			return fmt.Errorf("graph: edge id disagrees across edge at slot %d", i)
		}
		if i > 0 && seg[i] == seg[i-1] && g.Rep[i] != g.Rep[i-1] {
			return fmt.Errorf("graph: rep changes inside segment at slot %d", i)
		}
	}
	return nil
}

// segNumbers is the host-side 0-origin segment number of each slot.
func segNumbers(flags []bool) []int {
	seg := make([]int, len(flags))
	cur := -1
	for i, f := range flags {
		if f || i == 0 {
			cur++
		}
		seg[i] = cur
	}
	return seg
}

// SegNumber writes each slot's 0-origin segment number: the inclusive
// +-scan of the flags minus one. One scan.
func SegNumber(m *core.Machine, dst []int, flags []bool) {
	n := len(flags)
	ones := make([]int, n)
	core.Par(m, n, func(i int) {
		if flags[i] || i == 0 {
			ones[i] = 1
		}
	})
	core.PlusScan(m, dst, ones)
	core.Par(m, n, func(i int) { dst[i] += ones[i] - 1 })
}

// HeadValues packs the per-slot vector's value at each segment head into
// a dense per-vertex vector (vertex order = segment order).
func HeadValues(m *core.Machine, g *SegGraph, perSlot []int) []int {
	out := make([]int, g.Vertices())
	core.Pack(m, out, perSlot, g.Flags)
	return out
}

// NeighborPlusReduce computes, for every live vertex, the sum of a
// per-vertex value over its neighbors — the paper's showcase O(1)
// neighbor-summing (§2.3.2): distribute each vertex's value over its
// slots with a segmented copy, exchange ends through the cross-pointers
// with one permute, and sum each segment back with a segmented
// +-distribute. perVertex must have one value per live vertex, in
// segment order; parallel edges count once per edge.
func NeighborPlusReduce(m *core.Machine, g *SegGraph, perVertex []int) []int {
	n := g.Slots()
	headPos := make([]int, g.Vertices())
	core.PackIndex(m, headPos, g.Flags)
	atHeads := make([]int, n)
	core.Permute(m, atHeads, perVertex, headPos)
	mine := make([]int, n)
	core.SegCopy(m, mine, atHeads, g.Flags)
	theirs := make([]int, n)
	core.Permute(m, theirs, mine, g.Cross)
	sums := make([]int, n)
	core.SegPlusDistribute(m, sums, theirs, g.Flags)
	return HeadValues(m, g, sums)
}
