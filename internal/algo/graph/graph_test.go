package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"scans/internal/core"
)

// fig6Edges is the graph of Figure 6, 0-origin: w_k has weight k.
// Edges: w1=(0,1) w2=(1,2) w3=(1,4) w4=(2,3) w5=(2,4) w6=(3,4).
var fig6Edges = []Edge{
	{0, 1, 1}, {1, 2, 2}, {1, 4, 3}, {2, 3, 4}, {2, 4, 5}, {3, 4, 6},
}

func TestBuildFig6(t *testing.T) {
	m := core.New()
	g := Build(m, 5, fig6Edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's exact vectors (vertex ids 1-origin in the paper).
	wantSeg := []bool{true, true, false, false, true, false, false, true, false, true, false, false}
	if !reflect.DeepEqual(g.Flags, wantSeg) {
		t.Errorf("segment-descriptor = %v, want %v", g.Flags, wantSeg)
	}
	wantCross := []int{1, 0, 4, 9, 2, 7, 10, 5, 11, 3, 6, 8}
	if !reflect.DeepEqual(g.Cross, wantCross) {
		t.Errorf("cross-pointers = %v, want %v", g.Cross, wantCross)
	}
	wantWeights := []int{1, 1, 2, 3, 2, 4, 5, 4, 6, 3, 5, 6}
	if !reflect.DeepEqual(g.Weight, wantWeights) {
		t.Errorf("weights = %v, want %v", g.Weight, wantWeights)
	}
	wantRep := []int{0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4}
	if !reflect.DeepEqual(g.Rep, wantRep) {
		t.Errorf("rep = %v, want %v", g.Rep, wantRep)
	}
	if g.Vertices() != 5 {
		t.Errorf("Vertices = %d, want 5", g.Vertices())
	}
}

func TestBuildRejectsBadEdges(t *testing.T) {
	m := core.New()
	for name, edges := range map[string][]Edge{
		"self-loop":    {{2, 2, 1}},
		"out-of-range": {{0, 9, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Build(m, 5, edges)
		}()
	}
}

func TestBuildEmptyAndParallelEdges(t *testing.T) {
	m := core.New()
	g := Build(m, 4, nil)
	if g.Slots() != 0 || g.Vertices() != 0 {
		t.Error("empty graph not empty")
	}
	// Parallel edges are legal.
	g = Build(m, 2, []Edge{{0, 1, 5}, {0, 1, 7}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Slots() != 4 {
		t.Errorf("Slots = %d, want 4", g.Slots())
	}
}

func TestNeighborPlusReduceFig6(t *testing.T) {
	m := core.New()
	g := Build(m, 5, fig6Edges)
	// Value = vertex id + 1; neighbor sums on the Figure 6 graph:
	// v0~{v1}: 2. v1~{v0,v2,v4}: 1+3+5 = 9. v2~{v1,v3,v4}: 2+4+5 = 11.
	// v3~{v2,v4}: 3+5 = 8. v4~{v1,v2,v3}: 2+3+4 = 9.
	vals := []int{1, 2, 3, 4, 5}
	got := NeighborPlusReduce(m, g, vals)
	want := []int{2, 9, 11, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("neighbor sums = %v, want %v", got, want)
	}
}

func TestNeighborPlusReduceConstantSteps(t *testing.T) {
	// §2.3.2: neighbor summing is O(1) in the scan model (beyond the
	// build). Compare step deltas across graph sizes.
	ringEdges := func(n int) []Edge {
		es := make([]Edge, n)
		for i := range es {
			es[i] = Edge{i, (i + 1) % n, 1}
		}
		return es
	}
	delta := func(n int) int64 {
		m := core.New()
		g := Build(m, n, ringEdges(n))
		before := m.Steps()
		NeighborPlusReduce(m, g, make([]int, n))
		return m.Steps() - before
	}
	if d1, d2 := delta(16), delta(1024); d1 != d2 {
		t.Errorf("neighbor-sum steps grew with n: %d vs %d", d1, d2)
	}
}

func TestStarMergeFig7(t *testing.T) {
	m := core.New()
	g := Build(m, 5, fig6Edges)
	// Figure 7: parents {v0, v2, v4}, stars on edges w2 (v1->v2) and
	// w4 (v3->v2), marked at both ends: slots 2,4,5,7.
	parentVertex := []bool{true, false, true, false, true}
	parentSlot := DistributeVertexFlag(m, g, parentVertex)
	star := make([]bool, 12)
	for _, s := range []int{2, 4, 5, 7} {
		star[s] = true
	}
	merged, rec := StarMerge(m, g, parentSlot, star)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's post-merge segment structure.
	wantFlags := []bool{true, true, false, false, false, true, false, false}
	if !reflect.DeepEqual(merged.Flags, wantFlags) {
		t.Errorf("flags = %v, want %v", merged.Flags, wantFlags)
	}
	// Per-segment weight multisets must match the paper's
	// [w1 | w1 w3 w5 w6 | w3 w5 w6] (within-segment order is layout-
	// dependent).
	gotSegs := segMultisets(merged)
	wantSegs := [][]int{{1}, {1, 3, 5, 6}, {3, 5, 6}}
	if !reflect.DeepEqual(gotSegs, wantSegs) {
		t.Errorf("segment weights = %v, want %v", gotSegs, wantSegs)
	}
	// Both children merged into v2 along edges w2 (id 1) and w4 (id 3).
	if len(rec.ChildRep) != 2 {
		t.Fatalf("merge records = %+v, want 2", rec)
	}
	wantPairs := map[int]int{1: 2, 3: 2}
	for i, c := range rec.ChildRep {
		if wantPairs[c] != rec.ParentRep[i] {
			t.Errorf("merge %d: child %d -> parent %d", i, c, rec.ParentRep[i])
		}
	}
	ids := append([]int(nil), rec.EdgeID...)
	sort.Ints(ids)
	if !reflect.DeepEqual(ids, []int{1, 3}) {
		t.Errorf("merged edge ids = %v, want [1 3]", ids)
	}
	// The merged segment adopted the parent's representative.
	if merged.Rep[1] != 2 {
		t.Errorf("merged segment rep = %d, want 2", merged.Rep[1])
	}
}

func segMultisets(g *SegGraph) [][]int {
	var out [][]int
	var cur []int
	for i := 0; i < g.Slots(); i++ {
		if g.Flags[i] && cur != nil {
			sort.Ints(cur)
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, g.Weight[i])
	}
	if cur != nil {
		sort.Ints(cur)
		out = append(out, cur)
	}
	return out
}

func TestStarMergeRandomValidates(t *testing.T) {
	// Random graphs, random coin flips, many rounds: every intermediate
	// representation must satisfy the structural invariants (the EREW
	// checker inside the machine also guards every permute).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(30)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, Edge{u, v, rng.Intn(50)})
				}
			}
		}
		m := core.New()
		g := Build(m, n, edges)
		for round := 0; g.Slots() > 0 && round < 200; round++ {
			coins := make([]bool, g.Vertices())
			for i := range coins {
				coins[i] = rng.Intn(2) == 0
			}
			parentSlot := DistributeVertexFlag(m, g, coins)
			star := ChooseStarEdges(m, g, parentSlot, g.Weight)
			g, _ = StarMerge(m, g, parentSlot, star)
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
		}
	}
}

func TestSegNumber(t *testing.T) {
	m := core.New()
	flags := []bool{true, false, true, true, false}
	got := make([]int, 5)
	SegNumber(m, got, flags)
	if want := []int{0, 0, 1, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegNumber = %v, want %v", got, want)
	}
}

func TestFilterSymmetricSubset(t *testing.T) {
	m := core.New()
	g := Build(m, 5, fig6Edges)
	// Drop edge w6 = (3,4): slots 8 and 11 in the Fig 6 layout.
	keep := make([]bool, 12)
	for i := range keep {
		keep[i] = i != 8 && i != 11
	}
	f := Filter(m, g, keep)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Slots() != 10 {
		t.Errorf("Slots = %d, want 10", f.Slots())
	}
	for _, id := range f.EdgeID {
		if id == 5 {
			t.Error("edge 5 survived the filter")
		}
	}
}
