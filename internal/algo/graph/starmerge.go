package graph

import (
	"math"

	"scans/internal/core"
)

// ChooseStarEdges implements the star-finding rule of §2.3.3: every
// child segment finds its minimum-key edge with a segmented
// min-distribute (first slot wins ties), and that edge becomes a star
// edge exactly when its other end lies in a parent segment. The returned
// flag vector marks star edges at both ends. parentSlot must be uniform
// within each segment (use DistributeVertexFlag). O(1) program steps.
func ChooseStarEdges(m *core.Machine, g *SegGraph, parentSlot []bool, key []int) []bool {
	n := g.Slots()
	minKey := make([]int, n)
	core.SegMinDistribute(m, minKey, key, g.Flags)
	isMin := make([]bool, n)
	core.Par(m, n, func(i int) { isMin[i] = !parentSlot[i] && key[i] == minKey[i] })
	rank := make([]int, n)
	core.SegEnumerate(m, rank, isMin, g.Flags)
	otherParent := make([]bool, n)
	core.Permute(m, otherParent, parentSlot, g.Cross)
	starChild := make([]bool, n)
	core.Par(m, n, func(i int) {
		starChild[i] = isMin[i] && rank[i] == 0 && otherParent[i]
	})
	starOther := make([]bool, n)
	core.Permute(m, starOther, starChild, g.Cross)
	star := make([]bool, n)
	core.Par(m, n, func(i int) { star[i] = starChild[i] || starOther[i] })
	return star
}

// DistributeVertexFlag expands a per-vertex flag (segment order) to a
// per-slot flag with one permute and one segmented copy.
func DistributeVertexFlag(m *core.Machine, g *SegGraph, perVertex []bool) []bool {
	n := g.Slots()
	headPos := make([]int, g.Vertices())
	core.PackIndex(m, headPos, g.Flags)
	atHeads := make([]bool, n)
	core.Permute(m, atHeads, perVertex, headPos)
	out := make([]bool, n)
	core.SegCopy(m, out, atHeads, g.Flags)
	return out
}

// MergeRecord reports what a StarMerge contracted: child i's segment
// (representative ChildRep[i]) merged into ParentRep[i]'s segment along
// original edge EdgeID[i].
type MergeRecord struct {
	ChildRep  []int
	ParentRep []int
	EdgeID    []int
}

// StarMerge contracts every star in the graph in O(1) program steps,
// following the paper's four-step recipe (§2.3.3): (1) each parent opens
// space for its children, (2) the children permute into that space,
// (3) the cross-pointers are updated, and (4) edges that now point
// within a segment — edges inside a merged tree — are deleted and the
// representation repacked. Segments whose every edge was internal vanish.
//
// parentSlot marks (uniformly per segment) the segments that act as
// parents; starSlot marks star edges at both ends, as produced by
// ChooseStarEdges. A child segment with a star edge moves into its
// parent; every other segment stays (a "parent" here is any segment that
// does not itself merge away).
func StarMerge(m *core.Machine, g *SegGraph, parentSlot, starSlot []bool) (*SegGraph, MergeRecord) {
	n := g.Slots()
	// A segment merges away iff it is a child containing a star edge.
	starInSeg := make([]bool, n)
	core.SegOrDistribute(m, starInSeg, starSlot, g.Flags)
	merging := make([]bool, n)
	core.Par(m, n, func(i int) { merging[i] = starInSeg[i] && !parentSlot[i] })
	keeper := make([]bool, n)
	core.Par(m, n, func(i int) { keeper[i] = !merging[i] })

	// Record the contractions before anything moves.
	rec := recordMerges(m, g, starSlot, merging)

	// Step 1: sizes. Each keeper slot needs one cell, plus, if it is a
	// parent's star slot, room for the whole child segment right after
	// it ("each child passes its length across its star edge").
	ones := make([]int, n)
	core.Par(m, n, func(i int) { ones[i] = 1 })
	segLen := make([]int, n)
	core.SegPlusDistribute(m, segLen, ones, g.Flags)
	otherLen := make([]int, n)
	core.Gather(m, otherLen, segLen, g.Cross)
	otherMerging := make([]bool, n)
	core.Permute(m, otherMerging, merging, g.Cross)
	contrib := make([]int, n)
	core.Par(m, n, func(i int) {
		if !keeper[i] {
			return
		}
		contrib[i] = 1
		if starSlot[i] && otherMerging[i] {
			contrib[i] += otherLen[i]
		}
	})
	offset := make([]int, n)
	newTotal := core.PlusScan(m, offset, contrib)

	// Step 2: destinations. Keeper slots sit at their own offset; a
	// merging child's base (one past its parent's star slot) travels
	// across the star edge and is distributed over the child's segment.
	childBaseAtParent := make([]int, n)
	core.Par(m, n, func(i int) {
		if keeper[i] && starSlot[i] && otherMerging[i] {
			childBaseAtParent[i] = offset[i] + 1
		} else {
			childBaseAtParent[i] = math.MinInt
		}
	})
	baseAtChild := make([]int, n)
	core.Permute(m, baseAtChild, childBaseAtParent, g.Cross)
	base := make([]int, n)
	core.SegMaxDistribute(m, base, baseAtChild, g.Flags)
	rank := make([]int, n)
	core.SegRank(m, rank, g.Flags)
	newPos := make([]int, n)
	core.Par(m, n, func(i int) {
		if keeper[i] {
			newPos[i] = offset[i]
		} else {
			newPos[i] = base[i] + rank[i]
		}
	})

	// Permute every payload to its new position; newPos is a full
	// permutation onto the new layout (the machine's EREW check verifies
	// this on every run).
	out := &SegGraph{
		Flags:  make([]bool, newTotal),
		Cross:  make([]int, newTotal),
		Weight: make([]int, newTotal),
		EdgeID: make([]int, newTotal),
		Rep:    make([]int, newTotal),
	}
	core.Permute(m, out.Weight, g.Weight, newPos)
	core.Permute(m, out.EdgeID, g.EdgeID, newPos)
	repSlot := make([]int, n)
	core.SegCopy(m, repSlot, g.Rep, g.Flags)
	// A merged child's slots adopt the parent's representative; keeper
	// slots keep their own. Parent reps are read across the star edge.
	parentRepAtChildStar := make([]int, n)
	core.Permute(m, parentRepAtChildStar, repSlot, g.Cross)
	core.Par(m, n, func(i int) {
		if !merging[i] || !starSlot[i] {
			parentRepAtChildStar[i] = math.MinInt
		}
	})
	adopted := make([]int, n)
	core.SegMaxDistribute(m, adopted, parentRepAtChildStar, g.Flags)
	newRep := make([]int, n)
	core.Par(m, n, func(i int) {
		if merging[i] {
			newRep[i] = adopted[i]
		} else {
			newRep[i] = repSlot[i]
		}
	})
	core.Permute(m, out.Rep, newRep, newPos)
	// Step 3: update the cross-pointers ("pass the new position of each
	// end of an edge to the other end").
	partnerNew := make([]int, n)
	core.Gather(m, partnerNew, newPos, g.Cross)
	core.Permute(m, out.Cross, partnerNew, newPos)
	// New segment heads: the heads of keeper segments only.
	headFlags := make([]bool, n)
	core.Par(m, n, func(i int) { headFlags[i] = keeper[i] && g.Flags[i] })
	core.Permute(m, out.Flags, headFlags, newPos)

	// Step 4: delete edges that point within a segment.
	return deleteInternal(m, out), rec
}

// recordMerges packs the (childRep, parentRep, edgeID) triples of every
// star edge, read from the child side.
func recordMerges(m *core.Machine, g *SegGraph, starSlot, merging []bool) MergeRecord {
	n := g.Slots()
	repSlot := make([]int, n)
	core.SegCopy(m, repSlot, g.Rep, g.Flags)
	otherRep := make([]int, n)
	core.Permute(m, otherRep, repSlot, g.Cross)
	childStar := make([]bool, n)
	core.Par(m, n, func(i int) { childStar[i] = starSlot[i] && merging[i] })
	count := 0
	for _, f := range childStar {
		if f {
			count++
		}
	}
	rec := MergeRecord{
		ChildRep:  make([]int, count),
		ParentRep: make([]int, count),
		EdgeID:    make([]int, count),
	}
	core.Pack(m, rec.ChildRep, repSlot, childStar)
	core.Pack(m, rec.ParentRep, otherRep, childStar)
	core.Pack(m, rec.EdgeID, g.EdgeID, childStar)
	return rec
}

// deleteInternal removes every slot whose edge points within its own
// segment and repacks the representation, fixing the cross-pointers and
// flags. Segments left with no edges disappear.
func deleteInternal(m *core.Machine, g *SegGraph) *SegGraph {
	n := g.Slots()
	if n == 0 {
		return g
	}
	seg := make([]int, n)
	SegNumber(m, seg, g.Flags)
	otherSeg := make([]int, n)
	core.Gather(m, otherSeg, seg, g.Cross)
	keep := make([]bool, n)
	core.Par(m, n, func(i int) { keep[i] = seg[i] != otherSeg[i] })
	return Filter(m, g, keep)
}

// Filter repacks the representation keeping only the flagged slots,
// fixing cross-pointers and segment flags; segments losing every slot
// disappear. keep must be symmetric across edges (keep[i] ==
// keep[Cross[i]]), since half an edge cannot survive. O(1) program
// steps. The maximal-independent-set algorithm uses it to drop all edges
// incident to decided vertices.
func Filter(m *core.Machine, g *SegGraph, keep []bool) *SegGraph {
	n := g.Slots()
	if n == 0 {
		return g
	}
	seg := make([]int, n)
	SegNumber(m, seg, g.Flags)
	packedIdx := make([]int, n)
	kept := core.Enumerate(m, packedIdx, keep)
	out := &SegGraph{
		Flags:  make([]bool, kept),
		Cross:  make([]int, kept),
		Weight: make([]int, kept),
		EdgeID: make([]int, kept),
		Rep:    make([]int, kept),
	}
	if kept == 0 {
		return out
	}
	core.PermuteIf(m, out.Weight, g.Weight, packedIdx, keep)
	core.PermuteIf(m, out.EdgeID, g.EdgeID, packedIdx, keep)
	core.PermuteIf(m, out.Rep, g.Rep, packedIdx, keep)
	// An edge survives iff both its ends do (internal-ness is
	// symmetric), so the partner's packed position is well defined.
	partnerPacked := make([]int, n)
	core.Gather(m, partnerPacked, packedIdx, g.Cross)
	core.PermuteIf(m, out.Cross, partnerPacked, packedIdx, keep)
	segPacked := make([]int, kept)
	core.PermuteIf(m, segPacked, seg, packedIdx, keep)
	core.Par(m, kept, func(i int) {
		out.Flags[i] = i == 0 || segPacked[i] != segPacked[i-1]
	})
	return out
}
