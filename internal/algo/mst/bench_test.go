package mst

import (
	"fmt"
	"math/rand"
	"testing"

	"scans/internal/core"
)

// BenchmarkMST measures the star-merge MST against Kruskal, reporting
// rounds and program steps.
func BenchmarkMST(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10} {
		rng := rand.New(rand.NewSource(int64(n)))
		edges := randomConnectedGraph(rng, n, 2*n)
		b.Run(fmt.Sprintf("star-merge/n=%d", n), func(b *testing.B) {
			var steps int64
			var rounds int
			for i := 0; i < b.N; i++ {
				m := core.New()
				r := Run(m, n, edges, 7)
				steps, rounds = m.Steps(), r.Rounds
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("kruskal/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Kruskal(n, edges)
			}
		})
	}
}
