package mst

import (
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// randomConnectedGraph builds a connected graph: a random spanning tree
// plus extra random edges, with distinct weights so the MST is unique.
func randomConnectedGraph(rng *rand.Rand, n, extra int) []graph.Edge {
	weights := rng.Perm(n*n + extra + n)
	var edges []graph.Edge
	w := 0
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: weights[w] + 1})
		w++
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: weights[w] + 1})
		w++
	}
	return edges
}

func TestMSTSmallFixed(t *testing.T) {
	m := core.New()
	// A 4-cycle with a chord; unique MST = {0-1:1, 1-2:2, 2-3:3}.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 0, W: 10}, {U: 0, V: 2, W: 9},
	}
	got := Run(m, 4, edges, 1)
	want := Kruskal(4, edges)
	if !reflect.DeepEqual(got.EdgeIDs, want.EdgeIDs) {
		t.Errorf("MST edges = %v, want %v", got.EdgeIDs, want.EdgeIDs)
	}
	if got.Weight != 6 {
		t.Errorf("weight = %d, want 6", got.Weight)
	}
}

func TestMSTMatchesKruskalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(40)
		edges := randomConnectedGraph(rng, n, rng.Intn(3*n))
		m := core.New()
		got := Run(m, n, edges, int64(trial))
		want := Kruskal(n, edges)
		if !reflect.DeepEqual(got.EdgeIDs, want.EdgeIDs) {
			t.Fatalf("trial %d (n=%d): MST %v != Kruskal %v", trial, n, got.EdgeIDs, want.EdgeIDs)
		}
		if len(got.EdgeIDs) != n-1 {
			t.Fatalf("trial %d: %d edges for %d vertices", trial, len(got.EdgeIDs), n)
		}
	}
}

func TestMSTDuplicateWeights(t *testing.T) {
	// With ties the MST is not unique; compare total weight only.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: rng.Intn(4)})
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: rng.Intn(4)})
			}
		}
		m := core.New()
		got := Run(m, n, edges, int64(trial))
		want := Kruskal(n, edges)
		if got.Weight != want.Weight {
			t.Fatalf("trial %d: weight %d != Kruskal %d", trial, got.Weight, want.Weight)
		}
		if len(got.EdgeIDs) != n-1 {
			t.Fatalf("trial %d: tree has %d edges, want %d", trial, len(got.EdgeIDs), n-1)
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	m := core.New()
	// Two components: {0,1,2} and {3,4}; vertex 5 isolated.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 7},
		{U: 3, V: 4, W: 1},
	}
	got := Run(m, 6, edges, 3)
	want := Kruskal(6, edges)
	if !reflect.DeepEqual(got.EdgeIDs, want.EdgeIDs) {
		t.Errorf("forest = %v, want %v", got.EdgeIDs, want.EdgeIDs)
	}
	if len(got.EdgeIDs) != 3 {
		t.Errorf("forest edges = %d, want 3", len(got.EdgeIDs))
	}
}

func TestMSTEmptyAndSingle(t *testing.T) {
	m := core.New()
	got := Run(m, 1, nil, 0)
	if len(got.EdgeIDs) != 0 || got.Weight != 0 {
		t.Errorf("trivial MST = %+v", got)
	}
}

func TestMSTRoundsLogarithmic(t *testing.T) {
	// Expected O(lg n) rounds: with n = 256 vertices anything beyond
	// ~8 lg n indicates the random-mate contraction is not shrinking.
	rng := rand.New(rand.NewSource(52))
	edges := randomConnectedGraph(rng, 256, 512)
	m := core.New()
	got := Run(m, 256, edges, 7)
	if got.Rounds > 64 {
		t.Errorf("MST took %d rounds for n=256; expected O(lg n)", got.Rounds)
	}
}

func TestMSTStepCountScaling(t *testing.T) {
	// Table 1: O(lg n) steps (expected). Steps for 4x the vertices
	// should grow by roughly a constant factor of rounds, not by n.
	steps := func(n int) int64 {
		rng := rand.New(rand.NewSource(int64(n)))
		edges := randomConnectedGraph(rng, n, 2*n)
		m := core.New()
		Run(m, n, edges, 11)
		return m.Steps()
	}
	s64, s1024 := steps(64), steps(1024)
	if ratio := float64(s1024) / float64(s64); ratio > 4 {
		t.Errorf("steps grew %fx for 16x vertices; expected lg-like growth", ratio)
	}
}
