// Package mst implements the paper's probabilistic minimum-spanning-tree
// algorithm (§2.3.3): Sollin/Borůvka-style tree merging where, each
// round, every vertex flips a coin to become a child or a parent, every
// child tree finds its minimum edge with a segmented min-distribute, the
// edges that land on parents become star edges, and one O(1)-step
// star-merge contracts all stars at once. On average a quarter of the
// trees disappear per round, so the expected step complexity is O(lg n)
// — versus O(lg² n) on an EREW P-RAM.
package mst

import (
	"fmt"
	"math/rand"
	"sort"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// Result is a computed spanning forest.
type Result struct {
	// EdgeIDs indexes the input edge list: the chosen forest edges.
	EdgeIDs []int
	// Weight is the total weight of the forest.
	Weight int
	// Rounds is how many star-merge rounds ran.
	Rounds int
}

// Run computes a minimum spanning forest of the graph on machine m.
// Expected O(lg n) rounds of O(1) program steps each. The forest spans
// every connected component; isolated vertices contribute nothing.
func Run(m *core.Machine, numVertices int, edges []graph.Edge, seed int64) Result {
	g := graph.Build(m, numVertices, edges)
	rng := rand.New(rand.NewSource(seed))
	var res Result
	maxRounds := 64 * (bitsLen(numVertices) + 2)
	for round := 0; g.Slots() > 0; round++ {
		if round >= maxRounds {
			panic(fmt.Sprintf("mst: no convergence after %d rounds; star-merge bug", round))
		}
		res.Rounds++
		nv := g.Vertices()
		coins := make([]bool, nv)
		core.Par(m, nv, func(i int) { coins[i] = rng.Intn(2) == 0 })
		parentSlot := graph.DistributeVertexFlag(m, g, coins)
		star := graph.ChooseStarEdges(m, g, parentSlot, g.Weight)
		any := make([]bool, len(star))
		if !core.OrDistribute(m, any, star) {
			continue // unlucky coins: no stars formed this round
		}
		var rec graph.MergeRecord
		g, rec = graph.StarMerge(m, g, parentSlot, star)
		res.EdgeIDs = append(res.EdgeIDs, rec.EdgeID...)
	}
	for _, id := range res.EdgeIDs {
		res.Weight += edges[id].W
	}
	sort.Ints(res.EdgeIDs)
	return res
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// Kruskal is the serial reference implementation used to verify Run:
// sort the edges and grow a forest with union-find.
func Kruskal(numVertices int, edges []graph.Edge) Result {
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return edges[order[a]].W < edges[order[b]].W })
	parent := make([]int, numVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var res Result
	for _, id := range order {
		e := edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			res.EdgeIDs = append(res.EdgeIDs, id)
			res.Weight += e.W
		}
	}
	sort.Ints(res.EdgeIDs)
	return res
}
