// Package appendix implements the two historical scan applications from
// the paper's appendix ("A Short History of the Scan Operations"):
//
//   - Ofman's 1963 carry-lookahead binary addition — "the following
//     routine executes addition on two binary numbers with their bits
//     spread across two vectors A and B: (A ⊕ B) ⊕ seg-or-scan(A∧B, A⊕B)"
//     — the carry at each position resolved by one segmented scan rather
//     than a ripple, and
//
//   - Stone's 1971 polynomial evaluation on a perfect shuffle —
//     "A × ×-scan(copy(X))": distribute x, scan with multiplication to
//     form the powers of x, multiply by the coefficients, and sum.
//
// Both run on the scan-model machine in O(1) program steps.
package appendix

import (
	"scans/internal/core"
)

// AddBinary adds two n-bit binary numbers whose bits are spread across
// two vectors, least significant bit first (a[0] is the 2⁰ bit), and
// returns the n+1 result bits. The carry chain is Ofman's formulation:
// position i receives a carry iff some earlier position generated one
// (aᵢ ∧ bᵢ) and every position in between propagates (aᵢ ⊕ bᵢ) — which
// is exactly a segmented or-scan with the propagate bits as (inverted)
// segment boundaries.
func AddBinary(m *core.Machine, a, b []bool) []bool {
	n := len(a)
	if len(b) != n {
		panic("appendix: AddBinary: operand lengths differ")
	}
	generate := make([]bool, n)
	propagate := make([]bool, n)
	core.Par(m, n, func(i int) {
		generate[i] = a[i] && b[i]
		propagate[i] = a[i] != b[i]
	})
	// The carry into position i is decided by the *latest* position
	// before i that does not propagate: a carry arrives iff that
	// position generates. "Latest non-propagating position wins" is one
	// exclusive max-scan over keys that put the position index above the
	// generate bit — the same two-primitive encoding trick as the
	// paper's Figure 16.
	keys := make([]int, n)
	core.Par(m, n, func(i int) {
		if propagate[i] {
			keys[i] = core.MinIdentity // invisible to the max-scan
		} else {
			keys[i] = i << 1
			if generate[i] {
				keys[i] |= 1
			}
		}
	})
	last := make([]int, n)
	core.MaxScan(m, last, keys)
	carry := make([]bool, n)
	core.Par(m, n, func(i int) {
		carry[i] = last[i] != core.MinIdentity && last[i]&1 == 1
	})
	out := make([]bool, n+1)
	core.Par(m, n, func(i int) { out[i] = propagate[i] != carry[i] })
	// The carry out of the top bit.
	if n > 0 {
		out[n] = generate[n-1] || (propagate[n-1] && carry[n-1])
	}
	return out
}

// EvalPolynomial evaluates a polynomial with coefficient vector coeffs
// (coeffs[i] is the xⁱ coefficient) at the point x, Stone's way: copy x
// across a vector, ×-scan it to produce [1, x, x², ...], multiply by the
// coefficients elementwise, and +-distribute the total. O(1) program
// steps for any degree.
func EvalPolynomial(m *core.Machine, coeffs []float64, x float64) float64 {
	n := len(coeffs)
	if n == 0 {
		return 0
	}
	xs := make([]float64, n)
	core.Par(m, n, func(i int) {
		if i == 0 {
			xs[i] = x
		}
	})
	core.Copy(m, xs, xs)
	powers := make([]float64, n)
	core.FMulScan(m, powers, xs)
	terms := make([]float64, n)
	core.Par(m, n, func(i int) { terms[i] = coeffs[i] * powers[i] })
	tmp := make([]float64, n)
	m.Use(core.UseDistribute)
	return core.FPlusScan(m, tmp, terms)
}
