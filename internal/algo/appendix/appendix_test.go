package appendix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scans/internal/core"
)

func toBits(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

func fromBits(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestAddBinaryExhaustive6Bit(t *testing.T) {
	m := core.New()
	for a := uint64(0); a < 64; a++ {
		for b := uint64(0); b < 64; b++ {
			got := fromBits(AddBinary(m, toBits(a, 6), toBits(b, 6)))
			if got != a+b {
				t.Fatalf("%d + %d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

func TestAddBinaryRandomWide(t *testing.T) {
	m := core.New()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() >> 1 // keep the sum within 64 bits
		b := rng.Uint64() >> 1
		got := fromBits(AddBinary(m, toBits(a, 63), toBits(b, 63)))
		if got != a+b {
			t.Fatalf("%d + %d = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestAddBinaryProperty(t *testing.T) {
	m := core.New()
	prop := func(a, b uint32) bool {
		got := fromBits(AddBinary(m, toBits(uint64(a), 32), toBits(uint64(b), 32)))
		return got == uint64(a)+uint64(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAddBinaryConstantSteps(t *testing.T) {
	// Ofman's point: addition in O(1) scan steps regardless of width.
	m1 := core.New()
	AddBinary(m1, make([]bool, 8), make([]bool, 8))
	m2 := core.New()
	AddBinary(m2, make([]bool, 4096), make([]bool, 4096))
	if m1.Steps() != m2.Steps() {
		t.Errorf("steps grew with width: %d vs %d", m1.Steps(), m2.Steps())
	}
}

func TestAddBinaryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AddBinary(core.New(), make([]bool, 3), make([]bool, 4))
}

func TestEvalPolynomial(t *testing.T) {
	m := core.New()
	// 3 + 2x + x³ at x = 2: 3 + 4 + 8 = 15.
	if got := EvalPolynomial(m, []float64{3, 2, 0, 1}, 2); got != 15 {
		t.Errorf("poly(2) = %g, want 15", got)
	}
	if got := EvalPolynomial(m, nil, 5); got != 0 {
		t.Errorf("empty poly = %g", got)
	}
	if got := EvalPolynomial(m, []float64{7}, 100); got != 7 {
		t.Errorf("constant poly = %g", got)
	}
}

func TestEvalPolynomialMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := core.New()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		x := rng.NormFloat64()
		want := 0.0
		for i := n - 1; i >= 0; i-- {
			want = want*x + coeffs[i]
		}
		got := EvalPolynomial(m, coeffs, x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: %g vs Horner %g", trial, got, want)
		}
	}
}

func TestEvalPolynomialConstantSteps(t *testing.T) {
	m1 := core.New()
	EvalPolynomial(m1, make([]float64, 8), 1.5)
	m2 := core.New()
	EvalPolynomial(m2, make([]float64, 8192), 1.5)
	if m1.Steps() != m2.Steps() {
		t.Errorf("steps grew with degree: %d vs %d", m1.Steps(), m2.Steps())
	}
}
