package bicc

import "scans/internal/algo/graph"

// Serial is Tarjan's sequential biconnected-components algorithm
// (iterative DFS with an edge stack), the reference implementation Run
// is verified against. It returns a block label per edge; isolated
// vertices contribute nothing. Unlike Run it accepts disconnected
// graphs.
func Serial(numVertices int, edges []graph.Edge) []int {
	type half struct{ to, id int }
	adj := make([][]half, numVertices)
	for i, e := range edges {
		adj[e.U] = append(adj[e.U], half{e.V, i})
		adj[e.V] = append(adj[e.V], half{e.U, i})
	}
	labels := make([]int, len(edges))
	for i := range labels {
		labels[i] = -1
	}
	num := make([]int, numVertices)
	low := make([]int, numVertices)
	for i := range num {
		num[i] = -1
	}
	var edgeStack []int
	counter := 0
	nextBlock := 0

	type frame struct {
		v, parentEdge, childIdx int
	}
	for start := 0; start < numVertices; start++ {
		if num[start] != -1 {
			continue
		}
		stack := []frame{{v: start, parentEdge: -1}}
		num[start] = counter
		low[start] = counter
		counter++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.childIdx < len(adj[v]) {
				h := adj[v][f.childIdx]
				f.childIdx++
				if h.id == f.parentEdge {
					continue
				}
				if num[h.to] == -1 {
					edgeStack = append(edgeStack, h.id)
					num[h.to] = counter
					low[h.to] = counter
					counter++
					stack = append(stack, frame{v: h.to, parentEdge: h.id})
				} else if num[h.to] < num[v] {
					// A back (or parallel) edge, seen from below.
					edgeStack = append(edgeStack, h.id)
					if num[h.to] < low[v] {
						low[v] = num[h.to]
					}
				}
				continue
			}
			// v is done; fold into its parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[v] < low[p.v] {
				low[p.v] = low[v]
			}
			if low[v] >= num[p.v] {
				// p.v is an articulation point (or the root): pop the
				// block.
				for {
					id := edgeStack[len(edgeStack)-1]
					edgeStack = edgeStack[:len(edgeStack)-1]
					labels[id] = nextBlock
					if id == f.parentEdge {
						break
					}
				}
				nextBlock++
			}
		}
	}
	return labels
}
