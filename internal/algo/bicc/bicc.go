// Package bicc computes biconnected components with the Tarjan–Vishkin
// algorithm, the paper's Table 1 row "Biconnected Components": O(lg n)
// in the scan model versus O(lg² n) on an EREW P-RAM. The paper itself
// defers the algorithm to its companion references; this implementation
// composes it entirely from this repository's substrates:
//
//  1. a spanning tree from the star-merge engine (package mst),
//  2. an Euler tour of the tree threaded through the segmented graph
//     representation's cross-pointers, ranked by work-efficient list
//     ranking (package listrank) to give preorder numbers and subtree
//     sizes,
//  3. low/high labels — the extreme preorder numbers reachable from each
//     subtree through one non-tree edge — by a doubling sparse table
//     over the preorder sequence (O(lg n) elementwise steps),
//  4. the Tarjan–Vishkin auxiliary graph on the tree edges, whose
//     connected components (package cc) are exactly the biconnected
//     components.
//
// Output is a block label per input edge; two edges get equal labels iff
// they lie on a common simple cycle.
package bicc

import (
	"fmt"

	"scans/internal/algo/cc"
	"scans/internal/algo/graph"
	"scans/internal/algo/listrank"
	"scans/internal/algo/mst"
	"scans/internal/core"
)

// Run labels every edge of a connected graph with its biconnected
// component. Labels are arbitrary but consistent: equal label ⇔ same
// block. Panics if the graph is not connected (callers can split by
// component first) or has self-loops.
func Run(m *core.Machine, numVertices int, edges []graph.Edge, seed int64) []int {
	if numVertices == 0 {
		return nil
	}
	requireConnected(numVertices, edges)
	if len(edges) == 0 {
		return nil
	}

	// 1. A spanning tree (unit weights; any tree works for
	// Tarjan–Vishkin).
	unit := make([]graph.Edge, len(edges))
	core.Par(m, len(edges), func(i int) {
		unit[i] = graph.Edge{U: edges[i].U, V: edges[i].V, W: 1}
	})
	tree := mst.Run(m, numVertices, unit, seed)
	isTree := make([]bool, len(edges))
	for _, id := range tree.EdgeIDs {
		isTree[id] = true
	}

	pre, nd, parent := eulerNumbers(m, numVertices, edges, tree.EdgeIDs, seed)
	root := -1
	for v, p := range parent {
		if p == -1 {
			root = v
		}
	}

	low, high := lowHigh(m, numVertices, edges, isTree, pre, nd)

	// 4. The auxiliary graph: one vertex per non-root vertex w, standing
	// for the tree edge (parent(w), w).
	hasAux := make([]bool, len(edges))
	core.Par(m, len(edges), func(i int) {
		e := edges[i]
		v, w := e.U, e.V
		if pre[v] > pre[w] {
			v, w = w, v
		}
		if isTree[i] {
			// Rule B: tree edge (v, w), v = parent(w). If v is not the
			// root, the blocks of (p(v),v) and (v,w) merge when w's
			// subtree escapes v's subtree downward (low) or sideways
			// (high).
			hasAux[i] = v != root && (low[w] < pre[v] || high[w] >= pre[v]+nd[v])
			return
		}
		// Rule A: non-tree edge between unrelated vertices joins their
		// tree edges' blocks. (If v is an ancestor of w the connection
		// comes transitively through rule B.)
		hasAux[i] = pre[w] >= pre[v]+nd[v]
	})
	auxIdx := make([]int, len(edges))
	numAux := core.Enumerate(m, auxIdx, hasAux)
	aux := make([]graph.Edge, numAux)
	core.Par(m, len(edges), func(i int) {
		if hasAux[i] {
			aux[auxIdx[i]] = graph.Edge{U: edges[i].U, V: edges[i].V}
		}
	})
	blocks := cc.Labels(m, numVertices, aux, seed+1)

	// A tree edge is labeled by its child endpoint; a non-tree edge by
	// its later-preorder endpoint (its block contains that vertex's tree
	// edge).
	labels := make([]int, len(edges))
	core.Par(m, len(edges), func(i int) {
		e := edges[i]
		w := e.V
		if pre[e.U] > pre[e.V] {
			w = e.U
		}
		labels[i] = blocks[w]
	})
	return labels
}

// eulerNumbers builds the rooted structure of the spanning tree: each
// vertex's preorder number, subtree size, and parent (-1 for the root).
func eulerNumbers(m *core.Machine, numVertices int, edges []graph.Edge, treeIDs []int, seed int64) (pre, nd, parent []int) {
	treeEdges := make([]graph.Edge, len(treeIDs))
	core.Par(m, len(treeIDs), func(i int) { treeEdges[i] = edges[treeIDs[i]] })
	tg := graph.Build(m, numVertices, treeEdges)
	s := tg.Slots()

	// Euler tour: the successor of arc a = (u -> w) is the arc after
	// (w -> u) in w's adjacency segment, cyclically.
	headIdx := make([]int, s)
	core.SegHeadIndex(m, headIdx, tg.Flags)
	nextInSeg := make([]int, s)
	core.Par(m, s, func(i int) {
		if i+1 < s && !tg.Flags[i+1] {
			nextInSeg[i] = i + 1
		} else {
			nextInSeg[i] = headIdx[i]
		}
	})
	nxt := make([]int, s)
	core.Gather(m, nxt, nextInSeg, tg.Cross)
	// Cut the circuit before arc 0 (an arc out of the segment-order
	// first vertex, the root).
	isTail := make([]bool, s)
	core.Par(m, s, func(a int) { isTail[a] = nxt[a] == 0 })
	core.Par(m, s, func(a int) {
		if isTail[a] {
			nxt[a] = a
		}
	})
	rank := listrank.Contract(m, nxt, seed)
	pos := make([]int, s)
	core.Par(m, s, func(a int) { pos[a] = (s - 1) - rank[a] })

	// An advance arc is the first traversal of its edge.
	crossPos := make([]int, s)
	core.Gather(m, crossPos, pos, tg.Cross)
	advance := make([]bool, s)
	core.Par(m, s, func(a int) { advance[a] = pos[a] < crossPos[a] })

	// In Euler order: the exclusive count of advance arcs gives preorder
	// numbers and, differenced across an arc and its mate, subtree sizes.
	advE := make([]bool, s)
	core.Permute(m, advE, advance, pos)
	advCnt := make([]int, s)
	core.Enumerate(m, advCnt, advE)
	cntAt := make([]int, s) // per arc: advance arcs before its position
	core.Gather(m, cntAt, advCnt, pos)
	cntAtMate := make([]int, s)
	core.Gather(m, cntAtMate, cntAt, tg.Cross)

	// The head vertex of each slot's segment, and its mate's.
	repSlot := make([]int, s)
	core.SegCopy(m, repSlot, tg.Rep, tg.Flags)
	otherRep := make([]int, s)
	core.Gather(m, otherRep, repSlot, tg.Cross)

	pre = make([]int, numVertices)
	nd = make([]int, numVertices)
	parent = make([]int, numVertices)
	core.Par(m, numVertices, func(v int) { parent[v] = -1 })
	root := tg.Rep[0]
	pre[root] = 0
	nd[root] = numVertices
	core.Par(m, s, func(a int) {
		if !advance[a] {
			return
		}
		w := otherRep[a] // the arc runs u -> w; w is the child
		pre[w] = cntAt[a] + 1
		nd[w] = cntAtMate[a] - cntAt[a]
		parent[w] = repSlot[a]
	})
	if numVertices == 1 {
		pre[root], nd[root] = 0, 1
	}
	return pre, nd, parent
}

// lowHigh computes, for every vertex w, the minimum (low) and maximum
// (high) preorder number reachable from w's subtree directly or through
// a single non-tree edge, via per-vertex local extremes and a doubling
// sparse table over the preorder sequence.
func lowHigh(m *core.Machine, numVertices int, edges []graph.Edge, isTree []bool, pre, nd []int) (low, high []int) {
	// Local extremes over the full segmented representation: distribute
	// each vertex's preorder number across its slots, send it across the
	// cross-pointers, mask the tree edges, and take per-segment
	// min/max — all O(1) steps.
	localLow := make([]int, numVertices)
	localHigh := make([]int, numVertices)
	core.Par(m, numVertices, func(v int) {
		localLow[v] = pre[v]
		localHigh[v] = pre[v]
	})
	fg := graph.Build(m, numVertices, edges)
	s := fg.Slots()
	headPos := make([]int, fg.Vertices())
	core.PackIndex(m, headPos, fg.Flags)
	reps := make([]int, fg.Vertices())
	core.Pack(m, reps, fg.Rep, fg.Flags)
	preAtHeads := make([]int, fg.Vertices())
	core.Gather(m, preAtHeads, pre, reps)
	preHead := make([]int, s)
	core.Permute(m, preHead, preAtHeads, headPos)
	preSlot := make([]int, s)
	core.SegCopy(m, preSlot, preHead, fg.Flags)
	otherPre := make([]int, s)
	core.Permute(m, otherPre, preSlot, fg.Cross)
	maskedLow := make([]int, s)
	maskedHigh := make([]int, s)
	core.Par(m, s, func(i int) {
		if isTree[fg.EdgeID[i]] {
			maskedLow[i] = core.MaxIdentity
			maskedHigh[i] = core.MinIdentity
		} else {
			maskedLow[i] = otherPre[i]
			maskedHigh[i] = otherPre[i]
		}
	})
	segLow := make([]int, s)
	core.SegMinDistribute(m, segLow, maskedLow, fg.Flags)
	segHigh := make([]int, s)
	core.SegMaxDistribute(m, segHigh, maskedHigh, fg.Flags)
	core.Par(m, fg.Vertices(), func(i int) {
		v := reps[i]
		if l := segLow[headPos[i]]; l < localLow[v] {
			localLow[v] = l
		}
		if h := segHigh[headPos[i]]; h > localHigh[v] {
			localHigh[v] = h
		}
	})
	// Order by preorder and build min/max sparse tables: lg n doubling
	// levels, each one elementwise combine with a uniformly shifted
	// copy.
	lowByPre := make([]int, numVertices)
	highByPre := make([]int, numVertices)
	core.PermuteIf(m, lowByPre, localLow, pre, trueVec(m, numVertices))
	core.PermuteIf(m, highByPre, localHigh, pre, trueVec(m, numVertices))
	minTab := sparseTable(m, lowByPre, func(a, b int) int {
		if b < a {
			return b
		}
		return a
	})
	maxTab := sparseTable(m, highByPre, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	})
	low = make([]int, numVertices)
	high = make([]int, numVertices)
	core.Par(m, numVertices, func(v int) {
		lo, length := pre[v], nd[v]
		k := 0
		for 1<<uint(k+1) <= length {
			k++
		}
		a, b := lo, lo+length-1<<uint(k)
		low[v] = minTab[k][a]
		if minTab[k][b] < low[v] {
			low[v] = minTab[k][b]
		}
		high[v] = maxTab[k][a]
		if maxTab[k][b] > high[v] {
			high[v] = maxTab[k][b]
		}
	})
	return low, high
}

// sparseTable builds the doubling table: level k covers windows of
// length 2^k. Each level is one elementwise combine with a shifted
// gather — O(lg n) steps, O(n lg n) space, O(1)-step queries (with
// concurrent reads, as range-minimum queries inherently share cells).
func sparseTable(m *core.Machine, base []int, combine func(a, b int) int) [][]int {
	n := len(base)
	levels := 1
	for 1<<uint(levels) <= n {
		levels++
	}
	tab := make([][]int, levels)
	tab[0] = base
	for k := 1; k < levels; k++ {
		prev := tab[k-1]
		half := 1 << uint(k-1)
		cur := make([]int, n)
		core.Par(m, n, func(i int) {
			cur[i] = prev[i]
			if i+half < n {
				cur[i] = combine(prev[i], prev[i+half])
			}
		})
		tab[k] = cur
	}
	return tab
}

func trueVec(m *core.Machine, n int) []bool {
	v := make([]bool, n)
	core.Par(m, n, func(i int) { v[i] = true })
	return v
}

// requireConnected panics unless the graph is connected (host-side
// union-find validation; the algorithm's preconditions are the caller's
// contract, not part of the measured computation).
func requireConnected(numVertices int, edges []graph.Edge) {
	if numVertices <= 1 {
		return
	}
	parent := make([]int, numVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := numVertices
	for _, e := range edges {
		if ru, rv := find(e.U), find(e.V); ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	if comps != 1 {
		panic(fmt.Sprintf("bicc: graph has %d components; Run requires a connected graph", comps))
	}
}
