package bicc

import (
	"fmt"
	"math/rand"
	"testing"

	"scans/internal/algo/graph"
	"scans/internal/core"
)

// BenchmarkBicc measures Tarjan–Vishkin against the serial Tarjan.
func BenchmarkBicc(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10} {
		rng := rand.New(rand.NewSource(int64(n)))
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		b.Run(fmt.Sprintf("tarjan-vishkin/n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := core.New()
				Run(m, n, edges, 3)
				steps = m.Steps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
		b.Run(fmt.Sprintf("serial-tarjan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Serial(n, edges)
			}
		})
	}
}
