package bicc

import (
	"math/rand"
	"testing"

	"scans/internal/algo/cc"
	"scans/internal/algo/graph"
	"scans/internal/core"
)

func samePartition(t *testing.T, got, want []int, ctx string) {
	t.Helper()
	if !cc.SameComponents(got, want) {
		t.Fatalf("%s: block partition %v != serial %v", ctx, got, want)
	}
}

func TestBiccTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus a bridge 2-3: two blocks.
	m := core.New()
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}
	got := Run(m, 4, edges, 1)
	samePartition(t, got, Serial(4, edges), "triangle+tail")
	if got[0] != got[1] || got[1] != got[2] {
		t.Errorf("triangle edges not in one block: %v", got)
	}
	if got[3] == got[0] {
		t.Errorf("bridge merged into the triangle: %v", got)
	}
}

func TestBiccPath(t *testing.T) {
	// A path: every edge is its own block.
	m := core.New()
	n := 10
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	got := Run(m, n, edges, 2)
	seen := map[int]bool{}
	for _, l := range got {
		if seen[l] {
			t.Fatalf("path edges share a block: %v", got)
		}
		seen[l] = true
	}
}

func TestBiccCycle(t *testing.T) {
	// A cycle: one block.
	m := core.New()
	n := 12
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: (i + 1) % n}
	}
	got := Run(m, n, edges, 3)
	for _, l := range got {
		if l != got[0] {
			t.Fatalf("cycle split into blocks: %v", got)
		}
	}
}

func TestBiccTwoCyclesSharingAVertex(t *testing.T) {
	// Figure-eight: two triangles sharing vertex 0 — the classic
	// articulation point.
	m := core.New()
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	}
	got := Run(m, 5, edges, 4)
	samePartition(t, got, Serial(5, edges), "figure-eight")
}

func TestBiccParallelEdges(t *testing.T) {
	// Two parallel edges form a cycle, hence one block; a pendant edge
	// is another.
	m := core.New()
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}}
	got := Run(m, 3, edges, 5)
	samePartition(t, got, Serial(3, edges), "parallel")
	if got[0] != got[1] {
		t.Errorf("parallel edges in different blocks: %v", got)
	}
}

func TestBiccRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		// A random spanning tree keeps it connected; extra edges create
		// blocks.
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		m := core.New()
		got := Run(m, n, edges, int64(trial))
		samePartition(t, got, Serial(n, edges), "random trial")
	}
}

func TestBiccDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	n := 30
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	// Ensure connectivity.
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: v - 1, V: v})
	}
	m := core.New()
	got := Run(m, n, edges, 9)
	samePartition(t, got, Serial(n, edges), "dense")
}

func TestBiccSingleEdgeAndEmpty(t *testing.T) {
	m := core.New()
	got := Run(m, 2, []graph.Edge{{U: 0, V: 1}}, 0)
	if len(got) != 1 {
		t.Errorf("single edge labels = %v", got)
	}
	if out := Run(m, 1, nil, 0); len(out) != 0 {
		t.Errorf("single vertex labels = %v", out)
	}
	if out := Run(m, 0, nil, 0); out != nil {
		t.Errorf("empty graph labels = %v", out)
	}
}

func TestBiccRejectsDisconnected(t *testing.T) {
	m := core.New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for disconnected input")
		}
	}()
	Run(m, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, 0)
}

func TestBiccStepScaling(t *testing.T) {
	// Table 1: O(lg n) expected steps in the scan model.
	rng := rand.New(rand.NewSource(142))
	steps := func(n int) int64 {
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		m := core.New()
		Run(m, n, edges, 11)
		return m.Steps()
	}
	s256, s1024 := steps(256), steps(1024)
	if ratio := float64(s1024) / float64(s256); ratio > 2.5 {
		t.Errorf("bicc steps grew %.1fx for 4x vertices; want lg-like", ratio)
	}
}

func TestSerialAgainstBruteForce(t *testing.T) {
	// The serial reference itself, validated on tiny graphs against the
	// definition: two edges share a block iff they lie on a common
	// simple cycle. Checked via: removing any single vertex leaves the
	// two edges connected in the remaining graph.
	rng := rand.New(rand.NewSource(143))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(7)
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v})
		}
		for e := 0; e < rng.Intn(n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		labels := Serial(n, edges)
		for i := range edges {
			for j := i + 1; j < len(edges); j++ {
				same := labels[i] == labels[j]
				want := onCommonCycle(n, edges, i, j)
				if same != want {
					t.Fatalf("trial %d: edges %d,%d same-block=%v, brute=%v (%v)",
						trial, i, j, same, want, edges)
				}
			}
		}
	}
}

// onCommonCycle brute-forces the biconnectivity relation: edges e1 and
// e2 are in one block iff they lie on a common simple cycle. For the
// tiny graphs tested, check equivalently: e1 and e2 remain connected
// edge-to-edge after removing any single vertex that is not an endpoint
// shared... Implemented directly as: in the subgraph, is there a cycle
// through both edges — via path search between the edges' endpoints
// avoiding reuse.
func onCommonCycle(n int, edges []graph.Edge, e1, e2 int) bool {
	// Standard characterization: e1 ~ e2 (same block) iff e1 == e2 or
	// there is a simple cycle containing both. Search: try all simple
	// cycles through e1 and check e2 membership — exponential but the
	// graphs are tiny.
	adj := make([][]int, n)
	for id, e := range edges {
		adj[e.U] = append(adj[e.U], id)
		adj[e.V] = append(adj[e.V], id)
	}
	other := func(id, v int) int {
		if edges[id].U == v {
			return edges[id].V
		}
		return edges[id].U
	}
	// Walk simple paths from e1.V back to e1.U without reusing edges or
	// intermediate vertices; a path using e2 completes a qualifying
	// cycle.
	usedE := make([]bool, len(edges))
	usedV := make([]bool, n)
	start, goal := edges[e1].V, edges[e1].U
	usedE[e1] = true
	var dfs func(v int, usedE2 bool) bool
	dfs = func(v int, usedE2 bool) bool {
		if v == goal {
			return usedE2
		}
		usedV[v] = true
		defer func() { usedV[v] = false }()
		for _, id := range adj[v] {
			if usedE[id] {
				continue
			}
			w := other(id, v)
			if w != goal && usedV[w] {
				continue
			}
			usedE[id] = true
			ok := dfs(w, usedE2 || id == e2)
			usedE[id] = false
			if ok {
				return true
			}
		}
		return false
	}
	return dfs(start, false)
}
