// Package spmv implements sparse matrix–vector multiplication with
// segmented scans: the canonical demonstration of why the paper's
// segmented operations matter for irregular data. Rows of a compressed
// sparse matrix become segments; the product is one gather, one
// elementwise multiply, and one segmented +-distribute — O(1) program
// steps regardless of how unevenly the nonzeros spread across rows
// (where a row-per-processor scheme would stall on the longest row).
package spmv

import (
	"fmt"

	"scans/internal/core"
)

// Matrix is a sparse matrix in CSR-like segmented form.
type Matrix struct {
	Rows, Cols int
	// RowStart[r] is the offset of row r's nonzeros; len == Rows+1.
	RowStart []int
	// Col and Val hold the nonzeros' column indices and values.
	Col []int
	Val []float64
}

// NewMatrix validates and wraps CSR data.
func NewMatrix(rows, cols int, rowStart, col []int, val []float64) *Matrix {
	if len(rowStart) != rows+1 {
		panic(fmt.Sprintf("spmv: RowStart has %d entries for %d rows", len(rowStart), rows))
	}
	if rowStart[0] != 0 || rowStart[rows] != len(col) || len(col) != len(val) {
		panic("spmv: inconsistent CSR structure")
	}
	for r := 0; r < rows; r++ {
		if rowStart[r] > rowStart[r+1] {
			panic(fmt.Sprintf("spmv: RowStart not monotone at row %d", r))
		}
	}
	for i, c := range col {
		if c < 0 || c >= cols {
			panic(fmt.Sprintf("spmv: column %d out of range at nonzero %d", c, i))
		}
	}
	return &Matrix{Rows: rows, Cols: cols, RowStart: rowStart, Col: col, Val: val}
}

// MulVec computes y = A·x on machine m in O(1) program steps with one
// virtual processor per nonzero. Note the reads of x are concurrent
// when a column holds several nonzeros — the same single concurrent
// access the paper grants its line-drawing routine.
func (a *Matrix) MulVec(m *core.Machine, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("spmv: x has %d entries for %d columns", len(x), a.Cols))
	}
	nnz := len(a.Val)
	y := make([]float64, a.Rows)
	if nnz == 0 {
		return y
	}
	// Segment flags from the row structure (empty rows own no segment
	// and contribute zero).
	flags := make([]bool, nnz)
	nonEmpty := make([]bool, a.Rows)
	heads := make([]int, a.Rows)
	core.Par(m, a.Rows, func(r int) {
		nonEmpty[r] = a.RowStart[r] < a.RowStart[r+1]
		heads[r] = a.RowStart[r]
	})
	trues := make([]bool, a.Rows)
	core.Par(m, a.Rows, func(r int) { trues[r] = true })
	core.PermuteIf(m, flags, trues, heads, nonEmpty)
	// Gather x through the column indices and multiply.
	xe := make([]float64, nnz)
	core.GatherShared(m, xe, x, a.Col)
	prod := make([]float64, nnz)
	core.Par(m, nnz, func(i int) { prod[i] = a.Val[i] * xe[i] })
	// Per-row totals: segmented +-scan read at the segment tails.
	partial := make([]float64, nnz)
	core.SegFPlusScan(m, partial, prod, flags)
	core.Par(m, nnz, func(i int) { partial[i] += prod[i] })
	core.Par(m, a.Rows, func(r int) {
		if nonEmpty[r] {
			y[r] = partial[a.RowStart[r+1]-1]
		}
	})
	return y
}

// MulVecSerial is the obvious reference implementation.
func (a *Matrix) MulVecSerial(x []float64) []float64 {
	y := make([]float64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		var s float64
		for i := a.RowStart[r]; i < a.RowStart[r+1]; i++ {
			s += a.Val[i] * x[a.Col[i]]
		}
		y[r] = s
	}
	return y
}
