package spmv

import (
	"math"
	"math/rand"
	"testing"

	"scans/internal/core"
)

func buildRandom(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	rowStart := make([]int, rows+1)
	var col []int
	var val []float64
	for r := 0; r < rows; r++ {
		rowStart[r] = len(col)
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				col = append(col, c)
				val = append(val, rng.NormFloat64())
			}
		}
	}
	rowStart[rows] = len(col)
	return NewMatrix(rows, cols, rowStart, col, val)
}

func almost(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestMulVecSmall(t *testing.T) {
	// [[1 0 2] [0 0 0] [3 4 0]] * [1 2 3] = [7, 0, 11].
	a := NewMatrix(3, 3, []int{0, 2, 2, 4}, []int{0, 2, 0, 1}, []float64{1, 2, 3, 4})
	m := core.New()
	y := a.MulVec(m, []float64{1, 2, 3})
	if !almost(y, []float64{7, 0, 11}) {
		t.Errorf("MulVec = %v, want [7 0 11]", y)
	}
}

func TestMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(50), 1+rng.Intn(50)
		a := buildRandom(rng, rows, cols, rng.Float64()*0.3)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		m := core.New()
		if !almost(a.MulVec(m, x), a.MulVecSerial(x)) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestMulVecSkewedRows(t *testing.T) {
	// One row holds nearly all nonzeros — the load-imbalance case
	// segmented scans exist for.
	cols := 1000
	rowStart := []int{0, cols, cols, cols + 1}
	col := make([]int, cols+1)
	val := make([]float64, cols+1)
	for c := 0; c < cols; c++ {
		col[c] = c
		val[c] = 1
	}
	col[cols] = 7
	val[cols] = 2
	a := NewMatrix(3, cols, rowStart, col, val)
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1
	}
	m := core.New()
	y := a.MulVec(m, x)
	if !almost(y, []float64{1000, 0, 2}) {
		t.Errorf("skewed = %v", y)
	}
}

func TestMulVecConstantSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	steps := func(rows int) int64 {
		a := buildRandom(rng, rows, rows, 0.1)
		m := core.New()
		a.MulVec(m, make([]float64, rows))
		return m.Steps()
	}
	if s1, s2 := steps(32), steps(512); s1 != s2 {
		t.Errorf("spmv steps grew with size: %d vs %d", s1, s2)
	}
}

func TestMulVecEmptyMatrix(t *testing.T) {
	a := NewMatrix(2, 3, []int{0, 0, 0}, nil, nil)
	m := core.New()
	y := a.MulVec(m, []float64{1, 2, 3})
	if !almost(y, []float64{0, 0}) {
		t.Errorf("empty = %v", y)
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"rowstart-len":   func() { NewMatrix(2, 2, []int{0, 1}, []int{0}, []float64{1}) },
		"non-monotone":   func() { NewMatrix(2, 2, []int{0, 2, 1}, []int{0}, []float64{1}) },
		"col-range":      func() { NewMatrix(1, 2, []int{0, 1}, []int{5}, []float64{1}) },
		"len-mismatch":   func() { NewMatrix(1, 2, []int{0, 1}, []int{0}, []float64{1, 2}) },
		"x-wrong-length": func() { buildRandom(rand.New(rand.NewSource(1)), 3, 3, 0.5).MulVec(core.New(), []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
