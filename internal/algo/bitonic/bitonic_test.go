package bitonic

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"scans/internal/core"
)

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1000, 1024} {
		m := core.New()
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(1000) - 500
		}
		got := Sort(m, keys)
		want := make([]int, n)
		copy(want, keys)
		sort.Ints(want)
		if len(got) != n {
			t.Fatalf("n=%d: wrong length %d", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: bitonic machine sort wrong: %v", n, got)
		}
	}
}

func TestStepsGrowAsLgSquared(t *testing.T) {
	// O(lg² n) steps: each stage is a constant number of primitives and
	// there are k(k+1)/2 stages.
	steps := func(n int) int64 {
		m := core.New()
		Sort(m, make([]int, n))
		return m.Steps()
	}
	s256, s65536 := steps(256), steps(65536)
	// k: 8 -> 36 stages; 16 -> 136 stages. Ratio of stage counts ~3.78.
	ratio := float64(s65536) / float64(s256)
	if ratio < 3 || ratio > 4.5 {
		t.Errorf("step ratio 64K/256 = %.2f, want ~3.8 (lg² growth)", ratio)
	}
}

func TestStages(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {8, 6}, {9, 10}, {1 << 16, 136}} {
		if got := Stages(c.n); got != c.want {
			t.Errorf("Stages(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSortParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range []int{1, 4, 0} {
		keys := make([]int, 1<<14)
		for i := range keys {
			keys[i] = rng.Int()
		}
		SortParallel(keys, w)
		if !sort.IntsAreSorted(keys) {
			t.Fatalf("workers=%d: parallel bitonic failed", w)
		}
	}
	SortParallel(nil, 1)
	SortParallel([]int{1}, 1)
}

func TestSortParallelRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SortParallel(make([]int, 3), 1)
}
