// Package bitonic implements Batcher's bitonic sort on the scan-model
// machine, the paper's Table 4 comparison baseline. Each of the
// lg n (lg n + 1)/2 comparator stages is one gather plus one elementwise
// compare-exchange, so the sort takes O(lg² n) program steps — versus
// O(d) for the split radix sort — on any of the machine's cost models
// (bitonic uses no scans, so the models price it identically).
package bitonic

import (
	"math/bits"
	"runtime"
	"sync"

	"scans/internal/core"
)

// Sort sorts keys ascending on machine m, padding internally to a power
// of two, and returns the sorted vector. O(lg² n) program steps.
func Sort(m *core.Machine, keys []int) []int {
	orig := len(keys)
	if orig == 0 {
		return nil
	}
	n := 1
	for n < orig {
		n *= 2
	}
	a := make([]int, n)
	copy(a, keys)
	// Pad with the maximum so the padding sorts to the top and the
	// prefix is exactly the sorted input.
	pad := make([]int, orig)
	hi := core.MaxDistribute(m, pad, keys)
	core.Par(m, n-orig, func(i int) { a[orig+i] = hi })

	partner := make([]int, n)
	pval := make([]int, n)
	for kk := 2; kk <= n; kk *= 2 {
		for jj := kk / 2; jj > 0; jj /= 2 {
			kkc, jjc := kk, jj
			core.Par(m, n, func(i int) { partner[i] = i ^ jjc })
			core.Gather(m, pval, a, partner)
			core.Par(m, n, func(i int) {
				// i and its partner differ only in bit jj < kk, so both
				// agree on the block direction bit.
				wantMin := (i&kkc == 0) == (i < partner[i])
				if (pval[i] < a[i]) == wantMin {
					a[i] = pval[i]
				}
			})
		}
	}
	return a[:orig]
}

// Stages returns the comparator-stage count the machine version executes
// for n keys (after padding to a power of two).
func Stages(n int) int {
	if n <= 1 {
		return 0
	}
	p := 1
	for p < n {
		p *= 2
	}
	k := bits.Len(uint(p)) - 1
	return k * (k + 1) / 2
}

// SortParallel is a plain goroutine-parallel bitonic sort used for
// wall-clock comparisons, with no machine accounting. workers <= 0 means
// GOMAXPROCS. It sorts in place; len(keys) must be a power of two.
func SortParallel(keys []int, workers int) {
	n := len(keys)
	if n <= 1 {
		return
	}
	if n&(n-1) != 0 {
		panic("bitonic: SortParallel: length must be a power of two")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	apply := func(kk, jj int) {
		if workers == 1 || n < 8192 {
			for i := 0; i < n; i++ {
				compareExchange(keys, i, jj, kk)
			}
			return
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo, hi := w*n/workers, (w+1)*n/workers
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					compareExchange(keys, i, jj, kk)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	for kk := 2; kk <= n; kk *= 2 {
		for jj := kk / 2; jj > 0; jj /= 2 {
			apply(kk, jj)
		}
	}
}

func compareExchange(keys []int, i, jj, kk int) {
	l := i ^ jj
	if l <= i {
		return
	}
	if (i&kk == 0 && keys[i] > keys[l]) || (i&kk != 0 && keys[i] < keys[l]) {
		keys[i], keys[l] = keys[l], keys[i]
	}
}
