// Package tables regenerates the tables of the paper's evaluation:
// each TableN function runs the relevant workloads on the step-counted
// machine (or the gate-level simulators) and renders the same rows the
// paper reports. cmd/scantables prints them; the repository-root
// benchmarks measure them.
package tables

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"scans/internal/algo/bicc"
	"scans/internal/algo/bitonic"
	"scans/internal/algo/cc"
	"scans/internal/algo/closest"
	"scans/internal/algo/graph"
	"scans/internal/algo/hull"
	"scans/internal/algo/kdtree"
	"scans/internal/algo/lines"
	"scans/internal/algo/listrank"
	"scans/internal/algo/los"
	"scans/internal/algo/matrix"
	"scans/internal/algo/maxflow"
	"scans/internal/algo/merge"
	"scans/internal/algo/mis"
	"scans/internal/algo/mst"
	"scans/internal/algo/qsort"
	"scans/internal/algo/radix"
	"scans/internal/algo/treecontract"
	"scans/internal/circuit"
	"scans/internal/core"
	"scans/internal/network"
)

// Algorithm is one Table 1 row: a named workload runnable at any size on
// a given machine.
type Algorithm struct {
	Name string
	// Paper's claimed step complexities (EREW, CRCW, Scan columns).
	EREW, CRCW, Scan string
	// Run executes the workload for problem size n on machine m.
	Run func(m *core.Machine, n int, seed int64)
}

// Algorithms lists every Table 1 row this repository implements — all
// of them, including Biconnected Components and Maximum Flow, which the
// paper defers to its companion references.
func Algorithms() []Algorithm {
	return []Algorithm{
		{
			Name: "Minimum Spanning Tree", EREW: "lg^2 n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				mst.Run(m, n, randomConnected(n, seed), seed)
			},
		},
		{
			Name: "Connected Components", EREW: "lg^2 n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				cc.Labels(m, n, randomConnected(n, seed), seed)
			},
		},
		{
			Name: "Maximal Independent Set", EREW: "lg^2 n", CRCW: "lg^2 n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				mis.Run(m, n, randomConnected(n, seed), seed)
			},
		},
		{
			Name: "Biconnected Components", EREW: "lg^2 n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				bicc.Run(m, n, randomConnected(n, seed), seed)
			},
		},
		{
			Name: "Maximum Flow", EREW: "n^2 lg n", CRCW: "n^2 lg n", Scan: "n^2",
			Run: func(m *core.Machine, n int, seed int64) {
				// n here is the processor count; the flow network has
				// √n vertices on a dense capacity matrix.
				d := isqrt(n)
				rng := rand.New(rand.NewSource(seed))
				capm := make([]int, d*d)
				for u := 0; u < d; u++ {
					for v := 0; v < d; v++ {
						if u != v && rng.Intn(3) == 0 {
							capm[u*d+v] = 1 + rng.Intn(9)
						}
					}
				}
				if d >= 2 {
					maxflow.Run(m, capm, d, 0, d-1)
				}
			},
		},
		{
			Name: "Sorting (split radix)", EREW: "lg n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				keys := randomInts(n, n, seed) // O(lg n)-bit keys
				radix.Sort(m, keys, radix.BitsFor(keys))
			},
		},
		{
			Name: "Sorting (quicksort)", EREW: "lg n", CRCW: "lg n", Scan: "lg n (exp)",
			Run: func(m *core.Machine, n int, seed int64) {
				qsort.Sort(m, randomFloats(n, seed), qsort.Options{Seed: seed})
			},
		},
		{
			Name: "Merging (halving merge)", EREW: "lg n", CRCW: "lg lg n", Scan: "lg lg n*",
			Run: func(m *core.Machine, n int, seed int64) {
				a := sortedInts(n/2, seed)
				b := sortedInts(n-n/2, seed+1)
				merge.Merge(m, a, b)
			},
		},
		{
			Name: "Convex Hull", EREW: "lg n", CRCW: "lg n", Scan: "lg n (exp)",
			Run: func(m *core.Machine, n int, seed int64) {
				hull.QuickHull(m, randomHullPoints(n, seed))
			},
		},
		{
			Name: "Building a K-D Tree", EREW: "lg^2 n", CRCW: "lg^2 n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				kdtree.Build(m, randomGrid(n, seed), 1)
			},
		},
		{
			Name: "Closest Pair in the Plane", EREW: "lg^2 n", CRCW: "lg n lg lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				pts := randomGrid(n, seed)
				cp := make([]closest.Point, n)
				for i, p := range pts {
					cp[i] = closest.Point{X: p.X, Y: p.Y}
				}
				closest.Run(m, cp)
			},
		},
		{
			Name: "Line of Sight", EREW: "lg n", CRCW: "lg n", Scan: "1",
			Run: func(m *core.Machine, n int, seed int64) {
				los.Visible(m, randomFloats(n, seed))
			},
		},
		{
			Name: "Line Drawing", EREW: "lg n", CRCW: "lg n", Scan: "1",
			Run: func(m *core.Machine, n int, seed int64) {
				rng := rand.New(rand.NewSource(seed))
				ls := make([]lines.Line, n/16+1)
				for i := range ls {
					ls[i] = lines.Line{
						From: lines.Point{X: rng.Intn(256), Y: rng.Intn(256)},
						To:   lines.Point{X: rng.Intn(256), Y: rng.Intn(256)},
					}
				}
				lines.Draw(m, ls)
			},
		},
		{
			Name: "List Ranking", EREW: "lg n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				listrank.Contract(m, randomListNext(n, seed), seed)
			},
		},
		{
			Name: "Tree Contraction", EREW: "lg n", CRCW: "lg n", Scan: "lg n",
			Run: func(m *core.Machine, n int, seed int64) {
				treecontract.Eval(m, randomExprTree(n, seed))
			},
		},
		{
			Name: "Matrix x Matrix", EREW: "n", CRCW: "n", Scan: "n",
			Run: func(m *core.Machine, n int, seed int64) {
				d := isqrt(n)
				matrix.MatMat(m, randomFloats(d*d, seed), randomFloats(d*d, seed+1), d)
			},
		},
		{
			Name: "Vector x Matrix", EREW: "lg n", CRCW: "lg n", Scan: "1",
			Run: func(m *core.Machine, n int, seed int64) {
				d := isqrt(n)
				matrix.VecMat(m, randomFloats(d, seed), randomFloats(d*d, seed+1), d, d)
			},
		},
		{
			Name: "Linear Systems (pivoting)", EREW: "n lg n", CRCW: "n lg n", Scan: "n",
			Run: func(m *core.Machine, n int, seed int64) {
				d := isqrt(n)
				a := randomFloats(d*d, seed)
				for i := 0; i < d; i++ {
					a[i*d+i] += float64(d) // diagonally dominant: nonsingular
				}
				if _, err := matrix.Solve(m, a, randomFloats(d, seed+1), d); err != nil {
					panic(err)
				}
			},
		},
	}
}

// Table1Row is one measured Table 1 row.
type Table1Row struct {
	Name             string
	EREW, CRCW, Scan string  // the paper's claimed complexities
	StepsScan        []int64 // measured steps under ModelScan per size
	StepsEREW        []int64 // measured steps under ModelEREW per size
}

// Table1 measures every implemented algorithm at the given problem sizes
// under both cost models.
func Table1(sizes []int) []Table1Row {
	var rows []Table1Row
	for _, alg := range Algorithms() {
		row := Table1Row{Name: alg.Name, EREW: alg.EREW, CRCW: alg.CRCW, Scan: alg.Scan}
		for _, n := range sizes {
			ms := core.New(core.WithModel(core.ModelScan))
			alg.Run(ms, n, 42)
			row.StepsScan = append(row.StepsScan, ms.Steps())
			me := core.New(core.WithModel(core.ModelEREW))
			alg.Run(me, n, 42)
			row.StepsEREW = append(row.StepsEREW, me.Steps())
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders Table 1 in the paper's layout plus the measured
// step counts.
func FormatTable1(sizes []int, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: step complexity, paper's claims and measured program steps\n")
	fmt.Fprintf(&b, "(measured at n = %v; EREW column = same run charged EREW scan costs)\n\n", sizes)
	fmt.Fprintf(&b, "%-28s %10s %12s %10s |", "Algorithm", "EREW", "CRCW", "Scan")
	for _, n := range sizes {
		fmt.Fprintf(&b, " scan@%-7d", n)
	}
	b.WriteString(" |")
	for _, n := range sizes {
		fmt.Fprintf(&b, " erew@%-7d", n)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10s %12s %10s |", r.Name, "O("+r.EREW+")", "O("+r.CRCW+")", "O("+r.Scan+")")
		for _, s := range r.StepsScan {
			fmt.Fprintf(&b, " %-12d", s)
		}
		b.WriteString(" |")
		for _, s := range r.StepsEREW {
			fmt.Fprintf(&b, " %-12d", s)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n* the halving merge is O(n/p + lg n); with p = n it runs in O(lg n) steps.\n")
	return b.String()
}

// --- workload generators ---

func randomInts(n, span int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	v := make([]int, n)
	for i := range v {
		v[i] = rng.Intn(span + 1)
	}
	return v
}

func randomFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() * 100
	}
	return v
}

func sortedInts(n int, seed int64) []int {
	v := randomInts(n, 1<<20, seed)
	sort.Ints(v)
	return v
}

func randomConnected(n int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	weights := rng.Perm(4 * n)
	w := 0
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: weights[w%len(weights)] + 1})
		w++
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: weights[w%len(weights)] + 1})
			w++
		}
	}
	return edges
}

func randomHullPoints(n int, seed int64) []hull.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]hull.Point, n)
	for i := range pts {
		pts[i] = hull.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func randomGrid(n int, seed int64) []kdtree.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]kdtree.Point, n)
	for i := range pts {
		pts[i] = kdtree.Point{X: rng.Intn(1 << 16), Y: rng.Intn(1 << 16)}
	}
	return pts
}

func randomListNext(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[n-1]] = order[n-1]
	return next
}

func randomExprTree(n int, seed int64) *treecontract.Tree {
	rng := rand.New(rand.NewSource(seed))
	nLeaves := n/2 + 1
	total := 2*nLeaves - 1
	t := &treecontract.Tree{
		Parent: make([]int, total), Left: make([]int, total),
		Right: make([]int, total), Ops: make([]treecontract.Op, total),
		Value: make([]float64, total),
	}
	for i := range t.Parent {
		t.Parent[i], t.Left[i], t.Right[i] = -1, -1, -1
	}
	next := 0
	var grow func(k int) int
	grow = func(k int) int {
		v := next
		next++
		if k == 1 {
			t.Value[v] = rng.Float64()
			return v
		}
		lk := 1 + rng.Intn(k-1)
		if rng.Intn(4) == 0 {
			t.Ops[v] = treecontract.OpMul
		}
		l := grow(lk)
		r := grow(k - lk)
		t.Left[v], t.Right[v] = l, r
		t.Parent[l], t.Parent[r] = v, v
		return v
	}
	t.Root = grow(nLeaves)
	return t
}

func isqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	if r < 1 {
		r = 1
	}
	return r
}

// --- Table 2 ---

// Table2 compares the scan tree against the routing network at the
// paper's scale: nProc processors, wordBits-bit words.
type Table2Result struct {
	NProc, WordBits int
	// Cycles.
	ScanCycles      int // bit-pipelined tree +-scan
	MaxScanCycles   int
	RouteCyclesBest int // one conflict-free pass
	RouteCyclesPerm int // measured on a random permutation
	RoutePasses     int
	// Hardware.
	ScanUnits         int
	ScanStateMachines int
	ScanShiftBits     int
	RouterSwitches    int
	// Hardware ratio: scan tree hardware / router hardware, the paper's
	// "percent of hardware" comparison (30% router vs ~0% scan on CM-2).
	HardwareRatio float64
}

// Table2 runs the comparison. For nProc above 2^14 the routing
// simulation routes a random permutation at size 2^14 and extrapolates
// the pass count (the cycle formula is exact either way).
func Table2(nProc, wordBits int, seed int64) Table2Result {
	r := Table2Result{NProc: nProc, WordBits: wordBits}
	r.ScanCycles = circuit.Cycles(circuit.OpPlus, nProc, wordBits)
	r.MaxScanCycles = circuit.Cycles(circuit.OpMax, nProc, wordBits)
	simN := nProc
	if simN > 1<<14 {
		simN = 1 << 14
	}
	o := network.NewOmega(simN)
	rng := rand.New(rand.NewSource(seed))
	res := o.Route(rng.Perm(simN), wordBits)
	full := network.NewOmega(nProc)
	r.RouteCyclesBest = full.CyclesPerPass(wordBits)
	r.RoutePasses = res.Passes
	r.RouteCyclesPerm = res.Passes * full.CyclesPerPass(wordBits)
	tree := circuit.NewTree(nProc)
	h := tree.Hardware()
	r.ScanUnits = h.Units
	r.ScanStateMachines = h.StateMachines
	r.ScanShiftBits = h.ShiftRegisterBits
	r.RouterSwitches = full.Hardware().Switches
	// Rough gate-count proxy: a 2x2 switch is an order of magnitude more
	// logic than a 3-flip-flop sum state machine; compare raw element
	// counts conservatively (1 switch ~ 1 unit).
	r.HardwareRatio = float64(r.ScanUnits) / float64(r.RouterSwitches)
	return r
}

// FormatTable2 renders the comparison in the layout of the paper's
// Table 2.
func FormatTable2(r Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: memory reference vs scan operation (%d processors, %d-bit words)\n\n", r.NProc, r.WordBits)
	fmt.Fprintf(&b, "%-36s %18s %18s\n", "", "Memory Reference", "Scan Operation")
	fmt.Fprintf(&b, "%-36s %18s %18s\n", "Theoretical VLSI time", "O(lg n)", "O(lg n)")
	fmt.Fprintf(&b, "%-36s %18s %18s\n", "Theoretical VLSI area", "O(n^2/lg n)", "O(n)")
	fmt.Fprintf(&b, "%-36s %18s %18s\n", "Circuit depth / size", "O(lg n)/O(n lg n)", "O(lg n)/O(n)")
	fmt.Fprintf(&b, "%-36s %18d %18d\n", "Bit cycles (conflict-free / +-scan)", r.RouteCyclesBest, r.ScanCycles)
	fmt.Fprintf(&b, "%-36s %18d %18d\n", "Bit cycles (random perm / max-scan)", r.RouteCyclesPerm, r.MaxScanCycles)
	fmt.Fprintf(&b, "%-36s %18d %18s\n", "Routing passes needed", r.RoutePasses, "1")
	fmt.Fprintf(&b, "%-36s %18d %18d\n", "Hardware elements (switch / unit)", r.RouterSwitches, r.ScanUnits)
	fmt.Fprintf(&b, "%-36s %18s %18d\n", "Sum state machines", "-", r.ScanStateMachines)
	fmt.Fprintf(&b, "%-36s %18s %18d\n", "Shift register bits", "-", r.ScanShiftBits)
	fmt.Fprintf(&b, "%-36s %18s %17.1f%%\n", "Scan hardware / router hardware", "", 100*r.HardwareRatio)
	fmt.Fprintf(&b, "\nPaper (64K CM-2): memory reference 600 bit cycles / 30%% of hardware;\nscan 550 bit cycles / ~0%% extra hardware. The shape to check: the scan\ncolumn costs no more cycles than the route and far less hardware.\n")
	return b.String()
}

// --- Table 3 ---

// Table3Row is the usage cross-reference of one algorithm.
type Table3Row struct {
	Name   string
	Counts [7]int64
}

// Table3 runs the paper's five §2 example algorithms instrumented and
// reports which scan-use categories each invoked (the paper's Table 3).
func Table3(n int, seed int64) []Table3Row {
	runs := []struct {
		name string
		run  func(m *core.Machine)
	}{
		{"Split Radix Sort", func(m *core.Machine) {
			keys := randomInts(n, n, seed)
			radix.Sort(m, keys, radix.BitsFor(keys))
		}},
		{"Quicksort", func(m *core.Machine) {
			qsort.Sort(m, randomFloats(n, seed), qsort.Options{Seed: seed})
		}},
		{"Minimum Spanning Tree", func(m *core.Machine) {
			mst.Run(m, n, randomConnected(n, seed), seed)
		}},
		{"Line Drawing", func(m *core.Machine) {
			rng := rand.New(rand.NewSource(seed))
			ls := make([]lines.Line, n/8+1)
			for i := range ls {
				ls[i] = lines.Line{
					From: lines.Point{X: rng.Intn(128), Y: rng.Intn(128)},
					To:   lines.Point{X: rng.Intn(128), Y: rng.Intn(128)},
				}
			}
			lines.Draw(m, ls)
		}},
		{"Halving Merge", func(m *core.Machine) {
			merge.Merge(m, sortedInts(n/2, seed), sortedInts(n/2, seed+1))
		}},
	}
	var rows []Table3Row
	for _, r := range runs {
		m := core.New()
		r.run(m)
		row := Table3Row{Name: r.name}
		c := m.Counters()
		for i := range row.Counts {
			row.Counts[i] = c.UsageCounts[i]
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable3 renders the cross-reference matrix.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: uses of the scan primitives by example algorithm (measured invocation counts)\n\n")
	fmt.Fprintf(&b, "%-24s", "")
	for _, u := range core.Usages() {
		fmt.Fprintf(&b, " %-12s", shorten(u.String()))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s", r.Name)
		for _, c := range r.Counts {
			if c == 0 {
				fmt.Fprintf(&b, " %-12s", ".")
			} else {
				fmt.Fprintf(&b, " %-12d", c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func shorten(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// --- Table 4 ---

// Table4Result compares the split radix sort and the bitonic sort under
// two honest cost models: a dedicated hardwired circuit per sort (the
// paper's "Theoretical (Bit Serial Circuit)" rows) and execution on a
// processor-per-key bit-serial machine with a real router (the paper's
// "Actual (64K processor CM-1)" rows).
type Table4Result struct {
	N, Bits int
	// Circuit model: radix gets a scan tree plus a router pass per key
	// bit; bitonic gets its own fully pipelined comparator network.
	RadixCircuit   int // d x (2 scans + 1 conflict-free route)
	BitonicCircuit int // d + stages - 1 through the hardwired network
	// Machine model: the router suffers measured conflicts; the bitonic
	// stages each cost a d-bit neighbor exchange.
	RadixMachine   int // d x (2 scans + measured route)
	BitonicMachine int // stages x (d + 2)
	RoutePasses    int // measured passes for a random permutation
	// Step counts on the step-counted machine (same substrate for both).
	RadixSteps   int64
	BitonicSteps int64
	// Hardware for the bitonic network if hardwired.
	BitonicComparators int
}

// Table4 prices both sorts at the given scale. The routing conflicts are
// measured at min(n, 2^13) and the pass count applied at scale n.
func Table4(n, bits int, seed int64) Table4Result {
	r := Table4Result{N: n, Bits: bits}
	scanC := circuit.Cycles(circuit.OpPlus, n, bits)
	routeBest := network.NewOmega(n).CyclesPerPass(bits)
	r.RadixCircuit = bits * (2*scanC + routeBest) // two enumerates + one permute per pass
	r.BitonicCircuit = network.BitCycles(n, bits)
	r.BitonicComparators = network.ComparatorCount(n)
	simN := n
	if simN > 1<<13 {
		simN = 1 << 13
	}
	rng := rand.New(rand.NewSource(seed))
	passes := network.NewOmega(simN).Route(rng.Perm(simN), bits).Passes
	r.RoutePasses = passes
	r.RadixMachine = bits * (2*scanC + passes*routeBest)
	r.BitonicMachine = network.NumStages(n) * (bits + 2)
	keys := randomInts(simN, 1<<uint(bits)-1, seed)
	mr := core.New()
	radix.Sort(mr, keys, bits)
	r.RadixSteps = mr.Steps()
	mb := core.New()
	bitonic.Sort(mb, keys)
	r.BitonicSteps = mb.Steps()
	return r
}

// FormatTable4 renders the comparison in the paper's Table 4 layout.
func FormatTable4(r Table4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: split radix sort vs bitonic sort (n = %d keys, d = %d bits)\n\n", r.N, r.Bits)
	fmt.Fprintf(&b, "%-44s %14s %14s\n", "", "Split Radix", "Bitonic")
	fmt.Fprintf(&b, "%-44s %14s %14s\n", "Theoretical bit time", "O(d lg n)", "O(d + lg^2 n)")
	fmt.Fprintf(&b, "%-44s %14d %14d\n", "Bit cycles, dedicated circuit", r.RadixCircuit, r.BitonicCircuit)
	fmt.Fprintf(&b, "%-44s %14d %14d\n", "Bit cycles, bit-serial machine + router", r.RadixMachine, r.BitonicMachine)
	fmt.Fprintf(&b, "%-44s %14d %14s\n", "Router passes per permute (measured)", r.RoutePasses, "neighbor only")
	fmt.Fprintf(&b, "%-44s %14d %14d\n", "Program steps (scan-model machine)", r.RadixSteps, r.BitonicSteps)
	fmt.Fprintf(&b, "%-44s %14s %14d\n", "Comparators if hardwired", "-", r.BitonicComparators)
	fmt.Fprintf(&b, "\nPaper (64K CM-1, 16-bit keys): radix 20,000 bit cycles vs bitonic 19,000\n(bitonic was microcoded, radix was not). The shape to check: on the\nmachine model the two are within a small factor at d = 16, and radix\nscales linearly in d while bitonic pays its lg^2 n stage count always.\n")
	return b.String()
}

// --- Table 5 ---

// Table5Row reports one algorithm's processor-step product at p = n and
// p = n / lg n.
type Table5Row struct {
	Name                  string
	N                     int
	StepsFull, StepsFrac  int64 // steps with p = n and p = n/lg n
	PSFull, PSFrac        int64 // processor-step products
	WorkFull, WorkClaimed string
}

// Table5 measures the three rows of the paper's Table 5.
func Table5(n int, seed int64) []Table5Row {
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	pFrac := n / lg
	if pFrac < 1 {
		pFrac = 1
	}
	measure := func(name, w1, w2 string, run func(m *core.Machine)) Table5Row {
		mF := core.New(core.WithProcessors(n))
		run(mF)
		mP := core.New(core.WithProcessors(pFrac))
		run(mP)
		return Table5Row{
			Name: name, N: n,
			StepsFull: mF.Steps(), StepsFrac: mP.Steps(),
			PSFull: mF.Steps() * int64(n), PSFrac: mP.Steps() * int64(pFrac),
			WorkFull: w1, WorkClaimed: w2,
		}
	}
	return []Table5Row{
		measure("Halving Merge", "O(n lg n)", "O(n)", func(m *core.Machine) {
			merge.Merge(m, sortedInts(n/2, seed), sortedInts(n/2, seed+1))
		}),
		measure("List Ranking", "O(n lg n)", "O(n)", func(m *core.Machine) {
			listrank.Contract(m, randomListNext(n, seed), seed)
		}),
		measure("Tree Contraction", "O(n lg n)", "O(n)", func(m *core.Machine) {
			treecontract.Eval(m, randomExprTree(n, seed))
		}),
	}
}

// FormatTable5 renders the processor-step table.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Table 5: processor-step complexity at n = %d\n\n", rows[0].N)
	}
	fmt.Fprintf(&b, "%-18s %14s %14s %16s %16s\n", "Algorithm", "steps p=n", "steps p=n/lg n", "proc-steps p=n", "proc-steps frac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %14d %14d %16d %16d\n", r.Name, r.StepsFull, r.StepsFrac, r.PSFull, r.PSFrac)
	}
	b.WriteString("\nClaim (paper): p = n gives O(n lg n) processor-steps, p = n/lg n gives O(n).\nThe asymptotic gap appears as growth rates across n (see the Table 5\nbenchmarks); at fixed n the contraction constants partly mask it.\n")
	return b.String()
}
