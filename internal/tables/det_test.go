package tables

import "testing"

// TestTable5Deterministic pins the harness's reproducibility: identical
// sizes and seeds must yield identical step counts run to run (every
// random choice flows from the seed).
func TestTable5Deterministic(t *testing.T) {
	a := Table5(1<<10, 5)
	b := Table5(1<<10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTable1Deterministic does the same for the Table 1 harness.
func TestTable1Deterministic(t *testing.T) {
	a := Table1([]int{128})
	b := Table1([]int{128})
	for i := range a {
		if a[i].StepsScan[0] != b[i].StepsScan[0] || a[i].StepsEREW[0] != b[i].StepsEREW[0] {
			t.Errorf("%s differs across runs", a[i].Name)
		}
	}
}
