package tables

import (
	"strings"
	"testing"
)

func TestTable1SmallSizes(t *testing.T) {
	sizes := []int{64, 256}
	rows := Table1(sizes)
	if len(rows) != len(Algorithms()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Algorithms()))
	}
	for _, r := range rows {
		if len(r.StepsScan) != 2 || len(r.StepsEREW) != 2 {
			t.Fatalf("%s: missing measurements", r.Name)
		}
		for i := range r.StepsScan {
			if r.StepsScan[i] <= 0 {
				t.Errorf("%s: zero scan steps", r.Name)
			}
			if r.StepsEREW[i] < r.StepsScan[i] {
				t.Errorf("%s: EREW charge (%d) below scan charge (%d)", r.Name, r.StepsEREW[i], r.StepsScan[i])
			}
		}
	}
	out := FormatTable1(sizes, rows)
	if !strings.Contains(out, "Minimum Spanning Tree") || !strings.Contains(out, "Line of Sight") {
		t.Error("formatted table missing rows")
	}
}

func TestTable1ScanBeatsEREWForLgFactorRows(t *testing.T) {
	// For rows whose claimed gap is lg n vs lg² n, the EREW charge must
	// exceed the scan charge by a growing factor.
	rows := Table1([]int{1024})
	for _, r := range rows {
		if r.Name == "Line of Sight" || r.Name == "Vector x Matrix" {
			// O(1) scan vs O(lg n) EREW: the starkest gap.
			ratio := float64(r.StepsEREW[0]) / float64(r.StepsScan[0])
			if ratio < 2 {
				t.Errorf("%s: EREW/scan ratio %.1f, want > 2", r.Name, ratio)
			}
		}
	}
}

func TestTable2(t *testing.T) {
	r := Table2(1<<16, 32, 1)
	if r.ScanCycles != 79 {
		t.Errorf("scan cycles = %d, want 79", r.ScanCycles)
	}
	if r.RouteCyclesBest != 64 {
		t.Errorf("route cycles/pass = %d, want 64", r.RouteCyclesBest)
	}
	if r.RoutePasses < 2 {
		t.Errorf("random permutation routed in %d passes; expected conflicts", r.RoutePasses)
	}
	// The paper's claim: a scan costs no more than a memory reference.
	if r.ScanCycles > r.RouteCyclesPerm {
		t.Errorf("scan (%d cycles) costs more than the measured route (%d)", r.ScanCycles, r.RouteCyclesPerm)
	}
	// And needs far less hardware.
	if r.HardwareRatio > 0.5 {
		t.Errorf("scan hardware ratio %.2f, want well below router", r.HardwareRatio)
	}
	out := FormatTable2(r)
	if !strings.Contains(out, "Bit cycles") {
		t.Error("format missing rows")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3(256, 7)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	find := func(name string) Table3Row {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return Table3Row{}
	}
	// The paper's cross-reference: radix sort uses splitting; quicksort
	// uses splitting, distributing, copying, segmented; MST uses
	// distributing, copying, segmented; line drawing uses allocating,
	// copying, segmented; halving merge uses allocating and
	// load-balancing.
	if find("Split Radix Sort").Counts[3] == 0 {
		t.Error("radix sort did not record splitting")
	}
	q := find("Quicksort")
	for _, idx := range []int{1, 2, 3, 4} {
		if q.Counts[idx] == 0 {
			t.Errorf("quicksort missing usage %d", idx)
		}
	}
	mstRow := find("Minimum Spanning Tree")
	for _, idx := range []int{1, 2, 4} {
		if mstRow.Counts[idx] == 0 {
			t.Errorf("MST missing usage %d", idx)
		}
	}
	ld := find("Line Drawing")
	for _, idx := range []int{1, 4, 5} {
		if ld.Counts[idx] == 0 {
			t.Errorf("line drawing missing usage %d", idx)
		}
	}
	hm := find("Halving Merge")
	for _, idx := range []int{5, 6} {
		if hm.Counts[idx] == 0 {
			t.Errorf("halving merge missing usage %d", idx)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Quicksort") {
		t.Error("format missing rows")
	}
}

func TestTable4(t *testing.T) {
	r := Table4(1<<16, 16, 3)
	if r.BitonicCircuit != 151 {
		t.Errorf("bitonic circuit bit time = %d, want 151", r.BitonicCircuit)
	}
	if r.RadixCircuit <= 0 || r.RadixMachine <= 0 || r.BitonicMachine <= 0 {
		t.Error("bit times not computed")
	}
	// Shape: on the machine model at d = 16 and n = 64K the two are
	// within an order of magnitude (the paper measured 20,000 vs 19,000).
	ratio := float64(r.RadixMachine) / float64(r.BitonicMachine)
	if ratio > 10 || ratio < 0.1 {
		t.Errorf("machine bit-time ratio %.1f outside a plausible band", ratio)
	}
	// On the machine, radix needs far fewer steps than bitonic's lg² n.
	if r.RadixSteps >= r.BitonicSteps {
		t.Errorf("radix steps (%d) not below bitonic steps (%d)", r.RadixSteps, r.BitonicSteps)
	}
	out := FormatTable4(r)
	if !strings.Contains(out, "Split Radix") {
		t.Error("format missing rows")
	}
}

func TestTable4RadixScalesWithBits(t *testing.T) {
	r8 := Table4(1<<12, 8, 3)
	r32 := Table4(1<<12, 32, 3)
	// Radix bit time is linear in d; the bitonic circuit pays its
	// lg² n term once (its bit time grows by exactly the extra d).
	if r32.RadixCircuit < 3*r8.RadixCircuit {
		t.Errorf("radix bit time did not scale with d: %d vs %d", r8.RadixCircuit, r32.RadixCircuit)
	}
	if r32.BitonicCircuit-r8.BitonicCircuit != 24 {
		t.Errorf("bitonic circuit bit time should grow by exactly d: %d vs %d", r8.BitonicCircuit, r32.BitonicCircuit)
	}
}

func TestTable5(t *testing.T) {
	rows := Table5(1<<10, 5)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StepsFull <= 0 || r.StepsFrac <= 0 {
			t.Errorf("%s: missing steps", r.Name)
		}
		// With fewer processors the same run takes more steps.
		if r.StepsFrac < r.StepsFull {
			t.Errorf("%s: fewer processors took fewer steps", r.Name)
		}
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "Halving Merge") {
		t.Error("format missing rows")
	}
}
