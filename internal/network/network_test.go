package network

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOmegaIdentityRoute(t *testing.T) {
	o := NewOmega(16)
	dest := make([]int, 16)
	for i := range dest {
		dest[i] = i
	}
	res := o.Route(dest, 32)
	if res.Passes != 1 {
		t.Errorf("identity route took %d passes, want 1", res.Passes)
	}
	if res.Conflicts != 0 {
		t.Errorf("identity route had %d conflicts, want 0", res.Conflicts)
	}
	if res.Cycles != 2*4+32 {
		t.Errorf("cycles = %d, want %d", res.Cycles, 2*4+32)
	}
}

func TestOmegaUniformShiftRoutesInOnePass(t *testing.T) {
	// Uniform shifts are a classic conflict-free class for omega networks
	// (Lawrie 1975).
	for _, n := range []int{8, 64} {
		o := NewOmega(n)
		for shift := 1; shift < n; shift *= 2 {
			dest := make([]int, n)
			for i := range dest {
				dest[i] = (i + shift) % n
			}
			res := o.Route(dest, 8)
			if res.Passes != 1 {
				t.Errorf("n=%d shift=%d: took %d passes, want 1", n, shift, res.Passes)
			}
		}
	}
}

func TestOmegaBitReverseNeedsMultiplePasses(t *testing.T) {
	// Bit reversal is a classic omega-adversarial permutation.
	n := 64
	o := NewOmega(n)
	dest := make([]int, n)
	for i := range dest {
		r := 0
		for b := 0; b < 6; b++ {
			r |= (i >> b & 1) << (5 - b)
		}
		dest[i] = r
	}
	res := o.Route(dest, 16)
	if res.Passes < 2 {
		t.Errorf("bit-reverse routed in %d passes; expected conflicts", res.Passes)
	}
	if res.Cycles != res.Passes*(2*6+16) {
		t.Errorf("cycles inconsistent with passes: %+v", res)
	}
}

func TestOmegaRandomPermutationsAllDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 64, 1024} {
		o := NewOmega(n)
		for trial := 0; trial < 5; trial++ {
			dest := rng.Perm(n)
			res := o.Route(dest, 32)
			if res.Passes < 1 || res.Passes > n {
				t.Fatalf("n=%d: implausible pass count %d", n, res.Passes)
			}
		}
	}
}

func TestOmegaRejectsNonPermutation(t *testing.T) {
	o := NewOmega(4)
	for name, dest := range map[string][]int{
		"duplicate":    {0, 0, 1, 2},
		"out-of-range": {0, 1, 2, 9},
		"wrong-length": {0, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			o.Route(dest, 8)
		}()
	}
}

func TestOmegaHardware(t *testing.T) {
	o := NewOmega(1 << 16)
	h := o.Hardware()
	if h.Switches != (1<<15)*16 {
		t.Errorf("Switches = %d, want %d", h.Switches, (1<<15)*16)
	}
	if o.Stages() != 16 {
		t.Errorf("Stages = %d, want 16", o.Stages())
	}
}

func TestBitonicStagesCount(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 3}, {8, 6}, {16, 10}, {1 << 16, 136},
	} {
		if got := NumStages(c.n); got != c.want {
			t.Errorf("NumStages(%d) = %d, want %d", c.n, got, c.want)
		}
		if c.n > 1 {
			if got := len(Stages(c.n)); got != c.want {
				t.Errorf("len(Stages(%d)) = %d, want %d", c.n, got, c.want)
			}
		}
	}
}

func TestBitonicStagesAreDisjoint(t *testing.T) {
	for _, stage := range Stages(32) {
		used := map[int]bool{}
		for _, c := range stage {
			if used[c.I] || used[c.J] {
				t.Fatal("comparators within a stage share a wire")
			}
			used[c.I], used[c.J] = true, true
		}
	}
}

func TestBitonicSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		for trial := 0; trial < 3; trial++ {
			v := make([]int, n)
			for i := range v {
				v[i] = rng.Intn(100)
			}
			Sort(v)
			if !sort.IntsAreSorted(v) {
				t.Fatalf("n=%d: bitonic network failed to sort: %v", n, v)
			}
		}
	}
}

func TestBitonicZeroOnePrinciple(t *testing.T) {
	// Exhaustive 0-1 principle check for n=8: a comparator network sorts
	// all inputs iff it sorts all 0-1 inputs.
	n := 8
	for mask := 0; mask < 1<<n; mask++ {
		v := make([]int, n)
		for i := 0; i < n; i++ {
			v[i] = mask >> i & 1
		}
		Sort(v)
		if !sort.IntsAreSorted(v) {
			t.Fatalf("0-1 input %b not sorted: %v", mask, v)
		}
	}
}

func TestBitCycles(t *testing.T) {
	// Table 4 scale: 64K keys, 16 bits: d + stages - 1.
	if got, want := BitCycles(1<<16, 16), 16+136-1; got != want {
		t.Errorf("BitCycles(64K,16) = %d, want %d", got, want)
	}
	if BitCycles(1, 16) != 0 {
		t.Error("BitCycles(1) != 0")
	}
}

func TestComparatorCount(t *testing.T) {
	if got := ComparatorCount(8); got != 4*6 {
		t.Errorf("ComparatorCount(8) = %d, want 24", got)
	}
}
