// Package network simulates the interconnection hardware the paper
// compares scans against: a multistage omega routing network standing in
// for "a reference to a shared memory" (Table 2), and Batcher's bitonic
// sorting network, the baseline of Table 4.
//
// The paper's point is architectural: an arbitrary permutation route
// through a multistage network costs Θ(lg n) switch stages, suffers
// conflicts that force extra passes, and needs Θ(n lg n) switch hardware,
// while the scan tree of package circuit needs one pass through
// 2 lg n levels of trivial units and Θ(n) hardware. This package supplies
// the router half of that comparison.
package network

import (
	"fmt"
	"math/bits"
)

// Omega is an n-input, n-output omega network: lg n stages of n/2
// two-by-two switches with a perfect shuffle between stages, routed by
// destination tag (stage s consumes destination bit lg n - 1 - s).
type Omega struct {
	n      int
	stages int
}

// NewOmega builds an omega network with n inputs; n must be a power of
// two and at least 2.
func NewOmega(n int) *Omega {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("network: NewOmega: n = %d is not a power of two >= 2", n))
	}
	return &Omega{n: n, stages: bits.Len(uint(n)) - 1}
}

// Stages returns the number of switch stages: lg n.
func (o *Omega) Stages() int { return o.stages }

// Hardware describes the router's gate-level inventory, for the Table 2
// hardware comparison against the scan tree.
type Hardware struct {
	// Switches is the number of 2x2 crossbar switches: (n/2) lg n.
	Switches int
	// Wires is the number of single-bit links between stages: n(lg n + 1).
	Wires int
}

// Hardware returns the inventory of this network.
func (o *Omega) Hardware() Hardware {
	return Hardware{
		Switches: o.n / 2 * o.stages,
		Wires:    o.n * (o.stages + 1),
	}
}

// RouteResult describes the cost of routing one permutation.
type RouteResult struct {
	// Passes is how many times the network had to be traversed before
	// every packet was delivered: packets losing a switch conflict wait
	// for the next pass.
	Passes int
	// Cycles is the total bit-cycle count: each pass pipelines a lg n-bit
	// destination header and an m-bit payload through lg n single-cycle
	// stages, so a pass costs 2 lg n + m cycles.
	Cycles int
	// Conflicts is the total number of packets blocked by switch
	// conflicts over all passes.
	Conflicts int
}

// shuffle rotates the low `stages` bits of p left by one: the perfect
// shuffle interconnection between omega stages.
func (o *Omega) shuffle(p int) int {
	top := p >> (o.stages - 1) & 1
	return (p<<1 | top) & (o.n - 1)
}

// Route simulates delivering one packet from every source i to
// destination dest[i], with m payload bits per packet. dest must be a
// permutation; the EREW contract forbids two processors referencing the
// same location, exactly as the paper's permute primitive does.
func (o *Omega) Route(dest []int, m int) RouteResult {
	if len(dest) != o.n {
		panic(fmt.Sprintf("network: Route: %d destinations for %d inputs", len(dest), o.n))
	}
	seen := make([]bool, o.n)
	for i, d := range dest {
		if d < 0 || d >= o.n {
			panic(fmt.Sprintf("network: Route: dest[%d] = %d out of range", i, d))
		}
		if seen[d] {
			panic(fmt.Sprintf("network: Route: destination %d targeted twice; not a permutation", d))
		}
		seen[d] = true
	}
	var res RouteResult
	pending := make([]int, 0, o.n) // source indices still undelivered
	for i := range dest {
		pending = append(pending, i)
	}
	// Reusable per-stage switch claim table: claims[output port] = pass
	// stamp, so we can avoid clearing it each stage.
	claims := make([]int, o.n)
	for i := range claims {
		claims[i] = -1
	}
	stamp := 0
	type packet struct{ pos, dst, src int }
	for len(pending) > 0 {
		res.Passes++
		live := make([]packet, 0, len(pending))
		for _, src := range pending {
			live = append(live, packet{pos: src, dst: dest[src], src: src})
		}
		var blocked []int
		for s := 0; s < o.stages && len(live) > 0; s++ {
			stamp++
			next := live[:0]
			for _, p := range live {
				pos := o.shuffle(p.pos)
				bit := p.dst >> (o.stages - 1 - s) & 1
				port := pos&^1 | bit
				if claims[port] == stamp {
					// Conflict: an earlier packet claimed this switch
					// output; this one retries next pass.
					res.Conflicts++
					blocked = append(blocked, p.src)
					continue
				}
				claims[port] = stamp
				p.pos = port
				next = append(next, p)
			}
			live = next
		}
		for _, p := range live {
			if p.pos != p.dst {
				panic(fmt.Sprintf("network: Route: packet from %d landed at %d, want %d", p.src, p.pos, p.dst))
			}
		}
		pending = blocked
		res.Cycles += 2*o.stages + m
		if res.Passes > 4*o.n {
			panic("network: Route: no progress; routing livelock")
		}
	}
	return res
}

// CyclesPerPass returns the pipelined bit-cycle cost of one network
// traversal with m payload bits: 2 lg n + m.
func (o *Omega) CyclesPerPass(m int) int { return 2*o.stages + m }
