package network

import (
	"fmt"
	"math/bits"
)

// Batcher's bitonic sorting network (Batcher 1968), the comparison
// baseline of the paper's Table 4. The network is data-independent:
// Comparators enumerates its compare-exchange stages, Sort applies them,
// and BitCycles prices it under the same bit-serial accounting as the
// scan tree and the omega router.

// Comparator is one compare-exchange element: after it fires, position I
// holds the smaller value and position J the larger.
type Comparator struct{ I, J int }

// Stages enumerates the comparator stages of a bitonic sorting network on
// n = 2^k inputs. Every stage is a set of disjoint comparators that fire
// in parallel; there are k(k+1)/2 stages.
func Stages(n int) [][]Comparator {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("network: Stages: n = %d is not a positive power of two", n))
	}
	var stages [][]Comparator
	// Standard iterative formulation: for block size kk, sub-distance jj.
	for kk := 2; kk <= n; kk *= 2 {
		for jj := kk / 2; jj > 0; jj /= 2 {
			var stage []Comparator
			for i := 0; i < n; i++ {
				l := i ^ jj
				if l <= i {
					continue
				}
				if i&kk == 0 {
					stage = append(stage, Comparator{I: i, J: l})
				} else {
					stage = append(stage, Comparator{I: l, J: i})
				}
			}
			stages = append(stages, stage)
		}
	}
	return stages
}

// NumStages returns the stage count k(k+1)/2 for n = 2^k without
// materializing the network.
func NumStages(n int) int {
	if n <= 1 {
		return 0
	}
	k := bits.Len(uint(n)) - 1
	return k * (k + 1) / 2
}

// Sort runs values through the bitonic network and sorts them in place
// (ascending). len(values) must be a power of two.
func Sort(values []int) {
	for _, stage := range Stages(len(values)) {
		for _, c := range stage {
			if values[c.I] > values[c.J] {
				values[c.I], values[c.J] = values[c.J], values[c.I]
			}
		}
	}
}

// BitCycles prices a full bitonic sort of n d-bit keys on bit-serial
// hardware: each comparator is a one-cycle-latency bit-serial
// compare-exchange (MSB first), the whole network is a pipeline of
// NumStages(n) such elements, so a sort streams d bits through
// NumStages(n) stages: d + NumStages(n) - 1 cycles. This is the paper's
// O(d + lg² n) bit time for the bitonic sort (Table 4).
func BitCycles(n, d int) int {
	s := NumStages(n)
	if s == 0 {
		return 0
	}
	return d + s - 1
}

// ComparatorCount returns the total number of compare-exchange elements:
// (n/2) · NumStages(n), the hardware cost column of Table 4's circuit
// comparison.
func ComparatorCount(n int) int {
	return n / 2 * NumStages(n)
}
