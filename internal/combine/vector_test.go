package combine

import (
	"math/rand"
	"testing"
)

// vectorizable lists the golden examples CompileVec must handle and
// what dispatch class each lands in; gcd's loop is the deliberate
// scalar-fallback representative.
var exampleClasses = map[string]string{
	"add":    "native",
	"bor":    "vector",
	"band":   "vector",
	"satadd": "vector",
	"argmax": "vector",
	"gcd":    "scalar",
}

func mustProg(t testing.TB, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestExampleDispatchClasses(t *testing.T) {
	for name, want := range exampleClasses {
		p := mustProg(t, Examples[name])
		if got := DispatchClass(p); got != want {
			t.Errorf("%s: dispatch class = %q, want %q", name, got, want)
		}
	}
}

// edgeVals are the inputs where overflow/division/saturation bugs live.
var edgeVals = []int64{0, 1, -1, 2, -2, 7, minInt64, minInt64 + 1, maxInt64, maxInt64 - 1}

// fillTuples writes nt random-ish tuples of width w, biased toward
// edge values.
func fillTuples(rng *rand.Rand, buf []int64) {
	for i := range buf {
		switch rng.Intn(3) {
		case 0:
			buf[i] = edgeVals[rng.Intn(len(edgeVals))]
		case 1:
			buf[i] = int64(rng.Intn(201)) - 100
		default:
			buf[i] = rng.Int63() - rng.Int63()
		}
	}
}

// checkRunMatchesExec drives the plan across a block of lanes and
// demands bit-identity with per-pair scalar Exec — and that scalar Exec
// cannot fail on a compiled program (the safety property the budget
// semantics rest on).
func checkRunMatchesExec(t *testing.T, name string, p *Program, vp *VecPlan, rng *rand.Rand, nl int) {
	t.Helper()
	w := p.Width
	a := make([]int64, nl*w)
	b := make([]int64, nl*w)
	got := make([]int64, nl*w)
	want := make([]int64, nl*w)
	fillTuples(rng, a)
	fillTuples(rng, b)
	sc := NewVecScratch()
	vp.Run(sc, nl, got, w, a, w, b, w)
	var fr Frame
	for l := 0; l < nl; l++ {
		if err := p.Exec(&fr, want[l*w:(l+1)*w], a[l*w:(l+1)*w], b[l*w:(l+1)*w]); err != nil {
			t.Fatalf("%s: scalar Exec failed on a COMPILED program (lane %d): %v", name, l, err)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			l := i / w
			t.Fatalf("%s: lane %d field %d: vector %d != scalar %d (a=%v b=%v)",
				name, l, i%w, got[i], want[i], a[l*w:(l+1)*w], b[l*w:(l+1)*w])
		}
	}
}

func TestVectorExamplesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, class := range exampleClasses {
		p := mustProg(t, Examples[name])
		vp := CompileVec(p)
		if class == "scalar" {
			if vp != nil {
				t.Errorf("%s: expected scalar fallback, got a plan", name)
			}
			continue
		}
		if vp == nil {
			t.Fatalf("%s: CompileVec returned nil", name)
		}
		for _, nl := range []int{1, 2, 7, LaneBlock} {
			for trial := 0; trial < 20; trial++ {
				checkRunMatchesExec(t, name, p, vp, rng, nl)
			}
		}
	}
}

// scanSerialRef is the reference walk: execUserView's exact semantics
// (forward folds combine(acc, el); backward folds combine(el, acc)
// from the tail; exclusive emits before the fold, inclusive after).
func scanSerialRef(t testing.TB, p *Program, dst, src []int64, inclusive, backward bool, carry int64, seeded bool) {
	t.Helper()
	w := p.Width
	var fr Frame
	var acc [MaxWidth]int64
	copy(acc[:w], p.Identity)
	if seeded {
		acc[0] = carry
	}
	nt := len(src) / w
	step := func(k int) {
		el := src[k*w : (k+1)*w]
		emit := func() { copy(dst[k*w:(k+1)*w], acc[:w]) }
		fold := func() {
			var err error
			if backward {
				err = p.Exec(&fr, acc[:w], el, acc[:w])
			} else {
				err = p.Exec(&fr, acc[:w], acc[:w], el)
			}
			if err != nil {
				t.Fatalf("reference Exec failed: %v", err)
			}
		}
		if inclusive {
			fold()
			emit()
		} else {
			emit()
			fold()
		}
	}
	if backward {
		for k := nt - 1; k >= 0; k-- {
			step(k)
		}
	} else {
		for k := 0; k < nt; k++ {
			step(k)
		}
	}
}

func TestScanBlockedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sizes := []int{1, 3, MinVecTuples, 100, LaneBlock, 1000, 4096, 4097}
	for name, class := range exampleClasses {
		if class == "scalar" {
			continue
		}
		p := mustProg(t, Examples[name])
		vp := CompileVec(p)
		w := p.Width
		sc := NewVecScratch()
		for _, nt := range sizes {
			src := make([]int64, nt*w)
			fillTuples(rng, src)
			for _, inclusive := range []bool{false, true} {
				for _, backward := range []bool{false, true} {
					for _, seeded := range []bool{false, true} {
						if seeded && w != 1 {
							continue // seeding is width-1 only (admission-enforced)
						}
						carry := int64(0)
						if seeded {
							carry = rng.Int63() - rng.Int63()
						}
						got := make([]int64, nt*w)
						want := make([]int64, nt*w)
						if err := vp.ScanBlocked(sc, p, got, src, inclusive, backward, carry, seeded); err != nil {
							t.Fatalf("%s nt=%d: ScanBlocked: %v", name, nt, err)
						}
						scanSerialRef(t, p, want, src, inclusive, backward, carry, seeded)
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s nt=%d incl=%v back=%v seeded=%v: tuple %d field %d: blocked %d != serial %d",
									name, nt, inclusive, backward, seeded, i/w, i%w, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

func TestSuperinstructionFusion(t *testing.T) {
	// The canonical push/push/arith shape must fuse to exactly ONE
	// vector instruction reading both args from the strided inputs.
	for _, name := range []string{"add", "bor", "band"} {
		vp := CompileVec(mustProg(t, Examples[name]))
		if vp == nil {
			t.Fatalf("%s: nil plan", name)
		}
		if vp.NumInstr() != 1 {
			t.Errorf("%s: %d instructions after fusion, want 1", name, vp.NumInstr())
		}
	}
	// Operand-order and stack shuffles canonicalize away entirely.
	shuffled := mustProg(t, ".width 1\n.identity 0\n\targb 0\n\targa 0\n\tswap\n\tadd\n\tret\n")
	vp := CompileVec(shuffled)
	if vp == nil || vp.NumInstr() != 1 {
		t.Fatalf("shuffled add: plan %+v, want single fused instruction", vp)
	}
	if vp.Promotion() != PromoteAdd {
		t.Errorf("shuffled add: promotion %v, want add", vp.Promotion())
	}
	// A multi-use argument load stays materialized (one strided read),
	// so fusion must not duplicate it into both consumers: a²+b² keeps
	// its two movs (each feeds a dup'd square) plus three fused ops.
	multi := mustProg(t, ".width 1\n.identity 0\n\targa 0\n\tdup\n\tmul\n\targb 0\n\tdup\n\tmul\n\tadd\n")
	mp := CompileVec(multi)
	if mp == nil {
		t.Fatal("multi-use program: nil plan")
	}
	if mp.NumInstr() != 5 {
		t.Errorf("multi-use program: %d instructions, want 5 (2 materialized movs + 3 ops)", mp.NumInstr())
	}
}

func TestPromotionDetection(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Promotion
	}{
		{"add", ExampleAdd, PromoteAdd},
		{"add-swapped", ".width 1\n.identity 0\n\targb 0\n\targa 0\n\tadd\n", PromoteAdd},
		{"mul", ".width 1\n.identity 1\n\targa 0\n\targb 0\n\tmul\n", PromoteMul},
		{"max", ".width 1\n.identity -9223372036854775808\n\targa 0\n\targb 0\n\tmax\n", PromoteMax},
		{"min", ".width 1\n.identity 9223372036854775807\n\targa 0\n\targb 0\n\tmin\n", PromoteMin},
		{"or-not-native", ExampleBitOr, PromoteNone},
		{"add-wrong-identity", ".width 1\n.identity 1\n\targa 0\n\targb 0\n\tadd\n", PromoteNone},
		{"sub-not-monoid-shape", ".width 1\n.identity 0\n\targa 0\n\targb 0\n\tsub\n", PromoteNone},
		{"max-wrong-identity", ".width 1\n.identity 0\n\targa 0\n\targb 0\n\tmax\n", PromoteNone},
	}
	for _, tc := range cases {
		vp := CompileVec(mustProg(t, tc.src))
		if vp == nil {
			t.Fatalf("%s: nil plan", tc.name)
		}
		if vp.Promotion() != tc.want {
			t.Errorf("%s: promotion %v, want %v", tc.name, vp.Promotion(), tc.want)
		}
	}
}

// fuzzBuildProgram derives a structurally-valid random program from
// fuzz bytes: clamped immediates, jump targets folded into range.
// Backward jumps survive (they exercise the scalar-fallback decision);
// stack discipline is NOT enforced — CompileVec must reject the bad
// ones itself by returning nil.
func fuzzBuildProgram(data []byte) *Program {
	if len(data) < 8 {
		return nil
	}
	w := int(data[0])%MaxWidth + 1
	nins := int(data[1])%48 + 1
	p := &Program{Width: w, Identity: make([]int64, w)}
	pos := 2
	next := func() byte {
		if pos >= len(data) {
			pos = 2 // wrap: short inputs still yield full programs
		}
		b := data[pos]
		pos++
		return b
	}
	for i := 0; i < w; i++ {
		p.Identity[i] = edgeVals[int(next())%len(edgeVals)]
	}
	for i := 0; i < nins; i++ {
		op := OpCode(next()) % opCodeCount
		in := Instr{Op: op}
		if op.hasImm() {
			raw := int64(next())
			switch op {
			case OpArgA, OpArgB:
				in.Imm = raw % int64(w)
			case OpLoad, OpStore:
				in.Imm = raw % LocalCap
			case OpPick:
				in.Imm = raw % StackCap
			case OpJmp, OpJz, OpJnz:
				in.Imm = raw % int64(nins+1)
			default: // OpConst
				in.Imm = edgeVals[int(raw)%len(edgeVals)]
			}
		}
		p.Code = append(p.Code, in)
	}
	if p.checkStatic() != nil {
		return nil
	}
	return p
}

// FuzzVectorizedMatchesScalar is the engine's differential oracle:
// every program CompileVec accepts must match scalar Exec bit-for-bit
// on every lane — including MinInt64/÷0 edge inputs — and scalar Exec
// must be infallible on it (no stack fault, no budget trip on any
// input). Programs it rejects must still run (or fail typed, never
// panic) on the scalar engine. Note the oracle is PER-PAIR: it holds
// for arbitrary programs, associative or not, because Run never
// reassociates — only ScanBlocked does, and only for validated ops.
func FuzzVectorizedMatchesScalar(f *testing.F) {
	f.Add([]byte{0, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{1, 12, 0, 0, 1, 9, 2, 9, 5, 25, 200, 17, 3, 31})
	f.Add([]byte{3, 40, 250, 14, 88, 9, 26, 27, 28, 120, 7, 19, 64, 64, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		seed := int64(len(data))
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))

		check := func(name string, p *Program) {
			vp := CompileVec(p)
			var fr Frame
			if vp == nil {
				// Scalar fallback: must terminate with a value or a
				// typed error, never panic.
				a := make([]int64, p.Width)
				b := make([]int64, p.Width)
				dst := make([]int64, p.Width)
				fillTuples(rng, a)
				fillTuples(rng, b)
				_ = p.Exec(&fr, dst, a, b)
				return
			}
			nl := rng.Intn(LaneBlock) + 1
			checkRunMatchesExec(t, name, p, vp, rng, nl)
		}

		if p := fuzzBuildProgram(data); p != nil {
			check("fuzz", p)
		}
		for name, src := range Examples {
			p, err := Parse(src)
			if err != nil {
				t.Fatalf("example %s: %v", name, err)
			}
			check(name, p)
		}
	})
}

func BenchmarkScanBlockedAdd(b *testing.B) {
	p := mustProg(b, ExampleSatAdd)
	vp := CompileVec(p)
	sc := NewVecScratch()
	const nt = 4096
	src := make([]int64, nt)
	dst := make([]int64, nt)
	rng := rand.New(rand.NewSource(3))
	fillTuples(rng, src)
	b.SetBytes(nt * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vp.ScanBlocked(sc, p, dst, src, true, false, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanScalarAdd(b *testing.B) {
	p := mustProg(b, ExampleSatAdd)
	const nt = 4096
	src := make([]int64, nt)
	dst := make([]int64, nt)
	rng := rand.New(rand.NewSource(3))
	fillTuples(rng, src)
	b.SetBytes(nt * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanSerialRef(b, p, dst, src, true, false, 0, false)
	}
}
