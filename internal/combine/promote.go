package combine

// Native promotion: a registered program whose FUSED plan is
// structurally the canonical form of a builtin monoid — one binary
// superinstruction combining field 0 of each argument, with the
// builtin's identity — doesn't need the VM at all. The serving layer
// routes such ops straight to the native segmented view kernels, so a
// tenant who ships `arga 0; argb 0; add` pays exactly what `sum` pays.
//
// Detection runs on the plan, not the source: any program the compiler
// canonicalizes to the same superinstruction (operand-order shuffles,
// dead locals, folded constants, redundant ret) promotes identically.
// The registration's op_hash is untouched — promotion is a dispatch
// decision, not a semantic change, and cluster hash propagation keys on
// the program the tenant shipped.
//
// The identity check is belt-and-braces: validation already forces the
// identity (f(e,x) = x pins e for these monoids), but promotion must
// never hand the native kernels an op whose exclusive-scan seed
// differs from theirs.

// Promotion names the builtin kernel a plan is structurally equal to
// (PromoteNone if it must run on the vector or scalar engine).
type Promotion uint8

const (
	PromoteNone Promotion = iota
	PromoteAdd
	PromoteMul
	PromoteMax
	PromoteMin
)

func (p Promotion) String() string {
	switch p {
	case PromoteAdd:
		return "add"
	case PromoteMul:
		return "mul"
	case PromoteMax:
		return "max"
	case PromoteMin:
		return "min"
	}
	return "none"
}

// detectPromotion inspects a fused plan for the canonical shape: width
// 1, exactly one instruction, a vBin over arga[0] and argb[0] (either
// operand order — the promotable monoids are all commutative), whose
// result is the output, with the matching builtin identity.
func detectPromotion(vp *VecPlan, p *Program) Promotion {
	if vp.width != 1 || len(vp.code) != 1 || len(vp.out) != 1 {
		return PromoteNone
	}
	in := vp.code[0]
	if in.op != vBin {
		return PromoteNone
	}
	if vp.out[0].kind != srcReg || vp.out[0].idx != in.dst {
		return PromoteNone
	}
	x, y := in.x, in.y
	ab := x.kind == srcA && x.idx == 0 && y.kind == srcB && y.idx == 0
	ba := x.kind == srcB && x.idx == 0 && y.kind == srcA && y.idx == 0
	if !ab && !ba {
		return PromoteNone
	}
	id := p.Identity[0]
	switch in.sub {
	case OpAdd:
		if id == 0 {
			return PromoteAdd
		}
	case OpMul:
		if id == 1 {
			return PromoteMul
		}
	case OpMax:
		if id == minInt64 {
			return PromoteMax
		}
	case OpMin:
		if id == maxInt64 {
			return PromoteMin
		}
	}
	return PromoteNone
}

// Promotion reports the plan's native-kernel promotion.
func (vp *VecPlan) Promotion() Promotion { return vp.promo }

// DispatchClass labels how a program executes, for stats and bench
// metadata: "native" (promoted), "vector" (lane-blocked plan), or
// "scalar" (per-element Exec fallback).
func DispatchClass(p *Program) string {
	vp := CompileVec(p)
	switch {
	case vp == nil:
		return "scalar"
	case vp.promo != PromoteNone:
		return "native"
	default:
		return "vector"
	}
}
