package combine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
)

// Registration-time validation and the tenant-scoped op registry.
//
// An op is only servable after it survives the monoid property tests:
// identity (f(e,x) == f(x,e) == x) and associativity (f(f(x,y),z) ==
// f(x,f(y,z))) over both random tuples and an adversarial set (0, ±1,
// MinInt64, MaxInt64 — the values where overflow, division, and
// saturation bugs live). A failing submission is rejected with the
// concrete counterexample in the error, so the tenant can reproduce it
// locally. The tests are necessarily probabilistic — associativity
// over all of int64³ is unprovable by testing — but every published
// non-associativity bug class (overflow asymmetry, order-dependent
// select, float-style rounding) falls to the adversarial set.
//
// Every accepted op gets a content hash over its canonical encoding
// (width, identity, instructions). The hash names the SEMANTICS of the
// registration: cluster coordinators stamp it on the scan pieces they
// dispatch, and a worker holding a different registration under the
// same name answers with a typed mismatch error instead of silently
// combining with the wrong function (cluster propagation, DESIGN.md
// §11).

// Validation workload: trials per width plus the adversarial cross
// products. ~200 triples × 4 Execs each ≈ sub-millisecond per
// registration.
const (
	validateRandomTrials = 128
	maxNameLen           = 64
)

// ErrRejected wraps every registration-time rejection (bad program,
// failed property test, cap exceeded); callers map it to the wire's
// bad_op code.
var ErrRejected = errors.New("combine op rejected")

// adversarial is the value set the property tests cross-product:
// where overflow and corner-case bugs live.
var adversarial = []int64{0, 1, -1, minInt64, maxInt64}

const maxInt64 = 1<<63 - 1

// Registered is one accepted op: the program plus its registration
// identity. Instances are immutable; re-registration under the same
// name installs a NEW Registered (with a new hash), so in-flight scans
// holding the old pointer finish under the semantics they started
// with.
type Registered struct {
	Tenant string
	Name   string
	Prog   *Program
	Hash   uint64
	Source string

	// planOnce/plan cache the compiled vector plan (vector.go). Lazy so
	// paths that never serve the op (pure hash propagation) skip the
	// compile; Once so concurrent executors share one plan. nil plan ==
	// scalar fallback.
	planOnce sync.Once
	plan     *VecPlan
}

// Width returns the op's tuple width.
func (r *Registered) Width() int { return r.Prog.Width }

// Plan returns the op's compiled vector plan, or nil when the program
// needs scalar execution (irreducible control flow — gcd's loop).
// Compiled once per registration and shared; plans are immutable.
func (r *Registered) Plan() *VecPlan {
	r.planOnce.Do(func() { r.plan = CompileVec(r.Prog) })
	return r.plan
}

// encode appends the program's canonical binary encoding: magic,
// width, identity fields, then per instruction the opcode byte plus
// (for immediate-carrying opcodes only) the 8-byte LE immediate.
func (p *Program) encode(b []byte) []byte {
	b = append(b, 'c', 'm', 'b', '1', byte(p.Width))
	var w [8]byte
	for _, v := range p.Identity {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		b = append(b, w[:]...)
	}
	for _, in := range p.Code {
		b = append(b, byte(in.Op))
		if in.Op.hasImm() {
			binary.LittleEndian.PutUint64(w[:], uint64(in.Imm))
			b = append(b, w[:]...)
		}
	}
	return b
}

// HashProgram returns the content hash (FNV-64a over the canonical
// encoding). Two sources that assemble to the same program — comments,
// label names, formatting — share a hash; any semantic difference
// (width, identity, instruction stream) changes it.
func HashProgram(p *Program) uint64 {
	h := fnv.New64a()
	h.Write(p.encode(make([]byte, 0, 5+8*len(p.Identity)+9*len(p.Code))))
	return h.Sum64()
}

// Validate property-tests p as a monoid: identity both sides, then
// associativity, over random and adversarial tuples. The error on
// failure carries the counterexample verbatim. Any VM fault during
// validation (stack, budget) also rejects — an op that can't combine
// the adversarial values can't be served.
func Validate(p *Program) error {
	if err := p.checkStatic(); err != nil {
		return fmt.Errorf("%w: %w", ErrRejected, err)
	}
	var fr Frame
	w := p.Width
	// rng is seeded from the content hash: validation is deterministic
	// per program, so a rejection reproduces.
	rng := rand.New(rand.NewSource(int64(HashProgram(p))))
	tuples := make([][]int64, 0, validateRandomTrials+len(adversarial)*w)
	for _, v := range adversarial {
		t := make([]int64, w)
		for i := range t {
			t[i] = v
		}
		tuples = append(tuples, t)
		if w > 1 {
			// Mixed tuples: adversarial value in one field, small
			// values elsewhere.
			for f := 0; f < w; f++ {
				m := make([]int64, w)
				for i := range m {
					m[i] = int64(rng.Intn(7)) - 3
				}
				m[f] = v
				tuples = append(tuples, m)
			}
		}
	}
	for i := 0; i < validateRandomTrials; i++ {
		t := make([]int64, w)
		for j := range t {
			switch rng.Intn(3) {
			case 0:
				t[j] = int64(rng.Intn(201)) - 100
			case 1:
				t[j] = rng.Int63() - rng.Int63()
			default:
				t[j] = adversarial[rng.Intn(len(adversarial))]
			}
		}
		tuples = append(tuples, t)
	}

	exec := func(dst, a, b []int64, what string) error {
		if err := p.Exec(&fr, dst, a, b); err != nil {
			return fmt.Errorf("%w: %s of %v and %v faults: %w", ErrRejected, what, a, b, err)
		}
		return nil
	}
	var t1, t2, t3 [MaxWidth]int64
	eq := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// Identity, both sides.
	for _, x := range tuples {
		if err := exec(t1[:w], p.Identity, x, "combine"); err != nil {
			return err
		}
		if !eq(t1[:w], x) {
			return fmt.Errorf("%w: identity fails on the left: f(%v, %v) = %v, want %v",
				ErrRejected, p.Identity, x, append([]int64(nil), t1[:w]...), x)
		}
		if err := exec(t1[:w], x, p.Identity, "combine"); err != nil {
			return err
		}
		if !eq(t1[:w], x) {
			return fmt.Errorf("%w: identity fails on the right: f(%v, %v) = %v, want %v",
				ErrRejected, x, p.Identity, append([]int64(nil), t1[:w]...), x)
		}
	}

	// Associativity over sampled triples: every adversarial-only triple
	// (bounded), plus random triples from the full tuple pool.
	checkTriple := func(x, y, z []int64) error {
		if err := exec(t1[:w], x, y, "combine"); err != nil {
			return err
		}
		if err := exec(t1[:w], t1[:w], z, "combine"); err != nil {
			return err
		}
		if err := exec(t2[:w], y, z, "combine"); err != nil {
			return err
		}
		if err := exec(t3[:w], x, t2[:w], "combine"); err != nil {
			return err
		}
		if !eq(t1[:w], t3[:w]) {
			return fmt.Errorf("%w: not associative: f(f(x,y),z) = %v but f(x,f(y,z)) = %v for x=%v y=%v z=%v",
				ErrRejected, append([]int64(nil), t1[:w]...), append([]int64(nil), t3[:w]...), x, y, z)
		}
		return nil
	}
	if w == 1 {
		// Width 1: the adversarial set is small enough to sweep
		// exhaustively (5³ = 125 triples).
		for _, a := range adversarial {
			for _, b := range adversarial {
				for _, c := range adversarial {
					if err := checkTriple([]int64{a}, []int64{b}, []int64{c}); err != nil {
						return err
					}
				}
			}
		}
	}
	for i := 0; i < validateRandomTrials*2; i++ {
		x := tuples[rng.Intn(len(tuples))]
		y := tuples[rng.Intn(len(tuples))]
		z := tuples[rng.Intn(len(tuples))]
		if err := checkTriple(x, y, z); err != nil {
			return err
		}
	}
	return nil
}

// Registry is the tenant-scoped op table. Lookup is lock-cheap
// (RWMutex read path); registration validates outside the lock.
type Registry struct {
	perTenantCap int

	mu sync.RWMutex
	m  map[string]map[string]*Registered // tenant → name → op
}

// DefaultPerTenantCap bounds how many distinct op names one tenant may
// hold; re-registering an existing name never counts against it.
const DefaultPerTenantCap = 64

// NewRegistry returns a registry with the given per-tenant name cap
// (<= 0 means DefaultPerTenantCap).
func NewRegistry(perTenantCap int) *Registry {
	if perTenantCap <= 0 {
		perTenantCap = DefaultPerTenantCap
	}
	return &Registry{perTenantCap: perTenantCap, m: make(map[string]map[string]*Registered)}
}

// validName: short, lowercase-ish identifiers; the wire prefixes them
// with "user:".
func validName(name string) bool {
	if name == "" || len(name) > maxNameLen {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// Register parses, validates, and installs source as (tenant, name).
// Re-registration semantics: the same name with the same content hash
// is an idempotent success; a different program REPLACES the old one
// under a new hash (scans already holding the old Registered finish
// under it). Returns the installed op.
func (rg *Registry) Register(tenant, name, source string) (*Registered, error) {
	if !validName(name) {
		return nil, fmt.Errorf("%w: bad op name %q (want 1..%d chars of [a-z0-9._-])", ErrRejected, name, maxNameLen)
	}
	prog, err := Parse(source)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrRejected, err)
	}
	if err := Validate(prog); err != nil {
		return nil, err
	}
	reg := &Registered{Tenant: tenant, Name: name, Prog: prog, Hash: HashProgram(prog), Source: source}

	rg.mu.Lock()
	defer rg.mu.Unlock()
	ops := rg.m[tenant]
	if old, ok := ops[name]; ok {
		if old.Hash == reg.Hash {
			return old, nil // idempotent re-registration
		}
		ops[name] = reg // replacement
		return reg, nil
	}
	if len(ops) >= rg.perTenantCap {
		return nil, fmt.Errorf("%w: tenant %q holds %d ops (cap %d)", ErrRejected, tenant, len(ops), rg.perTenantCap)
	}
	if ops == nil {
		ops = make(map[string]*Registered)
		rg.m[tenant] = ops
	}
	ops[name] = reg
	return reg, nil
}

// Lookup returns the tenant's op by name, or nil.
func (rg *Registry) Lookup(tenant, name string) *Registered {
	rg.mu.RLock()
	defer rg.mu.RUnlock()
	return rg.m[tenant][name]
}

// Len reports how many ops a tenant holds.
func (rg *Registry) Len(tenant string) int {
	rg.mu.RLock()
	defer rg.mu.RUnlock()
	return len(rg.m[tenant])
}
