package combine

// Superinstruction fusion: a peephole pass over the compiled vector
// code that inlines cheap moves into their consumers, so the hot
// push/push/arith shapes the golden examples compile to become ONE
// vector instruction reading both arguments straight from the strided
// input tuples. `arga 0; argb 0; add` lowers to
//
//	mov r0, a[0]
//	mov r1, b[0]
//	add r2, r0, r1
//
// and fuses to the single superinstruction `add r0, a[0], b[0]` — one
// dispatch, two strided loads, one store per lane, which is what lets
// the engine approach the native kernels' instruction mix.
//
// Inlining rules:
//   - a mov from a constant or another register is inlined into every
//     use (it is pure renaming);
//   - a mov from an argument field (srcA/srcB) is inlined only when the
//     register has a single use — inlining a multi-use argument load
//     would re-read memory per use instead of once into a row.
//
// After inlining, dead moves are swept backward (an instruction is live
// iff its register feeds the output tuple or a live instruction) and
// registers are renumbered compactly so VecScratch rows stay tight.
func fusePlan(vp *VecPlan) {
	code := vp.code
	if len(code) == 0 {
		return
	}

	// Use counts per register over instruction operands and outputs.
	// Only ACTIVE operand slots count — an unused y/z slot is the zero
	// operand, which happens to name register 0.
	uses := make([]int, vp.nreg)
	countOp := func(o operand) {
		if o.kind == srcReg {
			uses[o.idx]++
		}
	}
	for i := range code {
		for _, o := range activeOps(&code[i]) {
			countOp(*o)
		}
	}
	for _, o := range vp.out {
		countOp(o)
	}

	// Forward pass: rewrite operands through the replacement map, then
	// decide whether this instruction becomes a replacement itself.
	repl := make([]*operand, vp.nreg)
	resolve := func(o operand) operand {
		for o.kind == srcReg && repl[o.idx] != nil {
			o = *repl[o.idx]
		}
		return o
	}
	live := make([]bool, len(code))
	for i := range code {
		in := &code[i]
		for _, o := range activeOps(in) {
			*o = resolve(*o)
		}
		if in.op == vMov {
			src := in.x
			inline := false
			switch src.kind {
			case srcImm, srcReg:
				inline = true
			case srcA, srcB:
				inline = uses[in.dst] <= 1
			}
			if inline {
				s := src
				repl[in.dst] = &s
				continue // instruction dropped; DCE confirms below
			}
		}
		live[i] = true
	}
	for i := range vp.out {
		vp.out[i] = resolve(vp.out[i])
	}

	// Backward DCE: an instruction is live iff its dst is needed.
	needed := make([]bool, vp.nreg)
	for _, o := range vp.out {
		if o.kind == srcReg {
			needed[o.idx] = true
		}
	}
	for i := len(code) - 1; i >= 0; i-- {
		if !live[i] || !needed[code[i].dst] {
			live[i] = false
			continue
		}
		for _, o := range activeOps(&code[i]) {
			if o.kind == srcReg {
				needed[o.idx] = true
			}
		}
	}

	// Compact: renumber surviving registers in definition order.
	remap := make([]uint16, vp.nreg)
	for i := range remap {
		remap[i] = ^uint16(0)
	}
	out := code[:0]
	nreg := 0
	for i := range code {
		if !live[i] {
			continue
		}
		in := code[i]
		for _, o := range activeOps(&in) {
			*o = remapOp(*o, remap)
		}
		remap[in.dst] = uint16(nreg)
		in.dst = uint16(nreg)
		nreg++
		out = append(out, in)
	}
	for i := range vp.out {
		vp.out[i] = remapOp(vp.out[i], remap)
	}
	vp.code = out
	vp.nreg = nreg
}

func remapOp(o operand, remap []uint16) operand {
	if o.kind == srcReg {
		o.idx = remap[o.idx]
	}
	return o
}

// activeOps returns pointers to the operand slots an instruction
// actually reads (vMov/vUn: x; vBin: x,y; vSel: x,y,z).
func activeOps(in *vinstr) []*operand {
	switch in.op {
	case vBin:
		return []*operand{&in.x, &in.y}
	case vSel:
		return []*operand{&in.x, &in.y, &in.z}
	default:
		return []*operand{&in.x}
	}
}
