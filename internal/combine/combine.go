// Package combine is a sandboxed stack-bytecode VM for user-defined
// binary combine functions — the "⊕" of a scan — over fixed-width
// int64 tuples. The paper's whole point is that scans are parameterized
// by an ARBITRARY associative operator; this package lets a tenant ship
// one over the wire instead of waiting for a new native kernel.
//
// A combine op is a straight-line-plus-branches bytecode program that
// reads the two argument tuples (arga/argb), computes on a bounded
// operand stack plus a tiny local frame, and leaves the result tuple on
// the stack. Loops are allowed (gcd needs one) but every call runs
// under a hard step budget, so a hostile or buggy op terminates with a
// typed budget error instead of wedging an executor. The VM allocates
// nothing: all state lives in a caller-owned Frame that is reused call
// after call, which is what lets the serving hot path run user ops
// without breaking its allocs-per-request gate.
//
// Safety model (what "sandboxed" means here):
//   - no memory access beyond the two argument tuples, the fixed-size
//     stack, and the fixed-size locals — there are no load/store
//     instructions that take computed addresses;
//   - no I/O, no calls, no allocation;
//   - division and shift corner cases are totally defined (never
//     panic): x/0 = 0, x%0 = 0, MinInt64/-1 = MinInt64;
//   - every call is bounded by StepBudget instructions.
//
// Registration-time validation (registry.go) property-tests each
// submitted op for associativity and identity before it is ever
// served, rejecting non-monoids with a concrete counterexample.
package combine

import (
	"errors"
	"fmt"
)

// Limits. MaxWidth bounds the tuple width (argmax-with-index is a
// 2-tuple; 4 leaves headroom for small windowed stats). MaxProgram
// bounds program length; StackCap and LocalCap size the Frame. The
// step budget bounds one CALL of the op, not one request — a scan of n
// tuples makes ~n calls, each individually budgeted.
const (
	MaxWidth   = 4
	MaxProgram = 256
	StackCap   = 16
	LocalCap   = 8

	// StepBudget is the per-call instruction budget. Euclid's gcd on
	// 64-bit inputs needs < 100 iterations of a ~10-instruction loop;
	// 4096 clears every honest op by an order of magnitude while still
	// terminating a runaway loop in well under a microsecond.
	StepBudget = 4096
)

// Typed failures. ErrBudget is the one reachable from a validated op
// at serve time (a loop whose trip count depends on input data);
// ErrStack and ErrBadProgram are caught at validation and should never
// escape a registered op.
var (
	ErrBudget     = errors.New("combine op exceeded its step budget")
	ErrStack      = errors.New("combine op stack fault")
	ErrBadProgram = errors.New("bad combine program")
)

// OpCode identifies a combine-VM instruction. The set is deliberately
// tiny: tuple-field pushes, constants, a local frame, integer
// arithmetic with totally-defined corner cases, compares, select,
// stack shuffles, and bounded branches.
type OpCode uint8

const (
	// OpConst pushes Imm.
	OpConst OpCode = iota
	// OpArgA / OpArgB push field Imm of the left / right argument.
	OpArgA
	OpArgB
	// OpLoad / OpStore read / write local slot Imm (LocalCap slots,
	// zeroed at call entry).
	OpLoad
	OpStore
	// Binary arithmetic: pop y, pop x, push x∘y.
	OpAdd
	OpSub
	OpMul
	// OpDiv / OpMod are totally defined: x/0 = 0, x%0 = 0, and
	// MinInt64 / -1 = MinInt64 (mod 0) rather than the hardware trap.
	OpDiv
	OpMod
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	// Unary: pop x, push ∘x. OpAbs(MinInt64) = MinInt64 (two's
	// complement; defined, not trapped).
	OpNeg
	OpAbs
	// Compares push 1 or 0: pop y, pop x, push x<y / x<=y / x==y.
	OpLt
	OpLe
	OpEq
	// OpSelect pops cond, onFalse, onTrue (in that order) and pushes
	// onTrue if cond != 0 else onFalse. Push order: t, f, cond.
	OpSelect
	// Stack shuffles. OpPick pushes a copy of the value Imm slots below
	// the top (pick 0 == dup).
	OpDup
	OpDrop
	OpSwap
	OpPick
	// Branches. Targets are absolute instruction indexes, validated at
	// parse time. OpJz / OpJnz pop the condition.
	OpJmp
	OpJz
	OpJnz
	// OpRet ends the call immediately (falling off the end is an
	// implicit ret).
	OpRet

	opCodeCount
)

// hasImm reports whether an opcode carries an immediate operand.
func (op OpCode) hasImm() bool {
	switch op {
	case OpConst, OpArgA, OpArgB, OpLoad, OpStore, OpPick, OpJmp, OpJz, OpJnz:
		return true
	}
	return false
}

// Instr is one VM instruction.
type Instr struct {
	Op  OpCode
	Imm int64
}

// Program is a validated combine program: the instructions plus the
// tuple width and identity element its monoid is declared over.
// Programs are immutable once built; Registered wraps one with its
// content hash and registration metadata.
type Program struct {
	Width    int
	Identity []int64 // len == Width
	Code     []Instr
}

// checkStatic validates everything checkable without running: width,
// identity length, program length, opcode range, and immediate ranges
// (field indexes, local slots, pick depths, jump targets).
func (p *Program) checkStatic() error {
	if p.Width < 1 || p.Width > MaxWidth {
		return fmt.Errorf("%w: width %d (want 1..%d)", ErrBadProgram, p.Width, MaxWidth)
	}
	if len(p.Identity) != p.Width {
		return fmt.Errorf("%w: identity has %d fields for width %d", ErrBadProgram, len(p.Identity), p.Width)
	}
	if len(p.Code) == 0 {
		return fmt.Errorf("%w: empty program", ErrBadProgram)
	}
	if len(p.Code) > MaxProgram {
		return fmt.Errorf("%w: %d instructions (max %d)", ErrBadProgram, len(p.Code), MaxProgram)
	}
	for pc, in := range p.Code {
		if in.Op >= opCodeCount {
			return fmt.Errorf("%w: pc %d: unknown opcode %d", ErrBadProgram, pc, in.Op)
		}
		switch in.Op {
		case OpArgA, OpArgB:
			if in.Imm < 0 || in.Imm >= int64(p.Width) {
				return fmt.Errorf("%w: pc %d: %s field %d out of range for width %d", ErrBadProgram, pc, in.Op, in.Imm, p.Width)
			}
		case OpLoad, OpStore:
			if in.Imm < 0 || in.Imm >= LocalCap {
				return fmt.Errorf("%w: pc %d: local slot %d out of range (0..%d)", ErrBadProgram, pc, in.Imm, LocalCap-1)
			}
		case OpPick:
			if in.Imm < 0 || in.Imm >= StackCap {
				return fmt.Errorf("%w: pc %d: pick depth %d out of range", ErrBadProgram, pc, in.Imm)
			}
		case OpJmp, OpJz, OpJnz:
			if in.Imm < 0 || in.Imm > int64(len(p.Code)) {
				return fmt.Errorf("%w: pc %d: jump target %d out of range (0..%d)", ErrBadProgram, pc, in.Imm, len(p.Code))
			}
		}
	}
	return nil
}

// Frame is one executor's scratch state: the operand stack and local
// slots. A Frame is reused across calls (Exec resets it), so running a
// user op allocates nothing. Frames are not safe for concurrent use;
// give each executor goroutine its own.
type Frame struct {
	stack  [StackCap]int64
	locals [LocalCap]int64
	// argA/argB/out back ExecScalar and carry folds so no call site
	// needs to allocate argument slices.
	argA, argB, out [MaxWidth]int64
}

// Exec runs the combine: dst = combine(a, b), all of length
// p.Width. dst may alias a or b. Returns ErrBudget if the call exceeds
// StepBudget instructions, ErrStack on an operand-stack fault (which
// validation makes unreachable for registered ops on the straight-line
// paths it exercised, but input-dependent branches can still reach).
func (p *Program) Exec(fr *Frame, dst, a, b []int64) error {
	st := fr.stack[:0]
	locals := &fr.locals
	*locals = [LocalCap]int64{}
	steps := 0
	code := p.Code
	for pc := 0; pc < len(code); {
		if steps++; steps > StepBudget {
			return ErrBudget
		}
		in := code[pc]
		pc++
		switch in.Op {
		case OpConst:
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, in.Imm)
		case OpArgA:
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, a[in.Imm])
		case OpArgB:
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, b[in.Imm])
		case OpLoad:
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, locals[in.Imm])
		case OpStore:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			locals[in.Imm] = st[len(st)-1]
			st = st[:len(st)-1]
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax, OpAnd, OpOr, OpXor, OpLt, OpLe, OpEq:
			if len(st) < 2 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			x, y := st[len(st)-2], st[len(st)-1]
			st = st[:len(st)-1]
			var r int64
			switch in.Op {
			case OpAdd:
				r = x + y
			case OpSub:
				r = x - y
			case OpMul:
				r = x * y
			case OpDiv:
				if y == 0 {
					r = 0
				} else if x == minInt64 && y == -1 {
					r = minInt64
				} else {
					r = x / y
				}
			case OpMod:
				if y == 0 || (x == minInt64 && y == -1) {
					r = 0
				} else {
					r = x % y
				}
			case OpMin:
				if r = x; y < x {
					r = y
				}
			case OpMax:
				if r = x; y > x {
					r = y
				}
			case OpAnd:
				r = x & y
			case OpOr:
				r = x | y
			case OpXor:
				r = x ^ y
			case OpLt:
				if x < y {
					r = 1
				}
			case OpLe:
				if x <= y {
					r = 1
				}
			case OpEq:
				if x == y {
					r = 1
				}
			}
			st[len(st)-1] = r
		case OpNeg:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			st[len(st)-1] = -st[len(st)-1]
		case OpAbs:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			if v := st[len(st)-1]; v < 0 {
				st[len(st)-1] = -v
			}
		case OpSelect:
			if len(st) < 3 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			t, f, c := st[len(st)-3], st[len(st)-2], st[len(st)-1]
			st = st[:len(st)-2]
			if c != 0 {
				st[len(st)-1] = t
			} else {
				st[len(st)-1] = f
			}
		case OpDup:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, st[len(st)-1])
		case OpDrop:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			st = st[:len(st)-1]
		case OpSwap:
			if len(st) < 2 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]
		case OpPick:
			d := int(in.Imm)
			if d >= len(st) {
				return fmt.Errorf("%w: pick %d into depth %d at pc %d", ErrStack, d, len(st), pc-1)
			}
			if len(st) == StackCap {
				return fmt.Errorf("%w: overflow at pc %d", ErrStack, pc-1)
			}
			st = append(st, st[len(st)-1-d])
		case OpJmp:
			pc = int(in.Imm)
		case OpJz, OpJnz:
			if len(st) == 0 {
				return fmt.Errorf("%w: underflow at pc %d", ErrStack, pc-1)
			}
			c := st[len(st)-1]
			st = st[:len(st)-1]
			if (c == 0) == (in.Op == OpJz) {
				pc = int(in.Imm)
			}
		case OpRet:
			pc = len(code)
		}
	}
	if len(st) != p.Width {
		return fmt.Errorf("%w: program left %d values on the stack for width %d", ErrStack, len(st), p.Width)
	}
	copy(dst, st)
	return nil
}

// ExecScalar is the width-1 fast path: r = combine(a, b).
func (p *Program) ExecScalar(fr *Frame, a, b int64) (int64, error) {
	fr.argA[0], fr.argB[0] = a, b
	if err := p.Exec(fr, fr.out[:1], fr.argA[:1], fr.argB[:1]); err != nil {
		return 0, err
	}
	return fr.out[0], nil
}

const minInt64 = -1 << 63
