package combine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// mustExec runs combine(a, b) for width-1 programs, failing the test
// on any VM fault.
func mustExec(t *testing.T, p *Program, a, b int64) int64 {
	t.Helper()
	var fr Frame
	r, err := p.ExecScalar(&fr, a, b)
	if err != nil {
		t.Fatalf("exec(%d, %d): %v", a, b, err)
	}
	return r
}

func TestExamplesValidate(t *testing.T) {
	for name, src := range Examples {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := Validate(p); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
	}
}

func refGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestGCDMatchesReference(t *testing.T) {
	p := MustParse(ExampleGCD)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Int63n(1 << 40)
		b := rng.Int63n(1 << 40)
		if got, want := mustExec(t, p, a, b), int64(refGCD(uint64(a), uint64(b))); got != want {
			t.Fatalf("gcd(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
	// Exact identity, sign preserved.
	for _, v := range []int64{-7, 7, 0, -1 << 62, minInt64} {
		if got := mustExec(t, p, v, 0); got != v {
			t.Fatalf("gcd(%d, 0) = %d, want %d", v, got, v)
		}
		if got := mustExec(t, p, 0, v); got != v {
			t.Fatalf("gcd(0, %d) = %d, want %d", v, got, v)
		}
	}
	// Negative magnitudes.
	if got := mustExec(t, p, -6, 4); got != 2 {
		t.Fatalf("gcd(-6, 4) = %d, want 2", got)
	}
}

func TestSatAddMatchesReference(t *testing.T) {
	p := MustParse(ExampleSatAdd)
	rng := rand.New(rand.NewSource(2))
	sat := func(a, b uint64) uint64 {
		if s := a + b; s >= a {
			return s
		}
		return ^uint64(0)
	}
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if got, want := uint64(mustExec(t, p, int64(a), int64(b))), sat(a, b); got != want {
			t.Fatalf("satadd(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestArgmaxCombine(t *testing.T) {
	p := MustParse(ExampleArgmax)
	var fr Frame
	combine := func(a, b [2]int64) [2]int64 {
		var out [2]int64
		if err := p.Exec(&fr, out[:], a[:], b[:]); err != nil {
			t.Fatalf("exec: %v", err)
		}
		return out
	}
	if got := combine([2]int64{5, 0}, [2]int64{9, 1}); got != [2]int64{9, 1} {
		t.Fatalf("argmax picked %v", got)
	}
	if got := combine([2]int64{9, 3}, [2]int64{9, 1}); got != [2]int64{9, 1} {
		t.Fatalf("tie should pick the smaller index, got %v", got)
	}
	if got := combine([2]int64{9, 1}, [2]int64{9, 3}); got != [2]int64{9, 1} {
		t.Fatalf("tie should pick the smaller index, got %v", got)
	}
}

func TestNonAssociativeRejectedWithCounterexample(t *testing.T) {
	p, err := Parse(ExampleNonAssociative)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	err = Validate(p)
	if err == nil {
		t.Fatal("signed saturating add validated; it is not associative")
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("rejection not typed ErrRejected: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "not associative") || !strings.Contains(msg, "x=") {
		t.Fatalf("rejection lacks a counterexample: %v", err)
	}
}

func TestBadIdentityRejected(t *testing.T) {
	// max with identity 0: f(0, -5) = 0 != -5.
	err := Validate(MustParse(".width 1\n.identity 0\narga 0\nargb 0\nmax\n"))
	if err == nil || !strings.Contains(err.Error(), "identity fails") {
		t.Fatalf("want identity rejection, got %v", err)
	}
}

func TestRunawayLoopRejectedByBudget(t *testing.T) {
	err := Validate(MustParse(".width 1\n.identity 0\nspin:\njmp spin\n"))
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want budget rejection, got %v", err)
	}
}

func TestStackFaultsRejected(t *testing.T) {
	for _, src := range []string{
		".width 1\n.identity 0\nadd\n",            // underflow
		".width 1\n.identity 0\narga 0\n\targa 0\nadd\ndup\n", // leaves 2 values
	} {
		p, err := Parse(src)
		if err != nil {
			continue // static rejection is fine too
		}
		if err := Validate(p); err == nil {
			t.Fatalf("program %q validated", src)
		}
	}
}

func TestParseErrorsCarryLine(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"bogus\n", "line 1"},
		{".width 9\n", "line 1"},
		{"arga 0\njmp nowhere\n", "line 2"},
		{"arga 0\narga 5\n", "field 5 out of range"},
	} {
		if _, err := Parse(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Parse(%q) = %v, want mention of %q", tc.src, err, tc.want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for name, src := range Examples {
		p := MustParse(src)
		p2, err := Parse(p.Format())
		if err != nil {
			t.Fatalf("%s: reparse of Format: %v", name, err)
		}
		if HashProgram(p) != HashProgram(p2) {
			t.Fatalf("%s: Format round-trip changed the content hash", name)
		}
	}
}

func TestHashIgnoresFormatting(t *testing.T) {
	a := MustParse(".width 1\n.identity 0\narga 0\nargb 0\nor\n")
	b := MustParse("; comment\n.width 1\n.identity 0\n  arga 0 ; x\n  argb 0\n  or\n")
	c := MustParse(".width 1\n.identity 0\narga 0\nargb 0\nand\n")
	if HashProgram(a) != HashProgram(b) {
		t.Fatal("formatting changed the hash")
	}
	if HashProgram(a) == HashProgram(c) {
		t.Fatal("different programs share a hash")
	}
}

func TestExecAllocFree(t *testing.T) {
	p := MustParse(ExampleGCD)
	var fr Frame
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.ExecScalar(&fr, 123456, 7890); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExecScalar allocates %.1f times per call, want 0", allocs)
	}
}

func TestRegistryCapAndReRegistration(t *testing.T) {
	rg := NewRegistry(2)
	if _, err := rg.Register("t1", "a", ExampleBitOr); err != nil {
		t.Fatal(err)
	}
	r1, err := rg.Register("t1", "b", ExampleBitOr)
	if err != nil {
		t.Fatal(err)
	}
	// Cap reached: a third NAME is rejected...
	if _, err := rg.Register("t1", "c", ExampleBitOr); err == nil || !errors.Is(err, ErrRejected) {
		t.Fatalf("want cap rejection, got %v", err)
	}
	// ...but re-registering an existing name is not counted against it.
	r2, err := rg.Register("t1", "b", ExampleBitOr)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("idempotent re-registration should return the installed op")
	}
	// A different program under the same name replaces it (new hash).
	r3, err := rg.Register("t1", "b", ExampleBitAnd)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 || r3.Hash == r1.Hash {
		t.Fatal("replacement should install a new Registered with a new hash")
	}
	if got := rg.Lookup("t1", "b"); got != r3 {
		t.Fatalf("lookup returned %v", got)
	}
	// Other tenants have their own namespace and cap.
	if _, err := rg.Register("t2", "a", ExampleBitAnd); err != nil {
		t.Fatal(err)
	}
	if rg.Lookup("t2", "a").Hash == rg.Lookup("t1", "a").Hash {
		t.Fatal("t2's op should be its own registration")
	}
	if rg.Lookup("t2", "b") != nil {
		t.Fatal("tenant namespaces leaked")
	}
}

func TestRegistryBadNames(t *testing.T) {
	rg := NewRegistry(0)
	for _, name := range []string{"", "UPPER", "sp ace", "x/y", strings.Repeat("a", 65)} {
		if _, err := rg.Register("t", name, ExampleBitOr); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}
