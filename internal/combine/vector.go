// Lane-blocked vectorized dispatch for combine programs.
//
// Program.Exec pays the interpreter's decode/dispatch tax once PER
// ELEMENT PAIR: a 3-instruction add program costs ~5 dispatched steps
// for every tuple of a 4096-tuple scan. This file flips the loop
// nesting. CompileVec lowers a bytecode program to a short straight-line
// sequence of REGISTER-STYLE vector instructions; VecPlan.Run then
// executes each vector instruction across a block of up to LaneBlock
// independent lanes, so the dispatch cost amortizes ~LaneBlock×.
//
// The lowering is a symbolic execution of the stack machine:
//   - stack slots and locals become compile-time operand names (a
//     register, an argument field, or a constant), so OpDup / OpSwap /
//     OpPick / OpLoad / OpStore / OpDrop cost NOTHING at run time —
//     they are renames;
//   - arithmetic on two constants folds at compile time;
//   - short forward branch-diamonds (if-then and if-then-else with
//     straight-line arms) are if-converted: both arms execute
//     speculatively on every lane and a per-lane select merges every
//     stack slot and local the arms disagree on. This is sound because
//     all VM arithmetic is totally defined — no arm can fault, so
//     executing the untaken arm is unobservable;
//   - anything else (backward jumps — gcd's loop — computed control
//     flow, ret inside an arm) makes CompileVec return nil and the
//     caller stays on scalar Exec.
//
// Budget semantics: a compiled plan's scalar twin executes at most one
// step per instruction (control flow is forward-only on every path), so
// it can never exceed StepBudget (MaxProgram = 256 < StepBudget = 4096)
// and — because symbolic execution verified operand depths on every
// path — it can never hit ErrStack either. Vectorized execution is
// therefore infallible: ErrBudget stays reachable only for programs
// that fall back to scalar Exec, where PR 9's per-request isolation
// already handles it. StepBudget accounting per lane is preserved
// exactly because the compiled forms provably cannot trip it.
package combine

const (
	// LaneBlock is the number of element pairs one vector instruction
	// dispatch covers; it sizes the per-register scratch rows.
	LaneBlock = 256

	// MinVecTuples is the request size below which callers should keep
	// the scalar walk: the blocked scan does ~2× the combine work
	// (block sums + re-scan), which only pays once enough lanes
	// amortize the dispatch.
	MinVecTuples = 64

	// minVecChunk keeps lanes from being shorter than the per-step
	// dispatch they amortize. 32 won an empirical sweep (16/32/64/128)
	// of BenchmarkScanBlockedAdd: longer chunks shrink the serial
	// pass-2 lane-sum scan faster than they grow per-step dispatch.
	minVecChunk = 32

	// maxVecCode bounds compiled plan growth (select merges can emit
	// more vector instructions than source instructions).
	maxVecCode = 1024
)

// srcKind says where a vector operand's value comes from.
type srcKind uint8

const (
	srcReg srcKind = iota // scratch register row
	srcA                  // field idx of the left argument tuple
	srcB                  // field idx of the right argument tuple
	srcImm                // compile-time constant
)

// operand names one input of a vector instruction. After fusion most
// arithmetic reads its arguments straight from the strided input
// tuples (srcA/srcB) — the "superinstruction" shape push/push/arith
// collapses to.
type operand struct {
	kind srcKind
	idx  uint16
	imm  int64
}

func (o operand) same(p operand) bool {
	return o.kind == p.kind && o.idx == p.idx && (o.kind != srcImm || o.imm == p.imm)
}

// vOp is the vector instruction set: move, binary, unary, select.
type vOp uint8

const (
	vMov vOp = iota // dst = x
	vBin            // dst = x <sub> y
	vUn             // dst = <sub> x
	vSel            // dst = z != 0 ? x : y
)

// vinstr is one vector instruction; sub carries the source OpCode for
// vBin/vUn.
type vinstr struct {
	op      vOp
	sub     OpCode
	dst     uint16
	x, y, z operand
}

// VecPlan is a compiled program: straight-line vector code plus the
// operands that form the output tuple (bottom-of-stack first, exactly
// the order Exec copies to dst).
type VecPlan struct {
	width int
	nreg  int
	code  []vinstr
	out   []operand
	promo Promotion
}

// NumInstr reports the compiled instruction count (after fusion).
func (vp *VecPlan) NumInstr() int { return len(vp.code) }

// Width returns the plan's tuple width.
func (vp *VecPlan) Width() int { return vp.width }

// vecCompiler is the symbolic interpreter state: the operand stack and
// locals hold NAMES (operands), not values.
type vecCompiler struct {
	p      *Program
	code   []vinstr
	nreg   int
	stack  []operand
	locals [LocalCap]operand
}

func (c *vecCompiler) newReg() uint16 {
	r := c.nreg
	c.nreg++
	return uint16(r)
}

func (c *vecCompiler) emit(in vinstr) bool {
	if len(c.code) >= maxVecCode {
		return false
	}
	c.code = append(c.code, in)
	return true
}

// CompileVec lowers p to a vector plan, or returns nil when p needs
// scalar execution (irreducible control flow, stack faults along some
// path, or plan-size blowup). A nil return is not an error — it is the
// fallback signal.
func CompileVec(p *Program) *VecPlan {
	if p.checkStatic() != nil {
		return nil
	}
	c := &vecCompiler{p: p}
	for i := range c.locals {
		c.locals[i] = operand{kind: srcImm}
	}
	code := p.Code
	pc := 0
	for pc < len(code) {
		in := code[pc]
		switch in.Op {
		case OpRet:
			pc = len(code)
		case OpJmp:
			// A top-level unconditional jump is either a loop (backward)
			// or an unusual skip; neither is worth if-converting.
			return nil
		case OpJz, OpJnz:
			next, ok := c.diamond(pc)
			if !ok {
				return nil
			}
			pc = next
		default:
			if !c.step(in) {
				return nil
			}
			pc++
		}
	}
	if len(c.stack) != p.Width {
		return nil // scalar Exec would fault on the result check
	}
	vp := &VecPlan{
		width: p.Width,
		nreg:  c.nreg,
		code:  c.code,
		out:   append([]operand(nil), c.stack...),
	}
	fusePlan(vp)
	vp.promo = detectPromotion(vp, p)
	return vp
}

// step symbolically executes one non-branch instruction. Returns false
// when the program would fault (stack over/underflow) or the plan
// outgrows maxVecCode — both mean "stay scalar".
func (c *vecCompiler) step(in Instr) bool {
	st := &c.stack
	push := func(o operand) bool {
		if len(*st) >= StackCap {
			return false
		}
		*st = append(*st, o)
		return true
	}
	pop := func() (operand, bool) {
		if len(*st) == 0 {
			return operand{}, false
		}
		o := (*st)[len(*st)-1]
		*st = (*st)[:len(*st)-1]
		return o, true
	}
	switch in.Op {
	case OpConst:
		return push(operand{kind: srcImm, imm: in.Imm})
	case OpArgA, OpArgB:
		k := srcA
		if in.Op == OpArgB {
			k = srcB
		}
		// Emit a mov so the value has a register name; fusePlan inlines
		// single-use movs into their consumers afterward.
		r := c.newReg()
		if !c.emit(vinstr{op: vMov, dst: r, x: operand{kind: k, idx: uint16(in.Imm)}}) {
			return false
		}
		return push(operand{kind: srcReg, idx: r})
	case OpLoad:
		return push(c.locals[in.Imm])
	case OpStore:
		o, ok := pop()
		if !ok {
			return false
		}
		c.locals[in.Imm] = o
		return true
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax, OpAnd, OpOr, OpXor, OpLt, OpLe, OpEq:
		y, ok := pop()
		if !ok {
			return false
		}
		x, ok := pop()
		if !ok {
			return false
		}
		if x.kind == srcImm && y.kind == srcImm {
			return push(operand{kind: srcImm, imm: binEval(in.Op, x.imm, y.imm)})
		}
		r := c.newReg()
		if !c.emit(vinstr{op: vBin, sub: in.Op, dst: r, x: x, y: y}) {
			return false
		}
		return push(operand{kind: srcReg, idx: r})
	case OpNeg, OpAbs:
		x, ok := pop()
		if !ok {
			return false
		}
		if x.kind == srcImm {
			return push(operand{kind: srcImm, imm: unEval(in.Op, x.imm)})
		}
		r := c.newReg()
		if !c.emit(vinstr{op: vUn, sub: in.Op, dst: r, x: x}) {
			return false
		}
		return push(operand{kind: srcReg, idx: r})
	case OpSelect:
		cnd, ok := pop()
		if !ok {
			return false
		}
		f, ok := pop()
		if !ok {
			return false
		}
		t, ok := pop()
		if !ok {
			return false
		}
		if cnd.kind == srcImm {
			if cnd.imm != 0 {
				return push(t)
			}
			return push(f)
		}
		r := c.newReg()
		if !c.emit(vinstr{op: vSel, dst: r, x: t, y: f, z: cnd}) {
			return false
		}
		return push(operand{kind: srcReg, idx: r})
	case OpDup:
		if len(*st) == 0 {
			return false
		}
		return push((*st)[len(*st)-1])
	case OpDrop:
		_, ok := pop()
		return ok
	case OpSwap:
		if len(*st) < 2 {
			return false
		}
		(*st)[len(*st)-1], (*st)[len(*st)-2] = (*st)[len(*st)-2], (*st)[len(*st)-1]
		return true
	case OpPick:
		d := int(in.Imm)
		if d >= len(*st) {
			return false
		}
		return push((*st)[len(*st)-1-d])
	}
	return false
}

// diamond if-converts the conditional branch at pc. Recognized shapes
// (T = branch target, both forward):
//
//	if-then:       jcc T ; fall-arm ; T:
//	if-then-else:  jcc T ; fall-arm ; jmp J ; T: taken-arm ; J:
//
// Both arms must be straight-line (no branches, no ret). The arms run
// symbolically on cloned states; every stack slot and local they
// disagree on gets a per-lane select keyed on the popped condition.
// Returns the join pc and ok=false for any shape it cannot convert.
func (c *vecCompiler) diamond(pc int) (int, bool) {
	code := c.p.Code
	in := code[pc]
	t := int(in.Imm)
	if t <= pc {
		return 0, false // backward branch: a loop
	}
	cnd, okPop := popOp(&c.stack)
	if !okPop {
		return 0, false
	}

	// Resolve a statically-known condition: just keep compiling the
	// live side.
	if cnd.kind == srcImm {
		taken := (cnd.imm == 0) == (in.Op == OpJz)
		if taken {
			return t, true
		}
		return pc + 1, true
	}

	fallLo, fallHi := pc+1, t // fall-through arm
	takenLo, takenHi := t, t  // empty unless if-then-else
	join := t
	if t > pc+1 && t-1 > fallLo-1 && code[t-1].Op == OpJmp {
		j := int(code[t-1].Imm)
		if j < t {
			return 0, false // else-jump going backward: loop shape
		}
		fallHi = t - 1
		takenLo, takenHi = t, j
		join = j
	}
	if !straightLine(code, fallLo, fallHi) || !straightLine(code, takenLo, takenHi) {
		return 0, false
	}

	// Speculatively execute both arms from the shared entry state.
	baseStack := append([]operand(nil), c.stack...)
	baseLocals := c.locals

	run := func(lo, hi int) ([]operand, [LocalCap]operand, bool) {
		c.stack = append(c.stack[:0], baseStack...)
		c.locals = baseLocals
		for i := lo; i < hi; i++ {
			if !c.step(code[i]) {
				return nil, baseLocals, false
			}
		}
		return append([]operand(nil), c.stack...), c.locals, true
	}
	fallStack, fallLocals, ok := run(fallLo, fallHi)
	if !ok {
		return 0, false
	}
	takenStack, takenLocals, ok := run(takenLo, takenHi)
	if !ok {
		return 0, false
	}
	if len(fallStack) != len(takenStack) {
		return 0, false // divergent depths: can't merge
	}

	// For OpJz the branch is TAKEN when cond == 0, so the fall arm is
	// the cond != 0 side; select(cond, t, f) picks t when cond != 0.
	// OpJnz is the mirror image.
	tStack, fStack := fallStack, takenStack
	tLocals, fLocals := fallLocals, takenLocals
	if in.Op == OpJnz {
		tStack, fStack = takenStack, fallStack
		tLocals, fLocals = takenLocals, fallLocals
	}
	merge := func(t, f operand) (operand, bool) {
		if t.same(f) {
			return t, true
		}
		r := c.newReg()
		if !c.emit(vinstr{op: vSel, dst: r, x: t, y: f, z: cnd}) {
			return operand{}, false
		}
		return operand{kind: srcReg, idx: r}, true
	}
	merged := make([]operand, len(tStack))
	for i := range tStack {
		m, ok := merge(tStack[i], fStack[i])
		if !ok {
			return 0, false
		}
		merged[i] = m
	}
	var mLocals [LocalCap]operand
	for i := range tLocals {
		m, ok := merge(tLocals[i], fLocals[i])
		if !ok {
			return 0, false
		}
		mLocals[i] = m
	}
	c.stack = append(c.stack[:0], merged...)
	c.locals = mLocals
	return join, true
}

func popOp(st *[]operand) (operand, bool) {
	if len(*st) == 0 {
		return operand{}, false
	}
	o := (*st)[len(*st)-1]
	*st = (*st)[:len(*st)-1]
	return o, true
}

// straightLine reports whether code[lo:hi] contains no control flow.
func straightLine(code []Instr, lo, hi int) bool {
	if lo > hi || hi > len(code) {
		return false
	}
	for i := lo; i < hi; i++ {
		switch code[i].Op {
		case OpJmp, OpJz, OpJnz, OpRet:
			return false
		}
	}
	return true
}

// binEval is the scalar twin of the vector binary loops — the same
// totally-defined semantics as Program.Exec's switch, factored so the
// compiler's constant folder and the vector runtime cannot drift from
// each other.
func binEval(op OpCode, x, y int64) int64 {
	switch op {
	case OpAdd:
		return x + y
	case OpSub:
		return x - y
	case OpMul:
		return x * y
	case OpDiv:
		return divTotal(x, y)
	case OpMod:
		return modTotal(x, y)
	case OpMin:
		if y < x {
			return y
		}
		return x
	case OpMax:
		if y > x {
			return y
		}
		return x
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpLt:
		if x < y {
			return 1
		}
		return 0
	case OpLe:
		if x <= y {
			return 1
		}
		return 0
	case OpEq:
		if x == y {
			return 1
		}
		return 0
	}
	panic("combine: binEval: not a binary opcode")
}

func unEval(op OpCode, x int64) int64 {
	switch op {
	case OpNeg:
		return -x
	case OpAbs:
		if x < 0 {
			return -x
		}
		return x
	}
	panic("combine: unEval: not a unary opcode")
}

func divTotal(x, y int64) int64 {
	if y == 0 {
		return 0
	}
	if x == minInt64 && y == -1 {
		return minInt64
	}
	return x / y
}

func modTotal(x, y int64) int64 {
	if y == 0 || (x == minInt64 && y == -1) {
		return 0
	}
	return x % y
}

// VecScratch is one executor's vector working set: the register slab,
// output-staging rows, the lane accumulator, and a Frame for the
// serial seed pass. Like Frame, it is reused call after call and is
// not safe for concurrent use.
type VecScratch struct {
	slab []int64
	rows [][]int64
	outT [MaxWidth][]int64
	// acc and seed are lane-major accumulator buffers for ScanBlocked:
	// lane l's tuple lives at [l*width : (l+1)*width].
	acc  []int64
	seed []int64
	// immCell backs stride-0 views of constant operands.
	immCell [4]int64
	fr      Frame
}

// NewVecScratch returns an empty scratch; rows grow on first use and
// are reused afterward.
func NewVecScratch() *VecScratch { return &VecScratch{} }

// ensure sizes the scratch for a plan with nreg registers. Re-ensuring
// the same register count (every Run of a blocked scan) is a no-op.
func (sc *VecScratch) ensure(nreg int) {
	if len(sc.rows) == nreg && sc.acc != nil {
		return
	}
	need := (nreg + MaxWidth) * LaneBlock
	if cap(sc.slab) < need {
		sc.slab = make([]int64, need)
	}
	sc.slab = sc.slab[:need]
	if cap(sc.rows) < nreg {
		sc.rows = make([][]int64, 0, nreg)
	}
	sc.rows = sc.rows[:0]
	for i := 0; i < nreg; i++ {
		sc.rows = append(sc.rows, sc.slab[i*LaneBlock:(i+1)*LaneBlock])
	}
	for i := 0; i < MaxWidth; i++ {
		off := (nreg + i) * LaneBlock
		sc.outT[i] = sc.slab[off : off+LaneBlock]
	}
	accNeed := 2 * LaneBlock * MaxWidth
	if cap(sc.acc) < accNeed {
		buf := make([]int64, accNeed)
		sc.acc = buf[:LaneBlock*MaxWidth]
		sc.seed = buf[LaneBlock*MaxWidth:]
	}
}

// view resolves an operand to a (base, stride) pair for lane indexing:
// value of lane l is base[l*stride]. Register rows are unit stride;
// argument fields are strided into the caller's tuple layout; constants
// are a stride-0 single cell.
func (sc *VecScratch) view(o operand, a []int64, as int, b []int64, bs int, cell int) ([]int64, int) {
	switch o.kind {
	case srcReg:
		return sc.rows[o.idx], 1
	case srcA:
		return a[o.idx:], as
	case srcB:
		return b[o.idx:], bs
	default:
		sc.immCell[cell] = o.imm
		return sc.immCell[cell : cell+1], 0
	}
}

// Run executes the plan across nl lanes (nl <= LaneBlock): for each
// lane l, dst tuple l = combine(a tuple l, b tuple l), where tuple l of
// a strided array p with stride s occupies p[l*s : l*s+width]. dst may
// alias a or b (output operands that read the argument arrays are
// staged through scratch rows before any dst write). Run cannot fail:
// CompileVec only accepts programs whose every path is fault-free.
func (vp *VecPlan) Run(sc *VecScratch, nl int, dst []int64, ds int, a []int64, as int, b []int64, bs int) {
	sc.ensure(vp.nreg)
	for _, in := range vp.code {
		d := sc.rows[in.dst][:nl]
		xs, xst := sc.view(in.x, a, as, b, bs, 0)
		switch in.op {
		case vMov:
			for l := 0; l < nl; l++ {
				d[l] = xs[l*xst]
			}
		case vUn:
			switch in.sub {
			case OpNeg:
				for l := 0; l < nl; l++ {
					d[l] = -xs[l*xst]
				}
			default: // OpAbs
				for l := 0; l < nl; l++ {
					if v := xs[l*xst]; v < 0 {
						d[l] = -v
					} else {
						d[l] = v
					}
				}
			}
		case vBin:
			ys, yst := sc.view(in.y, a, as, b, bs, 1)
			binRow(in.sub, d, xs, xst, ys, yst, nl)
		case vSel:
			ys, yst := sc.view(in.y, a, as, b, bs, 1)
			zs, zst := sc.view(in.z, a, as, b, bs, 2)
			for l := 0; l < nl; l++ {
				if zs[l*zst] != 0 {
					d[l] = xs[l*xst]
				} else {
					d[l] = ys[l*yst]
				}
			}
		}
	}
	// Scatter the output tuple. Operands that read the argument arrays
	// are staged into scratch rows first so dst aliasing a or b cannot
	// corrupt fields not yet read.
	for i, o := range vp.out {
		if o.kind == srcReg {
			continue
		}
		xs, xst := sc.view(o, a, as, b, bs, 0)
		t := sc.outT[i][:nl]
		for l := 0; l < nl; l++ {
			t[l] = xs[l*xst]
		}
	}
	for i, o := range vp.out {
		var row []int64
		if o.kind == srcReg {
			row = sc.rows[o.idx]
		} else {
			row = sc.outT[i]
		}
		for l := 0; l < nl; l++ {
			dst[l*ds+i] = row[l]
		}
	}
}

// binRow is one vector binary dispatch: the opcode switch runs ONCE,
// the operation runs nl times — the inversion this whole file exists
// for.
func binRow(op OpCode, d []int64, xs []int64, xst int, ys []int64, yst int, nl int) {
	switch op {
	case OpAdd:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] + ys[l*yst]
		}
	case OpSub:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] - ys[l*yst]
		}
	case OpMul:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] * ys[l*yst]
		}
	case OpDiv:
		for l := 0; l < nl; l++ {
			d[l] = divTotal(xs[l*xst], ys[l*yst])
		}
	case OpMod:
		for l := 0; l < nl; l++ {
			d[l] = modTotal(xs[l*xst], ys[l*yst])
		}
	case OpMin:
		for l := 0; l < nl; l++ {
			x, y := xs[l*xst], ys[l*yst]
			if y < x {
				x = y
			}
			d[l] = x
		}
	case OpMax:
		for l := 0; l < nl; l++ {
			x, y := xs[l*xst], ys[l*yst]
			if y > x {
				x = y
			}
			d[l] = x
		}
	case OpAnd:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] & ys[l*yst]
		}
	case OpOr:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] | ys[l*yst]
		}
	case OpXor:
		for l := 0; l < nl; l++ {
			d[l] = xs[l*xst] ^ ys[l*yst]
		}
	case OpLt:
		for l := 0; l < nl; l++ {
			v := int64(0)
			if xs[l*xst] < ys[l*yst] {
				v = 1
			}
			d[l] = v
		}
	case OpLe:
		for l := 0; l < nl; l++ {
			v := int64(0)
			if xs[l*xst] <= ys[l*yst] {
				v = 1
			}
			d[l] = v
		}
	case OpEq:
		for l := 0; l < nl; l++ {
			v := int64(0)
			if xs[l*xst] == ys[l*yst] {
				v = 1
			}
			d[l] = v
		}
	}
}

// ScanBlocked runs one request's scan through the vector engine using
// the paper's own block-sum decomposition, applied WITHIN the request:
// split the nt tuples into up-to-LaneBlock contiguous lanes, reduce
// each lane with vectorized steps (pass 1), serially scan the lane sums
// into per-lane seeds with scalar Exec (pass 2 — #lanes steps, not nt),
// then re-scan each lane from its seed, again vectorized (pass 3).
// That is ~2n combine applications instead of n, but each vector step
// covers #lanes tuples per dispatch, which is the trade the paper makes
// for Figure 10's block sums.
//
// Reassociation caveat: the decomposition regroups the fold, so it is
// only valid for ASSOCIATIVE combines — which registration validation
// establishes. The engine itself (Run) is per-pair and makes no such
// assumption.
//
// Semantics mirror execUserView exactly: forward folds combine(acc,
// el), backward folds combine(el, acc) walking from the tail; exclusive
// writes the accumulator before the fold, inclusive after; when seeded,
// acc[0] starts at carry (width-1, enforced at admission).
func (vp *VecPlan) ScanBlocked(sc *VecScratch, p *Program, dst, src []int64, inclusive, backward bool, carry int64, seeded bool) error {
	w := vp.width
	nt := len(src) / w
	if nt == 0 {
		return nil
	}
	chunk := (nt + LaneBlock - 1) / LaneBlock
	if chunk < minVecChunk {
		chunk = minVecChunk
	}
	lanes := (nt + chunk - 1) / chunk
	lastLen := nt - (lanes-1)*chunk
	sc.ensure(vp.nreg)

	acc := sc.acc[:lanes*w]
	seed := sc.seed[:lanes*w]
	// active reports how many lanes have an element at step k: the last
	// lane is the ragged one.
	active := func(k int) int {
		if k < lastLen {
			return lanes
		}
		return lanes - 1
	}

	// Pass 1: per-lane reduction into acc (lane-major, stride w).
	for l := 0; l < lanes; l++ {
		copy(acc[l*w:(l+1)*w], p.Identity)
	}
	laneStride := chunk * w
	if !backward {
		for k := 0; k < chunk; k++ {
			nl := active(k)
			if nl == 0 {
				continue
			}
			vp.Run(sc, nl, acc, w, acc, w, src[k*w:], laneStride)
		}
	} else {
		for k := chunk - 1; k >= 0; k-- {
			nl := active(k)
			if nl == 0 {
				continue
			}
			vp.Run(sc, nl, acc, w, src[k*w:], laneStride, acc, w)
		}
	}

	// Pass 2: serial scan of the lane sums into seeds. #lanes scalar
	// Execs — the only serial work left. Exec cannot fail here (the
	// plan compiled), but the error is still propagated defensively.
	var init [MaxWidth]int64
	copy(init[:w], p.Identity)
	if seeded {
		init[0] = carry
	}
	if !backward {
		copy(seed[0:w], init[:w])
		for l := 1; l < lanes; l++ {
			if err := p.Exec(&sc.fr, seed[l*w:(l+1)*w], seed[(l-1)*w:l*w], acc[(l-1)*w:l*w]); err != nil {
				return err
			}
		}
	} else {
		copy(seed[(lanes-1)*w:lanes*w], init[:w])
		for l := lanes - 2; l >= 0; l-- {
			if err := p.Exec(&sc.fr, seed[l*w:(l+1)*w], acc[(l+1)*w:(l+2)*w], seed[(l+1)*w:(l+2)*w]); err != nil {
				return err
			}
		}
	}

	// Pass 3: re-scan each lane from its seed, emitting outputs. The
	// accumulator buffer is reused (acc := seed values).
	copy(acc, seed)
	if !backward {
		for k := 0; k < chunk; k++ {
			nl := active(k)
			if nl == 0 {
				continue
			}
			if !inclusive {
				emitAcc(dst[k*w:], laneStride, acc, w, nl)
				vp.Run(sc, nl, acc, w, acc, w, src[k*w:], laneStride)
			} else {
				vp.Run(sc, nl, acc, w, acc, w, src[k*w:], laneStride)
				emitAcc(dst[k*w:], laneStride, acc, w, nl)
			}
		}
	} else {
		for k := chunk - 1; k >= 0; k-- {
			nl := active(k)
			if nl == 0 {
				continue
			}
			if !inclusive {
				emitAcc(dst[k*w:], laneStride, acc, w, nl)
				vp.Run(sc, nl, acc, w, src[k*w:], laneStride, acc, w)
			} else {
				vp.Run(sc, nl, acc, w, src[k*w:], laneStride, acc, w)
				emitAcc(dst[k*w:], laneStride, acc, w, nl)
			}
		}
	}
	return nil
}

// emitAcc copies each active lane's accumulator tuple to its output
// slot: dst[l*ds : l*ds+w] = acc[l*as : l*as+w].
func emitAcc(dst []int64, ds int, acc []int64, as, nl int) {
	for l := 0; l < nl; l++ {
		copy(dst[l*ds:l*ds+as], acc[l*as:(l+1)*as])
	}
}
