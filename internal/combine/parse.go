package combine

// The combine-op assembler. Tenants submit ops as text — one
// instruction per line, ';' comments, "name:" labels for branch
// targets, and two directives declaring the monoid: ".width w" (tuple
// width, default 1) and ".identity v0 [v1 ...]" (the identity tuple,
// default all zeros). The parser resolves labels to absolute
// instruction indexes and then runs the program's static checks; see
// examples.go for canonical programs (gcd, saturating add,
// argmax-with-index).

import (
	"fmt"
	"strconv"
	"strings"
)

// opNames maps opcodes to mnemonics; mnemonics is its inversion.
var opNames = map[OpCode]string{
	OpConst: "const", OpArgA: "arga", OpArgB: "argb",
	OpLoad: "load", OpStore: "store",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpMin: "min", OpMax: "max", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNeg: "neg", OpAbs: "abs",
	OpLt: "lt", OpLe: "le", OpEq: "eq", OpSelect: "select",
	OpDup: "dup", OpDrop: "drop", OpSwap: "swap", OpPick: "pick",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpRet: "ret",
}

var mnemonics = func() map[string]OpCode {
	m := make(map[string]OpCode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the assembler mnemonic.
func (op OpCode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// jumpOps reports branch mnemonics (whose immediate is a label).
func jumpOp(op OpCode) bool { return op == OpJmp || op == OpJz || op == OpJnz }

// Parse assembles source into a Program and runs its static checks.
// Errors carry the 1-based source line.
func Parse(src string) (*Program, error) {
	p := &Program{Width: 1}
	type fixup struct {
		pc    int
		label string
		line  int
	}
	var fixups []fixup
	labels := map[string]int{}
	identitySet := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) (*Program, error) {
			return nil, fmt.Errorf("line %d: %w: %s", lineNo+1, ErrBadProgram, fmt.Sprintf(format, args...))
		}
		switch head := fields[0]; {
		case head == ".width":
			if len(fields) != 2 {
				return fail(".width wants one operand")
			}
			w, err := strconv.Atoi(fields[1])
			if err != nil || w < 1 || w > MaxWidth {
				return fail("bad width %q (want 1..%d)", fields[1], MaxWidth)
			}
			p.Width = w
		case head == ".identity":
			if len(fields) < 2 {
				return fail(".identity wants at least one operand")
			}
			p.Identity = p.Identity[:0]
			for _, f := range fields[1:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fail("bad identity field %q", f)
				}
				p.Identity = append(p.Identity, v)
			}
			identitySet = true
		case strings.HasSuffix(head, ":"):
			if len(fields) != 1 {
				return fail("label %q must be alone on its line", head)
			}
			name := head[:len(head)-1]
			if name == "" {
				return fail("empty label")
			}
			if _, dup := labels[name]; dup {
				return fail("duplicate label %q", name)
			}
			labels[name] = len(p.Code)
		default:
			op, ok := mnemonics[head]
			if !ok {
				return fail("unknown mnemonic %q", head)
			}
			in := Instr{Op: op}
			switch {
			case jumpOp(op):
				if len(fields) != 2 {
					return fail("%s wants a label", head)
				}
				fixups = append(fixups, fixup{pc: len(p.Code), label: fields[1], line: lineNo + 1})
			case op.hasImm():
				if len(fields) != 2 {
					return fail("%s wants one operand", head)
				}
				v, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					return fail("bad operand %q", fields[1])
				}
				in.Imm = v
			default:
				if len(fields) != 1 {
					return fail("%s takes no operand", head)
				}
			}
			if len(p.Code) >= MaxProgram {
				return fail("program exceeds %d instructions", MaxProgram)
			}
			p.Code = append(p.Code, in)
		}
	}
	for _, fx := range fixups {
		pc, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("line %d: %w: undefined label %q", fx.line, ErrBadProgram, fx.label)
		}
		p.Code[fx.pc].Imm = int64(pc)
	}
	if !identitySet {
		p.Identity = make([]int64, p.Width)
	}
	if len(p.Identity) != p.Width {
		return nil, fmt.Errorf("%w: .identity has %d fields for width %d", ErrBadProgram, len(p.Identity), p.Width)
	}
	if err := p.checkStatic(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse for programs embedded in the binary (examples,
// tests); it panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic("combine: " + err.Error())
	}
	return p
}

// Format disassembles a program back to source (directives, then
// instructions with absolute jump targets as generated labels).
func (p *Program) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".width %d\n.identity", p.Width)
	for _, v := range p.Identity {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteByte('\n')
	targets := map[int64]bool{}
	for _, in := range p.Code {
		if jumpOp(in.Op) {
			targets[in.Imm] = true
		}
	}
	for pc, in := range p.Code {
		if targets[int64(pc)] {
			fmt.Fprintf(&b, "L%d:\n", pc)
		}
		switch {
		case jumpOp(in.Op):
			fmt.Fprintf(&b, "\t%s L%d\n", in.Op, in.Imm)
		case in.Op.hasImm():
			fmt.Fprintf(&b, "\t%s %d\n", in.Op, in.Imm)
		default:
			fmt.Fprintf(&b, "\t%s\n", in.Op)
		}
	}
	if targets[int64(len(p.Code))] {
		// A branch may target the end of the program (an implicit ret).
		fmt.Fprintf(&b, "L%d:\n", len(p.Code))
	}
	return b.String()
}
