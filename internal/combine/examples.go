package combine

// Golden example ops. Each is a genuine monoid over all of int64 (the
// validator in registry.go proves nothing less): gcd with an exact
// identity at 0, bitwise or/and, UNSIGNED saturating add, and
// argmax-with-index as a 2-tuple. ExampleNonAssociative is the
// deliberate rejection demo — SIGNED saturating add, which looks
// harmless and is not associative: (MAX ⊕ 1) ⊕ -1 = MAX-1 but
// MAX ⊕ (1 ⊕ -1) = MAX. The validator's adversarial set catches it
// and surfaces exactly that counterexample.

// ExampleGCD is gcd as a monoid on int64: identity 0 is exact
// (gcd(x, 0) = x verbatim, sign and all); once both arguments are
// nonzero they are mapped to positive magnitudes (MinInt64, which has
// no positive magnitude, maps to 1) and run through Euclid. The
// mapping keeps the op associative over the full domain — after the
// first real combine everything lives in the positive ints, where gcd
// is the textbook monoid.
const ExampleGCD = `
; gcd over int64: identity 0, magnitudes via abs (MinInt64 -> 1)
.width 1
.identity 0
	argb 0
	jnz b_nonzero
	arga 0
	ret                 ; gcd(a, 0) = a, exactly
b_nonzero:
	arga 0
	jnz both
	argb 0
	ret                 ; gcd(0, b) = b, exactly
both:
	arga 0
	abs
	dup
	const 0
	lt                  ; still negative? (abs(MinInt64) = MinInt64)
	jz a_ok
	drop
	const 1
a_ok:
	argb 0
	abs
	dup
	const 0
	lt
	jz b_ok
	drop
	const 1
b_ok:
loop:                   ; stack [x y], both >= 1
	dup
	jz done             ; y == 0 -> gcd is x
	dup
	store 0             ; save y
	mod                 ; x % y
	load 0
	swap                ; [y x%y]
	jmp loop
done:
	drop
`

// ExampleAdd is wrapping int64 addition — the VM twin of the native
// sum kernel. It exists so native-vs-VM comparisons (check.sh's
// throughput row, the fuzz parity target) have an op both sides
// implement bit-identically.
const ExampleAdd = `
; wrapping add: VM twin of the builtin sum kernel
.width 1
.identity 0
	arga 0
	argb 0
	add
`

// ExampleBitOr is bitwise union (bitmap merge); identity 0.
const ExampleBitOr = `
; bitwise or: bitmap union
.width 1
.identity 0
	arga 0
	argb 0
	or
`

// ExampleBitAnd is bitwise intersection; identity all-ones.
const ExampleBitAnd = `
; bitwise and: bitmap intersection
.width 1
.identity -1
	arga 0
	argb 0
	and
`

// ExampleSatAdd is UNSIGNED saturating add: int64 words treated as
// uint64, clamping at 2^64-1 (all ones, -1 as a signed word). Unsigned
// saturation is associative — the result is min(2^64-1, Σ) however the
// sum is parenthesized — where signed clamping is not (see
// ExampleNonAssociative). Unsigned compare rides the signed lt via the
// sign-bit flip: x <u y  ⟺  (x ^ MinInt64) <s (y ^ MinInt64).
const ExampleSatAdd = `
; saturating add over uint64 words (clamps at 2^64-1)
.width 1
.identity 0
	arga 0
	argb 0
	add                         ; s = a + b (wrapping)
	dup
	const -9223372036854775808
	xor                         ; s ^ signbit
	arga 0
	const -9223372036854775808
	xor                         ; a ^ signbit
	lt                          ; wrapped iff s <u a
	jz ok
	drop
	const -1                    ; saturate: all ones
ok:
`

// ExampleArgmax is argmax-with-index as a 2-tuple [value, index]: the
// combine keeps the tuple with the larger value, breaking ties toward
// the smaller index (a total order, hence associative). Identity is
// (MinInt64, MaxInt64) — smaller than every real observation.
const ExampleArgmax = `
; argmax with payload index: tuple [value, index]
.width 2
.identity -9223372036854775808 9223372036854775807
	arga 0
	argb 0
	lt              ; b wins on value?
	arga 0
	argb 0
	eq              ; tie on value?
	argb 1
	arga 1
	lt              ; b has the smaller index?
	and
	or              ; pick_b
	store 0
	argb 0
	arga 0
	load 0
	select          ; result value
	argb 1
	arga 1
	load 0
	select          ; result index
`

// ExampleNonAssociative is SIGNED saturating add — the classic
// plausible non-monoid, kept as the registration-rejection demo:
// (MAX ⊕ 1) ⊕ -1 = MAX-1 ≠ MAX = MAX ⊕ (1 ⊕ -1). Registering it
// fails with that counterexample.
const ExampleNonAssociative = `
; signed saturating add: NOT associative, rejected at registration
.width 1
.identity 0
	arga 0
	argb 0
	add
	store 2         ; local2 = s (wrapping sum)
	arga 0
	const 0
	lt
	store 0         ; local0 = a < 0
	argb 0
	const 0
	lt
	store 1         ; local1 = b < 0
	load 0
	load 1
	and
	load 2
	const 0
	lt
	const 1
	xor             ; s >= 0 (flags are 0/1, xor 1 negates)
	and
	jnz neg_ovf     ; a<0 && b<0 && s>=0: wrapped below MinInt64
	load 0
	const 1
	xor
	load 1
	const 1
	xor
	and
	load 2
	const 0
	lt
	and
	jnz pos_ovf     ; a>=0 && b>=0 && s<0: wrapped above MaxInt64
	load 2
	ret
neg_ovf:
	const -9223372036854775808
	ret
pos_ovf:
	const 9223372036854775807
`

// Examples maps example names to sources; scansd/scanload and the
// golden tests use it, and DESIGN.md §11 documents each.
var Examples = map[string]string{
	"add":    ExampleAdd,
	"gcd":    ExampleGCD,
	"bor":    ExampleBitOr,
	"band":   ExampleBitAnd,
	"satadd": ExampleSatAdd,
	"argmax": ExampleArgmax,
}
