// Package circuit simulates, at the logic level, the hardware
// implementation of the two primitive scan operations described in §3 of
// Blelloch's "Scans as Primitive Parallel Operations": the sum state
// machine of Figure 15, the tree unit of Figure 14 (two state machines, a
// variable-length shift register and a one-bit register), and the
// bit-pipelined balanced binary tree of Figure 13.
//
// The simulation is clock-accurate: a +-scan or max-scan of n m-bit
// values completes in m + 2 lg n - 1 clock cycles, the paper's
// "m + 2 lg n steps" (§3.1), and the package reports the hardware
// inventory (state machines, shift-register bits) that regenerates the
// paper's Table 2 comparison against a routing network.
package circuit

// ScanOp selects which primitive the hardware executes: the Op control
// signal of Figure 15.
type ScanOp bool

const (
	// OpPlus executes a +-scan; bits enter least-significant first.
	OpPlus ScanOp = false
	// OpMax executes a max-scan; bits enter most-significant first.
	OpMax ScanOp = true
)

// String names the operation.
func (op ScanOp) String() string {
	if op == OpMax {
		return "max-scan"
	}
	return "+-scan"
}

// SumState is the sum state machine of Figure 15: three D-type flip-flops
// (Q1, Q2, and the output register S) and the combinational logic
//
//	S  = Op·(B·¬Q1 + A·¬Q2) + ¬Op·(A ⊕ B ⊕ Q1)
//	D1 = Op·(Q1 + A·¬B·¬Q2) + ¬Op·(A·B + A·Q1 + B·Q1)
//	D2 = Op·(Q2 + ¬A·B·¬Q1)
//
// For +-scan, Q1 is the carry. For max-scan (bits most-significant
// first), Q1 records "A is already known greater", Q2 "B is already
// known greater". The zero value is the cleared machine.
type SumState struct {
	Q1, Q2 bool
	// S is the registered output: the result bit computed from the
	// inputs one clock earlier.
	S bool
}

// Clock advances the machine one cycle with input bits a and b under
// control signal op, returning the output bit registered *before* this
// cycle (the machine has one cycle of latency, like any registered
// logic).
func (s *SumState) Clock(op ScanOp, a, b bool) (out bool) {
	out = s.S
	if op == OpMax {
		s.S = (b && !s.Q1) || (a && !s.Q2)
		q1 := s.Q1 || (a && !b && !s.Q2)
		q2 := s.Q2 || (!a && b && !s.Q1)
		s.Q1, s.Q2 = q1, q2
	} else {
		s.S = a != b != s.Q1 // A ⊕ B ⊕ Q1
		s.Q1 = (a && b) || (a && s.Q1) || (b && s.Q1)
		s.Q2 = false
	}
	return out
}

// Clear resets all three flip-flops, the Clear control line of Figure 14.
func (s *SumState) Clear() { *s = SumState{} }

// shiftReg is the variable-length shift register of Figure 14: a FIFO of
// single bits, one shifted per clock. Length 0 is a combinational
// pass-through (the root's register).
type shiftReg struct {
	bits []bool
	head int
}

func newShiftReg(length int) *shiftReg {
	return &shiftReg{bits: make([]bool, length)}
}

// Clock shifts in one bit and returns the bit falling off the far end.
func (r *shiftReg) Clock(in bool) (out bool) {
	if len(r.bits) == 0 {
		return in
	}
	out = r.bits[r.head]
	r.bits[r.head] = in
	r.head++
	if r.head == len(r.bits) {
		r.head = 0
	}
	return out
}

// Len returns the register's length in bits.
func (r *shiftReg) Len() int { return len(r.bits) }
