package circuit

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSumStateMachinePlusExhaustive drives the Figure 15 logic through
// every (state, input) combination as a bit-serial adder and checks full
// word addition against native arithmetic for all 8-bit pairs.
func TestSumStateMachinePlusExhaustive(t *testing.T) {
	for a := uint64(0); a < 256; a++ {
		for b := uint64(0); b < 256; b++ {
			var sm SumState
			var got uint64
			// Feed LSB first; 9 result bits plus one drain cycle for the
			// one-cycle latency.
			for k := 0; k <= 9; k++ {
				out := sm.Clock(OpPlus, a>>uint(k)&1 == 1, b>>uint(k)&1 == 1)
				if k > 0 && out {
					got |= 1 << uint(k-1)
				}
			}
			if got != a+b {
				t.Fatalf("bit-serial add %d+%d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

// TestSumStateMachineMaxExhaustive checks the Figure 15 max logic for all
// 8-bit pairs, bits fed most-significant first.
func TestSumStateMachineMaxExhaustive(t *testing.T) {
	const m = 8
	for a := uint64(0); a < 256; a++ {
		for b := uint64(0); b < 256; b++ {
			var sm SumState
			var got uint64
			for k := 0; k <= m; k++ {
				var abit, bbit bool
				if k < m {
					abit = a>>uint(m-1-k)&1 == 1
					bbit = b>>uint(m-1-k)&1 == 1
				}
				out := sm.Clock(OpMax, abit, bbit)
				if k > 0 && out {
					got |= 1 << uint(m-k)
				}
			}
			want := a
			if b > a {
				want = b
			}
			if got != want {
				t.Fatalf("bit-serial max(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestSumStateClear(t *testing.T) {
	var sm SumState
	sm.Clock(OpPlus, true, true) // sets carry
	sm.Clear()
	if sm.Q1 || sm.Q2 || sm.S {
		t.Error("Clear left state set")
	}
}

func TestShiftReg(t *testing.T) {
	r := newShiftReg(3)
	in := []bool{true, false, true, true, false, false, true}
	var out []bool
	for _, b := range in {
		out = append(out, r.Clock(b))
	}
	want := []bool{false, false, false, true, false, true, true}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("shift register out = %v, want %v", out, want)
	}
	zero := newShiftReg(0)
	if !zero.Clock(true) || zero.Clock(false) {
		t.Error("length-0 register is not a pass-through")
	}
}

func refExclusivePlus(values []uint64) []uint64 {
	out := make([]uint64, len(values))
	var acc uint64
	for i, v := range values {
		out[i] = acc
		acc += v
	}
	return out
}

func refExclusiveMax(values []uint64) []uint64 {
	out := make([]uint64, len(values))
	var acc uint64
	for i, v := range values {
		out[i] = acc
		if v > acc {
			acc = v
		}
	}
	return out
}

func TestTreePlusScanSmall(t *testing.T) {
	values := []uint64{5, 1, 3, 4, 3, 9, 2, 6}
	res := PlusScan(values, 8)
	want := refExclusivePlus(values)
	if !reflect.DeepEqual(res.Values, want) {
		t.Errorf("tree +-scan = %v, want %v", res.Values, want)
	}
	// m' + 2 lg n - 1 cycles with m' = 8 + 3 carry bits.
	if res.Cycles != 11+6-1 {
		t.Errorf("cycles = %d, want 16", res.Cycles)
	}
}

func TestTreeMaxScanSmall(t *testing.T) {
	values := []uint64{5, 1, 3, 4, 3, 9, 2, 6}
	res := MaxScan(values, 8)
	want := refExclusiveMax(values)
	if !reflect.DeepEqual(res.Values, want) {
		t.Errorf("tree max-scan = %v, want %v", res.Values, want)
	}
	if res.Cycles != 8+6-1 {
		t.Errorf("cycles = %d, want 13", res.Cycles)
	}
}

func TestTreeScansRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 16, 64, 256} {
		for _, m := range []int{1, 7, 16, 32} {
			values := make([]uint64, n)
			for i := range values {
				values[i] = rng.Uint64() & (1<<uint(m) - 1)
			}
			if got, want := PlusScan(values, m).Values, refExclusivePlus(values); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d m=%d: +-scan = %v, want %v", n, m, got, want)
			}
			if got, want := MaxScan(values, m).Values, refExclusiveMax(values); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d m=%d: max-scan = %v, want %v", n, m, got, want)
			}
		}
	}
}

func TestTreeNonPowerOfTwoPadding(t *testing.T) {
	values := []uint64{9, 4, 7, 1, 3}
	res := PlusScan(values, 4)
	if want := refExclusivePlus(values); !reflect.DeepEqual(res.Values, want) {
		t.Errorf("padded scan = %v, want %v", res.Values, want)
	}
	if len(res.Values) != 5 {
		t.Errorf("result length %d, want 5", len(res.Values))
	}
}

func TestTreeRejectsBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"non-power-of-two": func() { NewTree(6) },
		"zero":             func() { NewTree(0) },
		"oversized-value":  func() { NewTree(2).Run(OpPlus, []uint64{4, 0}, 2) },
		"bad-word-size":    func() { NewTree(2).Run(OpPlus, []uint64{0, 0}, 0) },
		"wrong-count":      func() { NewTree(4).Run(OpPlus, []uint64{0}, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTreeReuse(t *testing.T) {
	// Running twice on the same tree must clear all state in between.
	tr := NewTree(8)
	v1 := []uint64{255, 255, 255, 255, 255, 255, 255, 255}
	tr.Run(OpPlus, v1, 8)
	v2 := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	res := tr.Run(OpPlus, v2, 8)
	if want := refExclusivePlus(v2); !reflect.DeepEqual(res.Values, want) {
		t.Errorf("reused tree = %v, want %v", res.Values, want)
	}
}

func TestHardwareInventory(t *testing.T) {
	tr := NewTree(8)
	h := tr.Hardware()
	if h.Units != 7 {
		t.Errorf("Units = %d, want 7", h.Units)
	}
	if h.StateMachines != 14 {
		t.Errorf("StateMachines = %d, want 14", h.StateMachines)
	}
	// Depths: root 0, two units at 2 bits each... units at distance d
	// have registers of 2d bits: 1*0 + 2*2 + 4*4 = 20.
	if h.ShiftRegisterBits != 20 {
		t.Errorf("ShiftRegisterBits = %d, want 20", h.ShiftRegisterBits)
	}
	if h.MaxShiftRegisterBits != 4 {
		t.Errorf("MaxShiftRegisterBits = %d, want 4", h.MaxShiftRegisterBits)
	}
	if h.Wires != 28 {
		t.Errorf("Wires = %d, want 28", h.Wires)
	}
}

func TestHardwareScalesLinearly(t *testing.T) {
	// Table 2: scan circuit area is O(n). Shift-register bits are
	// O(n) too (sum of 2^d * 2d is dominated by the last level).
	h1 := NewTree(1 << 8).Hardware()
	h2 := NewTree(1 << 10).Hardware()
	ratio := float64(h2.ShiftRegisterBits) / float64(h1.ShiftRegisterBits)
	if ratio > 6 { // 4x leaves -> ~5x bits (n lg n in this term), far from n^2
		t.Errorf("shift register bits grew by %.1fx for 4x leaves", ratio)
	}
}

func TestCyclesFormula(t *testing.T) {
	// The analytic count must match the simulation.
	for _, n := range []int{2, 8, 64} {
		for _, m := range []int{4, 16} {
			values := make([]uint64, n)
			if got, want := PlusScan(values, m).Cycles, Cycles(OpPlus, n, m); got != want {
				t.Errorf("n=%d m=%d: simulated %d cycles, formula %d", n, m, got, want)
			}
			if got, want := MaxScan(values, m).Cycles, Cycles(OpMax, n, m); got != want {
				t.Errorf("n=%d m=%d: max simulated %d cycles, formula %d", n, m, got, want)
			}
		}
	}
	if Cycles(OpPlus, 1, 32) != 0 {
		t.Error("single leaf needs no cycles")
	}
}

func TestCM2ScaleCycles(t *testing.T) {
	// §3.3: the example system — a 32-bit +-scan across 64K processors.
	// Our pipeline: (32+16) result bits + 2*16 - 1 = 79 cycles.
	got := Cycles(OpPlus, 1<<16, 32)
	if got != 79 {
		t.Errorf("64K x 32-bit +-scan = %d cycles, want 79", got)
	}
}

func TestExampleSystemSection33(t *testing.T) {
	// §3.3: "a 4096 processor parallel computer with 64 processors on
	// each board and 64 boards per machine ... a single chip on each
	// board that has 64 inputs ... would require 126 sum state machines
	// and 63 shift registers. ... If the clock period is 100
	// nanoseconds, a scan on a 32 bit field would require 5
	// microseconds."
	sys := NewExampleSystem(4096, 64, 32, 100)
	if sys.BoardChips != 64 {
		t.Errorf("board chips = %d, want 64", sys.BoardChips)
	}
	if sys.ChipStateMachines != 126 {
		t.Errorf("chip state machines = %d, want 126", sys.ChipStateMachines)
	}
	if sys.ChipShiftRegisters != 63 {
		t.Errorf("chip shift registers = %d, want 63", sys.ChipShiftRegisters)
	}
	// Our pipeline counts (32+12) + 24 - 1 = 67 cycles -> 6.7 µs; the
	// paper rounds its estimate to 5 µs. Same ballpark by construction.
	if sys.ScanMicroseconds < 4 || sys.ScanMicroseconds > 8 {
		t.Errorf("32-bit scan = %.1f µs, want ~5-7 µs", sys.ScanMicroseconds)
	}
	// "With a more aggressive clock such as the 10 nanoseconds ... this
	// time would be reduced to .5 microseconds."
	fast := NewExampleSystem(4096, 64, 32, 10)
	if fast.ScanMicroseconds > 0.8 {
		t.Errorf("10ns-clock scan = %.2f µs, want sub-microsecond", fast.ScanMicroseconds)
	}
}

func TestExampleSystemRejectsPartialBoards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewExampleSystem(100, 64, 32, 100)
}

func TestTreeScanTraceFig13(t *testing.T) {
	// Figure 13 runs a +-scan on a tree; verify the sweep values on the
	// paper's 8-wide example input [5 1 3 4 3 9 2 6].
	values := []int64{5, 1, 3, 4, 3, 9, 2, 6}
	tr := TreeScanTrace(values, 0, func(a, b int64) int64 { return a + b })
	if want := []int64{0, 5, 6, 9, 13, 16, 25, 27}; !reflect.DeepEqual(tr.Result, want) {
		t.Errorf("trace result = %v, want %v", tr.Result, want)
	}
	// Root stored its left child's up value (5+1+3+4 = 13) and passed up
	// the total 33.
	if tr.Memory[0] != 13 || tr.Up[0] != 33 {
		t.Errorf("root memory/up = %d/%d, want 13/33", tr.Memory[0], tr.Up[0])
	}
	if tr.Steps != 6 {
		t.Errorf("steps = %d, want 2 lg 8 = 6", tr.Steps)
	}
}

func TestTreeScanTraceMax(t *testing.T) {
	values := []int64{3, 1, 4, 1}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	tr := TreeScanTrace(values, 0, maxOp)
	if want := []int64{0, 3, 3, 4}; !reflect.DeepEqual(tr.Result, want) {
		t.Errorf("max trace = %v, want %v", tr.Result, want)
	}
}

func TestTreeScanTraceMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	values := make([]uint64, 32)
	word := make([]int64, 32)
	for i := range values {
		values[i] = uint64(rng.Intn(1 << 12))
		word[i] = int64(values[i])
	}
	bitres := PlusScan(values, 12)
	wordres := TreeScanTrace(word, 0, func(a, b int64) int64 { return a + b })
	for i := range values {
		if bitres.Values[i] != uint64(wordres.Result[i]) {
			t.Fatalf("bit-serial and word-level disagree at %d: %d vs %d",
				i, bitres.Values[i], wordres.Result[i])
		}
	}
}
