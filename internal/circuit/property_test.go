package circuit

import (
	"testing"
	"testing/quick"
)

// Property: the clock-accurate bit-serial tree agrees with plain
// arithmetic for arbitrary inputs — the hardware of §3 computes exactly
// the abstract primitive of §2.
func TestPropertyBitSerialMatchesArithmetic(t *testing.T) {
	prop := func(raw []uint16) bool {
		values := make([]uint64, len(raw))
		for i, v := range raw {
			values[i] = uint64(v)
		}
		plus := PlusScan(values, 16).Values
		max := MaxScan(values, 16).Values
		var accP, accM uint64
		for i, v := range values {
			if plus[i] != accP || max[i] != accM {
				return false
			}
			accP += v
			if v > accM {
				accM = v
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the word-level two-sweep trace agrees with the bit-serial
// pipeline on power-of-two inputs.
func TestPropertyTraceMatchesPipeline(t *testing.T) {
	prop := func(raw [16]uint16) bool {
		values := make([]uint64, 16)
		words := make([]int64, 16)
		for i, v := range raw {
			values[i] = uint64(v)
			words[i] = int64(v)
		}
		bit := PlusScan(values, 16).Values
		word := TreeScanTrace(words, 0, func(a, b int64) int64 { return a + b }).Result
		for i := range bit {
			if bit[i] != uint64(word[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the segmented tree scan agrees with a serial segmented fold.
func TestPropertySegTreeMatchesFold(t *testing.T) {
	prop := func(raw [32]int32, flagBits uint32) bool {
		values := make([]int64, 32)
		flags := make([]bool, 32)
		for i := range values {
			values[i] = int64(raw[i])
			flags[i] = flagBits>>uint(i)&1 == 1
		}
		got := SegTreeScan(values, flags, 0, func(a, b int64) int64 { return a + b })
		var acc int64
		for i := range values {
			if flags[i] || i == 0 {
				acc = 0
			}
			if got[i] != acc {
				return false
			}
			acc += values[i]
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
