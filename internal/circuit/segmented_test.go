package circuit

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/scan"
)

func TestSegTreeScanFig4(t *testing.T) {
	// The Figure 4 example, run through the tree construction.
	a := []int64{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	got := SegTreeScan(a, flags, 0, func(x, y int64) int64 { return x + y })
	want := []int64{0, 5, 0, 3, 7, 10, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segmented tree +-scan = %v, want %v", got, want)
	}
	gotMax := SegTreeScan(a, flags, 0, func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	})
	wantMax := []int64{0, 5, 0, 3, 4, 4, 0, 2}
	if !reflect.DeepEqual(gotMax, wantMax) {
		t.Errorf("segmented tree max-scan = %v, want %v", gotMax, wantMax)
	}
}

func TestSegTreeScanMatchesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{1, 2, 4, 32, 256} {
		vals := make([]int64, n)
		ints := make([]int, n)
		flags := make([]bool, n)
		for i := range vals {
			v := rng.Intn(1000) - 500
			vals[i], ints[i] = int64(v), v
			flags[i] = rng.Intn(4) == 0
		}
		got := SegTreeScan(vals, flags, math.MinInt64, func(x, y int64) int64 {
			if x > y {
				return x
			}
			return y
		})
		want := make([]int, n)
		scan.SegExclusive(scan.MaxIntOp, want, ints, flags)
		for i := range got {
			w := int64(want[i])
			if want[i] == scan.MaxIntOp.Id {
				w = math.MinInt64
			}
			if got[i] != w {
				t.Fatalf("n=%d index %d: tree %d, kernel %d", n, i, got[i], w)
			}
		}
	}
}

func TestSegTreeScanRejectsBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"length-mismatch":  func() { SegTreeScan(make([]int64, 2), make([]bool, 3), 0, func(a, b int64) int64 { return a }) },
		"non-power-of-two": func() { SegTreeScan(make([]int64, 3), make([]bool, 3), 0, func(a, b int64) int64 { return a }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSegHardwareLittleExtra(t *testing.T) {
	// "Little additional hardware": the increment is linear in n, like
	// the tree itself, and small next to the router.
	h := SegHardwareFor(1 << 10)
	base := NewTree(1 << 10).Hardware()
	if h.ExtraFlipFlops != base.StateMachines {
		t.Errorf("extra flip-flops = %d, want one per state machine (%d)", h.ExtraFlipFlops, base.StateMachines)
	}
	if h.ExtraWires != base.Wires {
		t.Errorf("extra wires = %d, want one per existing wire (%d)", h.ExtraWires, base.Wires)
	}
}
