package circuit

import "fmt"

// The paper notes (§3) that "some of the other scan operations, such as
// the segmented scan operations, can be implemented directly with little
// additional hardware", deferring the construction to its companion
// thesis. This file carries that claim out at the word level: a
// segmented scan is an ordinary (unsegmented) tree scan over
// (flag, value) pairs under the standard segmented operator
//
//	(fa, va) ⊕seg (fb, vb) = (fa ∨ fb, fb ? vb : va ⊕ vb)
//
// which is associative whenever ⊕ is. In hardware the pair costs one
// extra wire per edge and one extra flip-flop plus a mux per sum state
// machine — the "little additional hardware".

// segWord is a (flag, value) pair flowing through the tree.
type segWord struct {
	flag bool
	v    int64
}

// SegTreeScan runs the two-sweep tree algorithm of Figure 13 on
// (flag, value) pairs, computing the segmented exclusive scan of values
// under combine/identity with segment heads at flags. len(values) must
// be a power of two.
func SegTreeScan(values []int64, flags []bool, identity int64, combine func(a, b int64) int64) []int64 {
	n := len(values)
	if len(flags) != n {
		panic(fmt.Sprintf("circuit: SegTreeScan: %d values, %d flags", n, len(flags)))
	}
	pairs := make([]segWord, n)
	for i := range pairs {
		pairs[i] = segWord{flag: flags[i], v: values[i]}
	}
	segCombine := func(a, b segWord) segWord {
		if b.flag {
			return segWord{flag: true, v: b.v}
		}
		return segWord{flag: a.flag, v: combine(a.v, b.v)}
	}
	id := segWord{v: identity}
	out := treeScanPairs(pairs, id, segCombine)
	res := make([]int64, n)
	for i := range res {
		// An element beginning a segment ignores everything before it:
		// its exclusive result is the identity. Otherwise the down-sweep
		// value is the combination since its segment head.
		if flags[i] {
			res[i] = identity
		} else {
			res[i] = out[i].v
		}
	}
	return res
}

// treeScanPairs is the up-sweep/down-sweep of Figure 13 over pair words.
func treeScanPairs(values []segWord, identity segWord, combine func(a, b segWord) segWord) []segWord {
	n := len(values)
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("circuit: SegTreeScan: n = %d is not a positive power of two", n))
	}
	if n == 1 {
		return []segWord{identity}
	}
	up := make([]segWord, n-1)
	mem := make([]segWord, n-1)
	nodeUp := func(i int) segWord {
		if i >= n-1 {
			return values[i-(n-1)]
		}
		return up[i]
	}
	for u := n - 2; u >= 0; u-- {
		l, r := nodeUp(2*u+1), nodeUp(2*u+2)
		mem[u] = l
		up[u] = combine(l, r)
	}
	down := make([]segWord, n-1)
	result := make([]segWord, n)
	for u := 0; u < n-1; u++ {
		if u == 0 {
			down[0] = identity
		}
		fromParent := down[u]
		leftDown := fromParent
		rightDown := combine(fromParent, mem[u])
		l, r := 2*u+1, 2*u+2
		if l >= n-1 {
			result[l-(n-1)] = leftDown
			result[r-(n-1)] = rightDown
		} else {
			down[l] = leftDown
			down[r] = rightDown
		}
	}
	return result
}

// SegHardware reports the incremental hardware of the segmented tree
// over the plain one from NewTree(n): one extra wire per edge for the
// flag bit and one extra flip-flop per sum state machine to hold it.
type SegHardware struct {
	ExtraWires     int // one per tree edge, each direction: 2(n-1)... per Figure 14 wiring
	ExtraFlipFlops int // one per sum state machine
}

// SegHardwareFor returns the incremental inventory for n leaves.
func SegHardwareFor(n int) SegHardware {
	return SegHardware{
		ExtraWires:     4 * (n - 1),
		ExtraFlipFlops: 2 * (n - 1),
	}
}
