package circuit

import (
	"fmt"
	"math/bits"
)

// Tree is a clock-accurate simulation of the scan network of §3.2: n-1
// units (Figure 14) wired as a balanced binary tree with two single-bit
// unidirectional wires along every edge. Units are stored in heap order:
// unit 0 is the root, unit u's children are 2u+1 and 2u+2, and node
// indices n-1 .. 2n-2 are the leaves (processors).
type Tree struct {
	n     int // leaves; a power of two
	depth int // lg n: number of unit levels
	units []treeUnit
}

// treeUnit is one Figure 14 unit: two sum state machines (up sweep and
// down sweep), a shift register whose length is twice the unit's distance
// from the root, and a one-bit register for the left-going down value.
type treeUnit struct {
	up, down SumState
	sr       *shiftReg
	downLeft bool
}

// NewTree builds the scan network for n leaves; n must be a power of two
// and at least 1.
func NewTree(n int) *Tree {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("circuit: NewTree: n = %d is not a positive power of two", n))
	}
	t := &Tree{n: n, depth: bits.Len(uint(n)) - 1}
	t.units = make([]treeUnit, n-1)
	for u := range t.units {
		d := bits.Len(uint(u+1)) - 1 // distance from the root
		t.units[u].sr = newShiftReg(2 * d)
	}
	return t
}

// Leaves returns the number of leaf processors.
func (t *Tree) Leaves() int { return t.n }

// Hardware describes the gate-level inventory of a scan network, the
// "percent of hardware" rows of Table 2.
type Hardware struct {
	// Units is the number of tree units: n - 1.
	Units int
	// StateMachines is the number of sum state machines: 2(n - 1).
	StateMachines int
	// ShiftRegisterBits is the total length of all shift registers.
	ShiftRegisterBits int
	// MaxShiftRegisterBits is the longest single register: 2(lg n - 1).
	MaxShiftRegisterBits int
	// Wires is the number of single-bit unidirectional wires: two per
	// tree edge, 2(2n - 2).
	Wires int
}

// Hardware returns the inventory of this network.
func (t *Tree) Hardware() Hardware {
	h := Hardware{
		Units:         t.n - 1,
		StateMachines: 2 * (t.n - 1),
		Wires:         4 * (t.n - 1),
	}
	for _, u := range t.units {
		l := u.sr.Len()
		h.ShiftRegisterBits += l
		if l > h.MaxShiftRegisterBits {
			h.MaxShiftRegisterBits = l
		}
	}
	return h
}

// Result is the outcome of a bit-pipelined scan run.
type Result struct {
	// Values is the exclusive scan, one result per leaf.
	Values []uint64
	// Cycles is the number of clock cycles the run took: m + 2 lg n - 1
	// for m result bits, matching §3.1's "m + 2 lg n" pipeline bound.
	Cycles int
	// BitsPerWord is the number of result bits each leaf received.
	BitsPerWord int
}

// Run executes one bit-pipelined scan of values (one per leaf) with m
// significant input bits per word. For OpPlus the network is run for
// m + lg n result bits so prefix sums cannot overflow the bit pipeline;
// for OpMax exactly m bits. Values must fit in m bits.
func (t *Tree) Run(op ScanOp, values []uint64, m int) Result {
	if len(values) != t.n {
		panic(fmt.Sprintf("circuit: Run: %d values for %d leaves", len(values), t.n))
	}
	if m <= 0 || m > 63 {
		panic(fmt.Sprintf("circuit: Run: word size m = %d out of range [1,63]", m))
	}
	for i, v := range values {
		if v >= 1<<uint(m) {
			panic(fmt.Sprintf("circuit: Run: values[%d] = %d does not fit in %d bits", i, v, m))
		}
	}
	outBits := m
	if op == OpPlus {
		outBits = m + t.depth
		if outBits > 63 {
			panic(fmt.Sprintf("circuit: Run: m + lg n = %d exceeds the 63-bit simulation word", outBits))
		}
	}
	n := t.n
	if n == 1 {
		// No units: the single leaf's exclusive result is the identity.
		return Result{Values: []uint64{0}, Cycles: 0, BitsPerWord: outBits}
	}
	for u := range t.units {
		t.units[u].up.Clear()
		t.units[u].down.Clear()
		for i := 0; i < t.units[u].sr.Len(); i++ {
			t.units[u].sr.Clock(false)
		}
		t.units[u].downLeft = false
	}

	// leafBit returns the bit leaf j presents on clock tick tick:
	// least-significant first for +-scan, most-significant first for
	// max-scan, zero once the word is exhausted.
	leafBit := func(j, tick int) bool {
		if tick >= outBits {
			return false
		}
		if op == OpMax {
			return values[j]>>uint(m-1-tick)&1 == 1
		}
		return values[j]>>uint(tick)&1 == 1
	}

	result := make([]uint64, n)
	totalTicks := outBits + 2*t.depth - 1
	upA := make([]bool, n-1)
	upB := make([]bool, n-1)
	downIn := make([]bool, n-1)
	firstResultTick := 2*t.depth - 1

	for tick := 0; tick < totalTicks; tick++ {
		// Phase 1: read every registered output as it stands this cycle.
		for u := 0; u < n-1; u++ {
			l, r := 2*u+1, 2*u+2
			if l >= n-1 {
				upA[u] = leafBit(l-(n-1), tick)
				upB[u] = leafBit(r-(n-1), tick)
			} else {
				upA[u] = t.units[l].up.S
				upB[u] = t.units[r].up.S
			}
			if u == 0 {
				downIn[u] = false // the root's parent input is tied low
			} else {
				p := (u - 1) / 2
				if u == 2*p+1 {
					downIn[u] = t.units[p].downLeft
				} else {
					downIn[u] = t.units[p].down.S
				}
			}
		}
		// Leaves latch their down-sweep bit (the scan result).
		if tick >= firstResultTick {
			k := tick - firstResultTick
			for j := 0; j < n; j++ {
				node := n - 1 + j
				p := (node - 1) / 2
				var bit bool
				if node == 2*p+1 {
					bit = t.units[p].downLeft
				} else {
					bit = t.units[p].down.S
				}
				if bit {
					if op == OpMax {
						result[j] |= 1 << uint(m-1-k)
					} else {
						result[j] |= 1 << uint(k)
					}
				}
			}
		}
		// Phase 2: clock every register simultaneously.
		for u := 0; u < n-1; u++ {
			unit := &t.units[u]
			srOut := unit.sr.Clock(upA[u])
			unit.up.Clock(op, upA[u], upB[u])
			unit.down.Clock(op, downIn[u], srOut)
			unit.downLeft = downIn[u]
		}
	}
	return Result{Values: result, Cycles: totalTicks, BitsPerWord: outBits}
}

// PlusScan builds a tree for len(values) leaves (padding to a power of
// two with zeros) and runs a bit-pipelined +-scan of m-bit words,
// returning the exclusive prefix sums of the original values.
func PlusScan(values []uint64, m int) Result {
	return runPadded(OpPlus, values, m)
}

// MaxScan builds a tree and runs a bit-pipelined max-scan of m-bit
// words, returning the exclusive prefix maxima (identity 0).
func MaxScan(values []uint64, m int) Result {
	return runPadded(OpMax, values, m)
}

func runPadded(op ScanOp, values []uint64, m int) Result {
	n := 1
	for n < len(values) {
		n *= 2
	}
	padded := make([]uint64, n)
	copy(padded, values)
	t := NewTree(n)
	res := t.Run(op, padded, m)
	res.Values = res.Values[:len(values)]
	return res
}

// Cycles returns the clock-cycle count of one scan of m-bit words over n
// processors without simulating it: the analytic m' + 2 lg n - 1 where
// m' includes the +-scan's lg n carry growth. This is the paper's §3.3
// "scan on a 32 bit field" calculation.
func Cycles(op ScanOp, n, m int) int {
	if n <= 1 {
		return 0
	}
	l := bits.Len(uint(n - 1)) // ceil(lg n)
	out := m
	if op == OpPlus {
		out = m + l
	}
	return out + 2*l - 1
}

// ExampleSystem reproduces the paper's §3.3 back-of-envelope for a real
// machine: n processors organized as boards of boardSize leaves, each
// board one chip acting as lg(boardSize) tree levels, one more chip
// combining the boards, clocked at clockNs nanoseconds.
type ExampleSystem struct {
	N, BoardSize int
	// BoardChips is the number of per-board tree chips; plus one
	// combining chip.
	BoardChips int
	// ChipStateMachines and ChipShiftRegisters are the per-chip
	// inventory ("such a chip would require 126 sum state machines and
	// 63 shift registers").
	ChipStateMachines, ChipShiftRegisters int
	// ScanMicroseconds is the wall time of one m-bit +-scan.
	ScanMicroseconds float64
}

// NewExampleSystem computes the §3.3 figures for an n-processor machine
// with the given board size, word size, and clock period.
func NewExampleSystem(n, boardSize, wordBits int, clockNs float64) ExampleSystem {
	if n%boardSize != 0 {
		panic(fmt.Sprintf("circuit: NewExampleSystem: %d processors do not fill %d-leaf boards", n, boardSize))
	}
	return ExampleSystem{
		N: n, BoardSize: boardSize,
		BoardChips:         n / boardSize,
		ChipStateMachines:  2 * (boardSize - 1),
		ChipShiftRegisters: boardSize - 1,
		ScanMicroseconds:   float64(Cycles(OpPlus, n, wordBits)) * clockNs / 1000,
	}
}
