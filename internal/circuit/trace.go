package circuit

import (
	"fmt"
	"math/bits"
)

// This file implements the word-level two-sweep tree scan of §3.1 and
// Figure 13: the standard up sweep / down sweep algorithm on a balanced
// binary tree for any binary associative operator. It exists to
// reproduce the figure (including the value each unit stores in its
// memory on the up sweep) and to cross-check the bit-serial hardware
// simulation.

// Trace records one two-sweep tree scan. Unit u (heap order, 0 = root)
// stored Memory[u] — the value from its left child — on the up sweep,
// received Down[u] from its parent on the down sweep, and passed Up[u]
// upward.
type Trace struct {
	N      int
	Up     []int64 // per unit: the sum passed to the parent
	Memory []int64 // per unit: the left child's value, kept on the up sweep
	Down   []int64 // per unit: the value received from the parent
	Result []int64 // per leaf: the exclusive scan
	Steps  int     // 2 lg n tree steps (§3.1)
}

// TreeScanTrace runs the Figure 13 algorithm over values with operator
// combine and the given identity. len(values) must be a power of two.
func TreeScanTrace(values []int64, identity int64, combine func(a, b int64) int64) Trace {
	n := len(values)
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("circuit: TreeScanTrace: n = %d is not a positive power of two", n))
	}
	tr := Trace{
		N:      n,
		Up:     make([]int64, n-1),
		Memory: make([]int64, n-1),
		Down:   make([]int64, n-1),
		Result: make([]int64, n),
	}
	if n == 1 {
		tr.Result[0] = identity
		return tr
	}
	// nodeUp returns the up-sweep value of heap node i (unit or leaf).
	nodeUp := func(i int) int64 {
		if i >= n-1 {
			return values[i-(n-1)]
		}
		return tr.Up[i]
	}
	// Up sweep, deepest units first: each unit combines its two
	// children and remembers the left one.
	for u := n - 2; u >= 0; u-- {
		l, r := nodeUp(2*u+1), nodeUp(2*u+2)
		tr.Memory[u] = l
		tr.Up[u] = combine(l, r)
	}
	// Down sweep: each unit passes its parent value to the left child
	// and parent ⊕ memory to the right child. The root receives the
	// identity.
	for u := 0; u < n-1; u++ {
		if u == 0 {
			tr.Down[0] = identity
		}
		fromParent := tr.Down[u]
		leftDown := fromParent
		rightDown := combine(fromParent, tr.Memory[u])
		l, r := 2*u+1, 2*u+2
		if l >= n-1 {
			tr.Result[l-(n-1)] = leftDown
			tr.Result[r-(n-1)] = rightDown
		} else {
			tr.Down[l] = leftDown
			tr.Down[r] = rightDown
		}
	}
	tr.Steps = 2 * (bits.Len(uint(n)) - 1)
	return tr
}
