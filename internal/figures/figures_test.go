package figures

import (
	"strings"
	"testing"
)

// The exact paper vectors each figure must contain.
var figureChecks = map[int][]string{
	1:  {"[0 1 1 1 2 2 3 4]", "[5 5 5 5 5 5 5 5]", "[10 10 10 10 10 10 10 10]"},
	2:  {"[4 2 2 5 7 3 1 7]", "[4 5 1 2 2 7 3 7]", "[1 2 2 3 4 5 7 7]"},
	3:  {"[3 4 5 6 0 1 7 2]", "[4 2 2 5 7 3 1 7]"},
	4:  {"[0 5 0 3 7 10 0 2]", "[0 5 0 3 4 4 0 2]"},
	5:  {"[3.4 1.6 4.1 3.4 6.4 9.2 8.7 9.2]", "[1.6 3.4 3.4 4.1 6.4 8.7 9.2 9.2]"},
	6:  {"[1 0 4 9 2 7 10 5 11 3 6 8]", "[1 1 2 3 2 4 5 4 6 3 5 6]"},
	7:  {"[T T F F F T F F]"},
	8:  {"[0 4 5]", "[T F F F T T F F]", "[v1 v1 v1 v1 v2 v3 v3 v3]"},
	9:  {"(11,2)", "(23,14)", "(31,4)"},
	10: {"[0 4 11 12 12 17 19 25 29 37 38 47]"},
	11: {"[0 4 5 7 8 9 10 11]"},
	12: {"[1 3 9 10 15 23]", "[F T T F F T]", "[1 3 4 7 9 10 13 15 20 22 23 26]"},
	13: {"[0 5 6 9 13 16 25 27]"},
	15: {"234", "141"},
	16: {"[0 5 0 3 4 4 0 2]"},
}

func TestFiguresContainPaperVectors(t *testing.T) {
	for fig, wants := range figureChecks {
		out := Figure(fig)
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("figure %d output missing %q:\n%s", fig, w, out)
			}
		}
	}
}

func TestAllRenders(t *testing.T) {
	out := All()
	for fig := 1; fig <= 16; fig++ {
		if fig == 14 {
			continue // merged with 15
		}
		want := "Figure"
		if !strings.Contains(out, want) {
			t.Fatalf("All() missing figures")
		}
	}
	if len(out) < 2000 {
		t.Errorf("All() suspiciously short: %d bytes", len(out))
	}
}

func TestUnknownFigurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for figure 99")
		}
	}()
	Figure(99)
}
