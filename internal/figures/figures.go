// Package figures reproduces, as printable text, every worked example
// figure of the paper (Figures 1–16), by running the corresponding
// operations on the step-counted machine with the paper's exact inputs.
// cmd/scanfigures prints them; tests assert the exact vectors.
package figures

import (
	"fmt"
	"strings"

	"scans/internal/algo/graph"
	"scans/internal/algo/lines"
	"scans/internal/algo/merge"
	"scans/internal/algo/qsort"
	"scans/internal/algo/radix"
	"scans/internal/circuit"
	"scans/internal/core"
	"scans/internal/scan"
)

// Figure renders figure number fig (1–16); it panics for unknown
// numbers.
func Figure(fig int) string {
	switch fig {
	case 1:
		return Fig1()
	case 2:
		return Fig2()
	case 3:
		return Fig3()
	case 4:
		return Fig4()
	case 5:
		return Fig5()
	case 6:
		return Fig6()
	case 7:
		return Fig7()
	case 8:
		return Fig8()
	case 9:
		return Fig9()
	case 10:
		return Fig10()
	case 11:
		return Fig11()
	case 12:
		return Fig12()
	case 13:
		return Fig13()
	case 14, 15:
		return Fig15()
	case 16:
		return Fig16()
	}
	panic(fmt.Sprintf("figures: no figure %d", fig))
}

// All renders every figure.
func All() string {
	var b strings.Builder
	for _, f := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16} {
		b.WriteString(Figure(f))
		b.WriteString("\n")
	}
	return b.String()
}

func ints(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func floats(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func bools(v []bool) string {
	parts := make([]string, len(v))
	for i, x := range v {
		if x {
			parts[i] = "T"
		} else {
			parts[i] = "F"
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Fig1 reproduces the enumerate / copy / +-distribute examples.
func Fig1() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 1: enumerate, copy, +-distribute\n")
	flags := []bool{true, false, false, true, false, true, true, false}
	enum := make([]int, 8)
	core.Enumerate(m, enum, flags)
	fmt.Fprintf(&b, "  Flag              = %s\n", bools(flags))
	fmt.Fprintf(&b, "  enumerate(Flag)   = %s\n", ints(enum))
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	cp := make([]int, 8)
	core.Copy(m, cp, a)
	fmt.Fprintf(&b, "  A                 = %s\n", ints(a))
	fmt.Fprintf(&b, "  copy(A)           = %s\n", ints(cp))
	bb := []int{1, 1, 2, 1, 1, 2, 1, 1}
	dist := make([]int, 8)
	core.PlusDistribute(m, dist, bb)
	fmt.Fprintf(&b, "  B                 = %s\n", ints(bb))
	fmt.Fprintf(&b, "  +-distribute(B)   = %s\n", ints(dist))
	return b.String()
}

// Fig2 reproduces the split radix sort trace.
func Fig2() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 2: split radix sort, bit by bit\n")
	keys := []int{5, 7, 3, 1, 4, 2, 7, 2}
	fmt.Fprintf(&b, "  A            = %s\n", ints(keys))
	_, passes := radix.SortTrace(m, keys, 3)
	for _, p := range passes {
		fmt.Fprintf(&b, "  A<%d>         = %s\n", p.Bit, bools(p.Flags))
		fmt.Fprintf(&b, "  A = split(A) = %s\n", ints(p.After))
	}
	return b.String()
}

// Fig3 reproduces the split operation.
func Fig3() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 3: the split operation\n")
	a := []int{5, 7, 3, 1, 4, 2, 7, 2}
	flags := []bool{true, true, true, true, false, false, true, false}
	idx := make([]int, 8)
	core.SplitIndex(m, idx, flags)
	out := make([]int, 8)
	core.Split(m, out, a, flags)
	fmt.Fprintf(&b, "  A                 = %s\n", ints(a))
	fmt.Fprintf(&b, "  Flags             = %s\n", bools(flags))
	fmt.Fprintf(&b, "  Index             = %s\n", ints(idx))
	fmt.Fprintf(&b, "  permute(A, Index) = %s\n", ints(out))
	return b.String()
}

// Fig4 reproduces the segmented scans.
func Fig4() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 4: segmented scans\n")
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	sb := []bool{true, false, true, false, false, false, true, false}
	sum := make([]int, 8)
	core.SegPlusScan(m, sum, a, sb)
	mx := make([]int, 8)
	scan.SegExclusive(scan.Max[int]{Id: 0}, mx, a, sb)
	fmt.Fprintf(&b, "  A                   = %s\n", ints(a))
	fmt.Fprintf(&b, "  Sb                  = %s\n", bools(sb))
	fmt.Fprintf(&b, "  seg-+-scan(A, Sb)   = %s\n", ints(sum))
	fmt.Fprintf(&b, "  seg-max-scan(A, Sb) = %s\n", ints(mx))
	return b.String()
}

// Fig5 reproduces the quicksort trace.
func Fig5() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 5: parallel quicksort (first-element pivots)\n")
	keys := []float64{6.4, 9.2, 3.4, 1.6, 8.7, 4.1, 9.2, 3.4}
	fmt.Fprintf(&b, "  Key           = %s\n", floats(keys))
	_, rounds := qsort.SortTrace(m, keys, qsort.Options{Pivot: qsort.PivotFirst})
	for i, r := range rounds {
		fmt.Fprintf(&b, "  -- step %d --\n", i+1)
		fmt.Fprintf(&b, "  Pivots        = %s\n", floats(r.Pivots))
		cmps := make([]string, len(r.Cmp))
		for j, c := range r.Cmp {
			cmps[j] = map[core.Cmp3]string{core.Less: "<", core.Equal: "=", core.Greater: ">"}[c]
		}
		fmt.Fprintf(&b, "  F             = [%s]\n", strings.Join(cmps, " "))
		fmt.Fprintf(&b, "  Key           = %s\n", floats(r.Keys))
		fmt.Fprintf(&b, "  Segment-Flags = %s\n", bools(r.Flags))
	}
	return b.String()
}

// fig6Edges is the Figure 6 graph, 0-origin.
var fig6Edges = []graph.Edge{
	{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 1, V: 4, W: 3},
	{U: 2, V: 3, W: 4}, {U: 2, V: 4, W: 5}, {U: 3, V: 4, W: 6},
}

// Fig6 reproduces the segmented graph representation.
func Fig6() string {
	m := core.New()
	g := graph.Build(m, 5, fig6Edges)
	var b strings.Builder
	b.WriteString("Figure 6: the segmented graph representation (w_k printed as k)\n")
	fmt.Fprintf(&b, "  vertex             = %s\n", ints(g.Rep))
	fmt.Fprintf(&b, "  segment-descriptor = %s\n", bools(g.Flags))
	fmt.Fprintf(&b, "  cross-pointers     = %s\n", ints(g.Cross))
	fmt.Fprintf(&b, "  weights            = %s\n", ints(g.Weight))
	return b.String()
}

// Fig7 reproduces the star-merge example.
func Fig7() string {
	m := core.New()
	g := graph.Build(m, 5, fig6Edges)
	var b strings.Builder
	b.WriteString("Figure 7: star merging (parents v0, v2, v4; stars on w2 and w4)\n")
	fmt.Fprintf(&b, "  before: segment-descriptor = %s\n", bools(g.Flags))
	fmt.Fprintf(&b, "  before: weights            = %s\n", ints(g.Weight))
	parentSlot := graph.DistributeVertexFlag(m, g, []bool{true, false, true, false, true})
	star := make([]bool, 12)
	for _, s := range []int{2, 4, 5, 7} {
		star[s] = true
	}
	fmt.Fprintf(&b, "  star-edge                  = %s\n", bools(star))
	merged, _ := graph.StarMerge(m, g, parentSlot, star)
	fmt.Fprintf(&b, "  after:  segment-descriptor = %s\n", bools(merged.Flags))
	fmt.Fprintf(&b, "  after:  weights            = %s\n", ints(merged.Weight))
	fmt.Fprintf(&b, "  after:  cross-pointers     = %s\n", ints(merged.Cross))
	return b.String()
}

// Fig8 reproduces processor allocation.
func Fig8() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 8: processor allocation\n")
	counts := []int{4, 1, 3}
	a := core.Allocate(m, counts)
	dst := make([]string, a.Total)
	core.Distribute(m, a, dst, []string{"v1", "v2", "v3"}, counts)
	fmt.Fprintf(&b, "  A                        = %s\n", ints(counts))
	fmt.Fprintf(&b, "  Hpointers = +-scan(A)    = %s\n", ints(a.HPointers))
	fmt.Fprintf(&b, "  Segment-flag             = %s\n", bools(a.Flags))
	fmt.Fprintf(&b, "  distribute(V, Hpointers) = [%s]\n", strings.Join(dst, " "))
	return b.String()
}

// Fig9 reproduces the line-drawing pixels (see cmd/linedraw for the
// rendered grid).
func Fig9() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 9: line drawing; endpoints (11,2)-(23,14), (2,13)-(13,8), (16,4)-(31,4)\n")
	ls := []lines.Line{
		{From: lines.Point{X: 11, Y: 2}, To: lines.Point{X: 23, Y: 14}},
		{From: lines.Point{X: 2, Y: 13}, To: lines.Point{X: 13, Y: 8}},
		{From: lines.Point{X: 16, Y: 4}, To: lines.Point{X: 31, Y: 4}},
	}
	r := lines.Draw(m, ls)
	for i := range ls {
		end := len(r.Pixels)
		if i+1 < len(r.Starts) {
			end = r.Starts[i+1]
		}
		fmt.Fprintf(&b, "  line %d: %d pixels:", i, end-r.Starts[i])
		for _, p := range r.Pixels[r.Starts[i]:end] {
			fmt.Fprintf(&b, " (%d,%d)", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	b.WriteString("  (inclusive DDA: 13/12/16 pixels; the paper's caption says 12/11/16,\n   which matches no single endpoint convention — see EXPERIMENTS.md)\n")
	return b.String()
}

// Fig10 reproduces the long-vector scan simulation.
func Fig10() string {
	m := core.New(core.WithProcessors(4))
	var b strings.Builder
	b.WriteString("Figure 10: a +-scan over 12 elements on 4 processors\n")
	a := []int{4, 7, 1, 0, 5, 2, 6, 4, 8, 1, 9, 5}
	out := make([]int, 12)
	core.PlusScan(m, out, a)
	fmt.Fprintf(&b, "  A        = %s\n", ints(a))
	fmt.Fprintf(&b, "  +-scan   = %s\n", ints(out))
	fmt.Fprintf(&b, "  steps    = %d (2*(n/p) block passes + 1 cross-processor scan)\n", m.Steps())
	return b.String()
}

// Fig11 reproduces load balancing.
func Fig11() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 11: load balancing (pack)\n")
	flags := []bool{true, false, false, false, true, true, false, true, true, true, true, true}
	src := make([]int, 12)
	for i := range src {
		src[i] = i
	}
	dst := make([]int, 12)
	cnt := core.Pack(m, dst, src, flags)
	fmt.Fprintf(&b, "  F           = %s\n", bools(flags))
	fmt.Fprintf(&b, "  kept ids    = %s (%d of 12; each processor now owns %d)\n", ints(dst[:cnt]), cnt, (cnt+3)/4)
	return b.String()
}

// Fig12 reproduces the halving merge.
func Fig12() string {
	m := core.New()
	var b strings.Builder
	b.WriteString("Figure 12: the halving merge\n")
	a := []int{1, 7, 10, 13, 15, 20}
	bb := []int{3, 4, 9, 22, 23, 26}
	fmt.Fprintf(&b, "  A              = %s\n", ints(a))
	fmt.Fprintf(&b, "  B              = %s\n", ints(bb))
	fmt.Fprintf(&b, "  A' (odd-idx)   = %s\n", ints([]int{1, 10, 15}))
	fmt.Fprintf(&b, "  B' (odd-idx)   = %s\n", ints([]int{3, 9, 23}))
	sub := merge.Merge(m, []int{1, 10, 15}, []int{3, 9, 23})
	fmt.Fprintf(&b, "  merge(A', B')  = %s\n", ints(sub))
	fl := merge.Flags(m, []int{1, 10, 15}, []int{3, 9, 23})
	fmt.Fprintf(&b, "  merge flags    = %s\n", bools(fl))
	out := merge.Merge(m, a, bb)
	fmt.Fprintf(&b, "  result         = %s\n", ints(out))
	return b.String()
}

// Fig13 reproduces the word-level tree scan with its sweep values.
func Fig13() string {
	values := []int64{5, 1, 3, 4, 3, 9, 2, 6}
	tr := circuit.TreeScanTrace(values, 0, func(a, b int64) int64 { return a + b })
	var b strings.Builder
	b.WriteString("Figure 13: tree +-scan, up sweep then down sweep\n")
	fmt.Fprintf(&b, "  leaves            = %v\n", values)
	fmt.Fprintf(&b, "  unit up values    = %v\n", tr.Up)
	fmt.Fprintf(&b, "  unit memories     = %v (left child kept on the up sweep)\n", tr.Memory)
	fmt.Fprintf(&b, "  unit down values  = %v\n", tr.Down)
	fmt.Fprintf(&b, "  result at leaves  = %v\n", tr.Result)
	fmt.Fprintf(&b, "  tree steps        = %d (= 2 lg n)\n", tr.Steps)
	return b.String()
}

// Fig15 demonstrates the sum state machine (Figures 14 and 15) by
// bit-serially adding and maxing two words through the exact logic
// equations.
func Fig15() string {
	var b strings.Builder
	b.WriteString("Figures 14/15: the sum state machine, bit-serially\n")
	add := func(x, y uint64) uint64 {
		var sm circuit.SumState
		var out uint64
		for k := 0; k <= 9; k++ {
			o := sm.Clock(circuit.OpPlus, x>>uint(k)&1 == 1, y>>uint(k)&1 == 1)
			if k > 0 && o {
				out |= 1 << uint(k-1)
			}
		}
		return out
	}
	mx := func(x, y uint64) uint64 {
		var sm circuit.SumState
		var out uint64
		for k := 0; k <= 8; k++ {
			var xb, yb bool
			if k < 8 {
				xb, yb = x>>uint(7-k)&1 == 1, y>>uint(7-k)&1 == 1
			}
			if o := sm.Clock(circuit.OpMax, xb, yb); k > 0 && o {
				out |= 1 << uint(8-k)
			}
		}
		return out
	}
	fmt.Fprintf(&b, "  Op=0 (+-scan):  93 + 141 -> %d (LSB first, Q1 = carry)\n", add(93, 141))
	fmt.Fprintf(&b, "  Op=1 (max-scan): max(93, 141) -> %d (MSB first, Q1/Q2 = who leads)\n", mx(93, 141))
	b.WriteString("  (the exhaustive 8-bit truth-table check lives in internal/circuit's tests)\n")
	return b.String()
}

// Fig16 reproduces the segmented max-scan built from the two primitives.
func Fig16() string {
	var b strings.Builder
	b.WriteString("Figure 16: seg-max-scan from the two primitive scans\n")
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	out := make([]int, 8)
	scan.SegMaxViaPrimitives(out, a, flags)
	fmt.Fprintf(&b, "  A      = %s\n", ints(a))
	fmt.Fprintf(&b, "  SFlag  = %s\n", bools(flags))
	fmt.Fprintf(&b, "  Result = %s\n", ints(out))
	return b.String()
}
