package vm

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"scans/internal/core"
)

func newVM() *VM { return New(core.New()) }

func TestBasicOps(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{3, 1, 4, 1, 5})
	vm.Run(MustParse(`
		iota  v1
		const v2 10
		add   v3 v0 v2
		mul   v4 v0 v1
		min   v5 v0 v1
		max   v6 v0 v1
	`))
	if want := []int{13, 11, 14, 11, 15}; !reflect.DeepEqual(vm.V(3), want) {
		t.Errorf("add = %v, want %v", vm.V(3), want)
	}
	if want := []int{0, 1, 8, 3, 20}; !reflect.DeepEqual(vm.V(4), want) {
		t.Errorf("mul = %v, want %v", vm.V(4), want)
	}
	if want := []int{0, 1, 2, 1, 4}; !reflect.DeepEqual(vm.V(5), want) {
		t.Errorf("min = %v, want %v", vm.V(5), want)
	}
	if want := []int{3, 1, 4, 3, 5}; !reflect.DeepEqual(vm.V(6), want) {
		t.Errorf("max = %v, want %v", vm.V(6), want)
	}
}

func TestScansAndFlags(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{2, 1, 2, 3, 5, 8, 13, 21})
	vm.SetF(0, []bool{true, false, true, false, false, false, true, false})
	vm.Run(MustParse(`
		+scan        v1 v0
		max-scan     v2 v0
		seg-+scan    v3 v0 f0
		seg-copy     v4 v0 f0
		enumerate    v5 f0
		+distribute  v6 v0
	`))
	if want := []int{0, 2, 3, 5, 8, 13, 21, 34}; !reflect.DeepEqual(vm.V(1), want) {
		t.Errorf("+scan = %v", vm.V(1))
	}
	if want := []int{0, 2, 0, 2, 5, 10, 0, 13}; !reflect.DeepEqual(vm.V(3), want) {
		t.Errorf("seg-+scan = %v", vm.V(3))
	}
	if want := []int{2, 2, 2, 2, 2, 2, 13, 13}; !reflect.DeepEqual(vm.V(4), want) {
		t.Errorf("seg-copy = %v", vm.V(4))
	}
	if vm.V(6)[0] != 55 {
		t.Errorf("+distribute = %v", vm.V(6))
	}
}

// TestSplitRadixSortProgram transliterates the paper's Figure 2/3 split
// radix sort into VM assembler and runs it bit by bit.
func TestSplitRadixSortProgram(t *testing.T) {
	keys := []int{5, 7, 3, 1, 4, 2, 7, 2}
	vm := newVM()
	vm.SetV(0, keys)
	// Three passes of: extract bit b (via two shifts with mul/sub
	// tricks), then split. Bit extraction: bit = (x / 2^b) mod 2 —
	// without div, precompute shifted copies host-side per pass; here we
	// use the machine ops to compute x - 2*(x/2) via repeated
	// subtraction... simpler: use less/eq against masked constants is
	// clumsy, so extract with mul/sub identities: q = x min-trick is
	// unwieldy; the VM provides no division, so we shift by repeated
	// halving with gather-free arithmetic: x/2 = (x - (x mod 2)) * ... —
	// instead, test the split directly per bit using host-computed bit
	// flags, which is how PARIS macros mixed scalar host code with
	// vector ops.
	cur := keys
	for bit := 0; bit < 3; bit++ {
		flags := make([]bool, len(cur))
		for i, k := range cur {
			flags[i] = k>>uint(bit)&1 == 1
		}
		vm.SetV(0, cur)
		vm.SetF(1, flags)
		vm.Run(MustParse(`split v0 v0 f1`))
		cur = append([]int(nil), vm.V(0)...)
	}
	if want := []int{1, 2, 2, 3, 4, 5, 7, 7}; !reflect.DeepEqual(cur, want) {
		t.Errorf("VM radix sort = %v, want %v", cur, want)
	}
}

func TestPackShrinksMachine(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{10, 20, 30, 40, 50})
	vm.SetV(1, []int{0, 1, 2, 3, 4})
	vm.SetF(0, []bool{true, false, true, false, true})
	vm.Run(MustParse(`pack v2 v0 f0`))
	if want := []int{10, 30, 50}; !reflect.DeepEqual(vm.V(2), want) {
		t.Errorf("pack = %v", vm.V(2))
	}
	// Other live registers shrink with the machine (load balancing).
	if len(vm.V(1)) != 3 {
		t.Errorf("register width after pack = %d, want 3", len(vm.V(1)))
	}
}

func TestPermuteGatherSelect(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{7, 8, 9})
	vm.SetV(1, []int{2, 0, 1})
	vm.Run(MustParse(`
		permute v2 v0 v1
		gather  v3 v0 v1
		less    f0 v0 v2
		not     f1 f0
		select  v4 v0 v2 f0
	`))
	if want := []int{8, 9, 7}; !reflect.DeepEqual(vm.V(2), want) {
		t.Errorf("permute = %v", vm.V(2))
	}
	if want := []int{9, 7, 8}; !reflect.DeepEqual(vm.V(3), want) {
		t.Errorf("gather = %v", vm.V(3))
	}
	// f0 = v0 < v2 = [T T F]; select takes v0 where true, v2 otherwise.
	if want := []int{7, 8, 7}; !reflect.DeepEqual(vm.V(4), want) {
		t.Errorf("select = %v", vm.V(4))
	}
}

func TestFlagHeads(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{4, 4, 7, 7, 7, 2})
	vm.Run(MustParse(`flag-heads f0 v0`))
	want := []bool{true, false, true, false, false, true}
	if !reflect.DeepEqual(vm.F(0), want) {
		t.Errorf("flag-heads = %v, want %v", vm.F(0), want)
	}
}

func TestQuicksortStyleProgramSortsSegments(t *testing.T) {
	// A mini segmented computation: per-segment max via scan + select.
	rng := rand.New(rand.NewSource(3))
	n := 64
	data := make([]int, n)
	for i := range data {
		data[i] = rng.Intn(100)
	}
	flags := make([]bool, n)
	for i := 0; i < n; i += 7 {
		flags[i] = true
	}
	vm := newVM()
	vm.SetV(0, data)
	vm.SetF(0, flags)
	vm.Run(MustParse(`
		seg-max-scan v1 v0 f0
		max          v2 v0 v1   ; inclusive fix-up
	`))
	// Check against a serial fold.
	cur := 0
	for i := 0; i < n; i++ {
		if flags[i] || i == 0 {
			cur = data[i]
		} else if data[i] > cur {
			cur = data[i]
		}
		if vm.V(2)[i] != cur {
			t.Fatalf("inclusive seg max at %d = %d, want %d", i, vm.V(2)[i], cur)
		}
	}
}

func TestStepAccounting(t *testing.T) {
	vm := newVM()
	vm.SetV(0, make([]int, 1024))
	before := vm.Steps()
	vm.Run(MustParse(`+scan v1 v0`))
	if vm.Steps()-before != 1 {
		t.Errorf("one VM scan cost %d steps, want 1", vm.Steps()-before)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"bogus v0",
		"add v0 v1",       // missing operand
		"add v0 v1 f2",    // wrong register kind
		"const v0",        // missing immediate
		"enumerate v0 v1", // flags must be f-register
		"add v0 vx v1",    // bad register number
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	p, err := Parse("\n ; full-line comment\n  iota v0 ; trailing\n\n")
	if err != nil || len(p) != 1 || p[0].Op != OpIota {
		t.Errorf("Parse = %v, %v", p, err)
	}
}

func TestFormatRoundTrips(t *testing.T) {
	src := `
		const v0 5
		iota v1
		add v2 v0 v1
		less f0 v0 v1
		not f1 f0
		select v3 v0 v1 f0
		+scan v4 v2
		seg-max-scan v5 v2 f0
		enumerate v6 f0
		permute v7 v2 v1
		pack v8 v2 f0
		split v9 v2 f0
		flag-heads f2 v2
		+distribute v10 v2
	`
	p1 := MustParse(src)
	p2 := MustParse(Format(p1))
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("Format does not round-trip:\n%s", Format(p1))
	}
}

func TestUndefinedRegisterPanics(t *testing.T) {
	vm := newVM()
	vm.SetV(0, []int{1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "undefined") {
			t.Errorf("panic %v not descriptive", r)
		}
	}()
	vm.Run(MustParse(`add v1 v5 v0`))
}

func TestBigProgramMatchesDirect(t *testing.T) {
	// A longer pipeline: rank each element within its value class —
	// enumerate equal-to-max flags, etc. Just assert determinism between
	// the VM and direct core calls.
	rng := rand.New(rand.NewSource(9))
	n := 200
	data := make([]int, n)
	for i := range data {
		data[i] = rng.Intn(50)
	}
	vm := newVM()
	vm.SetV(0, data)
	vm.Run(MustParse(`
		+scan v1 v0
		max-scan v2 v0
		min-scan v3 v0
		+backscan v4 v0
		max-backscan v5 v0
		min-backscan v6 v0
	`))
	m := core.New()
	check := func(got []int, f func(m2 *core.Machine, dst, src []int)) {
		want := make([]int, n)
		f(m, want, data)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("VM result differs from direct call: %v vs %v", got[:5], want[:5])
		}
	}
	check(vm.V(1), func(m2 *core.Machine, dst, src []int) { core.PlusScan(m2, dst, src) })
	check(vm.V(2), core.MaxScan)
	check(vm.V(3), core.MinScan)
	check(vm.V(4), core.BackPlusScan)
	check(vm.V(5), core.BackMaxScan)
	check(vm.V(6), core.BackMinScan)
}
