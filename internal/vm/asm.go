package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program. Syntax, one instruction per line:
//
//	<mnemonic> <dst> <operands...>   ; comment
//
// Registers are written v<N> (vectors) or f<N> (flags); OpConst takes an
// integer immediate. Blank lines and ';' comments are ignored. Parse
// reports the first error with its line number.
//
// Operand shapes:
//
//	const    vD imm        iota     vD
//	add|sub|mul|min|max    vD vA vB
//	less|eq  fD vA vB      not      fD fA
//	select   vD vA vB fC
//	+scan|max-scan|min-scan|+backscan|max-backscan|min-backscan  vD vA
//	seg-+scan|seg-max-scan|seg-min-scan|seg-copy                 vD vA fC
//	enumerate vD fA        flag-heads fD vA
//	permute|gather vD vA vB
//	pack     vD vA fC      split    vD vA fC
//	+distribute vD vA
func Parse(src string) (Program, error) {
	var prog Program
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		in, err := parseInstr(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}

// MustParse is Parse, panicking on error — for tests and embedded
// programs.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

var mnemonics = func() map[string]OpCode {
	m := map[string]OpCode{}
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func parseInstr(fields []string) (Instr, error) {
	op, ok := mnemonics[fields[0]]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	in := Instr{Op: op}
	args := fields[1:]
	reg := func(idx int, kind byte) (int, error) {
		if idx >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", fields[0], idx+1)
		}
		a := args[idx]
		if len(a) < 2 || a[0] != kind {
			return 0, fmt.Errorf("%s: operand %q is not a %c-register", fields[0], a, kind)
		}
		n, err := strconv.Atoi(a[1:])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("%s: bad register %q", fields[0], a)
		}
		return n, nil
	}
	var err error
	setV := func(dst *int, idx int) {
		if err == nil {
			*dst, err = reg(idx, 'v')
		}
	}
	setF := func(dst *int, idx int) {
		if err == nil {
			*dst, err = reg(idx, 'f')
		}
	}
	switch op {
	case OpConst:
		setV(&in.Dst, 0)
		if err == nil {
			if len(args) < 2 {
				return in, fmt.Errorf("const: missing immediate")
			}
			in.Imm, err = strconv.Atoi(args[1])
		}
	case OpIota:
		setV(&in.Dst, 0)
	case OpAdd, OpSub, OpMul, OpMin, OpMax, OpPermute, OpGather:
		setV(&in.Dst, 0)
		setV(&in.A, 1)
		setV(&in.B, 2)
	case OpLess, OpEq:
		setF(&in.Dst, 0)
		setV(&in.A, 1)
		setV(&in.B, 2)
	case OpNot:
		setF(&in.Dst, 0)
		setF(&in.A, 1)
	case OpSelect:
		setV(&in.Dst, 0)
		setV(&in.A, 1)
		setV(&in.B, 2)
		setF(&in.Flags, 3)
	case OpPlusScan, OpMaxScan, OpMinScan, OpBackPlusScan, OpBackMaxScan, OpBackMinScan, OpDistribute:
		setV(&in.Dst, 0)
		setV(&in.A, 1)
	case OpSegPlusScan, OpSegMaxScan, OpSegMinScan, OpSegCopy, OpPack, OpSplit:
		setV(&in.Dst, 0)
		setV(&in.A, 1)
		setF(&in.Flags, 2)
	case OpEnumerate:
		setV(&in.Dst, 0)
		setF(&in.A, 1)
	case OpFlagHeads:
		setF(&in.Dst, 0)
		setV(&in.A, 1)
	}
	return in, err
}

// Format disassembles a program back to assembler text.
func Format(p Program) string {
	var b strings.Builder
	for _, in := range p {
		b.WriteString(in.Op.String())
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&b, " v%d %d", in.Dst, in.Imm)
		case OpIota:
			fmt.Fprintf(&b, " v%d", in.Dst)
		case OpAdd, OpSub, OpMul, OpMin, OpMax, OpPermute, OpGather:
			fmt.Fprintf(&b, " v%d v%d v%d", in.Dst, in.A, in.B)
		case OpLess, OpEq:
			fmt.Fprintf(&b, " f%d v%d v%d", in.Dst, in.A, in.B)
		case OpNot:
			fmt.Fprintf(&b, " f%d f%d", in.Dst, in.A)
		case OpSelect:
			fmt.Fprintf(&b, " v%d v%d v%d f%d", in.Dst, in.A, in.B, in.Flags)
		case OpPlusScan, OpMaxScan, OpMinScan, OpBackPlusScan, OpBackMaxScan, OpBackMinScan, OpDistribute:
			fmt.Fprintf(&b, " v%d v%d", in.Dst, in.A)
		case OpSegPlusScan, OpSegMaxScan, OpSegMinScan, OpSegCopy, OpPack, OpSplit:
			fmt.Fprintf(&b, " v%d v%d f%d", in.Dst, in.A, in.Flags)
		case OpEnumerate:
			fmt.Fprintf(&b, " v%d f%d", in.Dst, in.A)
		case OpFlagHeads:
			fmt.Fprintf(&b, " f%d v%d", in.Dst, in.A)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
