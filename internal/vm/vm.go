// Package vm is a small vector virtual machine in the style of PARIS,
// the Connection Machine's parallel instruction set, where the paper's
// two scans shipped ("are available in PARIS ... and are used in a large
// number of applications"). Programs are straight-line sequences of
// vector instructions — elementwise arithmetic, the scan primitives and
// their segmented versions, permutes, packs, and processor allocation —
// executed against the step-counted scan-model machine, so a VM program
// has exactly the step complexity the paper's notation implies.
//
// The package includes a tiny assembler (see Parse) whose syntax matches
// the paper's vector pseudo-code closely enough to transliterate its
// figures:
//
//	iota    v1          ; v1 <- [0 1 2 ...]
//	const   v2  5       ; v2 <- [5 5 5 ...]
//	add     v3  v1 v2
//	+scan   v4  v3
//	seg-max v5  v3 f1
package vm

import (
	"fmt"

	"scans/internal/core"
)

// OpCode identifies a VM instruction.
type OpCode int

// The instruction set. V* registers hold int vectors, F* registers hold
// flag (bool) vectors; all vectors in one program run share the current
// machine width except where an instruction says otherwise.
const (
	// OpConst broadcasts Imm across Dst (one elementwise step).
	OpConst OpCode = iota
	// OpIota writes [0, 1, 2, ...] into Dst.
	OpIota
	// Elementwise binary: Dst[i] = A[i] ∘ B[i].
	OpAdd
	OpSub
	OpMul
	OpMin
	OpMax
	// OpLess writes the flag A[i] < B[i] into flag register Dst.
	OpLess
	// OpEq writes the flag A[i] == B[i] into flag register Dst.
	OpEq
	// OpNot negates flag register A into flag Dst.
	OpNot
	// OpSelect: Dst[i] = Flags[i] ? A[i] : B[i].
	OpSelect
	// Scans (exclusive, per the paper). Dst and A are vectors.
	OpPlusScan
	OpMaxScan
	OpMinScan
	// Backward scans.
	OpBackPlusScan
	OpBackMaxScan
	OpBackMinScan
	// Segmented scans; Flags names the segment-flag register.
	OpSegPlusScan
	OpSegMaxScan
	OpSegMinScan
	// OpSegCopy copies each segment head across its segment.
	OpSegCopy
	// OpEnumerate counts true flags (flag A) exclusively into vector Dst.
	OpEnumerate
	// OpPermute scatters A through index vector B.
	OpPermute
	// OpGather reads A through index vector B.
	OpGather
	// OpPack compacts A's elements flagged by Flags to the front of Dst
	// and shrinks the machine width to the packed length.
	OpPack
	// OpSplit moves false-flagged elements of A down, true-flagged up.
	OpSplit
	// OpDistribute sums A to every element of Dst.
	OpDistribute
	// OpFlagHeads writes segment flags into flag Dst from the boundary
	// vector A: Dst[i] = (i == 0 || A[i] != A[i-1]).
	OpFlagHeads
)

var opNames = map[OpCode]string{
	OpConst: "const", OpIota: "iota",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpMin: "min", OpMax: "max",
	OpLess: "less", OpEq: "eq", OpNot: "not", OpSelect: "select",
	OpPlusScan: "+scan", OpMaxScan: "max-scan", OpMinScan: "min-scan",
	OpBackPlusScan: "+backscan", OpBackMaxScan: "max-backscan", OpBackMinScan: "min-backscan",
	OpSegPlusScan: "seg-+scan", OpSegMaxScan: "seg-max-scan", OpSegMinScan: "seg-min-scan",
	OpSegCopy: "seg-copy", OpEnumerate: "enumerate",
	OpPermute: "permute", OpGather: "gather", OpPack: "pack", OpSplit: "split",
	OpDistribute: "+distribute", OpFlagHeads: "flag-heads",
}

// String returns the assembler mnemonic.
func (op OpCode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Instr is one VM instruction. Registers are small integers; which of
// Dst/A/B name vector vs flag registers depends on the opcode (see the
// opcode docs).
type Instr struct {
	Op        OpCode
	Dst, A, B int
	Flags     int // segment/condition flag register, where used
	Imm       int // immediate operand for OpConst
}

// Program is a straight-line vector program.
type Program []Instr

// VM executes programs against a Machine.
type VM struct {
	m     *core.Machine
	vregs map[int][]int
	fregs map[int][]bool
	width int
}

// New returns a VM bound to machine m.
func New(m *core.Machine) *VM {
	return &VM{m: m, vregs: map[int][]int{}, fregs: map[int][]bool{}}
}

// SetV loads vector register r (defining the machine width if it is the
// first vector loaded).
func (vm *VM) SetV(r int, v []int) {
	vm.vregs[r] = append([]int(nil), v...)
	if vm.width == 0 {
		vm.width = len(v)
	}
}

// SetF loads flag register r.
func (vm *VM) SetF(r int, f []bool) {
	vm.fregs[r] = append([]bool(nil), f...)
	if vm.width == 0 {
		vm.width = len(f)
	}
}

// V reads vector register r (nil if never written).
func (vm *VM) V(r int) []int { return vm.vregs[r] }

// F reads flag register r.
func (vm *VM) F(r int) []bool { return vm.fregs[r] }

// Steps reports the machine's accumulated program steps.
func (vm *VM) Steps() int64 { return vm.m.Steps() }

func (vm *VM) vec(r int, what string, pc int) []int {
	v, ok := vm.vregs[r]
	if !ok {
		panic(fmt.Sprintf("vm: pc %d: %s reads undefined vector register v%d", pc, what, r))
	}
	return v
}

func (vm *VM) flg(r int, what string, pc int) []bool {
	f, ok := vm.fregs[r]
	if !ok {
		panic(fmt.Sprintf("vm: pc %d: %s reads undefined flag register f%d", pc, what, r))
	}
	return f
}

// Run executes the program. Panics carry the program counter and
// mnemonic for debuggability.
func (vm *VM) Run(prog Program) {
	for pc, in := range prog {
		vm.step(pc, in)
	}
}

func (vm *VM) step(pc int, in Instr) {
	m := vm.m
	n := vm.width
	newV := func() []int { return make([]int, n) }
	switch in.Op {
	case OpConst:
		dst := newV()
		imm := in.Imm
		core.Par(m, n, func(i int) { dst[i] = imm })
		vm.vregs[in.Dst] = dst
	case OpIota:
		dst := newV()
		core.Par(m, n, func(i int) { dst[i] = i })
		vm.vregs[in.Dst] = dst
	case OpAdd, OpSub, OpMul, OpMin, OpMax:
		a, b := vm.vec(in.A, in.Op.String(), pc), vm.vec(in.B, in.Op.String(), pc)
		dst := newV()
		op := in.Op
		core.Par(m, n, func(i int) {
			switch op {
			case OpAdd:
				dst[i] = a[i] + b[i]
			case OpSub:
				dst[i] = a[i] - b[i]
			case OpMul:
				dst[i] = a[i] * b[i]
			case OpMin:
				if a[i] < b[i] {
					dst[i] = a[i]
				} else {
					dst[i] = b[i]
				}
			case OpMax:
				if a[i] > b[i] {
					dst[i] = a[i]
				} else {
					dst[i] = b[i]
				}
			}
		})
		vm.vregs[in.Dst] = dst
	case OpLess, OpEq:
		a, b := vm.vec(in.A, in.Op.String(), pc), vm.vec(in.B, in.Op.String(), pc)
		dst := make([]bool, n)
		op := in.Op
		core.Par(m, n, func(i int) {
			if op == OpLess {
				dst[i] = a[i] < b[i]
			} else {
				dst[i] = a[i] == b[i]
			}
		})
		vm.fregs[in.Dst] = dst
	case OpNot:
		a := vm.flg(in.A, "not", pc)
		dst := make([]bool, n)
		core.Par(m, n, func(i int) { dst[i] = !a[i] })
		vm.fregs[in.Dst] = dst
	case OpSelect:
		a, b := vm.vec(in.A, "select", pc), vm.vec(in.B, "select", pc)
		f := vm.flg(in.Flags, "select", pc)
		dst := newV()
		core.Par(m, n, func(i int) {
			if f[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		})
		vm.vregs[in.Dst] = dst
	case OpPlusScan:
		dst := newV()
		core.PlusScan(m, dst, vm.vec(in.A, "+scan", pc))
		vm.vregs[in.Dst] = dst
	case OpMaxScan:
		dst := newV()
		core.MaxScan(m, dst, vm.vec(in.A, "max-scan", pc))
		vm.vregs[in.Dst] = dst
	case OpMinScan:
		dst := newV()
		core.MinScan(m, dst, vm.vec(in.A, "min-scan", pc))
		vm.vregs[in.Dst] = dst
	case OpBackPlusScan:
		dst := newV()
		core.BackPlusScan(m, dst, vm.vec(in.A, "+backscan", pc))
		vm.vregs[in.Dst] = dst
	case OpBackMaxScan:
		dst := newV()
		core.BackMaxScan(m, dst, vm.vec(in.A, "max-backscan", pc))
		vm.vregs[in.Dst] = dst
	case OpBackMinScan:
		dst := newV()
		core.BackMinScan(m, dst, vm.vec(in.A, "min-backscan", pc))
		vm.vregs[in.Dst] = dst
	case OpSegPlusScan:
		dst := newV()
		core.SegPlusScan(m, dst, vm.vec(in.A, "seg-+scan", pc), vm.flg(in.Flags, "seg-+scan", pc))
		vm.vregs[in.Dst] = dst
	case OpSegMaxScan:
		dst := newV()
		core.SegMaxScan(m, dst, vm.vec(in.A, "seg-max-scan", pc), vm.flg(in.Flags, "seg-max-scan", pc))
		vm.vregs[in.Dst] = dst
	case OpSegMinScan:
		dst := newV()
		core.SegMinScan(m, dst, vm.vec(in.A, "seg-min-scan", pc), vm.flg(in.Flags, "seg-min-scan", pc))
		vm.vregs[in.Dst] = dst
	case OpSegCopy:
		dst := newV()
		core.SegCopy(m, dst, vm.vec(in.A, "seg-copy", pc), vm.flg(in.Flags, "seg-copy", pc))
		vm.vregs[in.Dst] = dst
	case OpEnumerate:
		dst := newV()
		core.Enumerate(m, dst, vm.flg(in.A, "enumerate", pc))
		vm.vregs[in.Dst] = dst
	case OpPermute:
		dst := newV()
		core.Permute(m, dst, vm.vec(in.A, "permute", pc), vm.vec(in.B, "permute", pc))
		vm.vregs[in.Dst] = dst
	case OpGather:
		dst := newV()
		core.Gather(m, dst, vm.vec(in.A, "gather", pc), vm.vec(in.B, "gather", pc))
		vm.vregs[in.Dst] = dst
	case OpPack:
		src := vm.vec(in.A, "pack", pc)
		f := vm.flg(in.Flags, "pack", pc)
		tmp := make([]int, n)
		count := core.Pack(m, tmp, src, f)
		vm.vregs[in.Dst] = tmp[:count]
		vm.width = count
		vm.truncateAll(count)
	case OpSplit:
		dst := newV()
		core.Split(m, dst, vm.vec(in.A, "split", pc), vm.flg(in.Flags, "split", pc))
		vm.vregs[in.Dst] = dst
	case OpDistribute:
		dst := newV()
		core.PlusDistribute(m, dst, vm.vec(in.A, "+distribute", pc))
		vm.vregs[in.Dst] = dst
	case OpFlagHeads:
		a := vm.vec(in.A, "flag-heads", pc)
		dst := make([]bool, n)
		core.Par(m, n, func(i int) { dst[i] = i == 0 || a[i] != a[i-1] })
		vm.fregs[in.Dst] = dst
	default:
		panic(fmt.Sprintf("vm: pc %d: unknown opcode %d", pc, int(in.Op)))
	}
}

// truncateAll shrinks every live register to the new width after a pack
// (the paper's load-balancing: the machine reassigns processors to the
// smaller vector).
func (vm *VM) truncateAll(w int) {
	for r, v := range vm.vregs {
		if len(v) > w {
			vm.vregs[r] = v[:w]
		}
	}
	for r, f := range vm.fregs {
		if len(f) > w {
			vm.fregs[r] = f[:w]
		}
	}
}
