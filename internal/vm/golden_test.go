package vm

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"scans/internal/core"
)

// TestGoldenPrograms runs every testdata/*.svm program. Inputs and
// expected outputs are encoded in directive comments:
//
//	;in  v0=1,2,3     load a register before the run
//	;out v1=0,1,3     assert a register after the run
func TestGoldenPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.svm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden programs found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			machine := New(core.New())
			type expect struct {
				kind byte
				reg  int
				ints []int
				bits []bool
			}
			var outs []expect
			for lineNo, line := range strings.Split(string(src), "\n") {
				trimmed := strings.TrimSpace(line)
				directive := ""
				switch {
				case strings.HasPrefix(trimmed, ";in"):
					directive = "in"
				case strings.HasPrefix(trimmed, ";out"):
					directive = "out"
				default:
					continue
				}
				spec := strings.TrimSpace(trimmed[len(";"+directive):])
				name, vals, ok := strings.Cut(spec, "=")
				if !ok {
					t.Fatalf("line %d: bad directive %q", lineNo+1, trimmed)
				}
				reg, err := strconv.Atoi(name[1:])
				if err != nil {
					t.Fatalf("line %d: bad register %q", lineNo+1, name)
				}
				var ints []int
				var bits []bool
				for _, f := range strings.Split(vals, ",") {
					f = strings.TrimSpace(f)
					if name[0] == 'f' {
						bits = append(bits, f == "T")
						continue
					}
					x, err := strconv.Atoi(f)
					if err != nil {
						t.Fatalf("line %d: bad value %q", lineNo+1, f)
					}
					ints = append(ints, x)
				}
				if directive == "in" {
					if name[0] == 'v' {
						machine.SetV(reg, ints)
					} else {
						machine.SetF(reg, bits)
					}
					continue
				}
				outs = append(outs, expect{kind: name[0], reg: reg, ints: ints, bits: bits})
			}
			prog, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			machine.Run(prog)
			for _, e := range outs {
				if e.kind == 'v' {
					if got := machine.V(e.reg); !reflect.DeepEqual(got, e.ints) {
						t.Errorf("v%d = %v, want %v", e.reg, got, e.ints)
					}
				} else {
					if got := machine.F(e.reg); !reflect.DeepEqual(got, e.bits) {
						t.Errorf("f%d = %v, want %v", e.reg, got, e.bits)
					}
				}
			}
			if len(outs) == 0 {
				t.Fatalf("%s declares no expected outputs", file)
			}
		})
	}
}
