package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	s.Arm(KernelPanic, 1)
	s.ArmSleep(KernelSlow, 1, time.Second)
	s.Disarm(KernelPanic)
	s.DisarmAll()
	if s.Fires(KernelPanic) != 0 {
		t.Fatal("nil set reported fires")
	}
	p := s.Point(KernelPanic)
	if p != nil {
		t.Fatal("nil set returned a non-nil point")
	}
	if p.Fire() || p.Sleep() || p.Fires() != 0 || p.Name() != "" {
		t.Fatal("nil point misbehaved")
	}
	if s.String() != "faults{}" {
		t.Fatalf("nil set String = %q", s.String())
	}
}

func TestDisarmedNeverFires(t *testing.T) {
	s := New(1)
	p := s.Point(KernelPanic)
	for i := 0; i < 1000; i++ {
		if p.Fire() {
			t.Fatal("disarmed point fired")
		}
	}
	if p.Fires() != 0 {
		t.Fatalf("fires = %d, want 0", p.Fires())
	}
}

func TestArmedAlwaysFires(t *testing.T) {
	s := New(2)
	s.Arm(ConnDrop, 1)
	p := s.Point(ConnDrop)
	for i := 0; i < 100; i++ {
		if !p.Fire() {
			t.Fatal("prob-1 point failed to fire")
		}
	}
	if got := s.Fires(ConnDrop); got != 100 {
		t.Fatalf("Fires = %d, want 100", got)
	}
	s.Disarm(ConnDrop)
	if p.Fire() {
		t.Fatal("disarmed point fired")
	}
	if got := s.Fires(ConnDrop); got != 100 {
		t.Fatalf("Fires after disarm = %d, want 100 (counts survive)", got)
	}
}

func TestProbabilityIsRoughlyHonored(t *testing.T) {
	s := New(42)
	s.Arm("half", 0.5)
	p := s.Point("half")
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if p.Fire() {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Fatalf("prob-0.5 point fired %d/%d times", fired, n)
	}
}

func TestSleepDelays(t *testing.T) {
	s := New(3)
	s.ArmSleep(KernelSlow, 1, 10*time.Millisecond)
	start := time.Now()
	if !s.Point(KernelSlow).Sleep() {
		t.Fatal("armed sleep point did not fire")
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= ~10ms", d)
	}
}

func TestDisarmAllAndString(t *testing.T) {
	s := New(4)
	s.Arm(KernelPanic, 0.25)
	s.ArmSleep(KernelSlow, 0.5, time.Millisecond)
	s.DisarmAll()
	for i := 0; i < 500; i++ {
		if s.Point(KernelPanic).Fire() || s.Point(KernelSlow).Fire() {
			t.Fatal("point fired after DisarmAll")
		}
	}
	str := s.String()
	if !strings.Contains(str, KernelPanic) || !strings.Contains(str, KernelSlow) {
		t.Fatalf("String missing points: %q", str)
	}
}

func TestConcurrentFire(t *testing.T) {
	// Race-detector smoke: many goroutines firing, arming, reading.
	s := New(5)
	s.Arm(ConnDrop, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := s.Point(ConnDrop)
			for i := 0; i < 2000; i++ {
				p.Fire()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s.Arm(ConnDrop, 0.25)
			s.Fires(ConnDrop)
			_ = s.String()
		}
	}()
	wg.Wait()
	if s.Fires(ConnDrop) == 0 {
		t.Fatal("no fires recorded under concurrency")
	}
}

func TestSeedsReproduce(t *testing.T) {
	run := func(seed int64) []bool {
		s := New(seed)
		s.Arm("p", 0.3)
		p := s.Point("p")
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Fire()
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
