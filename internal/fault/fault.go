// Package fault provides named, probabilistically-armed fault points
// for chaos testing the serving layer. A fault point is a place in the
// code that asks "should I misbehave right now?"; the answer is no
// unless a test (or scansd's -chaos flag) has armed the point with a
// firing probability. Disarmed points cost one nil check or one atomic
// load — cheap enough to leave in production paths permanently, which
// is the whole idea: the chaos harness exercises the exact binary that
// serves traffic, not an instrumented twin.
//
// Usage: a subsystem resolves its points once at construction
// (set.Point(name) — nil-safe, a nil *Set yields nil *Points that
// never fire) and calls p.Fire() / p.Sleep() on the hot path. Tests
// arm points with Arm / ArmSleep, observe firing counts with Fires,
// and disarm with Disarm / DisarmAll.
package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Standard point names used by internal/serve. Any other name works
// too — points are created on first reference — but sharing these
// constants keeps the server and the chaos tests in one vocabulary.
const (
	// KernelSlow delays a batch's kernel pass by the armed duration.
	KernelSlow = "kernel.slow"
	// KernelPanic panics inside a batch's kernel pass.
	KernelPanic = "kernel.panic"
	// ConnDrop closes a network connection between two requests.
	ConnDrop = "conn.drop"
	// PartialWrite truncates a response line mid-write and closes the
	// connection, leaving the client a torn line.
	PartialWrite = "conn.partialwrite"
	// ExecStall delays an executor between taking a batch off the
	// channel and running it, simulating a descheduled or page-faulting
	// executor: queued work ages (queue-age shedding and deadlines see
	// realistic pressure) while the batcher keeps assembling.
	ExecStall = "exec.stall"
	// QueueCorrupt simulates DETECTED queue corruption: a request pulled
	// from the queue at batch-assembly time is treated as damaged and
	// failed with a typed internal error instead of executing. The point
	// models a fail-safe integrity check, so firing it must never
	// corrupt a result — only convert a would-be success into a clean,
	// retryable failure.
	QueueCorrupt = "queue.corrupt-detect"
	// ClusterWorkerSlow delays a coordinator's shard dispatch to a
	// worker, stretching the window in which hedged requests fire.
	ClusterWorkerSlow = "cluster.worker.slow"
	// ClusterWorkerDrop kills the coordinator's connection to a worker
	// while a shard is in flight, simulating a worker dying mid-scan.
	ClusterWorkerDrop = "cluster.worker.drop"
	// WireTruncate cuts a binary-protocol response frame in half and
	// closes the connection — the frame-level analogue of PartialWrite.
	// A binary stream has no resync point, so the client must treat the
	// torn frame as a dead connection, never as a response.
	WireTruncate = "wire.truncate"
	// WireCorruptLen flips bits in a binary response frame's length
	// prefix before writing it, then closes the connection: the client's
	// framing layer must detect the damage (absurd length, short read,
	// or a payload that fails structural validation) and kill the
	// connection rather than deliver garbage.
	WireCorruptLen = "wire.corrupt-len"
	// ClockSkew perturbs the serving layer's deadline clock: an admitted
	// request's enqueue timestamp is aged backward by the armed duration,
	// as if the submitting machine's clock had jumped. Queue-age shedding
	// then sees an ancient request and must fail it typed (ErrShed)
	// rather than misbehave — the fault checks that time-based policies
	// degrade cleanly under clock trouble.
	ClockSkew = "clock.skew"
	// ClusterCoordCrash kills the primary coordinator's front end
	// mid-request (via cluster.Config.CrashHook), the chaos stand-in for
	// kill -9. Clients holding stream resume tokens must re-attach to
	// the standby and continue bit-identically.
	ClusterCoordCrash = "cluster.coord.crash"
	// ClusterHeartbeatDrop silently discards a worker heartbeat at the
	// coordinator, simulating a lossy control plane: a worker whose
	// beats are eaten long enough is ejected by liveness even though it
	// is healthy, and must be readmitted when beats get through again.
	ClusterHeartbeatDrop = "cluster.heartbeat.drop"
	// ClusterJoinStorm amplifies a single worker announcement into many
	// concurrent ones, simulating a fleet-wide restart where every
	// worker re-announces at once. Admission must stay idempotent: one
	// registry entry per address, no duplicate shards.
	ClusterJoinStorm = "cluster.worker.joinstorm"
	// ClusterXchgDrop makes an exchange-mode participant "lose" its half
	// of one carry-exchange round: the send to its partner is skipped,
	// so the partner's await times out, both pieces fail typed
	// (xchg_failed), and the coordinator must fall back to the star
	// data plane with no lost or corrupted request.
	ClusterXchgDrop = "cluster.xchg.drop"
	// ClusterXchgSlow delays an exchange participant before each carry
	// round, stretching exchanges toward the round timeout without
	// breaking them.
	ClusterXchgSlow = "cluster.xchg.slow"
)

// Set is an independent collection of fault points sharing one seeded
// RNG stream. A nil *Set is valid and inert: every method is a no-op
// and Point returns nil. Servers therefore thread a *Set through their
// config unconditionally and pay nothing when chaos is off.
type Set struct {
	rng    atomic.Uint64 // xorshift64 state, shared by all points
	mu     sync.Mutex    // guards points map shape (not point state)
	points map[string]*Point
}

// New returns a Set whose firing decisions derive from seed, so a
// chaos run is reproducible up to goroutine interleaving.
func New(seed int64) *Set {
	s := &Set{points: make(map[string]*Point)}
	state := uint64(seed)
	if state == 0 {
		state = 0x9e3779b97f4a7c15 // xorshift state must be nonzero
	}
	s.rng.Store(state)
	return s
}

// Point returns the named point, creating it (disarmed) on first
// reference. On a nil Set it returns nil, which is a valid
// never-firing Point.
func (s *Set) Point(name string) *Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.points[name]
	if p == nil {
		p = &Point{name: name, set: s}
		s.points[name] = p
	}
	return p
}

// Arm sets the point's firing probability (0 disarms, 1 always fires).
// No-op on a nil Set.
func (s *Set) Arm(name string, prob float64) {
	if s == nil {
		return
	}
	s.Point(name).arm(prob, 0)
}

// ArmSleep arms a delay point: with probability prob, Sleep pauses the
// caller for d. No-op on a nil Set.
func (s *Set) ArmSleep(name string, prob float64, d time.Duration) {
	if s == nil {
		return
	}
	s.Point(name).arm(prob, d)
}

// Disarm sets the point's probability to zero. Firing counts survive
// so a test can disarm and then assert on what fired.
func (s *Set) Disarm(name string) { s.Arm(name, 0) }

// DisarmAll disarms every point in the set.
func (s *Set) DisarmAll() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.points {
		p.prob.Store(0)
	}
}

// Fires returns how many times the named point has fired. 0 on a nil
// Set or an unknown name.
func (s *Set) Fires(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	p := s.points[name]
	s.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.fires.Load()
}

// String summarizes every point as "name:fires/evals@prob", sorted by
// name — the line chaos runs log next to the server stats.
func (s *Set) String() string {
	if s == nil {
		return "faults{}"
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.points))
	for name := range s.points {
		names = append(names, name)
	}
	pts := make([]*Point, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		pts = append(pts, s.points[name])
	}
	s.mu.Unlock()
	out := "faults{"
	for i, p := range pts {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d/%d@%g", p.name, p.fires.Load(), p.evals.Load(),
			math.Float64frombits(p.prob.Load()))
	}
	return out + "}"
}

// next advances the shared xorshift64 stream one step.
func (s *Set) next() uint64 {
	for {
		old := s.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// Point is one named fault site. The zero probability (and the nil
// Point) never fires; all methods are safe on a nil receiver and safe
// for concurrent use.
type Point struct {
	name    string
	set     *Set
	prob    atomic.Uint64 // math.Float64bits of the firing probability
	delayNs atomic.Int64  // Sleep duration when armed via ArmSleep
	fires   atomic.Uint64
	evals   atomic.Uint64
}

// arm sets probability and optional delay.
func (p *Point) arm(prob float64, d time.Duration) {
	p.prob.Store(math.Float64bits(prob))
	p.delayNs.Store(int64(d))
}

// Fire reports whether the fault should trigger this time. The
// disarmed fast path is a single atomic load (or a nil check).
func (p *Point) Fire() bool {
	if p == nil {
		return false
	}
	prob := math.Float64frombits(p.prob.Load())
	if prob <= 0 {
		return false
	}
	p.evals.Add(1)
	// 53 random bits → uniform [0,1).
	if float64(p.set.next()>>11)/(1<<53) >= prob {
		return false
	}
	p.fires.Add(1)
	return true
}

// Sleep fires the point and, when it fires, pauses the caller for the
// armed delay. Returns whether it slept.
func (p *Point) Sleep() bool {
	if !p.Fire() {
		return false
	}
	if d := time.Duration(p.delayNs.Load()); d > 0 {
		time.Sleep(d)
	}
	return true
}

// Delay fires the point and, when it fires, returns the armed duration
// WITHOUT sleeping — for faults that feed the duration into time math
// (e.g. fault.ClockSkew skewing a timestamp) instead of stalling the
// caller. Returns 0 when the point does not fire (or is nil/disarmed).
func (p *Point) Delay() time.Duration {
	if !p.Fire() {
		return 0
	}
	return time.Duration(p.delayNs.Load())
}

// Fires returns how many times this point has fired.
func (p *Point) Fires() uint64 {
	if p == nil {
		return 0
	}
	return p.fires.Load()
}

// Name returns the point's name ("" for the nil never-firing point).
func (p *Point) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}
