// Package arena provides size-classed, sync.Pool-backed buffers for the
// serving hot path. The zero-copy pipeline (wire decode → kernel pass →
// response encode) recycles every transient []int64 and []byte through
// this package, so a steady-state request allocates nothing: buffers
// circulate between the pools and the connection handlers.
//
// Ownership protocol (see DESIGN.md "Arena ownership"): every Get must
// be paired with exactly one Put of the SAME slice (any length, but the
// original backing array — do not re-slice the base away), and nothing
// may touch a buffer after putting it. A leak-checking ledger counts
// gets and puts globally; chaos tests assert they balance, which is how
// buffer leaks through panic/deadline/shed paths are caught.
//
// Buffers are pooled in power-of-two element-count classes from 1<<minBits
// up to 1<<maxBits; larger requests fall through to plain make (counted
// as a get+miss, and their Put is counted then dropped, so the ledger
// stays balanced without pinning huge buffers in memory).
package arena

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	minBits = 6  // smallest pooled class: 64 elements
	maxBits = 22 // largest pooled class: 4Mi elements
	classes = maxBits - minBits + 1
)

// ledger is the global leak-checking ledger.
var ledger struct {
	gets        atomic.Uint64
	puts        atomic.Uint64
	misses      atomic.Uint64
	bytesPooled atomic.Uint64
}

// Counters is a snapshot of the arena ledger.
type Counters struct {
	// Gets and Puts count buffer checkouts and returns; they are equal
	// exactly when no checked-out buffer is outstanding.
	Gets, Puts uint64
	// Misses counts gets served by a fresh allocation (cold pool or
	// over-max size) rather than a recycled buffer.
	Misses uint64
	// BytesPooled totals the payload bytes served from recycled
	// buffers — the allocation traffic the arena absorbed.
	BytesPooled uint64
}

// Stats returns the current ledger counters.
func Stats() Counters {
	return Counters{
		Gets:        ledger.gets.Load(),
		Puts:        ledger.puts.Load(),
		Misses:      ledger.misses.Load(),
		BytesPooled: ledger.bytesPooled.Load(),
	}
}

// pools holds one sync.Pool per size class plus a pool of recycled
// slice headers: Put boxes the slice into a *[]T to store it, and
// reusing those headers keeps the steady-state Get/Put cycle itself
// allocation-free.
type pools[T any] struct {
	classes [classes]sync.Pool
	headers sync.Pool
}

var (
	int64Pools pools[int64]
	bytePools  pools[byte]
)

// classFor returns the class index whose buffers hold at least n
// elements. n must be in (0, 1<<maxBits].
func classFor(n int) int {
	b := bits.Len(uint(n - 1))
	if b < minBits {
		return 0
	}
	return b - minBits
}

// get returns a buffer of length n (capacity = class size), elemSize is
// for the bytes-pooled accounting.
func (p *pools[T]) get(n, elemSize int) []T {
	if n <= 0 {
		return nil
	}
	ledger.gets.Add(1)
	if n > 1<<maxBits {
		ledger.misses.Add(1)
		return make([]T, n)
	}
	c := classFor(n)
	if hp, _ := p.classes[c].Get().(*[]T); hp != nil {
		s := *hp
		*hp = nil
		p.headers.Put(hp)
		ledger.bytesPooled.Add(uint64(n) * uint64(elemSize))
		return s[:n]
	}
	ledger.misses.Add(1)
	return make([]T, n, 1<<(classFor(n)+minBits))
}

// put returns a buffer obtained from get. Foreign or over-max buffers
// are counted and dropped (the GC takes them); class-sized ones are
// recycled.
func (p *pools[T]) put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	ledger.puts.Add(1)
	if c < 1<<minBits || c > 1<<maxBits || c&(c-1) != 0 {
		return
	}
	hp, _ := p.headers.Get().(*[]T)
	if hp == nil {
		hp = new([]T)
	}
	*hp = s[:c]
	p.classes[classFor(c)].Put(hp)
}

// GetInt64s returns an int64 buffer of length n (n <= 0 returns nil,
// uncounted). The capacity may exceed n; callers must not assume
// cap == len.
func GetInt64s(n int) []int64 { return int64Pools.get(n, 8) }

// PutInt64s returns a buffer obtained from GetInt64s to its pool. The
// caller must not touch the buffer afterwards. Safe only for buffers
// that came from GetInt64s (the ledger counts every put).
func PutInt64s(s []int64) { int64Pools.put(s) }

// GetBytes returns a byte buffer of length n (n <= 0 returns nil).
func GetBytes(n int) []byte { return bytePools.get(n, 1) }

// PutBytes returns a buffer obtained from GetBytes to its pool.
func PutBytes(s []byte) { bytePools.put(s) }
