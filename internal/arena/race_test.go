//go:build race

package arena

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops a fraction of Puts
// — allocation-free steady state cannot hold there.
const raceEnabled = true
