package arena

import (
	"sync"
	"testing"
)

// delta runs f and returns the ledger movement it caused.
func delta(f func()) Counters {
	before := Stats()
	f()
	after := Stats()
	return Counters{
		Gets:        after.Gets - before.Gets,
		Puts:        after.Puts - before.Puts,
		Misses:      after.Misses - before.Misses,
		BytesPooled: after.BytesPooled - before.BytesPooled,
	}
}

func TestLedgerBalancesAcrossSizes(t *testing.T) {
	d := delta(func() {
		for _, n := range []int{1, 63, 64, 65, 1000, 1 << 16, 1<<22 + 1} {
			s := GetInt64s(n)
			if len(s) != n {
				t.Fatalf("GetInt64s(%d): len %d", n, len(s))
			}
			PutInt64s(s)
			b := GetBytes(n)
			if len(b) != n {
				t.Fatalf("GetBytes(%d): len %d", n, len(b))
			}
			PutBytes(b)
		}
	})
	if d.Gets != d.Puts {
		t.Fatalf("ledger unbalanced: %d gets, %d puts", d.Gets, d.Puts)
	}
	if d.Gets != 14 {
		t.Fatalf("expected 14 gets, got %d", d.Gets)
	}
}

func TestZeroAndNegativeUncounted(t *testing.T) {
	d := delta(func() {
		if GetInt64s(0) != nil || GetInt64s(-3) != nil || GetBytes(0) != nil {
			t.Fatal("zero-size get should return nil")
		}
		PutInt64s(nil)
		PutBytes(nil)
	})
	if d.Gets != 0 || d.Puts != 0 {
		t.Fatalf("zero-size ops moved the ledger: %+v", d)
	}
}

func TestReuseServesFromPool(t *testing.T) {
	// A put buffer should come back on the next same-class get. sync.Pool
	// may drop items under GC pressure, so allow a few attempts.
	reused := false
	for attempt := 0; attempt < 10 && !reused; attempt++ {
		s := GetInt64s(100)
		s[0] = 42
		base := &s[0]
		PutInt64s(s)
		g := GetInt64s(80) // same class (128)
		reused = &g[0] == base
		PutInt64s(g)
	}
	if !reused {
		t.Fatal("pool never served a recycled buffer")
	}
}

func TestOversizedRoundTripBalances(t *testing.T) {
	d := delta(func() {
		s := GetInt64s(1<<22 + 5)
		PutInt64s(s) // dropped, but counted
	})
	if d.Gets != 1 || d.Puts != 1 || d.Misses != 1 {
		t.Fatalf("oversized round trip: %+v", d)
	}
}

func TestConcurrentChurnBalances(t *testing.T) {
	d := delta(func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					n := (g*131+i*7)%5000 + 1
					s := GetInt64s(n)
					s[n/2] = int64(i)
					b := GetBytes(n)
					b[n/2] = byte(i)
					PutBytes(b)
					PutInt64s(s)
				}
			}(g)
		}
		wg.Wait()
	})
	if d.Gets != d.Puts {
		t.Fatalf("ledger unbalanced under churn: %d gets, %d puts", d.Gets, d.Puts)
	}
	if d.Gets != 8000 {
		t.Fatalf("expected 8000 gets, got %d", d.Gets)
	}
}

// TestSteadyStateAllocFree pins the header-recycling trick: once warm,
// a Get/Put cycle performs zero heap allocations.
func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts; alloc-free steady state cannot hold")
	}
	for i := 0; i < 32; i++ { // warm the class and header pools
		PutInt64s(GetInt64s(256))
		PutBytes(GetBytes(256))
	}
	avg := testing.AllocsPerRun(200, func() {
		s := GetInt64s(256)
		PutInt64s(s)
		b := GetBytes(256)
		PutBytes(b)
	})
	if avg > 0.1 {
		t.Fatalf("steady-state Get/Put allocates: %.2f allocs/run", avg)
	}
}
