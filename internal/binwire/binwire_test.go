package binwire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"scans/internal/arena"
)

// readOne frames-up a buffer and reads one payload back.
func readOne(t *testing.T, frame []byte, max int) ([]byte, error) {
	t.Helper()
	return ReadFrame(bufio.NewReader(bytes.NewReader(frame)), max)
}

func TestScanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 64, 1000} {
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63() - rng.Int63()
		}
		frame := AppendScan(nil, 42, 1, 0, 1, ElemInt64, 2500, "tenant-a", data, nil)
		if len(frame) != ScanFrameBytes("tenant-a", n) {
			t.Fatalf("n=%d: frame size %d, ScanFrameBytes says %d", n, len(frame), ScanFrameBytes("tenant-a", n))
		}
		payload, err := readOne(t, frame, len(frame))
		if err != nil {
			t.Fatalf("n=%d: ReadFrame: %v", n, err)
		}
		req, err := ParseRequest(payload)
		arena.PutBytes(payload)
		if err != nil {
			t.Fatalf("n=%d: ParseRequest: %v", n, err)
		}
		if req.Type != FScan || req.ID != 42 || req.Op != 1 || req.Kind != 0 || req.Dir != 1 ||
			req.Elem != ElemInt64 || req.TimeoutMS != 2500 || req.Tenant != "tenant-a" {
			t.Fatalf("n=%d: header mismatch: %+v", n, req)
		}
		if len(req.Data) != n {
			t.Fatalf("n=%d: got %d elements", n, len(req.Data))
		}
		for i := range data {
			if req.Data[i] != data[i] {
				t.Fatalf("n=%d: element %d: got %d want %d", n, i, req.Data[i], data[i])
			}
		}
		if len(req.Data) > 0 {
			arena.PutInt64s(req.Data)
		}
	}
}

func TestFloatScanRoundTrip(t *testing.T) {
	fdata := []float64{1.5, math.Inf(1), math.Inf(-1), math.NaN(), -0.0, math.MaxFloat64, math.SmallestNonzeroFloat64}
	frame := AppendScan(nil, 9, 0, 1, 0, ElemFloat64, 0, "", nil, fdata)
	payload, err := readOne(t, frame, len(frame))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	req, err := ParseRequest(payload)
	arena.PutBytes(payload)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Elem != ElemFloat64 || len(req.FData) != len(fdata) {
		t.Fatalf("decoded %+v", req)
	}
	for i, f := range fdata {
		// Bitwise identity: NaN payloads and signed zeros must survive.
		if math.Float64bits(req.FData[i]) != math.Float64bits(f) {
			t.Fatalf("element %d: got %x want %x", i, math.Float64bits(req.FData[i]), math.Float64bits(f))
		}
	}
}

func TestStreamFramesRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendStreamOpen(buf, 1, 77, 0, 1, 0, ElemInt64)
	buf = AppendStreamChunk(buf, 2, 77, 1000, []int64{5, -6, 7})
	buf = AppendStreamClose(buf, 3, 77)
	r := bufio.NewReader(bytes.NewReader(buf))

	p1, err := ReadFrame(r, 1<<20)
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	open, err := ParseRequest(p1)
	arena.PutBytes(p1)
	if err != nil || open.Type != FStreamOpen || open.ID != 1 || open.Stream != 77 || open.Kind != 1 {
		t.Fatalf("open decode: %+v err=%v", open, err)
	}

	p2, err := ReadFrame(r, 1<<20)
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	chunk, err := ParseRequest(p2)
	arena.PutBytes(p2)
	if err != nil || chunk.Type != FStreamChunk || chunk.ID != 2 || chunk.Stream != 77 ||
		chunk.TimeoutMS != 1000 || len(chunk.Data) != 3 || chunk.Data[1] != -6 {
		t.Fatalf("chunk decode: %+v err=%v", chunk, err)
	}
	arena.PutInt64s(chunk.Data)

	p3, err := ReadFrame(r, 1<<20)
	if err != nil {
		t.Fatalf("frame 3: %v", err)
	}
	cl, err := ParseRequest(p3)
	arena.PutBytes(p3)
	if err != nil || cl.Type != FStreamClose || cl.ID != 3 || cl.Stream != 77 {
		t.Fatalf("close decode: %+v err=%v", cl, err)
	}
}

func TestResponseRoundTrips(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
		check func(t *testing.T, resp Response)
	}{
		{"result", AppendResult(nil, 4, []int64{1, -2, math.MaxInt64, math.MinInt64}), func(t *testing.T, resp Response) {
			if resp.Type != FResult || resp.ID != 4 || len(resp.Result) != 4 || resp.Result[3] != math.MinInt64 {
				t.Fatalf("got %+v", resp)
			}
			arena.PutInt64s(resp.Result)
		}},
		{"empty-result", AppendResult(nil, 5, nil), func(t *testing.T, resp Response) {
			if resp.Type != FResult || resp.ID != 5 || len(resp.Result) != 0 {
				t.Fatalf("got %+v", resp)
			}
		}},
		{"fresult", AppendFloatResult(nil, 6, []float64{math.Inf(-1), 2.25}), func(t *testing.T, resp Response) {
			if resp.Type != FFloatResult || resp.ID != 6 || len(resp.FResult) != 2 || !math.IsInf(resp.FResult[0], -1) || resp.FResult[1] != 2.25 {
				t.Fatalf("got %+v", resp)
			}
		}},
		{"total", AppendTotal(nil, 7, -12345), func(t *testing.T, resp Response) {
			if resp.Type != FTotal || resp.ID != 7 || resp.Total != -12345 {
				t.Fatalf("got %+v", resp)
			}
		}},
		{"error", AppendError(nil, 8, "overloaded", "queue full"), func(t *testing.T, resp Response) {
			if resp.Type != FError || resp.ID != 8 || resp.Code != "overloaded" || resp.Error != "queue full" {
				t.Fatalf("got %+v", resp)
			}
		}},
	}
	for _, tc := range cases {
		payload, err := readOne(t, tc.frame, 1<<20)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", tc.name, err)
		}
		resp, err := ParseResponse(payload)
		arena.PutBytes(payload)
		if err != nil {
			t.Fatalf("%s: ParseResponse: %v", tc.name, err)
		}
		tc.check(t, resp)
	}
}

func TestReadFrameTooBig(t *testing.T) {
	frame := AppendScan(nil, 123456, 0, 0, 0, ElemInt64, 0, "", make([]int64, 100), nil)
	payload, err := readOne(t, frame, 64)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
	// The salvaged prefix recovers the id for the error response.
	if id := RequestID(payload); id != 123456 {
		t.Fatalf("RequestID on prefix: got %d want 123456", id)
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	if _, err := readOne(t, []byte{0, 0, 0, 0}, 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for zero-length frame, got %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	frame := AppendResult(nil, 1, []int64{1, 2, 3})
	_, err := readOne(t, frame[:len(frame)-5], 1<<20)
	if err == nil || errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooBig) {
		// A half-delivered frame is an io error (connection died), not a
		// structural verdict about a frame we never saw whole.
		t.Fatalf("want io error for truncated body, got %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

// TestParseRejectsMalformed drives structurally-damaged payloads
// through both parsers: every case must fail with ErrBadFrame, never
// panic, and never leak (the arena ledger is balanced around the loop).
func TestParseRejectsMalformed(t *testing.T) {
	before := arena.Stats()
	good := AppendScan(nil, 1, 0, 0, 0, ElemInt64, 0, "t", []int64{1, 2}, nil)[4:]
	cases := map[string][]byte{
		"empty":              {},
		"unknown-type":       {0x7F, 0, 0, 0, 0, 0, 0, 0, 0},
		"short-scan":         good[:10],
		"count-over-payload": append(append([]byte{}, good[:len(good)-16]...), 0xFF, 0xFF),
		"trailing-garbage":   append(append([]byte{}, good...), 0xEE),
	}
	for name, payload := range cases {
		if _, err := ParseRequest(payload); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("ParseRequest(%s): want ErrBadFrame, got %v", name, err)
		}
	}
	respCases := map[string][]byte{
		"empty":         {},
		"request-type":  good,
		"short-result":  {FResult, 1, 2, 3},
		"count-lies":    {FResult, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0},
		"error-lengths": {FError, 0, 0, 0, 0, 0, 0, 0, 0, 200},
	}
	for name, payload := range respCases {
		if _, err := ParseResponse(payload); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("ParseResponse(%s): want ErrBadFrame, got %v", name, err)
		}
	}
	after := arena.Stats()
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("malformed-frame parsing leaked buffers: %d gets vs %d puts", gets, puts)
	}
}

// TestFrameSizeHelpers pins the sizing helpers to the encoders — the
// arena-backed hot paths size buffers with them, so drift would mean
// reallocation (or worse, short buffers) on every request.
func TestFrameSizeHelpers(t *testing.T) {
	if got := len(AppendStreamOpen(nil, 1, 2, 0, 0, 0, 0)); got != StreamOpenFrameBytes() {
		t.Fatalf("StreamOpenFrameBytes: %d vs %d", got, StreamOpenFrameBytes())
	}
	if got := len(AppendStreamChunk(nil, 1, 2, 3, make([]int64, 17))); got != StreamChunkFrameBytes(17) {
		t.Fatalf("StreamChunkFrameBytes: %d vs %d", got, StreamChunkFrameBytes(17))
	}
	if got := len(AppendStreamClose(nil, 1, 2)); got != StreamCloseFrameBytes() {
		t.Fatalf("StreamCloseFrameBytes: %d vs %d", got, StreamCloseFrameBytes())
	}
	if got := len(AppendResult(nil, 1, make([]int64, 9))); got != ResultFrameBytes(9) {
		t.Fatalf("ResultFrameBytes: %d vs %d", got, ResultFrameBytes(9))
	}
	if got := len(AppendFloatResult(nil, 1, make([]float64, 9))); got != ResultFrameBytes(9) {
		t.Fatalf("ResultFrameBytes(float): %d vs %d", got, ResultFrameBytes(9))
	}
	if got := len(AppendTotal(nil, 1, 2)); got != TotalFrameBytes() {
		t.Fatalf("TotalFrameBytes: %d vs %d", got, TotalFrameBytes())
	}
	if got := len(AppendError(nil, 1, "code", "message")); got != ErrorFrameBytes("code", "message") {
		t.Fatalf("ErrorFrameBytes: %d vs %d", got, ErrorFrameBytes("code", "message"))
	}
}
