// Package binwire is the binary wire protocol for scansd: a
// length-prefixed framing carrying raw little-endian int64/float64
// payload arrays that decode straight into arena buffers with zero
// per-element parsing. It exists because the newline-JSON protocol made
// the cluster codec-bound (EXPERIMENTS.md's worker-scaling table): at a
// million elements the coordinator and workers spent more cycles in
// AppendInt/parseInt64Array than in the scan kernels the paper says
// should dominate. A binary payload element costs one 8-byte load
// instead of a digit loop, so the wire cost collapses to memory
// bandwidth — the same bound LightScan establishes for scan itself.
//
// The protocol is negotiated per connection: a binary client's first
// bytes after connect are the Magic preamble ("\x00bin/1\n" — the
// leading NUL can never begin a JSON line), the server answers with the
// same bytes, and both sides switch to frames. Anything else falls
// through to the legacy newline-JSON protocol, so old clients keep
// working against new servers and vice versa (a legacy server answers
// the preamble with a bad_json error line, which a binary client
// recognizes and degrades on).
//
// Frame layout (everything little-endian):
//
//	frame   := u32 length | payload            (length = len(payload))
//	payload := u8 type | body
//
// Request bodies (client → server):
//
//	FScan        u64 id | u8 op | u8 kind | u8 dir | u8 elem |
//	             u64 timeout_ms | u16 tenantLen | tenant |
//	             u32 n | n × 8-byte element
//	FStreamOpen  u64 id | u64 stream | u8 op | u8 kind | u8 dir | u8 elem
//	FStreamChunk u64 id | u64 stream | u64 timeout_ms | u32 n | n × 8
//	FStreamClose u64 id | u64 stream
//	FHeartbeat   u64 id | u64 weight bits | u32 maxLine | u8 wproto |
//	             u16 addrLen | addr
//	FStreamResume u64 id | u64 stream | u64 acked | u8 tokLen | token
//	FStreamOpen2 (same body as FStreamOpen; requests an FAck answer)
//	FScanXchg    u64 id | u8 op | u8 kind | u8 dir | u64 timeout_ms |
//	             u16 tenantLen | tenant | u64 group | u32 rank | u32 k |
//	             k × (u16 addrLen | addr) | u8 head | u8 seeded |
//	             u64 init bits | u32 n | n × 8-byte element
//	FCarryXchg   u64 id | u64 group | u32 round | u32 from | u32 to |
//	             u64 value bits | u8 reset
//	FRegisterOp  u64 id | u16 tenantLen | tenant | u16 nameLen | name |
//	             u32 srcLen | source
//
// When the op byte of FScan / FStreamOpen / FStreamOpen2 / FScanXchg is
// OpUser, the fixed enum bytes are followed immediately by the user-op
// fields `u16 nameLen | name | u64 hash` (hash 0 = unpinned). They sit
// BEFORE the trailing element array — the array must exactly end the
// payload — and builtin frames carry no such fields, so every
// pre-existing frame stays byte-identical.
//
// Response bodies (server → client):
//
//	FResult      u64 id | u32 n | n × 8-byte int64
//	FFloatResult u64 id | u32 n | n × 8-byte float64 bits
//	FTotal       u64 id | i64 total
//	FError       u64 id | u8 codeLen | code | u16 msgLen | msg
//	FAck         u64 id | u64 seq | u32 window | u8 tokLen | token
//	FOpAck       u64 id | u64 hash
//
// Every frame carries the request id, so one connection multiplexes any
// number of in-flight requests: the server's per-connection writer
// goroutine interleaves response frames in completion order and the
// client demuxes by id. int64 elements travel as their two's-complement
// bits, float64 elements as math.Float64bits — NaN and ±Inf need no
// special tokens (unlike the JSON protocol's "+Inf"/"-Inf"/"NaN"
// strings).
//
// Framing damage is not resynchronizable: unlike a JSON stream, which
// realigns at the next newline, a binary stream whose length field is
// corrupt has no recovery point, so any structural error (ErrBadFrame)
// must kill the connection. ErrFrameTooBig mirrors the JSON protocol's
// oversized-line handling: the reader returns a short prefix so the
// request id can still be recovered for the error response, and the
// connection dies.
package binwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"scans/internal/arena"
)

// Magic is the negotiation preamble a binary client sends as its first
// bytes, and the acknowledgement the server echoes back. The leading
// NUL byte can never begin a line of the legacy JSON protocol, so one
// peeked byte routes a connection to the right codec.
const Magic = "\x00bin/1\n"

// Frame types. Requests have the high bit clear, responses set.
const (
	// FScan is a one-shot scan request.
	FScan = 0x01
	// FStreamOpen opens a streaming session.
	FStreamOpen = 0x02
	// FStreamChunk pushes one chunk through an open stream.
	FStreamChunk = 0x03
	// FStreamClose closes a stream, answering with FTotal.
	FStreamClose = 0x04
	// FHeartbeat announces a worker to a coordinator: its dialable
	// address, capacity weight, preferred wire protocol, and line
	// budget. Answered with an empty FResult ack (or FError against a
	// server that is not a coordinator).
	FHeartbeat = 0x05
	// FStreamResume re-attaches to a resumable stream by token after a
	// connection (or coordinator) death. Answered with FAck carrying the
	// 1-based index of the next chunk the server expects.
	FStreamResume = 0x06
	// FStreamOpen2 is FStreamOpen from a client that understands FAck:
	// the server acks it with FAck (resume token + flow-control window)
	// instead of an empty FResult. A pre-FAck server rejects the unknown
	// type with a payload-level bad_frame — the connection survives and
	// the client falls back to FStreamOpen.
	FStreamOpen2 = 0x07
	// FScanXchg is a one-shot scan of one exchange-mode piece: the raw
	// un-seeded segment plus the piece's rank in the peer ring. The
	// worker folds the segment, runs the hypercube carry exchange with
	// its peers (FCarryXchg rounds), applies the received carry, and
	// answers with the piece's seeded scan — so the result is identical
	// to the star path's pre-seeded FScan of the same piece.
	FScanXchg = 0x08
	// FCarryXchg is one worker→worker message of the carry exchange: the
	// sender's running (value, reset) pair for round `round`, addressed
	// to rank `to` of exchange group `group`. Acked with an empty
	// FResult; the payload lands in the receiver's exchange mailbox.
	FCarryXchg = 0x09
	// FRegisterOp registers a user combine op: tenant, op name, and the
	// bytecode assembly source. Answered with FOpAck carrying the
	// registration's content hash, or FError (bad_op on rejection,
	// bad_request against a server with no registry).
	FRegisterOp = 0x0A
	// FResult is a successful int64 result (also the empty ack of a
	// stream open or an empty scan).
	FResult = 0x81
	// FFloatResult is a successful float64 result (raw bit payload).
	FFloatResult = 0x82
	// FTotal acknowledges a stream close with the stream's fold.
	FTotal = 0x83
	// FError is a structured error: a machine code plus a message,
	// mirroring the JSON protocol's error/code fields.
	FError = 0x84
	// FAck is the extended stream acknowledgement (open2/resume): the
	// resume token, the flow-control window (how many chunks the client
	// may hold in flight), and — for resumes — the 1-based index of the
	// next chunk the server expects (0 means "not a resume").
	FAck = 0x85
	// FOpAck acknowledges an FRegisterOp with the registration's content
	// hash — the value a client may pin later scans to.
	FOpAck = 0x86
)

// OpUser is the op-byte value marking a user combine op in
// FScan/FStreamOpen/FStreamOpen2/FScanXchg. It is the only op byte that
// changes a frame's layout: the user-op fields (name + pinned hash)
// follow the fixed enum bytes. Decoders surface the name as the
// "user:<name>" wire string, so an unknown or empty name is rejected
// server-side by ParseSpec with bad_request — never bad_frame — exactly
// like an unknown builtin byte.
const OpUser = 4

// Element kinds carried in the elem byte of FScan/FStreamOpen.
const (
	// ElemInt64 payloads are two's-complement int64 bits.
	ElemInt64 = 0
	// ElemFloat64 payloads are math.Float64bits values.
	ElemFloat64 = 1
)

// Invalid is the enum byte encoders use for an op/kind/dir/elem string
// they do not recognize. Decoders map it (and any other unknown byte)
// to an unparseable string, so validation stays server-side and a
// binary client's bad spec is rejected with the same bad_request code a
// JSON client's would be.
const Invalid = 0xFF

// Structural errors. ErrBadFrame poisons the stream (no resync point);
// ErrFrameTooBig additionally carries a readable prefix via ReadFrame.
var (
	// ErrBadFrame means the frame violated the layout: zero length,
	// unknown type, a body shorter or longer than its fields declare.
	// The connection cannot be resynchronized and must close.
	ErrBadFrame = errors.New("binwire: malformed frame")
	// ErrFrameTooBig means the declared frame length exceeds the
	// negotiated budget. The reader returns the frame's prefix (enough
	// for RequestID) and the connection must close.
	ErrFrameTooBig = errors.New("binwire: frame exceeds maximum length")
)

// Request is one decoded client→server message. Data (and the float
// view FData) is arena-backed when non-empty — the parse loop loads
// elements straight into an arena buffer, so ownership follows the
// DESIGN.md §7 protocol exactly like a JSON-decoded Int64Vec.
type Request struct {
	Type      byte
	ID        uint64
	Stream    uint64
	Op        byte
	Kind      byte
	Dir       byte
	Elem      byte
	TimeoutMS int64
	Tenant    string
	Data      []int64
	FData     []float64
	// Heartbeat fields (FHeartbeat).
	Addr    string
	Weight  float64
	MaxLine int
	WProto  byte
	// Resume fields (FStreamResume): the token and the client's chunk
	// high-water mark.
	Token string
	Acked uint64
	// Exchange fields (FScanXchg / FCarryXchg). Group names one carry
	// exchange; Rank is the receiver's rank in it (FScanXchg: the piece's
	// own rank; FCarryXchg: the destination rank). Peers lists every
	// rank's worker address. XHead marks a piece opening with a segment
	// head, XSeeded tells the worker to apply the exchanged carry, Init
	// seeds rank 0 (a stream chunk's running carry; the op identity
	// otherwise). Round/From/XVal/XReset are one FCarryXchg message.
	Group   uint64
	Rank    int
	Peers   []string
	XHead   bool
	XSeeded bool
	Init    int64
	Round   int
	From    int
	XVal    int64
	XReset  bool
	// User-op fields. Name/OpHash ride scan and stream-open frames whose
	// op byte is OpUser (hash 0 = unpinned); Name/Source are the
	// FRegisterOp body.
	Name   string
	OpHash uint64
	Source string
}

// Response is one decoded server→client message. Result is arena-backed
// when non-empty.
type Response struct {
	Type    byte
	ID      uint64
	Result  []int64
	FResult []float64
	Total   int64
	Code    string
	Error   string
	// Ack fields (FAck).
	Seq    uint64
	Window int
	Token  string
	// OpHash is the FOpAck payload: the registered op's content hash.
	OpHash uint64
}

// le is the protocol's byte order.
var le = binary.LittleEndian

// tooBigPrefix is how many payload bytes ReadFrame salvages from an
// over-budget frame: the type byte plus the id every request layout
// puts first — what RequestID needs.
const tooBigPrefix = 9

// ReadFrame reads one length-prefixed frame payload (type byte
// included) of at most max bytes from r. The returned buffer is
// arena-backed; the caller owns it and must PutBytes it after parsing.
// On ErrFrameTooBig the returned slice is a short NON-arena prefix for
// RequestID and the connection must be torn down (the unread remainder
// is not drained — the stream is already condemned). Any other error is
// a connection-level failure.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := int(le.Uint32(lenb[:]))
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > max {
		prefix := make([]byte, tooBigPrefix)
		if m, _ := io.ReadFull(r, prefix); true {
			prefix = prefix[:m]
		}
		return prefix, fmt.Errorf("%w: %d bytes declared, budget %d", ErrFrameTooBig, n, max)
	}
	body := arena.GetBytes(n)
	if _, err := io.ReadFull(r, body); err != nil {
		arena.PutBytes(body)
		return nil, err
	}
	return body, nil
}

// RequestID best-effort recovers the request id from a frame payload
// prefix (the binary analogue of the JSON path's extractID): every
// request layout places the id immediately after the type byte. Returns
// 0 when the prefix is too short.
func RequestID(payload []byte) uint64 {
	if len(payload) < tooBigPrefix {
		return 0
	}
	return le.Uint64(payload[1:9])
}

// appendFrameHeader reserves the length prefix; patchFrameLen fills it
// once the payload is complete.
func appendFrameHeader(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0)
}

func patchFrameLen(frame []byte) []byte {
	le.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame
}

// ScanFrameBytes is the exact encoded size of an FScan frame with an
// n-element payload and the given tenant, for arena sizing.
func ScanFrameBytes(tenant string, n int) int { return 4 + 23 + len(tenant) + 4 + 8*n }

// AppendScan encodes a one-shot scan request frame. Exactly one of
// data/fdata is consulted, selected by elem.
func AppendScan(dst []byte, id uint64, op, kind, dir, elem byte, timeoutMS int64, tenant string, data []int64, fdata []float64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FScan)
	dst = le.AppendUint64(dst, id)
	dst = append(dst, op, kind, dir, elem)
	dst = le.AppendUint64(dst, uint64(timeoutMS))
	dst = le.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	if elem == ElemFloat64 {
		dst = le.AppendUint32(dst, uint32(len(fdata)))
		for _, f := range fdata {
			dst = le.AppendUint64(dst, math.Float64bits(f))
		}
	} else {
		dst = le.AppendUint32(dst, uint32(len(data)))
		for _, v := range data {
			dst = le.AppendUint64(dst, uint64(v))
		}
	}
	patchFrameLen(dst[start:])
	return dst
}

// UserOpBytes is the extra encoded size of the user-op fields (name +
// pinned hash) a frame pays when its op byte is OpUser; add it to the
// builtin frame size (ScanFrameBytes etc.) when sizing a user-op frame.
func UserOpBytes(name string) int { return 2 + len(name) + 8 }

// appendUserOp encodes the conditional user-op fields that follow the
// fixed enum bytes when the op byte is OpUser.
func appendUserOp(dst []byte, name string, hash uint64) []byte {
	if len(name) > math.MaxUint16 {
		name = name[:math.MaxUint16]
	}
	dst = le.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = le.AppendUint64(dst, hash)
	return dst
}

// AppendScanUser encodes a one-shot scan request frame for a user
// combine op (int64 elements only — user ops fold int64 words). hash 0
// means unpinned: the server resolves whatever registration is current.
func AppendScanUser(dst []byte, id uint64, kind, dir byte, name string, hash uint64, timeoutMS int64, tenant string, data []int64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FScan)
	dst = le.AppendUint64(dst, id)
	dst = append(dst, OpUser, kind, dir, ElemInt64)
	dst = appendUserOp(dst, name, hash)
	dst = le.AppendUint64(dst, uint64(timeoutMS))
	dst = le.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	dst = le.AppendUint32(dst, uint32(len(data)))
	for _, v := range data {
		dst = le.AppendUint64(dst, uint64(v))
	}
	patchFrameLen(dst[start:])
	return dst
}

// StreamOpenFrameBytes, StreamChunkFrameBytes, StreamCloseFrameBytes
// size the stream request frames for arena allocation.
func StreamOpenFrameBytes() int       { return 4 + 21 }
func StreamChunkFrameBytes(n int) int { return 4 + 25 + 4 + 8*n }
func StreamCloseFrameBytes() int      { return 4 + 17 }

// AppendStreamOpen encodes a stream_open request frame.
func AppendStreamOpen(dst []byte, id, stream uint64, op, kind, dir, elem byte) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FStreamOpen)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	dst = append(dst, op, kind, dir, elem)
	patchFrameLen(dst[start:])
	return dst
}

// AppendStreamChunk encodes a stream_chunk request frame (int64 only,
// matching the server's int64-only streaming).
func AppendStreamChunk(dst []byte, id, stream uint64, timeoutMS int64, data []int64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FStreamChunk)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	dst = le.AppendUint64(dst, uint64(timeoutMS))
	dst = le.AppendUint32(dst, uint32(len(data)))
	for _, v := range data {
		dst = le.AppendUint64(dst, uint64(v))
	}
	patchFrameLen(dst[start:])
	return dst
}

// AppendStreamClose encodes a stream_close request frame.
func AppendStreamClose(dst []byte, id, stream uint64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FStreamClose)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	patchFrameLen(dst[start:])
	return dst
}

// HeartbeatFrameBytes and StreamResumeFrameBytes size the control-plane
// request frames.
func HeartbeatFrameBytes(addr string) int     { return 4 + 24 + len(addr) }
func StreamResumeFrameBytes(token string) int { return 4 + 26 + len(token) }

// AppendHeartbeat encodes a worker announcement frame.
func AppendHeartbeat(dst []byte, id uint64, addr string, weight float64, maxLine int, wproto byte) []byte {
	if len(addr) > math.MaxUint16 {
		addr = addr[:math.MaxUint16]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FHeartbeat)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, math.Float64bits(weight))
	dst = le.AppendUint32(dst, uint32(maxLine))
	dst = append(dst, wproto)
	dst = le.AppendUint16(dst, uint16(len(addr)))
	dst = append(dst, addr...)
	patchFrameLen(dst[start:])
	return dst
}

// AppendStreamResume encodes a stream resume request frame.
func AppendStreamResume(dst []byte, id, stream, acked uint64, token string) []byte {
	if len(token) > 255 {
		token = token[:255]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FStreamResume)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	dst = le.AppendUint64(dst, acked)
	dst = append(dst, byte(len(token)))
	dst = append(dst, token...)
	patchFrameLen(dst[start:])
	return dst
}

// AppendStreamOpen2 encodes an FStreamOpen2 request frame — identical
// body to FStreamOpen, but asks the server to answer with FAck.
func AppendStreamOpen2(dst []byte, id, stream uint64, op, kind, dir, elem byte) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FStreamOpen2)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	dst = append(dst, op, kind, dir, elem)
	patchFrameLen(dst[start:])
	return dst
}

// AppendStreamOpenUser encodes a stream-open request frame for a user
// combine op. open2 selects FStreamOpen2 (FAck answer) over FStreamOpen.
func AppendStreamOpenUser(dst []byte, id, stream uint64, kind, dir byte, name string, hash uint64, open2 bool) []byte {
	typ := byte(FStreamOpen)
	if open2 {
		typ = FStreamOpen2
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, typ)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, stream)
	dst = append(dst, OpUser, kind, dir, ElemInt64)
	dst = appendUserOp(dst, name, hash)
	patchFrameLen(dst[start:])
	return dst
}

// ScanXchgFrameBytes and CarryXchgFrameBytes size the exchange request
// frames for arena allocation.
func ScanXchgFrameBytes(tenant string, peers []string, n int) int {
	sz := 4 + 52 + len(tenant) + 8*n
	for _, p := range peers {
		sz += 2 + len(p)
	}
	return sz
}
func CarryXchgFrameBytes() int { return 4 + 38 }

// AppendScanXchg encodes an exchange-mode piece scan request frame.
func AppendScanXchg(dst []byte, id uint64, op, kind, dir byte, timeoutMS int64, tenant string,
	group uint64, rank int, peers []string, head, seeded bool, init int64, data []int64) []byte {
	if len(tenant) > math.MaxUint16 {
		tenant = tenant[:math.MaxUint16]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FScanXchg)
	dst = le.AppendUint64(dst, id)
	dst = append(dst, op, kind, dir)
	dst = le.AppendUint64(dst, uint64(timeoutMS))
	dst = le.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	dst = le.AppendUint64(dst, group)
	dst = le.AppendUint32(dst, uint32(rank))
	dst = le.AppendUint32(dst, uint32(len(peers)))
	for _, p := range peers {
		if len(p) > math.MaxUint16 {
			p = p[:math.MaxUint16]
		}
		dst = le.AppendUint16(dst, uint16(len(p)))
		dst = append(dst, p...)
	}
	dst = append(dst, boolByte(head), boolByte(seeded))
	dst = le.AppendUint64(dst, uint64(init))
	dst = le.AppendUint32(dst, uint32(len(data)))
	for _, v := range data {
		dst = le.AppendUint64(dst, uint64(v))
	}
	patchFrameLen(dst[start:])
	return dst
}

// AppendScanXchgUser encodes an exchange-mode piece scan request frame
// for a user combine op. The user-op fields follow the dir byte, ahead
// of everything variable-length, mirroring AppendScanUser.
func AppendScanXchgUser(dst []byte, id uint64, kind, dir byte, name string, hash uint64, timeoutMS int64, tenant string,
	group uint64, rank int, peers []string, head, seeded bool, init int64, data []int64) []byte {
	if len(tenant) > math.MaxUint16 {
		tenant = tenant[:math.MaxUint16]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FScanXchg)
	dst = le.AppendUint64(dst, id)
	dst = append(dst, OpUser, kind, dir)
	dst = appendUserOp(dst, name, hash)
	dst = le.AppendUint64(dst, uint64(timeoutMS))
	dst = le.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	dst = le.AppendUint64(dst, group)
	dst = le.AppendUint32(dst, uint32(rank))
	dst = le.AppendUint32(dst, uint32(len(peers)))
	for _, p := range peers {
		if len(p) > math.MaxUint16 {
			p = p[:math.MaxUint16]
		}
		dst = le.AppendUint16(dst, uint16(len(p)))
		dst = append(dst, p...)
	}
	dst = append(dst, boolByte(head), boolByte(seeded))
	dst = le.AppendUint64(dst, uint64(init))
	dst = le.AppendUint32(dst, uint32(len(data)))
	for _, v := range data {
		dst = le.AppendUint64(dst, uint64(v))
	}
	patchFrameLen(dst[start:])
	return dst
}

// RegisterOpFrameBytes sizes an FRegisterOp frame.
func RegisterOpFrameBytes(tenant, name, source string) int {
	return 4 + 9 + 2 + len(tenant) + 2 + len(name) + 4 + len(source)
}

// AppendRegisterOp encodes a user-op registration request frame.
func AppendRegisterOp(dst []byte, id uint64, tenant, name, source string) []byte {
	if len(tenant) > math.MaxUint16 {
		tenant = tenant[:math.MaxUint16]
	}
	if len(name) > math.MaxUint16 {
		name = name[:math.MaxUint16]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FRegisterOp)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	dst = le.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = le.AppendUint32(dst, uint32(len(source)))
	dst = append(dst, source...)
	patchFrameLen(dst[start:])
	return dst
}

// AppendCarryXchg encodes one carry-exchange message frame.
func AppendCarryXchg(dst []byte, id, group uint64, round, from, to int, val int64, reset bool) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FCarryXchg)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, group)
	dst = le.AppendUint32(dst, uint32(round))
	dst = le.AppendUint32(dst, uint32(from))
	dst = le.AppendUint32(dst, uint32(to))
	dst = le.AppendUint64(dst, uint64(val))
	dst = append(dst, boolByte(reset))
	patchFrameLen(dst[start:])
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ResultFrameBytes is the exact encoded size of an n-element
// FResult/FFloatResult frame — the binary analogue of the JSON path's
// maxRespBytes worst case, except here it is exact, not worst-case.
func ResultFrameBytes(n int) int { return 4 + 13 + 8*n }

// TotalFrameBytes sizes an FTotal frame.
func TotalFrameBytes() int { return 4 + 17 }

// ErrorFrameBytes sizes an FError frame.
func ErrorFrameBytes(code, msg string) int { return 4 + 9 + 1 + len(code) + 2 + len(msg) }

// AppendResult encodes a successful int64 result frame (n may be 0: the
// ack of a stream open or an empty scan).
func AppendResult(dst []byte, id uint64, result []int64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FResult)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint32(dst, uint32(len(result)))
	for _, v := range result {
		dst = le.AppendUint64(dst, uint64(v))
	}
	patchFrameLen(dst[start:])
	return dst
}

// AppendFloatResult encodes a successful float64 result frame.
func AppendFloatResult(dst []byte, id uint64, result []float64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FFloatResult)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint32(dst, uint32(len(result)))
	for _, f := range result {
		dst = le.AppendUint64(dst, math.Float64bits(f))
	}
	patchFrameLen(dst[start:])
	return dst
}

// AppendTotal encodes a stream-close total frame.
func AppendTotal(dst []byte, id uint64, total int64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FTotal)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, uint64(total))
	patchFrameLen(dst[start:])
	return dst
}

// AppendError encodes an error frame. The code is capped at 255 bytes
// and the message at 64 KiB; both are ample for the serve vocabulary
// (codes are short constants, messages are one line).
func AppendError(dst []byte, id uint64, code, msg string) []byte {
	if len(code) > 255 {
		code = code[:255]
	}
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FError)
	dst = le.AppendUint64(dst, id)
	dst = append(dst, byte(len(code)))
	dst = append(dst, code...)
	dst = le.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	patchFrameLen(dst[start:])
	return dst
}

// OpAckFrameBytes sizes an FOpAck frame.
func OpAckFrameBytes() int { return 4 + 17 }

// AppendOpAck encodes a registration acknowledgement frame.
func AppendOpAck(dst []byte, id, hash uint64) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FOpAck)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, hash)
	patchFrameLen(dst[start:])
	return dst
}

// AckFrameBytes sizes an FAck frame.
func AckFrameBytes(token string) int { return 4 + 22 + len(token) }

// AppendAck encodes an extended stream acknowledgement frame.
func AppendAck(dst []byte, id, seq uint64, window int, token string) []byte {
	if len(token) > 255 {
		token = token[:255]
	}
	start := len(dst)
	dst = appendFrameHeader(dst)
	dst = append(dst, FAck)
	dst = le.AppendUint64(dst, id)
	dst = le.AppendUint64(dst, seq)
	dst = le.AppendUint32(dst, uint32(window))
	dst = append(dst, byte(len(token)))
	dst = append(dst, token...)
	patchFrameLen(dst[start:])
	return dst
}

// reader is a cursor over one frame payload; every take checks bounds
// so malformed frames fail cleanly instead of panicking.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) u8() byte {
	if r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.bad = true
		return 0
	}
	v := le.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := le.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := le.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str(n int) string {
	if r.off+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// ints decodes an n-element little-endian int64 array into an
// arena-backed slice the caller owns. The declared count must exactly
// consume the remaining payload bytes — a mismatch is structural.
func (r *reader) ints(n int) []int64 {
	if n < 0 || r.off+8*n != len(r.b) {
		r.bad = true
		return nil
	}
	out := arena.GetInt64s(n)
	for i := 0; i < n; i++ {
		out[i] = int64(le.Uint64(r.b[r.off+8*i:]))
	}
	r.off += 8 * n
	return out
}

// floats decodes an n-element float64-bits array. Float vectors take
// the JSON path's allocation profile (a plain make) because the float
// pipeline re-keys them into arena int64s immediately (wirefloat.go).
func (r *reader) floats(n int) []float64 {
	if n < 0 || r.off+8*n != len(r.b) {
		r.bad = true
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(le.Uint64(r.b[r.off+8*i:]))
	}
	r.off += 8 * n
	return out
}

// done reports whether the payload parsed cleanly and completely;
// trailing bytes are as structural as missing ones.
func (r *reader) done() bool { return !r.bad && r.off == len(r.b) }

// ParseRequest decodes one request payload (type byte included). Data
// is arena-backed and owned by the caller on success; on error nothing
// leaks (any partial decode is released before returning).
func ParseRequest(payload []byte) (Request, error) {
	var req Request
	r := &reader{b: payload}
	req.Type = r.u8()
	switch req.Type {
	case FScan:
		req.ID = r.u64()
		req.Op = r.u8()
		req.Kind = r.u8()
		req.Dir = r.u8()
		req.Elem = r.u8()
		if req.Op == OpUser {
			req.Name = r.str(int(r.u16()))
			req.OpHash = r.u64()
		}
		req.TimeoutMS = int64(r.u64())
		req.Tenant = r.str(int(r.u16()))
		n := int(r.u32())
		if r.bad {
			return Request{}, fmt.Errorf("%w: truncated scan header", ErrBadFrame)
		}
		if req.Elem == ElemFloat64 {
			req.FData = r.floats(n)
		} else {
			req.Data = r.ints(n)
		}
	case FStreamOpen, FStreamOpen2:
		req.ID = r.u64()
		req.Stream = r.u64()
		req.Op = r.u8()
		req.Kind = r.u8()
		req.Dir = r.u8()
		req.Elem = r.u8()
		if req.Op == OpUser {
			req.Name = r.str(int(r.u16()))
			req.OpHash = r.u64()
		}
	case FHeartbeat:
		req.ID = r.u64()
		req.Weight = math.Float64frombits(r.u64())
		req.MaxLine = int(r.u32())
		req.WProto = r.u8()
		req.Addr = r.str(int(r.u16()))
	case FStreamResume:
		req.ID = r.u64()
		req.Stream = r.u64()
		req.Acked = r.u64()
		req.Token = r.str(int(r.u8()))
	case FStreamChunk:
		req.ID = r.u64()
		req.Stream = r.u64()
		req.TimeoutMS = int64(r.u64())
		n := int(r.u32())
		if r.bad {
			return Request{}, fmt.Errorf("%w: truncated chunk header", ErrBadFrame)
		}
		req.Data = r.ints(n)
	case FStreamClose:
		req.ID = r.u64()
		req.Stream = r.u64()
	case FScanXchg:
		req.ID = r.u64()
		req.Op = r.u8()
		req.Kind = r.u8()
		req.Dir = r.u8()
		if req.Op == OpUser {
			req.Name = r.str(int(r.u16()))
			req.OpHash = r.u64()
		}
		req.TimeoutMS = int64(r.u64())
		req.Tenant = r.str(int(r.u16()))
		req.Group = r.u64()
		req.Rank = int(r.u32())
		k := int(r.u32())
		// Each peer entry costs at least 2 bytes, so a sane k is bounded
		// by the payload; reject the rest before allocating.
		if r.bad || k < 0 || k > (len(r.b)-r.off)/2 {
			return Request{}, fmt.Errorf("%w: truncated scan_xchg header", ErrBadFrame)
		}
		req.Peers = make([]string, k)
		for i := 0; i < k; i++ {
			req.Peers[i] = r.str(int(r.u16()))
		}
		req.XHead = r.u8() != 0
		req.XSeeded = r.u8() != 0
		req.Init = int64(r.u64())
		n := int(r.u32())
		if r.bad {
			return Request{}, fmt.Errorf("%w: truncated scan_xchg header", ErrBadFrame)
		}
		req.Data = r.ints(n)
	case FCarryXchg:
		req.ID = r.u64()
		req.Group = r.u64()
		req.Round = int(r.u32())
		req.From = int(r.u32())
		req.Rank = int(r.u32())
		req.XVal = int64(r.u64())
		req.XReset = r.u8() != 0
	case FRegisterOp:
		req.ID = r.u64()
		req.Tenant = r.str(int(r.u16()))
		req.Name = r.str(int(r.u16()))
		n := int(r.u32())
		if r.bad || n < 0 || n > len(r.b)-r.off {
			return Request{}, fmt.Errorf("%w: truncated register_op header", ErrBadFrame)
		}
		req.Source = r.str(n)
	default:
		return Request{}, fmt.Errorf("%w: unknown request type 0x%02x", ErrBadFrame, req.Type)
	}
	if !r.done() {
		if len(req.Data) > 0 {
			arena.PutInt64s(req.Data)
		}
		return Request{}, fmt.Errorf("%w: request type 0x%02x length mismatch", ErrBadFrame, req.Type)
	}
	return req, nil
}

// ParseResponse decodes one response payload (type byte included).
// Result is arena-backed and owned by the caller on success.
func ParseResponse(payload []byte) (Response, error) {
	var resp Response
	r := &reader{b: payload}
	resp.Type = r.u8()
	switch resp.Type {
	case FResult:
		resp.ID = r.u64()
		n := int(r.u32())
		if r.bad {
			return Response{}, fmt.Errorf("%w: truncated result header", ErrBadFrame)
		}
		resp.Result = r.ints(n)
	case FFloatResult:
		resp.ID = r.u64()
		n := int(r.u32())
		if r.bad {
			return Response{}, fmt.Errorf("%w: truncated fresult header", ErrBadFrame)
		}
		resp.FResult = r.floats(n)
	case FTotal:
		resp.ID = r.u64()
		resp.Total = int64(r.u64())
	case FError:
		resp.ID = r.u64()
		resp.Code = r.str(int(r.u8()))
		resp.Error = r.str(int(r.u16()))
	case FAck:
		resp.ID = r.u64()
		resp.Seq = r.u64()
		resp.Window = int(r.u32())
		resp.Token = r.str(int(r.u8()))
	case FOpAck:
		resp.ID = r.u64()
		resp.OpHash = r.u64()
	default:
		return Response{}, fmt.Errorf("%w: unknown response type 0x%02x", ErrBadFrame, resp.Type)
	}
	if !r.done() {
		if len(resp.Result) > 0 {
			arena.PutInt64s(resp.Result)
		}
		return Response{}, fmt.Errorf("%w: response type 0x%02x length mismatch", ErrBadFrame, resp.Type)
	}
	return resp, nil
}
