package cluster

import (
	"fmt"
	"sync/atomic"
)

// coordStats is the coordinator's internal counter block.
type coordStats struct {
	requests    atomic.Uint64
	rejected    atomic.Uint64
	served      atomic.Uint64
	shardFailed atomic.Uint64
	deadline    atomic.Uint64

	shards    atomic.Uint64
	pieces    atomic.Uint64
	retries   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64

	xchgRequests      atomic.Uint64
	xchgFallbacks     atomic.Uint64
	carryPrescanElems atomic.Uint64

	ejections    atomic.Uint64
	readmissions atomic.Uint64

	heartbeats    atomic.Uint64
	joins         atomic.Uint64
	beatEjections atomic.Uint64

	streamsOpened atomic.Uint64
	streamsClosed atomic.Uint64
	streamsFailed atomic.Uint64
	streamsActive atomic.Int64

	resumes      atomic.Uint64
	resumeMisses atomic.Uint64

	opRegisters atomic.Uint64
	opRejects   atomic.Uint64
	opPushes    atomic.Uint64
	opPushFails atomic.Uint64
}

// Stats is a point-in-time snapshot of a Coordinator's counters. The
// request ledger mirrors serve.Stats: once traffic has drained,
// Requests == Served + ShardFailed + Deadline — every accepted request
// reaches exactly one terminal outcome, which is the invariant
// TestClusterChaosSoak closes.
type Stats struct {
	// Requests counts accepted scans (one per Scan/ScanSegmented call
	// and per stream chunk pushed).
	Requests uint64
	// Rejected counts submissions refused at admission (bad spec, closed
	// coordinator); NOT part of Requests.
	Rejected uint64
	// Served counts requests that returned a full result.
	Served uint64
	// ShardFailed counts requests that failed with ErrShardFailed: some
	// piece exhausted its retry budget, or no workers were healthy.
	ShardFailed uint64
	// Deadline counts requests whose caller's context expired or was
	// canceled before every piece landed.
	Deadline uint64
	// Shards and Pieces count planned work: shards are per-worker
	// ranges, pieces the wire requests they were cut into.
	Shards uint64
	Pieces uint64
	// Retries counts re-attempts after a failed piece attempt (the first
	// try of each piece is not a retry).
	Retries uint64
	// Hedges counts duplicate piece dispatches launched after
	// HedgeAfter; HedgeWins counts the hedges that answered first.
	Hedges    uint64
	HedgeWins uint64
	// XchgRequests counts scans attempted on the exchange data plane
	// (Config.DataPlane == "exchange"); XchgFallbacks counts the subset
	// that failed mid-exchange and were re-run on the star plane.
	XchgRequests  uint64
	XchgFallbacks uint64
	// CarryPrescanElems counts elements the COORDINATOR folded while
	// pre-seeding pieces on the star plane — the O(n) sequential work
	// the exchange plane exists to eliminate. An exchange-mode run with
	// no fallbacks reports 0; check.sh gates on that.
	CarryPrescanElems uint64
	// Ejections counts workers removed from planning after EjectAfter
	// consecutive connection-level failures; Readmissions counts
	// successful probe-driven returns. A worker may be ejected and
	// readmitted many times.
	Ejections    uint64
	Readmissions uint64
	// Heartbeats counts accepted worker announcements (including ones a
	// fired heartbeat.drop point discarded); Joins counts the ones that
	// admitted a previously unknown worker. BeatEjections counts
	// announced workers ejected for heartbeat silence (a subset of
	// Ejections).
	Heartbeats    uint64
	Joins         uint64
	BeatEjections uint64
	// Stream session ledger: Opened == Closed + Failed once every
	// session is torn down, and Active is the gauge of open ones.
	// A resumed attachment counts as Opened (and its dead predecessor as
	// Failed, wherever it ran), so the invariant holds per coordinator
	// even across failover. (Idle-TTL expiry lives in the wire layer and
	// surfaces here as Failed via Expire.)
	StreamsOpened uint64
	StreamsClosed uint64
	StreamsFailed uint64
	StreamsActive int64
	// Resumes counts successful stream re-attachments by token;
	// ResumeMisses counts resume attempts that found no usable record
	// (unknown/expired token, or a rollback point beyond the ring).
	Resumes      uint64
	ResumeMisses uint64
	// User combine-op ledger. OpRegisters counts accepted register_op
	// calls, OpRejects the ones the monoid validator refused. OpPushes
	// counts registrations successfully propagated to a worker (eager at
	// register time or lazy before a piece), OpPushFails the propagation
	// attempts that failed — advisory, since the per-piece op_hash retry
	// repairs workers the push missed.
	OpRegisters uint64
	OpRejects   uint64
	OpPushes    uint64
	OpPushFails uint64
}

// String renders the snapshot in one line for logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d rejected=%d served=%d shard_failed=%d deadline=%d "+
			"shards=%d pieces=%d retries=%d hedges=%d hedge_wins=%d "+
			"xchg=%d xchg_fallbacks=%d carry_prescan=%d "+
			"ejections=%d readmissions=%d heartbeats=%d joins=%d beat_ejections=%d "+
			"streams{open=%d closed=%d failed=%d active=%d} resumes=%d resume_misses=%d "+
			"user_ops{registers=%d rejects=%d pushes=%d push_fails=%d}",
		s.Requests, s.Rejected, s.Served, s.ShardFailed, s.Deadline,
		s.Shards, s.Pieces, s.Retries, s.Hedges, s.HedgeWins,
		s.XchgRequests, s.XchgFallbacks, s.CarryPrescanElems,
		s.Ejections, s.Readmissions, s.Heartbeats, s.Joins, s.BeatEjections,
		s.StreamsOpened, s.StreamsClosed, s.StreamsFailed, s.StreamsActive,
		s.Resumes, s.ResumeMisses,
		s.OpRegisters, s.OpRejects, s.OpPushes, s.OpPushFails)
}

// Stats snapshots the coordinator's counters; safe under traffic.
func (c *Coordinator) Stats() Stats {
	st := &c.stats
	return Stats{
		Requests:          st.requests.Load(),
		Rejected:          st.rejected.Load(),
		Served:            st.served.Load(),
		ShardFailed:       st.shardFailed.Load(),
		Deadline:          st.deadline.Load(),
		Shards:            st.shards.Load(),
		Pieces:            st.pieces.Load(),
		Retries:           st.retries.Load(),
		Hedges:            st.hedges.Load(),
		HedgeWins:         st.hedgeWins.Load(),
		XchgRequests:      st.xchgRequests.Load(),
		XchgFallbacks:     st.xchgFallbacks.Load(),
		CarryPrescanElems: st.carryPrescanElems.Load(),
		Ejections:         st.ejections.Load(),
		Readmissions:      st.readmissions.Load(),
		Heartbeats:        st.heartbeats.Load(),
		Joins:             st.joins.Load(),
		BeatEjections:     st.beatEjections.Load(),
		StreamsOpened:     st.streamsOpened.Load(),
		StreamsClosed:     st.streamsClosed.Load(),
		StreamsFailed:     st.streamsFailed.Load(),
		StreamsActive:     st.streamsActive.Load(),
		Resumes:           st.resumes.Load(),
		ResumeMisses:      st.resumeMisses.Load(),
		OpRegisters:       st.opRegisters.Load(),
		OpRejects:         st.opRejects.Load(),
		OpPushes:          st.opPushes.Load(),
		OpPushFails:       st.opPushFails.Load(),
	}
}
