package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"scans/internal/arena"
	"scans/internal/serve"
)

// The exchange data plane: the coordinator's half of the worker↔worker
// carry exchange (the serve side — mailbox, hypercube rounds, the
// carry_xchg wire op — lives in internal/serve/exchange.go).
//
// On the star plane the coordinator computes every piece's carry seed
// itself, which means folding all n elements sequentially per scan. On
// the exchange plane it ships RAW pieces tagged with a group id, a rank
// and the full rank→address map, and the workers run the exclusive scan
// over block sums among themselves in ⌈log2 k⌉ rounds. The coordinator
// touches O(#pieces) values per scan, not O(n) — the difference
// CarryPrescanElems makes observable.
//
// Failure model: one attempt per piece, no retries and no hedging. A
// retry inside a live exchange is useless — the group's other
// participants have already timed out their rounds — so ANY piece error
// aborts the whole exchange and scanSeeded re-runs the scan on the star
// plane, whose retry/hedge machinery then applies. Typed xchg_failed
// errors prove the worker is alive (its listener parsed and answered),
// so they do not count toward ejection; genuine connection failures do.

// Data-plane names for Config.DataPlane.
const (
	// DataPlaneStar: the coordinator pre-seeds every piece itself.
	DataPlaneStar = "star"
	// DataPlaneExchange: workers exchange block sums among themselves;
	// the coordinator only plans and reassembles.
	DataPlaneExchange = "exchange"
)

// runExchange dispatches every piece on the exchange plane and
// reassembles the result. It never mutates data, flags or pieces: on
// any error the caller falls back to the star plane over the same
// inputs. Rank order is scan order — piece index for forward scans,
// reversed for backward — so rank 0 is always the piece the scan
// enters first and the exchanged exclusive scan is exactly the block-
// sum prescan of the paper's Fig 10 decomposition.
func (c *Coordinator) runExchange(ctx context.Context, spec serve.Spec, data []int64, flags []bool, pieces []piece, carry int64, seeded bool, tenant string) ([]int64, error) {
	c.stats.xchgRequests.Add(1)
	n := len(data)
	k := len(pieces)
	forward := spec.Dir == serve.Forward
	rankOf := func(i int) int {
		if forward {
			return i
		}
		return k - 1 - i
	}
	peers := make([]string, k)
	for i := range pieces {
		peers[rankOf(i)] = pieces[i].w.addr
	}
	init := serve.IdentitySpec(spec)
	if forward && seeded {
		init = carry
	}
	group := c.xchgBase + c.xchgSeq.Add(1)

	out := arena.GetInt64s(n)
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	for i := range pieces {
		pc := &pieces[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := serve.XchgPiece{
				Group: group,
				Rank:  rankOf(i),
				Peers: peers,
				Head:  pc.headAt,
				Init:  init,
			}
			// Does the exchanged carry apply to this piece? Mirrors
			// seedPieces' seeding rule: a forward piece is seeded unless
			// it opens a segment (headAt) or is the very first piece of an
			// unseeded request; a backward piece is seeded unless the
			// element just past its end starts a segment (the scan
			// restarts there) or it is the last piece.
			if forward {
				x.Seeded = !pc.headAt && (pc.off > 0 || seeded)
			} else {
				x.Seeded = pc.end < n && (flags == nil || !flags[pc.end])
			}
			if err := c.runXchgPiece(dctx, spec, data, out[pc.off:pc.end], pc, x, tenant); err != nil {
				once.Do(func() { firstErr = err; cancel() })
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		arena.PutInt64s(out)
		return nil, firstErr
	}
	return out, nil
}

// runXchgPiece runs one exchange-mode piece: a single attempt against
// the piece's planned worker, feeding the health model the same way
// attemptOn does but with no retry, hedge or latency sample (an
// exchange round trip measures the SLOWEST participant, not this
// worker, so it would poison the adaptive weights).
func (c *Coordinator) runXchgPiece(ctx context.Context, spec serve.Spec, data, dst []int64, pc *piece, x serve.XchgPiece, tenant string) error {
	w := pc.w
	cli, err := w.client()
	if err != nil {
		c.reg.noteConnFail(w)
		return fmt.Errorf("xchg piece [%d:%d) of %s via %s: dial: %w", pc.off, pc.end, spec, w.addr, err)
	}
	seg := data[pc.off:pc.end]
	if spec.Op == serve.OpUser {
		// Pin the piece to the registration's content hash and make sure
		// the worker holds the bytecode first. No in-place repair on a
		// stale answer — the group's peers have already timed out — but
		// invalidating the push cache means the star fallback (and the
		// next exchange) re-pushes before trying again.
		reg := spec.Binding()
		x.OpHash = reg.Hash
		c.ensureOpPushed(ctx, w, cli, tenant, reg)
	}
	res, err := cli.ScanXchg(ctx, spec.OpString(), spec.Kind.String(), spec.Dir.String(), tenant, seg, x)
	if err != nil && spec.Op == serve.OpUser && opStale(err) {
		c.invalidatePush(w.addr, tenant, spec.Binding().Name)
	}
	switch {
	case err == nil:
		c.reg.noteOK(w)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Our own cancel (often a sibling piece aborting the group): no
		// health signal.
	case connLevel(err):
		w.dropConn(cli)
		c.reg.noteConnFail(w)
	default:
		c.reg.noteOK(w) // typed server error (incl. xchg_failed): alive
	}
	if err != nil {
		return fmt.Errorf("xchg piece [%d:%d) of %s via %s (rank %d/%d): %w",
			pc.off, pc.end, spec, w.addr, x.Rank, len(x.Peers), err)
	}
	if len(res) > 0 {
		defer arena.PutInt64s(res)
	}
	if len(res) != len(seg) {
		return fmt.Errorf("%w: worker returned %d elements for a %d-element xchg piece",
			serve.ErrInternal, len(res), len(seg))
	}
	copy(dst, res)
	return nil
}
