package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/fault"
	"scans/internal/serve"
)

// fuzzFleet is a five-worker scansd fleet shared by every iteration of
// FuzzShardedScanMatchesSingleNode. Fuzzing runs thousands of
// iterations per process; starting TCP servers per iteration would
// dominate the budget, so the fleet is started once and left to die
// with the process.
var fuzzFleet struct {
	once  sync.Once
	addrs []string
	err   error
}

func fuzzAddrs() ([]string, error) {
	fuzzFleet.once.Do(func() {
		cfg := serve.Config{MaxWait: 20 * time.Microsecond}
		for i := 0; i < 5; i++ {
			ns, err := serve.ListenNet("127.0.0.1:0", cfg, serve.NetConfig{})
			if err != nil {
				fuzzFleet.err = err
				return
			}
			fuzzFleet.addrs = append(fuzzFleet.addrs, ns.Addr())
		}
	})
	return fuzzFleet.addrs, fuzzFleet.err
}

// FuzzShardedScanMatchesSingleNode is the cluster's core contract as a
// fuzz target: for ANY vector, op/kind/dir, segment layout, worker
// count (1–5), shard/piece geometry, and injected worker-connection
// deaths, a sharded scan either returns a result bit-identical to the
// serial single-node reference or fails with a typed error
// (shard_failed / deadline) — never a wrong answer, never an untyped
// error. scripts/check.sh runs a timed burst of this.
func FuzzShardedScanMatchesSingleNode(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0), uint8(2), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0, 0, 1})
	f.Add(uint8(1), uint8(0), uint8(1), uint8(4), uint8(0), []byte{255, 0, 17, 3, 200, 9}, []byte{})
	f.Add(uint8(2), uint8(1), uint8(1), uint8(0), uint8(3), []byte{128, 64, 32}, []byte{1})
	f.Add(uint8(3), uint8(0), uint8(0), uint8(1), uint8(4), []byte{7, 7, 7, 7, 7, 7, 7}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, opB, kindB, dirB, nwB, faultB uint8, raw, flagPat []byte) {
		addrs, err := fuzzAddrs()
		if err != nil {
			t.Skipf("fleet: %v", err)
		}
		spec := serve.Spec{
			Op:   []serve.Op{serve.OpSum, serve.OpMax, serve.OpMin, serve.OpMul}[opB%4],
			Kind: []serve.Kind{serve.Exclusive, serve.Inclusive}[kindB%2],
			Dir:  []serve.Dir{serve.Forward, serve.Backward}[dirB%2],
		}
		// Cap the vector so a worst case (2-element pieces, drops armed,
		// retries + hedges) stays well under a second per iteration.
		if len(raw) > 512 {
			raw = raw[:512]
		}
		data := make([]int64, len(raw))
		for i, b := range raw {
			data[i] = int64(int8(b))
			if spec.Op == serve.OpMul {
				// Keep products in range: ±1 only.
				data[i] = 2*int64(b&1) - 1
			}
		}
		var flags []bool
		if len(flagPat) > 0 {
			flags = make([]bool, len(data))
			for i := range flags {
				flags[i] = flagPat[i%len(flagPat)]&1 == 1
			}
		}

		// faultB drives both the shard geometry and whether worker
		// connections die mid-scan.
		faults := fault.New(int64(faultB) + 1)
		dropping := faultB%4 == 0
		if dropping {
			faults.Arm(fault.ClusterWorkerDrop, 0.05)
		}
		nw := 1 + int(nwB)%5
		// The worker protocol is a fuzz dimension too: shard math must be
		// transport-blind, so JSON and binary coordinators face the same
		// single-node reference.
		proto := serve.ProtoBin
		if faultB%2 == 1 {
			proto = serve.ProtoJSON
		}
		coord, err := New(Config{
			Workers:       addrs[:nw],
			Proto:         proto,
			MinShardElems: 1 + int(faultB%7),
			MaxPieceElems: 2 + int(faultB%13),
			Retry:         serve.RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
			HedgeAfter:    5 * time.Millisecond,
			EjectAfter:    2,
			ProbeInterval: 5 * time.Millisecond,
			ProbeTimeout:  200 * time.Millisecond,
			Faults:        faults,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer coord.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		got, err := coord.ScanSegmented(ctx, spec, data, flags, "fuzz")
		if err != nil {
			if dropping && (errors.Is(err, ErrShardFailed) || errors.Is(err, context.DeadlineExceeded)) {
				return // typed failure under injected deaths: allowed
			}
			t.Fatalf("spec=%+v n=%d nw=%d dropping=%v: %v", spec, len(data), nw, dropping, err)
		}
		want := directSeg(spec, data, flags)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spec=%+v n=%d nw=%d flags=%v: sharded result diverges from single-node\n got %v\nwant %v",
				spec, len(data), nw, flags != nil, got, want)
		}
	})
}
