package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"scans/internal/combine"
	"scans/internal/serve"
)

// User combine ops through the coordinator: registration propagates to
// the fleet, scans run bit-identically across every path (one-shot vs
// streamed, star vs exchange), and hash skew degrades to the star
// plane's repair machinery instead of a wrong answer.

// gcdScanRef computes the reference gcd scan (ExampleGCD's monoid:
// gcd on magnitudes, abs(MinInt64)=1, identity 0).
func gcdScanRef(data []int64, kind serve.Kind, dir serve.Dir) []int64 {
	gcd := func(a, b int64) int64 {
		abs := func(x int64) int64 {
			if x == -1<<63 {
				return 1
			}
			if x < 0 {
				return -x
			}
			return x
		}
		if a == 0 {
			return b
		}
		if b == 0 {
			return a
		}
		x, y := abs(a), abs(b)
		for y != 0 {
			x, y = y, x%y
		}
		return x
	}
	out := make([]int64, len(data))
	var acc int64
	if dir == serve.Forward {
		for i, v := range data {
			if kind == serve.Exclusive {
				out[i] = acc
				acc = gcd(acc, v)
			} else {
				acc = gcd(acc, v)
				out[i] = acc
			}
		}
	} else {
		for i := len(data) - 1; i >= 0; i-- {
			if kind == serve.Exclusive {
				out[i] = acc
				acc = gcd(data[i], acc)
			} else {
				acc = gcd(data[i], acc)
				out[i] = acc
			}
		}
	}
	return out
}

func gcdTestData(n int) []int64 {
	data := make([]int64, n)
	for i := range data {
		// Products of small primes so running gcds stay interesting
		// instead of collapsing to 1 immediately.
		data[i] = int64((i%7+1)*30) * int64(i%11+1)
		if i%13 == 0 {
			data[i] = -data[i]
		}
	}
	return data
}

func TestClusterUserOpCrossPathBitIdentical(t *testing.T) {
	// The acceptance matrix: one registered monoid, one input vector,
	// every serving path — single-node, cluster-star, cluster-exchange,
	// and streamed through the coordinator — answers the same bits.
	workers := startWorkers(t, 3, serve.Config{MaxWait: 100 * time.Microsecond})
	star := newCoord(t, Config{Workers: workers, MinShardElems: 64, DataPlane: DataPlaneStar})
	xchg := newCoord(t, Config{Workers: workers, MinShardElems: 64, DataPlane: DataPlaneExchange})

	single := serve.New(serve.Config{MaxWait: 100 * time.Microsecond})
	defer single.Close()
	if _, err := single.RegisterScanOp("t", "gcd", combine.ExampleGCD); err != nil {
		t.Fatalf("single-node register: %v", err)
	}
	for _, c := range []*Coordinator{star, xchg} {
		if _, err := c.RegisterScanOp("t", "gcd", combine.ExampleGCD); err != nil {
			t.Fatalf("coordinator register: %v", err)
		}
	}

	data := gcdTestData(1500)
	ctx := context.Background()
	for _, kind := range []serve.Kind{serve.Inclusive, serve.Exclusive} {
		for _, dir := range []serve.Dir{serve.Forward, serve.Backward} {
			spec, err := serve.ParseSpec("user:gcd", kind.String(), dir.String())
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			want := gcdScanRef(data, kind, dir)

			got, err := single.Scan(ctx, spec, data, "t")
			if err != nil {
				t.Fatalf("single-node %s %s: %v", kind, dir, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("single-node %s %s diverged from reference", kind, dir)
			}
			for name, c := range map[string]*Coordinator{"star": star, "exchange": xchg} {
				got, err := c.Scan(ctx, spec, data, "t")
				if err != nil {
					t.Fatalf("%s %s %s: %v", name, kind, dir, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %s %s diverged from single-node", name, kind, dir)
				}
			}

			if dir == serve.Forward {
				// Streamed: same vector in 7 chunks through the
				// coordinator's session carry.
				st, err := star.OpenScanStream(spec, "t")
				if err != nil {
					t.Fatalf("OpenScanStream: %v", err)
				}
				var streamed []int64
				chunk := 229
				for off := 0; off < len(data); off += chunk {
					end := off + chunk
					if end > len(data) {
						end = len(data)
					}
					res, err := st.Push(ctx, data[off:end])
					if err != nil {
						t.Fatalf("Push: %v", err)
					}
					streamed = append(streamed, res...)
				}
				if _, err := st.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				if !reflect.DeepEqual(streamed, want) {
					t.Fatalf("streamed %s diverged from one-shot", kind)
				}
			}
		}
	}

	// The exchange coordinator really used its data plane for the
	// forward specs (no silent always-fallback), and pushed the op.
	st := xchg.Stats()
	if st.XchgRequests == 0 {
		t.Fatal("exchange coordinator never attempted the exchange plane")
	}
	if st.OpRegisters != 1 || st.OpPushes == 0 {
		t.Fatalf("op ledger: registers=%d pushes=%d, want 1 and >0", st.OpRegisters, st.OpPushes)
	}
}

func TestClusterUserOpHashSkewRepairs(t *testing.T) {
	// A worker whose registration drifts (re-registered behind the
	// coordinator's back) answers op_hash to pinned pieces. The exchange
	// plane must abort to star, and star's push-and-retry must repair
	// the worker — the scan still answers the right bits.
	workers := startWorkers(t, 2, serve.Config{MaxWait: 100 * time.Microsecond})
	c := newCoord(t, Config{Workers: workers, MinShardElems: 64, DataPlane: DataPlaneExchange})
	if _, err := c.RegisterScanOp("t", "gcd", combine.ExampleGCD); err != nil {
		t.Fatalf("register: %v", err)
	}

	// Corrupt worker 0: same tenant, same name, different program.
	wcli, err := serve.Dial(workers[0])
	if err != nil {
		t.Fatalf("dial worker: %v", err)
	}
	defer wcli.Close()
	if _, err := wcli.RegisterOp(context.Background(), "t", "gcd", combine.ExampleBitOr); err != nil {
		t.Fatalf("corrupting register: %v", err)
	}

	data := gcdTestData(1200)
	spec, err := serve.ParseSpec("user:gcd", "", "")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	got, err := c.Scan(context.Background(), spec, data, "t")
	if err != nil {
		t.Fatalf("Scan across hash skew: %v", err)
	}
	if want := gcdScanRef(data, serve.Exclusive, serve.Forward); !reflect.DeepEqual(got, want) {
		t.Fatal("scan across hash skew returned wrong bits")
	}
	if st := c.Stats(); st.XchgFallbacks == 0 {
		t.Fatalf("expected an exchange fallback, stats: %s", st)
	}
}

func TestClusterUserOpUnknownAndWidthLimits(t *testing.T) {
	workers := startWorkers(t, 2, serve.Config{MaxWait: 100 * time.Microsecond})
	c := newCoord(t, Config{Workers: workers, MinShardElems: 64, MaxPieceElems: 4096})
	ctx := context.Background()

	// Unknown user op: typed bad_request at admission, nothing dispatched.
	spec, err := serve.ParseSpec("user:nosuch", "", "")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := c.Scan(ctx, spec, []int64{1, 2}, "t"); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("unknown user op = %v, want ErrBadRequest", err)
	}

	if _, err := c.RegisterScanOp("t", "argmax", combine.ExampleArgmax); err != nil {
		t.Fatalf("register argmax: %v", err)
	}
	am, err := serve.ParseSpec("user:argmax", "inclusive", "")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}

	// A wide op dispatches as one piece and answers correctly.
	data := []int64{3, 0, 9, 1, 9, 2, 4, 3}
	got, err := c.Scan(ctx, am, data, "t")
	if err != nil {
		t.Fatalf("argmax via cluster: %v", err)
	}
	if want := []int64{3, 0, 9, 1, 9, 1, 9, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("argmax via cluster = %v, want %v", got, want)
	}

	// The three wide-op admission limits, each a typed bad_request.
	if _, err := c.Scan(ctx, am, []int64{1, 2, 3}, "t"); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("ragged tuple count = %v, want ErrBadRequest", err)
	}
	if _, err := c.ScanSegmented(ctx, am, data, make([]bool, len(data)), "t"); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("segmented wide op = %v, want ErrBadRequest", err)
	}
	big := make([]int64, 4098)
	if _, err := c.Scan(ctx, am, big, "t"); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("oversized wide op = %v, want ErrBadRequest", err)
	}

	// Wide ops cannot stream (the carry is one scalar).
	if _, err := c.OpenScanStream(am, "t"); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("wide stream open = %v, want ErrBadRequest", err)
	}

	// Non-associative registration is rejected at the coordinator with
	// the counterexample; nothing reaches the workers.
	if _, err := c.RegisterScanOp("t", "bad", combine.ExampleNonAssociative); !errors.Is(err, serve.ErrBadOp) {
		t.Fatalf("non-associative register = %v, want ErrBadOp", err)
	}
	if st := c.Stats(); st.OpRejects != 1 {
		t.Fatalf("OpRejects = %d, want 1", st.OpRejects)
	}
}

func TestClusterUserOpSegmentedMatchesReference(t *testing.T) {
	// Scalar user ops keep full segmented-scan generality on the
	// cluster: flags cut pieces and reset carries exactly like builtins.
	workers := startWorkers(t, 3, serve.Config{MaxWait: 100 * time.Microsecond})
	c := newCoord(t, Config{Workers: workers, MinShardElems: 32})
	if _, err := c.RegisterScanOp("t", "gcd", combine.ExampleGCD); err != nil {
		t.Fatalf("register: %v", err)
	}
	data := gcdTestData(900)
	flags := make([]bool, len(data))
	for i := range flags {
		flags[i] = i%97 == 13
	}
	spec, err := serve.ParseSpec("user:gcd", "inclusive", "")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	got, err := c.ScanSegmented(context.Background(), spec, data, flags, "t")
	if err != nil {
		t.Fatalf("ScanSegmented: %v", err)
	}
	// Reference: restart the gcd scan at every flag.
	want := make([]int64, len(data))
	seg := 0
	for i := seg; i < len(data); i++ {
		if flags[i] {
			copy(want[seg:i], gcdScanRef(data[seg:i], serve.Inclusive, serve.Forward))
			seg = i
		}
	}
	copy(want[seg:], gcdScanRef(data[seg:], serve.Inclusive, serve.Forward))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("segmented cluster gcd diverged from reference")
	}
}
