package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/fault"
	"scans/internal/serve"
)

// TestClusterChaosSoak is the cluster's survival exam, mirroring
// serve's TestChaosSoak one level up. Three real TCP workers serve a
// coordinator whose chaos points are hot (cluster.worker.slow stretches
// dispatches into the hedging window, cluster.worker.drop kills worker
// connections mid-flight), worker 2 is murdered outright mid-soak and
// resurrected on the same address, and hedged retries run the whole
// time. Invariants under fire:
//
//  1. No lost requests: every scan reaches exactly one terminal outcome
//     — a result or a typed error (shard_failed / deadline).
//  2. No corrupted results: every success is bit-identical to the
//     serial segmented reference, regardless of which workers computed
//     which pieces, how often they died, or which hedges won.
//  3. The health model works both ways: the murdered worker is ejected
//     (Ejections >= 1) and, once resurrected, probed back in
//     (Readmissions >= 1), after which scans succeed again.
//  4. The coordinator ledger closes after the drain:
//     Requests == Served + ShardFailed + Deadline, and the stream
//     ledger has no leaked sessions.
//
// scripts/check.sh runs this under -race.
func TestClusterChaosSoak(t *testing.T) {
	const (
		nWorkers = 3
		clients  = 6
		seed     = 0xD1CE
	)
	perClient := 100
	if testing.Short() {
		perClient = 25
	}

	workerCfg := serve.Config{MaxWait: 50 * time.Microsecond, QueueAgeLimit: 500 * time.Millisecond}
	workers := make([]*serve.NetServer, nWorkers)
	addrs := make([]string, nWorkers)
	for i := range workers {
		ns, err := serve.ListenNet("127.0.0.1:0", workerCfg, serve.NetConfig{})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = ns
		addrs[i] = ns.Addr()
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}()

	faults := fault.New(seed)
	faults.ArmSleep(fault.ClusterWorkerSlow, 0.05, 2*time.Millisecond)
	faults.Arm(fault.ClusterWorkerDrop, 0.02)

	coord, err := New(Config{
		Workers:       addrs,
		MinShardElems: 64,
		MaxPieceElems: 128,
		Retry:         serve.RetryPolicy{MaxAttempts: 8, BaseDelay: 500 * time.Microsecond, MaxDelay: 10 * time.Millisecond},
		HedgeAfter:    3 * time.Millisecond,
		EjectAfter:    3,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		Faults:        faults,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	specs := clusterSpecs()
	type tally struct {
		success, shardFailed, deadline, lost, mismatch int
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total tally
	)
	// Worker 2 dies a third of the way in and is resurrected on the same
	// address two thirds in; the soak spans both transitions.
	var lifecycle sync.WaitGroup
	lifecycle.Add(1)
	killAt := clients * perClient / 3
	reviveAt := 2 * clients * perClient / 3
	var progress sync.Map // per-client progress for the lifecycle goroutine
	go func() {
		defer lifecycle.Done()
		sum := func() int {
			s := 0
			progress.Range(func(_, v any) bool { s += v.(int); return true })
			return s
		}
		for sum() < killAt {
			time.Sleep(2 * time.Millisecond)
		}
		workers[2].Close()
		workers[2] = nil
		for sum() < reviveAt {
			time.Sleep(2 * time.Millisecond)
		}
		ns, err := serve.ListenNet(addrs[2], workerCfg, serve.NetConfig{})
		if err != nil {
			t.Errorf("resurrect worker 2: %v", err)
			return
		}
		workers[2] = ns
	}()

	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl) + 100))
			var local tally
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				progress.Store(cl, i)
				spec := specs[rng.Intn(len(specs))]
				n := 1 + rng.Intn(1500)
				data := randVec(rng, spec.Op, n)
				flags := randFlags(rng, n, []float64{0, 0.01, 0.2}[rng.Intn(3)])
				want := directSeg(spec, data, flags)
				sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				var got []int64
				var err error
				if spec.Dir == serve.Forward && flags == nil && i%7 == 0 {
					// Streaming leg: the cross-chunk carry composes with
					// the cross-worker carry, both under fire.
					got, err = streamScanCoord(sctx, coord, spec, data, 1+rng.Intn(300), fmt.Sprintf("client-%d", cl))
				} else {
					got, err = coord.ScanSegmented(sctx, spec, data, flags, fmt.Sprintf("client-%d", cl))
				}
				cancel()
				switch {
				case err == nil:
					if !reflect.DeepEqual(got, want) {
						local.mismatch++
					} else {
						local.success++
					}
				case errors.Is(err, ErrShardFailed):
					local.shardFailed++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					local.deadline++
				default:
					t.Errorf("client %d scan %d: untyped error %v", cl, i, err)
					local.lost++
				}
			}
			progress.Store(cl, perClient)
			mu.Lock()
			total.success += local.success
			total.shardFailed += local.shardFailed
			total.deadline += local.deadline
			total.lost += local.lost
			total.mismatch += local.mismatch
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	lifecycle.Wait()

	if total.mismatch > 0 {
		t.Fatalf("chaos soak: %d corrupted results", total.mismatch)
	}
	if total.lost > 0 {
		t.Fatalf("chaos soak: %d requests without a typed terminal outcome", total.lost)
	}
	if got := total.success + total.shardFailed + total.deadline; got != clients*perClient {
		t.Fatalf("outcome accounting: %d outcomes for %d scans", got, clients*perClient)
	}
	if total.success == 0 {
		t.Fatal("chaos soak: nothing succeeded — chaos too hot to mean anything")
	}

	// The murdered worker must have been ejected, and — now that it is
	// back — readmitted. Readmission may lag the last scan; poll.
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Readmissions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := coord.Stats()
	if st.Ejections == 0 {
		t.Fatalf("worker 2 died but nothing was ejected: %v", st)
	}
	if st.Readmissions == 0 {
		t.Fatalf("worker 2 came back but was never readmitted: %v", st)
	}

	// Post-storm sanity: with the fleet healed and chaos off, scans are
	// exact again.
	faults.DisarmAll()
	got, err := coord.Scan(context.Background(), serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, []int64{1, 2, 3, 4}, "")
	if err != nil {
		t.Fatalf("post-storm scan: %v", err)
	}
	if want := []int64{1, 3, 6, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-storm scan = %v, want %v", got, want)
	}

	// Closing ledger: every accepted request reached exactly one
	// terminal outcome, server side, matching what the clients saw.
	st = coord.Stats()
	if st.Requests != st.Served+st.ShardFailed+st.Deadline {
		t.Fatalf("coordinator ledger broken: requests=%d served=%d shard_failed=%d deadline=%d (%v)",
			st.Requests, st.Served, st.ShardFailed, st.Deadline, st)
	}
	if st.StreamsOpened == 0 {
		t.Fatal("streaming leg never ran")
	}
	if st.StreamsActive != 0 || st.StreamsOpened != st.StreamsClosed+st.StreamsFailed {
		t.Fatalf("stream ledger broken: %v", st)
	}
	t.Logf("cluster chaos soak: %+v; %v; %v", total, st, faults)
}

// streamScanCoord scans data through a coordinator streaming session in
// chunks, reassembling the full result — the in-process twin of
// serve.Client.StreamScan.
func streamScanCoord(ctx context.Context, c *Coordinator, spec serve.Spec, data []int64, chunk int, tenant string) ([]int64, error) {
	st, err := c.OpenScanStream(spec, tenant)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(data))
	for off := 0; off < len(data); off += chunk {
		end := min(off+chunk, len(data))
		res, err := st.Push(ctx, data[off:end])
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	if _, err := st.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
