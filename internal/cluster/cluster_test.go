package cluster

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"scans/internal/fault"
	"scans/internal/scan"
	"scans/internal/serve"
)

// faultSetWithSlowKernel arms kernel.slow at probability 1 with delay d
// — a worker whose every batch takes at least d.
func faultSetWithSlowKernel(t *testing.T, d time.Duration) *fault.Set {
	t.Helper()
	fs := fault.New(1)
	fs.ArmSleep(fault.KernelSlow, 1, d)
	return fs
}

// startWorkers spins up n in-process scansd workers on loopback ports
// and returns their addresses. Each worker is a full NetServer — real
// TCP, real batching — so coordinator tests exercise the same hops a
// deployed cluster does.
func startWorkers(t *testing.T, n int, cfg serve.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ns, err := serve.ListenNet("127.0.0.1:0", cfg, serve.NetConfig{})
		if err != nil {
			t.Fatalf("worker %d: ListenNet: %v", i, err)
		}
		t.Cleanup(ns.Close)
		addrs[i] = ns.Addr()
	}
	return addrs
}

// newCoord builds a Coordinator over the addresses and tears it down
// with the test.
func newCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// directSeg computes the reference segmented scan with the serial
// kernels — what the sharded result must match bit for bit.
func directSeg(spec serve.Spec, data []int64, flags []bool) []int64 {
	dst := make([]int64, len(data))
	if flags == nil {
		flags = make([]bool, len(data))
	}
	o := scan.Func[int64]{
		Id: serve.Identity(spec.Op),
		F:  func(a, b int64) int64 { return serve.Combine(spec.Op, a, b) },
	}
	switch {
	case spec.Dir == serve.Forward && spec.Kind == serve.Exclusive:
		scan.SegExclusive(o, dst, data, flags)
	case spec.Dir == serve.Forward && spec.Kind == serve.Inclusive:
		scan.SegInclusive(o, dst, data, flags)
	case spec.Dir == serve.Backward && spec.Kind == serve.Exclusive:
		scan.SegExclusiveBackward(o, dst, data, flags)
	default:
		scan.SegInclusiveBackward(o, dst, data, flags)
	}
	return dst
}

// clusterSpecs enumerates every (op, kind, dir) combination.
func clusterSpecs() []serve.Spec {
	ops := []serve.Op{serve.OpSum, serve.OpMax, serve.OpMin, serve.OpMul}
	kinds := []serve.Kind{serve.Exclusive, serve.Inclusive}
	dirs := []serve.Dir{serve.Forward, serve.Backward}
	var out []serve.Spec
	for _, op := range ops {
		for _, k := range kinds {
			for _, d := range dirs {
				out = append(out, serve.Spec{Op: op, Kind: k, Dir: d})
			}
		}
	}
	return out
}

// randVec builds a small-valued vector (mul stays in ±1 so products
// never leave int64 in interesting ways; other ops get [-20,20]).
func randVec(rng *rand.Rand, op serve.Op, n int) []int64 {
	d := make([]int64, n)
	for i := range d {
		if op == serve.OpMul {
			d[i] = 2*int64(rng.Intn(2)) - 1
		} else {
			d[i] = int64(rng.Intn(41) - 20)
		}
	}
	return d
}

// randFlags builds a random segment layout; density 0 returns nil
// (unsegmented).
func randFlags(rng *rand.Rand, n int, density float64) []bool {
	if density <= 0 {
		return nil
	}
	f := make([]bool, n)
	for i := range f {
		f[i] = rng.Float64() < density
	}
	return f
}

// TestClusterMatchesSingleNode is the core contract: every spec, many
// sizes and segment layouts, through 3 real workers with shard and
// piece boundaries forced to land mid-vector — bit-identical to the
// serial reference.
func TestClusterMatchesSingleNode(t *testing.T) {
	addrs := startWorkers(t, 3, serve.Config{MaxWait: 50 * time.Microsecond})
	c := newCoord(t, Config{Workers: addrs, MinShardElems: 64, MaxPieceElems: 96})
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for _, spec := range clusterSpecs() {
		for _, n := range []int{0, 1, 2, 63, 64, 191, 777, 2048} {
			for _, density := range []float64{0, 0.02, 0.3} {
				data := randVec(rng, spec.Op, n)
				flags := randFlags(rng, n, density)
				want := directSeg(spec, data, flags)
				got, err := c.ScanSegmented(ctx, spec, data, flags, "test")
				if err != nil {
					t.Fatalf("%v n=%d density=%g: %v", spec, n, density, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v n=%d density=%g: sharded result diverges from single-node\n got %v\nwant %v",
						spec, n, density, got, want)
				}
			}
		}
	}
	st := c.Stats()
	if st.Shards == 0 || st.Pieces <= st.Shards {
		t.Fatalf("plan never split: %v", st)
	}
	if st.Requests != st.Served {
		t.Fatalf("healthy-fleet soak had failures: %v", st)
	}
}

// TestClusterWeights checks the proportional split: a worker with
// triple weight gets roughly triple the elements.
func TestClusterWeights(t *testing.T) {
	ws := testWorkers(3, 1)
	shards := baseShards(4000, ws, 0, 100)
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	if got := shards[0].end - shards[0].start; got != 3000 {
		t.Fatalf("weighted shard got %d elements, want 3000", got)
	}
}

// TestClusterFrontEnd drives the coordinator through serve's TCP front
// end: int64 one-shots, float64 one-shots, and a streaming session all
// arrive over the wire, shard across workers, and come back exact.
func TestClusterFrontEnd(t *testing.T) {
	addrs := startWorkers(t, 3, serve.Config{MaxWait: 50 * time.Microsecond})
	coord, err := New(Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ns, err := serve.ListenBackend("127.0.0.1:0", coord, serve.NetConfig{})
	if err != nil {
		t.Fatalf("ListenBackend: %v", err)
	}
	t.Cleanup(ns.Close) // closes coord too
	cli, err := serve.Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	data := randVec(rng, serve.OpSum, 500)
	got, err := cli.ScanCtx(ctx, "sum", "inclusive", "forward", data)
	if err != nil {
		t.Fatalf("wire scan: %v", err)
	}
	want := directSeg(serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, data, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wire scan diverges:\n got %v\nwant %v", got, want)
	}

	// Float64 max rides the order-preserving key mapping through the
	// SAME sharded int64 path.
	fdata := []float64{3.5, -1.25, randFinite(rng), 2.75, -0.5, 100.125, 7}
	fgot, err := cli.ScanFloats(ctx, "max", "inclusive", "forward", fdata)
	if err != nil {
		t.Fatalf("wire float scan: %v", err)
	}
	facc := fdata[0]
	for i, f := range fdata {
		if f > facc {
			facc = f
		}
		if fgot[i] != facc {
			t.Fatalf("float max[%d] = %v, want %v", i, fgot[i], facc)
		}
	}

	// Streaming: chunked push through the coordinator's wire session,
	// reassembled bit-identical to a one-shot.
	big := randVec(rng, serve.OpSum, 3000)
	sgot, err := cli.StreamScan(ctx, "sum", "exclusive", "forward", big, 257)
	if err != nil {
		t.Fatalf("wire stream scan: %v", err)
	}
	swant := directSeg(serve.Spec{Op: serve.OpSum, Kind: serve.Exclusive}, big, nil)
	if !reflect.DeepEqual(sgot, swant) {
		t.Fatalf("wire stream scan diverges")
	}
	cst := coord.Stats()
	if cst.StreamsOpened == 0 || cst.StreamsActive != 0 {
		t.Fatalf("coordinator stream ledger: %v", cst)
	}
}

// randFinite returns a finite random float (keeps the test vector
// obviously NaN-free).
func randFinite(rng *rand.Rand) float64 { return rng.Float64()*40 - 20 }

// TestClusterShardFailedTyped: with the whole fleet down, a scan fails
// with the typed ErrShardFailed — and over the wire the shard_failed
// code maps back to the same sentinel.
func TestClusterShardFailedTyped(t *testing.T) {
	w, err := serve.ListenNet("127.0.0.1:0", serve.Config{}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	addr := w.Addr()
	w.Close() // fleet is dead before the first scan

	coord, err := New(Config{
		Workers:       []string{addr},
		Retry:         serve.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		EjectAfter:    2,
		ProbeInterval: time.Hour, // no readmission during this test
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ns, err := serve.ListenBackend("127.0.0.1:0", coord, serve.NetConfig{})
	if err != nil {
		t.Fatalf("ListenBackend: %v", err)
	}
	t.Cleanup(ns.Close)

	if _, err := coord.Scan(context.Background(), serve.Spec{Op: serve.OpSum}, []int64{1, 2, 3}, ""); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("dead-fleet scan err = %v, want ErrShardFailed", err)
	}
	// By now the worker is ejected; planning falls back to the full
	// fleet, the attempts still fail, and the sentinel is the same.
	if _, err := coord.Scan(context.Background(), serve.Spec{Op: serve.OpSum}, []int64{1}, ""); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("ejected-fleet scan err = %v, want ErrShardFailed", err)
	}

	cli, err := serve.Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	if _, err := cli.Scan("sum", "", "", []int64{1, 2}); !errors.Is(err, serve.ErrShardFailed) {
		t.Fatalf("wire err = %v, want shard_failed → ErrShardFailed", err)
	}
	st := coord.Stats()
	if st.ShardFailed < 3 || st.Ejections != 1 {
		t.Fatalf("stats = %v, want >=3 shard_failed and 1 ejection", st)
	}
	if st.Requests != st.Served+st.ShardFailed+st.Deadline {
		t.Fatalf("ledger broken: %v", st)
	}
}

// TestClusterEjectReadmit kills a worker, watches it get ejected, then
// restarts it on the same address and waits for the prober to readmit
// it and scans to succeed again.
func TestClusterEjectReadmit(t *testing.T) {
	w, err := serve.ListenNet("127.0.0.1:0", serve.Config{}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	addr := w.Addr()
	coord := newCoord(t, Config{
		Workers:       []string{addr},
		Retry:         serve.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		EjectAfter:    2,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	ctx := context.Background()
	if _, err := coord.Scan(ctx, serve.Spec{Op: serve.OpSum}, []int64{1, 2}, ""); err != nil {
		t.Fatalf("healthy scan: %v", err)
	}
	w.Close()
	if _, err := coord.Scan(ctx, serve.Spec{Op: serve.OpSum}, []int64{1, 2}, ""); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("dead-worker scan err = %v, want ErrShardFailed", err)
	}
	if st := coord.Stats(); st.Ejections != 1 {
		t.Fatalf("stats after death = %v, want 1 ejection", st)
	}

	// Same address, fresh worker: the prober should readmit it.
	w2, err := serve.ListenNet(addr, serve.Config{}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("restart worker: %v", err)
	}
	t.Cleanup(w2.Close)
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never readmitted: %v", coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := coord.Scan(ctx, serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, []int64{1, 2, 3}, "")
	if err != nil {
		t.Fatalf("post-readmission scan: %v", err)
	}
	if want := []int64{1, 3, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-readmission scan = %v, want %v", got, want)
	}
}

// TestClusterHedging: one worker's kernels are pathologically slow, the
// other is fast; with hedging on, scans planned onto the slow worker
// get rescued by their hedge on the fast one.
func TestClusterHedging(t *testing.T) {
	slowFaults := faultSetWithSlowKernel(t, 80*time.Millisecond)
	slow, err := serve.ListenNet("127.0.0.1:0", serve.Config{Faults: slowFaults, MaxWait: 50 * time.Microsecond}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("slow worker: %v", err)
	}
	t.Cleanup(slow.Close)
	fast, err := serve.ListenNet("127.0.0.1:0", serve.Config{MaxWait: 50 * time.Microsecond}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("fast worker: %v", err)
	}
	t.Cleanup(fast.Close)

	coord := newCoord(t, Config{
		Workers:       []string{slow.Addr(), fast.Addr()},
		MinShardElems: 1 << 20, // one shard: every scan lands on one worker
		HedgeAfter:    5 * time.Millisecond,
	})
	ctx := context.Background()
	data := []int64{1, 2, 3, 4, 5}
	want := directSeg(serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, data, nil)
	start := time.Now()
	// The rotation alternates the primary worker, so two scans guarantee
	// at least one slow-primary dispatch.
	for i := 0; i < 4; i++ {
		got, err := coord.Scan(ctx, serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, data, "")
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scan %d = %v, want %v", i, got, want)
		}
	}
	st := coord.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedging never fired/won: %v (elapsed %v)", st, time.Since(start))
	}
}

// TestJitteredProbeZeroInterval is a regression test: jitteredProbe
// feeds ProbeInterval to rand.Int63n, which panics on non-positive
// arguments. Config.withDefaults clamps the interval on the New path,
// but a registry built directly (as embedders and tests do) used to
// crash its liveness loop the moment a worker was ejected. The clamp
// must make a zero or negative interval mean "probe immediately", not
// "panic".
func TestJitteredProbeZeroInterval(t *testing.T) {
	var stats coordStats
	for _, probe := range []time.Duration{0, -time.Second, time.Nanosecond, time.Second} {
		r := newRegistry(Config{Workers: []string{"127.0.0.1:1"}, ProbeInterval: probe}, &stats)
		for i := 0; i < 100; i++ {
			if d := r.jitteredProbe(); d < 0 {
				t.Fatalf("ProbeInterval=%v: negative probe gap %d", probe, d)
			}
		}
		r.close()
	}
}
