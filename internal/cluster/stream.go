package cluster

import (
	"context"
	"fmt"
	"sync"

	"scans/internal/serve"
)

// Streaming through the coordinator: a coordStream holds the carry of
// everything pushed so far — Figure 10's block-sum decomposition across
// TIME — and each chunk is itself sharded across the fleet seeded with
// that carry, the decomposition across SPACE. The two compose because
// both are the same carry algebra: scanSeeded treats the stream carry
// exactly like a piece seed one level up.
//
// Failure model matches serve.Stream: any failed chunk fails the whole
// stream (a skipped chunk would corrupt the carry); backward specs are
// rejected at open because their carry depends on chunks not yet
// arrived.

// coordStream is one streaming session over the cluster. It implements
// serve.ScanStream, so serve's wire session table drives it unchanged.
type coordStream struct {
	c      *Coordinator
	spec   serve.Spec
	tenant string

	mu      sync.Mutex
	state   int // 0 open, 1 closed, 2 failed
	failErr error
	carry   int64
}

const (
	csOpen = iota
	csClosed
	csFailed
)

// OpenScanStream starts a streaming session for spec (forward only).
// Implements serve.Backend.
func (c *Coordinator) OpenScanStream(spec serve.Spec, tenant string) (serve.ScanStream, error) {
	if c.closed.Load() {
		c.stats.rejected.Add(1)
		return nil, serve.ErrClosed
	}
	if !spec.Valid() {
		c.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %+v", serve.ErrBadRequest, spec)
	}
	if spec.Dir == serve.Backward {
		c.stats.rejected.Add(1)
		return nil, serve.ErrStreamUnsupported
	}
	c.stats.streamsOpened.Add(1)
	c.stats.streamsActive.Add(1)
	return &coordStream{c: c, spec: spec, tenant: tenant, carry: serve.Identity(spec.Op)}, nil
}

// Push shards one chunk across the fleet, seeded with the carry of all
// prior chunks, and returns the chunk's slice of the overall scan. Any
// error fails the stream permanently.
func (st *coordStream) Push(ctx context.Context, chunk []int64) ([]int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case csClosed:
		return nil, serve.ErrNoStream
	case csFailed:
		return nil, fmt.Errorf("%w: %v", serve.ErrStreamFailed, st.failErr)
	}
	if len(chunk) == 0 {
		return []int64{}, nil
	}
	st.c.stats.requests.Add(1)
	res, err := st.c.scanSeeded(ctx, st.spec, chunk, nil, st.carry, true, st.tenant)
	if err != nil {
		err = st.c.finish(err)
		st.failLocked(err)
		return nil, err
	}
	st.c.stats.served.Add(1)
	// New carry = fold of everything so far (same trick as
	// serve.Stream.Push: the exclusive form's last output stops one
	// element short of the fold).
	last := res[len(res)-1]
	if st.spec.Kind == serve.Exclusive {
		last = serve.Combine(st.spec.Op, last, chunk[len(chunk)-1])
	}
	st.carry = last
	return res, nil
}

// Close ends the stream and returns the fold of everything pushed.
func (st *coordStream) Close() (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case csClosed:
		return 0, serve.ErrNoStream
	case csFailed:
		return 0, fmt.Errorf("%w: %v", serve.ErrStreamFailed, st.failErr)
	}
	st.state = csClosed
	st.c.stats.streamsClosed.Add(1)
	st.c.stats.streamsActive.Add(-1)
	return st.carry, nil
}

// Abort fails an open stream without running anything (connection
// teardown). Safe on any state.
func (st *coordStream) Abort(cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != csOpen {
		return
	}
	if cause == nil {
		cause = serve.ErrStreamFailed
	}
	st.failLocked(cause)
}

// Expire is Abort for the wire layer's idle TTL; the coordinator ledger
// folds expiries into StreamsFailed.
func (st *coordStream) Expire() {
	st.Abort(serve.ErrNoStream)
}

// failLocked transitions open → failed exactly once (st.mu held).
func (st *coordStream) failLocked(cause error) {
	st.state = csFailed
	st.failErr = cause
	st.c.stats.streamsFailed.Add(1)
	st.c.stats.streamsActive.Add(-1)
}
