package cluster

import (
	"context"
	"fmt"
	"sync"

	"scans/internal/arena"
	"scans/internal/combine"
	"scans/internal/serve"
)

// Streaming through the coordinator: a coordStream holds the carry of
// everything pushed so far — Figure 10's block-sum decomposition across
// TIME — and each chunk is itself sharded across the fleet seeded with
// that carry, the decomposition across SPACE. The two compose because
// both are the same carry algebra: scanSeeded treats the stream carry
// exactly like a piece seed one level up.
//
// Every stream is backed by a session record in the coordinator's
// sessionTable (session.go), keyed by a resume token the wire layer
// hands to the client. The record — not the coordStream — is the
// durable identity of the session: when the carrying connection (or the
// whole coordinator) dies, the record stays resumable for ResumeTTL,
// and a client holding the token re-attaches via ResumeScanStream —
// here or, through replication, on a standby — with bit-identical
// results.
//
// Failure model matches serve.Stream: any failed chunk fails the whole
// stream (a skipped chunk would corrupt the carry) AND deletes its
// record everywhere — a typed stream failure is final, only connection
// death is resumable. Backward specs are rejected at open because their
// carry depends on chunks not yet arrived.

// coordStream is one attachment to a streaming session. It implements
// serve.ScanStream, so serve's wire session table drives it unchanged,
// and serve.TokenStream, so opens advertise the resume token.
type coordStream struct {
	c      *Coordinator
	spec   serve.Spec
	tenant string
	token  string

	mu      sync.Mutex
	state   int // 0 open, 1 closed, 2 failed
	failErr error
	carry   int64
	seq     uint64        // chunks applied through this attachment's session
	fr      combine.Frame // scratch for user-op carry folds (under mu)
}

const (
	csOpen = iota
	csClosed
	csFailed
)

// OpenScanStream starts a streaming session for spec (forward only).
// Implements serve.Backend.
func (c *Coordinator) OpenScanStream(spec serve.Spec, tenant string) (serve.ScanStream, error) {
	if c.closed.Load() {
		c.stats.rejected.Add(1)
		return nil, serve.ErrClosed
	}
	if !spec.Valid() {
		c.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %+v", serve.ErrBadRequest, spec)
	}
	if spec.Dir == serve.Backward {
		c.stats.rejected.Add(1)
		return nil, serve.ErrStreamUnsupported
	}
	spec, err := c.resolveSpec(spec, tenant)
	if err != nil {
		c.stats.rejected.Add(1)
		return nil, err
	}
	if w := spec.Width(); w > 1 {
		// The stream carry is one scalar; a width-w fold state cannot
		// ride it. Wide user monoids are one-shot only.
		c.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: width-%d user ops cannot stream (scalar carry)", serve.ErrBadRequest, w)
	}
	st := &coordStream{c: c, spec: spec, tenant: tenant, carry: serve.IdentitySpec(spec)}
	st.token = c.sessions.register(st)
	c.stats.streamsOpened.Add(1)
	c.stats.streamsActive.Add(1)
	return st, nil
}

// ResumeScanStream implements serve.StreamResumer: re-attach to a
// session by token, stealing it from any prior attachment. lastAcked is
// the client's count of acked chunks; the returned resumeFrom is the
// 1-based index of the next chunk this coordinator expects (see
// sessionTable.resume for the rollback cases). The new attachment
// counts as an opened stream, so the ledger invariant
// Opened == Closed + Failed holds per coordinator: the dead attachment
// fails where it was, the resumed one opens (and eventually closes)
// here.
func (c *Coordinator) ResumeScanStream(token string, lastAcked uint64) (serve.ScanStream, uint64, error) {
	if c.closed.Load() {
		c.stats.rejected.Add(1)
		return nil, 0, serve.ErrClosed
	}
	st, from, err := c.sessions.resume(c, token, lastAcked)
	if err != nil {
		c.stats.rejected.Add(1)
		return nil, 0, err
	}
	c.stats.resumes.Add(1)
	c.stats.streamsOpened.Add(1)
	c.stats.streamsActive.Add(1)
	return st, from, nil
}

// ResumeToken implements serve.TokenStream: the wire layer advertises
// it in the stream-open ack so the client can resume after a failure.
func (st *coordStream) ResumeToken() string { return st.token }

// Push shards one chunk across the fleet, seeded with the carry of all
// prior chunks, and returns the chunk's slice of the overall scan. Any
// error fails the stream permanently.
func (st *coordStream) Push(ctx context.Context, chunk []int64) ([]int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case csClosed:
		return nil, serve.ErrNoStream
	case csFailed:
		return nil, fmt.Errorf("%w: %v", serve.ErrStreamFailed, st.failErr)
	}
	if len(chunk) == 0 {
		return []int64{}, nil
	}
	st.c.stats.requests.Add(1)
	st.c.crashPoint()
	res, err := st.c.scanSeeded(ctx, st.spec, chunk, nil, st.carry, true, st.tenant)
	if err != nil {
		err = st.c.finish(err)
		st.failLocked(err)
		st.c.sessions.removeOwned(st) // a failed chunk ends the session everywhere
		return nil, err
	}
	// New carry = fold of everything so far (same trick as
	// serve.Stream.Push: the exclusive form's last output stops one
	// element short of the fold). The fold runs BEFORE the served count
	// so a VM fault here lands in the ledger exactly once, as a failure.
	last := res[len(res)-1]
	if st.spec.Kind == serve.Exclusive {
		last, err = serve.CombineSpec(st.spec, &st.fr, last, chunk[len(chunk)-1])
		if err != nil {
			arena.PutInt64s(res)
			err = st.c.finish(err)
			st.failLocked(err)
			st.c.sessions.removeOwned(st)
			return nil, err
		}
	}
	st.c.stats.served.Add(1)
	st.carry = last
	st.seq++
	if !st.c.sessions.advance(st, st.seq, st.carry) {
		// The session was resumed elsewhere while this chunk ran: this
		// attachment is a zombie. Fail it without touching the record —
		// the thief owns it now.
		err := fmt.Errorf("%w: session resumed by another client", serve.ErrStreamFailed)
		st.failLocked(err)
		return nil, err
	}
	return res, nil
}

// Close ends the stream and returns the fold of everything pushed.
func (st *coordStream) Close() (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case csClosed:
		return 0, serve.ErrNoStream
	case csFailed:
		return 0, fmt.Errorf("%w: %v", serve.ErrStreamFailed, st.failErr)
	}
	st.state = csClosed
	st.c.sessions.removeOwned(st)
	st.c.stats.streamsClosed.Add(1)
	st.c.stats.streamsActive.Add(-1)
	return st.carry, nil
}

// Abort fails an open attachment without running anything (connection
// teardown). The session record is DETACHED, not deleted: the client
// may hold the token and resume — connection death is exactly the
// failure resumability exists for. Safe on any state.
func (st *coordStream) Abort(cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != csOpen {
		return
	}
	if cause == nil {
		cause = serve.ErrStreamFailed
	}
	st.failLocked(cause)
	st.c.sessions.detach(st)
}

// Expire handles the wire layer's idle TTL: an idle-expired session is
// abandoned, not interrupted, so its record is deleted — letting it
// linger as resumable would just defer the reaping to ResumeTTL.
func (st *coordStream) Expire() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != csOpen {
		return
	}
	st.failLocked(serve.ErrNoStream)
	st.c.sessions.removeOwned(st)
}

// failLocked transitions open → failed exactly once (st.mu held).
func (st *coordStream) failLocked(cause error) {
	st.state = csFailed
	st.failErr = cause
	st.c.stats.streamsFailed.Add(1)
	st.c.stats.streamsActive.Add(-1)
}
