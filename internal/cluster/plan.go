package cluster

import (
	"math"
	"runtime"
	"sync"

	"scans/internal/combine"
	"scans/internal/serve"
)

// Planning: a scan of n elements becomes SHARDS (one contiguous range
// per selected worker, sized by weight) and each shard becomes PIECES
// (the wire requests actually sent). Pieces are cut at two kinds of
// boundary: MaxPieceElems (so a piece's worst-case response fits the
// line budget) and interior segment heads (so every piece lies within
// one segment and its carry is a single value the phantom element can
// express). All of a shard's pieces go to the shard's worker, whose own
// batcher fuses them back into one segmented kernel pass — the cut
// costs wire messages, not kernel passes.

// shard is one worker's contiguous slice of the vector.
type shard struct {
	start, end int
	w          *worker
}

// piece is one wire request: a sub-range of a shard with its carry
// seed. headAt records whether the piece's first element starts a
// segment (such pieces are never seeded — the scan restarts there).
type piece struct {
	off, end int
	w        *worker
	headAt   bool
	seeded   bool
	seed     int64
}

// effectiveWeights maps each worker's base weight through the adaptive
// latency model: a worker whose per-element EWMA is k× the fleet's best
// plans at 1/k of its base weight, clamped below at floor × base. The
// floor keeps every worker in the plan — a starved worker would never
// run another piece, so its EWMA could never observe a recovery; the
// floor-sized trickle is the measurement budget. Workers with no data
// yet plan at full base weight (new joiners earn their discount only by
// being observed slow).
func effectiveWeights(ws []*worker, floor float64) []float64 {
	if floor <= 0 || floor > 1 {
		floor = 1 // no adaptive scaling without a sane floor
	}
	minLat := 0.0
	for _, w := range ws {
		if l := w.latencyNs(); l > 0 && (minLat == 0 || l < minLat) {
			minLat = l
		}
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		f := 1.0
		if l := w.latencyNs(); l > 0 && minLat > 0 && l > minLat {
			f = minLat / l
			if f < floor {
				f = floor
			}
		}
		out[i] = w.weight() * f
	}
	return out
}

// planShards splits [0,n) across the given workers proportionally to
// effW (effW[i] is ws[i]'s effective weight — see effectiveWeights).
// The worker count is capped at n/minShard so small scans stay on few
// machines (a shard below the floor costs more in round trips than it
// saves in kernel time), and the selection rotates by rot so successive
// small scans spread across the fleet instead of always loading
// worker 0.
func planShards(n int, ws []*worker, effW []float64, rot, minShard int) []shard {
	k := n / minShard
	if k < 1 {
		k = 1
	}
	if k > len(ws) {
		k = len(ws)
	}
	sel := make([]*worker, k)
	selW := make([]float64, k)
	var total float64
	for i := range sel {
		j := (rot + i) % len(ws)
		sel[i] = ws[j]
		selW[i] = effW[j]
		if selW[i] <= 0 {
			selW[i] = 1
		}
		total += selW[i]
	}
	shards := make([]shard, 0, k)
	prev, cum := 0, 0.0
	for i, w := range sel {
		cum += selW[i]
		end := n
		if i < k-1 {
			end = int(math.Round(float64(n) * cum / total))
			if end < prev {
				end = prev
			}
			if end > n {
				end = n
			}
		}
		if end > prev {
			shards = append(shards, shard{start: prev, end: end, w: w})
		}
		prev = end
	}
	return shards
}

// cutPieces cuts every shard at MaxPieceElems and at interior segment
// heads. Each returned piece is non-empty, contains no segment head
// except possibly at its own first position, and inherits its shard's
// worker. Total cost O(n) — every element is examined once.
func cutPieces(shards []shard, flags []bool, maxPiece int) []piece {
	var pieces []piece
	for _, sh := range shards {
		for j := sh.start; j < sh.end; {
			e := j + maxPiece
			if e > sh.end {
				e = sh.end
			}
			if flags != nil {
				for t := j + 1; t < e; t++ {
					if flags[t] {
						e = t
						break
					}
				}
			}
			pieces = append(pieces, piece{off: j, end: e, w: sh.w, headAt: flags != nil && flags[j]})
			j = e
		}
	}
	return pieces
}

// seedPieces computes every piece's carry: the paper's "scan of the
// block sums", done locally so all pieces can dispatch concurrently.
// Phase 1 folds each piece in parallel (pieces have no interior heads,
// so a plain fold is the piece's segmented sum). Phase 2 chains the
// folds — forward left-to-right, backward right-to-left — resetting at
// segment heads, which is the ONLY place segment structure enters the
// cluster math.
//
// A piece is seeded unless the scan (re)starts at its first position:
// forward, that is a segment head or the true start of an unseeded
// request; backward, the mirror — the vector's end or a segment
// boundary immediately after the piece.
// User ops run their VM program for every fold step (one scratch frame
// per goroutine, one for the chain); a VM fault — realistically only
// op_budget, on the piece's actual data — aborts the whole seeding with
// the typed error, since a missing carry poisons every piece after it.
// Builtins keep the direct serve.Combine path.
func seedPieces(spec serve.Spec, data []int64, flags []bool, pieces []piece, carry int64, seeded bool) error {
	folds := make([]int64, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := range pieces {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			var fr combine.Frame
			acc := serve.IdentitySpec(spec)
			for _, v := range data[pieces[k].off:pieces[k].end] {
				var err error
				acc, err = serve.CombineSpec(spec, &fr, acc, v)
				if err != nil {
					errs[k] = err
					return
				}
			}
			folds[k] = acc
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	n := len(data)
	var fr combine.Frame
	if spec.Dir == serve.Forward {
		accv := serve.IdentitySpec(spec)
		if seeded {
			accv = carry
		}
		for k := range pieces {
			pc := &pieces[k]
			if pc.headAt {
				// The scan restarts here: no seed, and the running
				// prefix after this piece is the piece's own fold.
				accv = folds[k]
				continue
			}
			pc.seeded = pc.off > 0 || seeded
			pc.seed = accv
			var err error
			accv, err = serve.CombineSpec(spec, &fr, accv, folds[k])
			if err != nil {
				return err
			}
		}
	} else {
		// Backward mirror: the carry is the fold of everything to the
		// RIGHT up to the next segment head, built right-to-left. When a
		// piece starts a segment, positions left of it get a fresh carry
		// (the backward kernels reset AFTER the flagged element).
		accv := serve.IdentitySpec(spec)
		for k := len(pieces) - 1; k >= 0; k-- {
			pc := &pieces[k]
			pc.seeded = pc.end < n && (flags == nil || !flags[pc.end])
			pc.seed = accv
			if pc.headAt {
				accv = serve.IdentitySpec(spec)
			} else {
				var err error
				accv, err = serve.CombineSpec(spec, &fr, folds[k], accv)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}
