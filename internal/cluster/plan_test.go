package cluster

import (
	"math/rand"
	"testing"

	"scans/internal/serve"
)

func testWorkers(weights ...float64) []*worker {
	ws := make([]*worker, len(weights))
	for i, wt := range weights {
		w := &worker{addr: string(rune('a' + i))}
		w.setWeight(wt)
		w.healthy.Store(true)
		ws[i] = w
	}
	return ws
}

// baseShards plans with every worker at its base weight (floor 1
// disables the adaptive latency scaling), which is what the pure
// planner-geometry tests want.
func baseShards(n int, ws []*worker, rot, minShard int) []shard {
	return planShards(n, ws, effectiveWeights(ws, 1), rot, minShard)
}

// TestPlanShardsProperties fuzzes the planner's invariants: shards
// tile [0,n) exactly, in order, non-empty, never more than the healthy
// worker count, and never more than n/minShard (the min-shard floor).
func TestPlanShardsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(100_000)
		nw := 1 + rng.Intn(6)
		weights := make([]float64, nw)
		for i := range weights {
			weights[i] = []float64{1, 1, 1, 0.25, 4, 10}[rng.Intn(6)]
		}
		minShard := 1 + rng.Intn(8192)
		rot := rng.Intn(1000)
		shards := baseShards(n, testWorkers(weights...), rot, minShard)
		if len(shards) == 0 {
			t.Fatalf("n=%d: no shards", n)
		}
		if maxK := max(1, n/minShard); len(shards) > maxK || len(shards) > nw {
			t.Fatalf("n=%d minShard=%d workers=%d: %d shards exceeds floor", n, minShard, nw, len(shards))
		}
		prev := 0
		for i, sh := range shards {
			if sh.start != prev || sh.end <= sh.start || sh.w == nil {
				t.Fatalf("n=%d: shard %d = [%d,%d) does not tile from %d", n, i, sh.start, sh.end, prev)
			}
			prev = sh.end
		}
		if prev != n {
			t.Fatalf("n=%d: shards end at %d", prev, n)
		}
	}
}

// TestPlanShardsRotation: successive rotations move the single shard of
// a small scan across the fleet instead of always loading worker 0.
func TestPlanShardsRotation(t *testing.T) {
	ws := testWorkers(1, 1, 1)
	seen := map[string]bool{}
	for rot := 0; rot < 3; rot++ {
		shards := baseShards(10, ws, rot, 4096)
		if len(shards) != 1 {
			t.Fatalf("rot %d: %d shards for a tiny scan, want 1", rot, len(shards))
		}
		seen[shards[0].w.addr] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rotation used %d distinct workers out of 3", len(seen))
	}
}

// TestCutPiecesProperties: pieces tile their shards, respect the size
// cap, and contain no interior segment heads.
func TestCutPiecesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(5000)
		maxPiece := 1 + rng.Intn(600)
		var flags []bool
		if rng.Intn(3) > 0 {
			flags = make([]bool, n)
			for i := range flags {
				flags[i] = rng.Intn(50) == 0
			}
		}
		ws := testWorkers(1, 1)
		shards := baseShards(n, ws, trial, 100)
		pieces := cutPieces(shards, flags, maxPiece)
		prev := 0
		for _, pc := range pieces {
			if pc.off != prev || pc.end <= pc.off {
				t.Fatalf("piece [%d,%d) does not tile from %d", pc.off, pc.end, prev)
			}
			if pc.end-pc.off > maxPiece {
				t.Fatalf("piece [%d,%d) exceeds cap %d", pc.off, pc.end, maxPiece)
			}
			if flags != nil {
				if pc.headAt != flags[pc.off] {
					t.Fatalf("piece [%d,%d): headAt=%v, flags[off]=%v", pc.off, pc.end, pc.headAt, flags[pc.off])
				}
				for i := pc.off + 1; i < pc.end; i++ {
					if flags[i] {
						t.Fatalf("piece [%d,%d) contains interior head at %d", pc.off, pc.end, i)
					}
				}
			}
			prev = pc.end
		}
		if prev != n {
			t.Fatalf("pieces end at %d, want %d", prev, n)
		}
	}
}

// TestSeedChain pins the carry math against hand-computed cases for
// both directions, including a segment boundary landing mid-piece
// chain and a stream carry.
func TestSeedChain(t *testing.T) {
	w := testWorkers(1)[0]
	mk := func(bounds ...int) []piece {
		ps := make([]piece, len(bounds)-1)
		for i := range ps {
			ps[i] = piece{off: bounds[i], end: bounds[i+1], w: w}
		}
		return ps
	}
	sum := serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive, Dir: serve.Forward}
	data := []int64{1, 2, 3, 4, 5, 6}

	// Unsegmented forward: seeds are the prefix sums of the piece folds.
	ps := mk(0, 2, 4, 6)
	seedPieces(sum, data, nil, ps, 0, false)
	if ps[0].seeded || !ps[1].seeded || !ps[2].seeded {
		t.Fatalf("forward seeded flags: %+v", ps)
	}
	if ps[1].seed != 3 || ps[2].seed != 10 {
		t.Fatalf("forward seeds = %d,%d want 3,10", ps[1].seed, ps[2].seed)
	}

	// Stream carry prepends to everything.
	ps = mk(0, 2, 4, 6)
	seedPieces(sum, data, nil, ps, 100, true)
	if !ps[0].seeded || ps[0].seed != 100 || ps[1].seed != 103 || ps[2].seed != 110 {
		t.Fatalf("stream-carry seeds: %+v", ps)
	}

	// A head at 4 resets the forward chain; the piece starting there is
	// unseeded.
	flags := make([]bool, 6)
	flags[4] = true
	ps = mk(0, 2, 4, 6)
	for i := range ps {
		ps[i].headAt = flags[ps[i].off]
	}
	seedPieces(sum, data, flags, ps, 0, false)
	if ps[2].seeded {
		t.Fatalf("piece at segment head must be unseeded: %+v", ps[2])
	}

	// Backward: seeds are suffix folds; a head at 4 cuts piece 1's
	// carry (its segment ends at 3... i.e. flags[end]==true → unseeded)
	// and piece 2 still has no carry (end of vector).
	bsum := serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive, Dir: serve.Backward}
	ps = mk(0, 2, 4, 6)
	seedPieces(bsum, data, nil, ps, 0, false)
	if !ps[0].seeded || ps[0].seed != 3+4+5+6 || !ps[1].seeded || ps[1].seed != 11 || ps[2].seeded {
		t.Fatalf("backward seeds: %+v", ps)
	}
	ps = mk(0, 2, 4, 6)
	for i := range ps {
		ps[i].headAt = flags[ps[i].off]
	}
	seedPieces(bsum, data, flags, ps, 0, false)
	if ps[0].seeded == false || ps[0].seed != 3+4 {
		t.Fatalf("backward segmented piece 0: %+v", ps[0])
	}
	if ps[1].seeded {
		t.Fatalf("backward piece ending at a head must be unseeded: %+v", ps[1])
	}
}
