package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
	"scans/internal/serve"
)

// worker is one fleet member: its address, capacity weight, lazily
// dialed shared client (one multiplexed connection carries every
// concurrent piece bound for this worker), and health state.
type worker struct {
	addr    string
	weight  float64
	maxLine int
	proto   string

	healthy atomic.Bool
	consec  atomic.Int64 // consecutive connection-level failures

	mu  sync.Mutex
	cli *serve.Client
}

// client returns the worker's shared connection, dialing on first use
// (and after any dropConn).
func (w *worker) client() (*serve.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cli != nil {
		return w.cli, nil
	}
	cli, err := serve.DialMaxLineProto(w.addr, w.maxLine, w.proto)
	if err != nil {
		return nil, err
	}
	w.cli = cli
	return cli, nil
}

// dropConn discards a connection that failed at the connection level,
// so the next attempt re-dials. Only the exact failed client is
// dropped — a concurrent attempt may already have replaced it.
func (w *worker) dropConn(cli *serve.Client) {
	w.mu.Lock()
	if w.cli == cli {
		w.cli = nil
	}
	w.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// closeConn tears down the cached connection at coordinator shutdown.
func (w *worker) closeConn() {
	w.mu.Lock()
	cli := w.cli
	w.cli = nil
	w.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// registry is the coordinator's fleet view: the fixed worker list, the
// ejection policy, and the background prober that readmits ejected
// workers once they answer again.
type registry struct {
	workers      []*worker
	ejectAfter   int
	probeEvery   time.Duration
	probeTimeout time.Duration
	stats        *coordStats

	pick atomic.Uint64 // rotates retry/hedge worker selection

	quit chan struct{}
	done chan struct{}
}

func newRegistry(cfg Config, stats *coordStats) *registry {
	r := &registry{
		workers:      make([]*worker, len(cfg.Workers)),
		ejectAfter:   cfg.EjectAfter,
		probeEvery:   cfg.ProbeInterval,
		probeTimeout: cfg.ProbeTimeout,
		stats:        stats,
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for i, addr := range cfg.Workers {
		weight := 1.0
		if cfg.Weights != nil && cfg.Weights[i] > 0 {
			weight = cfg.Weights[i]
		}
		w := &worker{addr: addr, weight: weight, maxLine: cfg.MaxLineBytes, proto: cfg.Proto}
		w.healthy.Store(true)
		r.workers[i] = w
	}
	go r.probeLoop()
	return r
}

// healthyWorkers returns the current in-plan fleet, in registry order
// (planShards rotates over it, so stable order here keeps the rotation
// meaningful).
func (r *registry) healthyWorkers() []*worker {
	out := make([]*worker, 0, len(r.workers))
	for _, w := range r.workers {
		if w.healthy.Load() {
			out = append(out, w)
		}
	}
	return out
}

// pickHealthyNot returns a healthy worker, preferring one different
// from `not` (retries and hedges want a second opinion). Falls back to
// `not` itself when it is the only healthy worker; nil when none are.
func (r *registry) pickHealthyNot(not *worker) *worker {
	ws := r.healthyWorkers()
	if len(ws) == 0 {
		return nil
	}
	start := int(r.pick.Add(1)-1) % len(ws)
	for i := range ws {
		if w := ws[(start+i)%len(ws)]; w != not {
			return w
		}
	}
	return ws[start]
}

// noteOK records proof of liveness: the consecutive-failure streak
// resets. (Readmission of an EJECTED worker is the prober's job — a
// stale in-flight success must not re-plan a worker the prober has not
// re-verified.)
func (r *registry) noteOK(w *worker) {
	w.consec.Store(0)
}

// noteConnFail records one connection-level failure; the EjectAfter-th
// consecutive one ejects the worker from planning.
func (r *registry) noteConnFail(w *worker) {
	if int(w.consec.Add(1)) >= r.ejectAfter && w.healthy.CompareAndSwap(true, false) {
		r.stats.ejections.Add(1)
	}
}

// probeLoop periodically re-dials ejected workers; a worker that
// answers a probe scan is readmitted. Runs until close().
func (r *registry) probeLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.probeEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
			for _, w := range r.workers {
				if !w.healthy.Load() {
					r.probe(w)
				}
			}
		}
	}
}

// probe sends one tiny scan to an ejected worker. Any answer — even a
// typed error like overloaded — proves the worker is back; only
// connection-level failure keeps it ejected.
func (r *registry) probe(w *worker) {
	cli, err := w.client()
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.probeTimeout)
	defer cancel()
	res, err := cli.ScanCtx(ctx, "sum", "", "", []int64{0})
	if len(res) > 0 {
		arena.PutInt64s(res) // probe results are arena-backed and discarded
	}
	if err != nil && (connLevel(err) || ctx.Err() != nil) {
		w.dropConn(cli)
		return
	}
	w.consec.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		r.stats.readmissions.Add(1)
	}
}

// close stops the prober and closes every worker connection.
func (r *registry) close() {
	close(r.quit)
	<-r.done
	for _, w := range r.workers {
		w.closeConn()
	}
}
