package cluster

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
	"scans/internal/fault"
	"scans/internal/serve"
)

// worker is one fleet member: its address, capacity weight, lazily
// dialed shared client (one multiplexed connection carries every
// concurrent piece bound for this worker), and health + performance
// state. Workers come from two sources — the static Config.Workers
// list, and heartbeat announcements (announced == true) — and the two
// differ only in liveness policy: announced workers are ejected when
// their heartbeats stop, static ones only on consecutive
// connection-level failures, and only static ones are probe-readmitted
// (an announced worker's return is its next heartbeat).
type worker struct {
	addr    string
	maxLine int
	proto   string

	announced  bool          // joined via heartbeat; liveness = heartbeat freshness
	weightBits atomic.Uint64 // float64 bits of the base capacity weight
	lastBeat   atomic.Int64  // unixnano of the last heartbeat (announced only)
	ewmaNs     atomic.Uint64 // float64 bits: EWMA of observed ns per element, 0 = no data
	planned    atomic.Uint64 // total elements planned onto this worker
	nextProbe  atomic.Int64  // unixnano before which the prober leaves this worker alone

	healthy atomic.Bool
	consec  atomic.Int64 // consecutive connection-level failures

	// fpSlow is this worker's TARGETED slow point,
	// fault.ClusterWorkerSlow + ":" + addr — armed by tests that need to
	// slow one specific worker (the adaptive-weight acceptance check)
	// where the generic point would slow the whole fleet.
	fpSlow *fault.Point

	mu  sync.Mutex
	cli *serve.Client
}

func (w *worker) weight() float64     { return math.Float64frombits(w.weightBits.Load()) }
func (w *worker) setWeight(v float64) { w.weightBits.Store(math.Float64bits(v)) }

// ewmaAlpha is the latency filter's smoothing factor: heavy enough that
// a 10×-slowed worker's estimate moves within a handful of pieces,
// light enough that one GC pause does not reshape the plan.
const ewmaAlpha = 0.3

// recordLatency folds one successful attempt's per-element cost into
// the worker's EWMA. Lock-free CAS loop; the clamp keeps the stored
// bits nonzero (0 is the "no data yet" sentinel).
func (w *worker) recordLatency(nsPerElem float64) {
	if nsPerElem < 1 {
		nsPerElem = 1
	}
	for {
		old := w.ewmaNs.Load()
		next := nsPerElem
		if old != 0 {
			prev := math.Float64frombits(old)
			next = prev + ewmaAlpha*(nsPerElem-prev)
		}
		if w.ewmaNs.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// latencyNs returns the EWMA of ns per element, 0 when no attempt has
// completed yet.
func (w *worker) latencyNs() float64 {
	bits := w.ewmaNs.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// client returns the worker's shared connection, dialing on first use
// (and after any dropConn).
func (w *worker) client() (*serve.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cli != nil {
		return w.cli, nil
	}
	cli, err := serve.DialMaxLineProto(w.addr, w.maxLine, w.proto)
	if err != nil {
		return nil, err
	}
	w.cli = cli
	return cli, nil
}

// dropConn discards a connection that failed at the connection level,
// so the next attempt re-dials. Only the exact failed client is
// dropped — a concurrent attempt may already have replaced it.
func (w *worker) dropConn(cli *serve.Client) {
	w.mu.Lock()
	if w.cli == cli {
		w.cli = nil
	}
	w.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// closeConn tears down the cached connection at coordinator shutdown.
func (w *worker) closeConn() {
	w.mu.Lock()
	cli := w.cli
	w.cli = nil
	w.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// registry is the coordinator's fleet view: the mutable worker list
// (static seed + heartbeat joins), the ejection policies, and the
// background liveness loop that ejects silent announced workers and
// probes ejected static ones back in.
type registry struct {
	ejectAfter   int
	probeEvery   time.Duration
	probeTimeout time.Duration
	beatTTL      time.Duration
	maxLine      int
	proto        string
	faults       *fault.Set
	stats        *coordStats

	mu      sync.RWMutex
	workers []*worker // append-only under mu; snapshot() for readers
	byAddr  map[string]*worker

	pick atomic.Uint64 // rotates retry/hedge worker selection

	quit chan struct{}
	done chan struct{}
}

func newRegistry(cfg Config, stats *coordStats) *registry {
	r := &registry{
		ejectAfter:   cfg.EjectAfter,
		probeEvery:   cfg.ProbeInterval,
		probeTimeout: cfg.ProbeTimeout,
		beatTTL:      cfg.HeartbeatTTL,
		maxLine:      cfg.MaxLineBytes,
		proto:        cfg.Proto,
		faults:       cfg.Faults,
		stats:        stats,
		workers:      make([]*worker, 0, len(cfg.Workers)),
		byAddr:       make(map[string]*worker, len(cfg.Workers)),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for i, addr := range cfg.Workers {
		weight := 1.0
		if cfg.Weights != nil && cfg.Weights[i] > 0 {
			weight = cfg.Weights[i]
		}
		w := r.newWorker(addr, weight, cfg.Proto, cfg.MaxLineBytes, false)
		r.workers = append(r.workers, w)
		r.byAddr[addr] = w
	}
	go r.livenessLoop()
	return r
}

func (r *registry) newWorker(addr string, weight float64, proto string, maxLine int, announced bool) *worker {
	w := &worker{
		addr:      addr,
		maxLine:   maxLine,
		proto:     proto,
		announced: announced,
		fpSlow:    r.faults.Point(fault.ClusterWorkerSlow + ":" + addr),
	}
	w.setWeight(weight)
	w.healthy.Store(true)
	return w
}

// snapshot returns the full fleet (healthy or not) in stable join
// order. The slice is append-only under mu, so the copy is cheap and
// the *worker entries stay live forever — a departed announced worker
// is ejected, never removed, so its EWMA and identity survive a
// rejoin.
func (r *registry) snapshot() []*worker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*worker, len(r.workers))
	copy(out, r.workers)
	return out
}

// admit processes one heartbeat: an unknown address joins the fleet
// immediately (no coordinator restart), a known one refreshes its
// weight and beat clock, and an ejected one is readmitted on the spot —
// the heartbeat IS the liveness proof, so there is nothing to wait for.
// Safe under concurrent heartbeats for the same address (the join-storm
// chaos point hammers exactly this path).
func (r *registry) admit(addr string, weight float64, proto string, maxLine int) {
	now := time.Now().UnixNano()
	r.mu.RLock()
	w := r.byAddr[addr]
	r.mu.RUnlock()
	if w == nil {
		r.mu.Lock()
		if w = r.byAddr[addr]; w == nil {
			w = r.newWorker(addr, weight, proto, maxLine, true)
			w.lastBeat.Store(now)
			r.workers = append(r.workers, w)
			r.byAddr[addr] = w
			r.mu.Unlock()
			r.stats.joins.Add(1)
			return
		}
		r.mu.Unlock()
	}
	if weight > 0 {
		w.setWeight(weight)
	}
	w.lastBeat.Store(now)
	w.consec.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		r.stats.readmissions.Add(1)
	}
}

// healthyWorkers returns the current in-plan fleet, in registry order
// (planShards rotates over it, so stable order here keeps the rotation
// meaningful).
func (r *registry) healthyWorkers() []*worker {
	all := r.snapshot()
	out := make([]*worker, 0, len(all))
	for _, w := range all {
		if w.healthy.Load() {
			out = append(out, w)
		}
	}
	return out
}

// pickHealthyNot returns a healthy worker, preferring one different
// from `not` (retries and hedges want a second opinion). Falls back to
// `not` itself when it is the only healthy worker; nil when none are.
func (r *registry) pickHealthyNot(not *worker) *worker {
	ws := r.healthyWorkers()
	if len(ws) == 0 {
		return nil
	}
	start := int(r.pick.Add(1)-1) % len(ws)
	for i := range ws {
		if w := ws[(start+i)%len(ws)]; w != not {
			return w
		}
	}
	return ws[start]
}

// noteOK records proof of liveness: the consecutive-failure streak
// resets. (Readmission of an EJECTED worker is the prober's — or, for
// announced workers, the next heartbeat's — job; a stale in-flight
// success must not re-plan a worker nothing has re-verified.)
func (r *registry) noteOK(w *worker) {
	w.consec.Store(0)
}

// noteConnFail records one connection-level failure; the EjectAfter-th
// consecutive one ejects the worker from planning and schedules its
// first probe at a jittered offset, so a burst that ejects many workers
// at once does not re-probe them in lockstep.
func (r *registry) noteConnFail(w *worker) {
	if int(w.consec.Add(1)) >= r.ejectAfter && w.healthy.CompareAndSwap(true, false) {
		r.stats.ejections.Add(1)
		w.nextProbe.Store(time.Now().UnixNano() + r.jitteredProbe())
	}
}

// jitteredProbe is the gap to the next probe of an ejected worker:
// ProbeInterval ±50%, uniformly. Ejections cluster (one network blip
// fails the whole fleet's connections together); the jitter spreads the
// recovery probes so they do not all slam the returning fleet — or the
// coordinator's dialer — on the same tick.
func (r *registry) jitteredProbe() int64 {
	d := int64(r.probeEvery)
	if d < 1 {
		// rand.Int63n panics on d <= 0. Config.withDefaults clamps
		// ProbeInterval, but a registry built directly (tests, embedders)
		// may carry a zero or negative interval; probe immediately rather
		// than crash the liveness loop.
		d = 1
	}
	return d/2 + rand.Int63n(d)
}

// livenessLoop is the registry's background policy driver. Each tick it
// (a) ejects announced workers whose last heartbeat is older than
// HeartbeatTTL — a worker that stopped announcing is gone, no matter
// what its socket says — and (b) probes ejected STATIC workers whose
// jittered next-probe time has arrived. Announced workers are never
// probed: their readmission path is the next heartbeat, which proves
// liveness more cheaply and resets the beat clock at the same time.
func (r *registry) livenessLoop() {
	defer close(r.done)
	period := r.probeEvery
	if r.beatTTL < period {
		period = r.beatTTL
	}
	period /= 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			for _, w := range r.snapshot() {
				if w.healthy.Load() {
					if w.announced && now-w.lastBeat.Load() > int64(r.beatTTL) {
						if w.healthy.CompareAndSwap(true, false) {
							r.stats.ejections.Add(1)
							r.stats.beatEjections.Add(1)
							w.nextProbe.Store(now + r.jitteredProbe())
						}
					}
					continue
				}
				if !w.announced && now >= w.nextProbe.Load() {
					r.probe(w)
					w.nextProbe.Store(time.Now().UnixNano() + r.jitteredProbe())
				}
			}
		}
	}
}

// probe sends one tiny scan to an ejected worker. Any answer — even a
// typed error like overloaded — proves the worker is back; only
// connection-level failure keeps it ejected.
func (r *registry) probe(w *worker) {
	cli, err := w.client()
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.probeTimeout)
	defer cancel()
	res, err := cli.ScanCtx(ctx, "sum", "", "", []int64{0})
	if len(res) > 0 {
		arena.PutInt64s(res) // probe results are arena-backed and discarded
	}
	if err != nil && (connLevel(err) || ctx.Err() != nil) {
		w.dropConn(cli)
		return
	}
	w.consec.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		r.stats.readmissions.Add(1)
	}
}

// close stops the liveness loop and closes every worker connection.
func (r *registry) close() {
	close(r.quit)
	<-r.done
	for _, w := range r.snapshot() {
		w.closeConn()
	}
}
