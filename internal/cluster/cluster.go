// Package cluster shards giant scans across scansd workers. It is the
// paper's Figure 10 block-sum decomposition applied across MACHINES:
// split the vector into per-worker shards, scan each shard remotely,
// run the small exclusive scan over the shard totals locally, and seed
// every shard with the prefix of everything to its left. The seeding
// rides the same phantom-element mechanism the streaming layer uses
// across time (serve/stream.go, DESIGN.md §5): a seeded piece is sent
// as [carry, data...] and the carry's output position is dropped, so
// workers need no protocol extension at all — a coordinator shard is
// just another wire request.
//
// Because int64 +, ×, max, and min are exactly associative (Go defines
// signed wraparound), the decomposition is BIT-IDENTICAL to a
// single-node scan: same results for every input, op, kind, direction,
// and segment layout, regardless of worker count or where the splits
// land. Segment boundaries constrain only the carry math (a segment
// head resets the running prefix), not the plan.
//
// The Coordinator implements serve.Backend, so serve's TCP front end
// (serve.ListenBackend) gives it the whole wire protocol — framing,
// error codes, line budgets, float64 element mapping, streaming session
// tables — for free. cmd/scansd -coordinator is a flag shell around
// exactly that composition.
//
// Failure model: each piece retries under serve.RetryPolicy (scans are
// pure, so re-execution is always safe), optionally hedging a second
// worker after Config.HedgeAfter. Workers that fail at the CONNECTION
// level Config.EjectAfter times in a row are ejected from planning and
// probed back in by a background prober; typed server errors (overload,
// shed, deadline) prove liveness and never eject. A request whose piece
// exhausts its retry budget fails with serve.ErrShardFailed (wire code
// "shard_failed") — that request alone fails, the coordinator and the
// rest of the fleet keep serving.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
	"scans/internal/fault"
	"scans/internal/serve"
)

// ErrShardFailed re-exports serve.ErrShardFailed, the sentinel wrapped
// by every scan that lost a shard to retry exhaustion. It lives in
// package serve because serve owns the wire's code↔error vocabulary.
var ErrShardFailed = serve.ErrShardFailed

// Config tunes a Coordinator. Workers is required; every other field
// has a default applied by New.
type Config struct {
	// Workers is the scansd worker fleet, as dialable "host:port"
	// addresses. Required, at least one.
	Workers []string
	// Weights optionally gives each worker a capacity weight for the
	// proportional shard split (len(Weights) == len(Workers)); a bigger
	// weight draws a proportionally bigger shard. Values <= 0 and a nil
	// slice mean 1 (equal split).
	Weights []float64
	// MinShardElems is the floor under shard size: a scan of n elements
	// uses at most n/MinShardElems workers, so tiny scans are not
	// scattered across the fleet for nothing. Default 4096.
	MinShardElems int
	// MaxPieceElems caps one wire request's element count. Shards larger
	// than this are cut into several pieces (all to the shard's worker,
	// where the batcher fuses them back into one kernel pass); the cap
	// keeps every piece's worst-case RESPONSE inside the wire line
	// budget. Default 1<<19, clamped so a response always fits
	// MaxLineBytes.
	MaxPieceElems int
	// MaxLineBytes is the wire line budget used when dialing workers;
	// must match the workers' own NetConfig.MaxLineBytes. Default
	// serve.DefaultMaxLineBytes.
	MaxLineBytes int
	// Proto selects the coordinator↔worker wire protocol:
	// serve.ProtoBin (the default) or serve.ProtoJSON. Binary moves
	// shard payloads as raw little-endian words — no per-element
	// formatting on the way out, no per-element parsing on the way back
	// — which is where a coordinator spends most of its CPU at large n.
	// A ProtoBin dial degrades per connection against a pre-binwire
	// worker, so a mixed-generation fleet still works. The piece-size
	// clamp stays at JSON's 21-bytes-per-element worst case either way:
	// conservative for binary, but it keeps pieces response-safe even on
	// a connection that degraded to JSON mid-fleet.
	Proto string
	// DataPlane selects how per-piece carry seeds are computed:
	//
	//   "star" (the default): the coordinator folds the data itself
	//   while seeding pieces — O(n) sequential work per scan at the
	//   coordinator, the classic hub-and-spoke shape.
	//
	//   "exchange": the coordinator ships RAW, un-seeded pieces; each
	//   worker folds its own piece locally and the workers run a
	//   round-efficient exclusive scan over the block sums among
	//   themselves (the carry_xchg wire op, ⌈log2 k⌉ rounds). The
	//   coordinator's per-scan work drops to O(#pieces). Results are
	//   bit-identical to star; any peer-round failure falls back to a
	//   star re-run of the same scan automatically.
	DataPlane string
	// OpCap caps how many user combine ops one tenant may hold in the
	// coordinator's registry (register_op). 0 = internal/combine's
	// default cap.
	OpCap int
	// Retry is the per-piece retry policy (serve.RetryPolicy's zero
	// value: 4 attempts, exponential backoff, jitter). Retries after the
	// first attempt prefer a different healthy worker.
	Retry serve.RetryPolicy
	// HedgeAfter, when positive, launches a duplicate of a piece on a
	// second healthy worker if the first has not answered within this
	// delay; the first success wins. Scans are pure, so duplicate
	// execution is harmless. 0 disables hedging.
	HedgeAfter time.Duration
	// EjectAfter ejects a worker from planning after this many
	// CONSECUTIVE connection-level failures (dial errors, dropped
	// connections, torn lines — not typed server errors, which prove the
	// worker is alive). Default 3.
	EjectAfter int
	// ProbeInterval is how often the background prober re-dials ejected
	// workers; a successful probe scan readmits the worker. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe's round trip. Default 500ms.
	ProbeTimeout time.Duration
	// HeartbeatTTL ejects an ANNOUNCED worker (one that joined via
	// heartbeat rather than the static Workers list) when its last
	// heartbeat is older than this. Static workers are unaffected —
	// their liveness stays connection-failure driven. Default 2s.
	HeartbeatTTL time.Duration
	// WeightFloor bounds how far the adaptive latency scaling can shrink
	// a worker's planned share: effective weight ≥ WeightFloor × base
	// weight, so a slow worker keeps receiving (floor-sized) work and
	// its EWMA can observe the recovery. Default 0.1.
	WeightFloor float64
	// ReplListen, when non-empty, publishes the stream-session
	// replication feed on this TCP address for standby coordinators;
	// ReplAddr reports the bound address ("host:0" is resolved).
	ReplListen string
	// Follow, when non-empty, mirrors a primary's replication feed from
	// this address — standby mode. The follower redials forever, so a
	// standby may start before its primary and survives the primary's
	// death (which is the point).
	Follow string
	// ResumeTTL is how long a detached stream session (its carrying
	// connection died) stays resumable before the janitor reaps it.
	// Default 2m.
	ResumeTTL time.Duration
	// CrashHook, when non-nil, is called (once, in its own goroutine)
	// the first time fault.ClusterCoordCrash fires on the serving path.
	// Test harnesses install a hook that kills the TCP front end, so
	// "the coordinator dies mid-request" is a scriptable event. nil
	// leaves the point inert.
	CrashHook func()
	// Faults is the chaos hook for the coordinator-side points
	// (fault.ClusterWorkerSlow, fault.ClusterWorkerDrop,
	// fault.ClusterCoordCrash, fault.ClusterHeartbeatDrop,
	// fault.ClusterJoinStorm). nil = off.
	Faults *fault.Set
}

// withDefaults fills zero fields and clamps MaxPieceElems to the line
// budget (worst-case response bytes per element mirrors serve's
// maxRespBytes: 21 bytes per int64 plus envelope, and a seeded piece
// carries one phantom element).
func (c Config) withDefaults() Config {
	if c.MinShardElems <= 0 {
		c.MinShardElems = 4096
	}
	if c.MaxPieceElems <= 0 {
		c.MaxPieceElems = 1 << 19
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = serve.DefaultMaxLineBytes
	}
	if c.Proto == "" {
		c.Proto = serve.ProtoBin
	}
	if c.DataPlane == "" {
		c.DataPlane = DataPlaneStar
	}
	if budget := (c.MaxLineBytes-64)/21 - 2; c.MaxPieceElems > budget {
		c.MaxPieceElems = budget
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 2 * time.Second
	}
	if c.WeightFloor <= 0 || c.WeightFloor > 1 {
		c.WeightFloor = 0.1
	}
	if c.ResumeTTL <= 0 {
		c.ResumeTTL = 2 * time.Minute
	}
	return c
}

// Coordinator splits scans across a scansd worker fleet. It implements
// serve.Backend; front it with serve.ListenBackend to serve the wire
// protocol, or call Scan/ScanSegmented/OpenScanStream in process.
type Coordinator struct {
	cfg      Config
	reg      *registry
	sessions *sessionTable
	userOps  *userOps    // tenant-scoped combine ops + per-worker push cache
	repl     *replServer // non-nil when cfg.ReplListen is set
	follow   *follower   // non-nil when cfg.Follow is set
	stats    coordStats

	fpSlow      *fault.Point
	fpDrop      *fault.Point
	fpCrash     *fault.Point
	fpBeatDrop  *fault.Point
	fpJoinStorm *fault.Point
	crashOnce   sync.Once

	rr     atomic.Uint64 // rotates shard→worker assignment across scans
	closed atomic.Bool

	// Exchange-plane group ids: base is fixed at construction from the
	// wall clock, seq increments per exchange, so ids are unique across
	// coordinator restarts (stale mailbox deposits from a previous
	// incarnation can never match a live group).
	xchgBase uint64
	xchgSeq  atomic.Uint64
}

var _ serve.Backend = (*Coordinator)(nil)
var _ serve.Announcer = (*Coordinator)(nil)
var _ serve.StreamResumer = (*Coordinator)(nil)

// New builds a Coordinator over cfg.Workers. The workers are dialed
// lazily on first use, so New succeeds even while the fleet is still
// coming up — the first scans simply retry/eject until probes find it.
// An EMPTY Workers list is allowed: the fleet can be populated entirely
// by worker announcements (scansd -announce); scans before the first
// join fail with shard_failed.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Weights != nil && len(cfg.Weights) != len(cfg.Workers) {
		return nil, fmt.Errorf("cluster: %d weights for %d workers", len(cfg.Weights), len(cfg.Workers))
	}
	switch cfg.Proto {
	case "", serve.ProtoBin, serve.ProtoJSON:
	default:
		return nil, fmt.Errorf("cluster: unknown worker protocol %q", cfg.Proto)
	}
	switch cfg.DataPlane {
	case "", DataPlaneStar, DataPlaneExchange:
	default:
		return nil, fmt.Errorf("cluster: unknown data plane %q", cfg.DataPlane)
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:         cfg,
		fpSlow:      cfg.Faults.Point(fault.ClusterWorkerSlow),
		fpDrop:      cfg.Faults.Point(fault.ClusterWorkerDrop),
		fpCrash:     cfg.Faults.Point(fault.ClusterCoordCrash),
		fpBeatDrop:  cfg.Faults.Point(fault.ClusterHeartbeatDrop),
		fpJoinStorm: cfg.Faults.Point(fault.ClusterJoinStorm),
		xchgBase:    uint64(time.Now().UnixNano()) << 20,
	}
	c.reg = newRegistry(cfg, &c.stats)
	c.userOps = newUserOps(cfg.OpCap)
	c.sessions = newSessionTable(cfg.ResumeTTL, &c.stats)
	if cfg.ReplListen != "" {
		rs, err := startReplServer(cfg.ReplListen, c.sessions)
		if err != nil {
			c.reg.close()
			c.sessions.close()
			return nil, fmt.Errorf("cluster: repl listen: %w", err)
		}
		c.repl = rs
	}
	if cfg.Follow != "" {
		c.follow = startFollower(cfg.Follow, c.sessions)
	}
	return c, nil
}

// ReplAddr returns the bound replication-feed address ("" when
// ReplListen was not configured). Standbys pass it as Config.Follow.
func (c *Coordinator) ReplAddr() string {
	if c.repl == nil {
		return ""
	}
	return c.repl.addr()
}

// Close stops the liveness loop, the session janitor, the replication
// endpoints, and every worker connection. In-flight scans see their
// connections die and fail with shard_failed; call Close only after
// traffic has drained (the TCP front end's Close does exactly that
// ordering).
func (c *Coordinator) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	if c.follow != nil {
		c.follow.close()
	}
	if c.repl != nil {
		c.repl.close()
	} else {
		c.sessions.close()
	}
	c.reg.close()
}

// Announce implements serve.Announcer: one worker heartbeat. Unknown
// addresses join the fleet live, known ones refresh weight and beat
// clock, ejected ones are readmitted (see registry.admit). The chaos
// points model a lossy control plane: a fired heartbeat.drop is
// acknowledged but never reaches the registry, and a fired joinstorm
// re-admits the same worker from many goroutines at once.
func (c *Coordinator) Announce(addr string, weight float64, proto string, maxLine int) error {
	if c.closed.Load() {
		return serve.ErrClosed
	}
	if addr == "" {
		return fmt.Errorf("%w: heartbeat with empty worker address", serve.ErrBadRequest)
	}
	switch proto {
	case "":
		proto = c.cfg.Proto
	case serve.ProtoBin, serve.ProtoJSON:
	default:
		return fmt.Errorf("%w: unknown worker protocol %q", serve.ErrBadRequest, proto)
	}
	if weight <= 0 {
		weight = 1
	}
	if maxLine <= 0 {
		maxLine = c.cfg.MaxLineBytes
	}
	c.stats.heartbeats.Add(1)
	if c.fpBeatDrop.Fire() {
		return nil // chaos: the beat is lost inside the coordinator
	}
	if c.fpJoinStorm.Fire() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.reg.admit(addr, weight, proto, maxLine)
			}()
		}
		wg.Wait()
		return nil
	}
	c.reg.admit(addr, weight, proto, maxLine)
	return nil
}

// WorkerStat is one worker's row in the coordinator's fleet view:
// identity, base and effective (latency-adjusted) weight, health, and
// the adaptive-planning inputs, for operators and the acceptance tests
// that assert a slowed worker's share actually drops.
type WorkerStat struct {
	Addr      string
	Announced bool
	Healthy   bool
	// Weight is the configured/announced base weight; EffWeight is what
	// planning actually uses after latency scaling (≥ WeightFloor ×
	// Weight).
	Weight    float64
	EffWeight float64
	// LatencyEWMANs is the smoothed observed cost in ns per element
	// (0 until the first successful attempt).
	LatencyEWMANs float64
	// PlannedElems is the cumulative element count planned onto this
	// worker.
	PlannedElems uint64
	// LastBeatAge is the time since the last heartbeat (0 for static
	// workers, which do not beat).
	LastBeatAge time.Duration
}

// WorkerStats snapshots the fleet, in join order; safe under traffic.
func (c *Coordinator) WorkerStats() []WorkerStat {
	ws := c.reg.snapshot()
	eff := effectiveWeights(ws, c.cfg.WeightFloor)
	out := make([]WorkerStat, len(ws))
	now := time.Now()
	for i, w := range ws {
		var age time.Duration
		if lb := w.lastBeat.Load(); lb > 0 {
			age = now.Sub(time.Unix(0, lb))
		}
		out[i] = WorkerStat{
			Addr:          w.addr,
			Announced:     w.announced,
			Healthy:       w.healthy.Load(),
			Weight:        w.weight(),
			EffWeight:     eff[i],
			LatencyEWMANs: w.latencyNs(),
			PlannedElems:  w.planned.Load(),
			LastBeatAge:   age,
		}
	}
	return out
}

// Scan shards one unsegmented scan across the fleet and returns the
// full result, bit-identical to a single-node scan of data. Implements
// serve.Backend.
func (c *Coordinator) Scan(ctx context.Context, spec serve.Spec, data []int64, tenant string) ([]int64, error) {
	return c.scanRoot(ctx, spec, data, nil, tenant)
}

// ScanSegmented is Scan over a segmented vector: flags[i] marks the
// start of a segment (position 0 always starts one, flagged or not),
// and the scan restarts at every segment head — the semantics of the
// serving layer's fused batches and the paper's segmented primitives.
// Segment boundaries do NOT constrain the shard split: a segment may
// span any number of shards, and only the carry chain respects the
// resets.
func (c *Coordinator) ScanSegmented(ctx context.Context, spec serve.Spec, data []int64, flags []bool, tenant string) ([]int64, error) {
	if flags != nil && len(flags) != len(data) {
		c.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d flags for %d elements", serve.ErrBadRequest, len(flags), len(data))
	}
	return c.scanRoot(ctx, spec, data, flags, tenant)
}

// scanRoot is the admission + ledger wrapper: every accepted request
// reaches exactly one of served / shard_failed / deadline.
func (c *Coordinator) scanRoot(ctx context.Context, spec serve.Spec, data []int64, flags []bool, tenant string) ([]int64, error) {
	if c.closed.Load() {
		c.stats.rejected.Add(1)
		return nil, serve.ErrClosed
	}
	if !spec.Valid() {
		c.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %+v", serve.ErrBadRequest, spec)
	}
	spec, rerr := c.resolveSpec(spec, tenant)
	if rerr != nil {
		c.stats.rejected.Add(1)
		return nil, rerr
	}
	if w := spec.Width(); w > 1 {
		// Tuple monoids: the scalar carry plan cannot thread a
		// tuple-valued seed through a phantom element, so a wide user
		// scan dispatches as ONE unsplit piece (see scanSeeded) — which
		// bounds it to a single wire request and a single segment.
		switch {
		case len(data)%w != 0:
			c.stats.rejected.Add(1)
			return nil, fmt.Errorf("%w: op %q combines width-%d tuples; %d elements is not a whole number of tuples",
				serve.ErrBadRequest, spec.User, w, len(data))
		case flags != nil:
			c.stats.rejected.Add(1)
			return nil, fmt.Errorf("%w: segmented scans with width-%d user ops are not cluster-dispatchable",
				serve.ErrBadRequest, w)
		case len(data) > c.cfg.MaxPieceElems:
			c.stats.rejected.Add(1)
			return nil, fmt.Errorf("%w: width-%d user scans dispatch as one piece; %d elements exceeds the %d-element piece budget",
				serve.ErrBadRequest, w, len(data), c.cfg.MaxPieceElems)
		}
	}
	c.crashPoint()
	c.stats.requests.Add(1)
	res, err := c.scanSeeded(ctx, spec, data, flags, 0, false, tenant)
	if err != nil {
		return nil, c.finish(err)
	}
	c.stats.served.Add(1)
	return res, nil
}

// crashPoint fires fault.ClusterCoordCrash: the first fire invokes
// CrashHook — typically "kill my TCP front end" — in a fresh goroutine,
// so the crash lands while this request (and its siblings) are in
// flight, exactly the window failover must cover. The request itself
// proceeds; the dying front end is what kills it.
func (c *Coordinator) crashPoint() {
	if c.fpCrash.Fire() {
		c.crashOnce.Do(func() {
			if hook := c.cfg.CrashHook; hook != nil {
				go hook()
			}
		})
	}
}

// finish classifies a failed request's terminal outcome and wraps
// non-deadline causes in ErrShardFailed.
func (c *Coordinator) finish(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		c.stats.deadline.Add(1)
		return err
	}
	c.stats.shardFailed.Add(1)
	if !errors.Is(err, serve.ErrShardFailed) {
		// Both %w: the shard ledger needs ErrShardFailed, but a typed
		// user-op cause (op_budget, op_hash, bad_op) must survive the
		// wrap — codeForError checks the op errors first, so the wire
		// reports the specific code, not shard_failed.
		err = fmt.Errorf("%w: %w", serve.ErrShardFailed, err)
	}
	return err
}

// scanSeeded is the core: plan shards, cut pieces, compute every
// piece's carry locally, dispatch all pieces concurrently, reassemble.
// carry/seeded prepend a cross-request prefix (the streaming path).
func (c *Coordinator) scanSeeded(ctx context.Context, spec serve.Spec, data []int64, flags []bool, carry int64, seeded bool, tenant string) ([]int64, error) {
	n := len(data)
	if n == 0 {
		return []int64{}, nil
	}
	ws := c.reg.healthyWorkers()
	if len(ws) == 0 {
		// Every worker is ejected. Refusing outright would turn a
		// transient all-down blip (one bad network moment can burst-fail
		// every shared connection at once) into guaranteed request
		// failure; instead plan over the full fleet and let the
		// per-piece retries probe reality, while the liveness loop
		// readmits in parallel. A genuinely dead fleet still fails — with
		// shard_failed, after the retry budget.
		ws = c.reg.snapshot()
	}
	if len(ws) == 0 {
		// Nothing has ever joined (announce-only fleet before the first
		// heartbeat).
		return nil, errors.New("no workers in fleet")
	}
	if spec.Width() > 1 {
		// Wide user op: one unsplit, unseeded piece on one worker (its
		// batcher runs the op's tuple view pass). scanRoot already
		// rejected anything that cannot ship this way.
		pc := piece{off: 0, end: n, w: ws[int(c.rr.Add(1)-1)%len(ws)]}
		pc.w.planned.Add(uint64(n))
		c.stats.shards.Add(1)
		c.stats.pieces.Add(1)
		out := arena.GetInt64s(n)
		if err := c.runPiece(ctx, spec, data, out, &pc, tenant); err != nil {
			arena.PutInt64s(out)
			return nil, err
		}
		return out, nil
	}

	shards := planShards(n, ws, effectiveWeights(ws, c.cfg.WeightFloor), int(c.rr.Add(1)-1), c.cfg.MinShardElems)
	pieces := cutPieces(shards, flags, c.cfg.MaxPieceElems)
	for i := range shards {
		shards[i].w.planned.Add(uint64(shards[i].end - shards[i].start))
	}
	c.stats.shards.Add(uint64(len(shards)))
	c.stats.pieces.Add(uint64(len(pieces)))

	// Backward user ops skip the exchange plane by construction, not by
	// fallback: the exchange's ⊗ folds on the right while the backward
	// star chain folds on the left, and user monoids need not be
	// commutative (serve/exchange.go's package comment).
	if c.cfg.DataPlane == DataPlaneExchange &&
		!(spec.Op == serve.OpUser && spec.Dir == serve.Backward) {
		res, err := c.runExchange(ctx, spec, data, flags, pieces, carry, seeded, tenant)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, err // caller gone; a star re-run would fail the same way
		}
		// Any mid-exchange failure (a peer died, a round timed out, a
		// worker predates the scan_xchg op) degrades this one scan to the
		// star plane. runExchange never mutates data or pieces, so the
		// fall-through below sees exactly the inputs it always has.
		c.stats.xchgFallbacks.Add(1)
	}

	c.stats.carryPrescanElems.Add(uint64(n))
	if err := seedPieces(spec, data, flags, pieces, carry, seeded); err != nil {
		return nil, err // a VM fault folding carries (op_budget) — typed, not shard_failed-worthy retrying
	}

	// All pieces are pre-seeded, so they dispatch CONCURRENTLY — the
	// carry chain cost was paid locally above, in parallel piece folds
	// plus a chain as long as the piece count (the paper's "scan of the
	// block sums", tiny by construction). The assembled result is an
	// arena buffer (owned by the caller; the TCP front end returns it
	// after encoding) and each piece copies its window in place.
	out := arena.GetInt64s(n)
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	for i := range pieces {
		pc := &pieces[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.runPiece(dctx, spec, data, out[pc.off:pc.end], pc, tenant); err != nil {
				once.Do(func() { firstErr = err; cancel() })
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		arena.PutInt64s(out)
		return nil, firstErr
	}
	return out, nil
}

// runPiece executes one piece to completion: build the (possibly
// phantom-seeded) payload, retry under the policy — preferring a
// different healthy worker after the first failure — and copy the
// response (minus the phantom position) into dst, the piece's window
// of the caller's output buffer. Both the seeded payload and the
// decoded response live in arena buffers that circulate back here; the
// raw response is copied rather than trimmed in place because res[1:]
// would lose the Put-able base pointer.
func (c *Coordinator) runPiece(ctx context.Context, spec serve.Spec, data []int64, dst []int64, pc *piece, tenant string) error {
	seg := data[pc.off:pc.end]
	payload := seg
	if pc.seeded {
		payload = arena.GetInt64s(len(seg) + 1)
		defer arena.PutInt64s(payload)
		if spec.Dir == serve.Forward {
			payload[0] = pc.seed
			copy(payload[1:], seg)
		} else {
			copy(payload, seg)
			payload[len(seg)] = pc.seed
		}
	}
	var (
		res     []int64
		attempt int
	)
	attempts, err := c.cfg.Retry.Do(ctx, func() error {
		attempt++
		w := pc.w
		if attempt > 1 {
			if alt := c.reg.pickHealthyNot(pc.w); alt != nil {
				w = alt
			}
		}
		r, rerr := c.attemptHedged(ctx, spec, payload, tenant, w)
		if rerr != nil {
			return rerr
		}
		res = r
		return nil
	})
	if attempts > 1 {
		c.stats.retries.Add(uint64(attempts - 1))
	}
	if err != nil {
		return fmt.Errorf("piece [%d:%d) of %s via %s failed after %d attempts: %w",
			pc.off, pc.end, spec, pc.w.addr, attempts, err)
	}
	if len(res) > 0 {
		defer arena.PutInt64s(res)
	}
	want := len(seg)
	if pc.seeded {
		want++
	}
	if len(res) != want {
		return fmt.Errorf("%w: worker returned %d elements for a %d-element piece",
			serve.ErrInternal, len(res), want)
	}
	switch {
	case pc.seeded && spec.Dir == serve.Forward:
		copy(dst, res[1:]) // drop the phantom head's output
	case pc.seeded:
		copy(dst, res[:len(res)-1]) // drop the phantom tail's output
	default:
		copy(dst, res)
	}
	return nil
}

// attemptHedged runs one attempt, racing a duplicate on a second
// healthy worker if the primary has not answered within HedgeAfter.
// First success wins; with both failed, the primary's error stands.
func (c *Coordinator) attemptHedged(ctx context.Context, spec serve.Spec, payload []int64, tenant string, w *worker) ([]int64, error) {
	if c.cfg.HedgeAfter <= 0 {
		return c.attemptOn(ctx, spec, payload, tenant, w)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the loser
	type result struct {
		res   []int64
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(lw *worker, hedge bool) {
		go func() {
			r, e := c.attemptOn(actx, spec, payload, tenant, lw)
			ch <- result{r, e, hedge}
		}()
	}
	launch(w, false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	inflight, hedged := 1, false
	var primaryErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					c.stats.hedgeWins.Add(1)
				}
				// Reel the loser in BEFORE returning: its round trip is
				// still reading payload, which the caller recycles the
				// moment we return — and a duplicate success carries an
				// arena-backed result that must circulate, not leak.
				cancel()
				for ; inflight > 0; inflight-- {
					lr := <-ch
					if lr.err == nil && len(lr.res) > 0 {
						arena.PutInt64s(lr.res)
					}
				}
				return r.res, nil
			}
			if !r.hedge {
				primaryErr = r.err
			}
			if inflight == 0 {
				if primaryErr != nil {
					return nil, primaryErr
				}
				return nil, r.err
			}
		case <-timer.C:
			if hedged {
				continue
			}
			if alt := c.reg.pickHealthyNot(w); alt != nil {
				hedged = true
				inflight++
				c.stats.hedges.Add(1)
				launch(alt, true)
			}
		}
	}
}

// attemptOn runs one wire round trip against one worker, firing the
// chaos points and feeding the health model: connection-level failures
// count toward ejection, typed server errors prove liveness and reset
// the streak, and the caller's own cancellation says nothing either
// way. Successful attempts also feed the worker's latency EWMA —
// measured around the WHOLE attempt, chaos sleeps included, so an
// armed slow point is indistinguishable from a genuinely slow worker
// and the adaptive planner reacts to both the same way.
func (c *Coordinator) attemptOn(ctx context.Context, spec serve.Spec, payload []int64, tenant string, w *worker) ([]int64, error) {
	start := time.Now()
	c.fpSlow.Sleep()
	w.fpSlow.Sleep() // targeted per-worker point: ClusterWorkerSlow + ":" + addr
	cli, err := w.client()
	if err != nil {
		c.reg.noteConnFail(w)
		return nil, err
	}
	if c.fpDrop.Fire() {
		// Chaos: the worker "dies" with this piece in flight — its
		// connection (shared by every concurrent piece on this worker)
		// drops mid-round-trip.
		go cli.Close()
	}
	var res []int64
	if spec.Op == serve.OpUser {
		// User op: make sure the worker holds our bytecode, then pin the
		// scan to its content hash. A stale answer anyway (the push cache
		// lied — worker restart, concurrent re-registration) gets one
		// repair-and-retry before the error escapes to the normal piece
		// retry loop.
		reg := spec.Binding()
		c.ensureOpPushed(ctx, w, cli, tenant, reg)
		res, err = cli.ScanPinned(ctx, spec.OpString(), spec.Kind.String(), spec.Dir.String(), tenant, reg.Hash, payload)
		if err != nil && opStale(err) && ctx.Err() == nil {
			c.invalidatePush(w.addr, tenant, reg.Name)
			if perr := c.pushOp(ctx, w, cli, tenant, reg); perr == nil {
				res, err = cli.ScanPinned(ctx, spec.OpString(), spec.Kind.String(), spec.Dir.String(), tenant, reg.Hash, payload)
			}
		}
	} else {
		res, err = cli.ScanTenantCtx(ctx, spec.Op.String(), spec.Kind.String(), spec.Dir.String(), tenant, payload)
	}
	switch {
	case err == nil:
		c.reg.noteOK(w)
		elems := len(payload)
		if elems < 1 {
			elems = 1
		}
		w.recordLatency(float64(time.Since(start)) / float64(elems))
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Our own deadline/cancel: no health signal.
	case connLevel(err):
		w.dropConn(cli)
		c.reg.noteConnFail(w)
	default:
		c.reg.noteOK(w) // typed server error: the worker is alive
	}
	return res, err
}

// connLevel reports whether err is a connection-level failure — the
// kind that counts toward ejection. Typed server errors prove the
// worker processed the request; serve.ErrClosed means the worker is
// shutting down, which for planning purposes IS a dead worker.
func connLevel(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, serve.ErrBadRequest),
		errors.Is(err, serve.ErrOverloaded),
		errors.Is(err, serve.ErrShed),
		errors.Is(err, serve.ErrInternal),
		errors.Is(err, serve.ErrShardFailed),
		errors.Is(err, serve.ErrNoStream),
		errors.Is(err, serve.ErrStreamFailed),
		errors.Is(err, serve.ErrStreamUnsupported),
		errors.Is(err, serve.ErrXchgFailed),
		errors.Is(err, serve.ErrBadOp),
		errors.Is(err, serve.ErrOpBudget),
		errors.Is(err, serve.ErrOpHash):
		return false
	}
	return true // dial failure, EOF, torn line, net.ErrClosed, serve.ErrClosed
}
