package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"scans/internal/combine"
	"scans/internal/serve"
)

// User combine ops across the fleet: the coordinator owns the
// authoritative registry (validated exactly like a single node's — see
// internal/combine), and every worker that runs a piece needs a copy of
// the bytecode. Propagation is keyed by the registration's CONTENT HASH
// rather than by name: the coordinator pins the hash on every piece it
// dispatches, a worker verifies its own registration against the pin
// before combining, and a mismatch — stale bytecode after a
// re-registration, a worker that restarted and lost the op, a freshly
// joined worker that never saw it — comes back as the typed op_hash /
// bad_request answer rather than a silently wrong scan.
//
// Push discipline: registrations are pushed eagerly to the fleet known
// at register time (best-effort, bounded by opPushTimeout) and lazily
// everywhere else — attemptOn pre-pushes from the per-worker cache
// before a piece's first use on a worker, and re-pushes + retries once
// when the worker answers op_hash/bad_request anyway (the cache can lie
// across a worker restart). The exchange plane never retries in place —
// a mid-exchange mismatch aborts the group and the star re-run's push
// machinery repairs the worker.

// opPushTimeout bounds one best-effort registration push.
const opPushTimeout = 2 * time.Second

// userOps is the coordinator's user-op state: the authoritative
// registry plus the per-worker propagation cache.
type userOps struct {
	reg *combine.Registry

	mu sync.Mutex
	// pushed maps worker addr + tenant + op name -> the content hash this
	// coordinator last successfully pushed there. Advisory only: a worker
	// restart invalidates it silently, which the op_hash retry repairs.
	pushed map[string]uint64
}

func newUserOps(capPerTenant int) *userOps {
	return &userOps{reg: combine.NewRegistry(capPerTenant), pushed: make(map[string]uint64)}
}

func pushKey(addr, tenant, name string) string {
	return addr + "\x00" + tenant + "\x00" + name
}

var _ serve.OpRegistrar = (*Coordinator)(nil)

// RegisterScanOp implements serve.OpRegistrar on the coordinator:
// validate source as a monoid (property tests, counterexample on
// rejection), install it under (tenant, name), and push it to the
// current fleet best-effort. Workers that miss the push — down now, or
// joining later — are repaired lazily by the per-piece push machinery,
// so registration never blocks on a sick fleet.
func (c *Coordinator) RegisterScanOp(tenant, name, source string) (uint64, error) {
	if c.closed.Load() {
		return 0, serve.ErrClosed
	}
	reg, err := c.userOps.reg.Register(tenant, name, source)
	if err != nil {
		c.stats.opRejects.Add(1)
		return 0, fmt.Errorf("%w: %w", serve.ErrBadOp, err)
	}
	c.stats.opRegisters.Add(1)

	ctx, cancel := context.WithTimeout(context.Background(), opPushTimeout)
	defer cancel()
	ws := c.reg.snapshot()
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			cli, err := w.client()
			if err != nil {
				c.stats.opPushFails.Add(1)
				return
			}
			if err := c.pushOp(ctx, w, cli, tenant, reg); err != nil {
				c.stats.opPushFails.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return reg.Hash, nil
}

// LookupScanOp returns the coordinator's live registration by name (nil
// if absent).
func (c *Coordinator) LookupScanOp(tenant, name string) *combine.Registered {
	return c.userOps.reg.Lookup(tenant, name)
}

// resolveSpec binds a user-op spec to the coordinator's registration
// (verifying any caller-pinned hash) so planning can fold carries with
// the op's VM program and dispatch can pin pieces to the exact bytecode.
// Builtin specs pass through untouched.
func (c *Coordinator) resolveSpec(spec serve.Spec, tenant string) (serve.Spec, error) {
	if spec.Op != serve.OpUser {
		return spec, nil
	}
	reg := c.userOps.reg.Lookup(tenant, spec.User)
	if reg == nil {
		return serve.Spec{}, fmt.Errorf("%w: unknown user op %q for tenant %q (register_op first)",
			serve.ErrBadRequest, spec.User, tenant)
	}
	if spec.Hash != 0 && spec.Hash != reg.Hash {
		return serve.Spec{}, fmt.Errorf("%w: op %q is registered as %#016x here, caller pinned %#016x",
			serve.ErrOpHash, spec.User, reg.Hash, spec.Hash)
	}
	spec.Hash = 0
	return spec.Bind(reg), nil
}

// ensureOpPushed pushes reg to w unless the cache says this exact hash
// already landed there. Best-effort: a failed push is not fatal — the
// piece attempt itself will surface the worker's true state.
func (c *Coordinator) ensureOpPushed(ctx context.Context, w *worker, cli *serve.Client, tenant string, reg *combine.Registered) {
	c.userOps.mu.Lock()
	cur := c.userOps.pushed[pushKey(w.addr, tenant, reg.Name)]
	c.userOps.mu.Unlock()
	if cur == reg.Hash {
		return
	}
	if err := c.pushOp(ctx, w, cli, tenant, reg); err != nil {
		c.stats.opPushFails.Add(1)
	}
}

// pushOp registers reg on worker w over cli and records the push. The
// worker hashing the same source to a DIFFERENT value is a version-skew
// error (typed op_hash) — scans pinned to our hash would never run
// there, so surfacing it beats caching a lie.
func (c *Coordinator) pushOp(ctx context.Context, w *worker, cli *serve.Client, tenant string, reg *combine.Registered) error {
	hash, err := cli.RegisterOp(ctx, tenant, reg.Name, reg.Source)
	if err != nil {
		return err
	}
	if hash != reg.Hash {
		return fmt.Errorf("%w: worker %s hashed op %q to %#016x, coordinator holds %#016x",
			serve.ErrOpHash, w.addr, reg.Name, hash, reg.Hash)
	}
	c.stats.opPushes.Add(1)
	c.userOps.mu.Lock()
	c.userOps.pushed[pushKey(w.addr, tenant, reg.Name)] = hash
	c.userOps.mu.Unlock()
	return nil
}

// invalidatePush forgets the cached push of reg to addr, so the next
// use re-pushes. Called when a worker answers op_hash despite the cache
// (it restarted, or someone re-registered behind our back).
func (c *Coordinator) invalidatePush(addr, tenant, name string) {
	c.userOps.mu.Lock()
	delete(c.userOps.pushed, pushKey(addr, tenant, name))
	c.userOps.mu.Unlock()
}

// opStale reports whether a piece error means "this worker holds the
// wrong (or no) registration" — the two answers a push + retry repairs:
// the typed op_hash mismatch, and the bad_request an unregistered name
// resolves to. (A bad_request for any other cause retries into the same
// bad_request — wasteful once, never wrong.)
func opStale(err error) bool {
	return errors.Is(err, serve.ErrOpHash) || errors.Is(err, serve.ErrBadRequest)
}
