package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/arena"
	"scans/internal/fault"
	"scans/internal/serve"
)

// TestCoordinatorFailoverSoak is the control-plane survival exam: a
// primary coordinator replicating its stream sessions to a live
// standby is murdered (fault.ClusterCoordCrash → NetServer.Kill, the
// kill -9 stand-in: no drain, no goodbye) a third of the way through a
// mixed soak, and every client — half of them mid-stream — must finish
// on the standby. Invariants:
//
//  1. Zero lost traffic: every request reaches success, through the
//     primary before the kill or the standby after it.
//  2. Zero corruption: every result — including streams that were
//     resumed by token halfway through — is bit-identical to the
//     serial reference.
//  3. Resume really happened: at least one stream re-attached by token
//     (Resumed ≥ 1 client-side, Resumes ≥ 1 on the standby), and at
//     least one request was served by the standby (FailedOver ≥ 1).
//  4. Both coordinators' stream ledgers close: on each,
//     Opened == Closed + Failed and Active == 0 — the killed primary's
//     orphaned attachments all fail, the standby's resumed ones all
//     close.
//  5. The arena ledger closes: gets == puts once everything is torn
//     down — failover leaks no pooled buffers.
//
// scripts/check.sh runs this under -race.
func TestCoordinatorFailoverSoak(t *testing.T) {
	const (
		nWorkers = 2
		clients  = 6
		seed     = 0xFA11
	)
	perClient := 60
	if testing.Short() {
		perClient = 20
	}
	arenaBefore := arena.Stats()

	workerCfg := serve.Config{MaxWait: 50 * time.Microsecond}
	workers := make([]*serve.NetServer, nWorkers)
	addrs := make([]string, nWorkers)
	for i := range workers {
		ns, err := serve.ListenNet("127.0.0.1:0", workerCfg, serve.NetConfig{})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = ns
		addrs[i] = ns.Addr()
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}()

	// The primary gets the crash point (armed mid-soak by the lifecycle
	// goroutine below); the standby shares nothing with it but the
	// replication feed.
	faults := fault.New(seed)
	var (
		primNS  *serve.NetServer
		primary *Coordinator
		killed  = make(chan struct{})
		killerr error
	)
	primary, err := New(Config{
		Workers:       addrs,
		MinShardElems: 64,
		MaxPieceElems: 256,
		Retry:         serve.RetryPolicy{MaxAttempts: 6, BaseDelay: 500 * time.Microsecond, MaxDelay: 10 * time.Millisecond},
		ReplListen:    "127.0.0.1:0",
		Faults:        faults,
		CrashHook: func() {
			primNS.Kill()
			primary.Close()
			close(killed)
		},
	})
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	primNS, err = serve.ListenBackend("127.0.0.1:0", primary, serve.NetConfig{})
	if err != nil {
		t.Fatalf("primary front end: %v", err)
	}

	standby, err := New(Config{
		Workers:       addrs,
		MinShardElems: 64,
		MaxPieceElems: 256,
		Retry:         serve.RetryPolicy{MaxAttempts: 6, BaseDelay: 500 * time.Microsecond, MaxDelay: 10 * time.Millisecond},
		Follow:        primary.ReplAddr(),
	})
	if err != nil {
		t.Fatalf("standby: %v", err)
	}
	stbyNS, err := serve.ListenBackend("127.0.0.1:0", standby, serve.NetConfig{})
	if err != nil {
		t.Fatalf("standby front end: %v", err)
	}

	// Lifecycle: arm the crash point once a third of the soak is done, so
	// the very next request through the primary pulls the trigger.
	var progress sync.Map
	killAt := clients * perClient / 3
	var lifecycle sync.WaitGroup
	lifecycle.Add(1)
	go func() {
		defer lifecycle.Done()
		for {
			s := 0
			progress.Range(func(_, v any) bool { s += v.(int); return true })
			if s >= killAt {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		faults.Arm(fault.ClusterCoordCrash, 1)
		select {
		case <-killed:
		case <-time.After(10 * time.Second):
			killerr = errors.New("crash point armed but the primary never died")
		}
	}()

	specs := clusterSpecs()
	fcs := make([]*serve.FailoverClient, clients)
	for c := range fcs {
		fc, err := serve.DialFailover(serve.ProtoBin, 0, primNS.Addr(), stbyNS.Addr())
		if err != nil {
			t.Fatalf("DialFailover: %v", err)
		}
		fcs[c] = fc
	}

	type tally struct{ success, mismatch, failed, streamed int }
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total tally
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl) + 7))
			fc := fcs[cl]
			var local tally
			for i := 0; i < perClient; i++ {
				progress.Store(cl, i)
				sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				var (
					spec serve.Spec
					data []int64
					got  []int64
					err  error
				)
				if i%2 == 0 {
					// Streamed leg (half the traffic): small chunks force many
					// round trips, so the kill reliably lands mid-stream for
					// somebody and their resume token gets used in anger.
					spec = specs[rng.Intn(len(specs))]
					spec.Dir = serve.Forward
					data = randVec(rng, spec.Op, 600+rng.Intn(1200))
					got, err = fc.StreamScan(sctx, spec.Op.String(), spec.Kind.String(), spec.Dir.String(), data, 48+rng.Intn(80))
					local.streamed++
				} else {
					spec = specs[rng.Intn(len(specs))]
					data = randVec(rng, spec.Op, 1+rng.Intn(1500))
					got, err = fc.ScanCtx(sctx, spec.Op.String(), spec.Kind.String(), spec.Dir.String(), data)
				}
				cancel()
				if err != nil {
					t.Errorf("client %d request %d (%s): %v", cl, i, spec, err)
					local.failed++
					continue
				}
				if want := directSeg(spec, data, nil); !reflect.DeepEqual(got, want) {
					local.mismatch++
				} else {
					local.success++
				}
				if len(got) > 0 {
					arena.PutInt64s(got) // results are arena-backed, caller-owned
				}
			}
			progress.Store(cl, perClient)
			mu.Lock()
			total.success += local.success
			total.mismatch += local.mismatch
			total.failed += local.failed
			total.streamed += local.streamed
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	lifecycle.Wait()
	if killerr != nil {
		t.Fatal(killerr)
	}

	if total.mismatch > 0 {
		t.Fatalf("failover soak: %d corrupted results", total.mismatch)
	}
	if total.failed > 0 {
		t.Fatalf("failover soak: %d lost requests (want zero — failover must be invisible)", total.failed)
	}
	if total.success != clients*perClient {
		t.Fatalf("accounting: %d successes for %d requests", total.success, clients*perClient)
	}
	if 3*total.streamed < clients*perClient {
		t.Fatalf("only %d/%d requests streamed; the soak needs ≥ 1/3", total.streamed, clients*perClient)
	}

	var resumed, failedOver uint64
	for _, fc := range fcs {
		resumed += fc.Resumed()
		failedOver += fc.FailedOver()
		fc.Close()
	}
	if failedOver == 0 {
		t.Fatal("primary died but nothing was served by the standby")
	}
	if resumed == 0 {
		t.Fatal("primary died mid-soak but no stream resumed by token — the kill missed every stream window")
	}

	// Standby ledger: every session it served — fresh or resumed — must
	// have reached a terminal state once its front end drains.
	stbyNS.Close()
	sst := standby.Stats()
	if sst.Resumes == 0 {
		t.Fatalf("clients resumed %d streams but the standby recorded none: %v", resumed, sst)
	}
	if sst.StreamsActive != 0 || sst.StreamsOpened != sst.StreamsClosed+sst.StreamsFailed {
		t.Fatalf("standby stream ledger broken: %v", sst)
	}

	// Primary ledger: Close (after the Kill) waits out every orphaned
	// connection handler, each of which aborts its streams — so the
	// attachments the kill stranded all show up as Failed.
	primNS.Close()
	pst := primary.Stats()
	if pst.StreamsActive != 0 || pst.StreamsOpened != pst.StreamsClosed+pst.StreamsFailed {
		t.Fatalf("primary stream ledger broken: %v", pst)
	}

	// Arena ledger: with both fleets and all clients torn down, every
	// pooled buffer checked out anywhere in the soak came back.
	for i, w := range workers {
		w.Close()
		workers[i] = nil
	}
	deadline := time.Now().Add(5 * time.Second)
	var gets, puts uint64
	for {
		aa := arena.Stats()
		gets, puts = aa.Gets-arenaBefore.Gets, aa.Puts-arenaBefore.Puts
		if gets == puts || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gets != puts {
		t.Fatalf("arena ledger does not close: %d gets != %d puts (leaked %d buffers)", gets, puts, gets-puts)
	}
	t.Logf("failover soak: %+v; client resumed=%d failed_over=%d; primary %v; standby %v; arena gets=puts=%d",
		total, resumed, failedOver, pst, sst, gets)
}

// TestAdaptiveWeightsProperties pins the adaptive planner's weight
// model as properties over random fleets:
//
//   - an effective weight never exceeds its base and never drops below
//     floor × base (the measurement-trickle guarantee);
//   - the fastest measured worker always plans at full base weight;
//   - two measured workers above the floor split in inverse-latency
//     proportion (a k×-slower worker plans at 1/k weight);
//   - unmeasured workers (EWMA empty) plan at full base weight;
//   - after repeated observations of stable latencies the EWMA — and so
//     the weights — CONVERGE to those proportions from any start.
func TestAdaptiveWeightsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		nw := 1 + rng.Intn(6)
		floor := []float64{0.05, 0.1, 0.3, 0.9}[rng.Intn(4)]
		ws := make([]*worker, nw)
		lats := make([]float64, nw)
		minLat := 0.0
		for i := range ws {
			w := &worker{addr: fmt.Sprintf("w%d", i)}
			w.setWeight([]float64{0.25, 1, 1, 2, 8}[rng.Intn(5)])
			if rng.Intn(4) > 0 {
				lats[i] = float64(1 + rng.Intn(10_000))
				w.ewmaNs.Store(math.Float64bits(lats[i]))
				if minLat == 0 || lats[i] < minLat {
					minLat = lats[i]
				}
			}
			ws[i] = w
		}
		eff := effectiveWeights(ws, floor)
		for i, w := range ws {
			base := w.weight()
			if eff[i] > base*(1+1e-12) {
				t.Fatalf("trial %d: eff[%d]=%g exceeds base %g", trial, i, eff[i], base)
			}
			if eff[i] < floor*base*(1-1e-12) {
				t.Fatalf("trial %d: eff[%d]=%g below floor %g×%g", trial, i, eff[i], floor, base)
			}
			switch {
			case lats[i] == 0, lats[i] == minLat:
				if eff[i] != base {
					t.Fatalf("trial %d: unmeasured/fastest worker %d scaled to %g (base %g)", trial, i, eff[i], base)
				}
			default:
				want := minLat / lats[i]
				if want < floor {
					want = floor
				}
				if got := eff[i] / base; math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: eff[%d]/base=%g, want inverse-latency %g", trial, i, got, want)
				}
			}
		}
	}

	// Convergence: whatever the EWMA starts at, feeding stable latencies
	// drives the weight ratio to the inverse-latency ratio.
	fast, slow := testWorkers(1, 1)[0], testWorkers(1, 1)[1]
	fast.ewmaNs.Store(math.Float64bits(5000)) // starts looking slow
	for i := 0; i < 100; i++ {
		fast.recordLatency(100)
		slow.recordLatency(1000)
	}
	eff := effectiveWeights([]*worker{fast, slow}, 0.01)
	if eff[0] != 1 {
		t.Fatalf("fast worker did not converge to full weight: %g", eff[0])
	}
	if math.Abs(eff[1]-0.1) > 0.01 {
		t.Fatalf("10×-slower worker converged to %g, want ≈ 0.1", eff[1])
	}
	// And the floor still binds after convergence.
	eff = effectiveWeights([]*worker{fast, slow}, 0.5)
	if eff[1] != 0.5 {
		t.Fatalf("floor 0.5 should clamp the slow worker's weight: got %g", eff[1])
	}
}

// TestAdaptiveWeightsReactToSlowWorker is the acceptance check: slow
// one worker 10× via its TARGETED chaos point
// (fault.ClusterWorkerSlow + ":" + addr), and the coordinator's planned
// share for it must drop measurably — visible in WorkerStats — then
// recover after the point is disarmed, because the weight floor kept a
// trickle of work (and therefore measurements) flowing.
func TestAdaptiveWeightsReactToSlowWorker(t *testing.T) {
	addrs := startWorkers(t, 2, serve.Config{MaxWait: 50 * time.Microsecond})
	faults := fault.New(5)
	c := newCoord(t, Config{
		Workers:       addrs,
		MinShardElems: 64,
		MaxPieceElems: 1 << 14,
		WeightFloor:   0.1,
		Faults:        faults,
	})
	ctx := context.Background()
	spec := serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}
	data := make([]int64, 8000)
	for i := range data {
		data[i] = int64(i % 17)
	}
	run := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			res, err := c.Scan(ctx, spec, data, "")
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			arena.PutInt64s(res)
		}
	}
	share := func(since []WorkerStat) float64 {
		ws := c.WorkerStats()
		d0 := ws[0].PlannedElems - since[0].PlannedElems
		d1 := ws[1].PlannedElems - since[1].PlannedElems
		return float64(d1) / float64(d0+d1)
	}

	run(10) // warm both EWMAs at equal speed
	before := c.WorkerStats()
	run(20)
	if s := share(before); s < 0.3 || s > 0.7 {
		t.Fatalf("healthy fleet split %.2f, want ≈ 0.5", s)
	}

	// Slow worker 1 only: every attempt on it eats a 3ms sleep, 10×+ its
	// real service time at this size.
	faults.ArmSleep(fault.ClusterWorkerSlow+":"+addrs[1], 1, 3*time.Millisecond)
	run(30) // let the EWMA see the new reality
	before = c.WorkerStats()
	run(20)
	slowShare := share(before)
	if slowShare >= 0.25 {
		t.Fatalf("slowed worker still drawing %.2f of planned elements, want a measurable drop below 0.25", slowShare)
	}
	if slowShare <= 0 {
		t.Fatal("slowed worker starved outright — the weight floor must keep a trickle flowing")
	}
	ws := c.WorkerStats()
	if ws[1].EffWeight >= ws[1].Weight*0.5 {
		t.Fatalf("slowed worker's effective weight %.3f did not drop (base %.3f)", ws[1].EffWeight, ws[1].Weight)
	}
	if ws[1].EffWeight < ws[1].Weight*0.1*(1-1e-9) {
		t.Fatalf("effective weight %.3f fell through the 0.1 floor", ws[1].EffWeight)
	}

	// Disarm: the floor trickle keeps measuring, so the EWMA recovers
	// and the share climbs back.
	faults.Disarm(fault.ClusterWorkerSlow + ":" + addrs[1])
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		run(10)
		ws = c.WorkerStats()
		if ws[1].EffWeight > ws[1].Weight*0.7 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("slowed worker never recovered after disarm: eff=%.3f base=%.3f", ws[1].EffWeight, ws[1].Weight)
	}
	before = c.WorkerStats()
	run(20)
	if s := share(before); s < 0.3 {
		t.Fatalf("recovered worker's share %.2f did not climb back toward fair", s)
	}
}

// TestAnnounceJoinAndBeatEjection walks a worker through the
// auto-discovery lifecycle over the real wire: join a live fleet by
// heartbeat (no coordinator restart) and start drawing shards within a
// heartbeat interval; die and be ejected by heartbeat silence while
// in-flight pieces retry elsewhere; come back, beat again, and be
// readmitted.
func TestAnnounceJoinAndBeatEjection(t *testing.T) {
	const beatTTL = 150 * time.Millisecond
	staticAddrs := startWorkers(t, 1, serve.Config{MaxWait: 50 * time.Microsecond})
	c := newCoord(t, Config{
		Workers:       staticAddrs,
		MinShardElems: 64,
		MaxPieceElems: 1 << 14,
		HeartbeatTTL:  beatTTL,
		// EjectAfter is cranked up so the dead joiner can only leave via
		// HEARTBEAT silence — the path under test — while the scans that
		// keep hitting its corpse retry elsewhere without ejecting it.
		EjectAfter: 10_000,
		Retry:      serve.RetryPolicy{MaxAttempts: 6, BaseDelay: 500 * time.Microsecond, MaxDelay: 5 * time.Millisecond},
	})
	ns, err := serve.ListenBackend("127.0.0.1:0", c, serve.NetConfig{})
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	defer ns.Close()

	// The second worker starts OUTSIDE the fleet and announces itself
	// over the wire, exactly like scansd -announce.
	joiner, err := serve.ListenNet("127.0.0.1:0", serve.Config{MaxWait: 50 * time.Microsecond}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("joiner: %v", err)
	}
	defer func() {
		if joiner != nil {
			joiner.Close()
		}
	}()
	cli, err := serve.DialMaxLineProto(ns.Addr(), 0, serve.ProtoBin)
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	defer cli.Close()
	beat := func() {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := cli.Heartbeat(ctx, joiner.Addr(), 1, serve.ProtoBin, 0); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
	}

	ctx := context.Background()
	spec := serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}
	data := make([]int64, 6000)
	for i := range data {
		data[i] = int64(i % 13)
	}
	scanOK := func() {
		t.Helper()
		res, err := c.Scan(ctx, spec, data, "")
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		arena.PutInt64s(res)
	}
	scanOK()
	if got := len(c.WorkerStats()); got != 1 {
		t.Fatalf("fleet before join: %d workers, want 1", got)
	}

	// Join: one heartbeat admits the worker, and shards reach it on the
	// very next plans — well inside one heartbeat interval.
	beat()
	ws := c.WorkerStats()
	if len(ws) != 2 || !ws[1].Announced || !ws[1].Healthy {
		t.Fatalf("fleet after announce: %+v", ws)
	}
	if st := c.Stats(); st.Joins != 1 {
		t.Fatalf("joins=%d after one announce, want 1", st.Joins)
	}
	joinDeadline := time.Now().Add(beatTTL)
	for c.WorkerStats()[1].PlannedElems == 0 {
		if time.Now().After(joinDeadline) {
			t.Fatal("announced worker drew no shards within one heartbeat interval")
		}
		scanOK()
	}

	// Death: kill the joiner and stop beating. Scans keep succeeding the
	// whole way through — pieces planned onto the corpse fail at the
	// connection level and retry on the static worker — and heartbeat
	// silence ejects it.
	joinerAddr := joiner.Addr()
	joiner.Close()
	joiner = nil
	ejectDeadline := time.Now().Add(10 * beatTTL)
	for c.WorkerStats()[1].Healthy {
		if time.Now().After(ejectDeadline) {
			t.Fatal("silent announced worker was never ejected")
		}
		scanOK()
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); st.BeatEjections == 0 {
		t.Fatalf("ejection happened but BeatEjections=0: %v", st)
	}
	scanOK() // post-ejection sanity: plans route around the corpse

	// Rebirth on the same address: the next heartbeat IS the readmission.
	joiner, err = serve.ListenNet(joinerAddr, serve.Config{MaxWait: 50 * time.Microsecond}, serve.NetConfig{})
	if err != nil {
		t.Fatalf("resurrect joiner: %v", err)
	}
	beat()
	ws = c.WorkerStats()
	if !ws[1].Healthy {
		t.Fatalf("worker beat again but stayed ejected: %+v", ws)
	}
	if st := c.Stats(); st.Readmissions == 0 {
		t.Fatalf("readmission not counted: %v", st)
	}
	scanOK()
}

// TestHeartbeatFaultPoints exercises the lossy-control-plane chaos
// points: a fired cluster.heartbeat.drop eats the announcement inside
// the coordinator (acknowledged, never admitted), and a fired
// cluster.worker.joinstorm turns one announcement into eight concurrent
// admits that must collapse to exactly one registry entry.
func TestHeartbeatFaultPoints(t *testing.T) {
	faults := fault.New(9)
	c := newCoord(t, Config{Faults: faults}) // announce-only fleet

	faults.Arm(fault.ClusterHeartbeatDrop, 1)
	if err := c.Announce("127.0.0.1:9999", 1, "", 0); err != nil {
		t.Fatalf("dropped heartbeat must still ack: %v", err)
	}
	if got := len(c.WorkerStats()); got != 0 {
		t.Fatalf("dropped heartbeat admitted a worker: %d in fleet", got)
	}
	st := c.Stats()
	if st.Heartbeats != 1 || st.Joins != 0 {
		t.Fatalf("after dropped beat: heartbeats=%d joins=%d, want 1/0", st.Heartbeats, st.Joins)
	}
	faults.Disarm(fault.ClusterHeartbeatDrop)

	faults.Arm(fault.ClusterJoinStorm, 1)
	for i := 0; i < 3; i++ {
		if err := c.Announce("127.0.0.1:9999", 2, "", 0); err != nil {
			t.Fatalf("storm announce %d: %v", i, err)
		}
	}
	ws := c.WorkerStats()
	if len(ws) != 1 {
		t.Fatalf("join storm created %d registry entries for one address", len(ws))
	}
	if ws[0].Weight != 2 || !ws[0].Announced {
		t.Fatalf("stormed worker state wrong: %+v", ws[0])
	}
	if st := c.Stats(); st.Joins != 1 {
		t.Fatalf("join storm counted %d joins, want exactly 1", st.Joins)
	}

	// An announce-only fleet before its first join refuses scans typed.
	c2 := newCoord(t, Config{})
	if _, err := c2.Scan(context.Background(), serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive}, []int64{1}, ""); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("empty fleet scan: %v, want shard_failed", err)
	}
}

// TestStreamResumeRollback pins the session table's resume semantics
// in-process, case by case: exact re-attach, record rollback through
// the carry ring (client acks < record seq), standby-lag resume (client
// acks > record seq), theft (the displaced attachment's next push fails
// without touching the thief's record), rollback beyond the ring, abort
// vs close (detach vs delete), and TTL expiry of detached records —
// each ending in a bit-identical recomputation where one is possible.
func TestStreamResumeRollback(t *testing.T) {
	addrs := startWorkers(t, 2, serve.Config{MaxWait: 50 * time.Microsecond})
	c := newCoord(t, Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 128, ResumeTTL: 200 * time.Millisecond})
	ctx := context.Background()
	spec := serve.Spec{Op: serve.OpSum, Kind: serve.Inclusive, Dir: serve.Forward}
	rng := rand.New(rand.NewSource(21))
	const chunkN = 100
	const nChunks = ringSize + 4 // enough pushes to evict seq 0 from the ring
	data := randVec(rng, spec.Op, nChunks*chunkN)
	want := directSeg(spec, data, nil)
	chunk := func(k int) []int64 { return data[(k-1)*chunkN : k*chunkN] } // 1-based
	wantChunk := func(k int) []int64 { return want[(k-1)*chunkN : k*chunkN] }
	push := func(st serve.ScanStream, k int) []int64 {
		t.Helper()
		res, err := st.Push(ctx, chunk(k))
		if err != nil {
			t.Fatalf("push chunk %d: %v", k, err)
		}
		return res
	}

	st, err := c.OpenScanStream(spec, "")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	token := st.(serve.TokenStream).ResumeToken()
	if token == "" {
		t.Fatal("coordinator stream advertised no resume token")
	}
	for k := 1; k <= 3; k++ {
		push(st, k)
	}

	// Exact resume at the record's seq: continues at chunk 4 and STEALS
	// the session — the old attachment's next push must fail typed
	// without disturbing the thief.
	st2, from, err := c.ResumeScanStream(token, 3)
	if err != nil {
		t.Fatalf("resume@3: %v", err)
	}
	if from != 4 {
		t.Fatalf("resume@3: from=%d, want 4", from)
	}
	if _, err := st.Push(ctx, chunk(4)); !errors.Is(err, serve.ErrStreamFailed) {
		t.Fatalf("displaced attachment push: %v, want stream_failed", err)
	}
	if got := push(st2, 4); !reflect.DeepEqual(got, wantChunk(4)) {
		t.Fatalf("chunk 4 after theft diverged from reference")
	}

	// Record rollback: the client lost acks 4 (just computed) — resume
	// with lastAcked=3 rolls the record back through the ring and chunk 4
	// recomputes bit-identically.
	st3, from, err := c.ResumeScanStream(token, 3)
	if err != nil {
		t.Fatalf("resume rollback: %v", err)
	}
	if from != 4 {
		t.Fatalf("rollback resume: from=%d, want 4", from)
	}
	if got := push(st3, 4); !reflect.DeepEqual(got, wantChunk(4)) {
		t.Fatalf("rolled-back chunk 4 diverged from reference")
	}

	// Standby lag: the client claims MORE acks than the record has seen
	// (this replica missed the tail of the feed). The server resumes from
	// its own seq; the client rewinds and resends.
	st4, from, err := c.ResumeScanStream(token, 9)
	if err != nil {
		t.Fatalf("lag resume: %v", err)
	}
	if from != 5 {
		t.Fatalf("lag resume: from=%d, want server's seq+1=5", from)
	}
	for k := 5; k <= nChunks; k++ {
		if got := push(st4, k); !reflect.DeepEqual(got, wantChunk(k)) {
			t.Fatalf("chunk %d diverged from reference", k)
		}
	}

	// Rollback beyond the ring: after nChunks > ringSize pushes the
	// (seq 0) entry has been evicted, so lastAcked=0 must refuse typed
	// rather than corrupt the carry.
	if _, _, err := c.ResumeScanStream(token, 0); !errors.Is(err, serve.ErrNoStream) {
		t.Fatalf("resume beyond ring: %v, want no_stream", err)
	}
	if st := c.Stats(); st.ResumeMisses == 0 {
		t.Fatalf("ring-miss not counted: %v", st)
	}

	// Clean close deletes the record: the token is dead.
	if _, err := st4.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, _, err := c.ResumeScanStream(token, nChunks); !errors.Is(err, serve.ErrNoStream) {
		t.Fatalf("resume after close: %v, want no_stream", err)
	}

	// Abort detaches instead of deleting: the record survives for
	// ResumeTTL, then the janitor reaps it.
	st5, err := c.OpenScanStream(spec, "")
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	token5 := st5.(serve.TokenStream).ResumeToken()
	push(st5, 1)
	st5.Abort(errors.New("connection died"))
	st6, from, err := c.ResumeScanStream(token5, 1)
	if err != nil {
		t.Fatalf("resume after abort: %v", err)
	}
	if from != 2 {
		t.Fatalf("resume after abort: from=%d, want 2", from)
	}
	if got := push(st6, 2); !reflect.DeepEqual(got, wantChunk(2)) {
		t.Fatalf("post-abort chunk 2 diverged from reference")
	}
	st6.Abort(errors.New("connection died again"))
	// Poll the table directly — a probe resume would re-attach the record
	// and reset its clock, which is exactly the behavior under test.
	expireDeadline := time.Now().Add(5 * time.Second)
	for {
		c.sessions.mu.Lock()
		_, present := c.sessions.recs[token5]
		c.sessions.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(expireDeadline) {
			t.Fatal("detached record never expired past ResumeTTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, _, err := c.ResumeScanStream(token5, 2); !errors.Is(err, serve.ErrNoStream) {
		t.Fatalf("resume after expiry: %v, want no_stream", err)
	}
}

// TestReplicationMirrorsSessions drives the replication feed directly:
// a standby following a primary converges to the primary's session
// records (puts and upds), a resume ON THE STANDBY picks up exactly
// where the primary's stream left off with bit-identical output, and a
// clean close on the primary deletes the record everywhere.
func TestReplicationMirrorsSessions(t *testing.T) {
	addrs := startWorkers(t, 2, serve.Config{MaxWait: 50 * time.Microsecond})
	primary := newCoord(t, Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 128, ReplListen: "127.0.0.1:0"})
	standby := newCoord(t, Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 128, Follow: primary.ReplAddr()})

	ctx := context.Background()
	spec := serve.Spec{Op: serve.OpMul, Kind: serve.Exclusive, Dir: serve.Forward}
	rng := rand.New(rand.NewSource(31))
	const chunkN = 80
	data := randVec(rng, spec.Op, 6*chunkN)
	want := directSeg(spec, data, nil)

	st, err := primary.OpenScanStream(spec, "tenant-r")
	if err != nil {
		t.Fatalf("open on primary: %v", err)
	}
	token := st.(serve.TokenStream).ResumeToken()
	for k := 0; k < 3; k++ {
		if _, err := st.Push(ctx, data[k*chunkN:(k+1)*chunkN]); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
	}

	// The standby's replica must converge to (seq=3, primary's carry).
	waitReplica := func(wantSeq uint64) *sessionRecord {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			standby.sessions.mu.Lock()
			rec := standby.sessions.recs[token]
			var seq uint64
			if rec != nil {
				seq = rec.seq
			}
			standby.sessions.mu.Unlock()
			if rec != nil && seq == wantSeq {
				return rec
			}
			if time.Now().After(deadline) {
				t.Fatalf("standby never converged to seq %d for token %s", wantSeq, token)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	rec := waitReplica(3)
	standby.sessions.mu.Lock()
	gotSpec, gotTenant := rec.spec, rec.tenant
	standby.sessions.mu.Unlock()
	if gotSpec != spec || gotTenant != "tenant-r" {
		t.Fatalf("replica record mangled: spec=%v tenant=%q", gotSpec, gotTenant)
	}

	// Resume on the standby: the remaining chunks come out bit-identical
	// to the unbroken reference.
	st2, from, err := standby.ResumeScanStream(token, 3)
	if err != nil {
		t.Fatalf("resume on standby: %v", err)
	}
	if from != 4 {
		t.Fatalf("standby resume: from=%d, want 4", from)
	}
	for k := 3; k < 6; k++ {
		got, err := st2.Push(ctx, data[k*chunkN:(k+1)*chunkN])
		if err != nil {
			t.Fatalf("standby push %d: %v", k, err)
		}
		if !reflect.DeepEqual(got, want[k*chunkN:(k+1)*chunkN]) {
			t.Fatalf("standby chunk %d diverged from reference", k)
		}
	}
	if _, err := st2.Close(); err != nil {
		t.Fatalf("standby close: %v", err)
	}
	if sst := standby.Stats(); sst.Resumes != 1 {
		t.Fatalf("standby resume not counted: %v", sst)
	}

	// A fresh primary session closed cleanly must vanish from the standby
	// (the del replicates).
	st3, err := primary.OpenScanStream(spec, "")
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	token3 := st3.(serve.TokenStream).ResumeToken()
	if _, err := st3.Push(ctx, data[:chunkN]); err != nil {
		t.Fatalf("push: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		standby.sessions.mu.Lock()
		_, present := standby.sessions.recs[token3]
		standby.sessions.mu.Unlock()
		if present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second record never replicated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := st3.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for {
		standby.sessions.mu.Lock()
		_, present := standby.sessions.recs[token3]
		standby.sessions.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("closed record never deleted from the standby")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
