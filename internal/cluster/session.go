package cluster

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scans/internal/serve"
)

// Stream-session durability: every coordinator stream gets a session
// record — (spec, tenant, chunk count, running carry) plus a short ring
// of recent (seq, carry) pairs — keyed by an unguessable resume token.
// The record is what a stream IS, minus the TCP connection: the carry
// algebra means re-attaching at chunk k needs exactly the carry after
// chunk k and nothing else, so a client that lost its connection (or
// its whole coordinator) resumes bit-identically from the record.
//
// Records replicate to standby coordinators over a tiny newline-JSON
// feed (replServer/follower below): "reset" + full snapshot on connect,
// then live put/upd/del. The ring is why a LAGGING standby still works:
// the client may hold acks the standby never saw (resume rolls the
// client back — rewind is always safe, results are recomputed
// bit-identically) and the standby may hold state for chunks whose acks
// the client never received (the ring rolls the RECORD back, up to
// serve.StreamWindow chunks — the most that can ever be in flight under
// the credit window).
//
// Lock ordering: sessionTable.mu is the INNER lock — coordStream
// methods hold their own st.mu while calling into the table, never the
// reverse. resume() touches only the table and builds the new stream
// before anyone else can see it.

// ringSize bounds the per-record rollback ring. A client honoring the
// credit window has at most serve.StreamWindow unacked chunks in
// flight, so StreamWindow+1 entries (including the pre-first-chunk
// state) cover every reachable rollback.
const ringSize = serve.StreamWindow + 1

type carryEntry struct {
	Seq   uint64 `json:"s"`
	Carry int64  `json:"c"`
}

// sessionRecord is one stream's durable state. owner non-nil means a
// live coordStream on THIS coordinator is attached; nil means detached
// (connection died, or the record is a replica) and resumable until
// deadline.
type sessionRecord struct {
	token  string
	spec   serve.Spec
	tenant string

	seq      uint64 // chunks applied
	carry    int64  // carry after chunk seq
	ring     []carryEntry // ascending seq, ends at (seq, carry)
	owner    *coordStream
	deadline time.Time // expiry while detached; zero while owned
}

// replEvent is one line of the replication feed.
type replEvent struct {
	Kind   string       `json:"k"` // "reset", "put", "upd", "del"
	Token  string       `json:"t,omitempty"`
	Op     string       `json:"op,omitempty"`
	SKind  string       `json:"kind,omitempty"`
	Dir    string       `json:"dir,omitempty"`
	Tenant string       `json:"tn,omitempty"`
	Seq    uint64       `json:"s,omitempty"`
	Carry  int64        `json:"c,omitempty"`
	Ring   []carryEntry `json:"r,omitempty"`
}

// replSub is one connected follower on the publishing side.
type replSub struct {
	conn net.Conn
	ch   chan []byte // encoded lines; overflow kills the sub (follower resyncs)
	quit chan struct{}
	once sync.Once
}

func (s *replSub) kill() {
	s.once.Do(func() {
		close(s.quit)
		s.conn.Close()
	})
}

// sessionTable holds every record this coordinator knows — its own and
// replicas — plus the replication subscriber set.
type sessionTable struct {
	ttl   time.Duration
	stats *coordStats

	mu   sync.Mutex
	recs map[string]*sessionRecord
	subs map[*replSub]struct{}

	quit chan struct{}
	done chan struct{}
}

func newSessionTable(ttl time.Duration, stats *coordStats) *sessionTable {
	t := &sessionTable{
		ttl:   ttl,
		stats: stats,
		recs:  make(map[string]*sessionRecord),
		subs:  make(map[*replSub]struct{}),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go t.janitor()
	return t
}

// newToken mints a resume token: 128 random bits, hex. Unguessable, so
// holding a token IS the resume capability.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cluster: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// register creates the record for a freshly opened stream and returns
// its token.
func (t *sessionTable) register(st *coordStream) string {
	tok := newToken()
	rec := &sessionRecord{
		token:  tok,
		spec:   st.spec,
		tenant: st.tenant,
		carry:  st.carry,
		ring:   []carryEntry{{Seq: 0, Carry: st.carry}},
		owner:  st,
	}
	t.mu.Lock()
	t.recs[tok] = rec
	t.broadcastLocked(putEvent(rec))
	t.mu.Unlock()
	return tok
}

func putEvent(rec *sessionRecord) replEvent {
	ring := make([]carryEntry, len(rec.ring))
	copy(ring, rec.ring)
	return replEvent{
		Kind:   "put",
		Token:  rec.token,
		Op:     rec.spec.OpString(), // "user:<name>" for user ops — ParseSpec round-trips it
		SKind:  rec.spec.Kind.String(),
		Dir:    rec.spec.Dir.String(),
		Tenant: rec.tenant,
		Seq:    rec.seq,
		Carry:  rec.carry,
		Ring:   ring,
	}
}

// advance records chunk seq's carry on behalf of st. Returns false when
// st no longer owns the record — the session was resumed elsewhere
// while st's chunk was in flight — in which case st must fail itself
// and leave the record alone.
func (t *sessionTable) advance(st *coordStream, seq uint64, carry int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.recs[st.token]
	if rec == nil || rec.owner != st {
		return false
	}
	rec.seq, rec.carry = seq, carry
	rec.ring = append(rec.ring, carryEntry{Seq: seq, Carry: carry})
	if len(rec.ring) > ringSize {
		rec.ring = rec.ring[len(rec.ring)-ringSize:]
	}
	t.broadcastLocked(replEvent{Kind: "upd", Token: st.token, Seq: seq, Carry: carry})
	return true
}

// detach releases st's ownership without deleting the record: the
// carrying connection died, so the session becomes resumable until the
// TTL. No-op if st was already displaced by a resume.
func (t *sessionTable) detach(st *coordStream) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.recs[st.token]
	if rec == nil || rec.owner != st {
		return
	}
	rec.owner = nil
	rec.deadline = time.Now().Add(t.ttl)
}

// removeOwned deletes st's record — clean close, failed chunk, or idle
// expiry all end the session everywhere (the delete replicates). No-op
// if st was displaced by a resume: the thief's session must survive.
func (t *sessionTable) removeOwned(st *coordStream) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.recs[st.token]
	if rec == nil || rec.owner != st {
		return
	}
	delete(t.recs, st.token)
	t.broadcastLocked(replEvent{Kind: "del", Token: st.token})
}

// resume re-attaches a client to a record, STEALING ownership from any
// stream still attached (the thief's claim — a live client holding the
// token — outranks a stream whose connection is presumed dead; if that
// stream is in fact still running, its next advance returns false and
// it fails harmlessly). Returns the new stream and resumeFrom, the
// 1-based index of the next chunk expected.
//
// Three cases against lastAcked, the client's count of acked chunks:
//   - lastAcked == rec.seq: exact agreement; resume from seq+1.
//   - lastAcked > rec.seq: this replica lagged the acks (standby never
//     saw the primary's last upds). Resume from OUR seq+1; the client
//     rewinds its output and resends — recomputation is bit-identical.
//   - lastAcked < rec.seq: the record ran ahead of the acks the client
//     received (acks lost with the dying connection). Roll the record
//     back via the ring to exactly lastAcked.
func (t *sessionTable) resume(c *Coordinator, token string, lastAcked uint64) (*coordStream, uint64, error) {
	t.mu.Lock()
	rec := t.recs[token]
	if rec == nil {
		t.mu.Unlock()
		t.stats.resumeMisses.Add(1)
		return nil, 0, fmt.Errorf("%w: unknown or expired resume token", serve.ErrNoStream)
	}
	if lastAcked < rec.seq {
		ok := false
		for _, e := range rec.ring {
			if e.Seq == lastAcked {
				rec.seq, rec.carry = e.Seq, e.Carry
				ok = true
				break
			}
		}
		if !ok {
			// The rollback point left the ring — only possible for a
			// client that overran the credit window. Refuse rather than
			// corrupt the carry.
			t.mu.Unlock()
			t.stats.resumeMisses.Add(1)
			return nil, 0, fmt.Errorf("%w: resume point %d is beyond the rollback ring", serve.ErrNoStream, lastAcked)
		}
		for len(rec.ring) > 0 && rec.ring[len(rec.ring)-1].Seq > rec.seq {
			rec.ring = rec.ring[:len(rec.ring)-1]
		}
		t.broadcastLocked(replEvent{Kind: "upd", Token: token, Seq: rec.seq, Carry: rec.carry})
	}
	spec := rec.spec
	if spec.Op == serve.OpUser && spec.Binding() == nil {
		// A replicated (or follower-rebuilt) record carries the spec as
		// strings, so a user op arrives UNBOUND — bind it against THIS
		// coordinator's registry now. No registration here means the
		// session cannot continue (each coordinator's registry is its
		// own); that is a resume miss, not a corrupt stream.
		var err error
		spec, err = c.resolveSpec(spec, rec.tenant)
		if err != nil {
			t.mu.Unlock()
			t.stats.resumeMisses.Add(1)
			return nil, 0, fmt.Errorf("%w: session's user op is not registered on this coordinator: %v",
				serve.ErrNoStream, err)
		}
	}
	st := &coordStream{
		c:      c,
		spec:   spec,
		tenant: rec.tenant,
		token:  token,
		carry:  rec.carry,
		seq:    rec.seq,
	}
	rec.owner = st
	rec.deadline = time.Time{}
	from := rec.seq + 1
	t.mu.Unlock()
	return st, from, nil
}

// broadcastLocked fans one event to every subscriber (t.mu held). A
// subscriber whose channel is full is killed — it will reconnect and
// resync from a fresh snapshot, which is cheaper than ever blocking the
// serving path on a slow follower.
func (t *sessionTable) broadcastLocked(ev replEvent) {
	if len(t.subs) == 0 {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	for sub := range t.subs {
		select {
		case sub.ch <- line:
		default:
			delete(t.subs, sub)
			sub.kill()
		}
	}
}

// applyReplicated applies one event from the upstream feed. Locally
// OWNED records are never touched: once this coordinator resumed a
// session, its own state outranks a stale primary's.
func (t *sessionTable) applyReplicated(ev replEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Kind {
	case "reset":
		// Fresh snapshot incoming: drop every replica record (the puts
		// that follow rebuild them); keep owned ones.
		for tok, rec := range t.recs {
			if rec.owner == nil {
				delete(t.recs, tok)
			}
		}
	case "put":
		if old := t.recs[ev.Token]; old != nil && old.owner != nil {
			return
		}
		spec, err := serve.ParseSpec(ev.Op, ev.SKind, ev.Dir)
		if err != nil {
			return
		}
		ring := ev.Ring
		if len(ring) == 0 {
			ring = []carryEntry{{Seq: ev.Seq, Carry: ev.Carry}}
		}
		t.recs[ev.Token] = &sessionRecord{
			token:    ev.Token,
			spec:     spec,
			tenant:   ev.Tenant,
			seq:      ev.Seq,
			carry:    ev.Carry,
			ring:     ring,
			deadline: time.Now().Add(t.ttl),
		}
		t.broadcastLocked(ev) // chained standbys see the same feed
	case "upd":
		rec := t.recs[ev.Token]
		if rec == nil || rec.owner != nil {
			return
		}
		rec.seq, rec.carry = ev.Seq, ev.Carry
		// The upstream may be replaying a rollback (its resume trimmed
		// the ring); mirror by trimming anything at or past the new seq
		// before appending.
		for len(rec.ring) > 0 && rec.ring[len(rec.ring)-1].Seq >= ev.Seq {
			rec.ring = rec.ring[:len(rec.ring)-1]
		}
		rec.ring = append(rec.ring, carryEntry{Seq: ev.Seq, Carry: ev.Carry})
		if len(rec.ring) > ringSize {
			rec.ring = rec.ring[len(rec.ring)-ringSize:]
		}
		rec.deadline = time.Now().Add(t.ttl)
		t.broadcastLocked(ev)
	case "del":
		if rec := t.recs[ev.Token]; rec != nil && rec.owner == nil {
			delete(t.recs, ev.Token)
			t.broadcastLocked(ev)
		}
	}
}

// janitor reaps detached records whose deadline passed: a session
// nobody resumed within ResumeTTL is gone for good.
func (t *sessionTable) janitor() {
	defer close(t.done)
	period := t.ttl / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-t.quit:
			return
		case <-tick.C:
			now := time.Now()
			t.mu.Lock()
			for tok, rec := range t.recs {
				if rec.owner == nil && !rec.deadline.IsZero() && now.After(rec.deadline) {
					delete(t.recs, tok)
					t.broadcastLocked(replEvent{Kind: "del", Token: tok})
				}
			}
			t.mu.Unlock()
		}
	}
}

// addSub registers a fresh follower connection: under one lock hold it
// queues the reset marker plus a put for every record, so the follower
// sees an atomic snapshot with live events strictly after it.
func (t *sessionTable) addSub(conn net.Conn) *replSub {
	t.mu.Lock()
	defer t.mu.Unlock()
	sub := &replSub{
		conn: conn,
		ch:   make(chan []byte, len(t.recs)+4096),
		quit: make(chan struct{}),
	}
	if line, err := json.Marshal(replEvent{Kind: "reset"}); err == nil {
		sub.ch <- append(line, '\n')
	}
	for _, rec := range t.recs {
		if line, err := json.Marshal(putEvent(rec)); err == nil {
			sub.ch <- append(line, '\n')
		}
	}
	t.subs[sub] = struct{}{}
	return sub
}

func (t *sessionTable) dropSub(sub *replSub) {
	t.mu.Lock()
	delete(t.subs, sub)
	t.mu.Unlock()
	sub.kill()
}

// close stops the janitor and kills every subscriber.
func (t *sessionTable) close() {
	close(t.quit)
	<-t.done
	t.mu.Lock()
	subs := make([]*replSub, 0, len(t.subs))
	for sub := range t.subs {
		subs = append(subs, sub)
	}
	t.subs = map[*replSub]struct{}{}
	t.mu.Unlock()
	for _, sub := range subs {
		sub.kill()
	}
}

// replServer publishes the session feed (Config.ReplListen).
type replServer struct {
	ln   net.Listener
	tbl  *sessionTable
	quit chan struct{}
	wg   sync.WaitGroup
}

func startReplServer(addr string, tbl *sessionTable) (*replServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rs := &replServer{ln: ln, tbl: tbl, quit: make(chan struct{})}
	rs.wg.Add(1)
	go rs.acceptLoop()
	return rs, nil
}

func (rs *replServer) addr() string { return rs.ln.Addr().String() }

func (rs *replServer) acceptLoop() {
	defer rs.wg.Done()
	for {
		conn, err := rs.ln.Accept()
		if err != nil {
			select {
			case <-rs.quit:
				return
			default:
				continue
			}
		}
		sub := rs.tbl.addSub(conn)
		rs.wg.Add(2)
		go rs.writeLoop(sub)
		go func() {
			// Followers never send; a read returning means the conn died,
			// which unblocks a writeLoop idling on an empty channel.
			defer rs.wg.Done()
			io.Copy(io.Discard, conn)
			rs.tbl.dropSub(sub)
		}()
	}
}

func (rs *replServer) writeLoop(sub *replSub) {
	defer rs.wg.Done()
	defer rs.tbl.dropSub(sub)
	for {
		select {
		case <-sub.quit:
			return
		case line := <-sub.ch:
			if _, err := sub.conn.Write(line); err != nil {
				return
			}
		}
	}
}

func (rs *replServer) close() {
	close(rs.quit)
	rs.ln.Close()
	rs.tbl.close() // kills subs, unblocking write loops
	rs.wg.Wait()
}

// follower mirrors a primary's feed into the local table
// (Config.Follow). It redials forever — a standby's whole job is to
// outlive the primary, so a dead feed is an expected state, not an
// error.
type follower struct {
	addr string
	tbl  *sessionTable
	quit chan struct{}
	done chan struct{}
}

func startFollower(addr string, tbl *sessionTable) *follower {
	f := &follower{addr: addr, tbl: tbl, quit: make(chan struct{}), done: make(chan struct{})}
	go f.loop()
	return f
}

const followRedial = 200 * time.Millisecond

func (f *follower) loop() {
	defer close(f.done)
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", f.addr, time.Second)
		if err != nil {
			select {
			case <-f.quit:
				return
			case <-time.After(followRedial):
			}
			continue
		}
		connDone := make(chan struct{})
		go func() {
			select {
			case <-f.quit:
				conn.Close()
			case <-connDone:
			}
		}()
		f.consume(conn)
		close(connDone)
		conn.Close()
	}
}

func (f *follower) consume(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev replEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return // torn feed: drop the conn and resync
		}
		f.tbl.applyReplicated(ev)
	}
}

func (f *follower) close() {
	close(f.quit)
	<-f.done
}
