package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/fault"
	"scans/internal/serve"
)

// startXchgWorkers is startWorkers with a non-default NetConfig — the
// exchange tests need each worker's own fault.Set (to kill carry
// rounds server-side) and a short round timeout (so an armed drop
// costs milliseconds, not the 2s production default).
func startXchgWorkers(t *testing.T, n int, cfg serve.Config, ncfg serve.NetConfig) ([]string, []*fault.Set) {
	t.Helper()
	addrs := make([]string, n)
	sets := make([]*fault.Set, n)
	for i := range addrs {
		wcfg := ncfg
		wcfg.Faults = fault.New(int64(i) + 1)
		sets[i] = wcfg.Faults
		ns, err := serve.ListenNet("127.0.0.1:0", cfg, wcfg)
		if err != nil {
			t.Fatalf("worker %d: ListenNet: %v", i, err)
		}
		t.Cleanup(ns.Close)
		addrs[i] = ns.Addr()
	}
	return addrs, sets
}

// TestExchangeMatchesSingleNode is the exchange plane's core contract:
// the same spec × size × segment-layout sweep as the star plane's
// TestClusterMatchesSingleNode, but with DataPlane "exchange" — every
// result bit-identical to the serial reference, every scan carried by
// the worker↔worker exchange (zero fallbacks), and the coordinator
// folding ZERO elements (CarryPrescanElems == 0, the whole point).
func TestExchangeMatchesSingleNode(t *testing.T) {
	addrs := startWorkers(t, 3, serve.Config{MaxWait: 50 * time.Microsecond})
	c := newCoord(t, Config{Workers: addrs, MinShardElems: 64, MaxPieceElems: 96, DataPlane: DataPlaneExchange})
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for _, spec := range clusterSpecs() {
		for _, n := range []int{1, 2, 63, 64, 191, 777, 2048} {
			for _, density := range []float64{0, 0.02, 0.3} {
				data := randVec(rng, spec.Op, n)
				flags := randFlags(rng, n, density)
				want := directSeg(spec, data, flags)
				got, err := c.ScanSegmented(ctx, spec, data, flags, "test")
				if err != nil {
					t.Fatalf("%v n=%d density=%g: %v", spec, n, density, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v n=%d density=%g: exchange result diverges from single-node\n got %v\nwant %v",
						spec, n, density, got, want)
				}
			}
		}
	}
	st := c.Stats()
	if st.XchgRequests == 0 {
		t.Fatalf("exchange plane never engaged: %v", st)
	}
	if st.XchgFallbacks != 0 {
		t.Fatalf("healthy fleet fell back to star %d times: %v", st.XchgFallbacks, st)
	}
	if st.CarryPrescanElems != 0 {
		t.Fatalf("exchange mode still pre-folded %d elements at the coordinator: %v", st.CarryPrescanElems, st)
	}
	if st.Requests != st.Served {
		t.Fatalf("healthy-fleet sweep had failures: %v", st)
	}
}

// TestExchangeStreamCarry checks the seeded path: a streamed scan's
// cross-chunk carry must thread through the exchange as rank 0's Init
// and come out bit-identical to a one-shot of the concatenated data.
func TestExchangeStreamCarry(t *testing.T) {
	addrs := startWorkers(t, 3, serve.Config{MaxWait: 50 * time.Microsecond})
	c := newCoord(t, Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 64, DataPlane: DataPlaneExchange})
	rng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	for _, spec := range []serve.Spec{
		{Op: serve.OpSum, Kind: serve.Inclusive, Dir: serve.Forward},
		{Op: serve.OpSum, Kind: serve.Exclusive, Dir: serve.Forward},
		{Op: serve.OpMax, Kind: serve.Inclusive, Dir: serve.Forward},
		{Op: serve.OpMul, Kind: serve.Exclusive, Dir: serve.Forward},
	} {
		data := randVec(rng, spec.Op, 700)
		want := directSeg(spec, data, nil)
		got, err := streamScanCoord(ctx, c, spec, data, 1+rng.Intn(200), "stream")
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: streamed exchange scan diverges\n got %v\nwant %v", spec, got, want)
		}
	}
	if st := c.Stats(); st.XchgFallbacks != 0 || st.CarryPrescanElems != 0 {
		t.Fatalf("streamed exchange leaked onto the star plane: %v", st)
	}
}

// TestExchangePeerDeathFallsBack arms cluster.xchg.drop at probability
// 1 on every worker: every carry round dies, every exchange fails
// typed, and every scan must still answer — correctly — via the star
// fallback. The stats must show the failure was paid for (fallbacks
// recorded, coordinator prescan work resumed) and the workers must
// never have been ejected (xchg_failed proves liveness).
func TestExchangePeerDeathFallsBack(t *testing.T) {
	addrs, sets := startXchgWorkers(t, 3,
		serve.Config{MaxWait: 50 * time.Microsecond},
		serve.NetConfig{XchgRoundTimeout: 50 * time.Millisecond})
	for _, fs := range sets {
		fs.Arm(fault.ClusterXchgDrop, 1)
	}
	c := newCoord(t, Config{Workers: addrs, MinShardElems: 32, MaxPieceElems: 64, DataPlane: DataPlaneExchange})
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for _, spec := range clusterSpecs() {
		data := randVec(rng, spec.Op, 500)
		flags := randFlags(rng, 500, 0.05)
		want := directSeg(spec, data, flags)
		got, err := c.ScanSegmented(ctx, spec, data, flags, "test")
		if err != nil {
			t.Fatalf("%v: scan failed instead of falling back: %v", spec, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: fallback result diverges from single-node", spec)
		}
	}
	st := c.Stats()
	if st.XchgFallbacks == 0 {
		t.Fatalf("every exchange was sabotaged yet nothing fell back: %v", st)
	}
	if st.CarryPrescanElems == 0 {
		t.Fatalf("star fallback ran but recorded no prescan work: %v", st)
	}
	if st.Ejections != 0 {
		t.Fatalf("typed xchg_failed errors must not eject workers: %v", st)
	}
	if st.Requests != st.Served {
		t.Fatalf("fallback sweep had failures: %v", st)
	}
}

// TestExchangePeerMurderSoak is the exchange plane's survival exam:
// concurrent clients on an exchange-mode coordinator while one worker
// is murdered outright mid-soak (dead TCP endpoint — its peers' carry
// sends fail, its own pieces vanish) and later resurrected, with
// cluster.xchg.drop simmering on the survivors. Invariants: no lost
// requests, no corrupted results, the coordinator ledger closes, and
// the storm actually forced star fallbacks. scripts/check.sh runs this
// under -race.
func TestExchangePeerMurderSoak(t *testing.T) {
	const (
		nWorkers = 3
		clients  = 4
		seed     = 0xCAFE
	)
	perClient := 60
	if testing.Short() {
		perClient = 20
	}

	workerCfg := serve.Config{MaxWait: 50 * time.Microsecond, QueueAgeLimit: 500 * time.Millisecond}
	workerNcfg := serve.NetConfig{XchgRoundTimeout: 100 * time.Millisecond}
	workers := make([]*serve.NetServer, nWorkers)
	addrs := make([]string, nWorkers)
	for i := range workers {
		ncfg := workerNcfg
		ncfg.Faults = fault.New(seed + int64(i))
		ncfg.Faults.Arm(fault.ClusterXchgDrop, 0.02)
		ns, err := serve.ListenNet("127.0.0.1:0", workerCfg, ncfg)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = ns
		addrs[i] = ns.Addr()
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}()

	coord, err := New(Config{
		Workers:       addrs,
		MinShardElems: 64,
		MaxPieceElems: 128,
		DataPlane:     DataPlaneExchange,
		Retry:         serve.RetryPolicy{MaxAttempts: 8, BaseDelay: 500 * time.Microsecond, MaxDelay: 10 * time.Millisecond},
		HedgeAfter:    3 * time.Millisecond,
		EjectAfter:    3,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	specs := clusterSpecs()
	type tally struct {
		success, shardFailed, deadline, lost, mismatch int
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total tally
	)
	var lifecycle sync.WaitGroup
	lifecycle.Add(1)
	killAt := clients * perClient / 3
	reviveAt := 2 * clients * perClient / 3
	var progress sync.Map
	go func() {
		defer lifecycle.Done()
		sum := func() int {
			s := 0
			progress.Range(func(_, v any) bool { s += v.(int); return true })
			return s
		}
		for sum() < killAt {
			time.Sleep(2 * time.Millisecond)
		}
		workers[2].Close()
		workers[2] = nil
		for sum() < reviveAt {
			time.Sleep(2 * time.Millisecond)
		}
		ncfg := workerNcfg
		ncfg.Faults = fault.New(seed + 99)
		ns, err := serve.ListenNet(addrs[2], workerCfg, ncfg)
		if err != nil {
			t.Errorf("resurrect worker 2: %v", err)
			return
		}
		workers[2] = ns
	}()

	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl) + 400))
			var local tally
			for i := 0; i < perClient; i++ {
				progress.Store(cl, i)
				spec := specs[rng.Intn(len(specs))]
				n := 1 + rng.Intn(1500)
				data := randVec(rng, spec.Op, n)
				flags := randFlags(rng, n, []float64{0, 0.01, 0.2}[rng.Intn(3)])
				want := directSeg(spec, data, flags)
				sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				got, err := coord.ScanSegmented(sctx, spec, data, flags, fmt.Sprintf("client-%d", cl))
				cancel()
				switch {
				case err == nil:
					if !reflect.DeepEqual(got, want) {
						local.mismatch++
					} else {
						local.success++
					}
				case errors.Is(err, ErrShardFailed):
					local.shardFailed++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					local.deadline++
				default:
					t.Errorf("client %d scan %d: untyped error %v", cl, i, err)
					local.lost++
				}
			}
			progress.Store(cl, perClient)
			mu.Lock()
			total.success += local.success
			total.shardFailed += local.shardFailed
			total.deadline += local.deadline
			total.lost += local.lost
			total.mismatch += local.mismatch
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	lifecycle.Wait()

	if total.mismatch > 0 {
		t.Fatalf("exchange soak: %d corrupted results", total.mismatch)
	}
	if total.lost > 0 {
		t.Fatalf("exchange soak: %d requests without a typed terminal outcome", total.lost)
	}
	if got := total.success + total.shardFailed + total.deadline; got != clients*perClient {
		t.Fatalf("outcome accounting: %d outcomes for %d scans", got, clients*perClient)
	}
	if total.success == 0 {
		t.Fatal("exchange soak: nothing succeeded — storm too hot to mean anything")
	}
	st := coord.Stats()
	if st.XchgRequests == 0 {
		t.Fatalf("exchange plane never engaged: %v", st)
	}
	if st.XchgFallbacks == 0 {
		t.Fatalf("a murdered peer plus armed xchg.drop forced no fallbacks: %v", st)
	}
	if st.Requests != st.Served+st.ShardFailed+st.Deadline {
		t.Fatalf("coordinator ledger broken: %v", st)
	}
	t.Logf("exchange soak: success=%d shard_failed=%d deadline=%d xchg=%d fallbacks=%d",
		total.success, total.shardFailed, total.deadline, st.XchgRequests, st.XchgFallbacks)
}

// xchgFuzzFleet mirrors fuzzFleet for the exchange fuzz target: five
// workers started once per process, each with its own fault.Set so an
// iteration can arm cluster.xchg.drop on a subset of peers, and a short
// round timeout so a sabotaged exchange fails in milliseconds.
var xchgFuzzFleet struct {
	once  sync.Once
	addrs []string
	sets  []*fault.Set
	err   error
}

func xchgFuzzAddrs() ([]string, []*fault.Set, error) {
	xchgFuzzFleet.once.Do(func() {
		cfg := serve.Config{MaxWait: 20 * time.Microsecond}
		for i := 0; i < 5; i++ {
			fs := fault.New(int64(i) + 21)
			ns, err := serve.ListenNet("127.0.0.1:0", cfg, serve.NetConfig{
				XchgRoundTimeout: 30 * time.Millisecond,
				Faults:           fs,
			})
			if err != nil {
				xchgFuzzFleet.err = err
				return
			}
			xchgFuzzFleet.addrs = append(xchgFuzzFleet.addrs, ns.Addr())
			xchgFuzzFleet.sets = append(xchgFuzzFleet.sets, fs)
		}
	})
	return xchgFuzzFleet.addrs, xchgFuzzFleet.sets, xchgFuzzFleet.err
}

// FuzzExchangeMatchesStar is the exchange plane's contract as a fuzz
// target: for ANY vector, op/kind/dir, segment layout, worker count
// (1–5), shard/piece geometry, wire protocol, and injected carry-round
// deaths, an exchange-mode scan returns a result bit-identical to BOTH
// a star-mode scan over the same fleet and the serial single-node
// reference. Sabotaged exchanges must degrade to star invisibly — the
// workers are alive, so the scan itself may never fail (the only
// allowed escape is the iteration deadline). scripts/check.sh runs a
// timed burst of this under -race.
func FuzzExchangeMatchesStar(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0), uint8(2), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0, 0, 1})
	f.Add(uint8(1), uint8(0), uint8(1), uint8(4), uint8(0), []byte{255, 0, 17, 3, 200, 9}, []byte{})
	f.Add(uint8(2), uint8(1), uint8(1), uint8(0), uint8(3), []byte{128, 64, 32}, []byte{1})
	f.Add(uint8(3), uint8(0), uint8(0), uint8(1), uint8(4), []byte{7, 7, 7, 7, 7, 7, 7}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, opB, kindB, dirB, nwB, faultB uint8, raw, flagPat []byte) {
		addrs, sets, err := xchgFuzzAddrs()
		if err != nil {
			t.Skipf("fleet: %v", err)
		}
		spec := serve.Spec{
			Op:   []serve.Op{serve.OpSum, serve.OpMax, serve.OpMin, serve.OpMul}[opB%4],
			Kind: []serve.Kind{serve.Exclusive, serve.Inclusive}[kindB%2],
			Dir:  []serve.Dir{serve.Forward, serve.Backward}[dirB%2],
		}
		// Cap tighter than the star fuzz: a sabotaged exchange pays the
		// round timeout per surviving round, and piece count scales with
		// the vector, so huge vectors would starve the fuzz budget.
		if len(raw) > 256 {
			raw = raw[:256]
		}
		data := make([]int64, len(raw))
		for i, b := range raw {
			data[i] = int64(int8(b))
			if spec.Op == serve.OpMul {
				data[i] = 2*int64(b&1) - 1
			}
		}
		var flags []bool
		if len(flagPat) > 0 {
			flags = make([]bool, len(data))
			for i := range flags {
				flags[i] = flagPat[i%len(flagPat)]&1 == 1
			}
		}

		// faultB drives shard geometry, the wire protocol, and whether a
		// subset of workers sabotages carry rounds this iteration.
		if faultB%4 == 0 {
			for i, fs := range sets {
				if i%2 == int(faultB/4)%2 {
					fs.Arm(fault.ClusterXchgDrop, 0.2)
				}
			}
			defer func() {
				for _, fs := range sets {
					fs.DisarmAll()
				}
			}()
		}
		nw := 1 + int(nwB)%5
		proto := serve.ProtoBin
		if faultB%2 == 1 {
			proto = serve.ProtoJSON
		}
		base := Config{
			Workers:       addrs[:nw],
			Proto:         proto,
			MinShardElems: 1 + int(faultB%7),
			MaxPieceElems: 2 + int(faultB%13),
			Retry:         serve.RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
			EjectAfter:    4,
			ProbeInterval: 5 * time.Millisecond,
			ProbeTimeout:  200 * time.Millisecond,
		}
		xcfg := base
		xcfg.DataPlane = DataPlaneExchange
		xcoord, err := New(xcfg)
		if err != nil {
			t.Fatalf("New(exchange): %v", err)
		}
		defer xcoord.Close()
		scoord, err := New(base)
		if err != nil {
			t.Fatalf("New(star): %v", err)
		}
		defer scoord.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		got, err := xcoord.ScanSegmented(ctx, spec, data, flags, "fuzz")
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return
			}
			t.Fatalf("spec=%+v n=%d nw=%d: exchange scan failed (fallback must absorb peer deaths): %v",
				spec, len(data), nw, err)
		}
		want := directSeg(spec, data, flags)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spec=%+v n=%d nw=%d flags=%v: exchange diverges from single-node\n got %v\nwant %v",
				spec, len(data), nw, flags != nil, got, want)
		}
		star, err := scoord.ScanSegmented(ctx, spec, data, flags, "fuzz")
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return
			}
			t.Fatalf("spec=%+v n=%d nw=%d: star scan failed on a healthy fleet: %v", spec, len(data), nw, err)
		}
		if !reflect.DeepEqual(got, star) {
			t.Fatalf("spec=%+v n=%d nw=%d: exchange and star disagree\n xchg %v\n star %v",
				spec, len(data), nw, got, star)
		}
	})
}
