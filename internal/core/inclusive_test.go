package core

import (
	"reflect"
	"testing"
)

func TestInclusiveScans(t *testing.T) {
	m := New()
	a := []int{2, 1, 2, 3}
	dst := make([]int, 4)
	if total := PlusScanInclusive(m, dst, a); total != 8 {
		t.Errorf("total = %d, want 8", total)
	}
	if want := []int{2, 3, 5, 8}; !reflect.DeepEqual(dst, want) {
		t.Errorf("PlusScanInclusive = %v, want %v", dst, want)
	}
	MaxScanInclusive(m, dst, a)
	if want := []int{2, 2, 2, 3}; !reflect.DeepEqual(dst, want) {
		t.Errorf("MaxScanInclusive = %v, want %v", dst, want)
	}
	MinScanInclusive(m, dst, a)
	if want := []int{2, 1, 1, 1}; !reflect.DeepEqual(dst, want) {
		t.Errorf("MinScanInclusive = %v, want %v", dst, want)
	}
}

func TestSegInclusiveScans(t *testing.T) {
	m := New()
	a := []int{1, 2, 3, 4, 5}
	flags := []bool{true, false, true, false, false}
	dst := make([]int, 5)
	SegPlusScanInclusive(m, dst, a, flags)
	if want := []int{1, 3, 3, 7, 12}; !reflect.DeepEqual(dst, want) {
		t.Errorf("SegPlusScanInclusive = %v, want %v", dst, want)
	}
	SegMaxScanInclusive(m, dst, a, flags)
	if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(dst, want) {
		t.Errorf("SegMaxScanInclusive = %v, want %v", dst, want)
	}
	f := []float64{1, 2, 3, 4, 5}
	fdst := make([]float64, 5)
	SegFPlusScanInclusive(m, fdst, f, flags)
	if want := []float64{1, 3, 3, 7, 12}; !reflect.DeepEqual(fdst, want) {
		t.Errorf("SegFPlusScanInclusive = %v, want %v", fdst, want)
	}
}

func TestInclusiveEmptyAndCost(t *testing.T) {
	m := New()
	if got := PlusScanInclusive(m, nil, nil); got != 0 {
		t.Errorf("empty total = %d", got)
	}
	// Inclusive = exclusive + one elementwise pass: 2 steps on the scan
	// model.
	m.ResetCounters()
	PlusScanInclusive(m, make([]int, 100), make([]int, 100))
	if m.Steps() != 2 {
		t.Errorf("inclusive scan cost %d steps, want 2", m.Steps())
	}
}
