package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestSplitIndexFig3(t *testing.T) {
	// Figure 3: A = [5 7 3 1 4 2 7 2], Flags = [T T T T F F T F],
	// Index = [3 4 5 6 0 1 7 2], result = [4 2 2 5 7 3 1 7].
	m := New()
	flags := []bool{true, true, true, true, false, false, true, false}
	idx := make([]int, 8)
	SplitIndex(m, idx, flags)
	if want := []int{3, 4, 5, 6, 0, 1, 7, 2}; !reflect.DeepEqual(idx, want) {
		t.Errorf("SplitIndex = %v, want %v", idx, want)
	}
	a := []int{5, 7, 3, 1, 4, 2, 7, 2}
	got := make([]int, 8)
	falses := Split(m, got, a, flags)
	if want := []int{4, 2, 2, 5, 7, 3, 1, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("Split = %v, want %v", got, want)
	}
	if falses != 3 {
		t.Errorf("falses = %d, want 3", falses)
	}
}

func TestSplitStability(t *testing.T) {
	// Split must preserve order within both groups (the radix sort
	// depends on it). Tag each value with its original index.
	m := New()
	rng := rand.New(rand.NewSource(1))
	n := 257
	type tagged struct{ v, orig int }
	src := make([]tagged, n)
	flags := make([]bool, n)
	for i := range src {
		src[i] = tagged{rng.Intn(2), i}
		flags[i] = src[i].v == 1
	}
	dst := make([]tagged, n)
	boundary := Split(m, dst, src, flags)
	for i := 1; i < boundary; i++ {
		if dst[i].orig < dst[i-1].orig {
			t.Fatal("false group not order-preserving")
		}
	}
	for i := boundary + 1; i < n; i++ {
		if dst[i].orig < dst[i-1].orig {
			t.Fatal("true group not order-preserving")
		}
	}
	for i := 0; i < boundary; i++ {
		if dst[i].v != 0 {
			t.Fatal("false group contains a true element")
		}
	}
}

func TestSegSplitIndex(t *testing.T) {
	m := New()
	// Two segments: [a b c d] [e f]; flags within: [T F T F] [F T].
	segFlags := []bool{true, false, false, false, true, false}
	elems := []bool{true, false, true, false, false, true}
	idx := make([]int, 6)
	SegSplitIndex(m, idx, elems, segFlags)
	// Segment 0: falses b(1),d(3) -> 0,1; trues a(0),c(2) -> 2,3.
	// Segment 1: falses e(4) -> 4; trues f(5) -> 5.
	want := []int{2, 0, 3, 1, 4, 5}
	if !reflect.DeepEqual(idx, want) {
		t.Errorf("SegSplitIndex = %v, want %v", idx, want)
	}
}

func TestSegSplit3Index(t *testing.T) {
	m := New()
	// One segment; cmp = [G L E L G].
	segFlags := []bool{true, false, false, false, false}
	cmp := []Cmp3{Greater, Less, Equal, Less, Greater}
	idx := make([]int, 5)
	SegSplit3Index(m, idx, cmp, segFlags)
	// L: positions 1,3 -> 0,1. E: position 2 -> 2. G: positions 0,4 -> 3,4.
	want := []int{3, 0, 2, 1, 4}
	if !reflect.DeepEqual(idx, want) {
		t.Errorf("SegSplit3Index = %v, want %v", idx, want)
	}
}

func TestSegSplit3Random(t *testing.T) {
	// Property: applying the permutation sorts each segment by category
	// and preserves order within a category.
	m := New()
	rng := rand.New(rand.NewSource(7))
	n := 500
	segFlags := make([]bool, n)
	cmp := make([]Cmp3, n)
	for i := range cmp {
		segFlags[i] = rng.Intn(10) == 0
		cmp[i] = Cmp3(rng.Intn(3))
	}
	segFlags[0] = true
	idx := make([]int, n)
	SegSplit3Index(m, idx, cmp, segFlags)
	out := make([]Cmp3, n)
	outOrig := make([]int, n)
	orig := make([]int, n)
	for i := range orig {
		orig[i] = i
	}
	Permute(m, out, cmp, idx)
	Permute(m, outOrig, orig, idx)
	// Check each segment is L* E* G* and stable.
	segStart := 0
	for i := 1; i <= n; i++ {
		if i == n || segFlags[i] {
			seg := out[segStart:i]
			if !sort.SliceIsSorted(seg, func(a, b int) bool { return seg[a] < seg[b] }) {
				t.Fatalf("segment [%d,%d) not category-sorted: %v", segStart, i, seg)
			}
			for j := segStart + 1; j < i; j++ {
				if out[j] == out[j-1] && outOrig[j] < outOrig[j-1] {
					t.Fatalf("segment [%d,%d) not stable", segStart, i)
				}
			}
			segStart = i
		}
	}
}

func TestAllocateFig8(t *testing.T) {
	// Figure 8: A = [4 1 3]: Hpointers = [0 4 5],
	// Segment-flag = [1 0 0 0 1 1 0 0],
	// distribute([v1 v2 v3]) = [v1 v1 v1 v1 v2 v3 v3 v3].
	m := New()
	counts := []int{4, 1, 3}
	a := Allocate(m, counts)
	if a.Total != 8 {
		t.Fatalf("Total = %d, want 8", a.Total)
	}
	if want := []int{0, 4, 5}; !reflect.DeepEqual(a.HPointers, want) {
		t.Errorf("HPointers = %v, want %v", a.HPointers, want)
	}
	wantFlags := []bool{true, false, false, false, true, true, false, false}
	if !reflect.DeepEqual(a.Flags, wantFlags) {
		t.Errorf("Flags = %v, want %v", a.Flags, wantFlags)
	}
	dst := make([]string, 8)
	Distribute(m, a, dst, []string{"v1", "v2", "v3"}, counts)
	want := []string{"v1", "v1", "v1", "v1", "v2", "v3", "v3", "v3"}
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("Distribute = %v, want %v", dst, want)
	}
}

func TestAllocateZeroCounts(t *testing.T) {
	m := New()
	counts := []int{0, 3, 0, 2, 0}
	a := Allocate(m, counts)
	if a.Total != 5 {
		t.Fatalf("Total = %d, want 5", a.Total)
	}
	wantFlags := []bool{true, false, false, true, false}
	if !reflect.DeepEqual(a.Flags, wantFlags) {
		t.Errorf("Flags = %v, want %v", a.Flags, wantFlags)
	}
	dst := make([]int, 5)
	Distribute(m, a, dst, []int{-1, 20, -1, 30, -1}, counts)
	if want := []int{20, 20, 20, 30, 30}; !reflect.DeepEqual(dst, want) {
		t.Errorf("Distribute = %v, want %v", dst, want)
	}
}

func TestPackFig11(t *testing.T) {
	// Figure 11 semantics: flagged elements pack densely, order kept.
	m := New()
	f := []bool{true, false, false, false, true, true, false, true, true, true, true, true}
	src := make([]int, 12)
	for i := range src {
		src[i] = i
	}
	dst := make([]int, 12)
	count := Pack(m, dst, src, f)
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	if want := []int{0, 4, 5, 7, 8, 9, 10, 11}; !reflect.DeepEqual(dst[:count], want) {
		t.Errorf("Pack = %v, want %v", dst[:count], want)
	}
	if m.Counters().UsageCounts[UseLoadBalance] == 0 {
		t.Error("load-balance usage not recorded")
	}
}

func TestPackIndex(t *testing.T) {
	m := New()
	f := []bool{false, true, false, true}
	dst := make([]int, 4)
	count := PackIndex(m, dst, f)
	if count != 2 || dst[0] != 1 || dst[1] != 3 {
		t.Errorf("PackIndex = %v (count %d)", dst[:count], count)
	}
}

func TestLongVectorSimulationFig10(t *testing.T) {
	// Figure 10: [4 7 1 | 0 5 2 | 6 4 8 | 1 9 5] on 4 processors;
	// +-scan = [0 4 11 | 12 12 17 | 19 25 29 | 37 38 47].
	m := New(WithProcessors(4))
	a := []int{4, 7, 1, 0, 5, 2, 6, 4, 8, 1, 9, 5}
	got := make([]int, 12)
	PlusScan(m, got, a)
	want := []int{0, 4, 11, 12, 12, 17, 19, 25, 29, 37, 38, 47}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("long-vector +-scan = %v, want %v", got, want)
	}
}
