package core

import "scans/internal/scan"

// Compound vector operations of §2.2 and their segmented versions (§2.3).
// Every operation here costs O(1) program steps: a constant number of
// scans, permutes, and elementwise passes, all of which the machine
// charges individually.

// Enumerate writes into dst the number of true flags strictly before each
// position — "returns the integer i to the ith true element" (§2.2,
// Figure 1) — and returns the total number of true flags. Implemented by
// converting the flags to 0/1 and running a +-scan.
func Enumerate(m *Machine, dst []int, flags []bool) int {
	m.Use(UseEnumerate)
	n := len(flags)
	ones := make([]int, n)
	Par(m, n, func(i int) {
		if flags[i] {
			ones[i] = 1
		}
	})
	return PlusScan(m, dst, ones)
}

// BackEnumerate writes into dst the number of true flags strictly after
// each position, via a backward +-scan; used by split (Figure 3).
func BackEnumerate(m *Machine, dst []int, flags []bool) {
	m.Use(UseEnumerate)
	n := len(flags)
	ones := make([]int, n)
	Par(m, n, func(i int) {
		if flags[i] {
			ones[i] = 1
		}
	})
	BackPlusScan(m, dst, ones)
}

// Copy copies src[0] over all of dst (§2.2, Figure 1). The paper
// implements it by placing the identity in all but the first element and
// scanning; the machine charges one scan plus the fix-up pass.
func Copy[T any](m *Machine, dst, src []T) {
	m.Use(UseCopy)
	m.chargeScan(len(src))
	if len(src) == 0 {
		return
	}
	v := src[0]
	Par(m, len(dst), func(i int) { dst[i] = v })
}

// backCopy copies src[n-1] over all of dst: the "backward copy" that
// +-distribute uses (§2.2).
func backCopy[T any](m *Machine, dst, src []T) {
	m.chargeScan(len(src))
	if len(src) == 0 {
		return
	}
	v := src[len(src)-1]
	Par(m, len(dst), func(i int) { dst[i] = v })
}

// PlusDistribute gives every element the sum of all elements (§2.2,
// Figure 1) and returns that sum: a +-scan and a backward copy.
func PlusDistribute(m *Machine, dst, src []int) int {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	total := PlusScan(m, tmp, src)
	Par(m, len(tmp), func(i int) { tmp[i] += src[i] }) // inclusive fix-up
	backCopy(m, dst, tmp)
	return total
}

// MaxDistribute gives every element the maximum of all elements and
// returns it (MinIdentity for an empty vector).
func MaxDistribute(m *Machine, dst, src []int) int {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	MaxScan(m, tmp, src)
	Par(m, len(tmp), func(i int) {
		if src[i] > tmp[i] {
			tmp[i] = src[i]
		}
	})
	backCopy(m, dst, tmp)
	if len(tmp) == 0 {
		return MinIdentity
	}
	return tmp[len(tmp)-1]
}

// MinDistribute gives every element the minimum of all elements and
// returns it (MaxIdentity for an empty vector).
func MinDistribute(m *Machine, dst, src []int) int {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	MinScan(m, tmp, src)
	Par(m, len(tmp), func(i int) {
		if src[i] < tmp[i] {
			tmp[i] = src[i]
		}
	})
	backCopy(m, dst, tmp)
	if len(tmp) == 0 {
		return MaxIdentity
	}
	return tmp[len(tmp)-1]
}

// AndDistribute reports whether every flag is true, distributed to all
// positions of dst (the quicksort §2.3.1 sortedness check).
func AndDistribute(m *Machine, dst, src []bool) bool {
	m.Use(UseDistribute)
	tmp := make([]bool, len(src))
	AndScan(m, tmp, src)
	Par(m, len(tmp), func(i int) { tmp[i] = tmp[i] && src[i] })
	backCopy(m, dst, tmp)
	return len(tmp) == 0 || tmp[len(tmp)-1]
}

// OrDistribute reports whether any flag is true, distributed to all
// positions of dst.
func OrDistribute(m *Machine, dst, src []bool) bool {
	m.Use(UseDistribute)
	tmp := make([]bool, len(src))
	OrScan(m, tmp, src)
	Par(m, len(tmp), func(i int) { tmp[i] = tmp[i] || src[i] })
	backCopy(m, dst, tmp)
	return len(tmp) > 0 && tmp[len(tmp)-1]
}

// --- Segmented compound operations. ---

// SegRank writes each element's 0-origin rank within its segment:
// the segmented enumerate of all-true flags. One segmented scan.
func SegRank(m *Machine, dst []int, flags []bool) {
	m.Use(UseEnumerate)
	n := len(flags)
	ones := make([]int, n)
	Par(m, n, func(i int) { ones[i] = 1 })
	SegPlusScan(m, dst, ones, flags)
}

// SegHeadIndex writes into dst the vector index of each element's segment
// head: i minus the element's rank within its segment. Used to copy "the
// offset of the beginning of each segment across the segment" (§2.3.1).
func SegHeadIndex(m *Machine, dst []int, flags []bool) {
	SegRank(m, dst, flags)
	Par(m, len(dst), func(i int) { dst[i] = i - dst[i] })
}

// SegEnumerate writes the per-segment count of true flags strictly before
// each position and is the segmented version of Enumerate (§2.3.1).
func SegEnumerate(m *Machine, dst []int, elems []bool, flags []bool) {
	m.Use(UseEnumerate)
	n := len(elems)
	ones := make([]int, n)
	Par(m, n, func(i int) {
		if elems[i] {
			ones[i] = 1
		}
	})
	SegPlusScan(m, dst, ones, flags)
}

// SegCopy copies each segment's first element across the segment (the
// segmented copy of §2.3.1, built on a segmented max-scan per the paper;
// executed here as the inclusive scan of the "last head wins" monoid).
func SegCopy[T any](m *Machine, dst, src []T, flags []bool) {
	m.Use(UseCopy)
	m.Use(UseSegmented)
	m.chargeSegScan(len(src))
	if len(src) == 0 {
		return
	}
	scan.SegCopyParallel(dst, src, flags, m.kernelWorkers())
}

// SegPlusDistribute gives every element the sum of its segment (§2.3.2's
// segmented +-distribute): a segmented scan and a backward segmented
// copy.
func SegPlusDistribute(m *Machine, dst, src []int, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	SegPlusScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) { tmp[i] += src[i] })
	segBackCopy(m, dst, tmp, flags)
}

// SegMaxDistribute gives every element the maximum of its segment.
func SegMaxDistribute(m *Machine, dst, src []int, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	SegMaxScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) {
		if src[i] > tmp[i] {
			tmp[i] = src[i]
		}
	})
	segBackCopy(m, dst, tmp, flags)
}

// SegMinDistribute gives every element the minimum of its segment (the
// MST algorithm's min-edge search, §2.3.3).
func SegMinDistribute(m *Machine, dst, src []int, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]int, len(src))
	SegMinScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) {
		if src[i] < tmp[i] {
			tmp[i] = src[i]
		}
	})
	segBackCopy(m, dst, tmp, flags)
}

// SegFMaxDistribute gives every element the maximum of its segment, for
// float64 data (the quickhull farthest-point search).
func SegFMaxDistribute(m *Machine, dst, src []float64, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]float64, len(src))
	SegFMaxScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) {
		if src[i] > tmp[i] {
			tmp[i] = src[i]
		}
	})
	segBackCopy(m, dst, tmp, flags)
}

// SegFMinDistribute gives every element the minimum of its segment, for
// float64 data.
func SegFMinDistribute(m *Machine, dst, src []float64, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]float64, len(src))
	SegFMinScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) {
		if src[i] < tmp[i] {
			tmp[i] = src[i]
		}
	})
	segBackCopy(m, dst, tmp, flags)
}

// SegOrDistribute gives every element the logical or of its segment.
func SegOrDistribute(m *Machine, dst, src []bool, flags []bool) {
	m.Use(UseDistribute)
	tmp := make([]bool, len(src))
	SegOrScan(m, tmp, src, flags)
	Par(m, len(tmp), func(i int) { tmp[i] = tmp[i] || src[i] })
	segBackCopy(m, dst, tmp, flags)
}

// segBackCopy copies each segment's *last* element across the segment:
// a backward segmented copy, charged as one segmented scan.
func segBackCopy[T any](m *Machine, dst, src []T, flags []bool) {
	m.Use(UseSegmented)
	m.chargeSegScan(len(src))
	if len(src) == 0 {
		return
	}
	scan.SegBackCopyParallel(dst, src, flags, m.kernelWorkers())
}
