package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: Split is a permutation — applying SplitIndex's indices to
// iota yields each index exactly once — and sorting the flags as
// false-then-true reproduces the boundary.
func TestPropertySplitIsPermutation(t *testing.T) {
	prop := func(flags []bool) bool {
		m := New()
		n := len(flags)
		idx := make([]int, n)
		SplitIndex(m, idx, flags)
		seen := make([]bool, n)
		for _, ix := range idx {
			if ix < 0 || ix >= n || seen[ix] {
				return false
			}
			seen[ix] = true
		}
		// The flags, split by themselves, must come out false* true*.
		if n == 0 {
			return true
		}
		out := make([]bool, n)
		Permute(m, out, flags, idx)
		boundary := 0
		for boundary < n && !out[boundary] {
			boundary++
		}
		for i := boundary; i < n; i++ {
			if !out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pack keeps exactly the flagged elements in order.
func TestPropertyPackKeepsFlagged(t *testing.T) {
	prop := func(raw []int16, rawFlags []bool) bool {
		n := len(raw)
		if len(rawFlags) < n {
			n = len(rawFlags)
		}
		src := make([]int, n)
		for i := 0; i < n; i++ {
			src[i] = int(raw[i])
		}
		flags := rawFlags[:n]
		m := New()
		dst := make([]int, n)
		count := Pack(m, dst, src, flags)
		var want []int
		for i, f := range flags {
			if f {
				want = append(want, src[i])
			}
		}
		if count != len(want) {
			return false
		}
		return reflect.DeepEqual(dst[:count], append([]int{}, want...))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Allocate + Distribute replicates each value exactly counts[i]
// times, in order.
func TestPropertyAllocateDistribute(t *testing.T) {
	prop := func(rawCounts []uint8) bool {
		counts := make([]int, len(rawCounts))
		vals := make([]int, len(rawCounts))
		for i, c := range rawCounts {
			counts[i] = int(c % 5)
			vals[i] = i + 1000
		}
		m := New()
		a := Allocate(m, counts)
		dst := make([]int, a.Total)
		Distribute(m, a, dst, vals, counts)
		var want []int
		for i, c := range counts {
			for k := 0; k < c; k++ {
				want = append(want, vals[i])
			}
		}
		return reflect.DeepEqual(dst, append([]int{}, want...))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Gather after Permute with the same index vector restores the
// source (scatter then gather through a permutation is the identity).
func TestPropertyPermuteGatherInverse(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN%64) + 1
		rng := rand.New(rand.NewSource(seed))
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Int()
		}
		idx := rng.Perm(n)
		m := New()
		scattered := make([]int, n)
		Permute(m, scattered, src, idx)
		back := make([]int, n)
		Gather(m, back, scattered, idx)
		return reflect.DeepEqual(back, src)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the step charge of any primitive is invariant under the
// worker count (parallel execution must not change the cost model).
func TestPropertyWorkersDontChangeSteps(t *testing.T) {
	prop := func(rawN uint16) bool {
		n := int(rawN%5000) + 1
		src := make([]int, n)
		run := func(workers int) int64 {
			m := New(WithWorkers(workers))
			dst := make([]int, n)
			PlusScan(m, dst, src)
			Par(m, n, func(i int) {})
			flags := make([]bool, n)
			SegMaxScan(m, dst, src, flags)
			return m.Steps()
		}
		return run(1) == run(0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: under ModelEREW every run charges at least as much as under
// ModelScan (the scan primitives only ever get cheaper).
func TestPropertyEREWDominatesScanModel(t *testing.T) {
	prop := func(rawN uint16, flags []bool) bool {
		n := int(rawN%2000) + 2
		src := make([]int, n)
		f := make([]bool, n)
		copy(f, flags)
		steps := func(model Model) int64 {
			m := New(WithModel(model))
			dst := make([]int, n)
			PlusScan(m, dst, src)
			SegMinScan(m, dst, src, f)
			Enumerate(m, dst, f)
			PlusDistribute(m, dst, src)
			return m.Steps()
		}
		return steps(ModelEREW) >= steps(ModelScan)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: PackIndex and Pack agree — packing iota equals the index
// list.
func TestPropertyPackIndexAgrees(t *testing.T) {
	prop := func(flags []bool) bool {
		n := len(flags)
		m := New()
		iota := make([]int, n)
		Par(m, n, func(i int) { iota[i] = i })
		a := make([]int, n)
		ca := Pack(m, a, iota, flags)
		b := make([]int, n)
		cb := PackIndex(m, b, flags)
		return ca == cb && reflect.DeepEqual(a[:ca], b[:cb])
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
