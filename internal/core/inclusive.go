package core

import "scans/internal/scan"

// Inclusive scan variants. The paper's scans are exclusive (§2.1), and
// so are this machine's primitives; each inclusive form costs the
// exclusive scan plus one elementwise fix-up, which is how algorithms in
// the paper compute them. They are provided because nearly every
// distribute-style operation wants the inclusive value at the vector's
// (or segment's) end.

// PlusScanInclusive computes dst[i] = src[0]+...+src[i] and returns the
// total.
func PlusScanInclusive(m *Machine, dst, src []int) int {
	m.chargeScan(len(src))
	scan.InclusiveParallel(scan.Add[int]{}, dst, src, m.kernelWorkers())
	m.chargeElementwise(len(src)) // the fix-up pass the paper would run
	if len(dst) == 0 {
		return 0
	}
	return dst[len(dst)-1]
}

// MaxScanInclusive computes the running maximum including each element.
func MaxScanInclusive(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.InclusiveParallel(scan.MaxIntOp, dst, src, m.kernelWorkers())
	m.chargeElementwise(len(src))
}

// MinScanInclusive computes the running minimum including each element.
func MinScanInclusive(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.InclusiveParallel(scan.MinIntOp, dst, src, m.kernelWorkers())
	m.chargeElementwise(len(src))
}

// SegPlusScanInclusive computes the per-segment running sum including
// each element.
func SegPlusScanInclusive(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegInclusiveParallel(scan.Add[int]{}, dst, src, flags, m.kernelWorkers())
	m.chargeElementwise(len(src))
}

// SegMaxScanInclusive computes the per-segment running maximum including
// each element.
func SegMaxScanInclusive(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegInclusiveParallel(scan.MaxIntOp, dst, src, flags, m.kernelWorkers())
	m.chargeElementwise(len(src))
}

// SegFPlusScanInclusive is the float64 per-segment running sum.
func SegFPlusScanInclusive(m *Machine, dst, src []float64, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegInclusiveParallel(scan.Add[float64]{}, dst, src, flags, m.kernelWorkers())
	m.chargeElementwise(len(src))
}
