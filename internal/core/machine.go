// Package core implements the paper's abstract machine: the "scan model",
// an EREW P-RAM whose instruction set is extended with unit-time +-scan
// and max-scan primitives (Blelloch, "Scans as Primitive Parallel
// Operations", ICPP 1987).
//
// A Machine executes data-parallel vector operations and counts *program
// steps*, the paper's complexity measure. Each primitive — an elementwise
// operation, a permute, or a scan — costs one program step when the
// vector fits in the machine's processors, and ⌈n/P⌉-proportional steps
// on longer vectors (the paper's Figure 10 "long vector" simulation).
// The cost model is pluggable: under ModelScan a scan is one step (the
// paper's thesis); under ModelEREW the same scan is charged the
// 2⌈lg n⌉ steps a pure EREW P-RAM needs to simulate it with a binary
// tree. Running one algorithm under both models reproduces the
// asymptotic gaps of the paper's Table 1.
//
// The Machine also verifies the EREW contract: Permute panics if two
// virtual processors write the same location, unless the check is
// explicitly relaxed (the paper's line-drawing routine needs one
// concurrent write, §2.4.1).
//
// Machine operations are free functions taking the machine first, not
// methods, because several are generic over the element type and Go
// methods cannot have type parameters.
package core

import (
	"fmt"
	"math/bits"
)

// Model selects the cost model used to charge program steps.
type Model int

const (
	// ModelScan is the paper's scan model: scans are unit-time
	// primitives, like any memory reference.
	ModelScan Model = iota
	// ModelEREW is the exclusive-read exclusive-write P-RAM without scan
	// primitives: a scan over u elements is charged 2⌈lg u⌉ steps, the
	// cost of the standard binary-tree simulation (Figure 13 run in
	// software).
	ModelEREW
	// ModelCRCW is the concurrent-read concurrent-write P-RAM. Scans are
	// charged as on ModelEREW (a generic CRCW P-RAM cannot scan in O(1)
	// either), but the exclusivity check on Permute is off.
	ModelCRCW
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case ModelScan:
		return "Scan"
	case ModelEREW:
		return "EREW"
	case ModelCRCW:
		return "CRCW"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Usage identifies the paper's categories of scan use (Table 3). Compound
// operations record their category so an instrumented algorithm run can
// regenerate the table's cross-reference.
type Usage int

const (
	// UseEnumerate numbers flagged elements (§2.2).
	UseEnumerate Usage = iota
	// UseCopy copies the first element across a vector (§2.2).
	UseCopy
	// UseDistribute distributes a sum (or max/min/or/and) across a
	// vector (§2.2).
	UseDistribute
	// UseSplit packs elements by a flag, bottom/top (§2.2.1).
	UseSplit
	// UseSegmented marks any segmented-scan based operation (§2.3).
	UseSegmented
	// UseAllocate allocates processor segments from counts (§2.4).
	UseAllocate
	// UseLoadBalance packs surviving elements into a dense vector (§2.5).
	UseLoadBalance

	numUsage
)

// String returns the paper's name for the usage category.
func (u Usage) String() string {
	switch u {
	case UseEnumerate:
		return "Enumerating"
	case UseCopy:
		return "Copying"
	case UseDistribute:
		return "Distributing Sums"
	case UseSplit:
		return "Splitting"
	case UseSegmented:
		return "Segmented Primitives"
	case UseAllocate:
		return "Allocating"
	case UseLoadBalance:
		return "Load-Balancing"
	}
	return fmt.Sprintf("Usage(%d)", int(u))
}

// Usages lists every usage category in Table 3 order.
func Usages() []Usage {
	us := make([]Usage, numUsage)
	for i := range us {
		us[i] = Usage(i)
	}
	return us
}

// Counters accumulates the cost and usage statistics of a Machine run.
type Counters struct {
	// Steps is the total program-step count under the machine's model:
	// the paper's step complexity.
	Steps int64
	// Elementwise, Permutes, Scans, SegScans count primitive
	// *invocations* by class (not steps).
	Elementwise int64
	Permutes    int64
	Scans       int64
	SegScans    int64
	// UsageCounts counts compound-operation invocations per Table 3
	// category; index with a Usage value.
	UsageCounts [numUsage]int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Steps += other.Steps
	c.Elementwise += other.Elementwise
	c.Permutes += other.Permutes
	c.Scans += other.Scans
	c.SegScans += other.SegScans
	for i := range c.UsageCounts {
		c.UsageCounts[i] += other.UsageCounts[i]
	}
}

// Machine is an instance of the scan-model abstract machine. The zero
// value is not usable; construct with New.
type Machine struct {
	procs          int // simulated processors; 0 = always as many as elements
	model          Model
	workers        int // actual goroutines for kernel execution; <=0 = GOMAXPROCS
	checkExclusive bool
	c              Counters
}

// Option configures a Machine.
type Option func(*Machine)

// WithProcessors sets the number of simulated processors P. Vectors
// longer than P are charged ⌈n/P⌉ virtual loops per primitive, per the
// paper's Figure 10. p <= 0 (the default) means the machine always has as
// many processors as vector elements, the paper's default assumption.
func WithProcessors(p int) Option { return func(m *Machine) { m.procs = p } }

// WithModel selects the cost model (default ModelScan).
func WithModel(model Model) Option {
	return func(m *Machine) {
		m.model = model
		if model == ModelCRCW {
			m.checkExclusive = false
		}
	}
}

// WithWorkers sets the number of goroutines used to execute kernels
// (default GOMAXPROCS; 1 forces serial execution). Worker count affects
// wall-clock only, never step counts.
func WithWorkers(w int) Option { return func(m *Machine) { m.workers = w } }

// WithExclusiveCheck turns the EREW exclusivity verification in Permute
// on or off. It is on by default for ModelScan and ModelEREW.
func WithExclusiveCheck(on bool) Option {
	return func(m *Machine) { m.checkExclusive = on }
}

// New returns a Machine with the given options applied.
func New(opts ...Option) *Machine {
	m := &Machine{model: ModelScan, checkExclusive: true, workers: 1}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Counters returns a snapshot of the accumulated statistics.
func (m *Machine) Counters() Counters { return m.c }

// Steps returns the accumulated program-step count.
func (m *Machine) Steps() int64 { return m.c.Steps }

// ResetCounters zeroes the accumulated statistics.
func (m *Machine) ResetCounters() { m.c = Counters{} }

// Model returns the machine's cost model.
func (m *Machine) Model() Model { return m.model }

// Processors returns the configured processor count (0 = unbounded).
func (m *Machine) Processors() int { return m.procs }

// Use records one compound-operation invocation in category u.
func (m *Machine) Use(u Usage) { m.c.UsageCounts[u]++ }

// virtualLoops is ⌈n/P⌉ clamped below at 1: the number of elements each
// simulated processor handles for an n-element vector (Figure 10).
func (m *Machine) virtualLoops(n int) int64 {
	if n <= 0 {
		return 1
	}
	if m.procs <= 0 || n <= m.procs {
		return 1
	}
	return int64((n + m.procs - 1) / m.procs)
}

// lg2ceil returns ⌈log₂ u⌉ for u >= 1.
func lg2ceil(u int) int64 {
	if u <= 1 {
		return 0
	}
	return int64(bits.Len(uint(u - 1)))
}

// chargeElementwise charges one elementwise primitive over n elements:
// ⌈n/P⌉ steps.
func (m *Machine) chargeElementwise(n int) {
	m.c.Elementwise++
	m.c.Steps += m.virtualLoops(n)
}

// chargePermute charges one permute over n elements: ⌈n/P⌉ steps (an
// EREW memory reference per virtual loop).
func (m *Machine) chargePermute(n int) {
	m.c.Permutes++
	m.c.Steps += m.virtualLoops(n)
}

// scanCrossCost is the cost of the single cross-processor scan inside a
// (possibly long-vector) scan: 1 step on the scan model, 2⌈lg u⌉ on a
// P-RAM simulating the tree, where u is the number of participating
// processors.
func (m *Machine) scanCrossCost(n int) int64 {
	u := n
	if m.procs > 0 && m.procs < n {
		u = m.procs
	}
	switch m.model {
	case ModelScan:
		return 1
	default:
		c := 2 * lg2ceil(u)
		if c == 0 {
			c = 1
		}
		return c
	}
}

// chargeScan charges one scan primitive over n elements. On a long
// vector each processor first reduces its block (⌈n/P⌉ steps), the
// machine scans across processors (model-dependent), and each processor
// rescans its block with the offset (⌈n/P⌉ steps); per Figure 10.
func (m *Machine) chargeScan(n int) {
	m.c.Scans++
	v := m.virtualLoops(n)
	if v > 1 {
		m.c.Steps += 2*v + m.scanCrossCost(n)
	} else {
		m.c.Steps += m.scanCrossCost(n)
	}
}

// chargeSegScan charges one segmented scan. The paper shows (§3.4) a
// segmented scan costs at most two primitive scans plus elementwise
// fix-up; we charge exactly that.
func (m *Machine) chargeSegScan(n int) {
	m.c.SegScans++
	v := m.virtualLoops(n)
	if v > 1 {
		m.c.Steps += 2 * (2*v + m.scanCrossCost(n))
	} else {
		m.c.Steps += 2 * m.scanCrossCost(n)
	}
	m.c.Steps += v // fix-up pass
}
