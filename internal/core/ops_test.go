package core

import (
	"reflect"
	"testing"
)

func TestEnumerateFig1(t *testing.T) {
	// Figure 1: enumerate([T F F T F T T F]) = [0 1 1 1 2 2 3 4].
	m := New()
	flags := []bool{true, false, false, true, false, true, true, false}
	got := make([]int, 8)
	count := Enumerate(m, got, flags)
	want := []int{0, 1, 1, 1, 2, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("enumerate = %v, want %v", got, want)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if m.Counters().UsageCounts[UseEnumerate] != 1 {
		t.Error("enumerate usage not recorded")
	}
}

func TestCopyFig1(t *testing.T) {
	// Figure 1: copy([5 1 3 4 3 9 2 6]) = [5 5 5 5 5 5 5 5].
	m := New()
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	got := make([]int, 8)
	Copy(m, got, a)
	for _, v := range got {
		if v != 5 {
			t.Fatalf("copy = %v, want all 5s", got)
		}
	}
}

func TestPlusDistributeFig1(t *testing.T) {
	// Figure 1: +-distribute([1 1 2 1 1 2 1 1]) = [10 ... 10].
	m := New()
	b := []int{1, 1, 2, 1, 1, 2, 1, 1}
	got := make([]int, 8)
	total := PlusDistribute(m, got, b)
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	for _, v := range got {
		if v != 10 {
			t.Fatalf("+-distribute = %v, want all 10s", got)
		}
	}
}

func TestMaxMinDistribute(t *testing.T) {
	m := New()
	a := []int{3, 9, 1, 7}
	got := make([]int, 4)
	if mx := MaxDistribute(m, got, a); mx != 9 {
		t.Errorf("max = %d, want 9", mx)
	}
	if got[0] != 9 || got[3] != 9 {
		t.Errorf("max-distribute = %v", got)
	}
	if mn := MinDistribute(m, got, a); mn != 1 {
		t.Errorf("min = %d, want 1", mn)
	}
	if got[0] != 1 || got[3] != 1 {
		t.Errorf("min-distribute = %v", got)
	}
}

func TestAndOrDistribute(t *testing.T) {
	m := New()
	all := []bool{true, true, true}
	some := []bool{true, false, true}
	got := make([]bool, 3)
	if !AndDistribute(m, got, all) {
		t.Error("AndDistribute(all true) = false")
	}
	if got[1] != true {
		t.Error("and-distribute not distributed")
	}
	if AndDistribute(m, got, some) {
		t.Error("AndDistribute(mixed) = true")
	}
	if !OrDistribute(m, got, some) {
		t.Error("OrDistribute(mixed) = false")
	}
	none := []bool{false, false}
	if OrDistribute(m, make([]bool, 2), none) {
		t.Error("OrDistribute(none) = true")
	}
}

func TestBackEnumerate(t *testing.T) {
	m := New()
	// From the Figure 3 walk-through: Flags = [T T T T F F T F],
	// back-enumerate = [4 3 2 1 1 1 0 0].
	flags := []bool{true, true, true, true, false, false, true, false}
	got := make([]int, 8)
	BackEnumerate(m, got, flags)
	want := []int{4, 3, 2, 1, 1, 1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("back-enumerate = %v, want %v", got, want)
	}
}

func TestSegRankAndHeadIndex(t *testing.T) {
	m := New()
	flags := []bool{true, false, false, true, false}
	rank := make([]int, 5)
	SegRank(m, rank, flags)
	if want := []int{0, 1, 2, 0, 1}; !reflect.DeepEqual(rank, want) {
		t.Errorf("SegRank = %v, want %v", rank, want)
	}
	head := make([]int, 5)
	SegHeadIndex(m, head, flags)
	if want := []int{0, 0, 0, 3, 3}; !reflect.DeepEqual(head, want) {
		t.Errorf("SegHeadIndex = %v, want %v", head, want)
	}
}

func TestSegCopy(t *testing.T) {
	m := New()
	a := []int{7, 0, 0, 9, 0}
	flags := []bool{true, false, false, true, false}
	got := make([]int, 5)
	SegCopy(m, got, a, flags)
	if want := []int{7, 7, 7, 9, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegCopy = %v, want %v", got, want)
	}
}

func TestSegCopyImplicitHead(t *testing.T) {
	m := New()
	a := []int{7, 0, 9, 0}
	flags := []bool{false, false, true, false}
	got := make([]int, 4)
	SegCopy(m, got, a, flags)
	if want := []int{7, 7, 9, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegCopy = %v, want %v", got, want)
	}
}

func TestSegDistributes(t *testing.T) {
	m := New()
	a := []int{1, 2, 3, 10, 20}
	flags := []bool{true, false, false, true, false}
	sum := make([]int, 5)
	SegPlusDistribute(m, sum, a, flags)
	if want := []int{6, 6, 6, 30, 30}; !reflect.DeepEqual(sum, want) {
		t.Errorf("SegPlusDistribute = %v, want %v", sum, want)
	}
	mx := make([]int, 5)
	SegMaxDistribute(m, mx, a, flags)
	if want := []int{3, 3, 3, 20, 20}; !reflect.DeepEqual(mx, want) {
		t.Errorf("SegMaxDistribute = %v, want %v", mx, want)
	}
	mn := make([]int, 5)
	SegMinDistribute(m, mn, a, flags)
	if want := []int{1, 1, 1, 10, 10}; !reflect.DeepEqual(mn, want) {
		t.Errorf("SegMinDistribute = %v, want %v", mn, want)
	}
}

func TestSegFMinDistribute(t *testing.T) {
	m := New()
	a := []float64{2.5, 1.5, 9, 4}
	flags := []bool{true, false, true, false}
	got := make([]float64, 4)
	SegFMinDistribute(m, got, a, flags)
	if want := []float64{1.5, 1.5, 4, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegFMinDistribute = %v, want %v", got, want)
	}
}

func TestSegOrDistribute(t *testing.T) {
	m := New()
	a := []bool{false, true, false, false}
	flags := []bool{true, false, true, false}
	got := make([]bool, 4)
	SegOrDistribute(m, got, a, flags)
	if want := []bool{true, true, false, false}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegOrDistribute = %v, want %v", got, want)
	}
}

func TestSegEnumerate(t *testing.T) {
	m := New()
	elems := []bool{true, false, true, true, false}
	flags := []bool{true, false, false, true, false}
	got := make([]int, 5)
	SegEnumerate(m, got, elems, flags)
	if want := []int{0, 1, 1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("SegEnumerate = %v, want %v", got, want)
	}
}

func TestCompoundOpsAreConstantSteps(t *testing.T) {
	// §2.2: "These operations ... all have a step complexity of O(1)."
	// Verify the step charge of each compound op is independent of n.
	ops := map[string]func(m *Machine, n int){
		"enumerate": func(m *Machine, n int) {
			Enumerate(m, make([]int, n), make([]bool, n))
		},
		"copy": func(m *Machine, n int) {
			Copy(m, make([]int, n), make([]int, n))
		},
		"plus-distribute": func(m *Machine, n int) {
			PlusDistribute(m, make([]int, n), make([]int, n))
		},
		"split": func(m *Machine, n int) {
			Split(m, make([]int, n), make([]int, n), make([]bool, n))
		},
		"allocate(all-1s)": func(m *Machine, n int) {
			counts := make([]int, n)
			for i := range counts {
				counts[i] = 1
			}
			Allocate(m, counts)
		},
		"pack": func(m *Machine, n int) {
			Pack(m, make([]int, n), make([]int, n), make([]bool, n))
		},
		"seg-split3": func(m *Machine, n int) {
			SegSplit3Index(m, make([]int, n), make([]Cmp3, n), make([]bool, n))
		},
	}
	for name, op := range ops {
		m1 := New()
		op(m1, 64)
		s1 := m1.Steps()
		m2 := New()
		op(m2, 4096)
		s2 := m2.Steps()
		if s1 != s2 {
			t.Errorf("%s: steps grew with n: %d (n=64) vs %d (n=4096)", name, s1, s2)
		}
		if s1 == 0 {
			t.Errorf("%s: charged no steps", name)
		}
	}
}
