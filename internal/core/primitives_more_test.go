package core

import (
	"reflect"
	"testing"
)

func TestBackwardIntScans(t *testing.T) {
	m := New()
	a := []int{3, 1, 4, 1, 5}
	dst := make([]int, 5)
	BackMaxScan(m, dst, a)
	if want := []int{5, 5, 5, 5, MinIdentity}; !reflect.DeepEqual(dst, want) {
		t.Errorf("BackMaxScan = %v, want %v", dst, want)
	}
	BackMinScan(m, dst, a)
	if want := []int{1, 1, 1, 5, MaxIdentity}; !reflect.DeepEqual(dst, want) {
		t.Errorf("BackMinScan = %v, want %v", dst, want)
	}
	BackMinScanInts(m, dst, a)
	if dst[0] != 1 {
		t.Errorf("BackMinScanInts = %v", dst)
	}
}

func TestFMulScan(t *testing.T) {
	m := New()
	a := []float64{2, 3, 4}
	dst := make([]float64, 3)
	FMulScan(m, dst, a)
	if want := []float64{1, 2, 6}; !reflect.DeepEqual(dst, want) {
		t.Errorf("FMulScan = %v, want %v", dst, want)
	}
}

func TestSegmentedFloatAndBackScans(t *testing.T) {
	m := New()
	a := []float64{1, 2, 3, 4}
	flags := []bool{true, false, true, false}
	dst := make([]float64, 4)
	SegFPlusScan(m, dst, a, flags)
	if want := []float64{0, 1, 0, 3}; !reflect.DeepEqual(dst, want) {
		t.Errorf("SegFPlusScan = %v, want %v", dst, want)
	}
	SegFMaxScan(m, dst, a, flags)
	if dst[1] != 1 || dst[3] != 3 {
		t.Errorf("SegFMaxScan = %v", dst)
	}
	fdst := make([]float64, 4)
	SegFMaxDistribute(m, fdst, a, flags)
	if want := []float64{2, 2, 4, 4}; !reflect.DeepEqual(fdst, want) {
		t.Errorf("SegFMaxDistribute = %v, want %v", fdst, want)
	}
	ai := []int{1, 2, 3, 4}
	idst := make([]int, 4)
	SegBackPlusScan(m, idst, ai, flags)
	if want := []int{2, 0, 4, 0}; !reflect.DeepEqual(idst, want) {
		t.Errorf("SegBackPlusScan = %v, want %v", idst, want)
	}
	SegBackMaxScan(m, idst, ai, flags)
	if idst[0] != 2 || idst[1] != MinIdentity {
		t.Errorf("SegBackMaxScan = %v", idst)
	}
}

func TestGatherSharedAllowsDuplicates(t *testing.T) {
	m := New()
	src := []int{10, 20}
	dst := make([]int, 3)
	GatherShared(m, dst, src, []int{1, 1, 0})
	if want := []int{20, 20, 10}; !reflect.DeepEqual(dst, want) {
		t.Errorf("GatherShared = %v, want %v", dst, want)
	}
}

func TestGatherSharedSizePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GatherShared(m, make([]int, 1), []int{1}, []int{0, 0})
}

func TestAccessors(t *testing.T) {
	m := New(WithProcessors(7), WithModel(ModelEREW), WithExclusiveCheck(false))
	if m.Model() != ModelEREW {
		t.Error("Model accessor wrong")
	}
	if m.Processors() != 7 {
		t.Error("Processors accessor wrong")
	}
	// With the check off, colliding writes are tolerated.
	dst := make([]int, 2)
	Permute(m, dst, []int{1, 2}, []int{0, 0})
	if dst[0] != 2 {
		t.Error("unchecked permute did not apply")
	}
}

func TestPermuteMinWriteIfBounds(t *testing.T) {
	m := New(WithModel(ModelCRCW))
	dst := []int{9, 9, 9}
	PermuteMinWriteIf(m, dst, []int{5, 1, 7}, []int{0, 0, 2}, []bool{true, false, true})
	if want := []int{5, 9, 7}; !reflect.DeepEqual(dst, want) {
		t.Errorf("PermuteMinWriteIf = %v, want %v", dst, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	PermuteMinWriteIf(m, dst, []int{1}, []int{0, 1}, []bool{true})
}

func TestPermuteMinWriteLengthPanics(t *testing.T) {
	m := New(WithModel(ModelCRCW))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PermuteMinWrite(m, []int{1}, []int{1, 2}, []int{0})
}
