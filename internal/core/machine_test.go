package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestModelString(t *testing.T) {
	if ModelScan.String() != "Scan" || ModelEREW.String() != "EREW" || ModelCRCW.String() != "CRCW" {
		t.Error("model names wrong")
	}
	if !strings.Contains(Model(42).String(), "42") {
		t.Error("unknown model name not descriptive")
	}
}

func TestUsageString(t *testing.T) {
	want := []string{
		"Enumerating", "Copying", "Distributing Sums", "Splitting",
		"Segmented Primitives", "Allocating", "Load-Balancing",
	}
	for i, u := range Usages() {
		if u.String() != want[i] {
			t.Errorf("Usage(%d).String() = %q, want %q", i, u.String(), want[i])
		}
	}
}

func TestVirtualLoops(t *testing.T) {
	m := New(WithProcessors(4))
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3}, {12, 3},
	}
	for _, c := range cases {
		if got := m.virtualLoops(c.n); got != int64(c.want) {
			t.Errorf("virtualLoops(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	unbounded := New()
	if got := unbounded.virtualLoops(1 << 20); got != 1 {
		t.Errorf("unbounded virtualLoops = %d, want 1", got)
	}
}

func TestLg2Ceil(t *testing.T) {
	cases := []struct {
		u    int
		want int64
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := lg2ceil(c.u); got != c.want {
			t.Errorf("lg2ceil(%d) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestScanCostByModel(t *testing.T) {
	n := 1024
	src := make([]int, n)
	dst := make([]int, n)

	ms := New(WithModel(ModelScan))
	PlusScan(ms, dst, src)
	if got := ms.Steps(); got != 1 {
		t.Errorf("scan model: one scan = %d steps, want 1", got)
	}

	me := New(WithModel(ModelEREW))
	PlusScan(me, dst, src)
	if got, want := me.Steps(), int64(2*10); got != want {
		t.Errorf("EREW model: one scan over 1024 = %d steps, want %d", got, want)
	}
}

func TestLongVectorScanCost(t *testing.T) {
	// Figure 10: with p processors and n elements, a scan is two block
	// passes plus one cross-processor scan.
	n, p := 4096, 4
	m := New(WithProcessors(p))
	src := make([]int, n)
	dst := make([]int, n)
	PlusScan(m, dst, src)
	want := int64(2*(n/p) + 1)
	if got := m.Steps(); got != want {
		t.Errorf("long-vector scan = %d steps, want %d", got, want)
	}
}

func TestElementwiseCost(t *testing.T) {
	m := New(WithProcessors(8))
	Par(m, 64, func(int) {})
	if got := m.Steps(); got != 8 {
		t.Errorf("elementwise over 64 elems, 8 procs = %d steps, want 8", got)
	}
	c := m.Counters()
	if c.Elementwise != 1 {
		t.Errorf("Elementwise count = %d, want 1", c.Elementwise)
	}
}

func TestResetCounters(t *testing.T) {
	m := New()
	Par(m, 10, func(int) {})
	if m.Steps() == 0 {
		t.Fatal("steps not counted")
	}
	m.ResetCounters()
	if m.Steps() != 0 {
		t.Error("ResetCounters did not zero steps")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Steps: 1, Scans: 2}
	a.UsageCounts[UseSplit] = 3
	b := Counters{Steps: 10, Scans: 20}
	b.UsageCounts[UseSplit] = 30
	a.Add(b)
	if a.Steps != 11 || a.Scans != 22 || a.UsageCounts[UseSplit] != 33 {
		t.Errorf("Counters.Add wrong: %+v", a)
	}
}

func TestPermuteBasic(t *testing.T) {
	// Paper §2.1 permute example.
	m := New()
	a := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"}
	idx := []int{2, 5, 4, 3, 1, 6, 0, 7}
	got := make([]string, 8)
	Permute(m, got, a, idx)
	want := []string{"a6", "a4", "a0", "a3", "a2", "a1", "a5", "a7"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Permute = %v, want %v", got, want)
	}
	if m.Counters().Permutes != 1 {
		t.Error("permute not counted")
	}
}

func TestPermuteEREWViolation(t *testing.T) {
	m := New()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on duplicate index")
		}
		if !strings.Contains(r.(string), "EREW violation") {
			t.Errorf("panic %v does not mention EREW violation", r)
		}
	}()
	Permute(m, make([]int, 3), []int{1, 2, 3}, []int{0, 0, 1})
}

func TestPermuteOutOfRange(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	Permute(m, make([]int, 2), []int{1, 2}, []int{0, 5})
}

func TestPermuteWriteAllowsCollisions(t *testing.T) {
	m := New()
	dst := make([]int, 2)
	PermuteWrite(m, dst, []int{7, 8, 9}, []int{0, 1, 1})
	if dst[0] != 7 || dst[1] != 9 {
		t.Errorf("PermuteWrite = %v, want [7 9] (later write wins)", dst)
	}
}

func TestCRCWModelDisablesCheck(t *testing.T) {
	m := New(WithModel(ModelCRCW))
	dst := make([]int, 2)
	Permute(m, dst, []int{1, 2}, []int{0, 0})
	if dst[0] != 2 {
		t.Errorf("CRCW permute = %d, want 2", dst[0])
	}
}

func TestGather(t *testing.T) {
	m := New()
	src := []int{10, 20, 30, 40}
	dst := make([]int, 3)
	Gather(m, dst, src, []int{3, 0, 2})
	if want := []int{40, 10, 30}; !reflect.DeepEqual(dst, want) {
		t.Errorf("Gather = %v, want %v", dst, want)
	}
}

func TestGatherEREWViolation(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate read")
		}
	}()
	Gather(m, make([]int, 2), []int{1, 2}, []int{0, 0})
}

func TestParParallelWorkers(t *testing.T) {
	m := New(WithWorkers(4))
	n := 10000
	dst := make([]int, n)
	Par(m, n, func(i int) { dst[i] = i * 2 })
	for i := 0; i < n; i++ {
		if dst[i] != i*2 {
			t.Fatalf("parallel Par wrong at %d", i)
		}
	}
}

func TestScanPrimitiveValues(t *testing.T) {
	m := New()
	a := []int{2, 1, 2, 3, 5, 8, 13, 21}
	dst := make([]int, len(a))
	if total := PlusScan(m, dst, a); total != 55 {
		t.Errorf("PlusScan total = %d, want 55", total)
	}
	if want := []int{0, 2, 3, 5, 8, 13, 21, 34}; !reflect.DeepEqual(dst, want) {
		t.Errorf("PlusScan = %v, want %v", dst, want)
	}
	MaxScan(m, dst, a)
	if dst[0] != MinIdentity || dst[7] != 13 {
		t.Errorf("MaxScan = %v", dst)
	}
	MinScan(m, dst, a)
	if dst[0] != MaxIdentity || dst[7] != 1 {
		t.Errorf("MinScan = %v", dst)
	}
	BackPlusScan(m, dst, a)
	if dst[7] != 0 || dst[0] != 53 {
		t.Errorf("BackPlusScan = %v", dst)
	}
}

func TestFloatScans(t *testing.T) {
	m := New()
	a := []float64{1.5, 2.5, 3}
	dst := make([]float64, 3)
	if total := FPlusScan(m, dst, a); total != 7 {
		t.Errorf("FPlusScan total = %g, want 7", total)
	}
	FMaxScan(m, dst, a)
	if dst[2] != 2.5 {
		t.Errorf("FMaxScan[2] = %g, want 2.5", dst[2])
	}
	FMinScan(m, dst, a)
	if dst[2] != 1.5 {
		t.Errorf("FMinScan[2] = %g, want 1.5", dst[2])
	}
	FBackMaxScan(m, dst, a)
	if dst[0] != 3 {
		t.Errorf("FBackMaxScan[0] = %g, want 3", dst[0])
	}
	FBackMinScan(m, dst, a)
	if dst[0] != 2.5 {
		t.Errorf("FBackMinScan[0] = %g, want 2.5", dst[0])
	}
}

func TestSegScansCharged(t *testing.T) {
	m := New()
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	dst := make([]int, len(a))
	SegPlusScan(m, dst, a, flags)
	if want := []int{0, 5, 0, 3, 7, 10, 0, 2}; !reflect.DeepEqual(dst, want) {
		t.Errorf("SegPlusScan = %v, want %v", dst, want)
	}
	c := m.Counters()
	if c.SegScans != 1 {
		t.Errorf("SegScans = %d, want 1", c.SegScans)
	}
	if c.UsageCounts[UseSegmented] != 1 {
		t.Errorf("segmented usage = %d, want 1", c.UsageCounts[UseSegmented])
	}
	// §3.4: a segmented scan costs at most two primitive scans (+fix-up).
	if c.Steps > 3 {
		t.Errorf("segmented scan charged %d steps, want <= 3", c.Steps)
	}
}

func TestEmptyVectors(t *testing.T) {
	m := New()
	if got := PlusScan(m, nil, nil); got != 0 {
		t.Errorf("PlusScan(empty) = %d", got)
	}
	Copy(m, []int{}, []int{})
	if got := PlusDistribute(m, nil, nil); got != 0 {
		t.Errorf("PlusDistribute(empty) = %d", got)
	}
	if MaxDistribute(m, nil, nil) != MinIdentity {
		t.Error("MaxDistribute(empty) != identity")
	}
	if MinDistribute(m, nil, nil) != MaxIdentity {
		t.Error("MinDistribute(empty) != identity")
	}
	a := Allocate(m, nil)
	if a.Total != 0 || len(a.Flags) != 0 {
		t.Error("Allocate(empty) not empty")
	}
	if Pack(m, nil, []int(nil), nil) != 0 {
		t.Error("Pack(empty) != 0")
	}
}
