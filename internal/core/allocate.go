package core

import "fmt"

// Processor allocation (§2.4, Figure 8) and load balancing / pack
// (§2.5, Figure 11).

// PermuteIf performs a permute in which only the flagged processors
// participate: dst[index[i]] = src[i] for each i with flags[i]. On an
// EREW P-RAM a processor may always sit out a step, so this costs one
// permute. The exclusivity check covers the participating writes.
func PermuteIf[T any](m *Machine, dst, src []T, index []int, flags []bool) {
	n := len(src)
	if len(index) != n || len(flags) != n {
		panic(fmt.Sprintf("core: PermuteIf: src %d, index %d, flags %d", n, len(index), len(flags)))
	}
	m.chargePermute(n)
	if m.checkExclusive {
		seen := make([]int32, len(dst))
		for i := range seen {
			seen[i] = -1
		}
		for i, ix := range index {
			if !flags[i] {
				continue
			}
			if ix < 0 || ix >= len(dst) {
				panic(fmt.Sprintf("core: PermuteIf: index[%d] = %d out of range [0,%d)", i, ix, len(dst)))
			}
			if seen[ix] >= 0 {
				panic(fmt.Sprintf("core: PermuteIf: EREW violation: processors %d and %d both write location %d", seen[ix], i, ix))
			}
			seen[ix] = int32(i)
		}
	}
	for i, ix := range index {
		if flags[i] {
			dst[ix] = src[i]
		}
	}
}

// Allocation is the result of Allocate: a fresh vector of Total elements
// partitioned into one segment per requesting position.
type Allocation struct {
	// HPointers[i] is the start of position i's segment in the new
	// vector: the +-scan of the request counts (Figure 8's Hpointers).
	HPointers []int
	// Flags marks the head of each allocated segment. Positions that
	// requested zero elements own no segment and contribute no flag.
	Flags []bool
	// Total is the length of the allocated vector: the sum of counts.
	Total int
}

// Allocate builds a new vector of sum(counts) elements with a contiguous
// segment of counts[i] elements assigned to each position i (§2.4). The
// segment-head flags are produced by permuting a flag to each segment
// start, exactly as the paper describes; O(1) program steps.
func Allocate(m *Machine, counts []int) Allocation {
	m.Use(UseAllocate)
	n := len(counts)
	hp := make([]int, n)
	total := PlusScan(m, hp, counts)
	flags := make([]bool, total)
	nonEmpty := make([]bool, n)
	trues := make([]bool, n)
	Par(m, n, func(i int) {
		nonEmpty[i] = counts[i] > 0
		trues[i] = true
	})
	PermuteIf(m, flags, trues, hp, nonEmpty)
	return Allocation{HPointers: hp, Flags: flags, Total: total}
}

// Distribute copies values[i] across position i's allocated segment
// (Figure 8's distribute): permute each value to its segment head, then
// a segmented copy. Positions with zero-length segments are skipped.
// counts must be the vector Allocate was called with.
func Distribute[T any](m *Machine, a Allocation, dst []T, values []T, counts []int) {
	n := len(values)
	if a.Total == 0 {
		return
	}
	nonEmpty := make([]bool, n)
	Par(m, n, func(i int) { nonEmpty[i] = counts[i] > 0 })
	tmp := make([]T, a.Total)
	PermuteIf(m, tmp, values, a.HPointers, nonEmpty)
	SegCopy(m, dst, tmp, a.Flags)
}

// Pack moves the flagged elements of src, in order, to the front of a
// dense result vector and returns how many there are: the paper's pack
// operation used for load balancing (§2.5, Figure 11): an enumerate and
// a permute. Only dst[:count] is written. dst must not alias src.
func Pack[T any](m *Machine, dst, src []T, flags []bool) int {
	m.Use(UseLoadBalance)
	n := len(src)
	idx := make([]int, n)
	count := Enumerate(m, idx, flags)
	if count == 0 {
		return 0
	}
	PermuteIf(m, dst[:count], src, idx, flags)
	return count
}

// PackIndex returns, for the flagged elements in order, their original
// indices: the inverse bookkeeping many algorithms need next to Pack.
// It costs the same enumerate + permute.
func PackIndex(m *Machine, dst []int, flags []bool) int {
	m.Use(UseLoadBalance)
	n := len(flags)
	idx := make([]int, n)
	count := Enumerate(m, idx, flags)
	if count == 0 {
		return 0
	}
	iota := make([]int, n)
	Par(m, n, func(i int) { iota[i] = i })
	PermuteIf(m, dst[:count], iota, idx, flags)
	return count
}
