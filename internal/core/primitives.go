package core

import (
	"fmt"
	"math"
	"sync"

	"scans/internal/scan"
)

// Par executes f(i) for every i in [0, n): one elementwise program step.
// It is the machine's "each processor executes O(1) local work"
// primitive; every elementwise vector operation in the paper's notation
// (§2.1, e.g. C <- A + B) is a Par call. f must be safe to call
// concurrently for distinct i when the machine has multiple workers.
func Par(m *Machine, n int, f func(i int)) {
	m.chargeElementwise(n)
	w := m.workers
	if w <= 0 {
		w = scan.Workers(0)
	}
	if w <= 1 || n < 4096 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for b := 0; b < w; b++ {
		lo, hi := b*n/w, (b+1)*n/w
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// kernelWorkers translates the machine's worker setting into the p
// argument of the scan kernels (1 forces serial).
func (m *Machine) kernelWorkers() int {
	if m.workers == 0 {
		return 0 // GOMAXPROCS
	}
	return m.workers
}

// --- Unsegmented scans (§2.1). All are exclusive, per the paper. ---

// PlusScan computes dst[i] = src[0]+...+src[i-1] and returns the total
// sum: the paper's +-scan, one of the two primitives.
func PlusScan(m *Machine, dst, src []int) int {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.Add[int]{}, dst, src, m.kernelWorkers())
	if len(src) == 0 {
		return 0
	}
	return dst[len(dst)-1] + src[len(src)-1]
}

// MaxScan computes the exclusive max-scan of src: the paper's second
// primitive. The identity (dst[0]) is math.MinInt.
func MaxScan(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.MaxIntOp, dst, src, m.kernelWorkers())
}

// MinScan computes the exclusive min-scan of src; identity math.MaxInt.
func MinScan(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.MinIntOp, dst, src, m.kernelWorkers())
}

// OrScan computes the exclusive or-scan of src.
func OrScan(m *Machine, dst, src []bool) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.Or{}, dst, src, m.kernelWorkers())
}

// AndScan computes the exclusive and-scan of src.
func AndScan(m *Machine, dst, src []bool) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.And{}, dst, src, m.kernelWorkers())
}

// FPlusScan computes the exclusive +-scan of float64s. The paper
// implements floating-point scans on the integer primitives ([7]); the
// machine charges it as one scan.
func FPlusScan(m *Machine, dst, src []float64) float64 {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.Add[float64]{}, dst, src, m.kernelWorkers())
	if len(src) == 0 {
		return 0
	}
	return dst[len(dst)-1] + src[len(src)-1]
}

// FMulScan computes the exclusive ×-scan of float64s (identity 1):
// Stone's powers-of-x scan from the paper's appendix.
func FMulScan(m *Machine, dst, src []float64) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.Mul[float64]{}, dst, src, m.kernelWorkers())
}

// FMaxScan computes the exclusive max-scan of float64s; identity -Inf.
func FMaxScan(m *Machine, dst, src []float64) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.MaxFloat64Op, dst, src, m.kernelWorkers())
}

// FMinScan computes the exclusive min-scan of float64s; identity +Inf.
func FMinScan(m *Machine, dst, src []float64) {
	m.chargeScan(len(src))
	scan.ExclusiveParallel(scan.MinFloat64Op, dst, src, m.kernelWorkers())
}

// --- Backward scans (§2.1: "backward versions of each of these"). ---

// BackPlusScan computes dst[i] = src[i+1]+...+src[n-1].
func BackPlusScan(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.ExclusiveBackwardParallel(scan.Add[int]{}, dst, src, m.kernelWorkers())
}

// BackMaxScan computes the backward exclusive max-scan; identity MinInt.
func BackMaxScan(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.ExclusiveBackwardParallel(scan.MaxIntOp, dst, src, m.kernelWorkers())
}

// BackMinScan computes the backward exclusive min-scan; identity MaxInt.
func BackMinScan(m *Machine, dst, src []int) {
	m.chargeScan(len(src))
	scan.ExclusiveBackwardParallel(scan.MinIntOp, dst, src, m.kernelWorkers())
}

// FBackMaxScan computes the backward exclusive float max-scan.
func FBackMaxScan(m *Machine, dst, src []float64) {
	m.chargeScan(len(src))
	scan.ExclusiveBackwardParallel(scan.MaxFloat64Op, dst, src, m.kernelWorkers())
}

// FBackMinScan computes the backward exclusive float min-scan (the
// min-backscan of the halving merge, §2.5.1).
func FBackMinScan(m *Machine, dst, src []float64) {
	m.chargeScan(len(src))
	scan.ExclusiveBackwardParallel(scan.MinFloat64Op, dst, src, m.kernelWorkers())
}

// BackMinScanInts is BackMinScan for int data (alias kept for symmetry
// with the float variants used by the halving merge).
func BackMinScanInts(m *Machine, dst, src []int) { BackMinScan(m, dst, src) }

// --- Segmented scans (§2.3). flags[i] marks the start of a segment;
// position 0 always starts one. ---

// SegPlusScan computes the segmented exclusive +-scan.
func SegPlusScan(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.Add[int]{}, dst, src, flags, m.kernelWorkers())
}

// SegMaxScan computes the segmented exclusive max-scan; identity MinInt.
func SegMaxScan(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.MaxIntOp, dst, src, flags, m.kernelWorkers())
}

// SegMinScan computes the segmented exclusive min-scan; identity MaxInt.
func SegMinScan(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.MinIntOp, dst, src, flags, m.kernelWorkers())
}

// SegOrScan computes the segmented exclusive or-scan.
func SegOrScan(m *Machine, dst, src []bool, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.Or{}, dst, src, flags, m.kernelWorkers())
}

// SegFPlusScan computes the segmented exclusive float +-scan.
func SegFPlusScan(m *Machine, dst, src []float64, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.Add[float64]{}, dst, src, flags, m.kernelWorkers())
}

// SegFMaxScan computes the segmented exclusive float max-scan.
func SegFMaxScan(m *Machine, dst, src []float64, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.MaxFloat64Op, dst, src, flags, m.kernelWorkers())
}

// SegFMinScan computes the segmented exclusive float min-scan.
func SegFMinScan(m *Machine, dst, src []float64, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveParallel(scan.MinFloat64Op, dst, src, flags, m.kernelWorkers())
}

// SegBackPlusScan computes the backward segmented exclusive +-scan.
func SegBackPlusScan(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveBackward(scan.Add[int]{}, dst, src, flags)
}

// SegBackMaxScan computes the backward segmented exclusive max-scan.
func SegBackMaxScan(m *Machine, dst, src []int, flags []bool) {
	m.chargeSegScan(len(src))
	m.Use(UseSegmented)
	scan.SegExclusiveBackward(scan.MaxIntOp, dst, src, flags)
}

// --- Data movement. ---

// Permute scatters src into dst: dst[index[i]] = src[i], the paper's
// permute operation (§2.1). Under the EREW contract all indices must be
// distinct and in range; the machine verifies this when its exclusivity
// check is on and panics with the offending pair, because a collision is
// an algorithm bug, not an input error. dst must not alias src.
func Permute[T any](m *Machine, dst, src []T, index []int) {
	n := len(src)
	if len(index) != n || len(dst) < n {
		panic(fmt.Sprintf("core: Permute: src %d, index %d, dst %d", n, len(index), len(dst)))
	}
	m.chargePermute(n)
	if m.checkExclusive {
		seen := make([]int32, len(dst))
		for i := range seen {
			seen[i] = -1
		}
		for i, ix := range index {
			if ix < 0 || ix >= len(dst) {
				panic(fmt.Sprintf("core: Permute: index[%d] = %d out of range [0,%d)", i, ix, len(dst)))
			}
			if seen[ix] >= 0 {
				panic(fmt.Sprintf("core: Permute: EREW violation: processors %d and %d both write location %d", seen[ix], i, ix))
			}
			seen[ix] = int32(i)
		}
	}
	for i, ix := range index {
		dst[ix] = src[i]
	}
}

// PermuteWrite is Permute with the exclusivity check waived for this one
// call: "the simplest form of concurrent-write (one of the values gets
// written)" that the paper's line-drawing routine needs to place pixels
// on a grid (§2.4.1). Later writes win, deterministically.
func PermuteWrite[T any](m *Machine, dst, src []T, index []int) {
	n := len(src)
	if len(index) != n {
		panic(fmt.Sprintf("core: PermuteWrite: src %d, index %d", n, len(index)))
	}
	m.chargePermute(n)
	for i, ix := range index {
		dst[ix] = src[i]
	}
}

// Gather reads through an index vector: dst[i] = src[index[i]], an EREW
// memory reference. Under the EREW contract all reads must be from
// distinct locations; the machine verifies when the check is on.
func Gather[T any](m *Machine, dst, src []T, index []int) {
	n := len(index)
	if len(dst) < n {
		panic(fmt.Sprintf("core: Gather: index %d, dst %d", n, len(dst)))
	}
	m.chargePermute(n)
	if m.checkExclusive {
		seen := make([]int32, len(src))
		for i := range seen {
			seen[i] = -1
		}
		for i, ix := range index {
			if ix < 0 || ix >= len(src) {
				panic(fmt.Sprintf("core: Gather: index[%d] = %d out of range [0,%d)", i, ix, len(src)))
			}
			if seen[ix] >= 0 {
				panic(fmt.Sprintf("core: Gather: EREW violation: processors %d and %d both read location %d", seen[ix], i, ix))
			}
			seen[ix] = int32(i)
		}
	}
	for i, ix := range index {
		dst[i] = src[ix]
	}
}

// PermuteMinWrite scatters src through index resolving write collisions
// to the minimum value: the extended concurrent-write the paper's
// Table 1 footnote describes for the CRCW minimum-spanning-tree
// algorithm ("if several processors write to the same location ... the
// minimum value is written"). Only meaningful on a ModelCRCW machine;
// it panics elsewhere so EREW algorithms cannot silently depend on it.
func PermuteMinWrite(m *Machine, dst, src []int, index []int) {
	if m.model != ModelCRCW {
		panic("core: PermuteMinWrite: requires a ModelCRCW machine")
	}
	n := len(src)
	if len(index) != n {
		panic(fmt.Sprintf("core: PermuteMinWrite: src %d, index %d", n, len(index)))
	}
	m.chargePermute(n)
	for i, ix := range index {
		if src[i] < dst[ix] {
			dst[ix] = src[i]
		}
	}
}

// PermuteMinWriteIf is PermuteMinWrite with per-processor participation.
func PermuteMinWriteIf(m *Machine, dst, src []int, index []int, flags []bool) {
	if m.model != ModelCRCW {
		panic("core: PermuteMinWriteIf: requires a ModelCRCW machine")
	}
	n := len(src)
	if len(index) != n || len(flags) != n {
		panic(fmt.Sprintf("core: PermuteMinWriteIf: src %d, index %d, flags %d", n, len(index), len(flags)))
	}
	m.chargePermute(n)
	for i, ix := range index {
		if flags[i] && src[i] < dst[ix] {
			dst[ix] = src[i]
		}
	}
}

// GatherShared reads through an index vector like Gather but without the
// exclusive-read check: a CREW memory reference ("concurrent read"),
// which pointer-jumping algorithms need because every list node's
// predecessor and the tail itself read the tail's cell in the same step.
// Charged like any memory reference.
func GatherShared[T any](m *Machine, dst, src []T, index []int) {
	n := len(index)
	if len(dst) < n {
		panic(fmt.Sprintf("core: GatherShared: index %d, dst %d", n, len(dst)))
	}
	m.chargePermute(n)
	for i, ix := range index {
		dst[i] = src[ix]
	}
}

// MinIdentity and MaxIdentity are the identities the int scans use, so
// algorithm code can test for "no value yet" without importing math.
const (
	MinIdentity = math.MinInt // identity of MaxScan
	MaxIdentity = math.MaxInt // identity of MinScan
)
