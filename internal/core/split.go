package core

// The split operation (§2.2.1, Figure 3) and its segmented and three-way
// variants (§2.3.1). All cost O(1) program steps.

// SplitIndex computes the permutation indices of the split operation:
// elements with a false flag are packed to the bottom of the vector in
// order, elements with a true flag to the top in order (Figure 3).
func SplitIndex(m *Machine, index []int, flags []bool) {
	m.Use(UseSplit)
	n := len(flags)
	notFlags := make([]bool, n)
	Par(m, n, func(i int) { notFlags[i] = !flags[i] })
	iDown := make([]int, n)
	Enumerate(m, iDown, notFlags)
	iUp := make([]int, n)
	BackEnumerate(m, iUp, flags)
	Par(m, n, func(i int) {
		if flags[i] {
			index[i] = n - iUp[i] - 1
		} else {
			index[i] = iDown[i]
		}
	})
}

// Split permutes src so false-flagged elements come first (in order)
// followed by true-flagged elements (in order), writing into dst. It
// returns the number of false-flagged elements (the boundary). dst must
// not alias src.
func Split[T any](m *Machine, dst, src []T, flags []bool) int {
	n := len(src)
	index := make([]int, n)
	SplitIndex(m, index, flags)
	Permute(m, dst, src, index)
	falses := 0
	for _, f := range flags {
		if !f {
			falses++
		}
	}
	return falses
}

// SegSplitIndex computes per-segment split indices: within each segment
// (flags marks segment heads), false-flagged elements pack to the bottom
// of the segment, true-flagged to the top, order preserved. Segments
// themselves stay in place.
func SegSplitIndex(m *Machine, index []int, elems []bool, segFlags []bool) {
	m.Use(UseSplit)
	n := len(elems)
	notElems := make([]bool, n)
	Par(m, n, func(i int) { notElems[i] = !elems[i] })
	rankF := make([]int, n)
	SegEnumerate(m, rankF, notElems, segFlags)
	rankT := make([]int, n)
	SegEnumerate(m, rankT, elems, segFlags)
	countF := make([]int, n)
	onesF := make([]int, n)
	Par(m, n, func(i int) {
		if notElems[i] {
			onesF[i] = 1
		}
	})
	SegPlusDistribute(m, countF, onesF, segFlags)
	offset := make([]int, n)
	SegHeadIndex(m, offset, segFlags)
	Par(m, n, func(i int) {
		if elems[i] {
			index[i] = offset[i] + countF[i] + rankT[i]
		} else {
			index[i] = offset[i] + rankF[i]
		}
	})
}

// Cmp3 classifies an element for a three-way split.
type Cmp3 int8

const (
	// Less sorts below the pivot.
	Less Cmp3 = iota
	// Equal sorts with the pivot.
	Equal
	// Greater sorts above the pivot.
	Greater
)

// SegSplit3Index computes per-segment three-way split indices: within
// each segment, Less elements pack first, then Equal, then Greater, each
// group order-preserving. This is the split the parallel quicksort uses
// (§2.3.1, "splits into three sets instead of two, and which is
// segmented").
func SegSplit3Index(m *Machine, index []int, cmp []Cmp3, segFlags []bool) {
	m.Use(UseSplit)
	n := len(cmp)
	isL := make([]bool, n)
	isE := make([]bool, n)
	isG := make([]bool, n)
	Par(m, n, func(i int) {
		switch cmp[i] {
		case Less:
			isL[i] = true
		case Equal:
			isE[i] = true
		default:
			isG[i] = true
		}
	})
	rankL := make([]int, n)
	SegEnumerate(m, rankL, isL, segFlags)
	rankE := make([]int, n)
	SegEnumerate(m, rankE, isE, segFlags)
	rankG := make([]int, n)
	SegEnumerate(m, rankG, isG, segFlags)
	onesL := make([]int, n)
	onesE := make([]int, n)
	Par(m, n, func(i int) {
		if isL[i] {
			onesL[i] = 1
		}
		if isE[i] {
			onesE[i] = 1
		}
	})
	countL := make([]int, n)
	SegPlusDistribute(m, countL, onesL, segFlags)
	countE := make([]int, n)
	SegPlusDistribute(m, countE, onesE, segFlags)
	offset := make([]int, n)
	SegHeadIndex(m, offset, segFlags)
	Par(m, n, func(i int) {
		switch cmp[i] {
		case Less:
			index[i] = offset[i] + rankL[i]
		case Equal:
			index[i] = offset[i] + countL[i] + rankE[i]
		default:
			index[i] = offset[i] + countL[i] + countE[i] + rankG[i]
		}
	})
}
