package serve

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"scans/internal/fault"
)

// pushTenant enqueues a bare future tagged with a tenant name.
func pushTenant(t *tenantQueues, tenant string, n int) []*Future {
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = &Future{tenant: tenant, done: make(chan struct{})}
		t.push(futs[i])
	}
	return futs
}

func popTenants(t *tenantQueues, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		f := t.pop()
		if f == nil {
			break
		}
		out = append(out, f.tenant)
	}
	return out
}

func TestTenantQueuesRoundRobin(t *testing.T) {
	// A flooding tenant A (10 queued) and a light tenant B (2 queued):
	// equal weights must interleave A,B,A,B before A gets the rest, so
	// B's requests ride in the very next batch instead of behind A's
	// backlog.
	q := newTenantQueues(nil)
	pushTenant(q, "A", 10)
	pushTenant(q, "B", 2)
	got := popTenants(q, 4)
	want := []string{"A", "B", "A", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pick order = %v, want %v", got, want)
	}
	// B drained: the rest is all A, FIFO.
	rest := popTenants(q, 20)
	if len(rest) != 8 {
		t.Fatalf("drained %d more, want 8", len(rest))
	}
	for _, tn := range rest {
		if tn != "A" {
			t.Fatalf("unexpected tenant %q after B drained", tn)
		}
	}
	if q.pop() != nil || !q.empty() {
		t.Fatal("queues not empty after drain")
	}
}

func TestTenantQueuesWeights(t *testing.T) {
	// Weight 3 for A means A gets 3 slots per round to B's 1.
	q := newTenantQueues(map[string]int{"A": 3})
	pushTenant(q, "A", 6)
	pushTenant(q, "B", 2)
	got := popTenants(q, 8)
	want := []string{"A", "A", "A", "B", "A", "A", "A", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("weighted pick order = %v, want %v", got, want)
	}
}

func TestTenantQueuesSingleTenantIsFIFO(t *testing.T) {
	q := newTenantQueues(nil)
	futs := pushTenant(q, "", 5)
	for i, want := range futs {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d broke FIFO order", i)
		}
	}
}

func TestTenantQueuesInterleavedPushPop(t *testing.T) {
	// Tenants draining and reappearing must not corrupt the ring.
	q := newTenantQueues(nil)
	pushTenant(q, "A", 1)
	pushTenant(q, "B", 1)
	if got := popTenants(q, 2); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("first round = %v", got)
	}
	pushTenant(q, "B", 2)
	pushTenant(q, "A", 1)
	got := popTenants(q, 3)
	if !reflect.DeepEqual(got, []string{"B", "A", "B"}) {
		t.Fatalf("second round = %v, want [B A B]", got)
	}
	if !q.empty() {
		t.Fatal("not empty")
	}
}

func TestDeadlineExpiredInQueueIsDropped(t *testing.T) {
	// A request whose context expires while it waits in the queue must
	// resolve with the context error and NEVER reach a kernel pass.
	s := newStopped(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	f, err := s.SubmitReq(ctx, Req{Spec: Spec{Op: OpSum}, Data: []int64{1, 2, 3}})
	if err != nil {
		t.Fatalf("SubmitReq: %v", err)
	}
	<-ctx.Done() // expire while queued (server not started)
	s.start()
	res, err := f.Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = (%v, %v), want DeadlineExceeded", res, err)
	}
	if res != nil {
		t.Fatalf("expired request produced a result: %v", res)
	}
	s.Close()
	st := s.Stats()
	if st.DeadlineDrops != 1 || st.Served != 0 {
		t.Fatalf("stats = %v, want 1 deadline drop, 0 served", st)
	}
}

func TestCanceledInQueueIsDropped(t *testing.T) {
	s := newStopped(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	f, err := s.SubmitReq(ctx, Req{Spec: Spec{Op: OpSum}, Data: []int64{1}})
	if err != nil {
		t.Fatalf("SubmitReq: %v", err)
	}
	cancel()
	s.start()
	if _, err := f.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want Canceled", err)
	}
	s.Close()
	if st := s.Stats(); st.DeadlineDrops != 1 {
		t.Fatalf("DeadlineDrops = %d, want 1", st.DeadlineDrops)
	}
}

func TestAlreadyExpiredContextRejectedAtAdmission(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SubmitReq(ctx, Req{Spec: Spec{Op: OpSum}, Data: []int64{1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitReq on dead ctx = %v, want Canceled", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Requests != 0 {
		t.Fatalf("stats = %v, want rejected=1 requests=0", st)
	}
}

func TestQueueAgeShed(t *testing.T) {
	// A request older than QueueAgeLimit is shed with ErrShed before
	// any kernel pass — stale work is dropped, not executed.
	s := newStopped(Config{QueueAgeLimit: time.Millisecond})
	f, err := s.SubmitAsync(Spec{Op: OpSum}, []int64{1, 2})
	if err != nil {
		t.Fatalf("SubmitAsync: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	s.start()
	if _, err := f.Wait(); !errors.Is(err, ErrShed) {
		t.Fatalf("Wait err = %v, want ErrShed", err)
	}
	s.Close()
	st := s.Stats()
	if st.Shed != 1 || st.Served != 0 || st.Batches != 0 {
		t.Fatalf("stats = %v, want shed=1 served=0 batches=0", st)
	}
}

func TestFreshRequestsAreNotShed(t *testing.T) {
	s := New(Config{QueueAgeLimit: time.Second})
	defer s.Close()
	got, err := s.Submit(Spec{Op: OpSum, Kind: Inclusive}, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if want := []int64{1, 3, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Submit = %v, want %v", got, want)
	}
}

func TestPanicIsolation(t *testing.T) {
	// An injected kernel panic must fail that batch's futures with
	// ErrInternal and leave the server serving.
	faults := fault.New(1)
	s := New(Config{Faults: faults})
	defer s.Close()

	faults.Arm(fault.KernelPanic, 1)
	if _, err := s.Submit(Spec{Op: OpSum}, []int64{1, 2, 3}); !errors.Is(err, ErrInternal) {
		t.Fatalf("Submit during armed panic = %v, want ErrInternal", err)
	}
	faults.Disarm(fault.KernelPanic)

	// The server survived: the next request is served normally.
	got, err := s.Submit(Spec{Op: OpSum}, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if want := []int64{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-panic result = %v, want %v", got, want)
	}
	st := s.Stats()
	if st.Panics < 1 || st.PanicFailed < 1 {
		t.Fatalf("stats = %v, want >=1 panic and >=1 panic-failed future", st)
	}
	if st.Served < 1 {
		t.Fatalf("stats = %v, want >=1 served after recovery", st)
	}
}

func TestPanicIsolationConfinedToGroup(t *testing.T) {
	// Two groups in one batch, panic on the second pass only: the
	// first group's futures must still get results. Arm with a firing
	// sequence that hits pass 2: easier — arm prob 1, submit two specs
	// in one batch; both groups panic, both get ErrInternal; then
	// disarm and verify both specs serve. The per-group confinement is
	// what runGroupSafe guarantees; the cross-group survival case is
	// covered by the probabilistic chaos soak.
	faults := fault.New(2)
	s := New(Config{Faults: faults, MinBatchRequests: 2, MaxWait: 50 * time.Millisecond})
	defer s.Close()
	faults.Arm(fault.KernelPanic, 1)
	fa, err := s.SubmitAsync(Spec{Op: OpSum}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.SubmitAsync(Spec{Op: OpMax}, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Wait(); !errors.Is(err, ErrInternal) {
		t.Fatalf("group A err = %v, want ErrInternal", err)
	}
	if _, err := fb.Wait(); !errors.Is(err, ErrInternal) {
		t.Fatalf("group B err = %v, want ErrInternal", err)
	}
	faults.Disarm(fault.KernelPanic)
	for _, spec := range []Spec{{Op: OpSum}, {Op: OpMax}} {
		if _, err := s.Submit(spec, []int64{1, 2}); err != nil {
			t.Fatalf("%v after panics: %v", spec, err)
		}
	}
}

func TestSlowKernelFaultDelays(t *testing.T) {
	faults := fault.New(3)
	faults.ArmSleep(fault.KernelSlow, 1, 20*time.Millisecond)
	s := New(Config{Faults: faults})
	defer s.Close()
	start := time.Now()
	if _, err := s.Submit(Spec{Op: OpSum}, []int64{1}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow-kernel request returned in %v, want >= ~20ms", d)
	}
}

func TestTerminalOutcomeAccounting(t *testing.T) {
	// Requests == Served + DeadlineDrops + Shed + PanicFailed after a
	// drain: every accepted request has exactly one terminal outcome.
	faults := fault.New(4)
	s := New(Config{Faults: faults, QueueAgeLimit: 50 * time.Millisecond})
	faults.Arm(fault.KernelPanic, 0.2)
	for i := 0; i < 200; i++ {
		var (
			f   *Future
			err error
		)
		if i%5 == 0 {
			// Cancel racing the batcher: either a deadline drop or a
			// served/panicked result — both are legal terminal outcomes.
			ctx, cancel := context.WithCancel(context.Background())
			f, err = s.SubmitReq(ctx, Req{Spec: Spec{Op: OpSum}, Data: []int64{int64(i), 1}})
			cancel()
		} else {
			f, err = s.SubmitAsync(Spec{Op: OpSum}, []int64{int64(i), 1})
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%7 == 0 {
			f.Wait()
		}
	}
	s.Close()
	st := s.Stats()
	if got := st.Served + st.DeadlineDrops + st.Shed + st.PanicFailed; got != st.Requests {
		t.Fatalf("accounting broken: served+drops+shed+panicked = %d, requests = %d (%v)", got, st.Requests, st)
	}
}

func TestRetryPolicyClassification(t *testing.T) {
	p := RetryPolicy{}
	retryable := []error{ErrOverloaded, ErrShed, ErrInternal, errors.New("conn reset")}
	for _, err := range retryable {
		if !p.Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	fatal := []error{nil, ErrBadRequest, ErrClosed, context.DeadlineExceeded, context.Canceled}
	for _, err := range fatal {
		if p.Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5}
	for attempt := 1; attempt <= 20; attempt++ {
		d := p.Backoff(attempt)
		if d < 0 || d > 8*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, outside (0, MaxDelay]", attempt, d)
		}
	}
	// Jitterless is exact exponential, capped.
	exact := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: -1}
	for attempt, want := range map[int]time.Duration{
		1: time.Millisecond, 2: 2 * time.Millisecond, 3: 4 * time.Millisecond,
		4: 8 * time.Millisecond, 5: 8 * time.Millisecond, 60: 8 * time.Millisecond,
	} {
		if got := exact.Backoff(attempt); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
}

func TestRetryPolicyDo(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	fails := 2
	attempts, err := p.Do(context.Background(), func() error {
		if fails > 0 {
			fails--
			return ErrOverloaded
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, nil)", attempts, err)
	}
	attempts, err = p.Do(context.Background(), func() error { return ErrBadRequest })
	if !errors.Is(err, ErrBadRequest) || attempts != 1 {
		t.Fatalf("Do fatal = (%d, %v), want (1, ErrBadRequest)", attempts, err)
	}
	attempts, err = p.Do(context.Background(), func() error { return ErrInternal })
	if !errors.Is(err, ErrInternal) || attempts != 5 {
		t.Fatalf("Do exhausted = (%d, %v), want (5, ErrInternal)", attempts, err)
	}
}

func TestExtractID(t *testing.T) {
	cases := map[string]uint64{
		`{"id":42,"op":"sum"`:        42,
		`{"op":"sum","id": 7, "x"`:   7,
		`{"id" : 123`:                123,
		`{"op":"sum"}`:               0,
		`garbage`:                    0,
		`{"id":"notanumber"}`:        0,
		`{"id":18446744073709551615`: 18446744073709551615,

		// A string VALUE spelled "id" is not the id key: the old scanner
		// matched the first `"id"` it saw anywhere and read the neighbor
		// of an unrelated field (9 here, or garbage after a tenant named
		// "id"). Only a top-level key followed by a colon counts.
		`{"tenant":"id","id":9}`:       9,
		`{"tenant":"id","seq":3}`:      0,
		`{"x":"\"id\":7","id":6}`:      6, // escaped quotes inside a value
		`{"meta":{"id":5},"id":8}`:     8, // nested object's id is not ours
		`{"meta":{"id":5},"op":"sum"`:  0,
		`[{"id":5}]`:                   0, // top level is an array, not our envelope
		`{"data":[1,2,3],"id":4`:       4,
		`{"id":99999999999999999999`:   0, // > MaxUint64: reject, don't wrap
		`{"id":184467440737095516150`:  0, // MaxUint64*10: the wraparound case
		`{"id":}`:                      0, // key present, no digits
		`{"op":"truncated mid-str`:     0, // unterminated string: nothing after it is trustworthy
		`{"op":"sum","id":0,"data":[]`: 0, // explicit id 0 is indistinguishable from absent, by protocol
	}
	for line, want := range cases {
		if got := extractID([]byte(line)); got != want {
			t.Errorf("extractID(%q) = %d, want %d", line, got, want)
		}
	}
}

func TestWireErrorCodeRoundTrip(t *testing.T) {
	for _, err := range []error{ErrBadRequest, ErrOverloaded, ErrClosed, ErrInternal, ErrShed} {
		code := codeForError(err)
		back := errorForCode(code, err.Error())
		if !errors.Is(back, err) {
			t.Errorf("round trip lost %v (code %q, got %v)", err, code, back)
		}
	}
	if !errors.Is(errorForCode(CodeDeadline, "x"), context.DeadlineExceeded) {
		t.Error("deadline code did not map to context.DeadlineExceeded")
	}
	if codeForError(context.Canceled) != CodeDeadline {
		t.Error("canceled not classified as deadline code")
	}
	if !errors.Is(errorForCode(CodeBadJSON, "x"), ErrBadRequest) {
		t.Error("bad_json code did not map to ErrBadRequest")
	}
}

// TestRetryPolicyBackoffShiftOverflow is the regression for the shift
// overflow: BaseDelay<<(attempt-1) wraps at high attempt counts, and
// the wrapped value can land on a SMALL POSITIVE duration that the old
// `d <= 0 || d > MaxDelay` check waved through — collapsing capped
// backoff into a near-hot retry loop exactly when a long outage has
// pushed attempts high. Every delay past the cap point must be exactly
// MaxDelay.
func TestRetryPolicyBackoffShiftOverflow(t *testing.T) {
	// (1<<40)+1 ns shifted by 24 wraps to exactly 1<<24 ns ≈ 16.8ms:
	// positive, under MaxDelay, and completely wrong. Pre-fix code
	// returned it; the fix proves the shift fits before performing it.
	p := RetryPolicy{BaseDelay: (1 << 40) + 1, MaxDelay: 100 * time.Millisecond, Jitter: -1}
	if got := p.Backoff(25); got != p.MaxDelay {
		t.Fatalf("Backoff(25) = %v, want MaxDelay %v (wrapped shift escaped the cap)", got, p.MaxDelay)
	}
	for _, attempt := range []int{2, 10, 24, 26, 62, 63, 64, 100, 1000, 1 << 30} {
		if got := p.Backoff(attempt); got != p.MaxDelay {
			t.Fatalf("Backoff(%d) = %v, want MaxDelay %v", attempt, got, p.MaxDelay)
		}
	}
	// Jittered delays stay in (0, MaxDelay] at the same attempt counts.
	jittered := RetryPolicy{BaseDelay: (1 << 40) + 1, MaxDelay: 100 * time.Millisecond, Jitter: 0.5}
	for _, attempt := range []int{25, 63, 64, 1000} {
		if got := jittered.Backoff(attempt); got <= 0 || got > jittered.MaxDelay {
			t.Fatalf("jittered Backoff(%d) = %v, outside (0, MaxDelay]", attempt, got)
		}
	}
	// Sanity below the cap: the exponential ramp is untouched.
	small := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Hour, Jitter: -1}
	if got := small.Backoff(11); got != 1024*time.Millisecond {
		t.Fatalf("Backoff(11) = %v, want 1.024s", got)
	}
}

// TestDeadlineMSRoundsUp is the regression for the sub-millisecond
// truncation: a live 999µs budget used to truncate to timeout_ms=0,
// which on the wire means NO timeout — the tightest deadlines were the
// ones silently dropped. The conversion must round up.
func TestDeadlineMSRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{999 * time.Microsecond, 1},
		{time.Microsecond, 1},
		{time.Millisecond, 1},
		{time.Millisecond + 500*time.Microsecond, 2},
		{2 * time.Millisecond, 2},
		{0, 0},
		{-5 * time.Millisecond, 0},
	}
	for _, c := range cases {
		if got := deadlineMS(c.d); got != c.want {
			t.Errorf("deadlineMS(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestTenantQueuesPropertyRandomized drives random push/pop
// interleavings through the fairness structure and checks the ring and
// credit invariants the batcher depends on:
//
//  1. Conservation: every pushed future pops exactly once (no
//     duplicates, no losses), and a full drain empties the structure.
//  2. Per-tenant FIFO: a tenant's futures pop in push order.
//  3. Coherence: empty() agrees with the outstanding count at every
//     step, and pop on empty returns nil.
//  4. Bounded starvation: a continuously-pending tenant is served at
//     least once per total-weight pops — WRR's whole point.
func TestTenantQueuesPropertyRandomized(t *testing.T) {
	tenants := []string{"a", "b", "c", "d", "e"}
	weights := map[string]int{"a": 1, "b": 2, "c": 3} // d, e default to 1
	totalWeight := 0
	for _, tn := range tenants {
		totalWeight += max(weights[tn], 1)
	}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		q := newTenantQueues(weights)
		var (
			pushed  = map[string][]*Future{}
			nPopped = map[string]int{}
			seen    = map[*Future]bool{}
			// starve[tn] counts pops of OTHER tenants since tn was last
			// served while tn had work pending.
			starve  = map[string]int{}
			pending = 0
		)
		checkPop := func() {
			f := q.pop()
			if f == nil {
				t.Fatalf("trial %d: pop = nil with %d pending", trial, pending)
			}
			if seen[f] {
				t.Fatalf("trial %d: future popped twice (tenant %q)", trial, f.tenant)
			}
			seen[f] = true
			if want := pushed[f.tenant][nPopped[f.tenant]]; f != want {
				t.Fatalf("trial %d: tenant %q popped out of FIFO order", trial, f.tenant)
			}
			nPopped[f.tenant]++
			pending--
			starve[f.tenant] = 0
			for tn := range starve {
				if tn == f.tenant {
					continue
				}
				if nPopped[tn] == len(pushed[tn]) {
					delete(starve, tn) // drained; counter restarts on re-entry
					continue
				}
				starve[tn]++
				if starve[tn] > totalWeight {
					t.Fatalf("trial %d: tenant %q starved — %d consecutive pops of others (total weight %d)",
						trial, tn, starve[tn], totalWeight)
				}
			}
		}
		for step := 0; step < 500; step++ {
			if pending == 0 || rng.Intn(2) == 0 {
				tn := tenants[rng.Intn(len(tenants))]
				f := &Future{tenant: tn, done: make(chan struct{})}
				q.push(f)
				pushed[tn] = append(pushed[tn], f)
				pending++
				if _, ok := starve[tn]; !ok {
					starve[tn] = 0
				}
			} else {
				checkPop()
			}
			if q.empty() != (pending == 0) {
				t.Fatalf("trial %d: empty() = %v with %d pending", trial, q.empty(), pending)
			}
		}
		for pending > 0 {
			checkPop()
		}
		if q.pop() != nil || !q.empty() {
			t.Fatalf("trial %d: structure not empty after full drain", trial)
		}
		total := 0
		for tn, futs := range pushed {
			if nPopped[tn] != len(futs) {
				t.Fatalf("trial %d: tenant %q lost futures: pushed %d, popped %d", trial, tn, len(futs), nPopped[tn])
			}
			total += len(futs)
		}
		if len(seen) != total {
			t.Fatalf("trial %d: conservation broken: %d unique pops for %d pushes", trial, len(seen), total)
		}
	}
}
