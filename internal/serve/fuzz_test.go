package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"scans/internal/arena"
	"scans/internal/binwire"
)

// FuzzBinwireMatchesJSON drives fuzz-derived request sequences through
// a JSON client and a binary client against one server and requires the
// two codecs to be indistinguishable: identical results (bitwise for
// floats) and identical error classification. It also throws framed
// fuzz garbage at the binary listener, which must answer every intact
// frame and survive.
//
// One documented divergence is tolerated: too_large. JSON spends up to
// 21 bytes per element against the line budget where binary spends
// exactly 8 against the frame budget, so near the budget JSON refuses
// vectors binary happily serves. That is the protocol's selling point,
// not a bug — the fuzz only forgives it in that direction and only in
// the size band where the budgets genuinely part ways.

// fuzzBudget is the server's MaxLineBytes during fuzzing: small enough
// that fuzz-sized vectors can reach too_large on the JSON side.
const fuzzBudget = 1 << 14

// fuzzDivergeMin is the smallest element count where the JSON response
// budget (48 + 21n > fuzzBudget) can fire while binary's exact sizing
// does not.
const fuzzDivergeMin = (fuzzBudget - 48) / 21

var (
	fuzzSrvOnce sync.Once
	fuzzSrvAddr string
)

// fuzzServer starts the shared fuzz server once per worker process (it
// lives until the process exits — fuzz workers have no clean shutdown
// hook, and one listener serves every iteration).
func fuzzServer(f *testing.F) string {
	fuzzSrvOnce.Do(func() {
		ns, err := ListenNet("127.0.0.1:0", Config{}, NetConfig{MaxLineBytes: fuzzBudget})
		if err != nil {
			f.Fatalf("fuzz server: %v", err)
		}
		fuzzSrvAddr = ns.Addr()
	})
	return fuzzSrvAddr
}

// fuzzScript doles out fuzz bytes as operation codes and parameters.
type fuzzScript struct {
	b   []byte
	off int
}

func (s *fuzzScript) left() int { return len(s.b) - s.off }

func (s *fuzzScript) byte() byte {
	if s.off >= len(s.b) {
		return 0
	}
	v := s.b[s.off]
	s.off++
	return v
}

func (s *fuzzScript) u16() int {
	return int(s.byte()) | int(s.byte())<<8
}

func (s *fuzzScript) take(n int) []byte {
	if n > s.left() {
		n = s.left()
	}
	v := s.b[s.off : s.off+n]
	s.off += n
	return v
}

// errClass collapses an error to its classification: what a client
// program could branch on. Message text is not part of the contract —
// the codecs may phrase transport-adjacent errors differently — but
// the typed sentinel must match.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrNoStream):
		return "no_stream"
	case errors.Is(err, ErrStreamFailed):
		return "stream_failed"
	case errors.Is(err, ErrStreamUnsupported):
		return "stream_unsupported"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "other:" + err.Error()
	}
}

var fuzzOps = []string{"sum", "max", "min", "mul", "bogus"}
var fuzzKinds = []string{"inclusive", "exclusive", ""}
var fuzzDirs = []string{"forward", "backward", ""}

func FuzzBinwireMatchesJSON(f *testing.F) {
	f.Add([]byte{0, 10, 0, 1, 2, 3})
	f.Add([]byte{1, 5, 0, 0xFF, 0x7F, 2, 2})
	f.Add([]byte{2, 3, 0, 1, 0, 100, 200, 3, 0x81})
	f.Add([]byte{3, 0, 0, 0, 4, 0, 9, 9, 9, 9, 9})
	f.Add([]byte{0, 0xFF, 0xFF, 4, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	addr := fuzzServer(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		jc, err := DialMaxLine(addr, fuzzBudget)
		if err != nil {
			t.Skip("dial json:", err)
		}
		defer jc.Close()
		bc, err := DialMaxLineProto(addr, fuzzBudget, ProtoBin)
		if err != nil {
			t.Skip("dial bin:", err)
		}
		defer bc.Close()
		if !bc.Bin() {
			t.Fatal("binary dial degraded against our own server")
		}

		script := &fuzzScript{b: data}
		rng := rand.New(rand.NewSource(int64(len(data))*2654435761 + int64(script.byte())))
		for ops := 0; ops < 8 && script.left() > 0; ops++ {
			switch script.byte() % 4 {
			case 0:
				fuzzIntScan(t, script, rng, jc, bc)
			case 1:
				fuzzFloatScan(t, script, rng, jc, bc)
			case 2:
				fuzzStream(t, script, rng, jc, bc)
			case 3:
				fuzzRawFrame(t, script, addr)
			}
		}
	})
}

// compareScanErrs enforces identical classification, forgiving only the
// documented too_large divergence: JSON refusing (bad_request) a vector
// binary served, at sizes where the budgets part ways.
func compareScanErrs(t *testing.T, what string, n int, jerr, berr error) (proceed bool) {
	t.Helper()
	jc, bc := errClass(jerr), errClass(berr)
	if jc == bc {
		return jc == "ok"
	}
	if n >= fuzzDivergeMin && jc == "bad_request" && bc == "ok" {
		return false
	}
	t.Fatalf("%s (n=%d): json %s vs bin %s (%v / %v)", what, n, jc, bc, jerr, berr)
	return false
}

func fuzzIntScan(t *testing.T, s *fuzzScript, rng *rand.Rand, jc, bc *Client) {
	op := fuzzOps[int(s.byte())%len(fuzzOps)]
	kind := fuzzKinds[int(s.byte())%len(fuzzKinds)]
	dir := fuzzDirs[int(s.byte())%len(fuzzDirs)]
	n := s.u16() % 1200
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(41) - 20
	}
	jres, jerr := jc.Scan(op, kind, dir, data)
	bres, berr := bc.Scan(op, kind, dir, data)
	if compareScanErrs(t, "int scan "+op, n, jerr, berr) {
		if len(jres) != len(bres) {
			t.Fatalf("int scan %s n=%d: json %d elems vs bin %d", op, n, len(jres), len(bres))
		}
		for i := range jres {
			if jres[i] != bres[i] {
				t.Fatalf("int scan %s n=%d elem %d: json %d vs bin %d", op, n, i, jres[i], bres[i])
			}
		}
	}
	releaseData(jres)
	releaseData(bres)
}

func fuzzFloatScan(t *testing.T, s *fuzzScript, rng *rand.Rand, jc, bc *Client) {
	op := fuzzOps[int(s.byte())%len(fuzzOps)]
	kind := fuzzKinds[int(s.byte())%len(fuzzKinds)]
	n := s.u16() % 400
	data := make([]float64, n)
	for i := range data {
		// A mix that exercises every server verdict: exact ints (sum's
		// happy path), fractions (sum rejects), ±Inf (order ops take,
		// sum rejects), NaN (all reject).
		switch rng.Intn(8) {
		case 0:
			data[i] = math.Inf(1)
		case 1:
			data[i] = math.Inf(-1)
		case 2:
			data[i] = math.NaN()
		case 3:
			data[i] = rng.Float64() * 100
		default:
			data[i] = float64(rng.Intn(201) - 100)
		}
	}
	ctx := context.Background()
	jres, jerr := jc.ScanFloats(ctx, op, kind, "forward", data)
	bres, berr := bc.ScanFloats(ctx, op, kind, "forward", data)
	if compareScanErrs(t, "float scan "+op, n, jerr, berr) {
		if len(jres) != len(bres) {
			t.Fatalf("float scan %s n=%d: json %d elems vs bin %d", op, n, len(jres), len(bres))
		}
		for i := range jres {
			if math.Float64bits(jres[i]) != math.Float64bits(bres[i]) {
				t.Fatalf("float scan %s n=%d elem %d: json %x vs bin %x",
					op, n, i, math.Float64bits(jres[i]), math.Float64bits(bres[i]))
			}
		}
	}
}

func fuzzStream(t *testing.T, s *fuzzScript, rng *rand.Rand, jc, bc *Client) {
	op := fuzzOps[int(s.byte())%len(fuzzOps)]
	kind := fuzzKinds[int(s.byte())%len(fuzzKinds)]
	dir := fuzzDirs[int(s.byte())%len(fuzzDirs)]
	ctx := context.Background()
	jst, jerr := jc.OpenStream(ctx, op, kind, dir)
	bst, berr := bc.OpenStream(ctx, op, kind, dir)
	if jc, bc := errClass(jerr), errClass(berr); jc != bc {
		t.Fatalf("stream open %s/%s/%s: json %s vs bin %s", op, kind, dir, jc, bc)
	}
	if jerr != nil {
		return
	}
	chunks := int(s.byte()) % 4
	for c := 0; c <= chunks; c++ {
		n := s.u16() % 300
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63n(41) - 20
		}
		jres, jerr := jst.Send(ctx, data)
		bres, berr := bst.Send(ctx, data)
		if jc, bc := errClass(jerr), errClass(berr); jc != bc {
			t.Fatalf("stream chunk %d (n=%d): json %s vs bin %s", c, n, jc, bc)
		}
		if jerr == nil {
			for i := range jres {
				if jres[i] != bres[i] {
					t.Fatalf("stream chunk %d elem %d: json %d vs bin %d", c, i, jres[i], bres[i])
				}
			}
		}
		releaseData(jres)
		releaseData(bres)
		if jerr != nil {
			return // stream dead on both sides; close below would just no_stream
		}
	}
	jtotal, jerr := jst.Close(ctx)
	btotal, berr := bst.Close(ctx)
	if jc, bc := errClass(jerr), errClass(berr); jc != bc {
		t.Fatalf("stream close: json %s vs bin %s", jc, bc)
	}
	if jerr == nil && jtotal != btotal {
		t.Fatalf("stream total: json %d vs bin %d", jtotal, btotal)
	}
}

// fuzzRawFrame wraps fuzz bytes in an intact frame (honest length
// prefix) and fires it at the binary listener: whatever the payload —
// garbage, a truncated request, a chunk for a stream that was never
// opened — the server must answer exactly one frame and stay alive.
func fuzzRawFrame(t *testing.T, s *fuzzScript, addr string) {
	payload := s.take(int(s.byte()) % 64)
	if len(payload) == 0 {
		return
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Skip("dial raw:", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(binwire.Magic)); err != nil {
		t.Fatalf("raw magic: %v", err)
	}
	ack := make([]byte, len(binwire.Magic))
	if _, err := io.ReadFull(conn, ack); err != nil || string(ack) != binwire.Magic {
		t.Fatalf("raw ack %q: %v", ack, err)
	}
	frame := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("raw frame write: %v", err)
	}
	// Exactly one response frame, whatever the verdict was.
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatalf("raw response header: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > fuzzBudget {
		t.Fatalf("raw response declares %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatalf("raw response body: %v", err)
	}
	resp, err := binwire.ParseResponse(body)
	if err != nil {
		t.Fatalf("server emitted unparseable response to garbage: %v", err)
	}
	if len(resp.Result) > 0 {
		arena.PutInt64s(resp.Result)
	}
}

// TestFuzzSeedsPass runs the seed corpus through the fuzz body in
// ordinary `go test` runs, so codec parity is checked on every CI pass
// even when no -fuzz burst is requested.
func TestFuzzSeedsPass(t *testing.T) {
	// Handled natively: `go test` executes f.Add seeds through f.Fuzz.
	// This test exists to document that behavior and to keep a long,
	// deterministic parity sweep in the default suite.
	ns := startNetCfg(t, Config{}, NetConfig{MaxLineBytes: fuzzBudget})
	jc, err := DialMaxLine(ns.Addr(), fuzzBudget)
	if err != nil {
		t.Fatalf("dial json: %v", err)
	}
	defer jc.Close()
	bc, err := DialMaxLineProto(ns.Addr(), fuzzBudget, ProtoBin)
	if err != nil {
		t.Fatalf("dial bin: %v", err)
	}
	defer bc.Close()

	rng := rand.New(rand.NewSource(2026))
	script := &fuzzScript{b: make([]byte, 4096)}
	rng.Read(script.b)
	for script.left() > 0 {
		switch script.byte() % 3 {
		case 0:
			fuzzIntScan(t, script, rng, jc, bc)
		case 1:
			fuzzFloatScan(t, script, rng, jc, bc)
		case 2:
			fuzzStream(t, script, rng, jc, bc)
		}
	}
}
