package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/fault"
)

// NetConfig tunes the TCP front end's own failure surface — everything
// that can go wrong between a socket and the batch server. The zero
// value is usable: every field has a default applied by Listen.
type NetConfig struct {
	// MaxLineBytes bounds one JSON line on the wire. A longer line gets
	// a structured "too_large" error response (matched to the request
	// id when recognizable) and the connection is closed. Default
	// 16 MiB — a million-element vector is ~8 MB of decimal digits;
	// beyond that the client is misbehaving.
	MaxLineBytes int
	// MaxConns caps simultaneously-open client connections. A
	// connection beyond the cap receives one "overloaded" error line
	// and is closed. 0 means unlimited (default).
	MaxConns int
	// PerConnInflight caps one connection's unanswered requests. A
	// request over the cap is answered immediately with "overloaded"
	// (retryable) instead of being admitted — one flooding connection
	// exhausts its own window, not the shared queue. 0 = unlimited.
	PerConnInflight int
	// IdleTimeout closes a connection that sends no byte for this
	// long. In-flight responses still drain. Default 0 (no timeout).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write, so one client that
	// stops reading cannot park a response goroutine (and its buffered
	// result) forever. Default 30s when zero; < 0 disables.
	WriteTimeout time.Duration
	// Faults is the chaos hook for the connection-level points
	// (fault.ConnDrop, fault.PartialWrite). Usually the same *fault.Set
	// as Config.Faults. nil = chaos off.
	Faults *fault.Set
}

// withDefaults fills zero fields.
func (c NetConfig) withDefaults() NetConfig {
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 16 << 20
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// NetServer is the TCP front end: a thin newline-delimited-JSON skin
// over an in-process Server, so remote clients' requests fuse into the
// same batches as everyone else's. cmd/scansd is a flag-parsing shell
// around this type; tests start it in-process on a loopback port.
//
// Each connection is one fairness tenant by default (its remote
// address), so the batch server's weighted round-robin keeps a
// flooding connection inside its fair share of every batch.
type NetServer struct {
	srv  *Server
	ncfg NetConfig
	ln   net.Listener

	fpDrop    *fault.Point
	fpPartial *fault.Point

	nconns atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Listen binds addr (e.g. "127.0.0.1:0") with default network limits.
func Listen(addr string, cfg Config) (*NetServer, error) {
	return ListenNet(addr, cfg, NetConfig{})
}

// ListenNet binds addr and starts accepting connections over the given
// batching and network configs.
func ListenNet(addr string, cfg Config, ncfg NetConfig) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ncfg = ncfg.withDefaults()
	ns := &NetServer{
		srv:       New(cfg),
		ncfg:      ncfg,
		ln:        ln,
		fpDrop:    ncfg.Faults.Point(fault.ConnDrop),
		fpPartial: ncfg.Faults.Point(fault.PartialWrite),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the bound listen address (useful with port 0).
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Stats snapshots the underlying batch server's counters.
func (ns *NetServer) Stats() Stats { return ns.srv.Stats() }

// Close stops accepting, closes every live connection, and drains the
// underlying batch server. In-flight requests whose futures were
// already accepted still execute; their responses are lost if their
// connection is gone, which is the standard TCP shutdown contract.
func (ns *NetServer) Close() {
	ns.ln.Close()
	ns.mu.Lock()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	<-ns.done
	ns.srv.Close()
}

// acceptLoop accepts until the listener closes, enforcing MaxConns: a
// connection over the cap gets one structured "overloaded" line and an
// immediate close, so a well-behaved client knows to back off rather
// than seeing a silent RST.
func (ns *NetServer) acceptLoop() {
	defer close(ns.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return
		}
		if max := ns.ncfg.MaxConns; max > 0 && ns.nconns.Load() >= int64(max) {
			line, _ := json.Marshal(WireResponse{
				Error: fmt.Sprintf("server at connection limit (%d)", max),
				Code:  CodeOverloaded,
			})
			if ns.ncfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(ns.ncfg.WriteTimeout))
			}
			conn.Write(append(line, '\n'))
			conn.Close()
			continue
		}
		ns.nconns.Add(1)
		ns.mu.Lock()
		ns.conns[conn] = struct{}{}
		ns.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns.handle(conn)
			ns.mu.Lock()
			delete(ns.conns, conn)
			ns.mu.Unlock()
			ns.nconns.Add(-1)
		}()
	}
}

// errLineTooLong reports a request line over MaxLineBytes; readLine
// returns it together with the line's retained prefix.
var errLineTooLong = errors.New("line exceeds maximum length")

// readLine reads one newline-terminated line of at most max bytes from
// r. An over-long line is consumed to its newline and reported as
// (prefix, errLineTooLong) where prefix is the first chunk of the line
// — enough for extractID to recover the request id. A final line
// without a trailing newline (client half-closed) is returned as a
// line, matching bufio.Scanner's behavior.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	trim := func(line []byte) []byte {
		if n := len(line); n > 0 && line[n-1] == '\r' {
			return line[:n-1]
		}
		return line
	}
	// idPrefix keeps the head of an over-long line, enough for
	// extractID to recover the request id for the error response.
	idPrefix := func(line []byte) []byte {
		const keep = 1 << 10
		if len(line) > keep {
			return line[:keep]
		}
		return line
	}
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		switch {
		case err == nil:
			line := frag[:len(frag)-1]
			if buf != nil {
				line = append(buf, line...)
			}
			line = trim(line)
			if len(line) > max {
				return idPrefix(line), errLineTooLong
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			buf = append(buf, frag...)
			if len(buf) > max {
				// Over the limit with the newline still unseen: drain
				// the rest of the line so the stream stays parseable
				// for the error response, then report.
				prefix := idPrefix(buf)
				for {
					_, derr := r.ReadSlice('\n')
					if derr == nil {
						return prefix, errLineTooLong
					}
					if !errors.Is(derr, bufio.ErrBufferFull) {
						return prefix, derr
					}
				}
			}
		case errors.Is(err, io.EOF) && len(buf)+len(frag) > 0:
			line := append(buf, frag...)
			if len(line) > max {
				return idPrefix(line), errLineTooLong
			}
			return line, nil
		default:
			return nil, err
		}
	}
}

// handle reads JSON lines off one connection, submits each to the
// batch server, and writes responses as futures resolve. Responses are
// written by per-request goroutines under a write mutex, so a slow
// batch never blocks later requests from being submitted (that is the
// whole point of the service). Protocol errors — malformed JSON,
// oversized lines, unknown specs, admission rejections — are answered
// with a structured WireResponse carrying an error code (and the
// request id whenever it is recoverable) rather than a silent close.
func (ns *NetServer) handle(conn net.Conn) {
	defer conn.Close()
	var (
		wmu      sync.Mutex
		pending  sync.WaitGroup
		w        = bufio.NewWriter(conn)
		inflight atomic.Int64
	)
	defer pending.Wait()
	tenant := conn.RemoteAddr().String()
	respond := func(resp WireResponse) {
		line, err := json.Marshal(resp)
		if err != nil {
			line = []byte(`{"error":"marshal failure","code":"internal"}`)
		}
		wmu.Lock()
		defer wmu.Unlock()
		if ns.ncfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(ns.ncfg.WriteTimeout))
		}
		if ns.fpPartial.Fire() {
			// Chaos: tear the line mid-write and kill the connection.
			// The client must treat the torn tail as a dead conn, never
			// as a response.
			w.Write(line[:len(line)/2])
			w.Flush()
			conn.Close()
			return
		}
		w.Write(line)
		w.WriteByte('\n')
		w.Flush()
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		if ns.ncfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(ns.ncfg.IdleTimeout))
		}
		line, err := readLine(r, ns.ncfg.MaxLineBytes)
		if errors.Is(err, errLineTooLong) {
			respond(WireResponse{
				ID:    extractID(line),
				Error: fmt.Sprintf("request line exceeds %d bytes", ns.ncfg.MaxLineBytes),
				Code:  CodeTooLarge,
			})
			return
		}
		if err != nil {
			return
		}
		if len(line) == 0 {
			continue
		}
		if ns.fpDrop.Fire() {
			// Chaos: the network "fails" between two requests.
			return
		}
		var req WireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			respond(WireResponse{ID: extractID(line), Error: "bad json: " + err.Error(), Code: CodeBadJSON})
			continue
		}
		spec, err := ParseSpec(req.Op, req.Kind, req.Dir)
		if err != nil {
			respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
			continue
		}
		if limit := ns.ncfg.PerConnInflight; limit > 0 && inflight.Add(1) > int64(limit) {
			inflight.Add(-1)
			respond(WireResponse{
				ID:    req.ID,
				Error: fmt.Sprintf("per-connection in-flight cap (%d) exceeded", limit),
				Code:  CodeOverloaded,
			})
			continue
		} else if limit <= 0 {
			inflight.Add(1)
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if req.TimeoutMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		}
		reqTenant := req.Tenant
		if reqTenant == "" {
			reqTenant = tenant
		}
		fut, err := ns.srv.SubmitReq(ctx, Req{Spec: spec, Data: req.Data, Tenant: reqTenant})
		if err != nil {
			cancel()
			inflight.Add(-1)
			respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
			continue
		}
		pending.Add(1)
		go func(id uint64, fut *Future, cancel context.CancelFunc) {
			defer pending.Done()
			defer inflight.Add(-1)
			defer cancel()
			res, err := fut.Wait()
			if err != nil {
				respond(WireResponse{ID: id, Error: err.Error(), Code: codeForError(err)})
				return
			}
			respond(WireResponse{ID: id, Result: res})
		}(req.ID, fut, cancel)
	}
}

// Client is a line-protocol client for NetServer / cmd/scansd. One
// Client owns one TCP connection and supports any number of concurrent
// Scan calls; a reader goroutine dispatches responses by ID. Server
// error responses come back as errors wrapping the package's typed
// sentinels (ErrOverloaded, ErrInternal, ErrShed,
// context.DeadlineExceeded, ...), so remote callers classify failures
// with errors.Is exactly like in-process ones — the retry policy in
// retry.go keys off that.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan WireResponse
	readErr error
	closed  bool
}

// Dial connects to a scansd address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		waiters: make(map[uint64]chan WireResponse),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; outstanding Scan calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Scan performs one synchronous round trip. op/kind/dir use the wire
// strings ("sum", "exclusive", "forward", ...); empty kind/dir take
// the defaults. Many goroutines may Scan concurrently on one Client —
// their requests fuse server-side, which is the intended usage.
func (c *Client) Scan(op, kind, dir string, data []int64) ([]int64, error) {
	return c.ScanCtx(context.Background(), op, kind, dir, data)
}

// ScanCtx is Scan with a lifetime: a ctx deadline is forwarded to the
// server as the request's timeout_ms (so the server can shed the
// request unexecuted) and also bounds the local wait for the response.
func (c *Client) ScanCtx(ctx context.Context, op, kind, dir string, data []int64) ([]int64, error) {
	req := WireRequest{Op: op, Kind: kind, Dir: dir, Data: data}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			return nil, context.DeadlineExceeded
		}
		req.TimeoutMS = ms
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan WireResponse, 1)
	c.waiters[id] = ch
	c.mu.Unlock()
	req.ID = id

	line, err := json.Marshal(req)
	if err == nil {
		c.wmu.Lock()
		_, err = c.w.Write(line)
		if err == nil {
			err = c.w.WriteByte('\n')
		}
		if err == nil {
			err = c.w.Flush()
		}
		c.wmu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = net.ErrClosed
			}
			return nil, err
		}
		if resp.Error != "" {
			return nil, errorForCode(resp.Code, resp.Error)
		}
		if resp.Result == nil {
			resp.Result = []int64{}
		}
		return resp.Result, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// readLoop dispatches responses by ID until the connection dies, then
// fails every outstanding waiter.
func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		var resp WireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			// A torn line (server died mid-write) is a connection
			// failure, not a response; keep reading until EOF surfaces.
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiters[resp.ID]
		delete(c.waiters, resp.ID)
		if !ok && resp.ID == 0 && resp.Error != "" && c.readErr == nil {
			// A connection-scoped error (e.g. the server's MaxConns
			// rejection) has no request id; surface it as this
			// connection's terminal error so waiters see the typed
			// cause instead of a bare closed-connection error.
			c.readErr = errorForCode(resp.Code, resp.Error)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
	c.mu.Lock()
	c.closed = true
	if c.readErr == nil {
		c.readErr = sc.Err()
	}
	for id, ch := range c.waiters {
		close(ch)
		delete(c.waiters, id)
	}
	c.mu.Unlock()
}
