package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
)

// maxLineBytes bounds one JSON line on the wire (a million-element
// vector is ~8 MB of decimal digits; beyond that the connection is
// misbehaving and gets dropped).
const maxLineBytes = 16 << 20

// NetServer is the TCP front end: a thin newline-delimited-JSON skin
// over an in-process Server, so remote clients' requests fuse into the
// same batches as everyone else's. cmd/scansd is a flag-parsing shell
// around this type; tests start it in-process on a loopback port.
type NetServer struct {
	srv *Server
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting
// connections over the given batching config.
func Listen(addr string, cfg Config) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{
		srv:   New(cfg),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the bound listen address (useful with port 0).
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Stats snapshots the underlying batch server's counters.
func (ns *NetServer) Stats() Stats { return ns.srv.Stats() }

// Close stops accepting, closes every live connection, and drains the
// underlying batch server. In-flight requests whose futures were
// already accepted still execute; their responses are lost if their
// connection is gone, which is the standard TCP shutdown contract.
func (ns *NetServer) Close() {
	ns.ln.Close()
	ns.mu.Lock()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	<-ns.done
	ns.srv.Close()
}

// acceptLoop accepts until the listener closes.
func (ns *NetServer) acceptLoop() {
	defer close(ns.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return
		}
		ns.mu.Lock()
		ns.conns[conn] = struct{}{}
		ns.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns.handle(conn)
			ns.mu.Lock()
			delete(ns.conns, conn)
			ns.mu.Unlock()
		}()
	}
}

// handle reads JSON lines off one connection, submits each to the
// batch server, and writes responses as futures resolve. Responses are
// written by per-request goroutines under a write mutex, so a slow
// batch never blocks later requests from being submitted (that is the
// whole point of the service).
func (ns *NetServer) handle(conn net.Conn) {
	defer conn.Close()
	var (
		wmu     sync.Mutex
		pending sync.WaitGroup
		w       = bufio.NewWriter(conn)
	)
	defer pending.Wait()
	respond := func(resp WireResponse) {
		line, err := json.Marshal(resp)
		if err != nil {
			line = []byte(`{"error":"marshal failure"}`)
		}
		wmu.Lock()
		w.Write(line)
		w.WriteByte('\n')
		w.Flush()
		wmu.Unlock()
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			respond(WireResponse{ID: req.ID, Error: "bad json: " + err.Error()})
			continue
		}
		spec, err := ParseSpec(req.Op, req.Kind, req.Dir)
		if err != nil {
			respond(WireResponse{ID: req.ID, Error: err.Error()})
			continue
		}
		fut, err := ns.srv.SubmitAsync(spec, req.Data)
		if err != nil {
			respond(WireResponse{ID: req.ID, Error: err.Error()})
			continue
		}
		pending.Add(1)
		go func(id uint64, fut *Future) {
			defer pending.Done()
			res, err := fut.Wait()
			if err != nil {
				respond(WireResponse{ID: id, Error: err.Error()})
				return
			}
			respond(WireResponse{ID: id, Result: res})
		}(req.ID, fut)
	}
}

// Client is a line-protocol client for NetServer / cmd/scansd. One
// Client owns one TCP connection and supports any number of concurrent
// Scan calls; a reader goroutine dispatches responses by ID.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan WireResponse
	readErr error
	closed  bool
}

// Dial connects to a scansd address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		waiters: make(map[uint64]chan WireResponse),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; outstanding Scan calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Scan performs one synchronous round trip. op/kind/dir use the wire
// strings ("sum", "exclusive", "forward", ...); empty kind/dir take
// the defaults. Many goroutines may Scan concurrently on one Client —
// their requests fuse server-side, which is the intended usage.
func (c *Client) Scan(op, kind, dir string, data []int64) ([]int64, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan WireResponse, 1)
	c.waiters[id] = ch
	c.mu.Unlock()

	line, err := json.Marshal(WireRequest{ID: id, Op: op, Kind: kind, Dir: dir, Data: data})
	if err == nil {
		c.wmu.Lock()
		_, err = c.w.Write(line)
		if err == nil {
			err = c.w.WriteByte('\n')
		}
		if err == nil {
			err = c.w.Flush()
		}
		c.wmu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	if resp.Result == nil {
		resp.Result = []int64{}
	}
	return resp.Result, nil
}

// readLoop dispatches responses by ID until the connection dies, then
// fails every outstanding waiter.
func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		var resp WireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiters[resp.ID]
		delete(c.waiters, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
	c.mu.Lock()
	c.closed = true
	c.readErr = sc.Err()
	for id, ch := range c.waiters {
		close(ch)
		delete(c.waiters, id)
	}
	c.mu.Unlock()
}
