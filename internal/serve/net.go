package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
	"scans/internal/binwire"
	"scans/internal/fault"
)

// releaseData returns a wire-decoded (or kernel-produced) int64 buffer
// to the arena. Non-empty decoded vectors and scan results are always
// arena-backed (Int64Vec.UnmarshalJSON, Server.Scan); empty ones are
// never pooled and are skipped.
func releaseData(data []int64) {
	if len(data) > 0 {
		arena.PutInt64s(data)
	}
}

// DefaultMaxLineBytes is the default cap on one JSON line in either
// direction: NetConfig.MaxLineBytes server-side, and the baseline for
// the client's read buffer (Dial adds headroom on top). Vectors whose
// request or worst-case RESPONSE would exceed the budget must use a
// streaming session instead of a one-shot scan.
const DefaultMaxLineBytes = 16 << 20

// NetConfig tunes the TCP front end's own failure surface — everything
// that can go wrong between a socket and the batch server. The zero
// value is usable: every field has a default applied by Listen.
type NetConfig struct {
	// MaxLineBytes bounds one JSON line on the wire, in BOTH
	// directions. A longer request line gets a structured "too_large"
	// error response (matched to the request id when recognizable) and
	// the connection is closed. A well-formed request whose worst-case
	// response would exceed the same budget (prefix sums have more
	// digits than their inputs) is refused with "too_large" — the
	// connection survives, and a streaming session is the escape hatch.
	// Default DefaultMaxLineBytes (16 MiB).
	MaxLineBytes int
	// MaxConns caps simultaneously-open client connections. A
	// connection beyond the cap receives one "overloaded" error line
	// and is closed. 0 means unlimited (default).
	MaxConns int
	// PerConnInflight caps one connection's unanswered requests. A
	// request over the cap is answered immediately with "overloaded"
	// (retryable) instead of being admitted — one flooding connection
	// exhausts its own window, not the shared queue. 0 = unlimited.
	PerConnInflight int
	// IdleTimeout closes a connection that sends no byte for this
	// long. In-flight responses still drain. Default 0 (no timeout).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write, so one client that
	// stops reading cannot park a response goroutine (and its buffered
	// result) forever. Default 30s when zero; < 0 disables.
	WriteTimeout time.Duration
	// MaxStreams caps one connection's simultaneously-open streaming
	// scan sessions (each holds a carry and a worker goroutine). An
	// open over the cap is refused with "overloaded". Default 64; < 0
	// disables streaming on this server entirely.
	MaxStreams int
	// StreamIdleTTL expires a stream session that receives no chunk for
	// this long: its carry is freed and later chunks get "no_stream".
	// Keeps abandoned sessions from pinning state on long-lived
	// connections. Default 2 minutes; < 0 disables expiry.
	StreamIdleTTL time.Duration
	// XchgRoundTimeout bounds one round of the worker↔worker carry
	// exchange (scan_xchg): how long a participant waits for its
	// partner's carry message before declaring the exchange failed
	// (typed xchg_failed; the coordinator falls back to the star data
	// plane). Default 2s.
	XchgRoundTimeout time.Duration
	// Faults is the chaos hook for the connection-level points
	// (fault.ConnDrop, fault.PartialWrite). Usually the same *fault.Set
	// as Config.Faults. nil = chaos off.
	Faults *fault.Set
}

// withDefaults fills zero fields.
func (c NetConfig) withDefaults() NetConfig {
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = DefaultMaxLineBytes
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 64
	}
	if c.StreamIdleTTL == 0 {
		c.StreamIdleTTL = 2 * time.Minute
	}
	if c.XchgRoundTimeout <= 0 {
		c.XchgRoundTimeout = 2 * time.Second
	}
	return c
}

// maxRespBytes is the worst-case encoded size of a result line for n
// elements: each int64 is at most 20 characters (sign included) plus a
// comma, and the {"id":...,"result":[...]} envelope plus newline stays
// under 48. The server refuses any scan (one-shot or chunk) whose
// worst case exceeds MaxLineBytes, so a response can never outgrow the
// line budget a client's reader is sized for.
func maxRespBytes(n int) int { return 48 + 21*n }

// NetServer is the TCP front end: a thin newline-delimited-JSON skin
// over an in-process Server, so remote clients' requests fuse into the
// same batches as everyone else's. cmd/scansd is a flag-parsing shell
// around this type; tests start it in-process on a loopback port.
//
// Each connection is one fairness tenant by default (its remote
// address), so the batch server's weighted round-robin keeps a
// flooding connection inside its fair share of every batch.
type NetServer struct {
	be   Backend
	srv  *Server // non-nil only when be is an in-process Server (Stats)
	ncfg NetConfig
	ln   net.Listener

	fpDrop        *fault.Point
	fpPartial     *fault.Point
	fpWireTrunc   *fault.Point
	fpWireCorrupt *fault.Point
	fpXchgDrop    *fault.Point
	fpXchgSlow    *fault.Point

	// xchg is the carry-exchange mailbox and peers the worker↔worker
	// connection pool (exchange data plane; see exchange.go).
	xchg  *exchangeTable
	peers *peerPool

	nconns atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Listen binds addr (e.g. "127.0.0.1:0") with default network limits.
func Listen(addr string, cfg Config) (*NetServer, error) {
	return ListenNet(addr, cfg, NetConfig{})
}

// ListenNet binds addr and starts accepting connections over the given
// batching and network configs, fronting a fresh in-process Server.
func ListenNet(addr string, cfg Config, ncfg NetConfig) (*NetServer, error) {
	srv := New(cfg)
	ns, err := ListenBackend(addr, srv, ncfg)
	if err != nil {
		srv.Close()
		return nil, err
	}
	ns.srv = srv
	return ns, nil
}

// ListenBackend binds addr and serves the wire protocol over an
// arbitrary Backend — an in-process Server or a cluster Coordinator.
// Closing the NetServer closes the backend.
func ListenBackend(addr string, be Backend, ncfg NetConfig) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ncfg = ncfg.withDefaults()
	ns := &NetServer{
		be:            be,
		ncfg:          ncfg,
		ln:            ln,
		fpDrop:        ncfg.Faults.Point(fault.ConnDrop),
		fpPartial:     ncfg.Faults.Point(fault.PartialWrite),
		fpWireTrunc:   ncfg.Faults.Point(fault.WireTruncate),
		fpWireCorrupt: ncfg.Faults.Point(fault.WireCorruptLen),
		fpXchgDrop:    ncfg.Faults.Point(fault.ClusterXchgDrop),
		fpXchgSlow:    ncfg.Faults.Point(fault.ClusterXchgSlow),
		xchg:          newExchangeTable(),
		peers:         newPeerPool(ncfg.MaxLineBytes),
		conns:         make(map[net.Conn]struct{}),
		done:          make(chan struct{}),
	}
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the bound listen address (useful with port 0).
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Stats snapshots the underlying batch server's counters. For a
// non-Server backend (ListenBackend) it returns the zero Stats; ask the
// backend for its own ledger instead.
func (ns *NetServer) Stats() Stats {
	if ns.srv == nil {
		return Stats{}
	}
	return ns.srv.Stats()
}

// Close stops accepting, closes every live connection, and drains the
// backend. In-flight requests whose futures were already accepted still
// execute; their responses are lost if their connection is gone, which
// is the standard TCP shutdown contract.
func (ns *NetServer) Close() {
	ns.ln.Close()
	ns.mu.Lock()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	ns.peers.close()
	<-ns.done
	ns.be.Close()
}

// Kill is the chaos stand-in for kill -9: it slams the listener and
// every live connection and returns immediately — no drain, no waiting,
// and crucially no backend Close, so a coordinator backend's session
// records keep feeding its replication log until the process truly
// dies. Safe to call from within a request handler (Close would
// deadlock there: it waits for the very goroutine calling it). A later
// Close remains valid and performs the graceful half.
func (ns *NetServer) Kill() {
	ns.ln.Close()
	ns.mu.Lock()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	ns.peers.close()
}

// acceptLoop accepts until the listener closes, enforcing MaxConns: a
// connection over the cap gets one structured "overloaded" line and an
// immediate close, so a well-behaved client knows to back off rather
// than seeing a silent RST.
func (ns *NetServer) acceptLoop() {
	defer close(ns.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return
		}
		if max := ns.ncfg.MaxConns; max > 0 && ns.nconns.Load() >= int64(max) {
			line, _ := json.Marshal(WireResponse{
				Error: fmt.Sprintf("server at connection limit (%d)", max),
				Code:  CodeOverloaded,
			})
			if ns.ncfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(ns.ncfg.WriteTimeout))
			}
			conn.Write(append(line, '\n'))
			conn.Close()
			continue
		}
		ns.nconns.Add(1)
		ns.mu.Lock()
		ns.conns[conn] = struct{}{}
		ns.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns.handle(conn)
			ns.mu.Lock()
			delete(ns.conns, conn)
			ns.mu.Unlock()
			ns.nconns.Add(-1)
		}()
	}
}

// errLineTooLong reports a request line over MaxLineBytes; readLine
// returns it together with the line's retained prefix.
var errLineTooLong = errors.New("line exceeds maximum length")

// readLine reads one newline-terminated line of at most max bytes from
// r. An over-long line is consumed to its newline and reported as
// (prefix, errLineTooLong) where prefix is the first chunk of the line
// — enough for extractID to recover the request id. A final line
// without a trailing newline (client half-closed) is returned as a
// line, matching bufio.Scanner's behavior.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	trim := func(line []byte) []byte {
		if n := len(line); n > 0 && line[n-1] == '\r' {
			return line[:n-1]
		}
		return line
	}
	// idPrefix keeps the head of an over-long line, enough for
	// extractID to recover the request id for the error response.
	idPrefix := func(line []byte) []byte {
		const keep = 1 << 10
		if len(line) > keep {
			return line[:keep]
		}
		return line
	}
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		switch {
		case err == nil:
			line := frag[:len(frag)-1]
			if buf != nil {
				line = append(buf, line...)
			}
			line = trim(line)
			if len(line) > max {
				return idPrefix(line), errLineTooLong
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			buf = append(buf, frag...)
			if len(buf) > max {
				// Over the limit with the newline still unseen: drain
				// the rest of the line so the stream stays parseable
				// for the error response, then report.
				prefix := idPrefix(buf)
				for {
					_, derr := r.ReadSlice('\n')
					if derr == nil {
						return prefix, errLineTooLong
					}
					if !errors.Is(derr, bufio.ErrBufferFull) {
						return prefix, derr
					}
				}
			}
		case errors.Is(err, io.EOF) && len(buf)+len(frag) > 0:
			line := append(buf, frag...)
			if len(line) > max {
				return idPrefix(line), errLineTooLong
			}
			return line, nil
		default:
			return nil, err
		}
	}
}

// connCodec abstracts one connection's wire encoding, selected by the
// negotiation preamble (see negotiate): the legacy newline-JSON codec
// or the binwire binary codec. The request-dispatch state machine in
// serveConn — spec parsing, admission, streams, ownership — is shared;
// only the byte encoding differs.
type connCodec interface {
	// readRequest blocks for the next request. Protocol-level failures
	// that keep the stream in sync (bad JSON, bad frame payload) are
	// answered and skipped internally; a returned error means the
	// connection is done (any error response was already sent).
	readRequest() (WireRequest, error)
	// respond writes one response. Safe for concurrent use by the
	// per-request goroutines and stream workers.
	respond(WireResponse)
	// worstResp / worstRespFloat bound the encoded size of an n-element
	// result, for the response-budget admission gate. The JSON codec's
	// bounds are digit worst cases; the binary codec's are exact.
	worstResp(n int) int
	worstRespFloat(n int) int
	// finish stops the codec's writer. Called after every responder
	// (pending requests, stream workers) has finished.
	finish()
}

// negotiate routes a new connection to its codec by peeking one byte:
// the binwire Magic's leading NUL can never begin a JSON line, so a NUL
// means a binary client (consume the preamble, echo it as the ack);
// anything else is the legacy JSON protocol, byte-untouched. The peek
// runs under the same idle deadline as any other read.
func (ns *NetServer) negotiate(conn net.Conn, r *bufio.Reader) (bin bool, err error) {
	if ns.ncfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(ns.ncfg.IdleTimeout))
	}
	first, err := r.Peek(1)
	if err != nil {
		return false, err
	}
	if first[0] != binwire.Magic[0] {
		return false, nil
	}
	buf := make([]byte, len(binwire.Magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return false, err
	}
	if string(buf) != binwire.Magic {
		return false, fmt.Errorf("bad negotiation preamble %q", buf)
	}
	if ns.ncfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(ns.ncfg.WriteTimeout))
	}
	if _, err := conn.Write([]byte(binwire.Magic)); err != nil {
		return false, err
	}
	return true, nil
}

// handle negotiates one connection's codec and serves it.
func (ns *NetServer) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	bin, err := ns.negotiate(conn, r)
	if err != nil {
		return
	}
	var codec connCodec
	if bin {
		codec = newBinConn(ns, conn, r)
	} else {
		codec = &jsonConn{ns: ns, conn: conn, r: r, w: bufio.NewWriter(conn)}
	}
	ns.serveConn(conn, codec)
}

// jsonConn is the legacy newline-JSON codec: one request line in, one
// response line out, responses written by per-request goroutines under
// a write mutex.
type jsonConn struct {
	ns   *NetServer
	conn net.Conn
	r    *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func (j *jsonConn) worstResp(n int) int      { return maxRespBytes(n) }
func (j *jsonConn) worstRespFloat(n int) int { return maxRespBytesFloat(n) }
func (j *jsonConn) finish()                  {}

func (j *jsonConn) respond(resp WireResponse) {
	var line []byte
	var pooled []byte
	// Hot path: success responses encode with strconv into an arena
	// buffer — byte-identical to encoding/json for these shapes
	// (wire_fast_test.go), with zero steady-state allocation.
	buf := arena.GetBytes(fastRespSize(resp))[:0]
	if out, ok := appendWireResponse(buf, resp); ok {
		pooled, line = out, out
	} else {
		arena.PutBytes(buf)
		var err error
		line, err = json.Marshal(resp)
		if err != nil {
			// Keep the ID: an unmatchable error line would leave the
			// client's round trip waiting forever.
			line = []byte(fmt.Sprintf(`{"id":%d,"error":"response marshal failure","code":"internal"}`, resp.ID))
		}
	}
	defer func() {
		if pooled != nil {
			arena.PutBytes(pooled)
		}
	}()
	j.wmu.Lock()
	defer j.wmu.Unlock()
	if j.ns.ncfg.WriteTimeout > 0 {
		j.conn.SetWriteDeadline(time.Now().Add(j.ns.ncfg.WriteTimeout))
	}
	if j.ns.fpPartial.Fire() {
		// Chaos: tear the line mid-write and kill the connection.
		// The client must treat the torn tail as a dead conn, never
		// as a response.
		j.w.Write(line[:len(line)/2])
		j.w.Flush()
		j.conn.Close()
		return
	}
	j.w.Write(line)
	j.w.WriteByte('\n')
	j.w.Flush()
}

func (j *jsonConn) readRequest() (WireRequest, error) {
	for {
		if j.ns.ncfg.IdleTimeout > 0 {
			j.conn.SetReadDeadline(time.Now().Add(j.ns.ncfg.IdleTimeout))
		}
		line, err := readLine(j.r, j.ns.ncfg.MaxLineBytes)
		if errors.Is(err, errLineTooLong) {
			j.respond(WireResponse{
				ID:    extractID(line),
				Error: fmt.Sprintf("request line exceeds %d bytes", j.ns.ncfg.MaxLineBytes),
				Code:  CodeTooLarge,
			})
			return WireRequest{}, err
		}
		if err != nil {
			return WireRequest{}, err
		}
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			// A failed decode can still have populated Data (the error
			// came from a later field); its buffer goes back.
			releaseData(req.Data)
			j.respond(WireResponse{ID: extractID(line), Error: "bad json: " + err.Error(), Code: CodeBadJSON})
			continue
		}
		// Every JSON stream_open gets the extended ack: old JSON clients
		// ignore unknown response fields, so no opt-in frame is needed
		// (the binary codec needs FStreamOpen2 for the same effect).
		req.WantAck = req.Type == "stream_open"
		return req, nil
	}
}

// serveConn reads requests off one negotiated connection, submits each
// to the batch server, and responds as futures resolve. Responses are
// written as the codec dictates (JSON: per-request goroutines under a
// write mutex; binary: one writer goroutine interleaving frames), so a
// slow batch never blocks later requests from being submitted (that is
// the whole point of the service). Protocol errors — malformed input,
// oversized requests, unknown specs, admission rejections — are
// answered with a structured WireResponse carrying an error code (and
// the request id whenever it is recoverable) rather than a silent
// close.
//
// Stream messages (type stream_open/stream_chunk/stream_close) are
// routed to the connection's session table; each open stream has one
// worker goroutine serializing its chunks (chunk k+1's carry is chunk
// k's output). Whatever ends the connection — clean close, idle
// timeout, a chaos conn.drop — the deferred closeAll tears every
// session down, so dropped connections leak no stream state.
func (ns *NetServer) serveConn(conn net.Conn, codec connCodec) {
	var (
		pending  sync.WaitGroup
		inflight atomic.Int64
	)
	// LIFO teardown: stream workers (closeAll), then request goroutines
	// (pending.Wait), and only then the codec's writer — every responder
	// is done before finish stops accepting responses.
	defer codec.finish()
	defer pending.Wait()
	tenant := conn.RemoteAddr().String()
	respond := codec.respond
	cs := newConnStreams(ns, codec, tenant)
	defer cs.closeAll()
	for {
		req, err := codec.readRequest()
		if err != nil {
			return
		}
		if ns.fpDrop.Fire() {
			// Chaos: the network "fails" between two requests.
			releaseData(req.Data)
			return
		}
		switch req.Type {
		case "":
			// One-shot scan: falls through to the submit path below.
		case "scan_xchg":
			// Exchange-mode piece: same admission as a one-shot (spec
			// parse, response budget, in-flight cap), then routed to the
			// exchange handler in the request goroutine below.
		case "carry_xchg":
			// Peer carry message: deposit in the mailbox and ack inline —
			// a control message, not admitted work. The send-then-await
			// order of every participant plus this inline ack is what
			// keeps the exchange deadlock-free.
			releaseData(req.Data)
			ns.xchg.deposit(
				xchgKey{group: req.Group, rank: uint32(req.Rank), round: uint32(req.Round)},
				xchgMsg{val: req.XVal, reset: req.XReset})
			respond(WireResponse{ID: req.ID})
			continue
		case "stream_open":
			releaseData(req.Data) // opens carry no payload
			cs.open(req)
			continue
		case "stream_chunk":
			cs.chunk(req) // ownership of req.Data passes to the session
			continue
		case "stream_close":
			releaseData(req.Data)
			cs.closeStream(req)
			continue
		case "stream_resume":
			releaseData(req.Data)
			cs.resume(req)
			continue
		case "register_op":
			// Combine-op registration: a control message, answered inline
			// (validation property-tests the program, which is bounded by
			// the VM step budget). The ack carries the content hash the
			// tenant can pin scans with.
			releaseData(req.Data)
			t := req.Tenant
			if t == "" {
				t = tenant
			}
			if or, ok := ns.be.(OpRegistrar); ok {
				hash, rerr := or.RegisterScanOp(t, req.Name, req.Source)
				if rerr != nil {
					respond(WireResponse{ID: req.ID, Error: rerr.Error(), Code: codeForError(rerr)})
				} else {
					respond(WireResponse{ID: req.ID, OpHash: hash})
				}
			} else {
				respond(WireResponse{ID: req.ID, Error: "backend does not accept combine-op registrations", Code: CodeBadRequest})
			}
			continue
		case "heartbeat":
			releaseData(req.Data)
			if ann, ok := ns.be.(Announcer); ok {
				if err := ann.Announce(req.Addr, req.Weight, req.WProto, req.MaxLine); err != nil {
					respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
				} else {
					respond(WireResponse{ID: req.ID})
				}
			} else {
				respond(WireResponse{ID: req.ID, Error: "backend does not accept worker announcements", Code: CodeBadRequest})
			}
			continue
		default:
			releaseData(req.Data)
			respond(WireResponse{ID: req.ID, Error: fmt.Sprintf("unknown message type %q", req.Type), Code: CodeBadRequest})
			continue
		}
		spec, err := ParseSpec(req.Op, req.Kind, req.Dir)
		if err != nil {
			releaseData(req.Data)
			respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
			continue
		}
		if spec.Op == OpUser {
			// Carry the caller's pin to admission; resolution verifies it
			// there (code "op_hash" on mismatch).
			spec.Hash = req.OpHash
		}
		var isFloat bool
		switch req.Elem {
		case "", ElemInt64:
		case ElemFloat64:
			isFloat = true
		default:
			releaseData(req.Data)
			respond(WireResponse{ID: req.ID, Error: fmt.Sprintf("unknown elem %q", req.Elem), Code: CodeBadRequest})
			continue
		}
		if isFloat && spec.Op == OpUser {
			releaseData(req.Data)
			respond(WireResponse{ID: req.ID, Error: "user combine ops run over int64 words only", Code: CodeBadRequest})
			continue
		}
		worst := codec.worstResp(len(req.Data))
		if isFloat {
			worst = codec.worstRespFloat(len(req.FData))
		}
		if worst > ns.ncfg.MaxLineBytes {
			// The request line fit, but its RESPONSE might not (prefix
			// sums have more digits than inputs). Refuse rather than
			// blow up the client's line reader; unlike an oversized
			// request line the stream is still in sync, so the
			// connection survives. Streaming is the escape hatch.
			releaseData(req.Data)
			respond(WireResponse{
				ID: req.ID,
				Error: fmt.Sprintf("worst-case response (%d bytes) exceeds the %d-byte line budget; use a streaming session",
					worst, ns.ncfg.MaxLineBytes),
				Code: CodeTooLarge,
			})
			continue
		}
		if limit := ns.ncfg.PerConnInflight; limit > 0 && inflight.Add(1) > int64(limit) {
			inflight.Add(-1)
			releaseData(req.Data)
			respond(WireResponse{
				ID:    req.ID,
				Error: fmt.Sprintf("per-connection in-flight cap (%d) exceeded", limit),
				Code:  CodeOverloaded,
			})
			continue
		} else if limit <= 0 {
			inflight.Add(1)
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if req.TimeoutMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		}
		reqTenant := req.Tenant
		if reqTenant == "" {
			reqTenant = tenant
		}
		pending.Add(1)
		go func(req WireRequest, cancel context.CancelFunc) {
			defer pending.Done()
			defer inflight.Add(-1)
			defer cancel()
			if req.Type == "scan_xchg" {
				if isFloat {
					releaseData(req.Data)
					respond(WireResponse{ID: req.ID, Error: "scan_xchg carries int64 keys only (floats are re-keyed coordinator-side)", Code: CodeBadRequest})
					return
				}
				res, err := ns.serveXchgPiece(ctx, spec, req, reqTenant)
				releaseData(req.Data)
				if err != nil {
					respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
					return
				}
				if res == nil {
					res = []int64{}
				}
				respond(WireResponse{ID: req.ID, Result: res})
				releaseData(res)
				return
			}
			data := req.Data
			if isFloat {
				releaseData(req.Data) // float payload rides FData
				keys, err := floatKeys(spec.Op, req.FData)
				if err != nil {
					respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
					return
				}
				data = keys
			}
			res, err := ns.be.Scan(ctx, spec, data, reqTenant)
			// Any return from Scan — result or error — means the future
			// is resolved, so the pipeline is done reading the payload
			// and its buffer can circulate (DESIGN.md "Arena ownership").
			releaseData(data)
			if err != nil {
				respond(WireResponse{ID: req.ID, Error: err.Error(), Code: codeForError(err)})
				return
			}
			if isFloat {
				respond(WireResponse{ID: req.ID, FResult: floatResults(spec.Op, res)})
				releaseData(res)
				return
			}
			if res == nil {
				res = []int64{}
			}
			respond(WireResponse{ID: req.ID, Result: res})
			releaseData(res)
		}(req, cancel)
	}
}

// Client is a line-protocol client for NetServer / cmd/scansd. One
// Client owns one TCP connection and supports any number of concurrent
// Scan calls; a reader goroutine dispatches responses by ID. Server
// error responses come back as errors wrapping the package's typed
// sentinels (ErrOverloaded, ErrInternal, ErrShed,
// context.DeadlineExceeded, ...), so remote callers classify failures
// with errors.Is exactly like in-process ones — the retry policy in
// retry.go keys off that.
type Client struct {
	conn    net.Conn
	maxLine int
	bin     bool
	r       *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	nextSID uint64
	waiters map[uint64]chan WireResponse
	readErr error
	closed  bool

	// legacyOpen latches once a resumable stream open (FStreamOpen2) was
	// rejected by a pre-FAck binary server, so later opens skip the
	// doomed attempt. JSON connections never set it.
	legacyOpen atomic.Bool
}

// Wire protocol names for DialProto and the cluster/cmd configs.
const (
	// ProtoJSON is the legacy newline-delimited-JSON protocol.
	ProtoJSON = "json"
	// ProtoBin is the binwire length-prefixed binary protocol.
	ProtoBin = "bin"
)

// Dial connects to a scansd address speaking the legacy JSON protocol.
// The client's response reader is sized for a server running the
// default line budget; against a server with a larger MaxLineBytes, use
// DialMaxLine with the same value.
func Dial(addr string) (*Client, error) {
	return DialMaxLine(addr, DefaultMaxLineBytes)
}

// DialBin connects speaking the binary protocol (degrading to JSON
// against a pre-binwire server; see DialMaxLineProto).
func DialBin(addr string) (*Client, error) {
	return DialMaxLineProto(addr, DefaultMaxLineBytes, ProtoBin)
}

// DialProto is Dial with an explicit protocol (ProtoJSON or ProtoBin;
// empty means JSON).
func DialProto(addr, proto string) (*Client, error) {
	return DialMaxLineProto(addr, DefaultMaxLineBytes, proto)
}

// DialMaxLine is Dial with an explicit line budget: maxLineBytes must
// be at least the server's MaxLineBytes, or large responses will kill
// the connection client-side (token too long) even though the server
// sent them happily. The reader gets headroom on top of the nominal
// budget so a response at exactly the server's limit still fits.
func DialMaxLine(addr string, maxLineBytes int) (*Client, error) {
	return DialMaxLineProto(addr, maxLineBytes, ProtoJSON)
}

// negotiateTimeout bounds the binary handshake round trip so a dial
// against a server that accepts but never answers cannot hang forever.
const negotiateTimeout = 10 * time.Second

// DialMaxLineProto is DialMaxLine with an explicit protocol. For
// ProtoBin the client sends the binwire Magic preamble and waits for
// the echo; a legacy server instead answers the preamble with a
// bad_json error line, which the client consumes and degrades on —
// the same connection continues in JSON, so a binary-first client
// works against any server generation. A connection-scoped rejection
// (the server's MaxConns limit) surfaces as the dial error.
func DialMaxLineProto(addr string, maxLineBytes int, proto string) (*Client, error) {
	if maxLineBytes <= 0 {
		maxLineBytes = DefaultMaxLineBytes
	}
	var bin bool
	switch proto {
	case "", ProtoJSON:
	case ProtoBin:
		bin = true
	default:
		return nil, fmt.Errorf("%w: unknown wire protocol %q", ErrBadRequest, proto)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		maxLine: maxLineBytes + 64<<10,
		waiters: make(map[uint64]chan WireResponse),
	}
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriter(conn)
	if bin {
		if err := c.negotiate(); err != nil {
			conn.Close()
			return nil, err
		}
	}
	go c.readLoop()
	return c, nil
}

// negotiate runs the client half of the binary handshake (see
// NetServer.negotiate). On return with nil error the connection speaks
// c.bin's protocol; any other outcome closes the dial.
func (c *Client) negotiate() error {
	c.conn.SetDeadline(time.Now().Add(negotiateTimeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write([]byte(binwire.Magic)); err != nil {
		return err
	}
	first, err := c.r.Peek(1)
	if err != nil {
		return err
	}
	if first[0] == binwire.Magic[0] {
		buf := make([]byte, len(binwire.Magic))
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return err
		}
		if string(buf) != binwire.Magic {
			return fmt.Errorf("bad negotiation ack %q", buf)
		}
		c.bin = true
		return nil
	}
	// Not a binary ack: a legacy server treated the preamble as a
	// garbage line. Its bad_json error line means "JSON only here" —
	// degrade on the same connection. Anything else (e.g. the MaxConns
	// overloaded rejection, which is sent before negotiation) is this
	// connection's terminal error.
	line, err := readLine(c.r, c.maxLine)
	if err != nil {
		return err
	}
	var resp WireResponse
	if jerr := json.Unmarshal(line, &resp); jerr != nil {
		return fmt.Errorf("garbled negotiation response %q", line)
	}
	releaseData(resp.Result)
	if resp.Code == CodeBadJSON {
		return nil
	}
	if resp.Error != "" {
		return errorForCode(resp.Code, resp.Error)
	}
	return fmt.Errorf("unexpected negotiation response %q", line)
}

// Bin reports whether the connection negotiated the binary protocol
// (false for a ProtoBin dial that degraded to JSON against a legacy
// server).
func (c *Client) Bin() bool { return c.bin }

// Close tears down the connection; outstanding Scan calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Scan performs one synchronous round trip. op/kind/dir use the wire
// strings ("sum", "exclusive", "forward", ...); empty kind/dir take
// the defaults. Many goroutines may Scan concurrently on one Client —
// their requests fuse server-side, which is the intended usage.
func (c *Client) Scan(op, kind, dir string, data []int64) ([]int64, error) {
	return c.ScanCtx(context.Background(), op, kind, dir, data)
}

// deadlineMS converts a remaining time budget to the wire's timeout_ms,
// rounding UP to a whole millisecond. Truncation is the wrong direction
// here: a live 999µs budget truncates to 0, which on the wire means "no
// timeout" — a sub-millisecond deadline silently became no deadline at
// all. Returns 0 (no wire timeout) for a spent budget; callers reject
// that case before sending.
func deadlineMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Millisecond - 1) / time.Millisecond)
}

// ScanCtx is Scan with a lifetime: a ctx deadline is forwarded to the
// server as the request's timeout_ms (so the server can shed the
// request unexecuted) and also bounds the local wait for the response.
func (c *Client) ScanCtx(ctx context.Context, op, kind, dir string, data []int64) ([]int64, error) {
	return c.ScanTenantCtx(ctx, op, kind, dir, "", data)
}

// ScanTenantCtx is ScanCtx with an explicit fairness tenant, so a
// coordinator relaying many clients' shards through one worker
// connection can preserve each origin's fair-share identity instead of
// collapsing them all into the connection's remote address.
func (c *Client) ScanTenantCtx(ctx context.Context, op, kind, dir, tenant string, data []int64) ([]int64, error) {
	req := WireRequest{Op: op, Kind: kind, Dir: dir, Tenant: tenant, Data: data}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		resp.Result = []int64{}
	}
	return resp.Result, nil
}

// ScanPinned is ScanTenantCtx for user combine ops with a pinned
// registration hash (op "user:<name>"): the server refuses to combine
// with any program whose content hash differs from opHash (code
// "op_hash" → ErrOpHash). opHash 0 means unpinned. Cluster
// coordinators use the pin on every piece they dispatch, so a worker
// holding a stale registration can never silently combine with the
// wrong function.
func (c *Client) ScanPinned(ctx context.Context, op, kind, dir, tenant string, opHash uint64, data []int64) ([]int64, error) {
	req := WireRequest{Op: op, Kind: kind, Dir: dir, Tenant: tenant, OpHash: opHash, Data: data}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		resp.Result = []int64{}
	}
	return resp.Result, nil
}

// RegisterOp registers source as the tenant-scoped combine op name
// ("" tenant = this connection's default fairness tenant, the client's
// remote address) and returns the registration's content hash.
// Rejections come back typed: ErrBadOp wraps every validation failure,
// with the property-test counterexample in the message.
func (c *Client) RegisterOp(ctx context.Context, tenant, name, source string) (uint64, error) {
	resp, err := c.roundTrip(ctx, WireRequest{Type: "register_op", Tenant: tenant, Name: name, Source: source})
	if err != nil {
		return 0, err
	}
	if resp.OpHash == 0 {
		return 0, fmt.Errorf("%w: register_op ack missing content hash (pre-user-op server?)", ErrBadRequest)
	}
	return resp.OpHash, nil
}

// ScanFloats performs one float64 scan round trip (elem "float64" on
// the wire). Supported ops and the exactness contract are documented in
// wirefloat.go: max/min over any non-NaN floats, sum over
// exactly-representable integers; mul and NaN are refused with
// ErrBadRequest.
func (c *Client) ScanFloats(ctx context.Context, op, kind, dir string, data []float64) ([]float64, error) {
	req := WireRequest{Op: op, Kind: kind, Dir: dir, Elem: ElemFloat64, FData: data}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.FResult == nil {
		resp.FResult = []float64{}
	}
	return resp.FResult, nil
}

// roundTrip sends one request (stamping its ID and, when ctx carries a
// deadline, its timeout_ms) and waits for the matching response, which
// may arrive out of order relative to other in-flight requests. A
// response with an error set is returned as a typed error via
// errorForCode.
func (c *Client) roundTrip(ctx context.Context, req WireRequest) (WireResponse, error) {
	p, err := c.startRequest(ctx, req)
	if err != nil {
		return WireResponse{}, err
	}
	return c.awaitResponse(ctx, p)
}

// pendingResp is one in-flight request's response slot: the send half of
// a round trip (startRequest) returns it, the wait half (awaitResponse)
// consumes it. Splitting the round trip lets the windowed stream pump
// keep several chunks in flight while still issuing their sends in
// order from one goroutine (chunk order is the stream's semantics).
type pendingResp struct {
	id uint64
	ch chan WireResponse
}

// startRequest stamps the request's id (and timeout from ctx), registers
// its waiter, and writes it. On error nothing is in flight.
func (c *Client) startRequest(ctx context.Context, req WireRequest) (pendingResp, error) {
	var zero pendingResp
	if dl, ok := ctx.Deadline(); ok {
		ms := deadlineMS(time.Until(dl))
		if ms <= 0 {
			return zero, context.DeadlineExceeded
		}
		req.TimeoutMS = ms
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return zero, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan WireResponse, 1)
	c.waiters[id] = ch
	c.mu.Unlock()
	req.ID = id

	var err error
	if c.bin {
		err = c.sendBin(req)
	} else {
		var line []byte
		line, err = json.Marshal(req)
		if err == nil {
			c.wmu.Lock()
			_, err = c.w.Write(line)
			if err == nil {
				err = c.w.WriteByte('\n')
			}
			if err == nil {
				err = c.w.Flush()
			}
			c.wmu.Unlock()
		}
	}
	if err != nil {
		c.abandonWaiter(id, ch)
		return zero, err
	}
	return pendingResp{id: id, ch: ch}, nil
}

// awaitResponse waits for a started request's response. An error-coded
// response comes back as a typed error via errorForCode.
func (c *Client) awaitResponse(ctx context.Context, p pendingResp) (WireResponse, error) {
	var zero WireResponse
	select {
	case resp, ok := <-p.ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = net.ErrClosed
			}
			return zero, err
		}
		if resp.Error != "" {
			return zero, errorForCode(resp.Code, resp.Error)
		}
		return resp, nil
	case <-ctx.Done():
		c.abandonWaiter(p.id, p.ch)
		return zero, ctx.Err()
	}
}

// abandonWaiter retracts a round trip's response slot (ctx expiry or a
// failed send). The lock covers both the map delete and the channel
// drain: readLoop hands responses off under the same lock, so either
// the delete wins (a late response is released by readLoop) or the
// handoff already happened and the drain here owns the buffer — a
// response can never slip into an abandoned channel unreleased.
func (c *Client) abandonWaiter(id uint64, ch chan WireResponse) {
	c.mu.Lock()
	delete(c.waiters, id)
	select {
	case resp, ok := <-ch:
		if ok {
			releaseData(resp.Result)
		}
	default:
	}
	c.mu.Unlock()
}

// sendBin encodes one request as a binwire frame (into an arena buffer
// — zero steady-state allocation) and writes it under the send mutex.
func (c *Client) sendBin(req WireRequest) error {
	var frame []byte
	switch req.Type {
	case "":
		if name, ok := strings.CutPrefix(req.Op, "user:"); ok {
			frame = arena.GetBytes(binwire.ScanFrameBytes(req.Tenant, len(req.Data)) + binwire.UserOpBytes(name))[:0]
			frame = binwire.AppendScanUser(frame, req.ID,
				binKindByte(req.Kind), binDirByte(req.Dir), name, req.OpHash,
				req.TimeoutMS, req.Tenant, req.Data)
			break
		}
		n := len(req.Data)
		if req.Elem == ElemFloat64 {
			n = len(req.FData)
		}
		frame = arena.GetBytes(binwire.ScanFrameBytes(req.Tenant, n))[:0]
		frame = binwire.AppendScan(frame, req.ID,
			binOpByte(req.Op), binKindByte(req.Kind), binDirByte(req.Dir), binElemByte(req.Elem),
			req.TimeoutMS, req.Tenant, req.Data, req.FData)
	case "stream_open":
		if name, ok := strings.CutPrefix(req.Op, "user:"); ok {
			frame = arena.GetBytes(binwire.StreamOpenFrameBytes() + binwire.UserOpBytes(name))[:0]
			frame = binwire.AppendStreamOpenUser(frame, req.ID, req.Stream,
				binKindByte(req.Kind), binDirByte(req.Dir), name, req.OpHash, req.WantAck)
			break
		}
		frame = arena.GetBytes(binwire.StreamOpenFrameBytes())[:0]
		if req.WantAck {
			frame = binwire.AppendStreamOpen2(frame, req.ID, req.Stream,
				binOpByte(req.Op), binKindByte(req.Kind), binDirByte(req.Dir), binElemByte(req.Elem))
		} else {
			frame = binwire.AppendStreamOpen(frame, req.ID, req.Stream,
				binOpByte(req.Op), binKindByte(req.Kind), binDirByte(req.Dir), binElemByte(req.Elem))
		}
	case "stream_chunk":
		frame = arena.GetBytes(binwire.StreamChunkFrameBytes(len(req.Data)))[:0]
		frame = binwire.AppendStreamChunk(frame, req.ID, req.Stream, req.TimeoutMS, req.Data)
	case "stream_close":
		frame = arena.GetBytes(binwire.StreamCloseFrameBytes())[:0]
		frame = binwire.AppendStreamClose(frame, req.ID, req.Stream)
	case "stream_resume":
		frame = arena.GetBytes(binwire.StreamResumeFrameBytes(req.Resume))[:0]
		frame = binwire.AppendStreamResume(frame, req.ID, req.Stream, req.Seq, req.Resume)
	case "heartbeat":
		frame = arena.GetBytes(binwire.HeartbeatFrameBytes(req.Addr))[:0]
		frame = binwire.AppendHeartbeat(frame, req.ID, req.Addr, req.Weight, req.MaxLine, binProtoByte(req.WProto))
	case "scan_xchg":
		if name, ok := strings.CutPrefix(req.Op, "user:"); ok {
			frame = arena.GetBytes(binwire.ScanXchgFrameBytes(req.Tenant, req.Peers, len(req.Data)) + binwire.UserOpBytes(name))[:0]
			frame = binwire.AppendScanXchgUser(frame, req.ID,
				binKindByte(req.Kind), binDirByte(req.Dir), name, req.OpHash,
				req.TimeoutMS, req.Tenant, req.Group, req.Rank, req.Peers,
				req.XHead, req.XSeed, req.Init, req.Data)
			break
		}
		frame = arena.GetBytes(binwire.ScanXchgFrameBytes(req.Tenant, req.Peers, len(req.Data)))[:0]
		frame = binwire.AppendScanXchg(frame, req.ID,
			binOpByte(req.Op), binKindByte(req.Kind), binDirByte(req.Dir),
			req.TimeoutMS, req.Tenant, req.Group, req.Rank, req.Peers,
			req.XHead, req.XSeed, req.Init, req.Data)
	case "carry_xchg":
		frame = arena.GetBytes(binwire.CarryXchgFrameBytes())[:0]
		frame = binwire.AppendCarryXchg(frame, req.ID, req.Group, req.Round, req.From, req.Rank, req.XVal, req.XReset)
	case "register_op":
		frame = arena.GetBytes(binwire.RegisterOpFrameBytes(req.Tenant, req.Name, req.Source))[:0]
		frame = binwire.AppendRegisterOp(frame, req.ID, req.Tenant, req.Name, req.Source)
	default:
		return fmt.Errorf("%w: unknown message type %q", ErrBadRequest, req.Type)
	}
	c.wmu.Lock()
	_, err := c.w.Write(frame)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	arena.PutBytes(frame)
	return err
}

// dispatch hands one decoded response to its waiter (shared by both
// protocol read loops).
func (c *Client) dispatch(resp WireResponse) {
	c.mu.Lock()
	ch, ok := c.waiters[resp.ID]
	delete(c.waiters, resp.ID)
	if !ok && resp.ID == 0 && resp.Error != "" && c.readErr == nil {
		// A connection-scoped error (e.g. the server's MaxConns
		// rejection) has no request id; surface it as this
		// connection's terminal error so waiters see the typed
		// cause instead of a bare closed-connection error.
		c.readErr = errorForCode(resp.Code, resp.Error)
	}
	if ok {
		// Hand off under the lock (the channel has capacity 1, so
		// this never blocks): a round trip abandoning its waiter on
		// ctx expiry holds the same lock while draining, so exactly
		// one side ends up owning the decoded result buffer.
		ch <- resp
	}
	c.mu.Unlock()
	if !ok {
		// Nobody is waiting (late response after a ctx expiry already
		// drained, or a stray id): the decoded buffer goes back.
		releaseData(resp.Result)
	}
}

// readLines drains the JSON protocol until the connection dies.
func (c *Client) readLines() error {
	for {
		line, err := readLine(c.r, c.maxLine)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			// Sized from the dial-time line budget (server limit +
			// headroom): a response near the server's MaxLineBytes must
			// never kill the connection as over-long client-side.
			return err
		}
		if len(line) == 0 {
			continue
		}
		var resp WireResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			// A torn line (server died mid-write) is a connection
			// failure, not a response; keep reading until EOF surfaces.
			continue
		}
		c.dispatch(resp)
	}
}

// readFrames drains the binary protocol until the connection dies. Any
// structural damage — bad length prefix, unparseable payload — is a
// connection failure (a binary stream has no resync point), never a
// delivered response.
func (c *Client) readFrames() error {
	for {
		payload, err := binwire.ReadFrame(c.r, c.maxLine)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		bresp, perr := binwire.ParseResponse(payload)
		arena.PutBytes(payload)
		if perr != nil {
			return perr
		}
		resp := WireResponse{ID: bresp.ID, Result: bresp.Result, Error: bresp.Error, Code: bresp.Code}
		switch bresp.Type {
		case binwire.FFloatResult:
			if bresp.FResult == nil {
				bresp.FResult = []float64{}
			}
			resp.FResult = bresp.FResult
		case binwire.FTotal:
			total := bresp.Total
			resp.Total = &total
		case binwire.FAck:
			resp.Resume = bresp.Token
			resp.Window = bresp.Window
			if bresp.Seq > 0 {
				// A resume ack; seq 0 on the wire means "plain open ack"
				// (resumeFrom is 1-based, so 0 is never a real value).
				seq := bresp.Seq
				resp.Seq = &seq
			}
		case binwire.FOpAck:
			resp.OpHash = bresp.OpHash
		}
		c.dispatch(resp)
	}
}

// readLoop dispatches responses by ID until the connection dies, then
// fails every outstanding waiter.
func (c *Client) readLoop() {
	var err error
	if c.bin {
		err = c.readFrames()
	} else {
		err = c.readLines()
	}
	c.mu.Lock()
	c.closed = true
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.waiters {
		close(ch)
		delete(c.waiters, id)
	}
	c.mu.Unlock()
}

// DefaultStreamChunk is the chunk size (in elements) StreamScan uses
// when the caller passes chunkElems <= 0: large enough to amortize the
// per-chunk round trip, small enough that a chunk's worst-case response
// (maxRespBytes) stays far inside any sane line budget.
const DefaultStreamChunk = 1 << 15

// ClientStream is one streaming scan session: Send pushes a chunk and
// returns its prefix-scan seeded with everything sent before; Close
// ends the session and returns the fold of the whole stream. A failed
// Send kills the session (the server freed its carry); the error is
// sticky and Close returns it too. Sends are serialized — a stream is
// one logical vector arriving in order, so concurrent Sends would be
// meaningless.
type ClientStream struct {
	c   *Client
	sid uint64
	// token is the resume token from the extended open ack ("" against a
	// server or backend without resumable streams); window is the
	// flow-control credit (0 = none advertised, callers treat as 1).
	token  string
	window int

	mu     sync.Mutex
	closed bool
	err    error
}

// ResumeToken returns the stream's resume token, or "" when the server
// did not offer one (plain in-process backend, or a pre-resume server).
func (s *ClientStream) ResumeToken() string { return s.token }

// Window returns the server's flow-control credit: how many chunk
// requests may be in flight at once (0 when the server did not
// advertise one; treat as 1).
func (s *ClientStream) Window() int { return s.window }

// OpenStream starts a streaming session for op/kind/dir (wire strings,
// forward only — the server refuses backward specs with
// ErrStreamUnsupported, because a backward carry depends on chunks that
// have not arrived yet). When the server supports it, the open's ack
// carries a resume token and a flow-control window (see ResumeToken /
// Window); against an older server the stream still works, just without
// either.
func (c *Client) OpenStream(ctx context.Context, op, kind, dir string) (*ClientStream, error) {
	c.mu.Lock()
	c.nextSID++
	sid := c.nextSID
	c.mu.Unlock()
	req := WireRequest{Type: "stream_open", Stream: sid, Op: op, Kind: kind, Dir: dir}
	// Ask for the extended ack unless this binary connection has already
	// learned its server predates FAck (JSON servers of any generation
	// just ignore the extra response fields, so JSON always asks).
	req.WantAck = !c.bin || !c.legacyOpen.Load()
	resp, err := c.roundTrip(ctx, req)
	if err != nil && c.bin && req.WantAck && errors.Is(err, ErrBadRequest) {
		// Possibly a pre-FAck server rejecting the unknown FStreamOpen2
		// frame (payload-level bad_frame: the connection survives). Retry
		// with the legacy frame; only a SUCCESS latches legacy mode, so a
		// genuinely bad spec — which fails both ways — never downgrades
		// the connection.
		legacy := req
		legacy.WantAck = false
		if lresp, lerr := c.roundTrip(ctx, legacy); lerr == nil {
			c.legacyOpen.Store(true)
			resp, err = lresp, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return &ClientStream{c: c, sid: sid, token: resp.Resume, window: resp.Window}, nil
}

// ResumeStream re-attaches to a resumable stream (by the token its open
// ack carried) after a connection or coordinator failure — typically on
// a NEW client dialed at a standby. lastAcked is the count of chunk
// responses the caller received. Returns the re-attached stream and
// resumeFrom, the 1-based index of the next chunk the server expects:
// normally lastAcked+1, but smaller when a standby's replica lagged the
// dead primary's acks — the caller must rewind its output to chunk
// resumeFrom-1 and resend from there (recomputation is bit-identical).
func (c *Client) ResumeStream(ctx context.Context, token string, lastAcked uint64) (*ClientStream, uint64, error) {
	c.mu.Lock()
	c.nextSID++
	sid := c.nextSID
	c.mu.Unlock()
	resp, err := c.roundTrip(ctx, WireRequest{Type: "stream_resume", Stream: sid, Resume: token, Seq: lastAcked})
	if err != nil {
		return nil, 0, err
	}
	if resp.Seq == nil || *resp.Seq == 0 || *resp.Seq > lastAcked+1 {
		return nil, 0, fmt.Errorf("%w: stream_resume ack missing or invalid resume point", ErrInternal)
	}
	return &ClientStream{c: c, sid: sid, token: token, window: resp.Window}, *resp.Seq, nil
}

// Heartbeat announces a worker to a coordinator: addr is the worker's
// dialable address, weight its relative capacity, proto the wire
// protocol the coordinator should dial it with ("json"/"bin", "" = the
// coordinator's default), maxLine its line budget (0 = default). Plain
// servers answer bad_request; scansd's -announce loop sends one of
// these per heartbeat interval.
func (c *Client) Heartbeat(ctx context.Context, addr string, weight float64, proto string, maxLine int) error {
	_, err := c.roundTrip(ctx, WireRequest{Type: "heartbeat", Addr: addr, Weight: weight, WProto: proto, MaxLine: maxLine})
	return err
}

// Send pushes one chunk and returns its scan, seeded with the carry of
// every prior chunk. On error the session is dead server-side; opening
// a fresh stream and resending from the first chunk is the only
// recovery.
func (s *ClientStream) Send(ctx context.Context, chunk []int64) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, fmt.Errorf("%w: stream already closed", ErrNoStream)
	}
	resp, err := s.c.roundTrip(ctx, WireRequest{Type: "stream_chunk", Stream: s.sid, Data: chunk})
	if err != nil {
		s.err = err
		return nil, err
	}
	if resp.Result == nil {
		resp.Result = []int64{}
	}
	return resp.Result, nil
}

// Close ends the session and returns the stream total: the fold of
// every element sent, regardless of kind (for an exclusive scan the
// total is NOT the last result element — it includes the final chunk's
// last input). Closing an already-failed stream returns the sticky
// error.
func (s *ClientStream) Close(ctx context.Context) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, fmt.Errorf("%w: stream already closed", ErrNoStream)
	}
	s.closed = true
	resp, err := s.c.roundTrip(ctx, WireRequest{Type: "stream_close", Stream: s.sid})
	if err != nil {
		s.err = err
		return 0, err
	}
	if resp.Total == nil {
		return 0, fmt.Errorf("%w: stream_close response missing total", ErrInternal)
	}
	return *resp.Total, nil
}

// pump drives a windowed streamed scan over the open stream: chunks
// [from, nchunks) of data are cut at chunkElems and sent with up to
// Window() chunk round trips in flight — the sends issue in order from
// this one goroutine (chunk order IS the stream's semantics), the acks
// come back in the same order, and the client blocks once the window is
// full, so a fast producer can never overrun the server's per-stream
// mailbox. Results append to out in order. Returns the grown out, the
// count of chunks whose responses were received (the caller's new
// lastAcked high-water mark), and the first error; on error every
// still-in-flight chunk is awaited (the server's stream teardown — or
// the dead connection — resolves them) so no response buffer leaks.
func (s *ClientStream) pump(ctx context.Context, data []int64, chunkElems, from int, out []int64) ([]int64, int, error) {
	nch := (len(data) + chunkElems - 1) / chunkElems
	w := s.window
	if w <= 0 {
		w = 1 // no advertised credit: degrade to the lock-step protocol
	}
	var pend []pendingResp
	done, next := from, from
	var firstErr error
	for done < nch {
		for firstErr == nil && next < nch && next-done < w {
			off := next * chunkElems
			end := min(off+chunkElems, len(data))
			p, err := s.c.startRequest(ctx, WireRequest{Type: "stream_chunk", Stream: s.sid, Data: data[off:end]})
			if err != nil {
				firstErr = err
				break
			}
			pend = append(pend, p)
			next++
		}
		if len(pend) == 0 {
			break
		}
		resp, err := s.c.awaitResponse(ctx, pend[0])
		pend = pend[1:]
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		out = append(out, resp.Result...)
		releaseData(resp.Result)
		done++
	}
	for _, p := range pend {
		if resp, err := s.c.awaitResponse(ctx, p); err == nil {
			releaseData(resp.Result)
		}
	}
	if firstErr != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = firstErr
		}
		s.mu.Unlock()
	}
	return out, done, firstErr
}

// StreamScan scans data by streaming it through the server in chunks
// of chunkElems elements (DefaultStreamChunk when <= 0), reassembling
// the chunk results into the full prefix scan — bit-identical to a
// one-shot ScanCtx, but with a bounded per-message footprint, so it
// works for vectors whose one-shot response would blow the line budget
// (the server refuses those with code "too_large"). Vectors that fit in
// a single chunk just take the one-shot path. Chunks are pipelined up
// to the server's advertised flow-control window (lock-step against a
// server without one).
func (c *Client) StreamScan(ctx context.Context, op, kind, dir string, data []int64, chunkElems int) ([]int64, error) {
	if chunkElems <= 0 {
		chunkElems = DefaultStreamChunk
	}
	if len(data) <= chunkElems {
		return c.ScanCtx(ctx, op, kind, dir, data)
	}
	s, err := c.OpenStream(ctx, op, kind, dir)
	if err != nil {
		return nil, err
	}
	// Reassemble into one arena buffer, recycling each chunk's decoded
	// result as it lands — so like every client scan result, the
	// returned slice is arena-backed and owned by the caller.
	out := arena.GetInt64s(len(data))[:0]
	out, _, err = s.pump(ctx, data, chunkElems, 0, out)
	if err != nil {
		arena.PutInt64s(out)
		return nil, err
	}
	if _, err := s.Close(ctx); err != nil {
		arena.PutInt64s(out)
		return nil, err
	}
	return out, nil
}
