package serve

// tenantQueues is the batcher's fairness structure: arrivals off the
// FIFO submission channel are parked in per-tenant FIFOs, and batch
// slots are handed out by weighted round-robin across the tenants that
// currently have work. Within a tenant, order stays FIFO; across
// tenants, a flooder's backlog waits in its own queue while everyone
// else's requests go into the very next batch — graceful degradation
// to a fair share instead of FIFO starvation (ROADMAP "multi-tenant
// fairness").
//
// Owned by the single batcher goroutine; no locking.
type tenantQueues struct {
	weights map[string]int
	qs      map[string]*tenantFIFO
	ring    []*tenantFIFO // tenants with pending work, pick order
	idx     int           // current ring position
	credit  int           // batch slots left for ring[idx] this round
	n       int           // total pending futures
}

// tenantFIFO is one tenant's pending requests, FIFO with a head index
// so pops don't reslice-copy.
type tenantFIFO struct {
	name   string
	weight int
	futs   []*Future
	head   int
}

func (q *tenantFIFO) len() int { return len(q.futs) - q.head }

func (q *tenantFIFO) popFront() *Future {
	f := q.futs[q.head]
	q.futs[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.futs) {
		q.futs = q.futs[:0]
		q.head = 0
	}
	return f
}

// newTenantQueues builds the structure; weights maps tenant names to
// slots-per-round (missing or < 1 means 1).
func newTenantQueues(weights map[string]int) *tenantQueues {
	return &tenantQueues{
		weights: weights,
		qs:      make(map[string]*tenantFIFO),
	}
}

func (t *tenantQueues) empty() bool { return t.n == 0 }

// push appends a future to its tenant's FIFO, adding the tenant to the
// pick ring when it transitions from idle to pending. The tenant joins
// the ring at the tail of the CURRENT ROUND — inserted just before the
// pick position — not at the end of the array. Appending at the array
// end is subtly unfair: when the pick pointer sits near the end,
// tenants that drain and re-enter keep landing in the slot under the
// pointer, so the wrap back to position 0 can be postponed indefinitely
// and the tenants parked there starve without bound
// (TestTenantQueuesPropertyRandomized catches this). Joining behind the
// pointer means a newcomer waits at most one full round, and every
// continuously-pending tenant is served at least once per total-weight
// pops.
func (t *tenantQueues) push(f *Future) {
	q := t.qs[f.tenant]
	if q == nil {
		w := t.weights[f.tenant]
		if w < 1 {
			w = 1
		}
		q = &tenantFIFO{name: f.tenant, weight: w}
		t.qs[f.tenant] = q
	}
	if q.len() == 0 {
		if t.idx >= len(t.ring) {
			t.idx = 0
		}
		t.ring = append(t.ring, nil)
		copy(t.ring[t.idx+1:], t.ring[t.idx:])
		t.ring[t.idx] = q
		t.idx++
	}
	q.futs = append(q.futs, f)
	t.n++
}

// pop removes and returns the next future under weighted round-robin,
// or nil when nothing is pending. The current tenant keeps the slot
// until its per-round credit (= weight) is spent or its FIFO empties;
// then the pick advances to the next tenant in ring order.
func (t *tenantQueues) pop() *Future {
	if t.n == 0 {
		return nil
	}
	if t.idx >= len(t.ring) {
		t.idx = 0
	}
	q := t.ring[t.idx]
	if t.credit <= 0 {
		t.credit = q.weight
	}
	f := q.popFront()
	t.n--
	t.credit--
	if q.len() == 0 {
		// Tenant drained: drop it from the ring (and the map, so
		// short-lived tenant names — e.g. remote addresses — don't
		// accumulate) and hand the next tenant a fresh credit.
		t.ring = append(t.ring[:t.idx], t.ring[t.idx+1:]...)
		delete(t.qs, q.name)
		t.credit = 0
	} else if t.credit == 0 {
		t.idx++
	}
	return f
}
