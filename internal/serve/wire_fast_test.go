package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestAppendWireResponseGolden pins the strconv fast path to
// encoding/json byte for byte: for every shape the fast path claims
// (ok=true) the bytes must be identical to json.Marshal, so a client
// can never observe which encoder served it.
func TestAppendWireResponseGolden(t *testing.T) {
	total := int64(-987654321)
	zero := int64(0)
	cases := []struct {
		name string
		resp WireResponse
		fast bool // fast path must claim it
	}{
		{"bare-ack", WireResponse{ID: 1}, true},
		{"id-zero", WireResponse{ID: 0}, true},
		{"id-max", WireResponse{ID: math.MaxUint64}, true},
		{"result", WireResponse{ID: 7, Result: []int64{1, -2, 0, math.MaxInt64, math.MinInt64}}, true},
		{"result-single", WireResponse{ID: 8, Result: []int64{42}}, true},
		{"empty-result", WireResponse{ID: 9, Result: []int64{}}, true},
		{"fresult", WireResponse{ID: 10, FResult: []float64{1.5, -0.25, 1e300, 5e-324, -0.0}}, true},
		{"fresult-nonfinite", WireResponse{ID: 11, FResult: []float64{math.Inf(1), math.Inf(-1), math.NaN(), 2.5}}, true},
		{"fresult-shortest", WireResponse{ID: 12, FResult: []float64{0.1, 1.0 / 3.0, math.MaxFloat64, math.SmallestNonzeroFloat64}}, true},
		{"total", WireResponse{ID: 13, Total: &total}, true},
		{"total-zero", WireResponse{ID: 14, Total: &zero}, true},
		{"error", WireResponse{ID: 15, Error: "boom", Code: CodeInternal}, false},
		{"result-and-total", WireResponse{ID: 16, Result: []int64{1}, Total: &total}, false},
	}
	for _, tc := range cases {
		want, err := json.Marshal(tc.resp)
		if err != nil {
			t.Fatalf("%s: json.Marshal: %v", tc.name, err)
		}
		got, ok := appendWireResponse(nil, tc.resp)
		if ok != tc.fast {
			t.Fatalf("%s: fast path claimed=%v, want %v", tc.name, ok, tc.fast)
		}
		if !ok {
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("%s:\nfast: %s\njson: %s", tc.name, got, want)
		}
		if size := fastRespSize(tc.resp); len(got) > size {
			t.Fatalf("%s: encoded %d bytes, fastRespSize budgeted %d", tc.name, len(got), size)
		}
	}
}

// TestAppendWireResponseGoldenRandom hammers the identity with random
// vectors — including floats built from random bit patterns, which is
// where shortest-round-trip formatting has its edge cases.
func TestAppendWireResponseGoldenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 2000; iter++ {
		resp := WireResponse{ID: rng.Uint64()}
		switch iter % 3 {
		case 0:
			resp.Result = make([]int64, rng.Intn(20))
			for i := range resp.Result {
				resp.Result[i] = rng.Int63() - rng.Int63()
			}
		case 1:
			resp.FResult = make([]float64, rng.Intn(20))
			for i := range resp.FResult {
				f := math.Float64frombits(rng.Uint64())
				if math.IsNaN(f) {
					// Normalize: json round-trips only the canonical NaN.
					f = math.NaN()
				}
				resp.FResult[i] = f
			}
		case 2:
			v := rng.Int63() - rng.Int63()
			resp.Total = &v
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("iter %d: json.Marshal: %v", iter, err)
		}
		got, ok := appendWireResponse(nil, resp)
		if !ok {
			t.Fatalf("iter %d: fast path refused %+v", iter, resp)
		}
		if string(got) != string(want) {
			t.Fatalf("iter %d:\nfast: %s\njson: %s", iter, got, want)
		}
		if size := fastRespSize(resp); len(got) > size {
			t.Fatalf("iter %d: encoded %d bytes, fastRespSize budgeted %d", iter, len(got), size)
		}
	}
}
