package serve

import "fmt"

// The wire format of cmd/scansd is newline-delimited JSON: one
// WireRequest per line in, one WireResponse per line out. Responses
// carry the request's id and MAY arrive out of order (requests from
// one connection land in different batches); clients match on ID.
// This file defines the two message types and the string forms of the
// Spec enums so the daemon and the load generator share one vocabulary.

// WireRequest is one scan request on the wire.
type WireRequest struct {
	// ID is echoed in the response; clients choose it (unique per
	// connection) to match responses to requests.
	ID uint64 `json:"id"`
	// Op is "sum", "max", "min", or "mul".
	Op string `json:"op"`
	// Kind is "exclusive" (default when empty) or "inclusive".
	Kind string `json:"kind,omitempty"`
	// Dir is "forward" (default when empty) or "backward".
	Dir string `json:"dir,omitempty"`
	// Data is the input vector.
	Data []int64 `json:"data"`
}

// WireResponse is one scan result (or error) on the wire.
type WireResponse struct {
	ID     uint64  `json:"id"`
	Result []int64 `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// ParseSpec converts the wire strings to a Spec, applying the
// exclusive/forward defaults for empty kind/dir.
func ParseSpec(op, kind, dir string) (Spec, error) {
	var s Spec
	switch op {
	case "sum":
		s.Op = OpSum
	case "max":
		s.Op = OpMax
	case "min":
		s.Op = OpMin
	case "mul":
		s.Op = OpMul
	default:
		return s, fmt.Errorf("%w: unknown op %q", ErrBadRequest, op)
	}
	switch kind {
	case "", "exclusive":
		s.Kind = Exclusive
	case "inclusive":
		s.Kind = Inclusive
	default:
		return s, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	switch dir {
	case "", "forward":
		s.Dir = Forward
	case "backward":
		s.Dir = Backward
	default:
		return s, fmt.Errorf("%w: unknown dir %q", ErrBadRequest, dir)
	}
	return s, nil
}
