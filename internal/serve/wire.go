package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"scans/internal/arena"
)

// Int64Vec is a []int64 with a hand-rolled JSON codec. encoding/json's
// reflection path costs ~1µs per element both ways, which at cluster
// scale (multi-million-element shards moving between coordinator and
// workers) turns the wire into the bottleneck — an order of magnitude
// slower than the scan kernels it feeds. The fast path parses the
// `[-123,456,...]` byte form directly with no per-element allocation;
// anything it does not recognize (whitespace variants from non-Go
// clients, null, malformed input) falls back to encoding/json, so
// accepted inputs and error behavior match the standard decoder
// exactly.
type Int64Vec []int64

// MarshalJSON implements json.Marshaler.
func (v Int64Vec) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 2+21*len(v))
	b = append(b, '[')
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, x, 10)
	}
	return append(b, ']'), nil
}

// UnmarshalJSON implements json.Unmarshaler. Every non-empty decoded
// vector is arena-backed — the fast path parses straight into an arena
// buffer, and the fallback copies into one — so the wire layer can
// return request payloads to the arena uniformly (empty vectors are the
// shared literal and are never Put). See DESIGN.md "Arena ownership".
func (v *Int64Vec) UnmarshalJSON(b []byte) error {
	out, ok := parseInt64Array(b)
	if !ok {
		// Graceful degradation: let encoding/json handle whitespace,
		// exponent forms, null, and error reporting.
		var tmp []int64
		if err := json.Unmarshal(b, &tmp); err != nil {
			return err
		}
		if len(tmp) == 0 {
			*v = tmp
			return nil
		}
		out = arena.GetInt64s(len(tmp))
		copy(out, tmp)
	}
	*v = out
	return nil
}

// parseInt64Array is the allocation-light fast path for the exact byte
// form Int64Vec.MarshalJSON (and any compact JSON encoder) produces:
// '[' integer (',' integer)* ']' with no interior whitespace. Returns
// ok=false on ANY deviation — including overflow — so the caller can
// fall back to the standard decoder.
func parseInt64Array(b []byte) ([]int64, bool) {
	if len(b) < 2 || b[0] != '[' || b[len(b)-1] != ']' {
		return nil, false
	}
	body := b[1 : len(b)-1]
	if len(body) == 0 {
		return []int64{}, true
	}
	// k elements need at least 2k-1 body bytes ("d,d,...,d"), so
	// len/2+1 bounds the element count: the appends below never outgrow
	// the arena buffer's length-n backing.
	out := arena.GetInt64s(len(body)/2 + 1)[:0]
	fail := func() ([]int64, bool) {
		arena.PutInt64s(out)
		return nil, false
	}
	i := 0
	for {
		neg := false
		if i < len(body) && body[i] == '-' {
			neg = true
			i++
		}
		start := i
		var n uint64
		for i < len(body) && body[i] >= '0' && body[i] <= '9' {
			d := uint64(body[i] - '0')
			if n > (math.MaxUint64-d)/10 {
				return fail()
			}
			n = n*10 + d
			i++
		}
		if i == start {
			return fail() // empty digits: ",,", "]", non-numeric...
		}
		if neg {
			if n > uint64(math.MaxInt64)+1 {
				return fail()
			}
			out = append(out, -int64(n))
		} else {
			if n > uint64(math.MaxInt64) {
				return fail()
			}
			out = append(out, int64(n))
		}
		if i == len(body) {
			return out, true
		}
		if body[i] != ',' {
			return fail()
		}
		i++
	}
}

// The wire format of cmd/scansd is newline-delimited JSON: one
// WireRequest per line in, one WireResponse per line out. Responses
// carry the request's id and MAY arrive out of order (requests from
// one connection land in different batches); clients match on ID.
// This file defines the two message types, the string forms of the
// Spec enums, and the error-code vocabulary that lets a remote client
// classify failures (retryable overload vs fatal bad request) exactly
// as an in-process caller would with errors.Is.

// WireRequest is one scan request on the wire.
type WireRequest struct {
	// ID is echoed in the response; clients choose it (unique per
	// connection) to match responses to requests.
	ID uint64 `json:"id"`
	// Type selects the message kind. Empty (the default) is a one-shot
	// scan. "stream_open" starts a streaming session for the message's
	// op/kind/dir (forward only), "stream_chunk" pushes Data through it
	// seeded with the carry of all prior chunks, and "stream_close"
	// ends it, answering with the total. Stream messages name their
	// session via Stream; see DESIGN.md §5 for the protocol.
	Type string `json:"type,omitempty"`
	// Stream is the client-chosen stream id for stream_* messages,
	// unique among the connection's simultaneously-open streams.
	Stream uint64 `json:"stream,omitempty"`
	// Op is "sum", "max", "min", "mul", or "user:<name>" for a combine
	// op the tenant registered via a "register_op" message.
	Op string `json:"op"`
	// Name and Source are the "register_op" fields: Name is the op name
	// (addressed later as "user:<name>"), Source its combine-VM assembly
	// (internal/combine). The ack echoes the registration's content hash
	// in OpHash; rejections (parse error, failed monoid property test
	// with its counterexample, tenant cap) answer with code "bad_op".
	Name   string `json:"op_name,omitempty"`
	Source string `json:"source,omitempty"`
	// OpHash, when nonzero on a user-op scan, pins the expected
	// registration content hash: the server refuses to combine with a
	// different program under that name (code "op_hash"). Cluster
	// coordinators stamp it on every piece they dispatch.
	OpHash uint64 `json:"op_hash,omitempty"`
	// Kind is "exclusive" (default when empty) or "inclusive".
	Kind string `json:"kind,omitempty"`
	// Dir is "forward" (default when empty) or "backward".
	Dir string `json:"dir,omitempty"`
	// Elem is the element kind: "int64" (default when empty) or
	// "float64". Float64 requests carry their vector in FData and are
	// answered in FResult; on the server they ride the SAME int64
	// kernels through the §3.4 order-preserving float↔int key mapping
	// (max/min) or the exact integral path (sum) — see wirefloat.go.
	Elem string `json:"elem,omitempty"`
	// TimeoutMS, when positive, is the request's deadline in
	// milliseconds from server receipt: the server drops the request
	// unexecuted (code "deadline") if it cannot reach a kernel pass in
	// time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tenant optionally names the submitter for the server's weighted
	// fair pick; empty means the connection's remote address, so one
	// connection is one fairness domain by default.
	Tenant string `json:"tenant,omitempty"`
	// Data is the input vector for int64 requests.
	Data Int64Vec `json:"data"`
	// FData is the input vector for Elem == "float64" requests. NaN has
	// no position in the float order and is rejected with bad_request.
	FData FloatVec `json:"fdata,omitempty"`
	// Resume is the stream resume token for "stream_resume": the opaque
	// token a resumable stream_open ack carried. Seq is the count of
	// chunks whose responses the client has received (its high-water
	// mark); the server rolls its session carry back to that point and
	// answers with the 1-based index of the next chunk it expects.
	Resume string `json:"resume,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	// Heartbeat fields ("heartbeat" messages): the announcing worker's
	// dialable address, relative capacity weight, wire protocol the
	// coordinator should dial it with ("json"/"bin"), and line budget
	// (0 = the coordinator's default).
	Addr    string  `json:"addr,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
	WProto  string  `json:"wproto,omitempty"`
	MaxLine int     `json:"max_line,omitempty"`
	// Exchange fields ("scan_xchg" / "carry_xchg" messages, the
	// worker↔worker data plane of DESIGN.md's exchange protocol). Group
	// names one carry exchange; Rank is the receiver's rank in it
	// (scan_xchg: the piece's own rank; carry_xchg: the destination
	// rank); Peers lists every rank's worker address in rank order.
	// XHead marks a piece that opens with a segment head, XSeed tells
	// the worker to apply the exchanged carry to its piece, Init seeds
	// rank 0 (a stream chunk's running carry; the op identity
	// otherwise). Round/From/XVal/XReset are one carry_xchg message: the
	// sender's running (value, reset) pair for that exchange round.
	Group  uint64   `json:"group,omitempty"`
	Rank   int      `json:"rank,omitempty"`
	Peers  []string `json:"peers,omitempty"`
	XHead  bool     `json:"xhead,omitempty"`
	XSeed  bool     `json:"xseed,omitempty"`
	Init   int64    `json:"init,omitempty"`
	Round  int      `json:"round,omitempty"`
	From   int      `json:"from,omitempty"`
	XVal   int64    `json:"xval,omitempty"`
	XReset bool     `json:"xreset,omitempty"`
	// WantAck marks a stream_open whose sender understands extended acks
	// (resume token + flow-control window). Never serialized: the JSON
	// decoder sets it for every stream_open (unknown response fields are
	// ignored by old JSON clients), the binary decoder only for the
	// FStreamOpen2 frame (old binary clients would choke on FAck).
	WantAck bool `json:"-"`
}

// WireResponse is one scan result (or error) on the wire.
type WireResponse struct {
	ID     uint64   `json:"id"`
	Result Int64Vec `json:"result,omitempty"`
	// FResult is the result vector of an Elem == "float64" request,
	// mapped back from the int64 kernel domain.
	FResult FloatVec `json:"fresult,omitempty"`
	// Total is set on a stream_close acknowledgement: the fold of every
	// element the stream carried (a pointer so a legitimate zero total
	// survives omitempty).
	Total *int64 `json:"total,omitempty"`
	// Error is the human-readable failure message; Code is its machine
	// classification (one of the Code* constants) so clients can decide
	// retry vs give-up without parsing English.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// OpHash on a register_op ack is the accepted registration's content
	// hash — the value scans pin via WireRequest.OpHash.
	OpHash uint64 `json:"op_hash,omitempty"`
	// Resume is the stream resume token on a resumable stream_open /
	// stream_resume ack; Seq on a stream_resume ack is the 1-based index
	// of the next chunk the server expects (a pointer so the field is
	// distinguishable from absent); Window is the flow-control credit:
	// how many chunk requests the client may hold in flight on the
	// stream before blocking on acks.
	Resume string  `json:"resume,omitempty"`
	Seq    *uint64 `json:"seq,omitempty"`
	Window int     `json:"window,omitempty"`
}

// Error codes carried in WireResponse.Code. Clients map these back to
// the package's typed errors (see errorForCode); unknown or empty
// codes degrade to a plain error string.
const (
	// CodeBadRequest: invalid op/kind/dir. Not retryable.
	CodeBadRequest = "bad_request"
	// CodeBadJSON: the request line did not parse. Not retryable.
	CodeBadJSON = "bad_json"
	// CodeTooLarge: the request line exceeded the server's line limit.
	// The connection is closed after this response. Not retryable.
	CodeTooLarge = "too_large"
	// CodeOverloaded: queue full or per-connection in-flight cap hit.
	// Retryable with backoff.
	CodeOverloaded = "overloaded"
	// CodeClosed: server shutting down. Retryable against a replica.
	CodeClosed = "closed"
	// CodeInternal: isolated kernel panic; the request did not execute
	// to completion. Retryable.
	CodeInternal = "internal"
	// CodeDeadline: the request's deadline expired before execution.
	// Not retryable (the time budget is spent).
	CodeDeadline = "deadline"
	// CodeShed: dropped by queue-age shedding under overload.
	// Retryable with backoff.
	CodeShed = "shed"
	// CodeNoStream: a stream_chunk/stream_close named a stream that is
	// unknown, already closed, or expired by the idle TTL. Retrying the
	// same stream cannot help; open a fresh one.
	CodeNoStream = "no_stream"
	// CodeStreamFailed: an earlier chunk of the stream failed (its own
	// response carried the underlying code), so the session was freed.
	// Recovery is a fresh stream from the first chunk.
	CodeStreamFailed = "stream_failed"
	// CodeStreamUnsupported: stream_open for a backward spec — the
	// carry would depend on chunks not yet arrived. Not retryable.
	CodeStreamUnsupported = "stream_unsupported"
	// CodeBadFrame: a binary-protocol frame was structurally invalid
	// (unknown type, declared lengths inconsistent with the payload).
	// The binary analogue of bad_json. When only the payload was damaged
	// the connection survives (framing stayed in sync); length-prefix
	// damage closes it (a binary stream has no resync point — see
	// internal/binwire). Not retryable.
	CodeBadFrame = "bad_frame"
	// CodeShardFailed: a cluster coordinator could not complete one of
	// the request's shards within its per-shard retry budget (worker
	// deaths, sustained worker overload, or no healthy workers). Only
	// this request failed; the coordinator survived. Retryable — the
	// fleet may have healed by the next attempt.
	CodeShardFailed = "shard_failed"
	// CodeXchgFailed: an exchange-mode piece could not complete its
	// worker↔worker carry exchange (a peer round timed out or a sibling
	// piece failed). A typed answer — the worker is alive. The
	// coordinator retries the request on the star data plane rather than
	// retrying the piece.
	CodeXchgFailed = "xchg_failed"
	// CodeBadOp: a register_op submission was rejected (parse error,
	// failed monoid property test — the message carries the
	// counterexample — or tenant op cap). Not retryable.
	CodeBadOp = "bad_op"
	// CodeOpBudget: a user op exceeded its per-call step budget on this
	// request's actual data. Only this request failed. Not retryable
	// with the same data; the op needs fixing.
	CodeOpBudget = "op_budget"
	// CodeOpHash: the scan pinned a registration content hash that does
	// not match the program the server holds under that name. A typed
	// answer — the server is alive; re-push the registration (or drop
	// the pin) and retry.
	CodeOpHash = "op_hash"
)

// codeForError classifies a server-side error into a wire code. The
// stream errors are checked before their wrapped sentinels so a remote
// caller sees the most specific classification.
func codeForError(err error) string {
	switch {
	case errors.Is(err, ErrStreamUnsupported):
		return CodeStreamUnsupported
	case errors.Is(err, ErrNoStream):
		return CodeNoStream
	case errors.Is(err, ErrStreamFailed):
		return CodeStreamFailed
	case errors.Is(err, ErrBadOp):
		return CodeBadOp
	case errors.Is(err, ErrOpBudget):
		return CodeOpBudget
	case errors.Is(err, ErrOpHash):
		return CodeOpHash
	case errors.Is(err, ErrShardFailed):
		return CodeShardFailed
	case errors.Is(err, ErrXchgFailed):
		return CodeXchgFailed
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrInternal):
		return CodeInternal
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return CodeDeadline
	}
	return CodeInternal
}

// errorForCode converts a wire (code, message) pair back into an error
// wrapping the matching typed sentinel, so remote callers can use
// errors.Is exactly like in-process ones.
func errorForCode(code, msg string) error {
	var sentinel error
	switch code {
	case CodeBadRequest, CodeBadJSON, CodeTooLarge, CodeBadFrame:
		sentinel = ErrBadRequest
	case CodeOverloaded:
		sentinel = ErrOverloaded
	case CodeClosed:
		sentinel = ErrClosed
	case CodeInternal:
		sentinel = ErrInternal
	case CodeShed:
		sentinel = ErrShed
	case CodeNoStream:
		sentinel = ErrNoStream
	case CodeStreamFailed:
		sentinel = ErrStreamFailed
	case CodeStreamUnsupported:
		sentinel = ErrStreamUnsupported
	case CodeShardFailed:
		sentinel = ErrShardFailed
	case CodeXchgFailed:
		sentinel = ErrXchgFailed
	case CodeBadOp:
		sentinel = ErrBadOp
	case CodeOpBudget:
		sentinel = ErrOpBudget
	case CodeOpHash:
		sentinel = ErrOpHash
	case CodeDeadline:
		sentinel = context.DeadlineExceeded
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// appendWireResponse is the strconv fast path for encoding a success
// response: byte-identical to what encoding/json produces (field order,
// omitempty on empty vectors, FloatVec's non-finite tokens) with zero
// steady-state allocation — the caller passes an arena buffer. It
// covers every shape the success hot paths emit: a bare id (stream-open
// ack, empty result), an id plus exactly one of result / fresult /
// total. Anything else — errors, or field combinations no server path
// produces — returns ok=false and the caller falls back to
// json.Marshal, so the fast path can never silently diverge on a shape
// it was not written for. Golden-tested against encoding/json in
// wire_fast_test.go.
func appendWireResponse(dst []byte, resp WireResponse) ([]byte, bool) {
	if resp.Error != "" || resp.Code != "" {
		return dst, false
	}
	if resp.OpHash != 0 {
		// register_op acks are rare (one per registration); keep them on
		// encoding/json.
		return dst, false
	}
	if resp.Resume != "" || resp.Seq != nil || resp.Window != 0 {
		// Extended stream acks are rare (one per stream) and their field
		// set grows with the protocol; keep them on encoding/json rather
		// than risk the fast path silently dropping a field.
		return dst, false
	}
	set := 0
	if len(resp.Result) > 0 {
		set++
	}
	if len(resp.FResult) > 0 {
		set++
	}
	if resp.Total != nil {
		set++
	}
	if set > 1 {
		return dst, false
	}
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, resp.ID, 10)
	switch {
	case len(resp.Result) > 0:
		dst = append(dst, `,"result":[`...)
		for i, x := range resp.Result {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, x, 10)
		}
		dst = append(dst, ']')
	case len(resp.FResult) > 0:
		dst = append(dst, `,"fresult":[`...)
		for i, f := range resp.FResult {
			if i > 0 {
				dst = append(dst, ',')
			}
			switch {
			case math.IsInf(f, 1):
				dst = append(dst, `"+Inf"`...)
			case math.IsInf(f, -1):
				dst = append(dst, `"-Inf"`...)
			case math.IsNaN(f):
				dst = append(dst, `"NaN"`...)
			default:
				dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
			}
		}
		dst = append(dst, ']')
	case resp.Total != nil:
		dst = append(dst, `,"total":`...)
		dst = strconv.AppendInt(dst, *resp.Total, 10)
	}
	return append(dst, '}'), true
}

// fastRespSize bounds appendWireResponse's output for arena sizing: the
// per-element worst cases of maxRespBytes / maxRespBytesFloat plus the
// total field's 21 characters.
func fastRespSize(resp WireResponse) int {
	return 69 + 21*len(resp.Result) + 25*len(resp.FResult)
}

// extractID best-effort recovers the "id" field from a request line
// that failed to parse (malformed JSON) or was truncated (oversized
// line), so the error response can still be matched to the request.
// Returns 0 when no id is recognizable.
//
// Only a top-level "id" KEY matches: strings are skipped whole (with
// escape handling) and nesting depth is tracked, so a tenant named
// `{"id":9` or a nested object's id can never be mistaken for the
// request id. The value must be an unquoted number that fits uint64;
// an overflowing id is rejected (0) rather than silently wrapped.
func extractID(line []byte) uint64 {
	depth := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case '"':
			// Scan the whole string (key or value). Truncated lines can
			// cut a string short; nothing after an unterminated string
			// is trustworthy.
			start := i
			i++
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(line) {
				return 0
			}
			if depth != 1 || !bytes.Equal(line[start:i+1], []byte(`"id"`)) {
				continue
			}
			// Top-level "id" string: it is the key only if a colon
			// follows; otherwise it was a string VALUE spelled "id" and
			// the scan continues.
			j := i + 1
			for j < len(line) && (line[j] == ' ' || line[j] == '\t') {
				j++
			}
			if j >= len(line) || line[j] != ':' {
				continue
			}
			j++
			for j < len(line) && (line[j] == ' ' || line[j] == '\t') {
				j++
			}
			id, digits := uint64(0), 0
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				d := uint64(line[j] - '0')
				if id > (math.MaxUint64-d)/10 {
					return 0 // id overflows uint64: reject, don't wrap
				}
				id = id*10 + d
				digits++
				j++
			}
			if digits == 0 {
				return 0
			}
			return id
		}
	}
	return 0
}

// ParseSpec converts the wire strings to a Spec, applying the
// exclusive/forward defaults for empty kind/dir.
func ParseSpec(op, kind, dir string) (Spec, error) {
	var s Spec
	switch op {
	case "sum":
		s.Op = OpSum
	case "max":
		s.Op = OpMax
	case "min":
		s.Op = OpMin
	case "mul":
		s.Op = OpMul
	default:
		// The user-op namespace: "user:<name>". Resolution against the
		// tenant's registry happens at admission; here only the shape is
		// checked, so an unknown or bad name is always a bad_request —
		// never a framing error — on both codecs (binwire decodes its
		// user-op frames into this same string form).
		name, ok := strings.CutPrefix(op, "user:")
		if !ok || name == "" {
			return s, fmt.Errorf("%w: unknown op %q", ErrBadRequest, op)
		}
		s.Op = OpUser
		s.User = name
	}
	switch kind {
	case "", "exclusive":
		s.Kind = Exclusive
	case "inclusive":
		s.Kind = Inclusive
	default:
		return s, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	switch dir {
	case "", "forward":
		s.Dir = Forward
	case "backward":
		s.Dir = Backward
	default:
		return s, fmt.Errorf("%w: unknown dir %q", ErrBadRequest, dir)
	}
	return s, nil
}
