package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
)

// The wire format of cmd/scansd is newline-delimited JSON: one
// WireRequest per line in, one WireResponse per line out. Responses
// carry the request's id and MAY arrive out of order (requests from
// one connection land in different batches); clients match on ID.
// This file defines the two message types, the string forms of the
// Spec enums, and the error-code vocabulary that lets a remote client
// classify failures (retryable overload vs fatal bad request) exactly
// as an in-process caller would with errors.Is.

// WireRequest is one scan request on the wire.
type WireRequest struct {
	// ID is echoed in the response; clients choose it (unique per
	// connection) to match responses to requests.
	ID uint64 `json:"id"`
	// Op is "sum", "max", "min", or "mul".
	Op string `json:"op"`
	// Kind is "exclusive" (default when empty) or "inclusive".
	Kind string `json:"kind,omitempty"`
	// Dir is "forward" (default when empty) or "backward".
	Dir string `json:"dir,omitempty"`
	// TimeoutMS, when positive, is the request's deadline in
	// milliseconds from server receipt: the server drops the request
	// unexecuted (code "deadline") if it cannot reach a kernel pass in
	// time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tenant optionally names the submitter for the server's weighted
	// fair pick; empty means the connection's remote address, so one
	// connection is one fairness domain by default.
	Tenant string `json:"tenant,omitempty"`
	// Data is the input vector.
	Data []int64 `json:"data"`
}

// WireResponse is one scan result (or error) on the wire.
type WireResponse struct {
	ID     uint64  `json:"id"`
	Result []int64 `json:"result,omitempty"`
	// Error is the human-readable failure message; Code is its machine
	// classification (one of the Code* constants) so clients can decide
	// retry vs give-up without parsing English.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// Error codes carried in WireResponse.Code. Clients map these back to
// the package's typed errors (see errorForCode); unknown or empty
// codes degrade to a plain error string.
const (
	// CodeBadRequest: invalid op/kind/dir. Not retryable.
	CodeBadRequest = "bad_request"
	// CodeBadJSON: the request line did not parse. Not retryable.
	CodeBadJSON = "bad_json"
	// CodeTooLarge: the request line exceeded the server's line limit.
	// The connection is closed after this response. Not retryable.
	CodeTooLarge = "too_large"
	// CodeOverloaded: queue full or per-connection in-flight cap hit.
	// Retryable with backoff.
	CodeOverloaded = "overloaded"
	// CodeClosed: server shutting down. Retryable against a replica.
	CodeClosed = "closed"
	// CodeInternal: isolated kernel panic; the request did not execute
	// to completion. Retryable.
	CodeInternal = "internal"
	// CodeDeadline: the request's deadline expired before execution.
	// Not retryable (the time budget is spent).
	CodeDeadline = "deadline"
	// CodeShed: dropped by queue-age shedding under overload.
	// Retryable with backoff.
	CodeShed = "shed"
)

// codeForError classifies a server-side error into a wire code.
func codeForError(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrInternal):
		return CodeInternal
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return CodeDeadline
	}
	return CodeInternal
}

// errorForCode converts a wire (code, message) pair back into an error
// wrapping the matching typed sentinel, so remote callers can use
// errors.Is exactly like in-process ones.
func errorForCode(code, msg string) error {
	var sentinel error
	switch code {
	case CodeBadRequest, CodeBadJSON, CodeTooLarge:
		sentinel = ErrBadRequest
	case CodeOverloaded:
		sentinel = ErrOverloaded
	case CodeClosed:
		sentinel = ErrClosed
	case CodeInternal:
		sentinel = ErrInternal
	case CodeShed:
		sentinel = ErrShed
	case CodeDeadline:
		sentinel = context.DeadlineExceeded
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// extractID best-effort recovers the "id" field from a request line
// that failed to parse (malformed JSON) or was truncated (oversized
// line), so the error response can still be matched to the request.
// Returns 0 when no id is recognizable.
func extractID(line []byte) uint64 {
	i := bytes.Index(line, []byte(`"id"`))
	if i < 0 {
		return 0
	}
	rest := line[i+len(`"id"`):]
	j := 0
	for j < len(rest) && (rest[j] == ' ' || rest[j] == '\t') {
		j++
	}
	if j >= len(rest) || rest[j] != ':' {
		return 0
	}
	j++
	for j < len(rest) && (rest[j] == ' ' || rest[j] == '\t') {
		j++
	}
	id := uint64(0)
	digits := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		id = id*10 + uint64(rest[j]-'0')
		digits++
		j++
	}
	if digits == 0 {
		return 0
	}
	return id
}

// ParseSpec converts the wire strings to a Spec, applying the
// exclusive/forward defaults for empty kind/dir.
func ParseSpec(op, kind, dir string) (Spec, error) {
	var s Spec
	switch op {
	case "sum":
		s.Op = OpSum
	case "max":
		s.Op = OpMax
	case "min":
		s.Op = OpMin
	case "mul":
		s.Op = OpMul
	default:
		return s, fmt.Errorf("%w: unknown op %q", ErrBadRequest, op)
	}
	switch kind {
	case "", "exclusive":
		s.Kind = Exclusive
	case "inclusive":
		s.Kind = Inclusive
	default:
		return s, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	switch dir {
	case "", "forward":
		s.Dir = Forward
	case "backward":
		s.Dir = Backward
	default:
		return s, fmt.Errorf("%w: unknown dir %q", ErrBadRequest, dir)
	}
	return s, nil
}
