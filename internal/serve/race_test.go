//go:build race

package serve

// raceEnabled reports that this test binary was built with -race. The
// race detector's sync.Pool implementation deliberately drops a
// fraction of Puts to shake out lifetime bugs, so tests asserting
// alloc-free pooling must skip under it (mirrors internal/arena).
const raceEnabled = true
