package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"scans/internal/arena"
	"scans/internal/combine"
)

// BenchmarkServeZeroCopyVsFlatten pits the zero-copy serving path
// (view kernels over request-owned buffers + pooled futures/outputs)
// against the pre-zero-copy flatten baseline (fuse every payload into
// one src/flags vector, results as subslices of a fresh output) at
// ~250 requests per batch. Run with -benchmem: the flatten arm pays
// O(batch elements) in copies and garbage per batch; the zero-copy arm
// should hold steady-state allocs/op near the goroutine-and-scheduling
// floor. EXPERIMENTS.md records the before/after table.
func BenchmarkServeZeroCopyVsFlatten(b *testing.B) {
	b.Run("zerocopy", func(b *testing.B) {
		benchBatchedServe(b, Config{})
	})
	b.Run("flatten", func(b *testing.B) {
		benchBatchedServe(b, Config{legacyFlatten: true})
	})
}

// benchBatchedServe drives waves of 250 concurrent Submits so each
// wave fuses into about one batch (the acceptance shape: 250
// req/batch, 64 elements each).
func benchBatchedServe(b *testing.B, cfg Config) {
	const (
		submitters = 250
		elems      = 64
	)
	cfg.MinBatchRequests = submitters
	cfg.MaxBatchRequests = submitters
	cfg.MaxBatchElems = submitters * elems
	cfg.MaxWait = 200 * time.Microsecond
	cfg.QueueLimit = 4 * submitters
	s := New(cfg)
	defer s.Close()

	spec := Spec{Op: OpSum, Kind: Inclusive}
	payloads := make([][]int64, submitters)
	for g := range payloads {
		payloads[g] = make([]int64, elems)
		for i := range payloads[g] {
			payloads[g][i] = int64(g + i)
		}
	}
	release := func(res []int64) {
		// Zero-copy results are arena-backed and caller-owned; flatten
		// results are plain garbage and must NOT enter the pools.
		if !cfg.legacyFlatten && len(res) > 0 {
			arena.PutInt64s(res)
		}
	}
	// Persistent submitter goroutines triggered once per wave, so the
	// measured allocations are the serving path's, not 250 goroutine
	// spawns per iteration.
	var wg sync.WaitGroup
	trigs := make([]chan struct{}, submitters)
	for g := range trigs {
		trigs[g] = make(chan struct{}, 1)
		go func(g int) {
			for range trigs[g] {
				res, err := s.Submit(spec, payloads[g])
				if err != nil {
					b.Error(err)
				} else {
					release(res)
				}
				wg.Done()
			}
		}(g)
	}
	defer func() {
		for _, c := range trigs {
			close(c)
		}
	}()
	wave := func() {
		wg.Add(submitters)
		for _, c := range trigs {
			c <- struct{}{}
		}
		wg.Wait()
	}
	wave() // warm the pools before the clock starts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wave()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*submitters/b.Elapsed().Seconds(), "req/s")
}

// maxSteadyScanAllocs bounds allocations per request on the warm
// in-process Scan path: pooled future + token channel reuse, pooled
// batch slice, per-executor scratch, arena-backed output. The measured
// steady state is ~2 allocs/op (scheduler noise around the batcher's
// yield loop); 4 leaves headroom for jitter while still failing loudly
// if a buffer copy or per-request allocation sneaks back in (the
// flatten path costs ~5 extra allocs/op even at occupancy 1).
const maxSteadyScanAllocs = 4

// TestAllocsSteadyStateScan is the alloc-regression guard
// scripts/check.sh runs (without -race: the race detector's sync.Pool
// deliberately drops recycled items, so alloc-free pooling cannot be
// asserted under it — see raceEnabled).
func TestAllocsSteadyStateScan(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc-free pooling is not observable under -race (sync.Pool drops Puts)")
	}
	s := New(Config{MaxWait: 50 * time.Microsecond})
	defer s.Close()
	spec := Spec{Op: OpSum, Kind: Inclusive}
	data := make([]int64, 256)
	for i := range data {
		data[i] = int64(i)
	}
	ctx := context.Background()
	run := func() {
		res, err := s.Scan(ctx, spec, data, "")
		if err != nil {
			t.Fatal(err)
		}
		arena.PutInt64s(res)
	}
	for i := 0; i < 100; i++ {
		run() // reach steady state: pools warm, scratch grown
	}
	if avg := testing.AllocsPerRun(200, run); avg > maxSteadyScanAllocs {
		t.Errorf("steady-state Scan allocates %.1f objects/request, want <= %d — a copy or per-request allocation crept back into the zero-copy path", avg, maxSteadyScanAllocs)
	}
}

// maxSteadyUserOpAllocs bounds allocations per request on the warm
// user-op (combine VM) path. The VM itself is allocation-free after
// warm-up — per-executor Frame scratch, arena-backed dst, the same
// pooled future machinery as the builtins — so the budget is the
// builtin budget plus 2 for the resolved binding's spec plumbing.
const maxSteadyUserOpAllocs = maxSteadyScanAllocs + 2

// TestAllocsSteadyStateUserOpScan is check.sh's VM alloc gate: a
// registered monoid served through the batch path must stay within a
// fixed allocs/request budget, or the "no allocation beyond a
// per-executor scratch frame" contract of internal/combine has broken.
// All three dispatch classes are pinned: scalar (gcd's loop), vector
// (satadd's lane blocks must come from the per-executor VecScratch,
// not the GC), and native-promoted (add).
func TestAllocsSteadyStateUserOpScan(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc-free pooling is not observable under -race (sync.Pool drops Puts)")
	}
	cases := []struct {
		name, source, class string
	}{
		{"gcd", combine.ExampleGCD, "scalar"},
		{"satadd", combine.ExampleSatAdd, "vector"},
		{"add", combine.ExampleAdd, "native"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{MaxWait: 50 * time.Microsecond})
			defer s.Close()
			if _, err := s.RegisterScanOp("", tc.name, tc.source); err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec("user:"+tc.name, "inclusive", "")
			if err != nil {
				t.Fatal(err)
			}
			data := make([]int64, 256)
			for i := range data {
				data[i] = int64((i%9 + 1) * 12)
			}
			ctx := context.Background()
			run := func() {
				res, err := s.Scan(ctx, spec, data, "")
				if err != nil {
					t.Fatal(err)
				}
				arena.PutInt64s(res)
			}
			for i := 0; i < 100; i++ {
				run()
			}
			if avg := testing.AllocsPerRun(200, run); avg > maxSteadyUserOpAllocs {
				t.Errorf("steady-state %s-dispatch user-op Scan allocates %.1f objects/request, want <= %d — the combine VM path has grown a per-request allocation", tc.class, avg, maxSteadyUserOpAllocs)
			}
		})
	}
}
