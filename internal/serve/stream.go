package serve

import (
	"context"
	"fmt"
	"sync"

	"scans/internal/arena"
	"scans/internal/combine"
)

// Streaming scan sessions: the paper's Figure 10 long-vector rule says
// a scan over n > P elements is ⌈n/P⌉ block passes stitched together
// by a block-sum carry. A Stream applies the same decomposition across
// TIME instead of space: the client submits a vector too large for one
// wire message (or one batch) as a sequence of chunks, and the server
// carries the running prefix — the "block sum" of every prior chunk —
// from one chunk to the next. Chunk k's kernel pass is seeded with the
// carry (see runGroup: the carry is injected ahead of the chunk at the
// segment head, so the ordinary segmented kernels do the stitching),
// its result streams back immediately, and the updated carry is all
// the state the server retains: O(1) per stream, independent of how
// much data has flowed through it.
//
// Failure model (consistent with DESIGN.md §4): every chunk is an
// ordinary batched request, so it can hit a deadline, be shed, or lose
// its group to an isolated kernel panic. Any such failure fails the
// WHOLE stream — a skipped chunk would silently corrupt the carry —
// and frees its state; the failing chunk reports the underlying typed
// error and later operations get ErrStreamFailed. Backward specs are
// rejected at open with ErrStreamUnsupported: their carry depends on
// chunks that have not arrived yet (see the error's doc comment).

// streamState is a Stream's lifecycle position.
type streamState uint8

const (
	streamOpen streamState = iota
	streamClosed
	streamFailed
)

// Stream is one in-process streaming scan session. Create with
// Server.OpenStream, feed with Push (one chunk at a time; Push
// serializes concurrent callers because chunk k+1's carry is chunk k's
// output), and finish with Close, which returns the total — the fold
// of everything pushed. The network front end (net.go) wraps a Stream
// per wire session and adds the idle TTL and per-connection cap.
type Stream struct {
	srv    *Server
	spec   Spec
	tenant string

	mu      sync.Mutex
	state   streamState
	failErr error
	carry   int64 // fold of all chunks so far; starts at the op's identity
	// fr is the VM scratch frame for user-op carry folds; Push holds mu,
	// so one frame per stream suffices.
	fr combine.Frame
}

// OpenStream starts a streaming session for spec. Backward specs are
// rejected with ErrStreamUnsupported (their carry depends on chunks
// that have not arrived yet); invalid specs with ErrBadRequest; a
// closed server with ErrClosed. A user-op spec is resolved here, once:
// the stream binds the live registration (width-1 ops only — the carry
// is a scalar) and every chunk runs under it, so a re-registration
// mid-stream cannot change the stream's semantics.
func (s *Server) OpenStream(spec Spec, tenant string) (*Stream, error) {
	if !spec.valid() {
		s.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %s", ErrBadRequest, spec)
	}
	if spec.Dir == Backward {
		s.stats.rejected.Add(1)
		return nil, ErrStreamUnsupported
	}
	if spec.Op == OpUser {
		// seeded marks the request as a stream chunk, which also enforces
		// the width-1 rule at resolution.
		r := Req{Spec: spec, Tenant: tenant, seeded: true}
		if err := s.resolveUserOp(&r); err != nil {
			s.stats.rejected.Add(1)
			return nil, err
		}
		spec = r.Spec
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		s.stats.rejected.Add(1)
		return nil, ErrClosed
	}
	s.stats.streamsOpened.Add(1)
	s.stats.streamsActive.Add(1)
	return &Stream{srv: s, spec: spec, tenant: tenant, carry: IdentitySpec(spec)}, nil
}

// Spec returns the stream's scan flavor.
func (st *Stream) Spec() Spec { return st.spec }

// Push runs one chunk through the fused batch path, seeded with the
// carry of all prior chunks, and returns the chunk's slice of the
// overall scan — exactly what a one-shot scan of the concatenated
// chunks would contain at these positions. ctx bounds this chunk like
// any SubmitCtx request. An empty chunk is a no-op. A non-empty result
// is arena-backed and owned by the caller (Put it when done).
//
// Any error — admission (ErrOverloaded), deadline, ErrShed,
// ErrInternal — fails the stream permanently and frees its state; the
// error is returned here and later calls get ErrStreamFailed.
func (st *Stream) Push(ctx context.Context, chunk []int64) ([]int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case streamClosed:
		return nil, ErrNoStream
	case streamFailed:
		return nil, fmt.Errorf("%w: %v", ErrStreamFailed, st.failErr)
	}
	if len(chunk) == 0 {
		return []int64{}, nil
	}
	res, err := st.srv.scanReq(ctx, Req{
		Spec:   st.spec,
		Data:   chunk,
		Tenant: st.tenant,
		seeded: true,
		carry:  st.carry,
	})
	if err != nil {
		st.failLocked(err)
		return nil, err
	}
	// New carry = fold of everything so far. The inclusive form reads
	// it off the last output; the exclusive form's last output stops
	// one element short, so fold the last input back in (with the
	// spec's own monoid — for user ops that is one more VM call, which
	// can fail on pathological data; a failed fold means the carry is
	// untrusted, so it fails the stream like any chunk error).
	last := res[len(res)-1]
	if st.spec.Kind == Exclusive {
		var ferr error
		last, ferr = CombineSpec(st.spec, &st.fr, last, chunk[len(chunk)-1])
		if ferr != nil {
			arena.PutInt64s(res)
			st.failLocked(ferr)
			return nil, ferr
		}
	}
	st.carry = last
	return res, nil
}

// Close ends the stream and returns the total: the fold of every
// element pushed (the identity if nothing was). Closing a failed
// stream returns ErrStreamFailed wrapping the original cause; closing
// twice returns ErrNoStream.
func (st *Stream) Close() (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case streamClosed:
		return 0, ErrNoStream
	case streamFailed:
		return 0, fmt.Errorf("%w: %v", ErrStreamFailed, st.failErr)
	}
	st.state = streamClosed
	st.srv.stats.streamsClosed.Add(1)
	st.srv.stats.streamsActive.Add(-1)
	return st.carry, nil
}

// Abort fails an open stream without running anything — the teardown
// path for dropped connections. Safe on any state; only an open stream
// changes state (and is counted failed).
func (st *Stream) Abort(cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != streamOpen {
		return
	}
	if cause == nil {
		cause = ErrStreamFailed
	}
	st.failLocked(cause)
}

// Expire is Abort for the idle TTL, counted separately so leaked-vs-
// expired sessions are distinguishable in the ledger. Exported as part
// of the ScanStream interface the wire session table drives.
func (st *Stream) Expire() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != streamOpen {
		return
	}
	st.state = streamFailed
	st.failErr = ErrNoStream
	st.srv.stats.streamsExpired.Add(1)
	st.srv.stats.streamsActive.Add(-1)
}

// failLocked transitions open → failed exactly once. Callers hold st.mu
// and have verified state == streamOpen.
func (st *Stream) failLocked(cause error) {
	st.state = streamFailed
	st.failErr = cause
	st.srv.stats.streamsFailed.Add(1)
	st.srv.stats.streamsActive.Add(-1)
}

// Combine applies op's monoid operation — the carry stitch itself,
// shared with internal/cluster's cross-machine stitch.
func Combine(op Op, a, b int64) int64 {
	switch op {
	case OpMax:
		return max(a, b)
	case OpMin:
		return min(a, b)
	case OpMul:
		return a * b
	}
	return a + b
}
