package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/arena"
	"scans/internal/combine"
	"scans/internal/fault"
)

// TestChaosSoak runs the full serving path — TCP front end, admission,
// tenant-fair batching, kernels — with every fault point armed at
// once: slow kernels, kernel panics, dropped connections, torn
// response lines. The invariants under fire:
//
//  1. No lost requests: every submitted request reaches exactly one
//     terminal outcome (a verified-correct result or a typed error)
//     within its retry budget.
//  2. No corrupted or misrouted responses: every successful result
//     matches the serial reference for that request's unique payload.
//  3. The server survives ≥ 1 injected kernel panic and still serves
//     cleanly after the storm.
//  4. Server-side accounting closes: accepted = served + deadline
//     drops + sheds + panic-failed after the drain.
//  5. No leaked stream sessions: a third of the traffic rides streaming
//     sessions, so conn.drop regularly tears connections mid-stream;
//     after the drain the active-stream gauge must be zero and the
//     stream ledger must close (opened = closed + failed + expired).
//  6. No leaked arena buffers: the zero-copy path checks out pooled
//     buffers for every decoded payload, kernel output, and response
//     line; after the drain every checkout must have been returned
//     (gets == puts on the arena ledger delta), with every fault —
//     including clock.skew shedding admitted requests — armed.
//
// Run under -race (scripts/check.sh does) this is also the package's
// widest data-race net.
func TestChaosSoak(t *testing.T) {
	const (
		clients = 6
		seed    = 0xC0FFEE
	)
	perClient := 120
	if testing.Short() {
		perClient = 30
	}

	arenaBefore := arena.Stats()

	faults := fault.New(seed)
	faults.ArmSleep(fault.KernelSlow, 0.02, 2*time.Millisecond)
	faults.Arm(fault.KernelPanic, 0.02)
	faults.Arm(fault.ConnDrop, 0.01)
	faults.Arm(fault.PartialWrite, 0.01)
	faults.ArmSleep(fault.ExecStall, 0.02, 2*time.Millisecond)
	faults.Arm(fault.QueueCorrupt, 0.01)
	// Clock skew ages an admitted request past QueueAgeLimit (500ms), so
	// the age-based shedder must fail it with a typed ErrShed — and the
	// shed path must still recycle the request's payload buffer.
	faults.ArmSleep(fault.ClockSkew, 0.02, time.Second)
	// Frame-level chaos for the binary half of the client fleet: torn
	// frames and corrupted length prefixes mid-response. Both kill the
	// connection server-side; the client must classify them as
	// conn-level (fate unknown) and the arena ledger must still close —
	// the writer goroutine recycles frames even after the conn dies.
	faults.Arm(fault.WireTruncate, 0.01)
	faults.Arm(fault.WireCorruptLen, 0.01)

	ns := startNetCfg(t,
		Config{
			Faults:        faults,
			QueueAgeLimit: 500 * time.Millisecond,
			MaxWait:       100 * time.Microsecond,
		},
		NetConfig{
			Faults:          faults,
			PerConnInflight: 64,
			WriteTimeout:    5 * time.Second,
		})

	policy := RetryPolicy{MaxAttempts: 10, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond}
	specs := allSpecs()

	// A slice of the storm runs a registered user monoid through the
	// combine VM, under an explicit shared tenant so one registration
	// (retried through the same chaos) covers every connection. The VM's
	// arena checkouts ride the same ledger assertion below.
	if _, err := policy.Do(context.Background(), func() error {
		conn, err := Dial(ns.Addr())
		if err != nil {
			return err
		}
		defer conn.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err = conn.RegisterOp(ctx, "chaos", "gcd", combine.ExampleGCD)
		return err
	}); err != nil {
		t.Fatalf("registering user op under chaos: %v", err)
	}

	type tally struct {
		success, typedErr, lost, mismatch int
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   tally
		firstWd error
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl)))
			var local tally
			// Odd-indexed clients speak the binary protocol, so the soak
			// exercises both codecs (and both chaos families) on one server.
			dial := func() (*Client, error) {
				if cl%2 == 1 {
					return DialProto(ns.Addr(), ProtoBin)
				}
				return Dial(ns.Addr())
			}
			conn, err := dial()
			if err != nil {
				mu.Lock()
				firstWd = fmt.Errorf("client %d: initial dial: %w", cl, err)
				mu.Unlock()
				return
			}
			defer func() { conn.Close() }()
			for i := 0; i < perClient; i++ {
				spec := specs[rng.Intn(len(specs))]
				data := randomData(rng, 1+rng.Intn(48))
				if spec.Op == OpMul {
					for j := range data {
						data[j] = 2*(data[j]&1) - 1
					}
				}
				// Every fifth request re-addresses the drawn kind/dir at the
				// registered gcd monoid instead of a builtin kernel, so the
				// VM path soaks under the same fault storm.
				userOp := i%5 == 2
				var want []int64
				if userOp {
					want = scanRef(data, 0, gcdRef, spec.Kind, spec.Dir)
				} else {
					want = directScan(spec, data)
				}
				// A third of forward requests go through a streaming
				// session in small chunks, so conn.drop keeps killing
				// connections with streams open mid-flight. A retry
				// opens a fresh session, so full-request retries stay
				// safe.
				streamed := !userOp && spec.Dir == Forward && i%3 == 0
				var got []int64
				_, err := policy.Do(context.Background(), func() error {
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					var res []int64
					var err error
					if streamed {
						res, err = conn.StreamScan(ctx, spec.Op.String(), spec.Kind.String(), spec.Dir.String(),
							data, 1+rng.Intn(16))
					} else if userOp {
						res, err = conn.ScanTenantCtx(ctx, "user:gcd", spec.Kind.String(), spec.Dir.String(), "chaos", data)
					} else {
						res, err = conn.ScanCtx(ctx, spec.Op.String(), spec.Kind.String(), spec.Dir.String(), data)
					}
					if err == nil {
						got = res
						return nil
					}
					if isConnLevel(err) {
						// Unknown fate; redial before the retry.
						if fresh, derr := dial(); derr == nil {
							conn.Close()
							conn = fresh
						}
					}
					return err
				})
				switch {
				case err == nil:
					if !reflect.DeepEqual(got, want) {
						local.mismatch++
					} else {
						local.success++
					}
					if len(got) > 0 {
						arena.PutInt64s(got) // results are arena-backed, caller-owned
					}
				case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShed),
					errors.Is(err, ErrInternal), errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, ErrNoStream), errors.Is(err, ErrStreamFailed):
					local.typedErr++
				default:
					local.lost++
				}
			}
			mu.Lock()
			total.success += local.success
			total.typedErr += local.typedErr
			total.lost += local.lost
			total.mismatch += local.mismatch
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	if firstWd != nil {
		t.Fatal(firstWd)
	}

	if total.mismatch > 0 {
		t.Fatalf("chaos soak: %d corrupted/misrouted responses", total.mismatch)
	}
	if total.lost > 0 {
		t.Fatalf("chaos soak: %d requests lost (no terminal outcome in %d attempts)", total.lost, policy.MaxAttempts)
	}
	if got := total.success + total.typedErr; got != clients*perClient {
		t.Fatalf("outcome accounting: %d outcomes for %d requests", got, clients*perClient)
	}
	if total.success == 0 {
		t.Fatal("chaos soak: nothing succeeded — faults armed too hot to mean anything")
	}

	// Guarantee the acceptance condition "survives >= 1 kernel panic"
	// even on an unlucky probabilistic run: force one.
	faults.DisarmAll()
	if faults.Fires(fault.KernelPanic) == 0 {
		faults.Arm(fault.KernelPanic, 1)
		c, err := Dial(ns.Addr())
		if err != nil {
			t.Fatalf("dial for forced panic: %v", err)
		}
		if _, err := c.Scan("sum", "", "", []int64{1, 2}); !errors.Is(err, ErrInternal) {
			t.Fatalf("forced panic err = %v, want ErrInternal", err)
		}
		c.Close()
		faults.DisarmAll()
	}

	// The server must still serve cleanly after the storm.
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("post-storm dial: %v", err)
	}
	defer c.Close()
	got, err := c.Scan("sum", "inclusive", "", []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("post-storm scan: %v", err)
	}
	if want := []int64{1, 3, 6, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-storm scan = %v, want %v", got, want)
	}
	arena.PutInt64s(got)

	// Drain and check the server-side ledger: every accepted request
	// got exactly one terminal outcome.
	ns.Close()
	st := ns.Stats()
	if st.Panics < 1 {
		t.Fatalf("stats = %v, want >= 1 recovered panic", st)
	}
	if got := st.Served + st.DeadlineDrops + st.Shed + st.PanicFailed + st.CorruptDrops; got != st.Requests {
		t.Fatalf("server ledger broken: served+drops+shed+panicked+corrupt = %d, requests = %d (%v)", got, st.Requests, st)
	}
	// Zero leaked stream sessions: every connection is torn down by now
	// (ns.Close waits for the handlers), so every session opened during
	// the storm — including those whose connection was chaos-dropped
	// mid-stream — must have reached a terminal state and freed its
	// carry.
	if st.StreamsOpened == 0 {
		t.Fatal("chaos soak: no streams opened — streaming leg of the soak did not run")
	}
	if st.StreamsActive != 0 {
		t.Fatalf("chaos soak: %d stream sessions leaked after full teardown (%v)", st.StreamsActive, st)
	}
	if st.StreamsOpened != st.StreamsClosed+st.StreamsFailed+st.StreamsExpired {
		t.Fatalf("stream ledger does not close: opened %d != closed %d + failed %d + expired %d",
			st.StreamsOpened, st.StreamsClosed, st.StreamsFailed, st.StreamsExpired)
	}
	// Arena ledger closes: every buffer checked out during the storm —
	// decoded payloads, kernel outputs, response lines, stream chunks,
	// including those on shed/panic/drop/skew error paths — was returned.
	arenaAfter := arena.Stats()
	gets := arenaAfter.Gets - arenaBefore.Gets
	puts := arenaAfter.Puts - arenaBefore.Puts
	if gets != puts {
		t.Fatalf("arena ledger does not close: %d gets != %d puts (leaked %d buffers)", gets, puts, gets-puts)
	}
	t.Logf("chaos soak: %d success, %d typed errors; server %v; arena gets=puts=%d; %v",
		total.success, total.typedErr, st, gets, faults)
}

// isConnLevel reports whether err is a connection-level failure (fate
// unknown) rather than a typed response from the server.
func isConnLevel(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrOverloaded) &&
		!errors.Is(err, ErrShed) &&
		!errors.Is(err, ErrInternal) &&
		!errors.Is(err, ErrBadRequest) &&
		!errors.Is(err, ErrClosed) &&
		!errors.Is(err, ErrNoStream) &&
		!errors.Is(err, ErrStreamFailed) &&
		!errors.Is(err, context.DeadlineExceeded)
}
